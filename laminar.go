// Package laminar is the public API of the Laminar reproduction: practical
// fine-grained decentralized information flow control with a single set of
// abstractions for OS resources and heap objects (Roy, Porter, Bond,
// McKinley, Witchel — PLDI 2009).
//
// A program labels data with secrecy and integrity labels and accesses the
// labeled data inside lexically scoped security regions; the trusted
// runtime (package rt) enforces the DIFC rules on every heap access and
// the simulated kernel's Laminar security module (package kernel/lsm)
// enforces them on every file, pipe and signal operation, under one label
// namespace.
//
// Quick start:
//
//	sys := laminar.NewSystem()
//	alice, _ := sys.Login("alice")
//	vm, th, _ := sys.LaunchVM(alice)
//	tag, _ := th.CreateTag()
//	secret := laminar.Labels{S: laminar.NewLabel(tag)}
//	th.Secure(secret, laminar.EmptyCapSet, func(r *laminar.Region) {
//		cal := r.Alloc(nil)            // labeled {S(tag)}
//		r.Set(cal, "monday", "dentist")
//	}, nil)
//
// See the examples/ directory for complete programs, including the
// paper's Alice-and-Bob calendar scenario.
package laminar

import (
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/rt"
)

// Core model types, re-exported from the internal DIFC package.
type (
	// Tag is a 64-bit token; labels are sets of tags.
	Tag = difc.Tag
	// Label is an immutable set of tags.
	Label = difc.Label
	// Labels pairs a secrecy label with an integrity label.
	Labels = difc.Labels
	// CapSet is a capability set: which tags the holder may add (t+) and
	// drop (t−).
	CapSet = difc.CapSet
	// CapKind selects the plus, minus, or both capabilities of a tag.
	CapKind = difc.CapKind
)

// Runtime types, re-exported from the trusted VM runtime.
type (
	// VM is the trusted runtime for one process.
	VM = rt.VM
	// Thread is a principal: a kernel thread with cached labels.
	Thread = rt.Thread
	// Region is an active security region (only valid inside Secure).
	Region = rt.Region
	// Object is a labeled heap value with field and array parts.
	Object = rt.Object
	// Violation is the panic payload delivered to catch blocks on DIFC
	// check failures.
	Violation = rt.Violation
	// AuditEvent is one record from the VM's audit hook (VM.SetAudit):
	// region entries and exits, violations, declassifications, and
	// capability movements.
	AuditEvent = rt.Event
)

// Audit event kinds, re-exported for hook consumers.
const (
	EvRegionEnter       = rt.EvRegionEnter
	EvRegionExit        = rt.EvRegionExit
	EvViolation         = rt.EvViolation
	EvCopyAndLabel      = rt.EvCopyAndLabel
	EvCapabilityGained  = rt.EvCapabilityGained
	EvCapabilityDropped = rt.EvCapabilityDropped
	// EvKernelDeny reports a kernel/LSM-layer denial for the VM's process,
	// forwarded from the unified telemetry recorder.
	EvKernelDeny = rt.EvKernelDeny
	// EvNetDeny reports a denial recorded by the cross-kernel labeled
	// transport (laminar-netd): handshake rejections, malformed frames,
	// and links that failed closed.
	EvNetDeny = rt.EvNetDeny
)

// Kernel-facing types for labeled file work.
type (
	// Task is a simulated kernel task.
	Task = kernel.Task
	// FD is a file descriptor.
	FD = kernel.FD
	// Capability names one (tag, kind) capability for transfer and drop
	// operations.
	Capability = kernel.Capability
)

// Capability kinds.
const (
	CapPlus  = difc.CapPlus
	CapMinus = difc.CapMinus
	CapBoth  = difc.CapBoth
)

// Open flags for labeled file operations.
const (
	ORead   = kernel.ORead
	OWrite  = kernel.OWrite
	OCreate = kernel.OCreate
	OTrunc  = kernel.OTrunc
	OAppend = kernel.OAppend
)

// EmptyLabel is the label of unlabeled data.
var EmptyLabel = difc.EmptyLabel

// EmptyCapSet holds no capabilities.
var EmptyCapSet = difc.EmptyCapSet

// NewLabel builds a label from tags.
func NewLabel(tags ...Tag) Label { return difc.NewLabel(tags...) }

// NewCapSet builds a capability set from plus and minus tag sets.
func NewCapSet(plus, minus Label) CapSet { return difc.NewCapSet(plus, minus) }

// NewObject allocates an unlabeled heap object (outside regions).
func NewObject() *Object { return rt.NewObject() }

// NewArray allocates an unlabeled array object.
func NewArray(n int) *Object { return rt.NewArray(n) }

// System is a booted Laminar installation: the simulated kernel with the
// Laminar security module loaded and system integrity labels installed.
type System struct {
	k   *kernel.Kernel
	mod *lsm.Module
}

// NewSystem boots a kernel with the Laminar LSM. Extra kernel options
// (e.g. kernel.WithBigLock for differential testing, or
// kernel.WithIOLatency for I/O-bound benchmarks) are applied after the
// module registration.
func NewSystem(opts ...kernel.Option) *System {
	mod := lsm.New()
	k := kernel.New(append([]kernel.Option{kernel.WithSecurityModule(mod)}, opts...)...)
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(k.Telemetry())
	return &System{k: k, mod: mod}
}

// NewSystemWithInjector boots a system whose kernel syscalls, LSM hooks
// and label-persistence path consult the given fault injector (the chaos
// harness uses this; see internal/faultinject). The module's injector is
// installed only after boot labeling, which models firmware that cannot
// fail before the machine is up. Extra kernel options apply as in
// NewSystem.
func NewSystemWithInjector(inj faultinject.Injector, opts ...kernel.Option) *System {
	mod := lsm.New()
	base := []kernel.Option{kernel.WithSecurityModule(mod), kernel.WithFaultInjector(inj)}
	k := kernel.New(append(base, opts...)...)
	mod.InstallSystemIntegrity(k)
	mod.SetFaultInjector(inj)
	mod.SetTelemetry(k.Telemetry())
	return &System{k: k, mod: mod}
}

// Kernel exposes the simulated kernel (syscalls take a *Task).
func (s *System) Kernel() *kernel.Kernel { return s.k }

// Module exposes the Laminar security module (label introspection).
func (s *System) Module() *lsm.Module { return s.mod }

// Login creates a login-shell task for user, granting the user's
// persistent capabilities and a home directory.
func (s *System) Login(user string) (*Task, error) {
	return s.mod.Login(s.k, user)
}

// SaveUserCaps persists a user's capability file, as the administrator.
func (s *System) SaveUserCaps(user string, caps CapSet) error {
	return s.mod.SaveUserCaps(s.k, s.k.InitTask(), user, caps)
}

// LaunchVM starts a trusted Laminar VM for the given login task and
// returns it with its main thread.
func (s *System) LaunchVM(owner *Task) (*VM, *Thread, error) {
	return rt.New(s.k, s.mod, owner)
}
