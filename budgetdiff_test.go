package laminar_test

// Differential oracle for quantitative flow budgets (ISSUE 10). Three
// properties, each a run-vs-run comparison:
//
//  1. Prefix identity: a budgeted run and an unlimited run of the same
//     seeded op script produce byte-identical op transcripts and
//     kernel/LSM verdict streams up to the first budget exhaustion —
//     the ledger is invisible until the moment it denies. The first
//     divergent line must be the exhaustion denial, and that line must
//     be byte-identical to what a replayed difc.CheckFlow of the same
//     operands renders: a budget denial IS a secrecy denial to every
//     downstream consumer.
//
//  2. Peer indistinguishability: a receiver watching a sender whose
//     budget exhausts mid-stream observes exactly what it observes of a
//     sender whose sends become capability-denied mid-stream — chunks
//     stop arriving, no verdict, no error, nothing. The sender-visible
//     return values are identical too (silent drop in both worlds).
//
//  3. Crash recovery never under-counts: 60 fault seeds tear the
//     shadow-write protocol at every budget.ckpt.* site while charges
//     flow through the real relabel path; after a simulated crash and
//     reboot from the same store, the recovered spend is >= every
//     acknowledged charge (rounding UP through torn flips) and never
//     exceeds the attempts (except the MaxUint64 quarantine sentinel).
//
// All three run under both locking disciplines; parts 1 and 3 run 60
// seeds each per the ISSUE acceptance criteria.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"laminar/internal/budget"
	"laminar/internal/cluster"
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// note appends a non-verdict transcript line (op results) into the same
// ordered stream the verdict subscription feeds, so op outcomes and the
// denials they provoke interleave in script order.
func (v *verdictLog) note(line string) {
	v.mu.Lock()
	v.lines = append(v.lines, line)
	v.mu.Unlock()
}

// budgetdiffBoot is netdiffBoot plus an optional ledger installed on the
// kernel (which wires the OnMutate -> label-epoch bump).
func budgetdiffBoot(t *testing.T, bigLock bool, led *budget.Ledger) *netdiffStack {
	t.Helper()
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	opts := []kernel.Option{kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec)}
	if bigLock {
		opts = append(opts, kernel.WithBigLock())
	}
	if led != nil {
		opts = append(opts, kernel.WithBudget(led))
	}
	k := kernel.New(opts...)
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &netdiffStack{k: k, mod: mod, rec: rec, user: user}
}

// ---- part 1: prefix identity under a seeded op script --------------------

// budgetdiffOpKinds is the alphabet the seeded script draws from. The
// fixed prefix guarantees at least two effective declassifications, so
// a limit of declass/2 always exhausts mid-script.
const budgetdiffPrefix = "tu tu"

func budgetdiffScript(seed int64, n int) []string {
	ops := []string{"taint", "untaint", "taint", "untaint"}
	kinds := []string{"taint", "untaint", "grab", "pubsend", "recv"}
	rng := rand.New(rand.NewSource(seed))
	for len(ops) < n {
		ops = append(ops, kinds[rng.Intn(len(kinds))])
	}
	return ops
}

// budgetdiffDeclassCount simulates the script's taint toggling and
// returns how many untaints actually drop a tag (and hence charge).
func budgetdiffDeclassCount(ops []string) int {
	tainted, declass := false, 0
	for _, op := range ops {
		switch op {
		case "taint":
			tainted = true
		case "untaint":
			if tainted {
				declass++
			}
			tainted = false
		}
	}
	return declass
}

// budgetdiffRun executes the script on one freshly booted kernel. A nil
// ledger is the unlimited world. Returns the interleaved transcript
// (op outcomes + kernel/LSM verdicts) and the charged tag.
func budgetdiffRun(t *testing.T, bigLock bool, ops []string, limit uint64) (string, difc.Tag) {
	t.Helper()
	var led *budget.Ledger
	if limit > 0 {
		led = budget.New()
	}
	s := budgetdiffBoot(t, bigLock, led)
	bob, err := s.k.Spawn(s.k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}

	log := &verdictLog{}
	defer log.attach(s.rec)()

	t1, err := s.k.AllocTag(s.user)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.k.AllocTag(s.user)
	if err != nil {
		t.Fatal(err)
	}
	if led != nil {
		if err := led.SetLimit(t2, 0, limit); err != nil {
			t.Fatal(err)
		}
	}

	pair := func(labels difc.Labels) (kernel.FD, kernel.FD) {
		x, y, perr := s.k.SocketpairLabeled(s.user, labels)
		if perr != nil {
			t.Fatal(perr)
		}
		bfd, derr := s.k.DupTo(s.user, y, bob)
		if derr != nil {
			t.Fatal(derr)
		}
		return x, bfd
	}
	pubA, _ := pair(difc.Labels{})
	secA, secB := pair(difc.Labels{S: difc.NewLabel(t1)})
	_ = secA

	buf := make([]byte, 64)
	for i, op := range ops {
		switch op {
		case "taint":
			err := s.k.SetTaskLabel(s.user, kernel.Secrecy, difc.NewLabel(t2))
			log.note(fmt.Sprintf("op%d taint err=%v", i, err != nil))
		case "untaint":
			err := s.k.SetTaskLabel(s.user, kernel.Secrecy, difc.EmptyLabel)
			log.note(fmt.Sprintf("op%d untaint err=%v", i, err != nil))
		case "grab":
			err := s.k.SetTaskLabel(bob, kernel.Secrecy, difc.NewLabel(t1))
			log.note(fmt.Sprintf("op%d grab err=%v", i, err != nil))
		case "pubsend":
			n, err := s.k.Send(s.user, pubA, []byte("payload!"))
			log.note(fmt.Sprintf("op%d pubsend n=%d err=%v", i, n, err != nil))
		case "recv":
			_, err := s.k.Recv(bob, secB, buf)
			log.note(fmt.Sprintf("op%d recv err=%v", i, err != nil))
		}
	}
	return log.dump(), t2
}

// TestBudgetDifferentialOracle: 60 seeded scripts x both locking
// disciplines. The budgeted transcript must equal the unlimited one line
// for line until the exhaustion denial, which must itself render as the
// replayable capability-denial shape.
func TestBudgetDifferentialOracle(t *testing.T) {
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= 60; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					ops := budgetdiffScript(seed, 40)
					declass := budgetdiffDeclassCount(ops)
					if declass < 2 {
						t.Fatalf("script has %d declassifications; prefix guarantee broken", declass)
					}
					limit := uint64(declass / 2)

					unlimited, t2u := budgetdiffRun(t, mode.bigLock, ops, 0)
					budgeted, t2b := budgetdiffRun(t, mode.bigLock, ops, limit)
					if t2u != t2b {
						t.Fatalf("tag allocation diverged: %d vs %d", t2u, t2b)
					}

					ul := strings.Split(unlimited, "\n")
					bl := strings.Split(budgeted, "\n")
					div := -1
					for i := 0; i < len(ul) && i < len(bl); i++ {
						if ul[i] != bl[i] {
							div = i
							break
						}
					}
					if div == -1 {
						t.Fatalf("no divergence: limit %d of %d declassifications never exhausted\n%s", limit, declass, budgeted)
					}

					// The first divergent budgeted line is the exhaustion
					// denial, and it must render byte-identically to (a) the
					// ExhaustedError shape and (b) a genuine difc.CheckFlow
					// secrecy denial of the same operands, replayed through
					// the same event classifier. No new distinguisher.
					wantDeny := netdiffVerdict(telemetry.DenyEvent(
						telemetry.LayerLSM, "hook.SetTaskLabel", "set_task_label", 0, 0,
						budget.ExhaustedError("set_task_label", t2b)))
					cfErr := difc.CheckFlow("set_task_label",
						difc.Labels{S: difc.NewLabel(t2b)}, difc.Labels{})
					if cfErr == nil {
						t.Fatal("CheckFlow({t2} -> {}) allowed; replay reference is broken")
					}
					replayDeny := netdiffVerdict(telemetry.DenyEvent(
						telemetry.LayerLSM, "hook.SetTaskLabel", "set_task_label", 0, 0, cfErr))
					if wantDeny != replayDeny {
						t.Fatalf("exhaustion shape does not replay:\n exhausted: %s\n checkflow: %s", wantDeny, replayDeny)
					}
					if bl[div] != wantDeny {
						t.Fatalf("first divergent line is not the exhaustion denial\n got: %s\nwant: %s\n(unlimited had: %s)", bl[div], wantDeny, ul[div])
					}

					// Non-vacuity: the shared prefix itself contains real
					// denials, so the oracle compared enforcement, not
					// silence.
					verdicts := 0
					for _, line := range bl[:div] {
						if strings.Contains(line, "|") {
							verdicts++
						}
					}
					if verdicts < 1 && declass >= 4 {
						t.Logf("seed %d: prefix had no verdicts before exhaustion (script %v)", seed, ops)
					}
				})
			}
		})
	}
}

// ---- part 2: the peer cannot tell exhaustion from a capability denial ----

// budgetdiffRemoteRun drives M one-KiB chunks from a sender to a
// receiver over real TCP. The first keep chunks are deliverable; from
// chunk keep+1 on, the scenario makes them vanish — either the sender's
// per-(tag,peer) budget exhausts (budgeted=true) or the sender taints
// itself so its own kernel capability-denies the sends (budgeted=false).
// Returns (receiver transcript, sender transcript): the receiver's view
// must not depend on which scenario ran.
func budgetdiffRemoteRun(t *testing.T, bigLock, budgeted bool, keep, total int) (string, string) {
	t.Helper()
	var led *budget.Ledger
	if budgeted {
		led = budget.New()
	}
	a := budgetdiffBoot(t, bigLock, led)
	b := budgetdiffBoot(t, bigLock, nil)

	nodeA := netlabel.NewNode(netlabel.Config{Kernel: a.k, Module: a.mod, Recorder: a.rec, NodeID: 1})
	nodeB := netlabel.NewNode(netlabel.Config{Kernel: b.k, Module: b.mod, Recorder: b.rec, NodeID: 2})
	if err := nodeA.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	defer nodeB.Close()

	recvLog := &verdictLog{}
	defer recvLog.attach(b.rec)()
	sendLog := &verdictLog{}

	t1, err := a.k.AllocTag(a.user)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted {
		// The budget is against the receiver's node id: the netlabel
		// drain charges (t1, peer=2) per started KiB.
		if err := led.SetLimit(t1, 2, uint64(keep)); err != nil {
			t.Fatal(err)
		}
	}

	labels := difc.Labels{S: difc.NewLabel(t1)}
	want := difc.InternLabels(labels)
	var fdA, fdB kernel.FD
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("labeled channel never established")
		}
		var oerr error
		fdA, oerr = nodeA.Open(a.user, nodeB.Addr(), labels)
		if oerr != nil {
			continue
		}
		got := difc.Labels{}
		var aerr error
		ok := false
		for i := 0; i < 400 && !ok; i++ {
			nodeA.Pump()
			nodeB.Pump()
			fdB, got, aerr = nodeB.Accept(b.user)
			if aerr == nil && got.Equal(want) {
				ok = true
			}
			if !ok {
				time.Sleep(100 * time.Microsecond)
			}
		}
		if ok {
			break
		}
	}

	// The receiving principal legitimately holds t1 (endorsed into the
	// label by its TCB); b.user stays unlabeled as the denied probe.
	reader, err := b.k.Spawn(b.k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b.mod.AdoptTaskLabels(reader, labels)
	rfd, err := b.k.DupTo(b.user, fdB, reader)
	if err != nil {
		t.Fatal(err)
	}

	probe := func(tag string) {
		_, perr := b.k.Recv(b.user, fdB, make([]byte, 8))
		recvLog.note(fmt.Sprintf("probe %s err=%v", tag, perr != nil))
	}
	probe("pre")

	chunk := make([]byte, 1024)
	buf := make([]byte, 4096)
	for i := 1; i <= total; i++ {
		if !budgeted && i == keep+1 {
			// Capability world: the sender taints itself, so its own
			// kernel silently denies every further send on the t1
			// channel ({t1,t2} is not a subset of {t1}).
			t2, aerr := a.k.AllocTag(a.user)
			if aerr != nil {
				t.Fatal(aerr)
			}
			if serr := a.k.SetTaskLabel(a.user, kernel.Secrecy, difc.NewLabel(t2)); serr != nil {
				t.Fatal(serr)
			}
		}
		n, serr := a.k.Send(a.user, fdA, chunk)
		sendLog.note(fmt.Sprintf("send %d n=%d err=%v", i, n, serr != nil))

		got := 0
		if i <= keep {
			// Deliverable chunk: pump until it lands (fault-free TCP).
			dl := time.Now().Add(20 * time.Second)
			for got == 0 && time.Now().Before(dl) {
				nodeA.Pump()
				nodeB.Pump()
				if rn, rerr := b.k.Recv(reader, rfd, buf); rerr == nil && rn > 0 {
					got = rn
				} else {
					time.Sleep(100 * time.Microsecond)
				}
			}
		} else {
			// Post-cutoff chunk: give the transport every chance to
			// deliver what it must not, then look once more.
			for p := 0; p < 2000; p++ {
				nodeA.Pump()
				nodeB.Pump()
			}
			if rn, rerr := b.k.Recv(reader, rfd, buf); rerr == nil && rn > 0 {
				got = rn
			}
		}
		if got > 0 {
			recvLog.note(fmt.Sprintf("chunk %d: %d bytes", i, got))
		} else {
			recvLog.note(fmt.Sprintf("chunk %d: nothing", i))
		}
	}
	probe("post")
	return recvLog.dump(), sendLog.dump()
}

// TestBudgetPeerIndistinguishability: the receiver-side transcript
// (bytes observed, probe outcomes, receiver verdict stream) and the
// sender-visible return values are byte-identical whether the sender ran
// out of budget or ran into a capability denial.
func TestBudgetPeerIndistinguishability(t *testing.T) {
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			const keep, total = 3, 6
			recvBudget, sendBudget := budgetdiffRemoteRun(t, mode.bigLock, true, keep, total)
			recvCap, sendCap := budgetdiffRemoteRun(t, mode.bigLock, false, keep, total)
			if recvBudget != recvCap {
				t.Errorf("receiver can distinguish exhaustion from capability denial\n--- budget world\n%s\n--- capability world\n%s", recvBudget, recvCap)
			}
			if sendBudget != sendCap {
				t.Errorf("sender return values distinguish the worlds\n--- budget world\n%s\n--- capability world\n%s", sendBudget, sendCap)
			}
			// Non-vacuity: the first keep chunks actually arrived, and the
			// rest actually vanished.
			if !strings.Contains(recvBudget, fmt.Sprintf("chunk %d: %d bytes", keep, 1024)) {
				t.Fatalf("chunk %d never arrived; transport broken:\n%s", keep, recvBudget)
			}
			if !strings.Contains(recvBudget, fmt.Sprintf("chunk %d: nothing", total)) {
				t.Fatalf("chunk %d arrived despite exhausted budget:\n%s", total, recvBudget)
			}
		})
	}
}

// ---- part 3: crash mid-charge recovers fail closed -----------------------

// TestBudgetCrashRecoveryNeverUndercounts: 60 fault seeds x both lock
// modes. Charges flow through the real relabel path while budget.ckpt.*
// faults tear the shadow-write protocol; the ledger rebooted from the
// surviving store must account for every acknowledged charge.
func TestBudgetCrashRecoveryNeverUndercounts(t *testing.T) {
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= 60; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					store := cluster.NewMemStore()
					plan := faultinject.NewPlan(seed)
					plan.SetRates("budget.ckpt.", faultinject.Rates{Error: 0.15, Crash: 0.10})
					led := budget.New(budget.WithStore(store), budget.WithInjector(plan))
					s := budgetdiffBoot(t, mode.bigLock, led)

					tag, err := s.k.AllocTag(s.user)
					if err != nil {
						t.Fatal(err)
					}
					led.SetLimit(tag, 0, 1_000_000) // persist may fault; in-memory fact stands

					acked, attempted := uint64(0), uint64(0)
					tainted := false
					for i := 0; i < 40; i++ {
						if !tainted {
							if err := s.k.SetTaskLabel(s.user, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
								t.Fatalf("taint %d: %v", i, err)
							}
							tainted = true
						}
						attempted++
						if err := s.k.SetTaskLabel(s.user, kernel.Secrecy, difc.EmptyLabel); err == nil {
							acked++
							tainted = false
						}
						// A denied charge (injected persist fault) leaves the
						// task tainted; the next iteration retries the drop.
					}

					// Crash: abandon the kernel and the faulting ledger;
					// reboot a clean ledger from whatever the store holds.
					led2 := budget.New(budget.WithStore(store))
					f, ok := led2.Fact(tag, 0)
					if !ok {
						if acked > 0 {
							t.Fatalf("seed %d: %d acked charges but no recovered fact", seed, acked)
						}
						return
					}
					if f.Spent < acked {
						t.Fatalf("seed %d: recovered spent %d under-counts %d acked charges (attempted %d)", seed, f.Spent, acked, attempted)
					}
					if f.Spent != math.MaxUint64 && f.Spent > attempted {
						t.Fatalf("seed %d: recovered spent %d exceeds %d attempts", seed, f.Spent, attempted)
					}
					if f.Spent == math.MaxUint64 {
						// Quarantined: zero budget until a fresh SetLimit.
						if err := led2.Charge("probe", tag, 0, 1); err == nil {
							t.Fatalf("seed %d: quarantined fact allowed a charge", seed)
						}
					}
				})
			}
		})
	}
}
