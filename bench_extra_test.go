package laminar_test

import (
	"testing"

	"laminar/internal/dacapo"
	"laminar/internal/difc"
	"laminar/internal/jvm"
	"laminar/internal/pagelabel"

	"laminar"
	"laminar/internal/apps/wiki"
)

// BenchmarkRegionDensity measures the overhead-vs-density sweep (§4.3):
// the same work at increasing in-region fractions.
func BenchmarkRegionDensity(b *testing.B) {
	for _, pt := range dacapo.RegionSweep() {
		for _, mode := range []struct {
			name string
			m    jvm.BarrierMode
		}{{"none", jvm.BarrierNone}, {"static", jvm.BarrierStatic}} {
			b.Run(pt.Name+"/"+mode.name, func(b *testing.B) {
				prog, err := dacapo.BuildRegionSweep(pt)
				if err != nil {
					b.Fatal(err)
				}
				mc, err := jvm.NewMachine(prog, jvm.CompileOptions{Mode: mode.m})
				if err != nil {
					b.Fatal(err)
				}
				th := mc.NewThread()
				if _, err := mc.Call(th, "run", jvm.IntV(4)); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mc.Call(th, "run", jvm.IntV(50)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInlining measures the inlining × redundancy-elimination
// interaction on the dacapo suite (§5.1).
func BenchmarkInlining(b *testing.B) {
	configs := []struct {
		name string
		opts jvm.CompileOptions
	}{
		{"opt", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true}},
		{"opt-inline", jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true, Inline: true}},
	}
	m := dacapo.Workloads[0]
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			prog, err := dacapo.Build(m)
			if err != nil {
				b.Fatal(err)
			}
			mc, err := jvm.NewMachine(prog, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			th := mc.NewThread()
			if _, err := mc.Call(th, "run", jvm.IntV(4)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mc.Call(th, "run", jvm.IntV(50)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGranularity compares allocation at page granularity (the
// HiStar-like baseline) against object granularity for heterogeneously
// labeled small objects — the space-pressure argument of §1/§2.
func BenchmarkGranularity(b *testing.B) {
	labels := make([]difc.Labels, 64)
	for i := range labels {
		labels[i] = difc.Labels{S: difc.NewLabel(difc.Tag(i + 1))}
	}
	b.Run("page", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := pagelabel.NewHeap()
			for j := 0; j < 64; j++ {
				if _, err := h.Alloc(64, labels[j%len(labels)]); err != nil {
					b.Fatal(err)
				}
			}
			st := h.Stats()
			b.ReportMetric(float64(st.BytesWasted), "wasted-bytes")
		}
	})
}

// BenchmarkWiki serves the same wiki request mix through region-based and
// monitor-based enforcement (§6.2 framing).
func BenchmarkWiki(b *testing.B) {
	b.Run("laminar", func(b *testing.B) {
		w, err := wiki.NewLaminar(laminar.NewSystem())
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Register("alice"); err != nil {
			b.Fatal(err)
		}
		if err := w.Put("alice", "notes", "private"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Get("alice", "notes"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("monitor", func(b *testing.B) {
		w := wiki.NewFlume()
		w.Register("alice")
		w.Put("alice", "notes", "private")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Get("alice", "notes"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
