package laminar_test

import (
	"bytes"
	"fmt"
	"testing"

	"laminar/internal/chaos"
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/telemetry"
)

// chaosRates is the mixed fault cocktail the seeded schedules run under:
// errors, crashes and delays all active, frequent enough that a 200-op run
// sees dozens of faults.
var chaosRates = faultinject.Rates{Error: 0.02, Crash: 0.004, Delay: 0.02}

// TestChaos runs many distinct seeded fault schedules concurrently (each
// schedule is single-threaded; the parallelism across seeds is what -race
// observes) and requires zero invariant violations on every one, under
// BOTH locking disciplines: the default sharded kernel and the serial
// big-lock kernel. On failure it logs the seed and the byte-for-byte
// reproducible fault schedule.
func TestChaos(t *testing.T) {
	const seeds = 60
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				seed := seed
				t.Run("", func(t *testing.T) {
					t.Parallel()
					rep := chaos.Run(chaos.Config{
						Seed:    seed,
						Ops:     200,
						Rates:   chaosRates,
						Record:  true,
						BigLock: mode.bigLock,
					})
					if len(rep.Violations) > 0 {
						t.Errorf("seed %d (%s): %d invariant violations:", seed, mode.name, len(rep.Violations))
						for _, v := range rep.Violations {
							t.Errorf("  %s", v)
						}
						t.Logf("reproduce with: go run ./cmd/laminar-chaos -seed %d -ops %d", seed, rep.Ops)
						t.Logf("fault schedule:\n%s", rep.Schedule)
					}
				})
			}
		})
	}
}

// TestChaosSmoke is the fixed-seed run CI executes on every push: one
// schedule, deterministic, fast, with the full invariant sweep.
func TestChaosSmoke(t *testing.T) {
	rep := chaos.Run(chaos.Config{Seed: 42, Ops: 300, Rates: chaosRates, Record: true})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Logf("fault schedule:\n%s", rep.Schedule)
	}
	if rep.Faults == 0 {
		t.Fatalf("smoke schedule injected no faults; rates not wired through")
	}
}

// TestChaosReproducible verifies the tentpole's core promise: the same
// seed yields the byte-for-byte identical fault schedule and the same
// violation set on every run.
func TestChaosReproducible(t *testing.T) {
	cfg := chaos.Config{Seed: 7, Ops: 150, Rates: chaosRates, Record: true}
	a := chaos.Run(cfg)
	b := chaos.Run(cfg)
	if a.Schedule != b.Schedule {
		t.Fatalf("same seed produced different schedules:\n--- run 1\n%s\n--- run 2\n%s", a.Schedule, b.Schedule)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("same seed produced different violations: %v vs %v", a.Violations, b.Violations)
	}
	if a.Faults != b.Faults {
		t.Fatalf("same seed produced different fault counts: %d vs %d", a.Faults, b.Faults)
	}
}

// TestChaosFlightRecorder asserts the tentpole's postmortem story under
// chaos, and acts as a third differential oracle alongside PR 2's:
//
//  1. The flight recorder survives a crash-heavy schedule: injected
//     crash-kills tear down tasks mid-syscall, yet the ring still holds a
//     coherent, Seq-ordered denial stream at the end.
//  2. The dumped ring replays deterministically: every policy denial in
//     the dump, re-checked against the pure difc rules (the same serial
//     checks the big-lock kernel runs), reproduces the recorded verdict.
//  3. Sharded vs WithBigLock(): the same seed produces the identical
//     denial stream (site, op, rule, tag delta) under both locking
//     disciplines — telemetry provenance is lock-schedule-invariant.
func TestChaosFlightRecorder(t *testing.T) {
	for seed := int64(11); seed <= 14; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			t.Parallel()
			cfg := chaos.Config{Seed: seed, Ops: 200, Rates: chaosRates, Record: true, Telemetry: true}
			shard := chaos.Run(cfg)
			cfg.BigLock = true
			big := chaos.Run(cfg)

			if shard.Telemetry == nil || big.Telemetry == nil {
				t.Fatal("telemetry recorder not attached")
			}
			if shard.Faults == 0 {
				t.Fatal("schedule injected no faults; crash survival proves nothing")
			}

			// (1) Ring survived: events present, totally ordered by Seq.
			events := shard.Telemetry.Snapshot()
			if len(events) == 0 {
				t.Fatal("flight ring empty after chaos run")
			}
			for i := 1; i < len(events); i++ {
				if events[i].Seq <= events[i-1].Seq {
					t.Fatalf("ring order broken at %d: seq %d after %d", i, events[i].Seq, events[i-1].Seq)
				}
			}

			// (2) Dump → read back → replay. Every replayable policy denial
			// must reproduce its recorded verdict from the dump alone.
			var buf bytes.Buffer
			if err := shard.Telemetry.Dump(&buf); err != nil {
				t.Fatal(err)
			}
			dumped, err := telemetry.ReadDump(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(dumped) != len(events) {
				t.Fatalf("dump round trip lost events: %d -> %d", len(events), len(dumped))
			}
			replayed := 0
			for _, e := range dumped {
				if e.Kind != telemetry.KindDeny || e.Rule == telemetry.RuleFault || e.Rule == telemetry.RuleNone {
					continue // fault-closed and unstructured denials have no pure check to re-run
				}
				res := telemetry.Replay(e)
				if !res.Replayable {
					continue
				}
				replayed++
				if !res.Denied || !res.Matches {
					t.Errorf("dumped denial does not replay: %s\n%s", e.String(), telemetry.Explain(e))
				}
			}
			if replayed == 0 {
				t.Error("no policy denial was replayable; oracle exercised nothing")
			}

			// (3) Same seed, big-lock kernel: identical denial provenance.
			key := func(e telemetry.Event) string {
				return fmt.Sprintf("%s|%s|%s|%v", e.Site, e.Op, e.Rule, e.Delta)
			}
			sd, bd := shard.Telemetry.Denials(), big.Telemetry.Denials()
			if len(sd) != len(bd) {
				t.Fatalf("denial streams diverge: sharded %d, biglock %d", len(sd), len(bd))
			}
			for i := range sd {
				if key(sd[i]) != key(bd[i]) {
					t.Errorf("denial %d diverges across locking disciplines:\n  sharded: %s\n  biglock: %s", i, key(sd[i]), key(bd[i]))
				}
			}
		})
	}
}

// TestChaosVerdictCacheOracle is the cached-vs-uncached differential: for
// every seed in the chaos matrix, under both locking disciplines, the same
// fault schedule is replayed with the per-task verdict cache off and on,
// and the kernel/LSM verdict streams must be byte-identical — same denial
// count, same (site, op, rule, tag delta) at every position, same fault
// schedule, zero invariant violations either way. The cache memoizes
// decisions below the hook layer and is invalidated by label-change
// epochs, so any divergence here means a stale verdict was served.
func TestChaosVerdictCacheOracle(t *testing.T) {
	const seeds = 60
	h0, _, _ := difc.VerdictCacheStats()
	key := func(e telemetry.Event) string {
		return fmt.Sprintf("%s|%s|%s|%v", e.Site, e.Op, e.Rule, e.Delta)
	}
	t.Run("matrix", func(t *testing.T) {
		for _, mode := range []struct {
			name    string
			bigLock bool
		}{{"sharded", false}, {"biglock", true}} {
			mode := mode
			t.Run(mode.name, func(t *testing.T) {
				for seed := int64(1); seed <= seeds; seed++ {
					seed := seed
					t.Run("", func(t *testing.T) {
						t.Parallel()
						cfg := chaos.Config{
							Seed:      seed,
							Ops:       200,
							Rates:     chaosRates,
							Record:    true,
							Telemetry: true,
							BigLock:   mode.bigLock,
						}
						base := chaos.Run(cfg)
						cfg.VerdictCache = true
						cached := chaos.Run(cfg)

						if len(cached.Violations) > 0 {
							t.Errorf("seed %d (%s, cache on): %d invariant violations:", seed, mode.name, len(cached.Violations))
							for _, v := range cached.Violations {
								t.Errorf("  %s", v)
							}
							t.Logf("fault schedule:\n%s", cached.Schedule)
						}
						if base.Schedule != cached.Schedule {
							t.Errorf("seed %d (%s): fault schedule diverges with cache on", seed, mode.name)
						}
						bd, cd := base.Telemetry.Denials(), cached.Telemetry.Denials()
						if len(bd) != len(cd) {
							t.Fatalf("seed %d (%s): verdict streams diverge: uncached %d denials, cached %d",
								seed, mode.name, len(bd), len(cd))
						}
						for i := range bd {
							if key(bd[i]) != key(cd[i]) {
								t.Errorf("seed %d (%s): denial %d diverges:\n  uncached: %s\n  cached:   %s",
									seed, mode.name, i, key(bd[i]), key(cd[i]))
							}
						}
					})
				}
			})
		}
	})
	// Non-vacuity: the cached half of the matrix must actually have served
	// memoized verdicts, or the differential proved nothing.
	h1, _, _ := difc.VerdictCacheStats()
	if h1 == h0 {
		t.Error("verdict cache recorded zero hits across the whole matrix; oracle is vacuous")
	}
}

// TestChaosFaultFree runs the workload with zero fault rates: the
// invariants must hold trivially, proving the workload itself is sound.
func TestChaosFaultFree(t *testing.T) {
	rep := chaos.Run(chaos.Config{Seed: 3, Ops: 200})
	if len(rep.Violations) > 0 {
		t.Fatalf("violations with no faults injected: %v", rep.Violations)
	}
	if rep.Faults != 0 {
		t.Fatalf("fault-free run reported %d faults", rep.Faults)
	}
}
