package laminar_test

import (
	"testing"

	"laminar/internal/chaos"
	"laminar/internal/faultinject"
)

// chaosRates is the mixed fault cocktail the seeded schedules run under:
// errors, crashes and delays all active, frequent enough that a 200-op run
// sees dozens of faults.
var chaosRates = faultinject.Rates{Error: 0.02, Crash: 0.004, Delay: 0.02}

// TestChaos runs many distinct seeded fault schedules concurrently (each
// schedule is single-threaded; the parallelism across seeds is what -race
// observes) and requires zero invariant violations on every one, under
// BOTH locking disciplines: the default sharded kernel and the serial
// big-lock kernel. On failure it logs the seed and the byte-for-byte
// reproducible fault schedule.
func TestChaos(t *testing.T) {
	const seeds = 60
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				seed := seed
				t.Run("", func(t *testing.T) {
					t.Parallel()
					rep := chaos.Run(chaos.Config{
						Seed:    seed,
						Ops:     200,
						Rates:   chaosRates,
						Record:  true,
						BigLock: mode.bigLock,
					})
					if len(rep.Violations) > 0 {
						t.Errorf("seed %d (%s): %d invariant violations:", seed, mode.name, len(rep.Violations))
						for _, v := range rep.Violations {
							t.Errorf("  %s", v)
						}
						t.Logf("reproduce with: go run ./cmd/laminar-chaos -seed %d -ops %d", seed, rep.Ops)
						t.Logf("fault schedule:\n%s", rep.Schedule)
					}
				})
			}
		})
	}
}

// TestChaosSmoke is the fixed-seed run CI executes on every push: one
// schedule, deterministic, fast, with the full invariant sweep.
func TestChaosSmoke(t *testing.T) {
	rep := chaos.Run(chaos.Config{Seed: 42, Ops: 300, Rates: chaosRates, Record: true})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Logf("fault schedule:\n%s", rep.Schedule)
	}
	if rep.Faults == 0 {
		t.Fatalf("smoke schedule injected no faults; rates not wired through")
	}
}

// TestChaosReproducible verifies the tentpole's core promise: the same
// seed yields the byte-for-byte identical fault schedule and the same
// violation set on every run.
func TestChaosReproducible(t *testing.T) {
	cfg := chaos.Config{Seed: 7, Ops: 150, Rates: chaosRates, Record: true}
	a := chaos.Run(cfg)
	b := chaos.Run(cfg)
	if a.Schedule != b.Schedule {
		t.Fatalf("same seed produced different schedules:\n--- run 1\n%s\n--- run 2\n%s", a.Schedule, b.Schedule)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("same seed produced different violations: %v vs %v", a.Violations, b.Violations)
	}
	if a.Faults != b.Faults {
		t.Fatalf("same seed produced different fault counts: %d vs %d", a.Faults, b.Faults)
	}
}

// TestChaosFaultFree runs the workload with zero fault rates: the
// invariants must hold trivially, proving the workload itself is sound.
func TestChaosFaultFree(t *testing.T) {
	rep := chaos.Run(chaos.Config{Seed: 3, Ops: 200})
	if len(rep.Violations) > 0 {
		t.Fatalf("violations with no faults injected: %v", rep.Violations)
	}
	if rep.Faults != 0 {
		t.Fatalf("fault-free run reported %d faults", rep.Faults)
	}
}
