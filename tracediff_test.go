package laminar_test

// Differential oracle for trace propagation: the netdiff script is run
// remotely WITH tracing enabled — every open mints a trace context,
// carries it in the netlabel frame extension, and binds it to the far
// endpoint — and the kernel/LSM verdict stream must still be
// byte-identical to the untraced in-process replay, under the same
// link-kill chaos, for every seed and both locking disciplines.
//
// Why this must hold: the trace machinery is observation, not policy.
// TraceCtx fields are derived only from data the transport already
// carries (node ids, incarnation epochs, per-node open counters), the
// enforcement path never reads the trace registry, and stamping happens
// strictly after the verdict is computed. If tracing could shift, add,
// or suppress even one verdict, trace bytes would be a covert channel —
// a receiver could learn about labels it cannot read by watching its
// own verdict stream change. This oracle, with netdiff_test.go's
// untraced run over the same seeds, pins traced == untraced == replay.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// TestChaosTraceOracle: 30 seeds of link-kill chaos × both locking
// disciplines, tracing ON; every traced remote verdict stream must
// equal the untraced in-process replay byte for byte.
func TestChaosTraceOracle(t *testing.T) {
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			want, wantT1 := netdiffReplay(t, mode.bigLock)
			if want == "" {
				t.Fatal("replay produced no verdicts; the oracle is vacuous")
			}
			if n := len(strings.Split(want, "\n")); n < 4 {
				t.Fatalf("replay produced only %d verdicts", n)
			}
			for seed := int64(1); seed <= 30; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					got, gotT1 := netdiffRemote(t, seed, mode.bigLock, true)
					if gotT1 != wantT1 {
						t.Fatalf("tag allocation diverged: traced t1=%d, replay t1=%d", gotT1, wantT1)
					}
					if got != want {
						t.Errorf("traced verdict stream diverged from untraced replay\n--- traced (seed %d)\n%s\n--- replay\n%s", seed, got, want)
					}
				})
			}
		})
	}
}

// TestTraceOracleDirectAB compares traced and untraced REMOTE runs of
// the same seed head to head — no replay in the middle. Same chaos
// schedule, same script; the only difference is the trace machinery,
// which must be invisible in the comparable stream.
func TestTraceOracleDirectAB(t *testing.T) {
	for _, seed := range []int64{2, 11, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			untraced, t1a := netdiffRemote(t, seed, false, false)
			traced, t1b := netdiffRemote(t, seed, false, true)
			if t1a != t1b {
				t.Fatalf("tag allocation diverged: untraced t1=%d, traced t1=%d", t1a, t1b)
			}
			if traced != untraced {
				t.Errorf("tracing changed the verdict stream for seed %d\n--- traced\n%s\n--- untraced\n%s", seed, traced, untraced)
			}
		})
	}
}

// tracedDenialStamp boots a fault-free two-node transport with tracing
// on or off, drives one denial on the accepted (trace-bound) endpoint,
// and returns how many denial events carried a trace context.
func tracedDenialStamp(t *testing.T, tracing bool) int {
	t.Helper()
	a := netdiffBoot(t, false)
	b := netdiffBoot(t, false)
	nodeA := netlabel.NewNode(netlabel.Config{Kernel: a.k, Module: a.mod, Recorder: a.rec, NodeID: 1, Tracing: tracing})
	nodeB := netlabel.NewNode(netlabel.Config{Kernel: b.k, Module: b.mod, Recorder: b.rec, NodeID: 2, Tracing: tracing})
	if err := nodeA.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	defer nodeB.Close()

	t1, err := a.k.AllocTag(a.user)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.Open(a.user, nodeB.Addr(), difc.Labels{S: difc.NewLabel(t1)}); err != nil {
		t.Fatal(err)
	}
	var fdB kernel.FD
	deadline := time.Now().Add(10 * time.Second)
	for {
		nodeA.Pump()
		nodeB.Pump()
		var aerr error
		if fdB, _, aerr = nodeB.Accept(b.user); aerr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("labeled channel never arrived")
		}
	}
	// Bob lacks t1: his own LSM denies the Recv on the bound endpoint.
	if _, rerr := b.k.Recv(b.user, fdB, make([]byte, 16)); rerr == nil {
		t.Fatal("secret recv allowed")
	}
	stamped := 0
	for _, e := range b.rec.Snapshot() {
		if e.Kind == telemetry.KindDeny && e.TraceID != 0 {
			stamped++
		}
	}
	return stamped
}

// TestTraceOracleNonVacuous guards the A/B against silent no-ops: a
// traced run must stamp trace context onto denials at bound endpoints
// (else the oracle compares two identical untraced systems), and an
// untraced run must stamp none (else "tracing off" is not off).
func TestTraceOracleNonVacuous(t *testing.T) {
	if got := tracedDenialStamp(t, true); got == 0 {
		t.Fatal("traced run recorded no trace-stamped denial: the trace oracle is vacuous")
	}
	if got := tracedDenialStamp(t, false); got != 0 {
		t.Fatalf("untraced run recorded %d trace-stamped denials, want 0", got)
	}
}
