package laminar_test

// Differential oracle for the cross-kernel labeled transport: a scripted
// two-principal flow is run REMOTELY (two kernels joined by real TCP,
// with link-kill faults injected into the transport) and REPLAYED
// in-process (one kernel, a labeled socketpair, no network at all). The
// kernel/LSM verdict streams of the two runs must be byte-identical.
//
// Why this must hold: every policy check fires on an endpoint the acting
// task's own kernel owns — Send checks before bytes enter the endpoint,
// Recv checks before the buffer is even inspected — so the verdict
// stream is a function of the operation/label script alone. What the
// network does between the endpoints (drop a batch, kill a link mid-
// handshake, lose an Open) can change which BYTES arrive, never which
// VERDICTS are issued. Transport-layer events (LayerNet) are exactly
// the fault-dependent residue, and are excluded.
//
// The oracle also depends on deterministic tag numbering: both runs
// allocate tags in lockstep from freshly booted modules, so tag N in the
// remote run names the same lattice point as tag N in the replay.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// netdiffRates: frequent frame loss, regular link kills — every seed's
// schedule differs, every verdict stream must not.
var netdiffRates = faultinject.Rates{Error: 0.05, Crash: 0.02}

// netdiffVerdict renders one policy denial in the byte-comparable form.
// TID/Proc/Seq are deliberately excluded (they name kernel-local task
// identities); everything the CHECK saw is included.
func netdiffVerdict(e telemetry.Event) string {
	src, _ := e.SrcLabels()
	dst, _ := e.DstLabels()
	return fmt.Sprintf("%s|%s|%s|%v|%v->%v", e.Site, e.Op, e.Rule, e.Delta, src, dst)
}

// verdictLog collects policy verdicts from one or more recorders in
// emission order. The scripts below are single-threaded, so the order
// is the script's own.
type verdictLog struct {
	mu    sync.Mutex
	lines []string
}

func (v *verdictLog) attach(rec *telemetry.Recorder) func() {
	return rec.Subscribe(func(e telemetry.Event) {
		if e.Kind != telemetry.KindDeny {
			return
		}
		if e.Layer != telemetry.LayerKernel && e.Layer != telemetry.LayerLSM {
			return
		}
		v.mu.Lock()
		v.lines = append(v.lines, netdiffVerdict(e))
		v.mu.Unlock()
	})
}

func (v *verdictLog) dump() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return strings.Join(v.lines, "\n")
}

// netdiffStack is one booted kernel + module + recorder + user task.
type netdiffStack struct {
	k    *kernel.Kernel
	mod  *lsm.Module
	rec  *telemetry.Recorder
	user *kernel.Task
}

func netdiffBoot(t *testing.T, bigLock bool) *netdiffStack {
	t.Helper()
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	opts := []kernel.Option{kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec)}
	if bigLock {
		opts = append(opts, kernel.WithBigLock())
	}
	k := kernel.New(opts...)
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &netdiffStack{k: k, mod: mod, rec: rec, user: user}
}

// netdiffOps drives the scripted flow. Both runs call this with their
// own endpoints; every policy-relevant operation executes exactly once,
// in this order, so the verdict streams are comparable byte for byte.
//
// alice/bob are the acting tasks on kernels ka/kb (the same kernel in
// the replay). pubA/pubB is an unlabeled channel, secA/secB one labeled
// {S: t1} which bob has no capability for.
func netdiffOps(t *testing.T, ka, kb *kernel.Kernel,
	alice, bob *kernel.Task, pubA, pubB, secA, secB kernel.FD, t1 difc.Tag) {
	t.Helper()
	buf := make([]byte, 64)

	// 1. Public send: allowed.
	if n, err := ka.Send(alice, pubA, []byte("public-0")); err != nil || n != 8 {
		t.Fatalf("op1 send = %d, %v", n, err)
	}
	// 2. Bob reads the secret channel: DENIED by his own kernel, before
	// the buffer is inspected — arrival is irrelevant.
	if _, err := kb.Recv(bob, secB, buf); err == nil {
		t.Fatal("op2: secret recv allowed")
	}
	// 3. Alice writes up into the secret channel: allowed ({} ⊆ {t1}).
	if n, err := ka.Send(alice, secA, []byte("secret")); err != nil || n != 6 {
		t.Fatalf("op3 send = %d, %v", n, err)
	}
	// 4. Alice taints herself with a fresh tag.
	t2, err := ka.AllocTag(alice)
	if err != nil {
		t.Fatalf("op4 alloc: %v", err)
	}
	if err := ka.SetTaskLabel(alice, kernel.Secrecy, difc.NewLabel(t2)); err != nil {
		t.Fatalf("op4 taint: %v", err)
	}
	// 5. Tainted send on the public channel: DENIED, silently — the
	// return values must be indistinguishable from op 1's.
	if n, err := ka.Send(alice, pubA, []byte("leak-pub")); err != nil || n != 8 {
		t.Fatalf("op5 send = %d, %v (drop must look delivered)", n, err)
	}
	// 6. Tainted send on the secret channel: DENIED ({t2} ⊄ {t1}).
	if n, err := ka.Send(alice, secA, []byte("leak-s")); err != nil || n != 6 {
		t.Fatalf("op6 send = %d, %v", n, err)
	}
	// 7. Bob grabs for the secret label without capabilities: DENIED.
	if err := kb.SetTaskLabel(bob, kernel.Secrecy, difc.NewLabel(t1)); err == nil {
		t.Fatal("op7: capability-free label raise allowed")
	}
	// 8. Alice declassifies back (she holds t2⁻ from the allocation).
	if err := ka.SetTaskLabel(alice, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatalf("op8 untaint: %v", err)
	}
	// 9. Clean public send again: allowed.
	if n, err := ka.Send(alice, pubA, []byte("public-1")); err != nil || n != 8 {
		t.Fatalf("op9 send = %d, %v", n, err)
	}
	// 10. Bob reads the public channel: allowed; EAGAIN (bytes lost or
	// late) and delivery are both silent, so no verdict either way.
	kb.Recv(bob, pubB, buf)
}

// netdiffRemote runs the script across two kernels over localhost TCP
// with seeded link faults, returning the verdict stream and t1. With
// tracing on, every open mints and propagates a trace context — which
// must not perturb the stream (see tracediff_test.go).
func netdiffRemote(t *testing.T, seed int64, bigLock, tracing bool) (string, difc.Tag) {
	t.Helper()
	a := netdiffBoot(t, bigLock)
	b := netdiffBoot(t, bigLock)

	planA := faultinject.NewPlan(seed)
	planA.SetRates("net.", netdiffRates)
	planB := faultinject.NewPlan(seed + 7919)
	planB.SetRates("net.", netdiffRates)

	nodeA := netlabel.NewNode(netlabel.Config{Kernel: a.k, Module: a.mod, Recorder: a.rec, Injector: planA, NodeID: 1, Tracing: tracing})
	nodeB := netlabel.NewNode(netlabel.Config{Kernel: b.k, Module: b.mod, Recorder: b.rec, Injector: planB, NodeID: 2, Tracing: tracing})
	if err := nodeA.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	defer nodeB.Close()

	log := &verdictLog{}
	defer log.attach(a.rec)()
	defer log.attach(b.rec)()

	t1, err := a.k.AllocTag(a.user)
	if err != nil {
		t.Fatal(err)
	}

	// establish opens a channel and pumps until bob holds the far end,
	// re-opening when the link ate the Open frame. Retries emit no
	// verdicts (creates are allowed, and the recorders sit at LevelDeny),
	// so the faulted setup phase is invisible to the oracle — which is
	// the point.
	establish := func(labels difc.Labels) (kernel.FD, kernel.FD) {
		want := difc.InternLabels(labels)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			fdA, oerr := nodeA.Open(a.user, nodeB.Addr(), labels)
			if oerr != nil {
				continue // link down this instant; dial again
			}
			for i := 0; i < 400; i++ {
				nodeA.Pump()
				nodeB.Pump()
				fdB, got, aerr := nodeB.Accept(b.user)
				if aerr == nil {
					if got.Equal(want) {
						return fdA, fdB
					}
					continue // stale duplicate from an earlier retry
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		t.Fatalf("seed %d: channel %v never established", seed, labels)
		return -1, -1
	}

	pubA, pubB := establish(difc.Labels{})
	secA, secB := establish(difc.Labels{S: difc.NewLabel(t1)})

	netdiffOps(t, a.k, b.k, a.user, b.user, pubA, pubB, secA, secB, t1)
	// Let the transport settle so late LayerNet faults can try (and must
	// fail) to perturb the captured stream.
	for i := 0; i < 50; i++ {
		nodeA.Pump()
		nodeB.Pump()
	}
	return log.dump(), t1
}

// netdiffReplay runs the identical script through one kernel and an
// in-process labeled socketpair: the fault-free ground truth.
func netdiffReplay(t *testing.T, bigLock bool) (string, difc.Tag) {
	t.Helper()
	s := netdiffBoot(t, bigLock)
	bob, err := s.k.Spawn(s.k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}

	log := &verdictLog{}
	defer log.attach(s.rec)()

	t1, err := s.k.AllocTag(s.user)
	if err != nil {
		t.Fatal(err)
	}
	pair := func(labels difc.Labels) (kernel.FD, kernel.FD) {
		x, y, perr := s.k.SocketpairLabeled(s.user, labels)
		if perr != nil {
			t.Fatal(perr)
		}
		bfd, derr := s.k.DupTo(s.user, y, bob)
		if derr != nil {
			t.Fatal(derr)
		}
		return x, bfd
	}
	pubA, pubB := pair(difc.Labels{})
	secA, secB := pair(difc.Labels{S: difc.NewLabel(t1)})

	netdiffOps(t, s.k, s.k, s.user, bob, pubA, pubB, secA, secB, t1)
	return log.dump(), t1
}

// TestNetDifferentialOracle: 30 seeds of link-kill chaos × both locking
// disciplines; every remote verdict stream must equal the in-process
// replay byte for byte.
func TestNetDifferentialOracle(t *testing.T) {
	for _, mode := range []struct {
		name    string
		bigLock bool
	}{{"sharded", false}, {"biglock", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			want, wantT1 := netdiffReplay(t, mode.bigLock)
			if want == "" {
				t.Fatal("replay produced no verdicts; the oracle is vacuous")
			}
			if n := len(strings.Split(want, "\n")); n < 4 {
				t.Fatalf("replay produced only %d verdicts", n)
			}
			for seed := int64(1); seed <= 30; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					got, gotT1 := netdiffRemote(t, seed, mode.bigLock, false)
					if gotT1 != wantT1 {
						t.Fatalf("tag allocation diverged: remote t1=%d, replay t1=%d", gotT1, wantT1)
					}
					if got != want {
						t.Errorf("verdict stream diverged from in-process replay\n--- remote (seed %d)\n%s\n--- replay\n%s", seed, got, want)
					}
				})
			}
		})
	}
}
