// Deny-provenance conformance: every denial the kernel/LSM returns, across
// the fs, pipe, signal and label-management op families, must land in the
// telemetry flight ring as a KindDeny event naming the violated rule and
// the offending tag delta. This is the observability mirror of PR 1's
// errno-uniformity tests: there we checked *what* a denial looks like to
// the caller, here we check that no deny path escapes without evidence.
package laminar_test

import (
	"testing"

	"laminar"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

func TestDenyProvenanceAcrossOpFamilies(t *testing.T) {
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	sys := laminar.NewSystem(kernel.WithTelemetry(rec))
	k := sys.Kernel()

	alice, err := sys.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.Login("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(alice, "/tmp"); err != nil {
		t.Fatal(err)
	}

	tag, err := k.AllocTag(alice)
	if err != nil {
		t.Fatal(err)
	}
	secret := difc.NewLabel(tag)

	// fs: alice creates a secret file, bob's unlabeled open is denied.
	fd, err := k.CreateFileLabeled(alice, "secret", 0o600, difc.Labels{S: secret})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Close(alice, fd); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(bob, "/tmp/secret", kernel.ORead); err == nil {
		t.Fatal("unlabeled open of secret file succeeded")
	}

	// pipe: alice makes an unlabeled pipe, taints herself, then writes —
	// a write-down the kernel drops silently; the hook denial must still
	// be recorded.
	_, w, err := k.Pipe(alice)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetTaskLabel(alice, kernel.Secrecy, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(alice, w, []byte("leak")); err != nil {
		t.Fatalf("pipe write-down should drop silently, got %v", err)
	}

	// signal: tainted alice signals unlabeled bob.
	if err := k.Kill(alice, bob.TID, kernel.SIGUSR1); err == nil {
		t.Fatal("tainted signal to unlabeled task succeeded")
	}

	// label change: bob raises alice's tag without holding t+.
	if err := k.SetTaskLabel(bob, kernel.Secrecy, secret); err == nil {
		t.Fatal("label raise without capability succeeded")
	}

	denials := rec.Denials()
	if len(denials) == 0 {
		t.Fatal("no denial events recorded")
	}

	// Each family must have produced at least one denial that names a
	// real rule and the exact offending tag.
	type want struct {
		op   string
		rule telemetry.Rule
	}
	wants := map[string]want{
		"fs-read":      {op: "read", rule: telemetry.RuleSecrecy},
		"pipe-write":   {op: "write", rule: telemetry.RuleSecrecy},
		"signal":       {op: "signal", rule: telemetry.RuleSecrecy},
		"label-change": {op: "set_task_label", rule: telemetry.RuleLabelChange},
	}
	found := map[string]bool{}
	for _, e := range denials {
		if e.Rule == telemetry.RuleNone {
			t.Errorf("denial without rule provenance at %s: %s", e.Site, e.String())
		}
		for name, w := range wants {
			if e.Op != w.op || e.Rule != w.rule {
				continue
			}
			hasTag := false
			for _, d := range e.Delta {
				if d == tag {
					hasTag = true
				}
			}
			if !hasTag {
				t.Errorf("%s denial delta %v misses offending tag %v", name, e.Delta, tag)
				continue
			}
			if e.Site == "" {
				t.Errorf("%s denial has no site", name)
			}
			found[name] = true
		}
	}
	for name := range wants {
		if !found[name] {
			t.Errorf("op family %s: no provenance-carrying denial recorded", name)
		}
	}

	// Metrics agree with the ring: denials counted, rules attributed.
	snap := rec.MetricsSnapshot()
	if snap.Denials == 0 || len(snap.DenialsByRule) == 0 {
		t.Errorf("metrics lost the denials: %+v", snap)
	}

	// LevelOff really is off: further denials leave no trace.
	rec.SetLevel(telemetry.LevelOff)
	before := len(rec.Snapshot())
	if _, err := k.Open(bob, "/tmp/secret", kernel.ORead); err == nil {
		t.Fatal("unlabeled open of secret file succeeded")
	}
	if after := len(rec.Snapshot()); after != before {
		t.Errorf("LevelOff recorded %d new events", after-before)
	}
}
