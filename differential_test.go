package laminar_test

// Differential lock-mode testing: the serial big-lock kernel is kept
// reachable exactly so it can serve as the oracle for the sharded one.
// A deterministic, single-threaded workload is replayed through both
// kernels and every observable must match byte for byte: per-op errnos,
// bytes read, label records, final filesystem contents, and the total
// number of security-hook invocations. Any divergence means the
// fine-grained locking changed semantics, not just performance.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"laminar"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
)

// diffErrname collapses an error to a stable errno identity.
func diffErrname(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, kernel.ErrNoEnt):
		return "ENOENT"
	case errors.Is(err, kernel.ErrAccess):
		return "EACCES"
	case errors.Is(err, kernel.ErrPerm):
		return "EPERM"
	case errors.Is(err, kernel.ErrAgain):
		return "EAGAIN"
	case errors.Is(err, kernel.ErrExist):
		return "EEXIST"
	case errors.Is(err, kernel.ErrBadF):
		return "EBADF"
	case errors.Is(err, kernel.ErrInval):
		return "EINVAL"
	case errors.Is(err, kernel.ErrIsDir):
		return "EISDIR"
	default:
		return err.Error()
	}
}

// diffRun replays the deterministic workload on one system and returns
// (trace, final-state snapshot, hook calls).
func diffRun(t *testing.T, opts ...kernel.Option) ([]string, []string, uint64) {
	t.Helper()
	sys := laminar.NewSystem(opts...)
	k := sys.Kernel()
	mod := sys.Module()

	var trace []string
	record := func(op string, err error) {
		trace = append(trace, fmt.Sprintf("%s=%s", op, diffErrname(err)))
	}

	alice, err := sys.Login("alice")
	if err != nil {
		t.Fatalf("login alice: %v", err)
	}
	bob, err := sys.Login("bob")
	if err != nil {
		t.Fatalf("login bob: %v", err)
	}
	secretTag, err := k.AllocTag(alice)
	if err != nil {
		t.Fatalf("alloc tag: %v", err)
	}
	secret := difc.Labels{S: difc.NewLabel(secretTag)}

	rng := rand.New(rand.NewSource(99))
	var aliceFiles []string
	nfile := 0
	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1: // alice creates a secret file and fills it
			nfile++
			path := fmt.Sprintf("/home/alice/s%d", nfile)
			fd, err := k.CreateFileLabeled(alice, path, 0o600, secret)
			record("create-secret "+path, err)
			if err == nil {
				_, werr := k.Write(alice, fd, []byte("secret-"+path))
				record("fill "+path, werr)
				k.Close(alice, fd)
				aliceFiles = append(aliceFiles, path)
			}
		case 2: // alice creates an unlabeled file; odd ops fill it with a
			// batched vectored write so WriteVec sits under the same
			// byte-for-byte differential as the scalar path
			nfile++
			path := fmt.Sprintf("/home/alice/p%d", nfile)
			fd, err := k.Open(alice, path, kernel.OWrite|kernel.OCreate)
			record("create-plain "+path, err)
			if err == nil {
				if op%2 == 1 {
					_, werr := k.WriteVec(alice, fd, [][]byte{[]byte("plain-"), []byte(path)})
					record("fillvec "+path, werr)
				} else {
					_, werr := k.Write(alice, fd, []byte("plain-"+path))
					record("fill "+path, werr)
				}
				k.Close(alice, fd)
			}
		case 3: // bob probes a secret path: every outcome must be a hidden denial
			if len(aliceFiles) == 0 {
				continue
			}
			path := aliceFiles[rng.Intn(len(aliceFiles))]
			_, serr := k.Stat(bob, path)
			record("bob-stat "+path, serr)
			_, oerr := k.Open(bob, path, kernel.ORead)
			record("bob-open "+path, oerr)
			record("bob-unlink "+path, k.Unlink(bob, path))
		case 4: // alice raises her label and reads a secret back
			if len(aliceFiles) == 0 {
				continue
			}
			path := aliceFiles[rng.Intn(len(aliceFiles))]
			record("raise", k.SetTaskLabel(alice, kernel.Secrecy, difc.NewLabel(secretTag)))
			fd, oerr := k.Open(alice, path, kernel.ORead)
			record("alice-open "+path, oerr)
			if oerr == nil {
				buf := make([]byte, 64)
				n, rerr := k.Read(alice, fd, buf)
				trace = append(trace, fmt.Sprintf("alice-read %s=%s:%q", path, diffErrname(rerr), buf[:n]))
				k.Close(alice, fd)
			}
			record("clear", k.SetTaskLabel(alice, kernel.Secrecy, difc.EmptyLabel))
		case 5: // tainted pipe smuggle: bob must read nothing
			record("taint", k.SetTaskLabel(alice, kernel.Secrecy, difc.NewLabel(secretTag)))
			rfd, wfd, perr := k.Pipe(alice)
			record("pipe", perr)
			if perr == nil {
				_, werr := k.Write(alice, wfd, []byte("PIPE-SECRET"))
				record("pipe-write", werr)
				bfd, derr := k.DupTo(alice, rfd, bob)
				record("pipe-dup", derr)
				if derr == nil {
					buf := make([]byte, 32)
					n, rerr := k.Read(bob, bfd, buf)
					trace = append(trace, fmt.Sprintf("bob-pipe-read=%s:%q", diffErrname(rerr), buf[:n]))
					k.Close(bob, bfd)
				}
				k.Close(alice, rfd)
				k.Close(alice, wfd)
			}
			record("untaint", k.SetTaskLabel(alice, kernel.Secrecy, difc.EmptyLabel))
		case 6: // named socket rendezvous and a message both ways
			name := fmt.Sprintf("diff%d", op)
			record("listen "+name, k.Listen(alice, name))
			cfd, cerr := k.Connect(bob, name)
			record("connect "+name, cerr)
			afd, aerr := k.Accept(alice, name)
			record("accept "+name, aerr)
			if cerr == nil && aerr == nil {
				k.Send(bob, cfd, []byte("hello"))
				buf := make([]byte, 8)
				n, rerr := k.Recv(alice, afd, buf)
				trace = append(trace, fmt.Sprintf("recv %s=%s:%q", name, diffErrname(rerr), buf[:n]))
			}
			if cerr == nil {
				k.Close(bob, cfd)
			}
			if aerr == nil {
				k.Close(alice, afd)
			}
		case 7: // capability transfer over a pipe, then bob reads a secret
			rfd, wfd, perr := k.Pipe(alice)
			record("cap-pipe", perr)
			if perr != nil {
				continue
			}
			record("cap-write", k.WriteCapability(alice, kernel.Capability{Tag: secretTag, Kind: difc.CapPlus}, wfd))
			bfd, derr := k.DupTo(alice, rfd, bob)
			record("cap-dup", derr)
			if derr == nil {
				_, cerr := k.ReadCapability(bob, bfd)
				record("cap-read", cerr)
				k.Close(bob, bfd)
			}
			k.Close(alice, rfd)
			k.Close(alice, wfd)
		case 8: // directory work
			path := fmt.Sprintf("/home/alice/d%d", op)
			record("mkdir "+path, k.Mkdir(alice, path, 0o755))
			names, rerr := k.ReadDir(alice, "/home/alice")
			trace = append(trace, fmt.Sprintf("readdir=%s:%d", diffErrname(rerr), len(names)))
		default: // task churn and an occasional unlink of her own file
			child, ferr := k.Fork(alice, nil)
			record("fork", ferr)
			if ferr == nil {
				k.Exit(child)
			}
			if len(aliceFiles) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(aliceFiles))
				record("unlink "+aliceFiles[i], k.Unlink(alice, aliceFiles[i]))
				aliceFiles = append(aliceFiles[:i], aliceFiles[i+1:]...)
			}
		}
	}

	// Final snapshot: walk the tree as alice with her secrecy raised so
	// every file she created is visible, recording type, content and the
	// canonical persistent label record for each path. Raw inode numbers
	// are process-global and deliberately excluded.
	if err := k.SetTaskLabel(alice, kernel.Secrecy, difc.NewLabel(secretTag)); err != nil {
		t.Fatalf("final raise: %v", err)
	}
	var snapshot []string
	var walk func(path string)
	walk = func(path string) {
		st, err := k.Stat(alice, path)
		if err != nil {
			snapshot = append(snapshot, fmt.Sprintf("%s stat=%s", path, diffErrname(err)))
			return
		}
		line := fmt.Sprintf("%s type=%d size=%d nlink=%d", path, st.Type, st.Size, st.Nlink)
		if st.Type == kernel.TypeRegular {
			if fd, oerr := k.Open(alice, path, kernel.ORead); oerr == nil {
				buf := make([]byte, 256)
				n, _ := k.Read(alice, fd, buf)
				line += fmt.Sprintf(" data=%q", buf[:n])
				k.Close(alice, fd)
			} else {
				line += " data=denied:" + diffErrname(oerr)
			}
			if rec, xerr := k.GetXattr(alice, path, lsm.XattrLabel); xerr == nil {
				line += fmt.Sprintf(" label=%x", rec)
			}
		}
		snapshot = append(snapshot, line)
		if st.Type == kernel.TypeDir {
			names, rerr := k.ReadDir(alice, path)
			if rerr != nil {
				snapshot = append(snapshot, fmt.Sprintf("%s readdir=%s", path, diffErrname(rerr)))
				return
			}
			sort.Strings(names)
			for _, name := range names {
				child := path + "/" + name
				if path == "/" {
					child = "/" + name
				}
				walk(child)
			}
		}
	}
	walk("/")
	// Task labels are observable state too.
	snapshot = append(snapshot,
		"alice-labels="+mod.TaskLabels(alice).String(),
		"bob-labels="+mod.TaskLabels(bob).String())

	return trace, snapshot, k.HookCalls()
}

// TestDifferentialLockModes replays the same deterministic workload
// through the sharded kernel and the big-lock kernel and requires
// identical traces, identical final filesystem state and identical
// hook-call counts.
func TestDifferentialLockModes(t *testing.T) {
	shardTrace, shardSnap, shardHooks := diffRun(t)
	serialTrace, serialSnap, serialHooks := diffRun(t, kernel.WithBigLock())

	diffLines := func(kind string, a, b []string) {
		t.Helper()
		if len(a) != len(b) {
			t.Errorf("%s length: sharded %d vs big lock %d", kind, len(a), len(b))
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				t.Errorf("%s[%d]: sharded %q != big lock %q", kind, i, a[i], b[i])
			}
		}
	}
	diffLines("trace", shardTrace, serialTrace)
	diffLines("snapshot", shardSnap, serialSnap)
	if shardHooks != serialHooks {
		t.Errorf("hook calls: sharded %d != big lock %d", shardHooks, serialHooks)
	}

	// Third and fourth replay modes: the same workload with the verdict
	// cache enabled, in both locking disciplines. The cache memoizes
	// (subject-epoch, object-epoch, op) verdicts below the hook layer, so
	// not only every errno and every byte of final state but the total
	// hook-call count must be indistinguishable from the uncached runs —
	// a cached verdict is the same immutable error value the slow path
	// produced, and the hooks still fire on every operation.
	cacheTrace, cacheSnap, cacheHooks := diffRun(t, kernel.WithVerdictCache())
	diffLines("cached-trace", shardTrace, cacheTrace)
	diffLines("cached-snapshot", shardSnap, cacheSnap)
	if cacheHooks != shardHooks {
		t.Errorf("hook calls: sharded %d != sharded+cache %d", shardHooks, cacheHooks)
	}
	cbTrace, cbSnap, cbHooks := diffRun(t, kernel.WithVerdictCache(), kernel.WithBigLock())
	diffLines("cached-biglock-trace", shardTrace, cbTrace)
	diffLines("cached-biglock-snapshot", shardSnap, cbSnap)
	if cbHooks != shardHooks {
		t.Errorf("hook calls: sharded %d != biglock+cache %d", shardHooks, cbHooks)
	}

	// Sanity: the workload actually exercised denials and secrets — a
	// trace with no denied probe would make the equivalence vacuous.
	joined := strings.Join(shardTrace, "\n")
	for _, want := range []string{"bob-stat", "bob-open", "=ENOENT", "create-secret", "bob-pipe-read"} {
		if !strings.Contains(joined, want) {
			t.Errorf("workload never produced %q; differential check is vacuous", want)
		}
	}
}
