// Command laminar-netd runs a Laminar kernel attached to the labeled
// network: a netlabel node that exchanges labeled messages with peer
// kernels over TCP, every remote flow checked by the receiving kernel's
// LSM exactly like a local socket operation (DESIGN.md §12).
//
// Modes:
//
//	laminar-netd -smoke
//	    Self-contained two-kernel smoke test over localhost TCP: one
//	    allowed flow must deliver, one denied flow must silently drop
//	    on the receiving kernel with recorded provenance. Exit 0 on
//	    success, 1 on any violated expectation. CI runs this.
//
//	laminar-netd -listen :7609
//	    Daemon: boot a kernel+LSM stack, listen for peer kernels, pump
//	    until interrupted. -echo makes the daemon's own task accept
//	    every channel it may read and echo the bytes back.
//
//	laminar-netd -dial host:7609 -msg 'hello'
//	    Client: boot a kernel, open an unlabeled channel to a daemon,
//	    send the message, and print whatever comes back within -wait.
//
//	laminar-netd -cluster-smoke
//	    Self-contained three-node cluster smoke test: form a cluster
//	    (join changes, heartbeats, failure detection), kill one node,
//	    restart it from the same durable store under a bumped
//	    incarnation epoch, reconverge, and deliver a routed flow through
//	    a fully checked relay hop. Exit 0 on success, 1 on any violated
//	    expectation. CI runs this.
//
//	laminar-netd -trace-smoke [-dumpdir DIR]
//	    Three-node flow-tracing smoke test: route a secrecy-labeled flow
//	    1 → relay at 2 → 3 with tracing on, let node 3's own LSM deny
//	    the final Recv, and reconstruct the hop-by-hop route from the
//	    per-node flight dumps (explain-route), re-running every recorded
//	    check. With -dumpdir the per-node and merged dumps are written
//	    there for laminar-trace to consume. Exit 0/1. CI runs this.
//
//	laminar-netd -cluster-stats
//	    Three-node metrics-aggregation demo: converge, exchange routed
//	    traffic, wait for stats broadcasts to land, kill one node, show
//	    its slice going stale, and print the merged cluster snapshot in
//	    Prometheus text format. Exit 0/1. CI runs this.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"laminar/internal/cluster"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// node is one booted kernel+LSM+transport stack with a user task.
type node struct {
	k    *kernel.Kernel
	mod  *lsm.Module
	user *kernel.Task
	rec  *telemetry.Recorder
	nl   *netlabel.Node
}

func bootNode(id uint64, batching bool) (*node, error) {
	return bootNodeAt(id, batching, telemetry.LevelDeny, false)
}

func bootNodeAt(id uint64, batching bool, level telemetry.Level, tracing bool) (*node, error) {
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(level)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		return nil, err
	}
	nl := netlabel.NewNode(netlabel.Config{
		Kernel: k, Module: mod, Recorder: rec, NodeID: id, Batching: batching, Tracing: tracing,
	})
	return &node{k: k, mod: mod, user: user, rec: rec, nl: nl}, nil
}

func main() {
	var (
		smoke    = flag.Bool("smoke", false, "two-kernel localhost self test (allowed + denied flow); exit 0/1")
		cSmoke   = flag.Bool("cluster-smoke", false, "three-node cluster self test (join, kill, restart, converge, routed flow); exit 0/1")
		tSmoke   = flag.Bool("trace-smoke", false, "three-node flow-tracing self test (routed denial reconstructed hop by hop); exit 0/1")
		dumpdir  = flag.String("dumpdir", "", "with -trace-smoke: write per-node and merged flight dumps here")
		cStats   = flag.Bool("cluster-stats", false, "three-node metrics-aggregation demo (stats broadcasts, staleness, merged Prometheus output); exit 0/1")
		listen   = flag.String("listen", "", "daemon mode: listen address for peer kernels")
		echo     = flag.Bool("echo", false, "with -listen: echo readable channels back to the peer")
		dial     = flag.String("dial", "", "client mode: peer address to open a channel to")
		msg      = flag.String("msg", "ping from laminar-netd", "with -dial: message to send")
		wait     = flag.Duration("wait", 2*time.Second, "with -dial: how long to wait for a reply")
		batching = flag.Bool("batching", true, "coalesce each flush into one TCP write")
		interval = flag.Duration("interval", time.Millisecond, "pump interval")
	)
	flag.Parse()

	switch {
	case *smoke:
		if err := runSmoke(*batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("laminar-netd: smoke ok — allowed flow delivered, denied flow dropped silently with provenance")
	case *cSmoke:
		if err := runClusterSmoke(*batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: CLUSTER SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("laminar-netd: cluster smoke ok — converged, survived a kill+restart under a new epoch, routed flow relayed with per-hop checks")
	case *tSmoke:
		if err := runTraceSmoke(*batching, *dumpdir); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: TRACE SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("laminar-netd: trace smoke ok — routed denial reconstructed hop by hop, every recorded check replayed MATCHES")
	case *cStats:
		if err := runClusterStats(*batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: CLUSTER STATS FAIL:", err)
			os.Exit(1)
		}
	case *listen != "":
		if err := runDaemon(*listen, *echo, *batching, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd:", err)
			os.Exit(1)
		}
	case *dial != "":
		if err := runClient(*dial, *msg, *wait, *batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSmoke boots two kernels joined over localhost TCP and checks the
// PR's two headline behaviours end to end.
func runSmoke(batching bool) error {
	a, err := bootNode(1, batching)
	if err != nil {
		return err
	}
	b, err := bootNode(2, batching)
	if err != nil {
		return err
	}
	if err := a.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	if err := b.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer a.nl.Close()
	defer b.nl.Close()

	pump := func() { a.nl.Pump(); b.nl.Pump() }
	deadline := time.Now().Add(10 * time.Second)

	// Flow 1 (allowed): unlabeled channel, public payload, must deliver.
	pubA, err := a.nl.Open(a.user, b.nl.Addr(), difc.Labels{})
	if err != nil {
		return fmt.Errorf("open public channel: %w", err)
	}
	// Flow 2 (denied): a channel carrying a secrecy tag B's task lacks.
	tag, err := a.k.AllocTag(a.user)
	if err != nil {
		return err
	}
	secA, err := a.nl.Open(a.user, b.nl.Addr(), difc.Labels{S: difc.NewLabel(tag)})
	if err != nil {
		return fmt.Errorf("open secret channel: %w", err)
	}

	var pubB, secB kernel.FD
	var pubL difc.Labels
	got := 0
	for got < 2 {
		pump()
		fd, labels, aerr := b.nl.Accept(b.user)
		if aerr != nil {
			if time.Now().After(deadline) {
				return errors.New("channels never arrived")
			}
			continue
		}
		if labels.IsEmpty() {
			pubB, pubL = fd, labels
		} else {
			secB = fd
		}
		got++
	}
	_ = pubL

	if _, err := a.k.Send(a.user, pubA, []byte("public hello")); err != nil {
		return fmt.Errorf("public send: %w", err)
	}
	if n, err := a.k.Send(a.user, secA, []byte("classified")); err != nil || n != 10 {
		return fmt.Errorf("secret send = %d, %v (sender must see success)", n, err)
	}

	// The allowed flow delivers.
	buf := make([]byte, 64)
	var public string
	for public != "public hello" {
		pump()
		if n, rerr := b.k.Recv(b.user, pubB, buf); rerr == nil && n > 0 {
			public += string(buf[:n])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("allowed flow stalled: got %q", public)
		}
	}

	// The denied flow is rejected by the RECEIVING kernel, with denial
	// provenance recorded there; the data never becomes readable.
	denials0 := b.rec.M.Denials.Load()
	if _, err := b.k.Recv(b.user, secB, buf); !errors.Is(err, kernel.ErrAccess) {
		return fmt.Errorf("denied recv = %v, want EACCES", err)
	}
	if b.rec.M.Denials.Load() == denials0 {
		return errors.New("denied remote flow left no telemetry on the receiving kernel")
	}
	return nil
}

// clusterMember is one label-plane member for the cluster smoke: a
// booted stack plus its cluster node and durable store. The store is the
// member's identity — restarting with the same store is the same member
// reincarnated under a bumped epoch.
type clusterMember struct {
	*node
	cl    *cluster.Cluster
	store cluster.Store
}

func bootClusterMember(id uint64, seeds []string, store cluster.Store, batching bool) (*clusterMember, error) {
	return bootClusterMemberAt(id, seeds, store, batching, telemetry.LevelDeny, false)
}

func bootClusterMemberAt(id uint64, seeds []string, store cluster.Store, batching bool,
	level telemetry.Level, tracing bool) (*clusterMember, error) {
	n, err := bootNodeAt(id, batching, level, tracing)
	if err != nil {
		return nil, err
	}
	cl := cluster.New(cluster.Config{
		ID: id, Kernel: n.k, Module: n.mod, Recorder: n.rec,
		Store: store, Seeds: seeds, Batching: batching, Tracing: tracing,
	})
	if err := cl.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	if _, err := cl.Join(); err != nil {
		return nil, err
	}
	return &clusterMember{node: n, cl: cl, store: store}, nil
}

// runClusterSmoke exercises the cluster label plane end to end: a
// three-node cluster converges; node 3 is killed and restarted from its
// persisted store, must come back under a strictly larger incarnation
// epoch, and the cluster must reconverge; finally a routed flow from
// node 1 through the relay at node 2 to node 3 must deliver — every hop
// re-checked by that hop's own LSM.
func runClusterSmoke(batching bool) error {
	store3 := cluster.NewMemStore()
	n1, err := bootClusterMember(1, nil, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	defer n1.cl.Close()
	seeds := []string{n1.cl.Addr()}
	n2, err := bootClusterMember(2, seeds, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	defer n2.cl.Close()
	n3, err := bootClusterMember(3, seeds, store3, batching)
	if err != nil {
		return err
	}

	members := func() []*clusterMember { return []*clusterMember{n1, n2, n3} }
	// tickAll advances every node one logical tick, paced so that a TCP
	// round-trip spans about one tick: busy-ticking would outrun heartbeat
	// delivery and flap the failure detector through suspect windows.
	tickAll := func() {
		for _, m := range members() {
			m.cl.Tick()
		}
		time.Sleep(200 * time.Microsecond)
	}
	converge := func(what string) error {
		deadline := time.Now().Add(30 * time.Second)
		for {
			tickAll()
			done := true
			for _, m := range members() {
				if !m.cl.Joined() || !m.cl.Converged(1, 2, 3) {
					done = false
				}
			}
			if done {
				return nil
			}
			if time.Now().After(deadline) {
				var view strings.Builder
				for _, m := range members() {
					fmt.Fprintf(&view, " [joined=%v members=%v]", m.cl.Joined(), m.cl.Members())
				}
				return fmt.Errorf("cluster never converged (%s):%s", what, view.String())
			}
		}
	}
	if err := converge("initial join"); err != nil {
		return err
	}
	epoch0 := n3.cl.Epoch()

	// Kill node 3 and restart the same member from the same store.
	n3.cl.Close()
	n3, err = bootClusterMember(3, seeds, store3, batching)
	if err != nil {
		return fmt.Errorf("restart node 3: %w", err)
	}
	defer func() { n3.cl.Close() }()
	if n3.cl.Epoch() <= epoch0 {
		return fmt.Errorf("restart epoch %d, want > %d (stale incarnations must be distinguishable)",
			n3.cl.Epoch(), epoch0)
	}
	if err := converge("after kill+restart"); err != nil {
		return err
	}

	// Routed flow across the reconverged cluster: 1 → relay at 2 → 3. A
	// routed open that lands in a suspect window at the relay degrades to
	// silence (the unreliable channel), so establishment retries: each
	// attempt sends a uniquely numbered probe and is verified only when
	// that probe arrives at node 3 on an accepted channel — a stale
	// duplicate from an earlier lost attempt can never be mispaired.
	var (
		fdA, fdC    kernel.FD
		accepted    []kernel.FD
		established bool
		attempt     byte
	)
	deadline := time.Now().Add(20 * time.Second)
	buf := make([]byte, 128)
	for !established {
		if time.Now().After(deadline) {
			return errors.New("routed channel 1 -> relay at 2 -> 3 never established")
		}
		attempt++
		fd, oerr := n1.cl.OpenVia(n1.user, 2, 3, difc.Labels{})
		if oerr != nil {
			tickAll()
			continue
		}
		if _, serr := n1.k.Send(n1.user, fd, []byte{0xA5, attempt}); serr != nil {
			return fmt.Errorf("routed probe send: %w", serr)
		}
		for i := 0; i < 400 && !established; i++ {
			tickAll()
			for {
				afd, _, aerr := n3.cl.Node().Accept(n3.user)
				if aerr != nil {
					break
				}
				accepted = append(accepted, afd)
			}
			for _, afd := range accepted {
				if nr, rerr := n3.k.Recv(n3.user, afd, buf); rerr == nil && nr >= 2 &&
					buf[nr-2] == 0xA5 && buf[nr-1] == attempt {
					fdA, fdC, established = fd, afd, true
					break
				}
			}
		}
	}

	const hello = "routed hello through the label plane"
	if _, err := n1.k.Send(n1.user, fdA, []byte(hello)); err != nil {
		return fmt.Errorf("routed send: %w", err)
	}
	var got string
	for got != hello {
		tickAll()
		if nr, rerr := n3.k.Recv(n3.user, fdC, buf); rerr == nil && nr > 0 {
			got += string(buf[:nr])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("routed flow stalled: got %q", got)
		}
	}
	return nil
}

// tickCluster advances every member one logical tick, paced so a TCP
// round-trip spans about one tick (busy-ticking would outrun heartbeat
// delivery and flap the failure detector).
func tickCluster(members []*clusterMember) {
	for _, m := range members {
		m.cl.Tick()
	}
	time.Sleep(200 * time.Microsecond)
}

// convergeCluster ticks until every member is joined and sees every id
// alive.
func convergeCluster(members []*clusterMember, what string, ids ...uint64) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		tickCluster(members)
		done := true
		for _, m := range members {
			if !m.cl.Joined() || !m.cl.Converged(ids...) {
				done = false
			}
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			var view strings.Builder
			for _, m := range members {
				fmt.Fprintf(&view, " [joined=%v members=%v]", m.cl.Joined(), m.cl.Members())
			}
			return fmt.Errorf("cluster never converged (%s):%s", what, view.String())
		}
	}
}

// runTraceSmoke routes a secrecy-labeled flow 1 → relay at 2 → 3 with
// tracing on. Node 3's user task lacks the tag, so node 3's own LSM
// denies the final Recv — the denial event carries the trace context the
// transport propagated across both legs. The route is then reconstructed
// twice: from node 3's dump alone (the denial hop self-explains) and
// from the merged three-node dump (every hop present), with every
// recorded check re-run.
func runTraceSmoke(batching bool, dumpdir string) error {
	n1, err := bootClusterMemberAt(1, nil, cluster.NewMemStore(), batching, telemetry.LevelAll, true)
	if err != nil {
		return err
	}
	defer n1.cl.Close()
	seeds := []string{n1.cl.Addr()}
	n2, err := bootClusterMemberAt(2, seeds, cluster.NewMemStore(), batching, telemetry.LevelAll, true)
	if err != nil {
		return err
	}
	defer n2.cl.Close()
	n3, err := bootClusterMemberAt(3, seeds, cluster.NewMemStore(), batching, telemetry.LevelAll, true)
	if err != nil {
		return err
	}
	defer n3.cl.Close()
	members := []*clusterMember{n1, n2, n3}
	if err := convergeCluster(members, "trace smoke join", 1, 2, 3); err != nil {
		return err
	}

	tag, err := n1.k.AllocTag(n1.user)
	if err != nil {
		return err
	}
	secret := difc.Labels{S: difc.NewLabel(tag)}

	// Establish the routed channel. A routed open landing in a suspect
	// window degrades to silence, so establishment retries; each attempt
	// sends a probe so the relay has bytes to move (the hop-1 checks fire
	// on the relay pump either way).
	var fdC kernel.FD
	established := false
	deadline := time.Now().Add(20 * time.Second)
	var attempt byte
	for !established {
		if time.Now().After(deadline) {
			return errors.New("routed labeled channel 1 -> relay at 2 -> 3 never established")
		}
		attempt++
		fd, oerr := n1.cl.OpenVia(n1.user, 2, 3, secret)
		if oerr != nil {
			tickCluster(members)
			continue
		}
		if _, serr := n1.k.Send(n1.user, fd, []byte{0x5A, attempt}); serr != nil {
			return fmt.Errorf("routed probe send: %w", serr)
		}
		for i := 0; i < 400 && !established; i++ {
			tickCluster(members)
			for {
				afd, labels, aerr := n3.cl.Node().Accept(n3.user)
				if aerr != nil {
					break
				}
				if !labels.S.IsEmpty() {
					fdC, established = afd, true
				}
			}
		}
	}

	// The denial at hop 2: node 3's unlabeled user task may not read the
	// secret endpoint; its own LSM rejects the Recv with provenance.
	buf := make([]byte, 64)
	if _, rerr := n3.k.Recv(n3.user, fdC, buf); !errors.Is(rerr, kernel.ErrAccess) {
		return fmt.Errorf("labeled recv at node 3 = %v, want EACCES", rerr)
	}

	evs1, evs2, evs3 := n1.rec.Snapshot(), n2.rec.Snapshot(), n3.rec.Snapshot()
	var traceID uint64
	for _, e := range evs3 {
		if e.Kind == telemetry.KindDeny && e.TraceID != 0 {
			traceID = e.TraceID
		}
	}
	if traceID == 0 {
		return errors.New("node 3 recorded no traced denial")
	}

	// Hop 2 self-explains from node 3's dump alone.
	rep3, err := telemetry.ExplainRoute(traceID, evs3)
	if err != nil {
		return fmt.Errorf("explain-route from node 3 alone: %w", err)
	}
	if !rep3.Denied || rep3.DeniedHop != 2 {
		return fmt.Errorf("node-3-only route: denied=%v hop=%d, want denial at hop 2", rep3.Denied, rep3.DeniedHop)
	}

	// The merged dump reconstructs every hop, and every replayable check
	// must MATCH its record.
	all := append(append(append([]telemetry.Event(nil), evs1...), evs2...), evs3...)
	rep, err := telemetry.ExplainRoute(traceID, all)
	if err != nil {
		return fmt.Errorf("explain-route from merged dump: %w", err)
	}
	hops := map[uint8]bool{}
	for _, h := range rep.Hops {
		hops[h.Hop] = true
		for _, c := range h.Checks {
			if c.Result.Replayable && !c.Result.Matches {
				return fmt.Errorf("hop %d @ node %d: replay DIVERGED: %s", h.Hop, h.Node, c.Result.Reason)
			}
		}
	}
	for hop := uint8(0); hop <= 2; hop++ {
		if !hops[hop] {
			return fmt.Errorf("merged route is missing hop %d (got %v)", hop, rep.Hops)
		}
	}
	if !rep.Denied || rep.DeniedHop != 2 {
		return fmt.Errorf("merged route: denied=%v hop=%d, want denial at hop 2", rep.Denied, rep.DeniedHop)
	}
	fmt.Print(telemetry.FormatRoute(rep))

	if dumpdir != "" {
		if err := os.MkdirAll(dumpdir, 0o755); err != nil {
			return err
		}
		for i, m := range members {
			f, err := os.Create(fmt.Sprintf("%s/node%d.jsonl", dumpdir, i+1))
			if err != nil {
				return err
			}
			if err := m.rec.DumpWithMeta(f); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		f, err := os.Create(dumpdir + "/merged.jsonl")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.WriteDump(f, all); err != nil {
			return err
		}
	}
	return nil
}

// runClusterStats demonstrates cluster-wide metrics aggregation: stats
// broadcasts land on every peer, a killed node's slice goes stale, and
// the merged snapshot renders as Prometheus text.
func runClusterStats(batching bool) error {
	n1, err := bootClusterMember(1, nil, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	defer n1.cl.Close()
	seeds := []string{n1.cl.Addr()}
	n2, err := bootClusterMember(2, seeds, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	defer n2.cl.Close()
	n3, err := bootClusterMember(3, seeds, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	members := []*clusterMember{n1, n2, n3}
	if err := convergeCluster(members, "stats join", 1, 2, 3); err != nil {
		return err
	}

	// Tick until node 1 has heard a stats broadcast from both peers.
	deadline := time.Now().Add(30 * time.Second)
	for {
		tickCluster(members)
		if len(n1.cl.ClusterSnapshot().Nodes) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("stats broadcasts never reached node 1")
		}
	}

	// Kill node 3; its cached slice must go stale on node 1 once the
	// failure detector reclassifies it.
	n3.cl.Close()
	live := []*clusterMember{n1, n2}
	for {
		tickCluster(live)
		cs := n1.cl.ClusterSnapshot()
		stale := false
		for _, n := range cs.Nodes {
			if n.Node == 3 && n.Stale {
				stale = true
			}
		}
		if stale {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("killed node's stats slice never went stale on node 1")
		}
	}

	cs := n1.cl.ClusterSnapshot()
	if err := cs.WritePrometheus(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("laminar-netd: cluster stats ok — %d node slices merged, %d stale after the kill\n",
		len(cs.Nodes), cs.StaleNodes)
	return nil
}

// runDaemon listens for peer kernels and pumps until SIGINT/SIGTERM.
func runDaemon(addr string, echo, batching bool, interval time.Duration) error {
	n, err := bootNode(uint64(os.Getpid()), batching)
	if err != nil {
		return err
	}
	if err := n.nl.Listen(addr); err != nil {
		return err
	}
	fmt.Printf("laminar-netd: kernel up, listening on %s (batching %v)\n", n.nl.Addr(), batching)

	var stop atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() { <-sig; stop.Store(true); n.nl.Close() }()

	buf := make([]byte, 64*1024)
	for !stop.Load() {
		n.nl.Pump()
		for {
			fd, labels, aerr := n.nl.Accept(n.user)
			if aerr != nil {
				break
			}
			fmt.Printf("laminar-netd: accepted channel %v (fd %d)\n", labels, fd)
			if !echo {
				continue
			}
			go func(fd kernel.FD) {
				for !stop.Load() {
					nr, rerr := n.k.Recv(n.user, fd, buf)
					if rerr == nil && nr > 0 {
						// A denied or dropped echo is silence, like any
						// other unreliable delivery.
						n.k.Send(n.user, fd, buf[:nr])
					} else {
						time.Sleep(interval)
					}
				}
			}(fd)
		}
		time.Sleep(interval)
	}
	return nil
}

// runClient opens one unlabeled channel to addr, sends msg, and prints
// any reply that arrives within wait.
func runClient(addr, msg string, wait time.Duration, batching bool) error {
	n, err := bootNode(uint64(os.Getpid()), batching)
	if err != nil {
		return err
	}
	if err := n.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer n.nl.Close()
	fd, err := n.nl.Open(n.user, addr, difc.Labels{})
	if err != nil {
		return err
	}
	if _, err := n.k.Send(n.user, fd, []byte(msg)); err != nil {
		return err
	}
	deadline := time.Now().Add(wait)
	buf := make([]byte, 64*1024)
	for time.Now().Before(deadline) {
		n.nl.Pump()
		if nr, rerr := n.k.Recv(n.user, fd, buf); rerr == nil && nr > 0 {
			fmt.Printf("laminar-netd: reply: %q\n", buf[:nr])
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("laminar-netd: no reply (sent into the unreliable channel)")
	return nil
}
