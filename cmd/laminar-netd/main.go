// Command laminar-netd runs a Laminar kernel attached to the labeled
// network: a netlabel node that exchanges labeled messages with peer
// kernels over TCP, every remote flow checked by the receiving kernel's
// LSM exactly like a local socket operation (DESIGN.md §12).
//
// Modes:
//
//	laminar-netd -smoke
//	    Self-contained two-kernel smoke test over localhost TCP: one
//	    allowed flow must deliver, one denied flow must silently drop
//	    on the receiving kernel with recorded provenance. Exit 0 on
//	    success, 1 on any violated expectation. CI runs this.
//
//	laminar-netd -listen :7609
//	    Daemon: boot a kernel+LSM stack, listen for peer kernels, pump
//	    until interrupted. -echo makes the daemon's own task accept
//	    every channel it may read and echo the bytes back.
//
//	laminar-netd -dial host:7609 -msg 'hello'
//	    Client: boot a kernel, open an unlabeled channel to a daemon,
//	    send the message, and print whatever comes back within -wait.
//
//	laminar-netd -cluster-smoke
//	    Self-contained three-node cluster smoke test: form a cluster
//	    (join changes, heartbeats, failure detection), kill one node,
//	    restart it from the same durable store under a bumped
//	    incarnation epoch, reconverge, and deliver a routed flow through
//	    a fully checked relay hop. Exit 0 on success, 1 on any violated
//	    expectation. CI runs this.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"laminar/internal/cluster"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// node is one booted kernel+LSM+transport stack with a user task.
type node struct {
	k    *kernel.Kernel
	mod  *lsm.Module
	user *kernel.Task
	rec  *telemetry.Recorder
	nl   *netlabel.Node
}

func bootNode(id uint64, batching bool) (*node, error) {
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		return nil, err
	}
	nl := netlabel.NewNode(netlabel.Config{
		Kernel: k, Module: mod, Recorder: rec, NodeID: id, Batching: batching,
	})
	return &node{k: k, mod: mod, user: user, rec: rec, nl: nl}, nil
}

func main() {
	var (
		smoke    = flag.Bool("smoke", false, "two-kernel localhost self test (allowed + denied flow); exit 0/1")
		cSmoke   = flag.Bool("cluster-smoke", false, "three-node cluster self test (join, kill, restart, converge, routed flow); exit 0/1")
		listen   = flag.String("listen", "", "daemon mode: listen address for peer kernels")
		echo     = flag.Bool("echo", false, "with -listen: echo readable channels back to the peer")
		dial     = flag.String("dial", "", "client mode: peer address to open a channel to")
		msg      = flag.String("msg", "ping from laminar-netd", "with -dial: message to send")
		wait     = flag.Duration("wait", 2*time.Second, "with -dial: how long to wait for a reply")
		batching = flag.Bool("batching", true, "coalesce each flush into one TCP write")
		interval = flag.Duration("interval", time.Millisecond, "pump interval")
	)
	flag.Parse()

	switch {
	case *smoke:
		if err := runSmoke(*batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("laminar-netd: smoke ok — allowed flow delivered, denied flow dropped silently with provenance")
	case *cSmoke:
		if err := runClusterSmoke(*batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: CLUSTER SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("laminar-netd: cluster smoke ok — converged, survived a kill+restart under a new epoch, routed flow relayed with per-hop checks")
	case *listen != "":
		if err := runDaemon(*listen, *echo, *batching, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd:", err)
			os.Exit(1)
		}
	case *dial != "":
		if err := runClient(*dial, *msg, *wait, *batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSmoke boots two kernels joined over localhost TCP and checks the
// PR's two headline behaviours end to end.
func runSmoke(batching bool) error {
	a, err := bootNode(1, batching)
	if err != nil {
		return err
	}
	b, err := bootNode(2, batching)
	if err != nil {
		return err
	}
	if err := a.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	if err := b.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer a.nl.Close()
	defer b.nl.Close()

	pump := func() { a.nl.Pump(); b.nl.Pump() }
	deadline := time.Now().Add(10 * time.Second)

	// Flow 1 (allowed): unlabeled channel, public payload, must deliver.
	pubA, err := a.nl.Open(a.user, b.nl.Addr(), difc.Labels{})
	if err != nil {
		return fmt.Errorf("open public channel: %w", err)
	}
	// Flow 2 (denied): a channel carrying a secrecy tag B's task lacks.
	tag, err := a.k.AllocTag(a.user)
	if err != nil {
		return err
	}
	secA, err := a.nl.Open(a.user, b.nl.Addr(), difc.Labels{S: difc.NewLabel(tag)})
	if err != nil {
		return fmt.Errorf("open secret channel: %w", err)
	}

	var pubB, secB kernel.FD
	var pubL difc.Labels
	got := 0
	for got < 2 {
		pump()
		fd, labels, aerr := b.nl.Accept(b.user)
		if aerr != nil {
			if time.Now().After(deadline) {
				return errors.New("channels never arrived")
			}
			continue
		}
		if labels.IsEmpty() {
			pubB, pubL = fd, labels
		} else {
			secB = fd
		}
		got++
	}
	_ = pubL

	if _, err := a.k.Send(a.user, pubA, []byte("public hello")); err != nil {
		return fmt.Errorf("public send: %w", err)
	}
	if n, err := a.k.Send(a.user, secA, []byte("classified")); err != nil || n != 10 {
		return fmt.Errorf("secret send = %d, %v (sender must see success)", n, err)
	}

	// The allowed flow delivers.
	buf := make([]byte, 64)
	var public string
	for public != "public hello" {
		pump()
		if n, rerr := b.k.Recv(b.user, pubB, buf); rerr == nil && n > 0 {
			public += string(buf[:n])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("allowed flow stalled: got %q", public)
		}
	}

	// The denied flow is rejected by the RECEIVING kernel, with denial
	// provenance recorded there; the data never becomes readable.
	denials0 := b.rec.M.Denials.Load()
	if _, err := b.k.Recv(b.user, secB, buf); !errors.Is(err, kernel.ErrAccess) {
		return fmt.Errorf("denied recv = %v, want EACCES", err)
	}
	if b.rec.M.Denials.Load() == denials0 {
		return errors.New("denied remote flow left no telemetry on the receiving kernel")
	}
	return nil
}

// clusterMember is one label-plane member for the cluster smoke: a
// booted stack plus its cluster node and durable store. The store is the
// member's identity — restarting with the same store is the same member
// reincarnated under a bumped epoch.
type clusterMember struct {
	*node
	cl    *cluster.Cluster
	store cluster.Store
}

func bootClusterMember(id uint64, seeds []string, store cluster.Store, batching bool) (*clusterMember, error) {
	n, err := bootNode(id, batching)
	if err != nil {
		return nil, err
	}
	cl := cluster.New(cluster.Config{
		ID: id, Kernel: n.k, Module: n.mod, Recorder: n.rec,
		Store: store, Seeds: seeds, Batching: batching,
	})
	if err := cl.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	if _, err := cl.Join(); err != nil {
		return nil, err
	}
	return &clusterMember{node: n, cl: cl, store: store}, nil
}

// runClusterSmoke exercises the cluster label plane end to end: a
// three-node cluster converges; node 3 is killed and restarted from its
// persisted store, must come back under a strictly larger incarnation
// epoch, and the cluster must reconverge; finally a routed flow from
// node 1 through the relay at node 2 to node 3 must deliver — every hop
// re-checked by that hop's own LSM.
func runClusterSmoke(batching bool) error {
	store3 := cluster.NewMemStore()
	n1, err := bootClusterMember(1, nil, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	defer n1.cl.Close()
	seeds := []string{n1.cl.Addr()}
	n2, err := bootClusterMember(2, seeds, cluster.NewMemStore(), batching)
	if err != nil {
		return err
	}
	defer n2.cl.Close()
	n3, err := bootClusterMember(3, seeds, store3, batching)
	if err != nil {
		return err
	}

	members := func() []*clusterMember { return []*clusterMember{n1, n2, n3} }
	// tickAll advances every node one logical tick, paced so that a TCP
	// round-trip spans about one tick: busy-ticking would outrun heartbeat
	// delivery and flap the failure detector through suspect windows.
	tickAll := func() {
		for _, m := range members() {
			m.cl.Tick()
		}
		time.Sleep(200 * time.Microsecond)
	}
	converge := func(what string) error {
		deadline := time.Now().Add(30 * time.Second)
		for {
			tickAll()
			done := true
			for _, m := range members() {
				if !m.cl.Joined() || !m.cl.Converged(1, 2, 3) {
					done = false
				}
			}
			if done {
				return nil
			}
			if time.Now().After(deadline) {
				var view strings.Builder
				for _, m := range members() {
					fmt.Fprintf(&view, " [joined=%v members=%v]", m.cl.Joined(), m.cl.Members())
				}
				return fmt.Errorf("cluster never converged (%s):%s", what, view.String())
			}
		}
	}
	if err := converge("initial join"); err != nil {
		return err
	}
	epoch0 := n3.cl.Epoch()

	// Kill node 3 and restart the same member from the same store.
	n3.cl.Close()
	n3, err = bootClusterMember(3, seeds, store3, batching)
	if err != nil {
		return fmt.Errorf("restart node 3: %w", err)
	}
	defer func() { n3.cl.Close() }()
	if n3.cl.Epoch() <= epoch0 {
		return fmt.Errorf("restart epoch %d, want > %d (stale incarnations must be distinguishable)",
			n3.cl.Epoch(), epoch0)
	}
	if err := converge("after kill+restart"); err != nil {
		return err
	}

	// Routed flow across the reconverged cluster: 1 → relay at 2 → 3. A
	// routed open that lands in a suspect window at the relay degrades to
	// silence (the unreliable channel), so establishment retries: each
	// attempt sends a uniquely numbered probe and is verified only when
	// that probe arrives at node 3 on an accepted channel — a stale
	// duplicate from an earlier lost attempt can never be mispaired.
	var (
		fdA, fdC    kernel.FD
		accepted    []kernel.FD
		established bool
		attempt     byte
	)
	deadline := time.Now().Add(20 * time.Second)
	buf := make([]byte, 128)
	for !established {
		if time.Now().After(deadline) {
			return errors.New("routed channel 1 -> relay at 2 -> 3 never established")
		}
		attempt++
		fd, oerr := n1.cl.OpenVia(n1.user, 2, 3, difc.Labels{})
		if oerr != nil {
			tickAll()
			continue
		}
		if _, serr := n1.k.Send(n1.user, fd, []byte{0xA5, attempt}); serr != nil {
			return fmt.Errorf("routed probe send: %w", serr)
		}
		for i := 0; i < 400 && !established; i++ {
			tickAll()
			for {
				afd, _, aerr := n3.cl.Node().Accept(n3.user)
				if aerr != nil {
					break
				}
				accepted = append(accepted, afd)
			}
			for _, afd := range accepted {
				if nr, rerr := n3.k.Recv(n3.user, afd, buf); rerr == nil && nr >= 2 &&
					buf[nr-2] == 0xA5 && buf[nr-1] == attempt {
					fdA, fdC, established = fd, afd, true
					break
				}
			}
		}
	}

	const hello = "routed hello through the label plane"
	if _, err := n1.k.Send(n1.user, fdA, []byte(hello)); err != nil {
		return fmt.Errorf("routed send: %w", err)
	}
	var got string
	for got != hello {
		tickAll()
		if nr, rerr := n3.k.Recv(n3.user, fdC, buf); rerr == nil && nr > 0 {
			got += string(buf[:nr])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("routed flow stalled: got %q", got)
		}
	}
	return nil
}

// runDaemon listens for peer kernels and pumps until SIGINT/SIGTERM.
func runDaemon(addr string, echo, batching bool, interval time.Duration) error {
	n, err := bootNode(uint64(os.Getpid()), batching)
	if err != nil {
		return err
	}
	if err := n.nl.Listen(addr); err != nil {
		return err
	}
	fmt.Printf("laminar-netd: kernel up, listening on %s (batching %v)\n", n.nl.Addr(), batching)

	var stop atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() { <-sig; stop.Store(true); n.nl.Close() }()

	buf := make([]byte, 64*1024)
	for !stop.Load() {
		n.nl.Pump()
		for {
			fd, labels, aerr := n.nl.Accept(n.user)
			if aerr != nil {
				break
			}
			fmt.Printf("laminar-netd: accepted channel %v (fd %d)\n", labels, fd)
			if !echo {
				continue
			}
			go func(fd kernel.FD) {
				for !stop.Load() {
					nr, rerr := n.k.Recv(n.user, fd, buf)
					if rerr == nil && nr > 0 {
						// A denied or dropped echo is silence, like any
						// other unreliable delivery.
						n.k.Send(n.user, fd, buf[:nr])
					} else {
						time.Sleep(interval)
					}
				}
			}(fd)
		}
		time.Sleep(interval)
	}
	return nil
}

// runClient opens one unlabeled channel to addr, sends msg, and prints
// any reply that arrives within wait.
func runClient(addr, msg string, wait time.Duration, batching bool) error {
	n, err := bootNode(uint64(os.Getpid()), batching)
	if err != nil {
		return err
	}
	if err := n.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer n.nl.Close()
	fd, err := n.nl.Open(n.user, addr, difc.Labels{})
	if err != nil {
		return err
	}
	if _, err := n.k.Send(n.user, fd, []byte(msg)); err != nil {
		return err
	}
	deadline := time.Now().Add(wait)
	buf := make([]byte, 64*1024)
	for time.Now().Before(deadline) {
		n.nl.Pump()
		if nr, rerr := n.k.Recv(n.user, fd, buf); rerr == nil && nr > 0 {
			fmt.Printf("laminar-netd: reply: %q\n", buf[:nr])
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("laminar-netd: no reply (sent into the unreliable channel)")
	return nil
}
