// Command laminar-netd runs a Laminar kernel attached to the labeled
// network: a netlabel node that exchanges labeled messages with peer
// kernels over TCP, every remote flow checked by the receiving kernel's
// LSM exactly like a local socket operation (DESIGN.md §12).
//
// Modes:
//
//	laminar-netd -smoke
//	    Self-contained two-kernel smoke test over localhost TCP: one
//	    allowed flow must deliver, one denied flow must silently drop
//	    on the receiving kernel with recorded provenance. Exit 0 on
//	    success, 1 on any violated expectation. CI runs this.
//
//	laminar-netd -listen :7609
//	    Daemon: boot a kernel+LSM stack, listen for peer kernels, pump
//	    until interrupted. -echo makes the daemon's own task accept
//	    every channel it may read and echo the bytes back.
//
//	laminar-netd -dial host:7609 -msg 'hello'
//	    Client: boot a kernel, open an unlabeled channel to a daemon,
//	    send the message, and print whatever comes back within -wait.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// node is one booted kernel+LSM+transport stack with a user task.
type node struct {
	k    *kernel.Kernel
	mod  *lsm.Module
	user *kernel.Task
	rec  *telemetry.Recorder
	nl   *netlabel.Node
}

func bootNode(id uint64, batching bool) (*node, error) {
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		return nil, err
	}
	nl := netlabel.NewNode(netlabel.Config{
		Kernel: k, Module: mod, Recorder: rec, NodeID: id, Batching: batching,
	})
	return &node{k: k, mod: mod, user: user, rec: rec, nl: nl}, nil
}

func main() {
	var (
		smoke    = flag.Bool("smoke", false, "two-kernel localhost self test (allowed + denied flow); exit 0/1")
		listen   = flag.String("listen", "", "daemon mode: listen address for peer kernels")
		echo     = flag.Bool("echo", false, "with -listen: echo readable channels back to the peer")
		dial     = flag.String("dial", "", "client mode: peer address to open a channel to")
		msg      = flag.String("msg", "ping from laminar-netd", "with -dial: message to send")
		wait     = flag.Duration("wait", 2*time.Second, "with -dial: how long to wait for a reply")
		batching = flag.Bool("batching", true, "coalesce each flush into one TCP write")
		interval = flag.Duration("interval", time.Millisecond, "pump interval")
	)
	flag.Parse()

	switch {
	case *smoke:
		if err := runSmoke(*batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("laminar-netd: smoke ok — allowed flow delivered, denied flow dropped silently with provenance")
	case *listen != "":
		if err := runDaemon(*listen, *echo, *batching, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd:", err)
			os.Exit(1)
		}
	case *dial != "":
		if err := runClient(*dial, *msg, *wait, *batching); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-netd:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSmoke boots two kernels joined over localhost TCP and checks the
// PR's two headline behaviours end to end.
func runSmoke(batching bool) error {
	a, err := bootNode(1, batching)
	if err != nil {
		return err
	}
	b, err := bootNode(2, batching)
	if err != nil {
		return err
	}
	if err := a.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	if err := b.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer a.nl.Close()
	defer b.nl.Close()

	pump := func() { a.nl.Pump(); b.nl.Pump() }
	deadline := time.Now().Add(10 * time.Second)

	// Flow 1 (allowed): unlabeled channel, public payload, must deliver.
	pubA, err := a.nl.Open(a.user, b.nl.Addr(), difc.Labels{})
	if err != nil {
		return fmt.Errorf("open public channel: %w", err)
	}
	// Flow 2 (denied): a channel carrying a secrecy tag B's task lacks.
	tag, err := a.k.AllocTag(a.user)
	if err != nil {
		return err
	}
	secA, err := a.nl.Open(a.user, b.nl.Addr(), difc.Labels{S: difc.NewLabel(tag)})
	if err != nil {
		return fmt.Errorf("open secret channel: %w", err)
	}

	var pubB, secB kernel.FD
	var pubL difc.Labels
	got := 0
	for got < 2 {
		pump()
		fd, labels, aerr := b.nl.Accept(b.user)
		if aerr != nil {
			if time.Now().After(deadline) {
				return errors.New("channels never arrived")
			}
			continue
		}
		if labels.IsEmpty() {
			pubB, pubL = fd, labels
		} else {
			secB = fd
		}
		got++
	}
	_ = pubL

	if _, err := a.k.Send(a.user, pubA, []byte("public hello")); err != nil {
		return fmt.Errorf("public send: %w", err)
	}
	if n, err := a.k.Send(a.user, secA, []byte("classified")); err != nil || n != 10 {
		return fmt.Errorf("secret send = %d, %v (sender must see success)", n, err)
	}

	// The allowed flow delivers.
	buf := make([]byte, 64)
	var public string
	for public != "public hello" {
		pump()
		if n, rerr := b.k.Recv(b.user, pubB, buf); rerr == nil && n > 0 {
			public += string(buf[:n])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("allowed flow stalled: got %q", public)
		}
	}

	// The denied flow is rejected by the RECEIVING kernel, with denial
	// provenance recorded there; the data never becomes readable.
	denials0 := b.rec.M.Denials.Load()
	if _, err := b.k.Recv(b.user, secB, buf); !errors.Is(err, kernel.ErrAccess) {
		return fmt.Errorf("denied recv = %v, want EACCES", err)
	}
	if b.rec.M.Denials.Load() == denials0 {
		return errors.New("denied remote flow left no telemetry on the receiving kernel")
	}
	return nil
}

// runDaemon listens for peer kernels and pumps until SIGINT/SIGTERM.
func runDaemon(addr string, echo, batching bool, interval time.Duration) error {
	n, err := bootNode(uint64(os.Getpid()), batching)
	if err != nil {
		return err
	}
	if err := n.nl.Listen(addr); err != nil {
		return err
	}
	fmt.Printf("laminar-netd: kernel up, listening on %s (batching %v)\n", n.nl.Addr(), batching)

	var stop atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() { <-sig; stop.Store(true); n.nl.Close() }()

	buf := make([]byte, 64*1024)
	for !stop.Load() {
		n.nl.Pump()
		for {
			fd, labels, aerr := n.nl.Accept(n.user)
			if aerr != nil {
				break
			}
			fmt.Printf("laminar-netd: accepted channel %v (fd %d)\n", labels, fd)
			if !echo {
				continue
			}
			go func(fd kernel.FD) {
				for !stop.Load() {
					nr, rerr := n.k.Recv(n.user, fd, buf)
					if rerr == nil && nr > 0 {
						// A denied or dropped echo is silence, like any
						// other unreliable delivery.
						n.k.Send(n.user, fd, buf[:nr])
					} else {
						time.Sleep(interval)
					}
				}
			}(fd)
		}
		time.Sleep(interval)
	}
	return nil
}

// runClient opens one unlabeled channel to addr, sends msg, and prints
// any reply that arrives within wait.
func runClient(addr, msg string, wait time.Duration, batching bool) error {
	n, err := bootNode(uint64(os.Getpid()), batching)
	if err != nil {
		return err
	}
	if err := n.nl.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer n.nl.Close()
	fd, err := n.nl.Open(n.user, addr, difc.Labels{})
	if err != nil {
		return err
	}
	if _, err := n.k.Send(n.user, fd, []byte(msg)); err != nil {
		return err
	}
	deadline := time.Now().Add(wait)
	buf := make([]byte, 64*1024)
	for time.Now().Before(deadline) {
		n.nl.Pump()
		if nr, rerr := n.k.Recv(n.user, fd, buf); rerr == nil && nr > 0 {
			fmt.Printf("laminar-netd: reply: %q\n", buf[:nr])
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("laminar-netd: no reply (sent into the unreliable channel)")
	return nil
}
