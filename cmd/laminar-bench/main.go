// Command laminar-bench regenerates every table and figure from the
// Laminar paper's evaluation (§6–§7) against this repository's
// implementation, printing paper-style text tables.
//
// Usage:
//
//	laminar-bench -all                # everything, default scale
//	laminar-bench -table 2            # lmbench (Table 2)
//	laminar-bench -figure jvm         # DaCapo barrier overheads
//	laminar-bench -figure apps        # case-study overheads (Figure 9 + Table 3)
//	laminar-bench -figure compile     # compilation-time experiment
//	laminar-bench -table 1|4          # taxonomy probes / GradeSheet sets
//	laminar-bench -flume              # monitor-vs-LSM IPC comparison
//	laminar-bench -ablations          # design-decision ablations
//	laminar-bench -concurrency        # big-lock vs sharded syscall storms
//	laminar-bench -scale 10           # heavier workloads (closer to paper scale)
//
// -concurrency additionally writes the machine-readable result to
// BENCH_concurrency.json (override with -concjson).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"laminar/internal/eval"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table     = flag.Int("table", 0, "reproduce a numbered table (1, 2, 4)")
		figure    = flag.String("figure", "", "reproduce a figure: jvm, apps, compile, regions")
		flume     = flag.Bool("flume", false, "monitor-vs-LSM IPC comparison")
		ablations = flag.Bool("ablations", false, "design-decision ablations")
		conc      = flag.Bool("concurrency", false, "big-lock vs sharded syscall-storm scaling")
		concTasks = flag.Int("conctasks", 8, "concurrent tasks in the syscall storms")
		concOps   = flag.Int("concops", 12000, "syscalls per task in the storms")
		concIO    = flag.Duration("concio", 30*time.Microsecond, "modeled device latency for the io storm")
		concJSON  = flag.String("concjson", "BENCH_concurrency.json", "where -concurrency writes its JSON result")
		barriers  = flag.Bool("barriers", false, "barrier-reduction table over the optimization corpus")
		barrJSON  = flag.String("barriersjson", "BENCH_barriers.json", "where -barriers writes its JSON result")
		netd      = flag.Bool("netd", false, "cross-kernel labeled throughput over localhost TCP (msgs/sec vs payload size, batching on/off)")
		netdMsgs  = flag.Int("netdmsgs", 4000, "messages per netd cell")
		netdJSON  = flag.String("netdjson", "BENCH_netd.json", "where -netd writes its JSON result")
		clus      = flag.Bool("cluster", false, "cluster label-plane throughput (msgs/sec vs node count, routed vs direct)")
		clusMsgs  = flag.Int("clustermsgs", 2000, "messages per cluster cell")
		clusJSON  = flag.String("clusterjson", "BENCH_cluster.json", "where -cluster writes its JSON result")
		vcache    = flag.Bool("verdictcache", false, "verdict-cache + batched-write hot path vs the old per-op protocol")
		vcTasks   = flag.Int("vctasks", 8, "concurrent writer tasks in the verdict-cache storm")
		vcWrites  = flag.Int("vcwrites", 16384, "logical writes per task in the verdict-cache storm")
		vcBatch   = flag.Int("vcbatch", 16, "WriteVec vector length for the vec rows")
		vcJSON    = flag.String("vcjson", "BENCH_verdictcache.json", "where -verdictcache writes its JSON result")
		vcGate    = flag.Bool("vcgate", false, "with -verdictcache: exit nonzero if the new-protocol speedup misses the 1.5x gate")
		telem     = flag.Bool("telemetry", false, "telemetry overhead: storms under baseline/off/deny/all recording")
		telJSON   = flag.String("teljson", "BENCH_telemetry.json", "where -telemetry writes its JSON result")
		telGate   = flag.Bool("telgate", false, "with -telemetry: exit nonzero if disabled-path overhead exceeds the 2% gate")
		budg      = flag.Bool("budget", false, "flow-budget charging overhead on the labeled netd hot path + zipfian tenant-contention table")
		budgMsgs  = flag.Int("budgetmsgs", 4000, "messages per budget-bench cell")
		budgJSON  = flag.String("budgetjson", "BENCH_budget.json", "where -budget writes its JSON result")
		budgGate  = flag.Bool("budgetgate", false, "with -budget: exit nonzero if unexhausted-charge overhead exceeds the 1.05x gate")
		trace     = flag.Bool("trace", false, "flow-tracing overhead on the netd hot path (bare/off/on)")
		traceMsgs = flag.Int("tracemsgs", 4000, "messages per trace-bench cell")
		traceJSON = flag.String("tracejson", "BENCH_trace.json", "where -trace writes its JSON result")
		traceGate = flag.Bool("tracegate", false, "with -trace: exit nonzero if tracing overhead misses the 1.02x/1.10x gates")
		scale     = flag.Int("scale", 1, "workload scale factor (apps)")
		iters     = flag.Int("iters", 300, "JVM workload loop iterations")
		trials    = flag.Int("trials", 5, "trials per measurement (median/min)")
		optimize  = flag.Bool("opt", false, "enable redundant-barrier elimination in the jvm figure")
	)
	flag.Parse()

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "laminar-bench:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		ran = true
		rep, err := eval.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *table == 2 {
		ran = true
		rep, err := eval.Table2(2000, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *table == 4 {
		ran = true
		fmt.Println(eval.Table4(16, 8).Format())
	}
	if *all || *figure == "jvm" {
		ran = true
		rep, err := eval.JVMOverhead(*iters, *trials, *optimize)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *figure == "regions" {
		ran = true
		rep, err := eval.RegionDensity(*iters, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *figure == "compile" {
		ran = true
		rep, err := eval.CompileTime(*trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *figure == "apps" || *table == 3 {
		ran = true
		rep, err := eval.Apps(*scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *flume {
		ran = true
		rep, err := eval.FlumeCompare(20000)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		wrep, err := eval.WikiCompare(3000)
		if err != nil {
			fail(err)
		}
		fmt.Println(wrep.Format())
	}
	if *all || *ablations {
		ran = true
		rep, err := eval.Ablations(2000, 50)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
	}
	if *all || *conc {
		ran = true
		rep, err := eval.Concurrency(*concTasks, *concOps, *trials, *concIO)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *concJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*concJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *concJSON)
		}
	}
	if *all || *barriers {
		ran = true
		rep, err := eval.Barriers()
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *barrJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*barrJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *barrJSON)
		}
	}
	if *all || *netd {
		ran = true
		rep, err := eval.Netd(*netdMsgs, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *netdJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*netdJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *netdJSON)
		}
	}
	if *all || *clus {
		ran = true
		rep, err := eval.Cluster(*clusMsgs, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *clusJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*clusJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *clusJSON)
		}
	}
	if *all || *vcache {
		ran = true
		rep, err := eval.VerdictCache(*vcTasks, *vcWrites, *vcBatch, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *vcJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*vcJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *vcJSON)
		}
		if *vcGate && !rep.Pass {
			fmt.Fprintf(os.Stderr, "laminar-bench: verdict-cache headline speedup %.2fx misses the %.2fx gate\n",
				rep.Headline, rep.GateMin)
			os.Exit(1)
		}
	}
	if *all || *telem {
		ran = true
		rep, err := eval.Telemetry(*concTasks, *concOps, *trials, *concIO)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *telJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*telJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *telJSON)
		}
		if *telGate && !rep.Pass {
			fmt.Fprintf(os.Stderr, "laminar-bench: telemetry disabled-path overhead %.3fx exceeds %.2fx gate\n",
				rep.HeadlineOff, rep.GateMax)
			os.Exit(1)
		}
	}
	if *all || *budg {
		ran = true
		rep, err := eval.Budget(*budgMsgs, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *budgJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*budgJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *budgJSON)
		}
		if *budgGate && !rep.Pass {
			fmt.Fprintf(os.Stderr, "laminar-bench: unexhausted budget-charge overhead %.3fx exceeds %.2fx gate\n",
				rep.Overhead, rep.Gate)
			os.Exit(1)
		}
	}
	if *all || *trace {
		ran = true
		rep, err := eval.Trace(*traceMsgs, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Format())
		if *traceJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*traceJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *traceJSON)
		}
		if *traceGate && !rep.Pass {
			fmt.Fprintf(os.Stderr, "laminar-bench: trace overhead off=%.3fx (gate %.2fx) on=%.3fx (gate %.2fx)\n",
				rep.OverheadOff, rep.GateOff, rep.OverheadOn, rep.GateOn)
			os.Exit(1)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
