// Command laminar-demo walks through the paper's §3.3 scenario at the
// syscall level: Alice and Bob keep labeled calendar files on a server
// they do not administer, hand the scheduler capabilities over pipes, and
// the DIFC rules—not trust in the server—keep their data from leaking.
//
// With -trace, every enforcement decision the stack makes while the
// scenario runs is printed live from the telemetry stream — allows,
// denials with the violated rule and offending tags, region entries and
// exits — demonstrating the auditability story end to end.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"laminar"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

func main() {
	trace := flag.Bool("trace", false, "print live DIFC decision provenance while the scenario runs")
	flag.Parse()

	var opts []kernel.Option
	if *trace {
		rec := telemetry.NewRecorder()
		rec.SetLevel(telemetry.LevelAll)
		rec.Subscribe(func(e telemetry.Event) {
			fmt.Println("    trace |", e.String())
		})
		opts = append(opts, kernel.WithTelemetry(rec))
	}
	sys := laminar.NewSystem(opts...)
	k := sys.Kernel()

	fmt.Println("== boot ==")
	fmt.Println("kernel:", k, "— system directories carry the admin integrity tag")

	// Alice logs in and creates her secret calendar file.
	aliceShell, err := sys.Login("alice")
	if err != nil {
		log.Fatal(err)
	}
	vm, alice, err := sys.LaunchVM(aliceShell)
	if err != nil {
		log.Fatal(err)
	}
	_ = vm
	if err := k.Chdir(alice.Task(), "/tmp"); err != nil {
		log.Fatal(err)
	}
	aTag, err := alice.CreateTag()
	if err != nil {
		log.Fatal(err)
	}
	aLabel := laminar.Labels{S: laminar.NewLabel(aTag)}
	fd, err := k.CreateFileLabeled(alice.Task(), "alice.cal", 0o600, aLabel)
	if err != nil {
		log.Fatal(err)
	}
	k.Close(alice.Task(), fd)
	fmt.Printf("alice creates alice.cal with label %v\n", aLabel)

	// She fills it from a security region.
	err = alice.Secure(aLabel, laminar.EmptyCapSet, func(r *laminar.Region) {
		wfd, err := r.OpenFile("alice.cal", laminar.OWrite)
		if err != nil {
			panic(err)
		}
		defer r.CloseFile(wfd)
		if _, err := r.WriteFile(wfd, []byte("mon:dentist tue:free wed:free")); err != nil {
			panic(err)
		}
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice writes her schedule inside a region labeled", aLabel)

	// A scheduler thread without the tag cannot read the file...
	scheduler, err := alice.Fork([]laminar.Capability{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Open(scheduler.Task(), "alice.cal", laminar.ORead); errors.Is(err, kernel.ErrNoEnt) {
		// Read denials surface as ENOENT so the denial itself cannot
		// confirm that the name exists.
		fmt.Println("scheduler without a+ opens alice.cal: ENOENT")
	}

	// ...until Alice sends it a+ over a pipe (write_capability).
	rp, wp, err := k.Pipe(alice.Task())
	if err != nil {
		log.Fatal(err)
	}
	rs, err := k.DupTo(alice.Task(), rp, scheduler.Task())
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.SendCapability(laminar.Capability{Tag: aTag, Kind: laminar.CapPlus}, wp); err != nil {
		log.Fatal(err)
	}
	if _, err := scheduler.ReceiveCapability(rs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice sends a+ to the scheduler via write_capability")

	// The scheduler reads the calendar inside a region — and is now
	// tainted: it cannot write what it learned to an unlabeled file.
	err = scheduler.Secure(aLabel, laminar.EmptyCapSet, func(r *laminar.Region) {
		rfd, err := r.OpenFile("alice.cal", laminar.ORead)
		if err != nil {
			panic(err)
		}
		defer r.CloseFile(rfd)
		buf := make([]byte, 64)
		n, err := r.ReadFile(rfd, buf)
		if err != nil {
			panic(err)
		}
		fmt.Printf("scheduler reads %d bytes of alice's calendar inside the region\n", n)

		if _, err := r.OpenFile("/tmp/leak.txt", laminar.OCreate|laminar.OWrite); err != nil {
			fmt.Println("scheduler tries to create an unlabeled leak file: denied")
		}
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Outside the region the scheduler is untainted again (the VM reset
	// its labels), but it never got a−: it can never declassify Alice's
	// data on its own. Only Alice's own module can do that.
	fmt.Println("scheduler labels after the region:", scheduler.Labels())
	fmt.Println("== done: no path exists from alice.cal to an unlabeled sink ==")
}
