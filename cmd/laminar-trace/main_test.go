package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecordExplainRoundTrip is the explain-denial smoke: record a ring
// from the built-in scenario, then reconstruct the latest denial from the
// dump alone — the replayed check must MATCH the recorded verdict.
func TestRecordExplainRoundTrip(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "ring.jsonl")
	if err := runRecord(dump, "all"); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := runExplain(&b, dump, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "MATCHES") {
		t.Errorf("explain-denial did not reproduce the check:\n%s", out)
	}
	if !strings.Contains(out, "rule:") || !strings.Contains(out, "delta") {
		t.Errorf("explanation lacks rule/delta provenance:\n%s", out)
	}

	b.Reset()
	if err := runTail(&b, dump, true, "", "", "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "deny") {
		t.Errorf("tail -deny shows no denials:\n%s", b.String())
	}

	b.Reset()
	if err := runStats(&b, dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "secrecy") || !strings.Contains(b.String(), "label-change") {
		t.Errorf("stats misses rule attribution:\n%s", b.String())
	}
}

// TestExplainMissingDenial reports cleanly when the dump has no denials.
func TestExplainMissingDenial(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(dump, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := runExplain(&b, dump, 0); err == nil {
		t.Error("explain on empty dump succeeded")
	}
	if err := runExplain(&b, dump, 999); err == nil {
		t.Error("explain with absent seq succeeded")
	}
}
