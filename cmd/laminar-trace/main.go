// Command laminar-trace inspects Laminar's DIFC telemetry: the flight-ring
// dumps (JSONL, one event per line) that the kernel, chaos harness, or the
// record subcommand produce.
//
// Usage:
//
//	laminar-trace record [-out ring.jsonl] [-level all|deny]
//	    Drive a built-in Alice/scheduler denial scenario on a live system
//	    with a private recorder and dump its flight ring.
//
//	laminar-trace tail [-dump ring.jsonl] [-deny] [-layer L] [-op O] [-site S] [-n N]
//	    Print events from a dump, newest last, with optional filters.
//
//	laminar-trace explain-denial [-dump ring.jsonl] [-seq N]
//	    Reconstruct one denial's exact check from the dump alone: which
//	    rule fired, the operand labels, the offending tag delta — and
//	    re-run the pure DIFC check to confirm the recorded verdict
//	    (MATCHES / DIVERGED). Defaults to the most recent denial.
//
//	laminar-trace stats [-dump ring.jsonl]
//	    Aggregate the dump: events by kind and layer, denials by rule,
//	    top sites, and — when the dump carries a v2 meta header — the
//	    per-layer latency histograms (p50/p99).
//
//	laminar-trace explain-route [-trace ID] dump1.jsonl [dump2.jsonl ...]
//	    Merge N per-node dumps, reconstruct the hop-by-hop route of one
//	    traced flow (trace id 0 picks the most recent traced denial),
//	    show each hop's label operands and verdict, and re-run every
//	    recorded check (MATCHES / DIVERGED).
//
// A dump path of "-" reads stdin, so dumps pipe: laminar-trace record |
// laminar-trace explain-denial -dump -.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"laminar"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		fs := flag.NewFlagSet("record", flag.ExitOnError)
		out := fs.String("out", "ring.jsonl", "dump destination (- for stdout)")
		level := fs.String("level", "all", "recording level: all or deny")
		fs.Parse(os.Args[2:])
		err = runRecord(*out, *level)
	case "tail":
		fs := flag.NewFlagSet("tail", flag.ExitOnError)
		dump := fs.String("dump", "ring.jsonl", "flight-ring dump to read (- for stdin)")
		deny := fs.Bool("deny", false, "denials only")
		layer := fs.String("layer", "", "filter by layer (kernel, lsm, rt, jvm)")
		op := fs.String("op", "", "filter by operation")
		site := fs.String("site", "", "filter by site")
		n := fs.Int("n", 0, "print only the last n matching events (0 = all)")
		fs.Parse(os.Args[2:])
		err = runTail(os.Stdout, *dump, *deny, *layer, *op, *site, *n)
	case "explain-denial":
		fs := flag.NewFlagSet("explain-denial", flag.ExitOnError)
		dump := fs.String("dump", "ring.jsonl", "flight-ring dump to read (- for stdin)")
		seq := fs.Uint64("seq", 0, "sequence number of the denial to explain (0 = most recent)")
		fs.Parse(os.Args[2:])
		err = runExplain(os.Stdout, *dump, *seq)
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		dump := fs.String("dump", "ring.jsonl", "flight-ring dump to read (- for stdin)")
		fs.Parse(os.Args[2:])
		err = runStats(os.Stdout, *dump)
	case "explain-route":
		fs := flag.NewFlagSet("explain-route", flag.ExitOnError)
		trace := fs.Uint64("trace", 0, "trace id to reconstruct (0 = most recent traced denial)")
		fs.Parse(os.Args[2:])
		dumps := fs.Args()
		if len(dumps) == 0 {
			dumps = []string{"ring.jsonl"}
		}
		err = runExplainRoute(os.Stdout, *trace, dumps)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "laminar-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: laminar-trace <record|tail|explain-denial|explain-route|stats> [flags]")
}

func readEvents(path string) ([]telemetry.Event, error) {
	var rd io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	return telemetry.ReadDump(rd)
}

// runRecord boots a system with a private recorder and drives the §3.3
// scenario far enough to produce allows and denials in every layer the
// kernel sees: labeled create, region syscalls, a tainted write-down, a
// read probe without the tag, a capability-less label change.
func runRecord(out, level string) error {
	rec := telemetry.NewRecorder()
	switch level {
	case "all":
		rec.SetLevel(telemetry.LevelAll)
	case "deny":
		rec.SetLevel(telemetry.LevelDeny)
	default:
		return fmt.Errorf("unknown level %q (want all or deny)", level)
	}
	sys := laminar.NewSystem(kernel.WithTelemetry(rec))
	k := sys.Kernel()

	alice, err := sys.Login("alice")
	if err != nil {
		return err
	}
	bob, err := sys.Login("bob")
	if err != nil {
		return err
	}
	if err := k.Chdir(alice, "/tmp"); err != nil {
		return err
	}
	tag, err := k.AllocTag(alice)
	if err != nil {
		return err
	}
	secret := difc.NewLabel(tag)
	fd, err := k.CreateFileLabeled(alice, "alice.cal", 0o600, difc.Labels{S: secret})
	if err != nil {
		return err
	}
	k.Close(alice, fd)

	// Denials, one per op family. Errors are the point here. The pipe is
	// made while alice is still clean so it stays unlabeled; her tainted
	// write into it is then a write-down the kernel silently drops.
	_, _ = k.Open(bob, "/tmp/alice.cal", kernel.ORead) // secrecy read
	_ = k.SetTaskLabel(bob, kernel.Secrecy, secret)    // label change w/o t+
	_, pw, perr := k.Pipe(alice)
	if err := k.SetTaskLabel(alice, kernel.Secrecy, secret); err == nil {
		if perr == nil {
			_, _ = k.Write(alice, pw, []byte("leak")) // tainted write-down, silent drop
		}
		_ = k.Kill(alice, bob.TID, kernel.SIGUSR1) // tainted signal
		_ = k.SetTaskLabel(alice, kernel.Secrecy, difc.EmptyLabel)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rec.Dump(w); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote %d events to %s (%d denials)\n", len(rec.Snapshot()), out, len(rec.Denials()))
	}
	return nil
}

func runTail(w io.Writer, dump string, denyOnly bool, layer, op, site string, n int) error {
	events, err := readEvents(dump)
	if err != nil {
		return err
	}
	var match []telemetry.Event
	for _, e := range events {
		if denyOnly && e.Kind != telemetry.KindDeny {
			continue
		}
		if layer != "" && e.Layer.String() != layer {
			continue
		}
		if op != "" && e.Op != op {
			continue
		}
		if site != "" && e.Site != site {
			continue
		}
		match = append(match, e)
	}
	if n > 0 && len(match) > n {
		match = match[len(match)-n:]
	}
	for _, e := range match {
		fmt.Fprintln(w, e.String())
	}
	fmt.Fprintf(w, "%d/%d events\n", len(match), len(events))
	return nil
}

func runExplain(w io.Writer, dump string, seq uint64) error {
	events, err := readEvents(dump)
	if err != nil {
		return err
	}
	var pick *telemetry.Event
	for i := range events {
		e := &events[i]
		if e.Kind != telemetry.KindDeny {
			continue
		}
		if seq == 0 || e.Seq == seq {
			pick = e // seq 0: keep overwriting, ends on the most recent
		}
	}
	if pick == nil {
		if seq != 0 {
			return fmt.Errorf("no denial with seq %d in %s", seq, dump)
		}
		return fmt.Errorf("no denials in %s", dump)
	}
	fmt.Fprintln(w, telemetry.Explain(*pick))
	return nil
}

func runStats(w io.Writer, dump string) error {
	var rd io.Reader = os.Stdin
	if dump != "-" {
		f, err := os.Open(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	meta, events, err := telemetry.ReadDumpFull(rd)
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	layers := map[string]int{}
	rules := map[string]int{}
	sites := map[string]int{}
	for _, e := range events {
		kinds[e.Kind.String()]++
		layers[e.Layer.String()]++
		if e.Kind == telemetry.KindDeny {
			rules[e.Rule.String()]++
			sites[e.Site]++
		}
	}
	fmt.Fprintf(w, "%d events\n\nby kind:\n", len(events))
	printSorted(w, kinds)
	fmt.Fprintln(w, "\nby layer:")
	printSorted(w, layers)
	fmt.Fprintln(w, "\ndenials by rule:")
	printSorted(w, rules)
	fmt.Fprintln(w, "\ndenials by site:")
	printSorted(w, sites)
	if meta != nil && meta.Snapshot != nil && len(meta.Snapshot.LayerLatency) > 0 {
		fmt.Fprintf(w, "\nper-layer latency (node %d, epoch %d):\n", meta.Node, meta.NodeEpoch)
		names := make([]string, 0, len(meta.Snapshot.LayerLatency))
		for name := range meta.Snapshot.LayerLatency {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			buckets := meta.Snapshot.LayerLatency[name]
			var count uint64
			for _, b := range buckets {
				count += b.Count
			}
			p50, _ := telemetry.HistQuantile(buckets, 0.50)
			p99, _ := telemetry.HistQuantile(buckets, 0.99)
			fmt.Fprintf(w, "  %-8s %8d obs  p50 ≤ %dns  p99 ≤ %dns\n", name, count, p50, p99)
		}
	}
	return nil
}

// runExplainRoute merges events from every listed dump and reconstructs
// the traced flow's route. Trace id 0 auto-picks the most recent traced
// denial across the merged set.
func runExplainRoute(w io.Writer, trace uint64, dumps []string) error {
	var events []telemetry.Event
	for _, path := range dumps {
		evs, err := readEvents(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		events = append(events, evs...)
	}
	if trace == 0 {
		ids := telemetry.TracedDenials(events)
		if len(ids) == 0 {
			return fmt.Errorf("no traced denials in %d dump(s); pass -trace explicitly", len(dumps))
		}
		trace = ids[0]
	}
	rep, err := telemetry.ExplainRoute(trace, events)
	if err != nil {
		return err
	}
	fmt.Fprint(w, telemetry.FormatRoute(rep))
	return nil
}

func printSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "  %6d  %s\n", m[k], k)
	}
}
