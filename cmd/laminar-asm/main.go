// Command laminar-asm assembles, disassembles and runs MiniJVM text
// programs — the compiler engineer's workbench for the barrier-inserting
// JIT.
//
//	laminar-asm run prog.mjvm -entry main -args 5,7 -mode static -opt
//	laminar-asm dis prog.mjvm               # source disassembly
//	laminar-asm dis prog.mjvm -compiled     # compiled form with barriers
//
// The text format is documented in internal/jvm/parse.go.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"laminar/internal/jvm"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet("laminar-asm", flag.ExitOnError)
	var (
		mode     = fs.String("mode", "static", "barrier mode: none, static, dynamic")
		optimize = fs.Bool("opt", false, "redundant-barrier elimination")
		inline   = fs.Bool("inline", false, "inline small leaf methods")
		entry    = fs.String("entry", "main", "entry method")
		argList  = fs.String("args", "", "comma-separated integer arguments")
		budget   = fs.Uint64("budget", 10_000_000, "instruction budget (0 = unlimited)")
		compiled = fs.Bool("compiled", false, "dis: show the compiled form")
		stats    = fs.Bool("stats", false, "run: print machine statistics")
	)
	fs.Parse(os.Args[3:])

	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := jvm.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opts := jvm.CompileOptions{Optimize: *optimize, Inline: *inline}
	switch *mode {
	case "none":
		opts.Mode = jvm.BarrierNone
	case "static":
		opts.Mode = jvm.BarrierStatic
	case "dynamic":
		opts.Mode = jvm.BarrierDynamic
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	switch cmd {
	case "run":
		mc, err := jvm.NewMachine(prog, opts)
		if err != nil {
			fatal(err)
		}
		mc.MaxInstructions = *budget
		var args []jvm.Value
		if *argList != "" {
			for _, s := range strings.Split(*argList, ",") {
				n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					fatal(fmt.Errorf("bad argument %q", s))
				}
				args = append(args, jvm.IntV(n))
			}
		}
		v, err := mc.Call(mc.NewThread(), *entry, args...)
		if err != nil {
			fatal(err)
		}
		if v.IsRef() {
			fmt.Println("(object)")
		} else {
			fmt.Println(v.Int())
		}
		if *stats {
			st := mc.Stats()
			fmt.Fprintf(os.Stderr, "instructions=%d barrier-checks=%d context-checks=%d regions=%d violations=%d\n",
				st.Instructions, st.BarrierChecks, st.ContextChecks, st.RegionsEntered, st.Violations)
			rep := mc.CompileReport()
			fmt.Fprintf(os.Stderr, "compiled methods=%d instrs=%d barriers=%d elided=%d inlined=%d\n",
				rep.Methods, rep.InstrsOut, rep.BarriersEmitted, rep.BarriersElided, rep.InlinedCalls)
		}
	case "dis":
		if !*compiled {
			fmt.Print(prog.Dump())
			return
		}
		if _, err := prog.CompileAll(opts); err != nil {
			fatal(err)
		}
		fmt.Print(prog.Dump())
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: laminar-asm run|dis <file.mjvm> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laminar-asm:", err)
	os.Exit(1)
}
