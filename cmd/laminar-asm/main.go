// Command laminar-asm assembles, disassembles and runs MiniJVM text
// programs — the compiler engineer's workbench for the barrier-inserting
// JIT.
//
//	laminar-asm run prog.mjvm -entry main -args 5,7 -mode static -opt
//	laminar-asm run prog.mjvm -opt=interproc -stats   # whole-program elimination
//	laminar-asm dis prog.mjvm                         # source disassembly
//	laminar-asm dis prog.mjvm -compiled               # compiled form with barriers
//
// The text format is documented in internal/jvm/parse.go.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"laminar/internal/jvm"
	"laminar/internal/jvm/analysis"
)

// optFlag parses -opt as a boolean with one extra spelling: bare -opt (or
// -opt=true) enables the intraprocedural elimination pass, -opt=interproc
// additionally attaches the whole-program summary analysis.
type optFlag struct {
	enabled   bool
	interproc bool
}

func (o *optFlag) String() string {
	switch {
	case o.interproc:
		return "interproc"
	case o.enabled:
		return "true"
	}
	return "false"
}

func (o *optFlag) Set(s string) error {
	switch s {
	case "interproc":
		o.enabled, o.interproc = true, true
	case "true", "":
		o.enabled, o.interproc = true, false
	case "false":
		o.enabled, o.interproc = false, false
	default:
		return fmt.Errorf("want true, false or interproc, got %q", s)
	}
	return nil
}

func (o *optFlag) IsBoolFlag() bool { return true }

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet("laminar-asm", flag.ExitOnError)
	var opt optFlag
	var (
		mode     = fs.String("mode", "static", "barrier mode: none, static, dynamic")
		inline   = fs.Bool("inline", false, "inline small leaf methods")
		entry    = fs.String("entry", "main", "entry method")
		argList  = fs.String("args", "", "comma-separated integer arguments")
		budget   = fs.Uint64("budget", 10_000_000, "instruction budget (0 = unlimited)")
		compiled = fs.Bool("compiled", false, "dis: show the compiled form")
		stats    = fs.Bool("stats", false, "run: print machine statistics")
	)
	fs.Var(&opt, "opt", "barrier elimination: bare flag = intraprocedural, =interproc = whole-program")
	fs.Parse(os.Args[3:])

	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := jvm.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opts := jvm.CompileOptions{Optimize: opt.enabled, Interproc: opt.interproc, Inline: *inline}
	switch *mode {
	case "none":
		opts.Mode = jvm.BarrierNone
	case "static":
		opts.Mode = jvm.BarrierStatic
	case "dynamic":
		opts.Mode = jvm.BarrierDynamic
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if opt.interproc {
		if _, err := analysis.Attach(prog); err != nil {
			fatal(err)
		}
	}

	switch cmd {
	case "run":
		mc, err := jvm.NewMachine(prog, opts)
		if err != nil {
			fatal(err)
		}
		mc.MaxInstructions = *budget
		var args []jvm.Value
		if *argList != "" {
			for _, s := range strings.Split(*argList, ",") {
				n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					fatal(fmt.Errorf("bad argument %q", s))
				}
				args = append(args, jvm.IntV(n))
			}
		}
		v, err := mc.Call(mc.NewThread(), *entry, args...)
		if err != nil {
			fatal(err)
		}
		if v.IsRef() {
			fmt.Println("(object)")
		} else {
			fmt.Println(v.Int())
		}
		if *stats {
			st := mc.Stats()
			fmt.Fprintf(os.Stderr, "instructions=%d barrier-checks=%d context-checks=%d regions=%d violations=%d\n",
				st.Instructions, st.BarrierChecks, st.ContextChecks, st.RegionsEntered, st.Violations)
			rep := mc.CompileReport()
			fmt.Fprintf(os.Stderr, "compiled methods=%d instrs=%d barriers=%d elided=%d inlined=%d\n",
				rep.Methods, rep.InstrsOut, rep.BarriersEmitted, rep.BarriersElided, rep.InlinedCalls)
			printBarrierStats(prog)
		}
	case "dis":
		if !*compiled {
			fmt.Print(prog.Dump())
			return
		}
		if _, err := prog.CompileAll(opts); err != nil {
			fatal(err)
		}
		fmt.Print(prog.Dump())
		printBarrierStats(prog)
	default:
		usage()
	}
}

// printBarrierStats writes the per-method barrier accounting table: sites
// before elimination, sites the dataflow pass removed, and barrier
// instructions actually emitted (allocation labeling included).
func printBarrierStats(prog *jvm.Program) {
	all := prog.BarrierStats()
	if len(all) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%-16s %-14s %6s %7s %8s %10s %s\n",
		"method", "variant", "sites", "elided", "emitted", "remaining", "")
	for _, s := range all {
		note := ""
		if s.BarrierFree {
			note = "barrier-free"
		}
		fmt.Fprintf(os.Stderr, "%-16s %-14s %6d %7d %8d %10d %s\n",
			s.Method, s.Variant, s.Sites, s.Elided, s.Emitted, s.Sites-s.Elided, note)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: laminar-asm run|dis <file.mjvm> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laminar-asm:", err)
	os.Exit(1)
}
