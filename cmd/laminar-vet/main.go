// Command laminar-vet is the static analysis companion to laminar-asm: it
// checks MiniJVM programs against the §5.1 security-region restrictions
// without running them, prints the interprocedural summaries the
// barrier-elimination pass computes, and explains every keep/eliminate
// decision the compiler would make.
//
//	laminar-vet vet [-json] [-strict] prog.mjvm [more.mjvm ...]
//	laminar-vet summaries prog.mjvm             # per-method dataflow summaries
//	laminar-vet explain prog.mjvm [-method m]   # per-site barrier decisions
//
// vet exits 1 when any non-advisory finding (or verification error) is
// reported, so it works as a CI gate; -json emits the findings as a JSON
// array (stable rule IDs, method@pc locations) for machine consumption.
// Findings are conservative: every access that is guaranteed to be
// denied at runtime is flagged, and a small documented set of
// risky-but-legal patterns is reported as advisory.
//
// Rule IDs (stable, for CI filters):
//
//	verify                        the program fails the §5.1 verifier
//	region-returns-value          security region returns a value
//	region-param-write            region writes a parameter slot
//	region-param-value-use        region uses a parameter as a plain value
//	region-no-catch               region lacks a catch block (advisory)
//	region-static-read-integrity  static read guaranteed denied (integrity)
//	region-static-write-secrecy   static write guaranteed denied (secrecy)
//	region-ref-escape             reference escapes its region
//	region-outer-write            write to outer object denied (secrecy)
//	region-outer-read             read of outer object denied (integrity)
//	region-no-exit                region cannot exit normally
//	robust-declassification       low-integrity data influences the data,
//	                              scope, or destination of a declassifier
//	transparent-endorsement       secret data influences an endorsement
//	                              decision or a branch guarding one
//	implicit-flow-fanout          branch on secret data selects between
//	                              distinguishable public effects
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"laminar/internal/jvm"
	"laminar/internal/jvm/analysis"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	switch cmd {
	case "vet":
		os.Exit(runVet(os.Args[2:]))
	case "summaries":
		os.Exit(runSummaries(os.Args[2:]))
	case "explain":
		os.Exit(runExplain(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: laminar-vet vet|summaries|explain <file.mjvm> [flags]")
	os.Exit(2)
}

// load parses one source file. Verification is left to the caller: vet
// reports verifier rejections as findings, the other subcommands require
// a verifiable program.
func load(path string) (*jvm.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := jvm.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prog, nil
}

// jsonFinding is the machine-readable finding schema (-json). Field
// names are part of the CI contract; keep them stable.
type jsonFinding struct {
	File     string `json:"file"`
	Method   string `json:"method,omitempty"`
	PC       int    `json:"pc"`
	InCatch  bool   `json:"inCatch,omitempty"`
	Rule     string `json:"rule"`
	Advisory bool   `json:"advisory,omitempty"`
	Msg      string `json:"msg"`
}

// runVet lints every named file — the structural region rules (Lint) and
// the interprocedural taint rules (LintTaint) — and prints findings one
// per line prefixed with the file name, or as a JSON array with -json.
// Exit status 1 when any hard (non-advisory) finding or verification
// failure is seen.
func runVet(args []string) int {
	fs := flag.NewFlagSet("laminar-vet vet", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat advisory findings as errors")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	hard := 0
	out := []jsonFinding{}
	report := func(jf jsonFinding) {
		switch {
		case *asJSON:
			out = append(out, jf)
		case jf.Method == "": // file-level finding (verifier rejection)
			fmt.Printf("%s: [%s] %s\n", jf.File, jf.Rule, jf.Msg)
		default:
			f := analysis.Finding{Method: jf.Method, PC: jf.PC, InCatch: jf.InCatch,
				Rule: jf.Rule, Advisory: jf.Advisory, Msg: jf.Msg}
			fmt.Printf("%s: %s\n", jf.File, f)
		}
		if !jf.Advisory || *strict {
			hard++
		}
	}
	for _, path := range fs.Args() {
		prog, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "laminar-vet:", err)
			hard++
			continue
		}
		// A verifier rejection is itself a finding: the structural
		// restrictions (§5.1) overlap with the lint rules, and vet must
		// not crash on programs the runtime would refuse to load.
		if err := prog.Verify(); err != nil {
			report(jsonFinding{File: path, PC: -1, Rule: "verify", Msg: err.Error()})
			continue
		}
		for _, f := range analysis.Lint(prog) {
			report(jsonFinding{File: path, Method: f.Method, PC: f.PC,
				InCatch: f.InCatch, Rule: f.Rule, Advisory: f.Advisory, Msg: f.Msg})
		}
		for _, f := range analysis.LintTaint(prog) {
			report(jsonFinding{File: path, Method: f.Method, PC: f.PC,
				InCatch: f.InCatch, Rule: f.Rule, Advisory: f.Advisory, Msg: f.Msg})
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-vet:", err)
			return 1
		}
	}
	if hard > 0 {
		return 1
	}
	return 0
}

// factString renders fact bits as rw / r- / -w / --.
func factString(bits uint8) string {
	b := []byte("--")
	if bits&jvm.FactRead != 0 {
		b[0] = 'r'
	}
	if bits&jvm.FactWrite != 0 {
		b[1] = 'w'
	}
	return string(b)
}

func factList(facts []uint8) string {
	if len(facts) == 0 {
		return "-"
	}
	parts := make([]string, len(facts))
	for i, f := range facts {
		parts[i] = factString(f)
	}
	return strings.Join(parts, ",")
}

// runSummaries prints the per-method interprocedural summary table.
func runSummaries(args []string) int {
	fs := flag.NewFlagSet("laminar-vet summaries", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "laminar-vet:", err)
		return 1
	}
	res, err := analysis.Attach(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laminar-vet:", err)
		return 1
	}
	ip := prog.Interproc()
	fmt.Printf("%-16s %-10s %-12s %-6s %-8s %-12s %s\n",
		"METHOD", "KIND", "ENSURES", "RET", "STATICS", "ENTRY", "BARRIER-FREE")
	for i, m := range prog.Methods {
		kind := "method"
		if m.Secure != nil {
			kind = "region"
		}
		s := res.Summaries[i]
		free := ""
		if ip != nil && i < len(ip.BarrierFree) && ip.BarrierFree[i] {
			free = "yes"
		}
		fmt.Printf("%-16s %-10s %-12s %-6s %-8s %-12s %s\n",
			m.Name, kind,
			factList(s.Ensures), factString(s.Return), factString(s.Statics),
			factList(s.EntryChecked), free)
	}
	return 0
}

// runExplain prints the keep/eliminate decision and its reason for every
// barrier site, using the same dataflow pass the compiler runs.
func runExplain(args []string) int {
	fs := flag.NewFlagSet("laminar-vet explain", flag.ExitOnError)
	method := fs.String("method", "", "restrict output to one method")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "laminar-vet:", err)
		return 1
	}
	if _, err := analysis.Attach(prog); err != nil {
		fmt.Fprintln(os.Stderr, "laminar-vet:", err)
		return 1
	}
	ip := prog.Interproc()
	for i, m := range prog.Methods {
		if *method != "" && m.Name != *method {
			continue
		}
		// Invoke-reached code assumes the caller-proven entry facts;
		// secure methods and host entries assume none.
		var entry []uint8
		if ip != nil && m.Secure == nil && i < len(ip.EntryChecked) {
			entry = ip.EntryChecked[i]
		}
		decisions := prog.BarrierDecisions(m, entry)
		if len(decisions) == 0 {
			continue
		}
		fmt.Printf("%s:\n", m.Name)
		for _, d := range decisions {
			verdict := "eliminate"
			if d.Kept {
				verdict = "keep"
			}
			fmt.Printf("  @%-4d %-12s %-12s %-9s %s\n", d.PC, d.Op, d.Kind, verdict, d.Reason)
		}
	}
	return 0
}
