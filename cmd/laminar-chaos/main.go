// Command laminar-chaos replays seeded fault-injection schedules against
// the full system — kernel, LSM, label persistence, runtime and the FreeCS
// chat transport — and reports any DIFC invariant violations. The same
// seed always produces the byte-for-byte identical schedule, so a failing
// seed printed by the chaos tests reproduces exactly:
//
//	go run ./cmd/laminar-chaos -seed 17 -ops 200
//
// Exit status is 1 when any schedule violates an invariant.
package main

import (
	"flag"
	"fmt"
	"os"

	"laminar/internal/chaos"
	"laminar/internal/faultinject"
)

func main() {
	var (
		seed   = flag.Int64("seed", 0, "run exactly this one seed (0 = run -seeds many, starting at 1)")
		seeds  = flag.Int("seeds", 50, "number of consecutive seeds to run when -seed is 0")
		ops    = flag.Int("ops", 200, "workload operations per schedule")
		errR   = flag.Float64("error-rate", 0.02, "probability an injection site returns an error")
		crashR = flag.Float64("crash-rate", 0.004, "probability an injection site crash-kills the acting task")
		delayR = flag.Float64("delay-rate", 0.02, "probability an injection site yields the scheduler")
		verb    = flag.Bool("v", false, "print the fault schedule of every run, not just failures")
		bigLock = flag.Bool("biglock", false, "run on the serial big-lock kernel instead of the sharded one")
	)
	flag.Parse()

	rates := faultinject.Rates{Error: *errR, Crash: *crashR, Delay: *delayR}
	lo, hi := int64(1), int64(*seeds)
	if *seed != 0 {
		lo, hi = *seed, *seed
	}

	failed := 0
	for s := lo; s <= hi; s++ {
		rep := chaos.Run(chaos.Config{Seed: s, Ops: *ops, Rates: rates, Record: true, BigLock: *bigLock})
		status := "ok"
		if len(rep.Violations) > 0 {
			status = "FAIL"
			failed++
		}
		fmt.Printf("seed %-4d %s  faults=%d recovery={clean:%d rolled-forward:%d quarantined:%d}\n",
			s, status, rep.Faults, rep.Recovery.Clean, rep.Recovery.RolledForward, rep.Recovery.Quarantined)
		for _, v := range rep.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		if *verb || len(rep.Violations) > 0 {
			fmt.Printf("  schedule:\n%s", indent(rep.Schedule))
		}
	}
	if failed > 0 {
		fmt.Printf("%d/%d schedules violated invariants\n", failed, hi-lo+1)
		os.Exit(1)
	}
}

func indent(s string) string {
	out := ""
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out += "    " + s[:i] + "\n"
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
