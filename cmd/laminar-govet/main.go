// Command laminar-govet checks the Laminar kernel's own Go sources
// against the invariants the runtime cannot verify for itself:
//
//	epochbump   every label mutation bumps the verdict-cache epoch
//	lockorder   lock acquisitions respect the task→file→inode order
//	failclosed  enforcement error paths never swallow errors as nil
//
// Usage:
//
//	laminar-govet [-json] [dir ...]
//
// With no directories it checks the current tree. Exit status is 0 when
// clean, 1 when any finding is reported, 2 on usage or load errors.
// -json emits the findings as a JSON array (CI artifact format).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"laminar/internal/govet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: laminar-govet [-json] [dir ...]\n\nAnalyzers:\n")
		for _, a := range govet.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}

	findings := []govet.Finding{}
	for _, dir := range dirs {
		fs, err := govet.RunDir(dir, govet.Analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "laminar-govet:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "laminar-govet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("laminar-govet: %d finding(s)\n", len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
