// Package telemetry is the unified observability subsystem for the
// Laminar reproduction: one low-overhead event stream threaded through
// every enforcement point — kernel syscalls and LSM hooks, the VM
// runtime's read/write barriers and security regions, the MiniJVM's
// compiled barriers, the interned-label flow cache, and the
// fault-injection layer.
//
// It has three parts (DESIGN.md §11):
//
//   - Decision provenance: every denial (and, at LevelAll, every allow)
//     records which rule fired — Bell–LaPadula secrecy, Biba integrity,
//     the label-change capability rule — together with the offending tag
//     delta, the subject/object labels as interned ids (never copies),
//     and the syscall/hook/barrier site. Denials are queryable after the
//     fact and replayable: Explain re-runs the exact check from the
//     recorded operands.
//   - Metrics: sharded atomic counters and log-scale latency histograms
//     for hook rates, denials by rule, barrier hits, flow-cache and
//     intern-table traffic, lock contention and fault-injection trips,
//     exported via expvar and a Prometheus-style text dump.
//   - Flight recorder: a fixed-size lock-free per-shard ring of recent
//     events that a crash, chaos failure or oracle mismatch dumps for
//     postmortem replay (ring.go, dump.go).
//
// Cost model: with the level at LevelOff (the default), every
// instrumentation site is a single atomic load and a predictable branch;
// laminar-bench -telemetry proves the disabled path within 2% of an
// uninstrumented kernel on the io-storm workload. Event construction,
// label interning and ring writes happen only past that gate.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"

	"laminar/internal/difc"
)

// Level selects how much the recorder observes.
type Level int32

// Recording levels.
const (
	// LevelOff records nothing; instrumentation sites reduce to one
	// atomic load. The production default.
	LevelOff Level = iota
	// LevelDeny records denials, faults and security-region lifecycle
	// events, and keeps metrics.
	LevelDeny
	// LevelAll additionally records every allow decision. Expensive;
	// meant for tracing sessions and tests.
	LevelAll
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelDeny:
		return "deny"
	case LevelAll:
		return "all"
	default:
		return "unknown"
	}
}

// Layer identifies which enforcement layer emitted an event.
type Layer uint8

// Enforcement layers.
const (
	LayerKernel  Layer = iota // syscall layer (hook call sites)
	LayerLSM                  // the Laminar security module itself
	LayerRT                   // the trusted VM runtime (regions, barriers)
	LayerJVM                  // the MiniJVM substrate
	LayerNet                  // the cross-kernel labeled transport (netlabel)
	LayerCluster              // the cluster label plane (membership, epochs, changes)
	LayerBudget               // the quantitative flow-budget ledger (internal/budget)
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case LayerKernel:
		return "kernel"
	case LayerLSM:
		return "lsm"
	case LayerRT:
		return "rt"
	case LayerJVM:
		return "jvm"
	case LayerNet:
		return "net"
	case LayerCluster:
		return "cluster"
	case LayerBudget:
		return "budget"
	default:
		return "unknown"
	}
}

// layerFromString parses a dumped layer name.
func layerFromString(s string) Layer {
	switch s {
	case "lsm":
		return LayerLSM
	case "rt":
		return LayerRT
	case "jvm":
		return LayerJVM
	case "net":
		return LayerNet
	case "cluster":
		return LayerCluster
	case "budget":
		return LayerBudget
	default:
		return LayerKernel
	}
}

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KindDeny         Kind = iota // a DIFC check rejected an operation
	KindAllow                    // a DIFC check passed (LevelAll only)
	KindRegionEnter              // a security region was entered
	KindRegionExit               // a security region was exited
	KindCopyAndLabel             // an explicit declassification/relabel
	KindCapGained                // a capability was acquired
	KindCapDropped               // a capability was dropped
	KindFaultTrip                // the fault injector fired at a site
	KindLifecycle                // a cluster membership/change transition
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDeny:
		return "deny"
	case KindAllow:
		return "allow"
	case KindRegionEnter:
		return "region-enter"
	case KindRegionExit:
		return "region-exit"
	case KindCopyAndLabel:
		return "copy-and-label"
	case KindCapGained:
		return "cap-gained"
	case KindCapDropped:
		return "cap-dropped"
	case KindFaultTrip:
		return "fault-trip"
	case KindLifecycle:
		return "lifecycle"
	default:
		return "unknown"
	}
}

// kindFromString parses a dumped kind name.
func kindFromString(s string) Kind {
	for k := KindDeny; k <= KindLifecycle; k++ {
		if k.String() == s {
			return k
		}
	}
	return KindDeny
}

// Rule names which DIFC rule a decision exercised.
type Rule uint8

// Decision rules.
const (
	RuleNone        Rule = iota // lifecycle events, fault trips
	RuleSecrecy                 // Bell–LaPadula: Ssrc ⊆ Sdst
	RuleIntegrity               // Biba: Idst ⊆ Isrc
	RuleLabelChange             // label-change capability rule
	RuleCapability              // capability possession / subset checks
	RuleFault                   // fail-closed denial from an injected fault
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleNone:
		return "none"
	case RuleSecrecy:
		return "secrecy"
	case RuleIntegrity:
		return "integrity"
	case RuleLabelChange:
		return "label-change"
	case RuleCapability:
		return "capability"
	case RuleFault:
		return "fault"
	default:
		return "unknown"
	}
}

// ruleFromString parses a dumped rule name.
func ruleFromString(s string) Rule {
	for r := RuleNone; r <= RuleFault; r++ {
		if r.String() == s {
			return r
		}
	}
	return RuleNone
}

// Event is one provenance record. Labels are carried as interned ids
// (difc.LabelByID resolves them) so recording never copies tag slices;
// the Delta — the exact tags that fired a denial — is the only per-event
// allocation beyond the record itself.
//
// For flow-rule events Src/Dst are the operands exactly as the check saw
// them (CheckFlow(Op, Src, Dst)); for label-change events Src is the
// current ("from") label pair and Dst the requested ("to") pair, with
// CapP/CapM the acting capability set. Replay re-runs the identical
// check from these operands (explain.go).
type Event struct {
	Seq  uint64 // recorder-global sequence number (total order)
	TID  uint64 // acting kernel task, 0 when no task is involved
	Proc uint64 // acting task's process id (VM audit adapters filter on it)
	Ino  uint64 // inode the check concerned (trace binding key), 0 when none

	Node      uint64 // emitting node id (stamped by Emit), 0 standalone
	NodeEpoch uint64 // emitting node's incarnation epoch

	TraceID     uint64 // cross-hop trace id (stamped by Emit), 0 untraced
	TraceHop    uint8  // hops from the trace origin to this node
	TraceOrigin uint64 // trace-minting node id
	TraceEpoch  uint64 // trace-minting node's incarnation epoch

	Layer Layer
	Kind  Kind
	Rule  Rule
	Op    string // operation checked: "read", "write", "signal", ...
	Check string // check shape for label-change denials: "change", "acquire", "drop", "subset"
	Site  string // emission site: "hook.FilePermission", "rt.barrier.read", ...

	SrcS, SrcI uint64 // interned ids of the source/from label pair
	DstS, DstI uint64 // interned ids of the destination/to label pair
	CapP, CapM uint64 // interned ids of the acting capability set (label-change)

	Delta []difc.Tag   // offending tag delta (denials)
	Tag   difc.Tag     // capability-movement events
	Cap   difc.CapKind // capability-movement events

	Detail string // human-oriented denial detail (cold path only)
}

// String renders the event for logs and the live tail.
func (e Event) String() string {
	switch e.Kind {
	case KindDeny:
		return fmt.Sprintf("#%d [tid %d] %s %s deny op=%s rule=%s delta=%v %s",
			e.Seq, e.TID, e.Layer, e.Site, e.Op, e.Rule, e.Delta, e.Detail)
	case KindAllow:
		return fmt.Sprintf("#%d [tid %d] %s %s allow op=%s", e.Seq, e.TID, e.Layer, e.Site, e.Op)
	case KindCapGained, KindCapDropped:
		return fmt.Sprintf("#%d [tid %d] %s %s %s %v%v", e.Seq, e.TID, e.Layer, e.Site, e.Kind, e.Tag, e.Cap)
	case KindFaultTrip:
		return fmt.Sprintf("#%d [tid %d] %s %s fault-trip %s", e.Seq, e.TID, e.Layer, e.Site, e.Detail)
	default:
		return fmt.Sprintf("#%d [tid %d] %s %s %s", e.Seq, e.TID, e.Layer, e.Site, e.Kind)
	}
}

// SrcLabels resolves the event's source label pair. ok is false when
// either component was never interned (unknown at emission time).
func (e Event) SrcLabels() (difc.Labels, bool) {
	s, ok1 := difc.LabelByID(e.SrcS)
	i, ok2 := difc.LabelByID(e.SrcI)
	return difc.Labels{S: s, I: i}, ok1 && ok2
}

// DstLabels resolves the event's destination label pair.
func (e Event) DstLabels() (difc.Labels, bool) {
	s, ok1 := difc.LabelByID(e.DstS)
	i, ok2 := difc.LabelByID(e.DstI)
	return difc.Labels{S: s, I: i}, ok1 && ok2
}

// Caps resolves the event's recorded capability set.
func (e Event) Caps() (difc.CapSet, bool) {
	p, ok1 := difc.LabelByID(e.CapP)
	m, ok2 := difc.LabelByID(e.CapM)
	return difc.NewCapSet(p, m), ok1 && ok2
}

// Recorder is one telemetry domain: a level gate, a flight-recorder ring,
// a metrics block and a subscriber list. The package-level Default
// recorder serves normal processes; tests and the chaos harness create
// private recorders so parallel runs do not share rings.
type Recorder struct {
	level atomic.Int32
	seq   atomic.Uint64
	rings [ringShards]ring

	// Node identity and the trace registry (trace.go). Telemetry-only
	// state: enforcement never reads these, so binding a trace cannot
	// perturb a verdict.
	nodeID     atomic.Uint64
	nodeEpoch  atomic.Uint64
	traceBound atomic.Int64
	traces     traceReg

	M Metrics

	subMu sync.Mutex
	subs  atomic.Pointer[[]func(Event)]
}

// Default is the process-wide recorder: the kernel uses it unless a
// private one is installed, and expvar/Prometheus export reads it.
var Default = NewRecorder()

// NewRecorder builds a recorder at LevelOff.
func NewRecorder() *Recorder { return &Recorder{} }

// SetLevel switches the recorder's level at runtime.
func (r *Recorder) SetLevel(l Level) { r.level.Store(int32(l)) }

// Level reports the current level.
func (r *Recorder) Level() Level { return Level(r.level.Load()) }

// Active reports whether the recorder observes anything at all. This is
// THE disabled-path gate: one atomic load, done before any event
// construction, interning or timing at every instrumentation site.
func (r *Recorder) Active() bool { return r.level.Load() != int32(LevelOff) }

// Verbose reports whether allow decisions are recorded too.
func (r *Recorder) Verbose() bool { return r.level.Load() >= int32(LevelAll) }

// Subscribe registers a live sink called synchronously for every
// recorded event (the VM audit adapter and laminar-trace's live tail use
// it). The returned function unsubscribes. Sinks must be fast and must
// not re-enter the recorder.
func (r *Recorder) Subscribe(fn func(Event)) func() {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	old := r.subs.Load()
	var next []func(Event)
	if old != nil {
		next = append(next, *old...)
	}
	idx := len(next)
	next = append(next, fn)
	r.subs.Store(&next)
	return func() {
		r.subMu.Lock()
		defer r.subMu.Unlock()
		cur := r.subs.Load()
		if cur == nil || idx >= len(*cur) {
			return
		}
		repl := make([]func(Event), 0, len(*cur)-1)
		repl = append(repl, (*cur)[:idx]...)
		repl = append(repl, (*cur)[idx+1:]...)
		r.subs.Store(&repl)
	}
}

// Emit records one event: sequence assignment, ring write, counters,
// subscribers. Callers must already have checked Active (or Verbose for
// allow events); Emit itself re-checks nothing so the cold path stays a
// single code path.
func (r *Recorder) Emit(e Event) {
	e.Seq = r.seq.Add(1)
	r.stampTrace(&e)
	r.record(&e)
	r.M.events.Inc(e.TID)
	if e.Kind == KindDeny {
		r.M.Denials.Inc(e.TID)
		r.M.denialsByRule[e.Rule].Inc(e.TID)
	} else if e.Kind == KindAllow {
		r.M.Allows.Inc(e.TID)
	}
	if subs := r.subs.Load(); subs != nil {
		for _, fn := range *subs {
			fn(e)
		}
	}
}

// EmitDeny classifies a denial error into a provenance event and records
// it: *difc.FlowError becomes a secrecy/integrity denial with the exact
// operands and delta, *difc.ChangeError a label-change/capability denial,
// and anything else (policy refusals, injected faults) a denial with
// detail text only. Callers gate on Active.
func (r *Recorder) EmitDeny(layer Layer, site, op string, tid, proc uint64, err error) {
	r.Emit(DenyEvent(layer, site, op, tid, proc, err))
}

// EmitAllow records a passed check (LevelAll). Label operands are
// optional: pass interned ids when the call site has them cheaply.
func (r *Recorder) EmitAllow(layer Layer, site, op string, tid, proc uint64) {
	r.Emit(Event{Layer: layer, Kind: KindAllow, Op: op, Site: site, TID: tid, Proc: proc})
}

// EmitFaultTrip records a fault-injection firing and bumps the trip
// counter. Callers gate on Active; the counter also fires at LevelDeny.
func (r *Recorder) EmitFaultTrip(layer Layer, site string, tid uint64, kind string) {
	r.M.FaultTrips.Inc(tid)
	r.Emit(Event{Layer: layer, Kind: KindFaultTrip, Site: site, TID: tid, Detail: kind})
}
