package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"laminar/internal/difc"
)

// Metrics primitives. Counters are striped across cache-line-padded
// atomic cells indexed by the caller's TID so concurrent tasks on
// different cores do not bounce one hot line; histograms bucket latencies
// at log2 resolution so recording is a single shift plus one atomic add.

const counterStripes = 8

type counterCell struct {
	n atomic.Uint64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a sharded monotonic counter. Inc/Add take a stripe key
// (conventionally the acting TID); Load folds the stripes.
type Counter struct {
	cells [counterStripes]counterCell
}

// Inc adds one on the stripe for key.
func (c *Counter) Inc(key uint64) { c.cells[key%counterStripes].n.Add(1) }

// Add adds n on the stripe for key.
func (c *Counter) Add(key, n uint64) { c.cells[key%counterStripes].n.Add(n) }

// Load returns the folded total.
func (c *Counter) Load() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// Histogram is a log2-bucketed latency histogram over nanoseconds:
// bucket i counts observations with ceil(log2(ns)) == i, so the full
// sub-nanosecond-to-18-minutes range fits in 40 cells and recording is
// branch-free. Good enough to spot an order-of-magnitude regression,
// cheap enough for a per-hook hot path.
type Histogram struct {
	buckets [40]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	i := bits.Len64(ns) // 0 for 0ns, else position of highest set bit
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistBucket is one non-empty histogram cell in a snapshot: all
// observations ≤ UpperNS (and above the previous bucket's bound).
type HistBucket struct {
	UpperNS uint64 `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// snapshot returns the non-empty buckets in ascending bound order.
func (h *Histogram) snapshot() []HistBucket {
	var out []HistBucket
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, HistBucket{UpperNS: (uint64(1) << i) - 1, Count: n})
		}
	}
	return out
}

// CounterVec is a set of named counters created on first use — per-hook
// call counts, rt barrier totals, and other dynamically named series.
// The hot path is one lock-free sync.Map load plus a striped add.
type CounterVec struct {
	m sync.Map // string -> *Counter
}

// Get returns the counter for name, creating it on first use.
func (v *CounterVec) Get(name string) *Counter {
	if c, ok := v.m.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := v.m.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Inc bumps the named counter on the stripe for key.
func (v *CounterVec) Inc(name string, key uint64) { v.Get(name).Inc(key) }

// snapshot folds every named counter.
func (v *CounterVec) snapshot() map[string]uint64 {
	out := map[string]uint64{}
	v.m.Range(func(k, c any) bool {
		out[k.(string)] = c.(*Counter).Load()
		return true
	})
	return out
}

// Metrics is a recorder's counter block. Unlike events it is always
// live once the recorder is Active — LevelDeny keeps full metrics while
// recording only denial events.
type Metrics struct {
	events        Counter
	Denials       Counter
	Allows        Counter
	denialsByRule [RuleFault + 1]Counter

	FaultTrips     Counter // fault-injection firings observed
	LockContention Counter // kernel lock-shard acquisitions that had to wait

	Hooks       CounterVec // per LSM-hook call counts, keyed by site
	Extra       CounterVec // free-form series: rt barriers, jvm checks, ...
	HookLatency Histogram  // latency across all LSM hook invocations

	// LayerLatency attributes enforcement latency to the layered
	// monitors: one histogram per Layer (hook dispatch for LSM, frame
	// apply for Net, control handling for Cluster, ...), the raw data
	// behind cluster-wide per-layer p99 SLOs.
	LayerLatency [LayerBudget + 1]Histogram
}

// ObserveLayer records one duration against a layer's latency histogram.
func (m *Metrics) ObserveLayer(l Layer, d time.Duration) {
	if int(l) < len(m.LayerLatency) {
		m.LayerLatency[l].Observe(d)
	}
}

// Reset zeroes the whole block. For tests and bench warmup; not safe
// against concurrent writers.
func (m *Metrics) Reset() { *m = Metrics{} }

// MetricsSnapshot is a point-in-time fold of a recorder's metrics plus
// the process-global difc flow-cache and intern-table stats, in a shape
// that serialises directly to JSON, expvar and Prometheus text.
type MetricsSnapshot struct {
	Level  string `json:"level"`
	Events uint64 `json:"events"`

	Denials       uint64            `json:"denials"`
	Allows        uint64            `json:"allows"`
	DenialsByRule map[string]uint64 `json:"denials_by_rule,omitempty"`

	FaultTrips     uint64 `json:"fault_trips"`
	LockContention uint64 `json:"lock_contention"`

	Hooks map[string]uint64 `json:"hooks,omitempty"`
	Extra map[string]uint64 `json:"extra,omitempty"`

	HookLatency  []HistBucket            `json:"hook_latency,omitempty"`
	LayerLatency map[string][]HistBucket `json:"layer_latency,omitempty"`

	FlowCacheHits      uint64 `json:"flow_cache_hits"`
	FlowCacheMisses    uint64 `json:"flow_cache_misses"`
	FlowCacheEvictions uint64 `json:"flow_cache_evictions"`
	InternHits         uint64 `json:"intern_hits"`
	InternMisses       uint64 `json:"intern_misses"`

	VerdictCacheHits          uint64 `json:"verdict_cache_hits"`
	VerdictCacheMisses        uint64 `json:"verdict_cache_misses"`
	VerdictCacheInvalidations uint64 `json:"verdict_cache_invalidations"`
}

// MetricsSnapshot folds the recorder's counters.
func (r *Recorder) MetricsSnapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Level:          r.Level().String(),
		Events:         r.M.events.Load(),
		Denials:        r.M.Denials.Load(),
		Allows:         r.M.Allows.Load(),
		FaultTrips:     r.M.FaultTrips.Load(),
		LockContention: r.M.LockContention.Load(),
		Hooks:          r.M.Hooks.snapshot(),
		Extra:          r.M.Extra.snapshot(),
		HookLatency:    r.M.HookLatency.snapshot(),
		DenialsByRule:  map[string]uint64{},
	}
	for rule := range r.M.denialsByRule {
		if n := r.M.denialsByRule[rule].Load(); n > 0 {
			s.DenialsByRule[Rule(rule).String()] = n
		}
	}
	for l := range r.M.LayerLatency {
		if r.M.LayerLatency[l].Count() == 0 {
			continue
		}
		if s.LayerLatency == nil {
			s.LayerLatency = map[string][]HistBucket{}
		}
		s.LayerLatency[Layer(l).String()] = r.M.LayerLatency[l].snapshot()
	}
	s.FlowCacheHits, s.FlowCacheMisses, s.FlowCacheEvictions = difc.FlowCacheStats()
	s.InternHits, s.InternMisses = difc.InternStats()
	s.VerdictCacheHits, s.VerdictCacheMisses, s.VerdictCacheInvalidations = difc.VerdictCacheStats()
	return s
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters only; the histogram as cumulative buckets).
func (s MetricsSnapshot) WritePrometheus(w io.Writer) error {
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return
	}
	if err := p("# TYPE laminar_events_total counter\nlaminar_events_total %d\n", s.Events); err != nil {
		return err
	}
	p("# TYPE laminar_denials_total counter\nlaminar_denials_total %d\n", s.Denials)
	p("# TYPE laminar_allows_total counter\nlaminar_allows_total %d\n", s.Allows)
	for _, rule := range sortedKeys(s.DenialsByRule) {
		p("laminar_denials_by_rule_total{rule=%q} %d\n", rule, s.DenialsByRule[rule])
	}
	p("# TYPE laminar_fault_trips_total counter\nlaminar_fault_trips_total %d\n", s.FaultTrips)
	p("# TYPE laminar_lock_contention_total counter\nlaminar_lock_contention_total %d\n", s.LockContention)
	p("# TYPE laminar_hook_calls_total counter\n")
	for _, hook := range sortedKeys(s.Hooks) {
		p("laminar_hook_calls_total{hook=%q} %d\n", hook, s.Hooks[hook])
	}
	for _, name := range sortedKeys(s.Extra) {
		p("laminar_%s_total %d\n", promName(name), s.Extra[name])
	}
	p("# TYPE laminar_hook_latency_ns histogram\n")
	var cum uint64
	for _, b := range s.HookLatency {
		cum += b.Count
		p("laminar_hook_latency_ns_bucket{le=\"%d\"} %d\n", b.UpperNS, cum)
	}
	p("laminar_hook_latency_ns_count %d\n", cum)
	p("# TYPE laminar_layer_latency_ns histogram\n")
	for _, layer := range sortedKeys2(s.LayerLatency) {
		var lcum uint64
		for _, b := range s.LayerLatency[layer] {
			lcum += b.Count
			p("laminar_layer_latency_ns_bucket{layer=%q,le=\"%d\"} %d\n", layer, b.UpperNS, lcum)
		}
		p("laminar_layer_latency_ns_count{layer=%q} %d\n", layer, lcum)
	}
	p("laminar_flow_cache_hits_total %d\n", s.FlowCacheHits)
	p("laminar_flow_cache_misses_total %d\n", s.FlowCacheMisses)
	p("laminar_flow_cache_evictions_total %d\n", s.FlowCacheEvictions)
	p("laminar_intern_hits_total %d\n", s.InternHits)
	p("laminar_intern_misses_total %d\n", s.InternMisses)
	p("laminar_verdict_cache_hits_total %d\n", s.VerdictCacheHits)
	p("laminar_verdict_cache_misses_total %d\n", s.VerdictCacheMisses)
	return p("laminar_verdict_cache_invalidations_total %d\n", s.VerdictCacheInvalidations)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys2(m map[string][]HistBucket) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps free-form series names ("rt.barrier.read") to the
// Prometheus identifier charset.
func promName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// expvar export: the Default recorder's snapshot is published once under
// "laminar.telemetry" so any process importing this package exposes its
// DIFC metrics on the standard /debug/vars endpoint for free.
func init() {
	expvar.Publish("laminar.telemetry", expvar.Func(func() any {
		return Default.MetricsSnapshot()
	}))
}
