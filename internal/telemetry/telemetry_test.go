package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"laminar/internal/difc"
)

func flowDenial(t *testing.T, op string) error {
	t.Helper()
	src := difc.Labels{S: difc.NewLabel(7, 9)}
	dst := difc.Labels{S: difc.NewLabel(7)}
	err := difc.CheckFlow(op, src, dst)
	if err == nil {
		t.Fatal("expected flow denial")
	}
	return err
}

func TestLevelsGate(t *testing.T) {
	r := NewRecorder()
	if r.Active() || r.Verbose() {
		t.Fatal("new recorder must be off")
	}
	r.SetLevel(LevelDeny)
	if !r.Active() || r.Verbose() {
		t.Fatal("LevelDeny: active but not verbose")
	}
	r.SetLevel(LevelAll)
	if !r.Active() || !r.Verbose() {
		t.Fatal("LevelAll: active and verbose")
	}
	for l, want := range map[Level]string{LevelOff: "off", LevelDeny: "deny", LevelAll: "all"} {
		if l.String() != want {
			t.Fatalf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestEmitDenyClassifiesFlowError(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.EmitDeny(LayerLSM, "hook.FilePermission", "read", 3, 1, flowDenial(t, "read"))

	evs := r.Denials()
	if len(evs) != 1 {
		t.Fatalf("got %d denials, want 1", len(evs))
	}
	e := evs[0]
	if e.Rule != RuleSecrecy {
		t.Fatalf("rule = %v, want secrecy", e.Rule)
	}
	if len(e.Delta) != 1 || e.Delta[0] != 9 {
		t.Fatalf("delta = %v, want [t9]", e.Delta)
	}
	src, ok := e.SrcLabels()
	if !ok || !src.S.Equal(difc.NewLabel(7, 9)) {
		t.Fatalf("source labels not recoverable: %v ok=%v", src, ok)
	}
	if got := r.M.Denials.Load(); got != 1 {
		t.Fatalf("denial counter = %d", got)
	}
	if got := r.MetricsSnapshot().DenialsByRule["secrecy"]; got != 1 {
		t.Fatalf("by-rule counter = %d", got)
	}
}

func TestEmitDenyClassifiesChangeError(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	from := difc.NewLabel(1)
	to := difc.NewLabel(1, 2)
	caps := difc.EmptyCapSet
	err := difc.CheckChange("set_task_label", from, to, caps)
	if err == nil {
		t.Fatal("expected change denial")
	}
	r.EmitDeny(LayerLSM, "hook.SetTaskLabel", "set_task_label", 5, 2, err)
	e := r.Denials()[0]
	if e.Rule != RuleLabelChange || e.Check != "change" {
		t.Fatalf("rule/check = %v/%q", e.Rule, e.Check)
	}
	if len(e.Delta) != 1 || e.Delta[0] != 2 {
		t.Fatalf("delta = %v, want [t2]", e.Delta)
	}
}

func TestEmitDenyUnstructuredError(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.EmitDeny(LayerKernel, "sys.read", "read", 1, 1, errPlain("access denied"))
	e := r.Denials()[0]
	if e.Rule != RuleNone || e.Detail != "access denied" {
		t.Fatalf("unexpected classification: %+v", e)
	}
	if res := Replay(e); res.Replayable {
		t.Fatal("unstructured denial must not be replayable")
	}
}

type errPlain string

func (e errPlain) Error() string { return string(e) }

func TestRingOverwriteKeepsFreshest(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	const n = ringSize*2 + 17
	for i := 0; i < n; i++ {
		r.Emit(Event{Layer: LayerKernel, Kind: KindDeny, TID: 4, Site: "s"})
	}
	evs := r.Snapshot()
	if len(evs) != ringSize {
		t.Fatalf("snapshot holds %d events, want %d", len(evs), ringSize)
	}
	// The freshest ringSize sequence numbers must all be present, in order.
	for i, e := range evs {
		want := uint64(n - ringSize + i + 1)
		if e.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestRingConcurrentEmitRaceClean(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelAll)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tid uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.EmitAllow(LayerKernel, "sys.write", "write", tid, 1)
			}
		}(uint64(g))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.M.Allows.Load(); got != 8*500 {
		t.Fatalf("allow counter = %d, want %d", got, 8*500)
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not in Seq order at %d", i)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.EmitDeny(LayerLSM, "hook.FilePermission", "write", 2, 1, flowDenial(t, "write"))
	err := difc.CheckAcquire("create", difc.NewLabel(3), difc.NewLabel(3, 4), difc.EmptyCapSet)
	r.EmitDeny(LayerLSM, "hook.InodeInitSecurity", "create", 2, 1, err)
	r.EmitFaultTrip(LayerKernel, "sys.open", 2, "error")

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err2 := ReadDump(&buf)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(back) != 3 {
		t.Fatalf("round-tripped %d events, want 3", len(back))
	}
	for i, e := range back {
		orig := r.Snapshot()[i]
		if e.Kind != orig.Kind || e.Rule != orig.Rule || e.Op != orig.Op || e.Site != orig.Site || e.Seq != orig.Seq {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, e, orig)
		}
	}
	// Replays must still run and match on the loaded events.
	for _, e := range back[:2] {
		res := Replay(e)
		if !res.Replayable || !res.Matches {
			t.Fatalf("loaded event not replayable/matching: %+v -> %+v", e, res)
		}
	}
	if res := Replay(back[2]); res.Replayable {
		t.Fatal("fault trip must not be replayable")
	}
}

func TestReplayEveryRule(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)

	// secrecy
	r.EmitDeny(LayerLSM, "s", "read", 1, 1, flowDenial(t, "read"))
	// integrity
	src := difc.Labels{I: difc.NewLabel(1)}
	dst := difc.Labels{I: difc.NewLabel(1, 2)}
	r.EmitDeny(LayerLSM, "s", "write", 1, 1, difc.CheckFlow("write", src, dst))
	// label-change
	r.EmitDeny(LayerLSM, "s", "set_task_label", 1, 1,
		difc.CheckChange("set_task_label", difc.NewLabel(5), difc.EmptyLabel, difc.EmptyCapSet))
	// acquire
	r.EmitDeny(LayerRT, "s", "region-enter", 1, 1,
		difc.CheckAcquire("region-enter", difc.EmptyLabel, difc.NewLabel(6), difc.EmptyCapSet))
	// region drop + caps subset via CheckEnterRegion
	p := difc.Labels{S: difc.NewLabel(8)}
	r.EmitDeny(LayerRT, "s", "region", 1, 1,
		difc.CheckEnterRegion(p, difc.EmptyCapSet, difc.Labels{}, difc.EmptyCapSet))
	rc := difc.EmptyCapSet.Grant(9, difc.CapMinus)
	r.EmitDeny(LayerRT, "s", "region", 1, 1,
		difc.CheckEnterRegion(difc.Labels{}, difc.EmptyCapSet, difc.Labels{}, rc))

	evs := r.Denials()
	if len(evs) != 6 {
		t.Fatalf("recorded %d denials, want 6", len(evs))
	}
	wantRules := []Rule{RuleSecrecy, RuleIntegrity, RuleLabelChange, RuleLabelChange, RuleLabelChange, RuleCapability}
	for i, e := range evs {
		if e.Rule != wantRules[i] {
			t.Fatalf("event %d rule = %v, want %v", i, e.Rule, wantRules[i])
		}
		res := Replay(e)
		if !res.Replayable {
			t.Fatalf("event %d not replayable: %s", i, res.Reason)
		}
		if !res.Matches {
			t.Fatalf("event %d replay diverged: %s", i, res.Reason)
		}
	}
}

func TestExplainNamesRuleAndDelta(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.EmitDeny(LayerLSM, "hook.FilePermission", "read", 1, 1, flowDenial(t, "read"))
	out := Explain(r.Denials()[0])
	for _, want := range []string{"secrecy", "Bell–LaPadula", "t9", "MATCHES"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestSubscribeAndUnsubscribe(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	var got []Event
	cancel := r.Subscribe(func(e Event) { got = append(got, e) })
	r.Emit(Event{Kind: KindDeny, Site: "a"})
	cancel()
	r.Emit(Event{Kind: KindDeny, Site: "b"})
	if len(got) != 1 || got[0].Site != "a" {
		t.Fatalf("subscriber saw %+v", got)
	}
}

func TestCounterStripesFold(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(k)
			}
		}(uint64(g))
	}
	wg.Wait()
	if c.Load() != 16000 {
		t.Fatalf("counter = %d", c.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	bs := h.snapshot()
	if len(bs) != 3 {
		t.Fatalf("buckets = %+v", bs)
	}
	var total uint64
	for _, b := range bs {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("bucket sum = %d", total)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.EmitDeny(LayerLSM, "hook.FilePermission", "read", 1, 1, flowDenial(t, "read"))
	r.M.Hooks.Inc("hook.FilePermission", 1)
	r.M.HookLatency.Observe(time.Microsecond)
	var buf bytes.Buffer
	if err := r.MetricsSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"laminar_denials_total 1",
		`laminar_denials_by_rule_total{rule="secrecy"} 1`,
		`laminar_hook_calls_total{hook="hook.FilePermission"} 1`,
		"laminar_hook_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyVsUnknownLabelInDump(t *testing.T) {
	// An event with an empty interned label must round-trip as empty
	// (replayable); one with id 0 must round-trip as unknown.
	e := Event{
		Kind: KindDeny, Rule: RuleSecrecy, Op: "read", Layer: LayerLSM,
		SrcS: difc.Intern(difc.NewLabel(11)).InternedID(),
		SrcI: difc.Intern(difc.EmptyLabel).InternedID(),
		DstS: difc.Intern(difc.EmptyLabel).InternedID(),
		DstI: difc.Intern(difc.EmptyLabel).InternedID(),
		Delta: []difc.Tag{11},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, []Event{e}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"src_i":[]`) {
		t.Fatalf("empty label must serialise as [], got %s", buf.String())
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := Replay(back[0]); !res.Replayable || !res.Matches {
		t.Fatalf("replay on round-tripped event failed: %+v", res)
	}

	unknown := Event{Kind: KindDeny, Rule: RuleSecrecy, Op: "read"}
	var buf2 bytes.Buffer
	if err := WriteDump(&buf2, []Event{unknown}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `"src_s":null`) {
		t.Fatalf("unknown label must serialise as null, got %s", buf2.String())
	}
	back2, _ := ReadDump(&buf2)
	if res := Replay(back2[0]); res.Replayable {
		t.Fatal("event with unknown operands must not be replayable")
	}
}

func TestResetClearsRing(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.Emit(Event{Kind: KindDeny})
	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Fatal("reset left events behind")
	}
	r.Emit(Event{Kind: KindDeny})
	if evs := r.Snapshot(); len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("post-reset emit: %+v", evs)
	}
}
