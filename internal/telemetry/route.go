package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// explain-route: reconstruct the hop-by-hop path of one traced flow from
// any collection of events — typically N per-node dumps concatenated —
// and re-run every recorded check along it. Events from different nodes
// merge on the v2 node/trace headers; within a hop, repeated identical
// checks (a relay pump re-checks its endpoints every tick) collapse to
// one representative so the report reads as the route, not the schedule.

// HopCheck is one distinct recorded check at a hop, with its replay.
type HopCheck struct {
	Event  Event
	Result ReplayResult
}

// HopReport is everything one node contributed to a traced flow.
type HopReport struct {
	Hop       uint8
	Node      uint64
	NodeEpoch uint64
	Checks    []HopCheck
	Denied    bool // some check at this hop denied
}

// RouteReport is the reconstructed path of one trace id.
type RouteReport struct {
	TraceID     uint64
	Origin      uint64
	OriginEpoch uint64
	Hops        []HopReport
	Denied      bool
	DeniedHop   uint8 // first hop that denied (valid when Denied)
}

// dedupKey collapses repeated identical checks at one hop.
type dedupKey struct {
	node, epoch            uint64
	hop                    uint8
	site, op               string
	kind                   Kind
	rule                   Rule
	srcS, srcI, dstS, dstI uint64
}

// ExplainRoute filters events to one trace id and reconstructs its
// route. Only verdict events participate: denials, and allows that
// carry label operands (the traced rich allows lsm.checkAccess emits);
// operand-free hook allows would add nothing replayable.
func ExplainRoute(traceID uint64, events []Event) (RouteReport, error) {
	rep := RouteReport{TraceID: traceID}
	seen := map[dedupKey]bool{}
	groups := map[[3]uint64]*HopReport{}
	for _, e := range events {
		if e.TraceID != traceID {
			continue
		}
		if e.Kind != KindDeny && !(e.Kind == KindAllow && e.SrcS != 0 && e.DstS != 0) {
			continue
		}
		rep.Origin, rep.OriginEpoch = e.TraceOrigin, e.TraceEpoch
		k := dedupKey{e.Node, e.NodeEpoch, e.TraceHop, e.Site, e.Op, e.Kind, e.Rule, e.SrcS, e.SrcI, e.DstS, e.DstI}
		if seen[k] {
			continue
		}
		seen[k] = true
		gk := [3]uint64{uint64(e.TraceHop), e.Node, e.NodeEpoch}
		g, ok := groups[gk]
		if !ok {
			g = &HopReport{Hop: e.TraceHop, Node: e.Node, NodeEpoch: e.NodeEpoch}
			groups[gk] = g
		}
		g.Checks = append(g.Checks, HopCheck{Event: e, Result: Replay(e)})
		if e.Kind == KindDeny {
			g.Denied = true
		}
	}
	if len(groups) == 0 {
		return rep, fmt.Errorf("telemetry: no verdict events for trace %#x", traceID)
	}
	for _, g := range groups {
		sort.Slice(g.Checks, func(i, j int) bool {
			a, b := g.Checks[i].Event, g.Checks[j].Event
			if a.Seq != b.Seq {
				return a.Seq < b.Seq
			}
			return a.Op < b.Op
		})
		rep.Hops = append(rep.Hops, *g)
	}
	sort.Slice(rep.Hops, func(i, j int) bool {
		a, b := rep.Hops[i], rep.Hops[j]
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.NodeEpoch < b.NodeEpoch
	})
	for _, h := range rep.Hops {
		if h.Denied && !rep.Denied {
			rep.Denied = true
			rep.DeniedHop = h.Hop
		}
	}
	return rep, nil
}

// TracedDenials lists the distinct trace ids that have at least one
// denial in the event set, most recent denial first.
func TracedDenials(events []Event) []uint64 {
	latest := map[uint64]uint64{} // trace id -> highest deny seq
	for _, e := range events {
		if e.Kind == KindDeny && e.TraceID != 0 && e.Seq >= latest[e.TraceID] {
			latest[e.TraceID] = e.Seq
		}
	}
	ids := make([]uint64, 0, len(latest))
	for id := range latest {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return latest[ids[i]] > latest[ids[j]] })
	return ids
}

// FormatRoute renders the route report: one block per hop with the label
// delta each check saw and whether the re-run check MATCHES the record.
func FormatRoute(rep RouteReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %#x: origin node %d (epoch %d), %d hop(s)\n",
		rep.TraceID, rep.Origin, rep.OriginEpoch, len(rep.Hops))
	for _, h := range rep.Hops {
		verdict := "allowed"
		if h.Denied {
			verdict = "DENIED"
		}
		fmt.Fprintf(&b, "hop %d @ node %d (epoch %d): %s\n", h.Hop, h.Node, h.NodeEpoch, verdict)
		for _, c := range h.Checks {
			e := c.Event
			src, _ := e.SrcLabels()
			dst, _ := e.DstLabels()
			switch e.Kind {
			case KindDeny:
				fmt.Fprintf(&b, "  %s %s deny rule=%s %v -> %v delta=%v\n",
					e.Site, e.Op, e.Rule, src, dst, e.Delta)
			default:
				fmt.Fprintf(&b, "  %s %s allow %v -> %v\n", e.Site, e.Op, src, dst)
			}
			switch {
			case !c.Result.Replayable:
				fmt.Fprintf(&b, "    replay: not replayable (%s)\n", c.Result.Reason)
			case c.Result.Matches:
				fmt.Fprintf(&b, "    replay: MATCHES the record\n")
			default:
				fmt.Fprintf(&b, "    replay: DIVERGED — %s\n", c.Result.Reason)
			}
		}
	}
	if rep.Denied {
		fmt.Fprintf(&b, "verdict: flow denied at hop %d\n", rep.DeniedHop)
	} else {
		fmt.Fprintf(&b, "verdict: flow allowed end to end\n")
	}
	return b.String()
}
