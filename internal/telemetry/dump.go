package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"laminar/internal/difc"
)

// Flight-recorder dumps. In-memory events carry labels as intern ids,
// which are meaningless outside the emitting process; a dump resolves
// every id to its tag set so laminar-trace can filter, pretty-print and
// replay the stream from another process entirely. The format is JSONL —
// one DumpEvent per line — because dumps happen in crash paths where an
// incremental, append-only encoding beats one big document.

// DumpEvent is the wire form of an Event. Label fields distinguish
// "empty" ([]) from "unknown / never interned" (null): replay requires
// known operands and refuses events with null where a label is needed.
type DumpEvent struct {
	Seq   uint64 `json:"seq"`
	TID   uint64 `json:"tid"`
	Proc  uint64 `json:"proc,omitempty"`
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Rule  string `json:"rule,omitempty"`
	Op    string `json:"op,omitempty"`
	Check string `json:"check,omitempty"`
	Site  string `json:"site,omitempty"`

	SrcS []uint64 `json:"src_s"`
	SrcI []uint64 `json:"src_i"`
	DstS []uint64 `json:"dst_s"`
	DstI []uint64 `json:"dst_i"`
	CapP []uint64 `json:"cap_p"`
	CapM []uint64 `json:"cap_m"`

	Delta []uint64 `json:"delta,omitempty"`
	Tag   uint64   `json:"tag,omitempty"`
	Cap   string   `json:"cap,omitempty"`

	Detail string `json:"detail,omitempty"`
}

// resolveID renders an intern id as a tag slice: nil when the id is
// unknown, a non-nil (possibly empty) slice when it resolves.
func resolveID(id uint64) []uint64 {
	l, ok := difc.LabelByID(id)
	if !ok {
		return nil
	}
	tags := l.Tags()
	out := make([]uint64, 0, len(tags))
	for _, t := range tags {
		out = append(out, uint64(t))
	}
	return out
}

func tagsToWire(tags []difc.Tag) []uint64 {
	if len(tags) == 0 {
		return nil
	}
	out := make([]uint64, len(tags))
	for i, t := range tags {
		out[i] = uint64(t)
	}
	return out
}

func wireToLabel(ts []uint64) (difc.Label, bool) {
	if ts == nil {
		return difc.Label{}, false
	}
	tags := make([]difc.Tag, len(ts))
	for i, t := range ts {
		tags[i] = difc.Tag(t)
	}
	return difc.NewLabel(tags...), true
}

// ToDump resolves the event's intern ids into a self-contained wire
// record.
func (e Event) ToDump() DumpEvent {
	d := DumpEvent{
		Seq:    e.Seq,
		TID:    e.TID,
		Proc:   e.Proc,
		Layer:  e.Layer.String(),
		Kind:   e.Kind.String(),
		Op:     e.Op,
		Check:  e.Check,
		Site:   e.Site,
		SrcS:   resolveID(e.SrcS),
		SrcI:   resolveID(e.SrcI),
		DstS:   resolveID(e.DstS),
		DstI:   resolveID(e.DstI),
		CapP:   resolveID(e.CapP),
		CapM:   resolveID(e.CapM),
		Delta:  tagsToWire(e.Delta),
		Tag:    uint64(e.Tag),
		Detail: e.Detail,
	}
	if e.Rule != RuleNone {
		d.Rule = e.Rule.String()
	}
	if e.Cap != 0 {
		d.Cap = e.Cap.String()
	}
	return d
}

// ToEvent rebuilds an in-memory event from its wire form, re-interning
// the label operands in the reading process so SrcLabels/DstLabels/Caps
// and Replay work on loaded dumps exactly as on live events.
func (d DumpEvent) ToEvent() Event {
	e := Event{
		Seq:    d.Seq,
		TID:    d.TID,
		Proc:   d.Proc,
		Layer:  layerFromString(d.Layer),
		Kind:   kindFromString(d.Kind),
		Rule:   ruleFromString(d.Rule),
		Op:     d.Op,
		Check:  d.Check,
		Site:   d.Site,
		Tag:    difc.Tag(d.Tag),
		Detail: d.Detail,
	}
	intern := func(ts []uint64) uint64 {
		l, ok := wireToLabel(ts)
		if !ok {
			return 0
		}
		return difc.Intern(l).InternedID()
	}
	e.SrcS, e.SrcI = intern(d.SrcS), intern(d.SrcI)
	e.DstS, e.DstI = intern(d.DstS), intern(d.DstI)
	e.CapP, e.CapM = intern(d.CapP), intern(d.CapM)
	if len(d.Delta) > 0 {
		e.Delta = make([]difc.Tag, len(d.Delta))
		for i, t := range d.Delta {
			e.Delta[i] = difc.Tag(t)
		}
	}
	switch d.Cap {
	case "+":
		e.Cap = difc.CapPlus
	case "-":
		e.Cap = difc.CapMinus
	case "+-":
		e.Cap = difc.CapBoth
	}
	return e
}

// WriteDump writes events as JSONL.
func WriteDump(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e.ToDump()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump writes the recorder's current flight-recorder contents as JSONL.
func (r *Recorder) Dump(w io.Writer) error {
	return WriteDump(w, r.Snapshot())
}

// ReadDump parses a JSONL dump back into events. Blank lines are
// skipped; a malformed line fails with its line number.
func ReadDump(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var d DumpEvent
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, fmt.Errorf("telemetry: dump line %d: %w", line, err)
		}
		out = append(out, d.ToEvent())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
