package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"laminar/internal/difc"
)

// Flight-recorder dumps. In-memory events carry labels as intern ids,
// which are meaningless outside the emitting process; a dump resolves
// every id to its tag set so laminar-trace can filter, pretty-print and
// replay the stream from another process entirely. The format is JSONL —
// one DumpEvent per line — because dumps happen in crash paths where an
// incremental, append-only encoding beats one big document.

// DumpVersion is the current dump record version. Version 1 records
// (PR 4) carry no V field and no node/trace headers; readers treat a
// missing V as 1 and leave the new fields zero, so old dumps stay
// readable.
const DumpVersion = 2

// DumpEvent is the wire form of an Event. Label fields distinguish
// "empty" ([]) from "unknown / never interned" (null): replay requires
// known operands and refuses events with null where a label is needed.
type DumpEvent struct {
	V     int    `json:"v,omitempty"`
	Seq   uint64 `json:"seq"`
	TID   uint64 `json:"tid"`
	Proc  uint64 `json:"proc,omitempty"`
	Ino   uint64 `json:"ino,omitempty"`
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Rule  string `json:"rule,omitempty"`
	Op    string `json:"op,omitempty"`
	Check string `json:"check,omitempty"`
	Site  string `json:"site,omitempty"`

	// Node identity and trace context (v2): multi-node dumps merge on
	// these instead of filename conventions.
	Node        uint64 `json:"node,omitempty"`
	NodeEpoch   uint64 `json:"node_epoch,omitempty"`
	TraceID     uint64 `json:"trace_id,omitempty"`
	TraceHop    uint8  `json:"trace_hop,omitempty"`
	TraceOrigin uint64 `json:"trace_origin,omitempty"`
	TraceEpoch  uint64 `json:"trace_epoch,omitempty"`

	SrcS []uint64 `json:"src_s"`
	SrcI []uint64 `json:"src_i"`
	DstS []uint64 `json:"dst_s"`
	DstI []uint64 `json:"dst_i"`
	CapP []uint64 `json:"cap_p"`
	CapM []uint64 `json:"cap_m"`

	Delta []uint64 `json:"delta,omitempty"`
	Tag   uint64   `json:"tag,omitempty"`
	Cap   string   `json:"cap,omitempty"`

	Detail string `json:"detail,omitempty"`
}

// resolveID renders an intern id as a tag slice: nil when the id is
// unknown, a non-nil (possibly empty) slice when it resolves.
func resolveID(id uint64) []uint64 {
	l, ok := difc.LabelByID(id)
	if !ok {
		return nil
	}
	tags := l.Tags()
	out := make([]uint64, 0, len(tags))
	for _, t := range tags {
		out = append(out, uint64(t))
	}
	return out
}

func tagsToWire(tags []difc.Tag) []uint64 {
	if len(tags) == 0 {
		return nil
	}
	out := make([]uint64, len(tags))
	for i, t := range tags {
		out[i] = uint64(t)
	}
	return out
}

func wireToLabel(ts []uint64) (difc.Label, bool) {
	if ts == nil {
		return difc.Label{}, false
	}
	tags := make([]difc.Tag, len(ts))
	for i, t := range ts {
		tags[i] = difc.Tag(t)
	}
	return difc.NewLabel(tags...), true
}

// ToDump resolves the event's intern ids into a self-contained wire
// record.
func (e Event) ToDump() DumpEvent {
	d := DumpEvent{
		V:     DumpVersion,
		Seq:   e.Seq,
		TID:   e.TID,
		Proc:  e.Proc,
		Ino:   e.Ino,
		Layer: e.Layer.String(),
		Kind:  e.Kind.String(),

		Node:        e.Node,
		NodeEpoch:   e.NodeEpoch,
		TraceID:     e.TraceID,
		TraceHop:    e.TraceHop,
		TraceOrigin: e.TraceOrigin,
		TraceEpoch:  e.TraceEpoch,

		Op:     e.Op,
		Check:  e.Check,
		Site:   e.Site,
		SrcS:   resolveID(e.SrcS),
		SrcI:   resolveID(e.SrcI),
		DstS:   resolveID(e.DstS),
		DstI:   resolveID(e.DstI),
		CapP:   resolveID(e.CapP),
		CapM:   resolveID(e.CapM),
		Delta:  tagsToWire(e.Delta),
		Tag:    uint64(e.Tag),
		Detail: e.Detail,
	}
	if e.Rule != RuleNone {
		d.Rule = e.Rule.String()
	}
	if e.Cap != 0 {
		d.Cap = e.Cap.String()
	}
	return d
}

// ToEvent rebuilds an in-memory event from its wire form, re-interning
// the label operands in the reading process so SrcLabels/DstLabels/Caps
// and Replay work on loaded dumps exactly as on live events.
func (d DumpEvent) ToEvent() Event {
	e := Event{
		Seq:   d.Seq,
		TID:   d.TID,
		Proc:  d.Proc,
		Ino:   d.Ino,
		Layer: layerFromString(d.Layer),
		Kind:  kindFromString(d.Kind),

		Node:        d.Node,
		NodeEpoch:   d.NodeEpoch,
		TraceID:     d.TraceID,
		TraceHop:    d.TraceHop,
		TraceOrigin: d.TraceOrigin,
		TraceEpoch:  d.TraceEpoch,

		Rule:   ruleFromString(d.Rule),
		Op:     d.Op,
		Check:  d.Check,
		Site:   d.Site,
		Tag:    difc.Tag(d.Tag),
		Detail: d.Detail,
	}
	intern := func(ts []uint64) uint64 {
		l, ok := wireToLabel(ts)
		if !ok {
			return 0
		}
		return difc.Intern(l).InternedID()
	}
	e.SrcS, e.SrcI = intern(d.SrcS), intern(d.SrcI)
	e.DstS, e.DstI = intern(d.DstS), intern(d.DstI)
	e.CapP, e.CapM = intern(d.CapP), intern(d.CapM)
	if len(d.Delta) > 0 {
		e.Delta = make([]difc.Tag, len(d.Delta))
		for i, t := range d.Delta {
			e.Delta[i] = difc.Tag(t)
		}
	}
	switch d.Cap {
	case "+":
		e.Cap = difc.CapPlus
	case "-":
		e.Cap = difc.CapMinus
	case "+-":
		e.Cap = difc.CapBoth
	}
	return e
}

// DumpMeta is the optional first line of a v2 dump: the emitting node's
// identity plus a metrics snapshot taken at dump time, so laminar-trace
// stats can render per-layer latency without the live process. It is
// wrapped in a {"dump_meta": ...} envelope on the wire, which no event
// line carries, so v1 readers that iterate DumpEvent lines and v2
// readers of v1 dumps both keep working.
type DumpMeta struct {
	V         int              `json:"v"`
	Node      uint64           `json:"node,omitempty"`
	NodeEpoch uint64           `json:"node_epoch,omitempty"`
	Snapshot  *MetricsSnapshot `json:"snapshot,omitempty"`
}

type metaEnvelope struct {
	DumpMeta *DumpMeta `json:"dump_meta"`
}

// WriteDump writes events as JSONL.
func WriteDump(w io.Writer, events []Event) error {
	return WriteDumpMeta(w, nil, events)
}

// WriteDumpMeta writes an optional meta header line followed by the
// events as JSONL.
func WriteDumpMeta(w io.Writer, meta *DumpMeta, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if meta != nil {
		m := *meta
		if m.V == 0 {
			m.V = DumpVersion
		}
		if err := enc.Encode(metaEnvelope{DumpMeta: &m}); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := enc.Encode(e.ToDump()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump writes the recorder's current flight-recorder contents as JSONL.
func (r *Recorder) Dump(w io.Writer) error {
	return WriteDump(w, r.Snapshot())
}

// DumpWithMeta writes the flight-recorder contents preceded by a meta
// line carrying the node identity and a point-in-time metrics snapshot.
func (r *Recorder) DumpWithMeta(w io.Writer) error {
	node, epoch := r.NodeIdentity()
	snap := r.MetricsSnapshot()
	meta := &DumpMeta{V: DumpVersion, Node: node, NodeEpoch: epoch, Snapshot: &snap}
	return WriteDumpMeta(w, meta, r.Snapshot())
}

// ReadDump parses a JSONL dump back into events. Blank lines and the
// meta header are skipped; a malformed line fails with its line number.
func ReadDump(rd io.Reader) ([]Event, error) {
	_, events, err := ReadDumpFull(rd)
	return events, err
}

// ReadDumpFull parses a JSONL dump into its meta header (nil for v1
// dumps or dumps written without one) and its events.
func ReadDumpFull(rd io.Reader) (*DumpMeta, []Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var meta *DumpMeta
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			var env metaEnvelope
			if err := json.Unmarshal(raw, &env); err == nil && env.DumpMeta != nil {
				meta = env.DumpMeta
				continue
			}
		}
		var d DumpEvent
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, nil, fmt.Errorf("telemetry: dump line %d: %w", line, err)
		}
		out = append(out, d.ToEvent())
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return meta, out, nil
}
