package telemetry

import (
	"errors"

	"laminar/internal/difc"
)

// DenyEvent builds the provenance record for a denial error. The difc
// package's structured errors carry everything replay needs:
//
//   - *difc.FlowError (secrecy / integrity): the exact CheckFlow operands
//     and the offending tag delta. Src/Dst hold both label pairs.
//   - *difc.ChangeError (label-change family): the from/to labels, the
//     capability set the check ran against, the check shape ("change",
//     "acquire", "drop", "subset") and the capability-less tags.
//     Src(S)/Dst(S) hold the from/to labels, CapP/CapM the caps.
//
// Anything else — policy refusals without label operands, injected
// faults — records as an unclassified denial carrying only the error
// text; the kernel wrapper upgrades fault-injected denials to RuleFault
// itself because only it knows the injector fired.
//
// Labels are interned here, on the already-cold denial path, so the
// event stores ids, never tag-slice copies; the Delta is the one
// allocation that survives per event.
func DenyEvent(layer Layer, site, op string, tid, proc uint64, err error) Event {
	e := Event{Layer: layer, Kind: KindDeny, Op: op, Site: site, TID: tid, Proc: proc}
	if err == nil {
		return e
	}
	e.Detail = err.Error()

	var fe *difc.FlowError
	var ce *difc.ChangeError
	switch {
	case errors.As(err, &fe):
		if fe.Rule == "integrity" {
			e.Rule = RuleIntegrity
		} else {
			e.Rule = RuleSecrecy
		}
		e.Op = fe.Op
		src, dst := difc.InternLabels(fe.Src), difc.InternLabels(fe.Dst)
		e.SrcS, e.SrcI = src.S.InternedID(), src.I.InternedID()
		e.DstS, e.DstI = dst.S.InternedID(), dst.I.InternedID()
		e.Delta = fe.Delta().Tags()
	case errors.As(err, &ce):
		if ce.Check == "subset" {
			e.Rule = RuleCapability
		} else {
			e.Rule = RuleLabelChange
		}
		e.Op = ce.Op
		e.Check = ce.Check
		e.SrcS = difc.Intern(ce.From).InternedID()
		e.DstS = difc.Intern(ce.To).InternedID()
		e.CapP = difc.Intern(ce.Caps.Plus()).InternedID()
		e.CapM = difc.Intern(ce.Caps.Minus()).InternedID()
		e.Delta = ce.Missing.Tags()
	}
	return e
}
