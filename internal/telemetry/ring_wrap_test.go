package telemetry

import (
	"bytes"
	"testing"
)

// TestSnapshotSeqOrderUnderWraparound laps one TID shard several times
// over while another shard barely moves, then requires the merged
// snapshot to be in strict Seq order with no duplicates — the flight
// recorder's total order must survive per-shard wraparound, or a dumped
// JSONL is unreadable as a timeline.
func TestSnapshotSeqOrderUnderWraparound(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)

	const laps = 3
	slowEvery := ringSize / 2
	slow := 0
	for i := 0; i < laps*ringSize; i++ {
		r.Emit(Event{TID: 0, Layer: LayerKernel, Kind: KindDeny, Site: "wrap.fast", Op: "write"})
		if i%slowEvery == 0 {
			// A different shard (TID 1 maps to ring 1) that the fast
			// shard laps repeatedly.
			r.Emit(Event{TID: 1, Layer: LayerLSM, Kind: KindDeny, Site: "wrap.slow", Op: "read"})
			slow++
		}
	}

	evs := r.Snapshot()
	wantLen := ringSize + slow // fast shard retains its freshest ringSize; slow shard everything
	if len(evs) != wantLen {
		t.Fatalf("snapshot holds %d events, want %d", len(evs), wantLen)
	}
	seen := make(map[uint64]bool, len(evs))
	for i, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d at index %d", e.Seq, i)
		}
		seen[e.Seq] = true
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Fatalf("Seq order broken at index %d: %d after %d", i, e.Seq, evs[i-1].Seq)
		}
	}
	// The lapped shard keeps exactly its newest ringSize events: the
	// oldest surviving fast event must be from the final lap's window.
	var oldestFast uint64
	for _, e := range evs {
		if e.Site == "wrap.fast" {
			oldestFast = e.Seq
			break
		}
	}
	lastSeq := evs[len(evs)-1].Seq
	if lastSeq-oldestFast >= uint64(ringSize+slow) {
		t.Fatalf("fast shard retained an event %d sequence numbers old (window %d)", lastSeq-oldestFast, ringSize)
	}

	// Dump/readback must preserve count and order byte for byte.
	var buf bytes.Buffer
	if err := WriteDump(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("dump round trip: %d events in, %d out", len(evs), len(back))
	}
	for i := range back {
		if back[i].Seq != evs[i].Seq {
			t.Fatalf("dump round trip reordered index %d: Seq %d vs %d", i, back[i].Seq, evs[i].Seq)
		}
	}
}
