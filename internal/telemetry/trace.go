package telemetry

import "sync"

// Cluster-wide flow tracing (DESIGN.md §16). A TraceCtx follows one
// labeled channel across kernels: the origin node mints it when the
// channel is opened, the transport carries it in a versioned trailing
// extension on Open/OpenRouted payloads, and every relay hop re-attaches
// it to the endpoint it adopts, so the verdict events of all hops share
// one trace id and explain-route can reconstruct the path from N dumps.
//
// Covert-channel invariant: trace bytes must never widen what a receiver
// can learn. Every field is derivable from data the receiver may already
// see — the origin's node id and incarnation epoch travel in the
// handshake and control plane, the hop counter is the route length the
// relay itself constructs, and the trace id is (node id << 32 | per-node
// counter), exactly as observable as the channel ids the transport
// already assigns. Nothing label- or payload-dependent is ever encoded,
// and enforcement never reads the trace registry: binding and stamping
// happen only on the telemetry side of the Active() gate, which the
// traced-vs-untraced differential oracle (tracediff) pins down as
// byte-identical verdict streams.

// TraceCtx is the compact causal context carried across hops.
type TraceCtx struct {
	TraceID     uint64 // origin node id << 32 | per-node open counter
	Hop         uint8  // hops traversed before this node (origin = 0)
	Origin      uint64 // minting node's id
	OriginEpoch uint64 // minting node's incarnation epoch
}

// NextHop is the context a node transmits onward: one hop further from
// the origin.
func (c TraceCtx) NextHop() TraceCtx {
	c.Hop++
	return c
}

// traceReg maps endpoint inode numbers to the trace context bound to
// them. It lives beside the recorder (not inside the kernel) so
// enforcement code never touches it; Emit consults it only for events
// that already carry an inode number, behind a lock-free emptiness
// check.
type traceReg struct {
	mu    sync.Mutex
	byIno map[uint64]TraceCtx
}

// SetNodeIdentity records which node (and incarnation epoch) this
// recorder observes; Emit stamps both onto every event so multi-node
// dumps merge without filename conventions.
func (r *Recorder) SetNodeIdentity(node, epoch uint64) {
	r.nodeID.Store(node)
	r.nodeEpoch.Store(epoch)
}

// NodeIdentity reports the recorder's node id and incarnation epoch.
func (r *Recorder) NodeIdentity() (node, epoch uint64) {
	return r.nodeID.Load(), r.nodeEpoch.Load()
}

// BindTrace attaches a trace context to an endpoint inode: every
// subsequent event carrying that inode number is stamped with the
// context. Binding is telemetry-only state — it never influences a
// verdict.
func (r *Recorder) BindTrace(ino uint64, ctx TraceCtx) {
	if ino == 0 || ctx.TraceID == 0 {
		return
	}
	r.traces.mu.Lock()
	if r.traces.byIno == nil {
		r.traces.byIno = make(map[uint64]TraceCtx)
	}
	if _, ok := r.traces.byIno[ino]; !ok {
		r.traceBound.Add(1)
	}
	r.traces.byIno[ino] = ctx
	r.traces.mu.Unlock()
}

// UnbindTrace removes an inode's trace binding (endpoint teardown).
func (r *Recorder) UnbindTrace(ino uint64) {
	r.traces.mu.Lock()
	if _, ok := r.traces.byIno[ino]; ok {
		delete(r.traces.byIno, ino)
		r.traceBound.Add(-1)
	}
	r.traces.mu.Unlock()
}

// TraceFor looks up the context bound to an inode.
func (r *Recorder) TraceFor(ino uint64) (TraceCtx, bool) {
	if r.traceBound.Load() == 0 {
		return TraceCtx{}, false
	}
	r.traces.mu.Lock()
	ctx, ok := r.traces.byIno[ino]
	r.traces.mu.Unlock()
	return ctx, ok
}

// TraceBound reports whether an inode has a trace binding. One atomic
// load when no traces exist anywhere — the common case on hot paths.
func (r *Recorder) TraceBound(ino uint64) bool {
	if r.traceBound.Load() == 0 {
		return false
	}
	_, ok := r.TraceFor(ino)
	return ok
}

// stampTrace fills an event's node identity and trace fields from the
// registry. Called from Emit, i.e. only past the Active/Verbose gate.
func (r *Recorder) stampTrace(e *Event) {
	if e.Node == 0 {
		e.Node = r.nodeID.Load()
		e.NodeEpoch = r.nodeEpoch.Load()
	}
	if e.TraceID != 0 || e.Ino == 0 || r.traceBound.Load() == 0 {
		return
	}
	if ctx, ok := r.TraceFor(e.Ino); ok {
		e.TraceID = ctx.TraceID
		e.TraceHop = ctx.Hop
		e.TraceOrigin = ctx.Origin
		e.TraceEpoch = ctx.OriginEpoch
	}
}
