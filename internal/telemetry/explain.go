package telemetry

import (
	"fmt"
	"strings"

	"laminar/internal/difc"
)

// Replay and explain: a denial's provenance record carries the exact
// operands its check saw, so the check can be re-run after the fact —
// from the live ring or from a dump loaded in a different process — and
// the recomputed verdict compared against what was recorded. This is the
// "evidence trail" property: a denial is not a log line but a
// reproducible theorem about two labels and a capability set.

// ReplayResult is the outcome of re-running a recorded decision.
type ReplayResult struct {
	Replayable bool       // the event carried enough operands to re-check
	Denied     bool       // the re-run check's verdict
	Matches    bool       // re-run verdict and delta agree with the record
	Rule       Rule       // rule the re-run check fired (when denied)
	Delta      []difc.Tag // delta the re-run check produced (when denied)
	Reason     string     // why not replayable, or how the verdict diverged
}

// Replay re-runs the DIFC check a recorded event captured.
//
//   - secrecy/integrity denials and allows re-run difc.CheckFlow on the
//     recorded source and destination label pairs;
//   - label-change denials re-run the recorded check shape (change,
//     acquire, drop, subset) on the from/to labels and capability set;
//   - fault trips and policy denials without label operands are
//     recorded-only: Replayable is false.
func Replay(e Event) ReplayResult {
	switch e.Rule {
	case RuleSecrecy, RuleIntegrity:
		return replayFlow(e)
	case RuleLabelChange, RuleCapability:
		return replayChange(e)
	case RuleFault:
		return ReplayResult{Reason: "fault-injected denial: no DIFC check to replay"}
	default:
		if e.Kind == KindAllow && e.SrcS != 0 && e.DstS != 0 {
			return replayFlow(e)
		}
		return ReplayResult{Reason: "no label operands recorded for this event"}
	}
}

func replayFlow(e Event) ReplayResult {
	src, okS := e.SrcLabels()
	dst, okD := e.DstLabels()
	if !okS || !okD {
		return ReplayResult{Reason: "label operands not resolvable (uninterned id)"}
	}
	res := ReplayResult{Replayable: true}
	err := difc.CheckFlow(e.Op, src, dst)
	if fe, ok := err.(*difc.FlowError); ok {
		res.Denied = true
		if fe.Rule == "integrity" {
			res.Rule = RuleIntegrity
		} else {
			res.Rule = RuleSecrecy
		}
		res.Delta = fe.Delta().Tags()
	}
	recordedDeny := e.Kind == KindDeny
	res.Matches = res.Denied == recordedDeny &&
		(!recordedDeny || (res.Rule == e.Rule && difc.NewLabel(res.Delta...).Equal(difc.NewLabel(e.Delta...))))
	if !res.Matches {
		res.Reason = divergence(recordedDeny, e, res)
	}
	return res
}

func replayChange(e Event) ReplayResult {
	from, okF := difc.LabelByID(e.SrcS)
	to, okT := difc.LabelByID(e.DstS)
	capP, okP := difc.LabelByID(e.CapP)
	capM, okM := difc.LabelByID(e.CapM)
	if !okF || !okT || !okP || !okM {
		return ReplayResult{Reason: "label-change operands not resolvable (uninterned id)"}
	}
	caps := difc.NewCapSet(capP, capM)
	res := ReplayResult{Replayable: true}

	var err error
	switch e.Check {
	case "change":
		err = difc.CheckChange(e.Op, from, to, caps)
	case "acquire":
		err = difc.CheckAcquire(e.Op, from, to, caps)
	case "drop":
		if missing := from.Minus(to).Minus(caps.Minus()); !missing.IsEmpty() {
			err = &difc.ChangeError{Op: e.Op, Check: "drop", From: from, To: to, Caps: caps, Missing: missing}
		}
	case "subset":
		// From/To recorded the required plus/minus capability tags.
		req := difc.NewCapSet(from, to)
		if !req.SubsetOf(caps) {
			missing := from.Minus(caps.Plus()).Union(to.Minus(caps.Minus()))
			err = &difc.ChangeError{Op: e.Op, Check: "subset", From: from, To: to, Caps: caps, Missing: missing}
		}
	default:
		return ReplayResult{Reason: fmt.Sprintf("unknown check shape %q", e.Check)}
	}
	if ce, ok := err.(*difc.ChangeError); ok {
		res.Denied = true
		if ce.Check == "subset" {
			res.Rule = RuleCapability
		} else {
			res.Rule = RuleLabelChange
		}
		res.Delta = ce.Missing.Tags()
	}
	recordedDeny := e.Kind == KindDeny
	res.Matches = res.Denied == recordedDeny &&
		(!recordedDeny || difc.NewLabel(res.Delta...).Equal(difc.NewLabel(e.Delta...)))
	if !res.Matches {
		res.Reason = divergence(recordedDeny, e, res)
	}
	return res
}

func divergence(recordedDeny bool, e Event, res ReplayResult) string {
	verdict := func(d bool) string {
		if d {
			return "deny"
		}
		return "allow"
	}
	if res.Denied != recordedDeny {
		return fmt.Sprintf("recorded %s but replay says %s", verdict(recordedDeny), verdict(res.Denied))
	}
	return fmt.Sprintf("recorded delta %v but replay produced %v (rule %s vs %s)",
		e.Delta, res.Delta, e.Rule, res.Rule)
}

// Explain renders a human-readable account of a recorded decision: the
// site and operation, the rule and operands, the offending tag delta,
// and the verdict of re-running the identical check now.
func Explain(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "event #%d: %s at %s (layer %s, tid %d)\n", e.Seq, e.Kind, e.Site, e.Layer, e.TID)
	if e.Op != "" {
		fmt.Fprintf(&b, "  operation: %s\n", e.Op)
	}
	switch e.Rule {
	case RuleSecrecy, RuleIntegrity:
		src, _ := e.SrcLabels()
		dst, _ := e.DstLabels()
		fmt.Fprintf(&b, "  rule: %s\n  source: %v\n  destination: %v\n", e.Rule, src, dst)
		if e.Rule == RuleSecrecy {
			fmt.Fprintf(&b, "  check: Bell–LaPadula requires S(src) ⊆ S(dst); source carries %v beyond the destination\n", e.Delta)
		} else {
			fmt.Fprintf(&b, "  check: Biba requires I(dst) ⊆ I(src); destination demands %v beyond the source\n", e.Delta)
		}
	case RuleLabelChange, RuleCapability:
		from, _ := difc.LabelByID(e.SrcS)
		to, _ := difc.LabelByID(e.DstS)
		capP, _ := difc.LabelByID(e.CapP)
		capM, _ := difc.LabelByID(e.CapM)
		caps := difc.NewCapSet(capP, capM)
		if e.Check == "subset" {
			fmt.Fprintf(&b, "  rule: %s (%s)\n  required: %v\n  held: %v\n", e.Rule, e.Check, difc.NewCapSet(from, to), caps)
		} else {
			fmt.Fprintf(&b, "  rule: %s (%s)\n  from: %v\n  to: %v\n  capabilities: %v\n", e.Rule, e.Check, from, to, caps)
		}
		fmt.Fprintf(&b, "  check: label-change rule; no capability held for %v\n", e.Delta)
	case RuleFault:
		fmt.Fprintf(&b, "  rule: fault (fail-closed denial from injected fault)\n  detail: %s\n", e.Detail)
	default:
		if e.Detail != "" {
			fmt.Fprintf(&b, "  detail: %s\n", e.Detail)
		}
	}
	res := Replay(e)
	switch {
	case !res.Replayable:
		fmt.Fprintf(&b, "  replay: not replayable (%s)\n", res.Reason)
	case res.Matches:
		verdict := "allow"
		if res.Denied {
			verdict = "deny"
		}
		fmt.Fprintf(&b, "  replay: re-ran the check — verdict %s, delta %v: MATCHES the record\n", verdict, res.Delta)
	default:
		fmt.Fprintf(&b, "  replay: DIVERGED — %s\n", res.Reason)
	}
	return b.String()
}
