package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Cluster metrics aggregation (DESIGN.md §16). Every node exports its
// MetricsSnapshot over the cluster control plane; any node can merge the
// set it has heard into one cluster-wide view. The merge is a simple
// commutative fold — counters sum, histograms add bucket-wise — so the
// result is independent of arrival order, and staleness is explicit:
// a snapshot from a suspect/dead peer or from a superseded incarnation
// epoch is still merged (its counts happened) but marked, so SLO
// dashboards know which slice of the data stopped moving.

// NodeSnapshot is one node's contribution to a cluster merge.
type NodeSnapshot struct {
	Node     uint64          `json:"node"`
	Epoch    uint64          `json:"epoch"`
	Tick     uint64          `json:"tick,omitempty"`      // receiver's tick when heard
	Stale    bool            `json:"stale,omitempty"`     // suspect/dead peer or old epoch
	StaleWhy string          `json:"stale_why,omitempty"` // "suspect", "dead", "epoch 3 < 4"
	Snapshot MetricsSnapshot `json:"snapshot"`
}

// ClusterSnapshot is the merged cluster-wide view plus the per-node
// slices it was folded from.
type ClusterSnapshot struct {
	Nodes      []NodeSnapshot  `json:"nodes"`
	StaleNodes int             `json:"stale_nodes"`
	Merged     MetricsSnapshot `json:"merged"`
}

// MergeSnapshots folds per-node snapshots into a cluster view. Nodes are
// sorted by id; the merged block sums every counter and adds histograms
// bucket-wise.
func MergeSnapshots(nodes []NodeSnapshot) ClusterSnapshot {
	sorted := make([]NodeSnapshot, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	cs := ClusterSnapshot{Nodes: sorted}
	cs.Merged.Level = "merged"
	for _, n := range sorted {
		if n.Stale {
			cs.StaleNodes++
		}
		mergeInto(&cs.Merged, n.Snapshot)
	}
	return cs
}

// satAddU64 is saturating addition. Merged cluster counters and bucket
// sums clamp at MaxUint64 instead of wrapping: a wrapped sum reads as a
// tiny count, which silently un-exhausts a merged budget fact and
// corrupts merged p99s (ISSUE 10).
func satAddU64(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

// mergeInto adds one snapshot's counts into the accumulator.
func mergeInto(dst *MetricsSnapshot, s MetricsSnapshot) {
	dst.Events = satAddU64(dst.Events, s.Events)
	dst.Denials = satAddU64(dst.Denials, s.Denials)
	dst.Allows = satAddU64(dst.Allows, s.Allows)
	dst.FaultTrips = satAddU64(dst.FaultTrips, s.FaultTrips)
	dst.LockContention = satAddU64(dst.LockContention, s.LockContention)
	dst.FlowCacheHits = satAddU64(dst.FlowCacheHits, s.FlowCacheHits)
	dst.FlowCacheMisses = satAddU64(dst.FlowCacheMisses, s.FlowCacheMisses)
	dst.FlowCacheEvictions = satAddU64(dst.FlowCacheEvictions, s.FlowCacheEvictions)
	dst.InternHits = satAddU64(dst.InternHits, s.InternHits)
	dst.InternMisses = satAddU64(dst.InternMisses, s.InternMisses)
	dst.VerdictCacheHits = satAddU64(dst.VerdictCacheHits, s.VerdictCacheHits)
	dst.VerdictCacheMisses = satAddU64(dst.VerdictCacheMisses, s.VerdictCacheMisses)
	dst.VerdictCacheInvalidations = satAddU64(dst.VerdictCacheInvalidations, s.VerdictCacheInvalidations)
	dst.DenialsByRule = mergeMap(dst.DenialsByRule, s.DenialsByRule)
	dst.Hooks = mergeMap(dst.Hooks, s.Hooks)
	dst.Extra = mergeMap(dst.Extra, s.Extra)
	dst.HookLatency = MergeHistograms(dst.HookLatency, s.HookLatency)
	for layer, buckets := range s.LayerLatency {
		if dst.LayerLatency == nil {
			dst.LayerLatency = map[string][]HistBucket{}
		}
		dst.LayerLatency[layer] = MergeHistograms(dst.LayerLatency[layer], buckets)
	}
}

func mergeMap(dst, src map[string]uint64) map[string]uint64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = map[string]uint64{}
	}
	for k, v := range src {
		dst[k] = satAddU64(dst[k], v)
	}
	return dst
}

// MergeHistograms adds two bucket lists bucket-wise, keyed on the upper
// bound. Both inputs are ascending (snapshot order); the result is too.
func MergeHistograms(a, b []HistBucket) []HistBucket {
	if len(a) == 0 {
		return append([]HistBucket(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	var out []HistBucket
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].UpperNS == b[j].UpperNS:
			out = append(out, HistBucket{UpperNS: a[i].UpperNS, Count: satAddU64(a[i].Count, b[j].Count)})
			i++
			j++
		case a[i].UpperNS < b[j].UpperNS:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// HistQuantile estimates the q-quantile (0 < q ≤ 1) of a bucket list as
// the upper bound of the bucket the quantile falls in. Log2 buckets make
// this an order-of-magnitude estimate, which is what the SLO gates need.
//
// Edge cases are pinned by telemetry/merge_test.go: an empty or
// all-zero-count list returns ok=false; q ≥ 1 returns the upper bound of
// the LAST NON-EMPTY bucket (never an empty trailing bucket, never an
// out-of-range index); the running totals saturate so a merged list
// whose counts sum past MaxUint64 still picks a real bucket.
func HistQuantile(buckets []HistBucket, q float64) (uint64, bool) {
	var total uint64
	lastNonEmpty := -1
	for i, b := range buckets {
		total = satAddU64(total, b.Count)
		if b.Count > 0 {
			lastNonEmpty = i
		}
	}
	if total == 0 {
		return 0, false
	}
	if q >= 1 {
		return buckets[lastNonEmpty].UpperNS, true
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var cum uint64
	for _, b := range buckets {
		cum = satAddU64(cum, b.Count)
		if cum > want {
			return b.UpperNS, true
		}
	}
	return buckets[lastNonEmpty].UpperNS, true
}

// WritePrometheus renders the cluster view: per-node liveness/staleness
// gauges followed by the merged counters.
func (cs ClusterSnapshot) WritePrometheus(w io.Writer) error {
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return
	}
	if err := p("# TYPE laminar_cluster_nodes gauge\nlaminar_cluster_nodes %d\n", len(cs.Nodes)); err != nil {
		return err
	}
	p("# TYPE laminar_cluster_stale_nodes gauge\nlaminar_cluster_stale_nodes %d\n", cs.StaleNodes)
	p("# TYPE laminar_cluster_node_stale gauge\n")
	for _, n := range cs.Nodes {
		stale := 0
		if n.Stale {
			stale = 1
		}
		p("laminar_cluster_node_stale{node=\"%d\",epoch=\"%d\"} %d\n", n.Node, n.Epoch, stale)
	}
	return cs.Merged.WritePrometheus(w)
}
