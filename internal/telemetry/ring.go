package telemetry

import (
	"sort"
	"sync/atomic"
)

// The flight recorder: a fixed-size, lock-free ring of recent events.
//
// Memory model (DESIGN.md §11): the recorder keeps ringShards independent
// rings, each a power-of-two array of atomic.Pointer[Event] slots plus an
// atomic write cursor. A writer claims a slot with cursor.Add(1) and
// publishes the event with a single pointer store; readers Load slots and
// tolerate torn *ordering* (a concurrent writer may have lapped a slot)
// but never torn *events*, because each slot swap replaces a whole
// immutable Event the writer will never touch again. Events are sharded
// by TID so concurrent tasks do not contend on one cursor, and the
// recorder-global Seq (assigned in Emit) restores a total order when the
// shards are merged in Snapshot.
//
// The ring never blocks and never allocates beyond the one Event the
// emitter already built: overwrite is the eviction policy, which is what
// a flight recorder wants — on a crash the freshest ringShards×ringSize
// events are still there to dump.

const (
	ringShards = 8
	ringSize   = 1 << 10 // events per shard; 8 KiB of pointers
	ringMask   = ringSize - 1
)

type ring struct {
	cursor atomic.Uint64
	slots  [ringSize]atomic.Pointer[Event]
}

// record publishes e into the ring shard for its TID.
func (r *Recorder) record(e *Event) {
	rg := &r.rings[e.TID%ringShards]
	slot := rg.cursor.Add(1) - 1
	rg.slots[slot&ringMask].Store(e)
}

// Snapshot returns every event currently held by the flight recorder,
// merged across shards in Seq order. It is safe to call concurrently
// with writers; events published during the walk may or may not appear.
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for s := range r.rings {
		rg := &r.rings[s]
		n := rg.cursor.Load()
		if n > ringSize {
			n = ringSize
		}
		for i := uint64(0); i < n; i++ {
			if e := rg.slots[i].Load(); e != nil {
				out = append(out, *e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Denials returns just the denial events from the flight recorder, in
// Seq order.
func (r *Recorder) Denials() []Event {
	all := r.Snapshot()
	out := all[:0]
	for _, e := range all {
		if e.Kind == KindDeny {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears the flight recorder's rings and sequence counter (metrics
// are left alone; see Metrics.Reset). Meant for tests and between chaos
// seeds; not safe against concurrent writers.
func (r *Recorder) Reset() {
	r.seq.Store(0)
	for s := range r.rings {
		rg := &r.rings[s]
		rg.cursor.Store(0)
		for i := range rg.slots {
			rg.slots[i].Store(nil)
		}
	}
}
