package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceBindStamp: a bound endpoint's inode stamps trace context onto
// events that carry it; unbound inodes and unbinding leave events clean.
func TestTraceBindStamp(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.SetNodeIdentity(7, 3)
	ctx := TraceCtx{TraceID: 99, Hop: 1, Origin: 5, OriginEpoch: 2}
	r.BindTrace(42, ctx)
	if !r.TraceBound(42) {
		t.Fatal("bound inode not reported bound")
	}
	if r.TraceBound(41) {
		t.Fatal("unbound inode reported bound")
	}

	r.Emit(Event{Layer: LayerLSM, Kind: KindDeny, Ino: 42})
	r.Emit(Event{Layer: LayerLSM, Kind: KindDeny, Ino: 41})
	r.Emit(Event{Layer: LayerLSM, Kind: KindDeny}) // no inode at all
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events, want 3", len(evs))
	}
	if e := evs[0]; e.TraceID != 99 || e.TraceHop != 1 || e.TraceOrigin != 5 || e.TraceEpoch != 2 {
		t.Fatalf("bound-inode event not stamped: %+v", e)
	}
	for i, e := range evs[1:] {
		if e.TraceID != 0 {
			t.Fatalf("event %d stamped without binding: %+v", i+1, e)
		}
	}
	for _, e := range evs {
		if e.Node != 7 || e.NodeEpoch != 3 {
			t.Fatalf("node identity not stamped: %+v", e)
		}
	}

	r.UnbindTrace(42)
	if r.TraceBound(42) {
		t.Fatal("inode still bound after unbind")
	}
	r.Emit(Event{Layer: LayerLSM, Kind: KindDeny, Ino: 42})
	evs = r.Snapshot()
	if e := evs[len(evs)-1]; e.TraceID != 0 {
		t.Fatalf("event stamped after unbind: %+v", e)
	}
}

// TestTraceStampPreservesExisting: an event that already carries a trace
// (a relayed event) is not overwritten by a local binding.
func TestTraceStampPreservesExisting(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.BindTrace(42, TraceCtx{TraceID: 99})
	r.Emit(Event{Layer: LayerLSM, Kind: KindDeny, Ino: 42, TraceID: 123, TraceHop: 2})
	evs := r.Snapshot()
	if e := evs[0]; e.TraceID != 123 || e.TraceHop != 2 {
		t.Fatalf("pre-stamped trace overwritten: %+v", e)
	}
}

// TestTraceNextHop: the transmitted context is one hop further on, and
// the local copy is untouched.
func TestTraceNextHop(t *testing.T) {
	c := TraceCtx{TraceID: 1, Hop: 0, Origin: 1, OriginEpoch: 1}
	n := c.NextHop()
	if n.Hop != 1 || c.Hop != 0 {
		t.Fatalf("NextHop: got %d, local %d; want 1 and 0", n.Hop, c.Hop)
	}
	if n.TraceID != c.TraceID || n.Origin != c.Origin || n.OriginEpoch != c.OriginEpoch {
		t.Fatalf("NextHop changed identity fields: %+v vs %+v", n, c)
	}
}

// TestDumpV1StillReadable: a version-1 dump — no meta header, no v field,
// no node/trace fields — parses with nil meta and zeroed v2 fields.
func TestDumpV1StillReadable(t *testing.T) {
	v1 := `{"seq":1,"tid":9,"layer":"lsm","kind":"deny","rule":"secrecy","op":"read","site":"hook.FilePermission","src_s":[4],"src_i":[],"dst_s":[],"dst_i":[],"cap_p":[],"cap_m":[],"delta":[4]}
{"seq":2,"tid":9,"layer":"lsm","kind":"allow","op":"write","site":"hook.FilePermission","src_s":[],"src_i":[],"dst_s":[],"dst_i":[],"cap_p":[],"cap_m":[]}
`
	meta, evs, err := ReadDumpFull(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatalf("v1 dump produced meta %+v, want nil", meta)
	}
	if len(evs) != 2 {
		t.Fatalf("parsed %d events, want 2", len(evs))
	}
	e := evs[0]
	if e.Node != 0 || e.TraceID != 0 || e.TraceHop != 0 {
		t.Fatalf("v1 event grew v2 fields: %+v", e)
	}
	if e.Rule != RuleSecrecy || e.Seq != 1 {
		t.Fatalf("v1 event misparsed: %+v", e)
	}
}

// TestDumpMetaRoundTrip: DumpWithMeta writes a v2 header line that
// ReadDumpFull returns, with the metrics snapshot intact.
func TestDumpMetaRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.SetLevel(LevelDeny)
	r.SetNodeIdentity(4, 9)
	r.M.ObserveLayer(LayerNet, 1500)
	r.Emit(Event{Layer: LayerLSM, Kind: KindDeny, Ino: 1})
	var buf bytes.Buffer
	if err := r.DumpWithMeta(&buf); err != nil {
		t.Fatal(err)
	}
	meta, evs, err := ReadDumpFull(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.V != DumpVersion || meta.Node != 4 || meta.NodeEpoch != 9 {
		t.Fatalf("meta = %+v, want v%d node 4 epoch 9", meta, DumpVersion)
	}
	if meta.Snapshot == nil || len(meta.Snapshot.LayerLatency[LayerNet.String()]) == 0 {
		t.Fatalf("meta snapshot missing net layer latency: %+v", meta.Snapshot)
	}
	if len(evs) != 1 || evs[0].Node != 4 {
		t.Fatalf("events = %+v", evs)
	}
}

// TestMergeSnapshots: counters sum, histograms add bucket-wise, stale
// slices are counted but still merged, nodes sort by id.
func TestMergeSnapshots(t *testing.T) {
	mk := func(node uint64, denials uint64, upper uint64, count uint64, stale bool) NodeSnapshot {
		return NodeSnapshot{
			Node: node, Epoch: 1, Stale: stale,
			Snapshot: MetricsSnapshot{
				Denials:       denials,
				DenialsByRule: map[string]uint64{"secrecy": denials},
				LayerLatency: map[string][]HistBucket{
					"net": {{UpperNS: upper, Count: count}},
				},
			},
		}
	}
	cs := MergeSnapshots([]NodeSnapshot{
		mk(3, 5, 1024, 7, true),
		mk(1, 2, 1024, 3, false),
		mk(2, 1, 2048, 4, false),
	})
	if got := []uint64{cs.Nodes[0].Node, cs.Nodes[1].Node, cs.Nodes[2].Node}; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("nodes not sorted: %v", got)
	}
	if cs.StaleNodes != 1 {
		t.Fatalf("stale nodes = %d, want 1", cs.StaleNodes)
	}
	if cs.Merged.Denials != 8 || cs.Merged.DenialsByRule["secrecy"] != 8 {
		t.Fatalf("merged denials = %d/%v, want 8 (stale slices still count)", cs.Merged.Denials, cs.Merged.DenialsByRule)
	}
	net := cs.Merged.LayerLatency["net"]
	if len(net) != 2 || net[0].UpperNS != 1024 || net[0].Count != 10 || net[1].UpperNS != 2048 || net[1].Count != 4 {
		t.Fatalf("merged net histogram = %+v", net)
	}

	var buf bytes.Buffer
	if err := cs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"laminar_cluster_nodes 3",
		"laminar_cluster_stale_nodes 1",
		`laminar_cluster_node_stale{node="3",epoch="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestMergeHistogramsDisjointAndEmpty: merging keeps ascending order
// across disjoint bucket sets and copies rather than aliasing empties.
func TestMergeHistogramsDisjointAndEmpty(t *testing.T) {
	a := []HistBucket{{UpperNS: 1, Count: 1}, {UpperNS: 4, Count: 2}}
	b := []HistBucket{{UpperNS: 2, Count: 3}}
	m := MergeHistograms(a, b)
	want := []HistBucket{{UpperNS: 1, Count: 1}, {UpperNS: 2, Count: 3}, {UpperNS: 4, Count: 2}}
	if len(m) != len(want) {
		t.Fatalf("merged = %+v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, m[i], want[i])
		}
	}
	cp := MergeHistograms(nil, b)
	cp[0].Count = 77
	if b[0].Count != 3 {
		t.Fatal("MergeHistograms(nil, b) aliased b")
	}
}

// TestHistQuantile: the quantile is the upper bound of the bucket the
// rank falls in; empty histograms report ok=false.
func TestHistQuantile(t *testing.T) {
	buckets := []HistBucket{{UpperNS: 10, Count: 9}, {UpperNS: 100, Count: 1}}
	if q, ok := HistQuantile(buckets, 0.50); !ok || q != 10 {
		t.Fatalf("p50 = %d,%v want 10", q, ok)
	}
	if q, ok := HistQuantile(buckets, 0.99); !ok || q != 100 {
		t.Fatalf("p99 = %d,%v want 100", q, ok)
	}
	if _, ok := HistQuantile(nil, 0.5); ok {
		t.Fatal("empty histogram produced a quantile")
	}
}

// TestExplainRouteGroupsAndDedups: repeated identical checks at a hop
// collapse; hops order by hop counter then node; the first denying hop
// sets the verdict; TracedDenials lists ids newest-denial-first.
func TestExplainRouteGroupsAndDedups(t *testing.T) {
	deny := Event{Seq: 9, Layer: LayerLSM, Kind: KindDeny, Rule: RuleSecrecy,
		Site: "hook.FilePermission", Op: "read",
		Node: 3, NodeEpoch: 1, TraceID: 77, TraceHop: 2, TraceOrigin: 1, TraceEpoch: 1}
	relay := Event{Seq: 4, Layer: LayerLSM, Kind: KindAllow,
		Site: "lsm.checkAccess", Op: "read", SrcS: 1, SrcI: 1, DstS: 1, DstI: 1,
		Node: 2, NodeEpoch: 1, TraceID: 77, TraceHop: 1, TraceOrigin: 1, TraceEpoch: 1}
	relayDup := relay
	relayDup.Seq = 5 // the relay pump re-checks every tick
	other := Event{Seq: 2, Layer: LayerLSM, Kind: KindDeny, Rule: RuleIntegrity,
		Site: "x", Op: "write", Node: 9, NodeEpoch: 1, TraceID: 88, TraceHop: 0}
	noise := Event{Seq: 3, Layer: LayerLSM, Kind: KindAllow, Site: "hook.TaskAlloc",
		Node: 2, NodeEpoch: 1, TraceID: 77, TraceHop: 1} // operand-free allow: excluded

	rep, err := ExplainRoute(77, []Event{deny, relay, relayDup, other, noise})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hops) != 2 {
		t.Fatalf("hops = %+v, want 2", rep.Hops)
	}
	if rep.Hops[0].Hop != 1 || rep.Hops[0].Node != 2 || len(rep.Hops[0].Checks) != 1 {
		t.Fatalf("hop[0] = %+v, want deduped relay hop 1", rep.Hops[0])
	}
	if rep.Hops[1].Hop != 2 || !rep.Hops[1].Denied {
		t.Fatalf("hop[1] = %+v, want denied hop 2", rep.Hops[1])
	}
	if !rep.Denied || rep.DeniedHop != 2 || rep.Origin != 1 {
		t.Fatalf("report verdict = %+v", rep)
	}

	if _, err := ExplainRoute(123, []Event{deny}); err == nil {
		t.Fatal("unknown trace id did not error")
	}

	ids := TracedDenials([]Event{deny, other})
	if len(ids) != 2 || ids[0] != 77 || ids[1] != 88 {
		t.Fatalf("TracedDenials = %v, want [77 88] (newest denial first)", ids)
	}

	out := FormatRoute(rep)
	for _, want := range []string{"hop 1 @ node 2", "hop 2 @ node 3", "DENIED", "verdict: flow denied at hop 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatRoute missing %q:\n%s", want, out)
		}
	}
}
