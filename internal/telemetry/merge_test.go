package telemetry

import (
	"math"
	"testing"
)

// TestHistQuantileEdgeCases pins the ISSUE 10 quantile contract: q=1.0
// returns the last NON-EMPTY bucket's bound, all-zero lists return
// ok=false, and single-bucket lists behave.
func TestHistQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		buckets []HistBucket
		q       float64
		want    uint64
		ok      bool
	}{
		{name: "nil list", buckets: nil, q: 0.5, want: 0, ok: false},
		{name: "empty list", buckets: []HistBucket{}, q: 0.99, want: 0, ok: false},
		{
			name:    "all zero counts",
			buckets: []HistBucket{{UpperNS: 63, Count: 0}, {UpperNS: 127, Count: 0}},
			q:       0.5, want: 0, ok: false,
		},
		{
			name:    "single bucket median",
			buckets: []HistBucket{{UpperNS: 255, Count: 10}},
			q:       0.5, want: 255, ok: true,
		},
		{
			name:    "single bucket q=1",
			buckets: []HistBucket{{UpperNS: 255, Count: 1}},
			q:       1.0, want: 255, ok: true,
		},
		{
			name: "q=1 returns last non-empty bound",
			buckets: []HistBucket{
				{UpperNS: 63, Count: 5},
				{UpperNS: 127, Count: 3},
				{UpperNS: 255, Count: 0}, // trailing empty bucket must not win
			},
			q: 1.0, want: 127, ok: true,
		},
		{
			name: "q>1 clamps like q=1",
			buckets: []HistBucket{
				{UpperNS: 63, Count: 5},
				{UpperNS: 127, Count: 3},
			},
			q: 1.5, want: 127, ok: true,
		},
		{
			name: "median across buckets",
			buckets: []HistBucket{
				{UpperNS: 63, Count: 5},
				{UpperNS: 127, Count: 5},
			},
			q: 0.5, want: 127, ok: true,
		},
		{
			name: "p99 lands in tail bucket",
			buckets: []HistBucket{
				{UpperNS: 63, Count: 990},
				{UpperNS: 127, Count: 9},
				{UpperNS: 255, Count: 1},
			},
			q: 0.99, want: 127, ok: true,
		},
		{
			name: "leading empty bucket skipped",
			buckets: []HistBucket{
				{UpperNS: 31, Count: 0},
				{UpperNS: 63, Count: 4},
			},
			q: 0.5, want: 63, ok: true,
		},
		{
			name: "saturated counts still resolve",
			buckets: []HistBucket{
				{UpperNS: 63, Count: math.MaxUint64 - 1},
				{UpperNS: 127, Count: math.MaxUint64 - 1},
			},
			q: 0.25, want: 63, ok: true,
		},
		{
			name: "saturated counts q=1",
			buckets: []HistBucket{
				{UpperNS: 63, Count: math.MaxUint64 - 1},
				{UpperNS: 127, Count: math.MaxUint64 - 1},
			},
			q: 1.0, want: 127, ok: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, ok := HistQuantile(c.buckets, c.q)
			if got != c.want || ok != c.ok {
				t.Fatalf("HistQuantile(%v, %v) = (%d, %v), want (%d, %v)",
					c.buckets, c.q, got, ok, c.want, c.ok)
			}
		})
	}
}

// TestMergeHistogramsSaturates is the ISSUE 10 overflow regression at
// MaxUint64-1: the bucket-wise sum must clamp, not wrap to a tiny count
// that corrupts merged quantiles.
func TestMergeHistogramsSaturates(t *testing.T) {
	a := []HistBucket{{UpperNS: 63, Count: math.MaxUint64 - 1}}
	b := []HistBucket{{UpperNS: 63, Count: 2}}
	m := MergeHistograms(a, b)
	if len(m) != 1 {
		t.Fatalf("merged %d buckets, want 1", len(m))
	}
	if m[0].Count != math.MaxUint64 {
		t.Fatalf("bucket sum = %d, want saturated MaxUint64 (wrapped?)", m[0].Count)
	}
	// The merged histogram must still answer quantiles sanely.
	if got, ok := HistQuantile(m, 0.99); !ok || got != 63 {
		t.Fatalf("quantile on saturated merge = (%d, %v)", got, ok)
	}
}

// TestMergeHistogramsDisjointBounds: bucket-wise merge keyed on the
// upper bound interleaves distinct bounds in order.
func TestMergeHistogramsDisjointBounds(t *testing.T) {
	a := []HistBucket{{UpperNS: 63, Count: 1}, {UpperNS: 255, Count: 2}}
	b := []HistBucket{{UpperNS: 127, Count: 3}}
	m := MergeHistograms(a, b)
	want := []HistBucket{{UpperNS: 63, Count: 1}, {UpperNS: 127, Count: 3}, {UpperNS: 255, Count: 2}}
	if len(m) != len(want) {
		t.Fatalf("merged %v, want %v", m, want)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merged %v, want %v", m, want)
		}
	}
}

// TestMergeSnapshotsSaturates: scalar counters and maps in the cluster
// fold clamp rather than wrap.
func TestMergeSnapshotsSaturates(t *testing.T) {
	nodes := []NodeSnapshot{
		{Node: 1, Snapshot: MetricsSnapshot{
			Denials: math.MaxUint64 - 1,
			Extra:   map[string]uint64{"budget.charged": math.MaxUint64 - 1},
		}},
		{Node: 2, Snapshot: MetricsSnapshot{
			Denials: 5,
			Extra:   map[string]uint64{"budget.charged": 7},
		}},
	}
	cs := MergeSnapshots(nodes)
	if cs.Merged.Denials != math.MaxUint64 {
		t.Fatalf("merged denials = %d, want saturated", cs.Merged.Denials)
	}
	if cs.Merged.Extra["budget.charged"] != math.MaxUint64 {
		t.Fatalf("merged extra = %d, want saturated", cs.Merged.Extra["budget.charged"])
	}
}
