// Package declass implements the paper's declassifier-module pattern
// (§3.3): a data owner packages her declassification policy as a small
// code module carrying her capabilities; a server application — possibly
// entirely ignorant of DIFC — loads the module and invokes it, and the
// module alone decides which of the owner's data becomes public. The
// decision to declassify stays "localized to a small piece of code that
// can be closely audited" (§1).
//
// Modules are integrity-endorsed: a registry created with an endorsement
// tag refuses modules that are not vouched for, reproducing the paper's
// plugin story ("the server cannot execute or read a plugin that has an
// integrity label lower than {I(i)}").
package declass

import (
	"fmt"
	"sync"

	"laminar"
)

// Func is the owner-supplied declassification policy: it runs inside a
// security region carrying the owner's labels and capabilities, reads the
// labeled input, and returns the value to publish. Returning an error
// aborts without declassifying anything.
type Func func(r *laminar.Region, input *laminar.Object) (any, error)

// Module is a loadable declassifier.
type Module struct {
	Name string
	// labels the module's region runs with (the owner's data label).
	labels laminar.Labels
	// caps the owner granted to the module (must include the minus
	// capabilities the policy needs).
	caps laminar.CapSet
	// endorsed records the integrity tag the registry verified at load.
	endorsed laminar.Label
	fn       Func
}

// NewModule packages a declassification policy. The owner calls this with
// the label of the data the module may read and the capability set it may
// use; the module never exposes either to the host application.
func NewModule(name string, labels laminar.Labels, caps laminar.CapSet, fn Func) *Module {
	return &Module{Name: name, labels: labels, caps: caps, fn: fn}
}

// Registry is the server-side module loader. It only accepts modules
// endorsed with its required integrity tag.
type Registry struct {
	required laminar.Tag

	mu      sync.Mutex
	modules map[string]*Module
}

// NewRegistry creates a loader that requires the given endorsement tag.
func NewRegistry(required laminar.Tag) *Registry {
	return &Registry{required: required, modules: make(map[string]*Module)}
}

// RequiredTag is the integrity tag this registry's endorsement point
// enforces. Registry.Load and Registry.Invoke are the runtime's
// endorsement points: the places where low-integrity input crosses into
// trusted code, and exactly the shape the laminar-vet
// transparent-endorsement rule checks in guest programs — the decision
// to endorse must depend only on the endorsement label, never on secret
// data.
func (g *Registry) RequiredTag() laminar.Tag { return g.required }

// Endorsed returns the integrity label the registry verified when the
// module was loaded, or the empty label if the module was never accepted
// by a registry. The zero value is fail-closed: an unloaded module
// proves no endorsement.
func (m *Module) Endorsed() laminar.Label { return m.endorsed }

// ErrNotEndorsed reports a module without the required integrity
// endorsement.
var ErrNotEndorsed = fmt.Errorf("declass: module lacks the required integrity endorsement")

// ErrRefused reports a policy that declined to declassify.
var ErrRefused = fmt.Errorf("declass: module refused to declassify")

// Load verifies the module's endorsement and registers it. endorsement is
// the integrity label the distribution channel attached (e.g. read from
// the module file's integrity xattr); it must contain the registry's
// required tag.
func (g *Registry) Load(m *Module, endorsement laminar.Label) error {
	if !endorsement.Has(g.required) {
		return fmt.Errorf("%w: have %v, need tag %v", ErrNotEndorsed, endorsement, g.required)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.modules[m.Name]; dup {
		return fmt.Errorf("declass: module %q already loaded", m.Name)
	}
	m.endorsed = endorsement
	g.modules[m.Name] = m
	return nil
}

// Invoke runs the named module on input as the given thread. The thread
// needs no capabilities of its own: the module's region runs with the
// capabilities the owner baked in, and only the module's return value
// leaves the label boundary. The host receives an unlabeled result.
func (g *Registry) Invoke(th *laminar.Thread, name string, input *laminar.Object) (any, error) {
	g.mu.Lock()
	m, ok := g.modules[name]
	g.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("declass: no module %q", name)
	}
	// The module's thread must hold the owner's capabilities for the
	// region entry; the owner's grant travels with the module, installed
	// on a dedicated module thread forked at first use.
	mth, err := g.moduleThread(th, m)
	if err != nil {
		return nil, err
	}
	var out any
	var ferr error
	err = mth.Secure(m.labels, m.caps, func(r *laminar.Region) {
		v, err := m.fn(r, input)
		if err != nil {
			ferr = err
			return
		}
		// Publish through a nested empty region: the module must hold
		// the minus capabilities for every tag in its label, or the
		// declassification fails here — the host cannot help it.
		err = mth.Secure(laminar.Labels{}, m.caps, func(r2 *laminar.Region) {
			holder := r2.Alloc(nil)
			r2.Set(holder, "v", v)
			out = r2.Get(holder, "v")
		}, nil)
		if err != nil {
			panic(&laminar.Violation{Op: "declassify", Err: err})
		}
	}, func(r *laminar.Region, e any) {
		ferr = fmt.Errorf("declass: %v", e)
	})
	if err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// moduleThread forks a thread for the module carrying the owner's
// capabilities. The fork happens from the host thread, but the
// capabilities come from the module's grant (installed via the trusted
// grant path the owner used when packaging the module).
func (g *Registry) moduleThread(host *laminar.Thread, m *Module) (*laminar.Thread, error) {
	th, err := host.Fork([]laminar.Capability{})
	if err != nil {
		return nil, err
	}
	for _, tag := range m.caps.Plus().Tags() {
		th.GrantCapability(tag, laminar.CapPlus)
	}
	for _, tag := range m.caps.Minus().Tags() {
		th.GrantCapability(tag, laminar.CapMinus)
	}
	// Entering the module's region may also need plus capabilities for
	// its labels.
	for _, tag := range m.labels.S.Tags() {
		th.GrantCapability(tag, laminar.CapPlus)
	}
	for _, tag := range m.labels.I.Tags() {
		th.GrantCapability(tag, laminar.CapPlus)
	}
	return th, nil
}
