package declass

import (
	"errors"
	"strings"
	"testing"

	"laminar"
)

// setup boots a system with a server thread, an endorsement tag, and an
// owner ("alice") with a secret object.
func setup(t *testing.T) (*laminar.Thread, laminar.Tag, laminar.Tag, *laminar.Object) {
	t.Helper()
	sys := laminar.NewSystem()
	shell, err := sys.Login("server")
	if err != nil {
		t.Fatal(err)
	}
	_, server, err := sys.LaunchVM(shell)
	if err != nil {
		t.Fatal(err)
	}
	endorseTag, err := server.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	// Alice's side: her own thread mints her tag and builds the secret.
	alice, err := server.Fork([]laminar.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	aTag, err := alice.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	var cal *laminar.Object
	err = alice.Secure(laminar.Labels{S: laminar.NewLabel(aTag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		cal = r.Alloc(nil)
		r.Set(cal, "monday", "dentist 10am")
		r.Set(cal, "tuesday", "free")
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return server, endorseTag, aTag, cal
}

// aliceModule builds Alice's declassifier: it publishes only whether
// Tuesday is free, never the calendar contents.
func aliceModule(aTag laminar.Tag) *Module {
	return NewModule("alice-availability",
		laminar.Labels{S: laminar.NewLabel(aTag)},
		laminar.NewCapSet(laminar.NewLabel(aTag), laminar.NewLabel(aTag)),
		func(r *laminar.Region, cal *laminar.Object) (any, error) {
			return r.Get(cal, "tuesday") == "free", nil
		})
}

func TestModuleDeclassifiesSelectively(t *testing.T) {
	server, endorseTag, aTag, cal := setup(t)
	reg := NewRegistry(endorseTag)
	if err := reg.Load(aliceModule(aTag), laminar.NewLabel(endorseTag)); err != nil {
		t.Fatal(err)
	}
	out, err := reg.Invoke(server, "alice-availability", cal)
	if err != nil {
		t.Fatal(err)
	}
	if out != true {
		t.Errorf("availability = %v, want true", out)
	}
	// The server itself still cannot read the calendar.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("server read the calendar directly")
			}
		}()
		server.Get(cal, "monday")
	}()
}

func TestUnendorsedModuleRefused(t *testing.T) {
	_, endorseTag, aTag, _ := setup(t)
	reg := NewRegistry(endorseTag)
	err := reg.Load(aliceModule(aTag), laminar.EmptyLabel)
	if !errors.Is(err, ErrNotEndorsed) {
		t.Errorf("unendorsed load = %v, want ErrNotEndorsed", err)
	}
	err = reg.Load(aliceModule(aTag), laminar.NewLabel(laminar.Tag(999)))
	if !errors.Is(err, ErrNotEndorsed) {
		t.Errorf("wrong-tag load = %v", err)
	}
}

func TestModuleWithoutMinusCannotPublish(t *testing.T) {
	// A module whose owner granted only the plus capability can read the
	// data but can never declassify the result.
	server, endorseTag, aTag, cal := setup(t)
	reg := NewRegistry(endorseTag)
	m := NewModule("plus-only",
		laminar.Labels{S: laminar.NewLabel(aTag)},
		laminar.NewCapSet(laminar.NewLabel(aTag), laminar.EmptyLabel),
		func(r *laminar.Region, cal *laminar.Object) (any, error) {
			return r.Get(cal, "monday"), nil
		})
	if err := reg.Load(m, laminar.NewLabel(endorseTag)); err != nil {
		t.Fatal(err)
	}
	if out, err := reg.Invoke(server, "plus-only", cal); err == nil {
		t.Errorf("plus-only module published %v", out)
	}
}

func TestModuleErrorAbortsQuietly(t *testing.T) {
	server, endorseTag, aTag, cal := setup(t)
	reg := NewRegistry(endorseTag)
	m := NewModule("refuser",
		laminar.Labels{S: laminar.NewLabel(aTag)},
		laminar.NewCapSet(laminar.NewLabel(aTag), laminar.NewLabel(aTag)),
		func(r *laminar.Region, cal *laminar.Object) (any, error) {
			return nil, ErrRefused
		})
	if err := reg.Load(m, laminar.NewLabel(endorseTag)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Invoke(server, "refuser", cal); !errors.Is(err, ErrRefused) {
		t.Errorf("refusing module = %v", err)
	}
}

func TestRegistryBookkeeping(t *testing.T) {
	server, endorseTag, aTag, cal := setup(t)
	reg := NewRegistry(endorseTag)
	m := aliceModule(aTag)
	if err := reg.Load(m, laminar.NewLabel(endorseTag)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load(m, laminar.NewLabel(endorseTag)); err == nil || !strings.Contains(err.Error(), "already loaded") {
		t.Errorf("duplicate load = %v", err)
	}
	if _, err := reg.Invoke(server, "missing", cal); err == nil {
		t.Error("invoke of missing module succeeded")
	}
}
