package declass

import (
	"errors"
	"testing"

	"laminar"
	"laminar/internal/jvm"
	"laminar/internal/jvm/analysis"
)

// These tests pin the correspondence between the runtime's endorsement
// points (Registry.Load / Registry.Invoke) and the laminar-vet
// transparent-endorsement rule: both enforce that the decision to trust
// low-integrity input is a function of the endorsement evidence alone,
// never of secret data or of anything else about the module.

// TestLoadVerdictIsTransparent: Load's accept/refuse verdict must depend
// only on (endorsement label, required tag). Modules with wildly
// different internals — different policies, different secret labels —
// get identical verdicts under identical endorsements.
func TestLoadVerdictIsTransparent(t *testing.T) {
	_, endorseTag, aTag, _ := setup(t)

	mkModules := func() []*Module {
		leaky := NewModule("leaky",
			laminar.Labels{S: laminar.NewLabel(aTag)},
			laminar.NewCapSet(laminar.NewLabel(aTag), laminar.NewLabel(aTag)),
			func(r *laminar.Region, cal *laminar.Object) (any, error) {
				return r.Get(cal, "monday"), nil
			})
		inert := NewModule("inert", laminar.Labels{}, laminar.EmptyCapSet,
			func(r *laminar.Region, cal *laminar.Object) (any, error) {
				return nil, ErrRefused
			})
		return []*Module{leaky, inert}
	}

	endorsements := []laminar.Label{
		laminar.NewLabel(endorseTag), // vouched
		laminar.EmptyLabel,           // unvouched
		laminar.NewLabel(aTag),       // vouched for the WRONG tag
	}
	for i, e := range endorsements {
		var verdicts []bool
		for _, m := range mkModules() {
			reg := NewRegistry(endorseTag)
			verdicts = append(verdicts, reg.Load(m, e) == nil)
		}
		if verdicts[0] != verdicts[1] {
			t.Errorf("endorsement %d: verdict depends on module internals: %v", i, verdicts)
		}
		wantAccept := e.Has(endorseTag)
		if verdicts[0] != wantAccept {
			t.Errorf("endorsement %d: accept=%v, want %v (verdict must be a pure function of the endorsement label)", i, verdicts[0], wantAccept)
		}
	}
}

// TestEndorsementAccessorsFailClosed: RequiredTag exposes what the
// endorsement point enforces, and Endorsed proves nothing until a
// registry actually accepted the module.
func TestEndorsementAccessorsFailClosed(t *testing.T) {
	_, endorseTag, aTag, _ := setup(t)
	reg := NewRegistry(endorseTag)
	if got := reg.RequiredTag(); got != endorseTag {
		t.Fatalf("RequiredTag = %v, want %v", got, endorseTag)
	}
	m := aliceModule(aTag)
	if !m.Endorsed().IsEmpty() {
		t.Fatalf("unloaded module claims endorsement %v", m.Endorsed())
	}
	if err := reg.Load(m, laminar.EmptyLabel); !errors.Is(err, ErrNotEndorsed) {
		t.Fatalf("unendorsed load = %v", err)
	}
	if !m.Endorsed().IsEmpty() {
		t.Fatalf("refused module claims endorsement %v", m.Endorsed())
	}
	if err := reg.Load(m, laminar.NewLabel(endorseTag)); err != nil {
		t.Fatal(err)
	}
	if !m.Endorsed().Has(endorseTag) {
		t.Fatalf("loaded module lost its endorsement: %v", m.Endorsed())
	}
}

// TestGuestEndorsementPointMirrorsRegistry: the guest-program analogue of
// a registry whose Load decision consults secret data. A MiniJVM endorser
// whose invocation is guarded by a branch on the secret leaks one bit per
// call through the endorsement itself; the transparent-endorsement rule
// must flag the call site, mirroring the discipline Load enforces natively.
func TestGuestEndorsementPointMirrorsRegistry(t *testing.T) {
	p, err := jvm.Parse(`
statics 2
method main args=1 locals=2
    new 1
    store 1
    load 0
    jmpifnot skip
    load 1
    invoke stamp
skip:
    return
end
secure method stamp args=1 locals=1 integrity=2
    load 0
    const 1
    putfield 0
    return
catch:
    return
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	fs := analysis.LintTaint(p)
	found := false
	for _, f := range fs {
		if f.Rule == analysis.RuleTransparentEnd && f.Method == "main" {
			found = true
		}
	}
	if !found {
		t.Fatalf("secret-guarded endorser not flagged by %s: %v", analysis.RuleTransparentEnd, fs)
	}

	// The transparent counterpart — endorsement decided by low-integrity
	// evidence only — is clean, exactly as an honest registry is.
	clean, err := jvm.Parse(`
statics 2
method main args=1 locals=2
    new 1
    store 1
    getstatic 0
    jmpifnot skip
    load 1
    invoke stamp
skip:
    return
end
secure method stamp args=1 locals=1 integrity=2
    load 0
    const 1
    putfield 0
    return
catch:
    return
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, f := range analysis.LintTaint(clean) {
		if f.Rule == analysis.RuleTransparentEnd {
			t.Errorf("transparent endorser falsely flagged: %v", f)
		}
	}
}
