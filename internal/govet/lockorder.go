package govet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// lockRank orders the kernel's lock families per the documented
// hierarchy (internal/kernel/locking.go): task shards strictly before
// file locks strictly before inode locks. Acquiring a lower-ranked lock
// while a higher-ranked one is held inverts the order and can deadlock
// against any thread following the documented one.
var lockRank = map[string]int{
	"begin":           1,
	"begin2":          1,
	"WithTasksLocked": 1,
	"lockFile":        2,
	"lockInode":       3,
	"rlockInode":      3,
}

var lockRankName = [...]string{1: "task", 2: "file", 3: "inode"}

// LockOrder flags lock acquisitions that appear after a defer-held
// acquisition of a higher rank in the same function scope. Defer-held
// locks (`defer k.begin(t)()`) are provably held until the scope
// returns, so any later lower-rank acquire is an order inversion; the
// assigned form (`unlock := k.lockInode(i)`) may be released early and
// is only treated as the later acquire, never the holder.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must respect the task→file→inode order",
	AppliesTo: func(path string) bool {
		return strings.Contains(filepath.ToSlash(path), "internal/kernel/")
	},
	Run: runLockOrder,
}

// acquireCall extracts the lock rank from a call expression of the form
// x.<lockFn>(...), if any.
func acquireCall(call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	r, ok := lockRank[sel.Sel.Name]
	return sel.Sel.Name, r, ok
}

func runLockOrder(f *File) []Finding {
	var out []Finding
	for _, sc := range f.scopes() {
		type held struct {
			pos  token.Pos
			name string
			rank int
		}
		var deferred []held
		report := func(pos token.Pos, name string, rank int, h held) {
			if f.suppressed("lockorder", &posNode{pos}, sc.decl) {
				return
			}
			out = append(out, Finding{
				Analyzer: "lockorder",
				File:     f.Path,
				Line:     f.Fset.Position(pos).Line,
				Func:     sc.name,
				Msg: fmt.Sprintf("%s acquires the %s lock (%s) after holding the %s lock (%s at line %d): order is task→file→inode",
					sc.name, lockRankName[rank], name, lockRankName[h.rank], h.name, f.Fset.Position(h.pos).Line),
			})
		}
		walkScope(sc.body, func(n ast.Node) bool {
			var call *ast.CallExpr
			isDefer := false
			descend := true
			switch st := n.(type) {
			case *ast.DeferStmt:
				// defer k.begin(t)() — the acquire is the inner call.
				// Skip children so the inner call is not revisited.
				if inner, ok := st.Call.Fun.(*ast.CallExpr); ok {
					call = inner
					isDefer = true
					descend = false
				}
			case *ast.CallExpr:
				call = st
			}
			if call == nil {
				return true
			}
			name, rank, ok := acquireCall(call)
			if !ok {
				return descend
			}
			for _, h := range deferred {
				if h.rank > rank && h.pos < call.Pos() {
					report(call.Pos(), name, rank, h)
					break
				}
			}
			if isDefer {
				deferred = append(deferred, held{pos: call.Pos(), name: name, rank: rank})
			}
			return descend
		})
	}
	return out
}

// posNode adapts a bare position to ast.Node for directive lookup.
type posNode struct{ pos token.Pos }

func (p *posNode) Pos() token.Pos { return p.pos }
func (p *posNode) End() token.Pos { return p.pos }
