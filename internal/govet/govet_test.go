package govet_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"laminar/internal/govet"
)

func parse(t *testing.T, path, src string) *govet.File {
	t.Helper()
	f, err := govet.ParseSource(path, src)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return f
}

func runOne(t *testing.T, a *govet.Analyzer, src string) []govet.Finding {
	t.Helper()
	// Use a path the analyzer applies to so fixtures exercise the same
	// code path as the real tree.
	return a.Run(parse(t, "internal/kernel/lsm/fixture.go", src))
}

// ---------------------------------------------------------------------------
// epochbump

func TestEpochBumpFlagsUncoveredMutation(t *testing.T) {
	src := `package lsm
func (k *K) relabel(t *Task) {
	t.sec.labels = next
}
`
	fs := runOne(t, govet.EpochBump, src)
	if len(fs) != 1 || fs[0].Analyzer != "epochbump" || fs[0].Func != "relabel" {
		t.Fatalf("want 1 epochbump finding in relabel, got %v", fs)
	}
}

func TestEpochBumpSatisfiedByLaterBump(t *testing.T) {
	src := `package lsm
func (k *K) relabel(t *Task) {
	t.sec.labels = next
	t.BumpLabelEpoch()
}
`
	if fs := runOne(t, govet.EpochBump, src); len(fs) != 0 {
		t.Fatalf("bump after mutation should satisfy, got %v", fs)
	}
}

func TestEpochBumpEarlierBumpDoesNotCover(t *testing.T) {
	src := `package lsm
func (k *K) relabel(t *Task) {
	t.BumpLabelEpoch()
	t.sec.labels = next
}
`
	if fs := runOne(t, govet.EpochBump, src); len(fs) != 1 {
		t.Fatalf("bump before mutation must not cover it, got %v", fs)
	}
}

func TestEpochBumpFuncLitIsOwnScope(t *testing.T) {
	// The bump lives in the outer scope; the mutation inside the literal
	// is NOT covered by it.
	src := `package lsm
func (k *K) walk(t *Task) {
	k.each(func(ino *Inode) {
		ino.sec.labels = next
	})
	t.BumpLabelEpoch()
}
`
	fs := runOne(t, govet.EpochBump, src)
	if len(fs) != 1 || !strings.Contains(fs[0].Func, "func literal") {
		t.Fatalf("want finding inside func literal scope, got %v", fs)
	}
}

func TestEpochBumpDirectiveOnLineAbove(t *testing.T) {
	src := `package lsm
func (k *K) attach(t *Task) {
	//govet:fresh
	t.Security = s
}
`
	if fs := runOne(t, govet.EpochBump, src); len(fs) != 0 {
		t.Fatalf("adjacent directive should suppress, got %v", fs)
	}
}

func TestEpochBumpDirectiveOpeningCommentGroup(t *testing.T) {
	// Directive on the FIRST line of a multi-line explanation still
	// anchors to the statement below the group (regression: the directive
	// used to only cover its own line and the one below it).
	src := `package lsm
func (k *K) attach(t *Task) {
	//govet:fresh — first attach of an empty blob; nothing published
	// yet, so no cached verdict can be stale.
	t.Security = s
}
`
	if fs := runOne(t, govet.EpochBump, src); len(fs) != 0 {
		t.Fatalf("multi-line directive group should suppress, got %v", fs)
	}
}

func TestEpochBumpDocCommentDirective(t *testing.T) {
	src := `package lsm
// attach installs the blob on a task not yet visible to anyone
// (govet:fresh).
func (k *K) attach(t *Task) {
	t.Security = s
}
`
	if fs := runOne(t, govet.EpochBump, src); len(fs) != 0 {
		t.Fatalf("doc-comment directive should suppress, got %v", fs)
	}
}

func TestEpochBumpAppliesOnlyToKernel(t *testing.T) {
	src := `package rt
func (r *R) set() { r.labels = next }
`
	files := []*govet.File{parse(t, "internal/rt/region.go", src)}
	if fs := govet.RunFiles(files, []*govet.Analyzer{govet.EpochBump}); len(fs) != 0 {
		t.Fatalf("epochbump must not apply outside internal/kernel, got %v", fs)
	}
}

// ---------------------------------------------------------------------------
// lockorder

func TestLockOrderFlagsInversion(t *testing.T) {
	src := `package kernel
func (k *K) bad(t *Task, i *Inode, f *File) {
	defer k.lockInode(i)()
	defer k.lockFile(f)()
}
`
	fs := runOne(t, govet.LockOrder, src)
	if len(fs) != 1 || fs[0].Analyzer != "lockorder" {
		t.Fatalf("want 1 lockorder finding, got %v", fs)
	}
}

func TestLockOrderAcceptsDocumentedOrder(t *testing.T) {
	src := `package kernel
func (k *K) good(t *Task, i *Inode, f *File) {
	defer k.begin(t)()
	defer k.lockFile(f)()
	defer k.lockInode(i)()
}
`
	if fs := runOne(t, govet.LockOrder, src); len(fs) != 0 {
		t.Fatalf("documented order must be clean, got %v", fs)
	}
}

func TestLockOrderAssignedFormNotHeld(t *testing.T) {
	// An assigned unlock may be released early; it must not count as a
	// holder for later acquisitions.
	src := `package kernel
func (k *K) early(t *Task, i *Inode) {
	unlock := k.lockInode(i)
	unlock()
	defer k.begin(t)()
}
`
	if fs := runOne(t, govet.LockOrder, src); len(fs) != 0 {
		t.Fatalf("assigned-form lock must not be treated as held, got %v", fs)
	}
}

func TestLockOrderDirectiveSuppresses(t *testing.T) {
	src := `package kernel
func (k *K) odd(t *Task, i *Inode, f *File) {
	defer k.lockInode(i)()
	//govet:lockorder
	defer k.lockFile(f)()
}
`
	if fs := runOne(t, govet.LockOrder, src); len(fs) != 0 {
		t.Fatalf("directive should suppress, got %v", fs)
	}
}

// ---------------------------------------------------------------------------
// failclosed

func TestFailClosedFlagsSwallowedError(t *testing.T) {
	src := `package lsm
func (k *K) check(t *Task) error {
	if err := k.verify(t); err != nil {
		return nil
	}
	return nil
}
`
	fs := runOne(t, govet.FailClosed, src)
	if len(fs) != 1 || fs[0].Analyzer != "failclosed" || fs[0].Line != 4 {
		t.Fatalf("want 1 failclosed finding at line 4, got %v", fs)
	}
}

func TestFailClosedAcceptsPropagatedError(t *testing.T) {
	src := `package lsm
func (k *K) check(t *Task) error {
	if err := k.verify(t); err != nil {
		return err
	}
	return nil
}
`
	if fs := runOne(t, govet.FailClosed, src); len(fs) != 0 {
		t.Fatalf("propagating the error must be clean, got %v", fs)
	}
}

func TestFailClosedNestedIfReDecides(t *testing.T) {
	// A nested if re-decides on its own condition: its returns belong to
	// it, not to the outer error branch.
	src := `package lsm
func (k *K) check(t *Task) error {
	if err := k.verify(t); err != nil {
		if t.silent {
			return nil
		}
		return err
	}
	return nil
}
`
	if fs := runOne(t, govet.FailClosed, src); len(fs) != 0 {
		t.Fatalf("nested-if returns must not be attributed to the error branch, got %v", fs)
	}
}

func TestFailClosedDirectiveSuppresses(t *testing.T) {
	src := `package lsm
func (k *K) drop(t *Task) error {
	if err := k.verify(t); err != nil {
		// Silent drop IS the decision here.
		//govet:failopen
		return nil
	}
	return nil
}
`
	if fs := runOne(t, govet.FailClosed, src); len(fs) != 0 {
		t.Fatalf("failopen directive should suppress, got %v", fs)
	}
}

// ---------------------------------------------------------------------------
// the real tree

// repoRoot is the module root relative to this package.
const repoRoot = "../.."

// kernelSources are the files carrying the verdict-cache invalidation
// discipline; the seeded-removal regression below mutates copies of them.
var kernelSources = []string{
	"internal/kernel/lsm/lsm.go",
	"internal/kernel/lsm/login.go",
	"internal/kernel/lsm/persist.go",
}

func TestRepoIsClean(t *testing.T) {
	fs, err := govet.RunDir(repoRoot, govet.Analyzers())
	if err != nil {
		t.Fatalf("RunDir: %v", err)
	}
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestBumpSiteInventory pins the number of epoch-bump call sites the
// discipline covers. If you add or remove one, update this count AND make
// sure TestSeededBumpRemoval still proves each site is load-bearing.
func TestBumpSiteInventory(t *testing.T) {
	const wantSites = 14
	got := 0
	for _, rel := range kernelSources {
		for _, ln := range bumpLines(t, rel) {
			_ = ln
			got++
		}
	}
	if got != wantSites {
		t.Fatalf("BumpLabelEpoch call sites: got %d, want %d (update the inventory and the discipline docs together)", got, wantSites)
	}
}

// bumpLines returns the 1-based line numbers of BumpLabelEpoch call
// statements in the given source file.
func bumpLines(t *testing.T, rel string) []int {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(repoRoot, rel))
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	var out []int
	for i, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.Contains(trimmed, ".BumpLabelEpoch()") && !strings.HasPrefix(trimmed, "//") {
			out = append(out, i+1)
		}
	}
	return out
}

// TestSeededBumpRemoval is the soundness regression for epochbump: for
// every real bump site, removing JUST that call from a copy of the source
// must produce at least one epochbump finding. This proves each of the 14
// sites is load-bearing — none is shadowed by another bump in the same
// scope — and that the analyzer actually detects its removal.
func TestSeededBumpRemoval(t *testing.T) {
	for _, rel := range kernelSources {
		src, err := os.ReadFile(filepath.Join(repoRoot, rel))
		if err != nil {
			t.Fatalf("read %s: %v", rel, err)
		}
		lines := strings.Split(string(src), "\n")

		// Baseline: the pristine copy must be clean.
		base := govet.EpochBump.Run(parse(t, rel, string(src)))
		if len(base) != 0 {
			t.Fatalf("%s: baseline not clean: %v", rel, base)
		}

		for _, ln := range bumpLines(t, rel) {
			t.Run(fmt.Sprintf("%s:%d", filepath.Base(rel), ln), func(t *testing.T) {
				mutated := make([]string, len(lines))
				copy(mutated, lines)
				mutated[ln-1] = "//" + mutated[ln-1] // seed: drop this one bump
				fs := govet.EpochBump.Run(parse(t, rel, strings.Join(mutated, "\n")))
				if len(fs) == 0 {
					t.Fatalf("removing the bump at %s:%d went undetected — the site is shadowed or the analyzer regressed", rel, ln)
				}
			})
		}
	}
}
