// Package govet is a stdlib-only static-analysis mini framework for the
// Laminar kernel's own Go sources, with three analyzers proving the
// invariants the runtime cannot check for itself:
//
//	epochbump   every label/capability/security-blob mutation on a
//	            kernel object is followed by a BumpLabelEpoch call in
//	            the same function scope, so the verdict cache can never
//	            serve a stale allow/deny decision (DESIGN.md §14).
//	lockorder   lock acquisitions respect the strict task→file→inode
//	            order (internal/kernel/locking.go), so the sharded
//	            locking plan stays deadlock-free.
//	failclosed  error paths in the enforcement packages (lsm, netlabel,
//	            cluster) must not swallow a non-nil error by returning
//	            nil — fail-open enforcement is a silent leak.
//
// The framework deliberately avoids golang.org/x/tools: analyzers work
// on single-file syntax (go/parser + go/ast), which is all these
// invariants need, and keeps the checker dependency-free so it can gate
// CI before anything else builds.
//
// Suppression is explicit and auditable: a `//govet:<name>` directive on
// the flagged line, the line above it, or in the enclosing function's
// doc comment silences that analyzer there. The directives in tree:
//
//	//govet:fresh     epochbump: the mutated blob is not yet published
//	                  (lazy first-attach, pre-link init), so no cached
//	                  verdict can exist for it.
//	//govet:failopen  failclosed: the nil return IS the enforcement
//	                  decision (e.g. silent-drop pipe semantics).
package govet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer report. Field names are part of the CI JSON
// contract; keep them stable.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Func     string `json:"func,omitempty"`
	Msg      string `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Msg)
}

// File is one parsed source file.
type File struct {
	Path string
	Fset *token.FileSet
	AST  *ast.File
}

// Analyzer is one invariant checker. Run receives a single parsed file
// and returns its findings; AppliesTo (nil = everywhere) scopes the
// analyzer to the packages whose invariant it owns.
type Analyzer struct {
	Name      string
	Doc       string
	AppliesTo func(path string) bool
	Run       func(f *File) []Finding
}

// Analyzers returns the full checker suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{EpochBump, LockOrder, FailClosed}
}

// ParseSource parses one file from memory (fixtures, seeded mutations).
func ParseSource(path, src string) (*File, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &File{Path: path, Fset: fset, AST: af}, nil
}

// ParseFile parses one file from disk.
func ParseFile(path string) (*File, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSource(path, string(src))
}

// LoadDir parses every non-test .go file under root, skipping vendored
// and generated trees.
func LoadDir(root string) ([]*File, error) {
	var out []*File
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := ParseFile(path)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		out = append(out, f)
		return nil
	})
	return out, err
}

// RunFiles applies each analyzer to every file it applies to and returns
// the findings sorted by file, line, analyzer.
func RunFiles(files []*File, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, f := range files {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(f.Path) {
				continue
			}
			out = append(out, a.Run(f)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// RunDir is LoadDir + RunFiles.
func RunDir(root string, analyzers []*Analyzer) ([]Finding, error) {
	files, err := LoadDir(root)
	if err != nil {
		return nil, err
	}
	return RunFiles(files, analyzers), nil
}

// line returns n's 1-based source line.
func (f *File) line(n ast.Node) int { return f.Fset.Position(n.Pos()).Line }

// directiveLines collects the lines a `//govet:<name>` directive covers:
// the directive's own line plus the last line of its comment group, so a
// directive opening a multi-line explanation still anchors to the
// statement below the group.
func (f *File) directiveLines(name string) map[int]bool {
	want := "govet:" + name
	out := make(map[int]bool)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, want) {
				out[f.Fset.Position(c.Pos()).Line] = true
				out[f.Fset.Position(cg.End()).Line] = true
			}
		}
	}
	return out
}

// suppressed reports whether the directive silences a finding at node n:
// the directive sits on n's line, the line above, or in the enclosing
// function's doc comment.
func (f *File) suppressed(name string, n ast.Node, enclosing *ast.FuncDecl) bool {
	if enclosing != nil && enclosing.Doc != nil &&
		strings.Contains(enclosing.Doc.Text(), "govet:"+name) {
		return true
	}
	lines := f.directiveLines(name)
	ln := f.line(n)
	return lines[ln] || lines[ln-1]
}

// scope is one function body: a FuncDecl or a FuncLit nested inside one.
// Analyzers that reason "later in the same function" iterate scopes.
type scope struct {
	name string
	decl *ast.FuncDecl // enclosing declaration (for doc directives)
	body *ast.BlockStmt
}

// scopes enumerates every function scope in the file, innermost FuncLits
// as their own entries.
func (f *File) scopes() []scope {
	var out []scope
	for _, d := range f.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, scope{name: fd.Name.Name, decl: fd, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, scope{name: fd.Name.Name + " (func literal)", decl: fd, body: fl.Body})
			}
			return true
		})
	}
	return out
}

// walkScope visits the statements of one scope WITHOUT descending into
// nested function literals (those are their own scopes).
func walkScope(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}
