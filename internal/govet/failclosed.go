package govet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// FailClosed flags the fail-open shape in the enforcement packages: a
// `return nil` whose enclosing if-statement tested an error for
// non-nilness. Swallowing an error on an enforcement path converts a
// denial into an allow — a silent leak. Intentional silent-drop
// semantics (e.g. pipe capability writes, where success must not leak
// the verdict) carry a //govet:failopen directive at the return.
var FailClosed = &Analyzer{
	Name: "failclosed",
	Doc:  "enforcement error paths must not swallow errors by returning nil",
	AppliesTo: func(path string) bool {
		p := filepath.ToSlash(path)
		return strings.Contains(p, "internal/kernel/lsm/") ||
			strings.Contains(p, "internal/netlabel/") ||
			strings.Contains(p, "internal/cluster/") ||
			strings.Contains(p, "internal/budget/")
	},
	Run: runFailClosed,
}

// errishIdent reports whether the expression is an identifier that looks
// like an error binding (err, werr, sendErr, ...).
func errishIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && strings.Contains(strings.ToLower(id.Name), "err")
}

// condTestsErrNotNil reports whether cond contains `<errish> != nil`.
func condTestsErrNotNil(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.NEQ {
			x, y := b.X, b.Y
			if isNil(y) && errishIdent(x) || isNil(x) && errishIdent(y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func runFailClosed(f *File) []Finding {
	var out []Finding
	for _, sc := range f.scopes() {
		// Stack of enclosing if-statements whose condition tests an error.
		walkScope(sc.body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || !condTestsErrNotNil(ifs.Cond) {
				return true
			}
			// Look for `return nil` directly inside this error branch.
			// Nested ifs and function literals re-decide on their own
			// conditions, so they are not this branch's returns.
			ast.Inspect(ifs.Body, func(m ast.Node) bool {
				switch st := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.IfStmt:
					return false
				case *ast.ReturnStmt:
					if len(st.Results) == 1 && isNil(st.Results[0]) &&
						!f.suppressed("failopen", st, sc.decl) {
						out = append(out, Finding{
							Analyzer: "failclosed",
							File:     f.Path,
							Line:     f.line(st),
							Func:     sc.name,
							Msg: fmt.Sprintf("%s returns nil on an error path: enforcement must fail closed (annotate //govet:failopen if the silent success IS the decision)",
								sc.name),
						})
					}
				}
				return true
			})
			return true
		})
	}
	return out
}
