package govet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// mutationFields are the security-state fields whose assignment changes
// what the DIFC checks would decide: task/inode labels, capability sets
// (active and suspended), and the security blob pointers themselves.
// Any of them appearing anywhere in an assignment's LHS selector chain
// marks the statement as a label-mutation site.
var mutationFields = map[string]bool{
	"labels":    true,
	"caps":      true,
	"suspended": true,
	"Security":  true,
}

// EpochBump proves the verdict-cache invalidation discipline: every
// label-mutation site on a kernel object must be followed, in the same
// function scope, by a BumpLabelEpoch call. A mutation without a bump
// leaves epoch-tagged cached verdicts valid for the OLD labels — a
// silent stale-allow soundness hole (DESIGN.md §14). Sites that mutate
// a blob before it is published (lazy first-attach, pre-link inits)
// carry a //govet:fresh directive.
var EpochBump = &Analyzer{
	Name: "epochbump",
	Doc:  "label mutations must bump the verdict-cache epoch in the same scope",
	AppliesTo: func(path string) bool {
		return strings.Contains(filepath.ToSlash(path), "internal/kernel/")
	},
	Run: runEpochBump,
}

// selectorChainHits reports whether expr is a selector chain touching
// one of the mutation fields (s.labels, s.labels.S, ino.Security, ...),
// returning the deepest matching field name.
func selectorChainHits(expr ast.Expr) (string, bool) {
	for {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if mutationFields[sel.Sel.Name] {
			return sel.Sel.Name, true
		}
		expr = sel.X
	}
}

func runEpochBump(f *File) []Finding {
	var out []Finding
	for _, sc := range f.scopes() {
		type mut struct {
			pos   token.Pos
			field string
		}
		var muts []mut
		var bumps []token.Pos
		walkScope(sc.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if field, ok := selectorChainHits(lhs); ok {
						if !f.suppressed("fresh", st, sc.decl) {
							muts = append(muts, mut{pos: st.Pos(), field: field})
						}
					}
				}
			case *ast.CallExpr:
				if sel, ok := st.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "BumpLabelEpoch" {
					bumps = append(bumps, st.Pos())
				}
			}
			return true
		})
		for _, m := range muts {
			covered := false
			for _, b := range bumps {
				if b > m.pos {
					covered = true
					break
				}
			}
			if !covered {
				out = append(out, Finding{
					Analyzer: "epochbump",
					File:     f.Path,
					Line:     f.Fset.Position(m.pos).Line,
					Func:     sc.name,
					Msg: fmt.Sprintf("%s mutates .%s without a later BumpLabelEpoch in the same scope (stale-verdict hole; annotate //govet:fresh if the blob is unpublished)",
						sc.name, m.field),
				})
			}
		}
	}
	return out
}
