// Package chaos is the fault-injection harness for the Laminar
// reproduction: it boots a full system on a seeded fault plan, drives a
// randomized but fully deterministic workload of secret creation, attacker
// probes, pipe smuggling, panicking security regions, chat-transport
// traffic, capability churn and simulated reboots, and checks the
// invariants that must hold under ANY fault schedule:
//
//   - No DIFC-denied operation ever observably succeeds: an attacker
//     without capabilities never reads a byte of secret content, no matter
//     which faults fire.
//   - Denials on path operations are indistinguishable from nonexistence
//     (ENOENT, never EACCES — the errno covert channel).
//   - After any crash + recovery, every secret file is either correctly
//     labeled or quarantined (maximally restricted); never
//     unlabeled-readable.
//   - No live thread ends up outside a security region with the kernel
//     task still holding the region's secrecy label.
//   - Corrupted capability files can only shrink privilege, never mint it.
//
// Because every fault decision is a pure function of (seed, step) and the
// workload goroutine is single-threaded per seed, a failing seed replays
// the identical schedule byte-for-byte; the test harness runs many seeds
// in parallel under -race.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"laminar"
	"laminar/internal/apps/freecs"
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

// Config parameterizes one chaos run.
type Config struct {
	Seed int64
	Ops  int
	// Rates are the default fault rates for every injection site once
	// setup completes. Zero-value rates make the run fault-free (useful
	// as a workload sanity check).
	Rates faultinject.Rates
	// Record captures the fault schedule for failure reports.
	Record bool
	// BigLock runs the schedule on the serial big-lock kernel instead of
	// the default sharded one. The fault plan is a pure function of
	// (seed, step), so the same seed exercises the identical fault
	// schedule under both locking disciplines.
	BigLock bool
	// Telemetry attaches a private flight recorder (LevelDeny) to the
	// run's kernel and returns it in the report. Private, not
	// telemetry.Default: the test harness runs many seeds in parallel,
	// and their rings must not interleave.
	Telemetry bool
	// VerdictCache runs the schedule with epoch-keyed verdict memoization
	// enabled (kernel.WithVerdictCache). The optimized monitor must be
	// observably identical to the reference one, so the cached-vs-uncached
	// oracle replays the same seed with this flag flipped and requires
	// byte-identical verdict streams.
	VerdictCache bool
}

// Report is the outcome of a run.
type Report struct {
	Seed       int64
	Ops        int
	Faults     int
	Violations []string
	Schedule   string
	Recovery   lsm.RecoveryStats
	// Telemetry is the run's flight recorder (nil unless Config.Telemetry
	// was set). Still live after the run: the caller can Snapshot, Dump
	// and Replay its ring for the differential oracle.
	Telemetry *telemetry.Recorder
}

// secretFile tracks one fully written secret the attacker must never read.
type secretFile struct {
	path   string
	marker string
}

// run carries the state of one chaos execution.
type run struct {
	cfg  Config
	plan *faultinject.Plan
	sys  *laminar.System
	k    *kernel.Kernel
	mod  *lsm.Module
	rng  *rand.Rand

	secretTag difc.Tag
	secrets   []secretFile
	nfiles    int

	// owner is the principal holding the secret tag's capabilities;
	// attacker holds nothing. Either may be crash-killed by a fault and
	// respawned.
	owner    *kernel.Task
	attacker *kernel.Task

	// ownerVM/ownerThread exercise security regions.
	ownerVM     *laminar.VM
	ownerThread *laminar.Thread

	// savedCaps accumulates every capability ever legitimately saved for
	// the churn user; loads must never exceed the union.
	savedCaps difc.CapSet

	srv      *freecs.Server
	listener *freecs.Listener
	client   *freecs.Client

	violations []string
}

func (r *run) violate(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// Run executes one seeded chaos schedule and reports the outcome.
func Run(cfg Config) Report {
	if cfg.Ops <= 0 {
		cfg.Ops = 200
	}
	r := &run{
		cfg:  cfg,
		plan: faultinject.NewPlan(cfg.Seed),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Record {
		r.plan.Record()
	}
	var opts []kernel.Option
	if cfg.BigLock {
		opts = append(opts, kernel.WithBigLock())
	}
	if cfg.VerdictCache {
		opts = append(opts, kernel.WithVerdictCache())
	}
	var rec *telemetry.Recorder
	if cfg.Telemetry {
		rec = telemetry.NewRecorder()
		rec.SetLevel(telemetry.LevelDeny)
		opts = append(opts, kernel.WithTelemetry(rec))
	}
	r.sys = laminar.NewSystemWithInjector(r.plan, opts...)
	r.k = r.sys.Kernel()
	r.mod = r.sys.Module()

	// Fault-free setup: principals, the secret tag, the chat server. The
	// plan's rates are zero until setup completes, modeling faults that
	// start once the system is in steady state.
	r.setup()

	r.plan.SetDefaultRates(cfg.Rates)
	// The tcb label-sync path may fail but not crash-kill on its own
	// stream: crashes there kill the VM main thread so often that runs
	// degenerate into pure respawn loops. Error faults still exercise the
	// fail-closed region entry/exit paths.
	r.plan.SetRates("rt.sync", faultinject.Rates{Error: cfg.Rates.Error, Delay: cfg.Rates.Delay})

	for i := 0; i < cfg.Ops; i++ {
		r.respawnDead()
		switch r.rng.Intn(8) {
		case 0, 1:
			r.opCreateSecret()
		case 2:
			r.opAttackerProbe()
		case 3:
			r.opPipeSmuggle()
		case 4:
			r.opRegionPanic()
		case 5:
			r.opChat()
		case 6:
			r.opCapsChurn()
		case 7:
			r.opReboot()
		}
	}

	// Final reboot: recovery must leave every secret denied to the
	// attacker and every surviving thread label-clean.
	recStats := r.mod.RecoverLabels(r.k)
	r.finalInvariants()

	report := Report{
		Seed:       cfg.Seed,
		Ops:        cfg.Ops,
		Faults:     len(r.plan.Decisions()),
		Violations: r.violations,
		Recovery:   recStats,
		Telemetry:  rec,
	}
	if cfg.Record {
		report.Schedule = r.plan.Schedule()
	}
	return report
}

func (r *run) setup() {
	var err error
	if r.owner, err = r.sys.Login("owner"); err != nil {
		panic(fmt.Sprintf("chaos setup: login owner: %v", err))
	}
	if r.attacker, err = r.sys.Login("attacker"); err != nil {
		panic(fmt.Sprintf("chaos setup: login attacker: %v", err))
	}
	if r.secretTag, err = r.k.AllocTag(r.owner); err != nil {
		panic(fmt.Sprintf("chaos setup: alloc tag: %v", err))
	}
	if r.ownerVM, r.ownerThread, err = r.sys.LaunchVM(r.owner); err != nil {
		panic(fmt.Sprintf("chaos setup: launch vm: %v", err))
	}
	r.ownerThread.GrantCapability(r.secretTag, difc.CapBoth)
	if r.srv, err = freecs.NewServer(r.sys); err != nil {
		panic(fmt.Sprintf("chaos setup: chat server: %v", err))
	}
	if r.listener, err = r.srv.ListenAndServe("chaos.chat"); err != nil {
		panic(fmt.Sprintf("chaos setup: chat listener: %v", err))
	}
}

// respawnDead replaces crash-killed actors. A fresh principal receives the
// capabilities the old one held through the trusted setup path — the
// harness is the "operator" re-provisioning after a crash.
func (r *run) respawnDead() {
	if r.owner == nil || r.owner.Exited() {
		if t, err := r.sys.Login("owner"); err == nil {
			r.owner = t
			r.mod.GrantCapability(t, r.secretTag, difc.CapBoth)
		}
	}
	if r.attacker == nil || r.attacker.Exited() {
		if t, err := r.sys.Login("attacker"); err == nil {
			r.attacker = t
		}
	}
	if r.ownerThread == nil || r.ownerThread.Task().Exited() {
		if r.owner != nil && !r.owner.Exited() {
			if vm, th, err := r.sys.LaunchVM(r.owner); err == nil {
				r.ownerVM, r.ownerThread = vm, th
				th.GrantCapability(r.secretTag, difc.CapBoth)
			}
		}
	}
	if r.client == nil || !r.client.Alive() {
		r.client = nil
		if c, err := freecs.Dial(r.sys, "chaos.chat"); err == nil {
			r.client = c
		}
	}
}

func (r *run) secretLabels() difc.Labels {
	return difc.Labels{S: difc.NewLabel(r.secretTag)}
}

// opCreateSecret creates a labeled file and fills it with a marker. Only a
// fully acknowledged write is tracked: a torn or failed write may leave
// partial marker bytes, but then the create/write path reported an error
// and the file is not part of the attacker-must-not-read set. (Even torn
// files stay labeled or quarantined — opAttackerProbe checks tracked files
// and the final sweep re-checks everything.)
func (r *run) opCreateSecret() {
	if r.owner == nil || r.owner.Exited() {
		return
	}
	r.nfiles++
	path := fmt.Sprintf("/home/owner/s%d", r.nfiles)
	marker := fmt.Sprintf("MARKER-%d-%d", r.cfg.Seed, r.nfiles)
	fd, err := r.k.CreateFileLabeled(r.owner, path, 0o600, r.secretLabels())
	if err != nil {
		return
	}
	defer r.k.Close(r.owner, fd)
	if _, err := r.k.Write(r.owner, fd, []byte(marker)); err != nil {
		return
	}
	r.secrets = append(r.secrets, secretFile{path: path, marker: marker})
}

// opAttackerProbe has the attacker try to reach a tracked secret through
// every path the kernel offers. Any marker byte observed, or any denial
// that leaks existence (EACCES instead of ENOENT on a path op), is a
// violation.
func (r *run) opAttackerProbe() {
	if r.attacker == nil || r.attacker.Exited() || len(r.secrets) == 0 {
		return
	}
	s := r.secrets[r.rng.Intn(len(r.secrets))]
	r.probeSecret(s, "probe")
}

func (r *run) probeSecret(s secretFile, ctx string) {
	at := r.attacker
	if at == nil || at.Exited() {
		return
	}
	if _, err := r.k.Stat(at, s.path); err == nil {
		r.violate("%s: attacker Stat(%s) succeeded", ctx, s.path)
	} else if errors.Is(err, kernel.ErrAccess) {
		r.violate("%s: attacker Stat(%s) leaked existence: %v", ctx, s.path, err)
	}
	fd, err := r.k.Open(at, s.path, kernel.ORead)
	if err == nil {
		buf := make([]byte, 256)
		if n, rerr := r.k.Read(at, fd, buf); rerr == nil && n > 0 {
			r.violate("%s: attacker read %q from %s", ctx, buf[:n], s.path)
		} else {
			r.violate("%s: attacker Open(%s) succeeded", ctx, s.path)
		}
		r.k.Close(at, fd)
	} else if errors.Is(err, kernel.ErrAccess) {
		r.violate("%s: attacker Open(%s) leaked existence: %v", ctx, s.path, err)
	}
	if err := r.k.Unlink(at, s.path); err == nil {
		r.violate("%s: attacker Unlink(%s) succeeded", ctx, s.path)
	} else if errors.Is(err, kernel.ErrAccess) && !errors.Is(err, kernel.ErrAccessRead) {
		// Write-denied unlink would be EACCES only if the attacker could
		// already read the containing directory — it cannot, because the
		// home is admin-integrity... it is not; reads of /home/owner are
		// unlabeled. The lookup of the secret file itself is what denies,
		// and that must be ENOENT.
		r.violate("%s: attacker Unlink(%s) leaked existence: %v", ctx, s.path, err)
	}
}

// opPipeSmuggle taints the owner, writes a secret into a pipe, hands the
// read end to the attacker, and verifies the attacker cannot extract it:
// the pipe inode carries the owner's taint.
func (r *run) opPipeSmuggle() {
	if r.owner == nil || r.owner.Exited() || r.attacker == nil || r.attacker.Exited() {
		return
	}
	if err := r.k.SetTaskLabel(r.owner, kernel.Secrecy, difc.NewLabel(r.secretTag)); err != nil {
		return
	}
	// Whatever happens below, try to shed the taint before returning; a
	// failed drop leaves the owner tainted (safe — more restricted), and
	// the next op that needs an untainted owner will try again.
	defer func() {
		_ = r.k.SetTaskLabel(r.owner, kernel.Secrecy, difc.EmptyLabel)
	}()
	rfd, wfd, err := r.k.Pipe(r.owner)
	if err != nil {
		return
	}
	defer r.k.Close(r.owner, rfd)
	defer r.k.Close(r.owner, wfd)
	marker := fmt.Sprintf("PIPE-MARKER-%d", r.cfg.Seed)
	if _, err := r.k.Write(r.owner, wfd, []byte(marker)); err != nil {
		return
	}
	afd, err := r.k.DupTo(r.owner, rfd, r.attacker)
	if err != nil {
		return
	}
	defer r.k.Close(r.attacker, afd)
	buf := make([]byte, 64)
	if n, err := r.k.Read(r.attacker, afd, buf); err == nil && n > 0 {
		r.violate("pipe: attacker read %q from tainted pipe", buf[:n])
	}
}

// opRegionPanic runs security regions whose bodies fail in assorted ways —
// including panicking with a non-*Violation value from a nested region —
// and verifies the thread always comes back label-clean (or dead).
func (r *run) opRegionPanic() {
	th := r.ownerThread
	if th == nil || th.Task().Exited() {
		return
	}
	labels := r.secretLabels()
	caps := difc.NewCapSet(difc.NewLabel(r.secretTag), difc.NewLabel(r.secretTag))
	mode := r.rng.Intn(3)
	_ = th.Secure(labels, caps, func(reg *laminar.Region) {
		switch mode {
		case 0:
			// Touch the kernel so labels sync, then panic with a plain
			// value (not a *Violation).
			fd, err := r.k.Open(th.Task(), "/home/owner", kernel.ORead)
			if err == nil {
				r.k.Close(th.Task(), fd)
			}
			panic("chaos: plain panic inside region")
		case 1:
			// Nested region whose body panics with a non-*Violation
			// value; the inner exit must restore the outer labels before
			// the outer exit restores empty.
			_ = th.Secure(labels, caps, func(inner *laminar.Region) {
				panic(fmt.Errorf("chaos: error panic in nested region"))
			}, nil)
		default:
			// Plain body; exercise the non-panicking exit path too.
		}
	}, nil)
	if th.Task().Exited() {
		return // fail-closed exit killed the principal: acceptable
	}
	if got := r.mod.TaskLabels(th.Task()); got.S.Has(r.secretTag) {
		r.violate("region: thread kernel task still tainted %v after region exit", got)
	}
	if got := th.Labels(); !got.IsEmpty() {
		r.violate("region: thread VM labels %v nonempty after region exit", got)
	}
}

// opChat drives the FreeCS transport: the client logs in as a guest,
// chats, and tries to BAN — which must always be denied, faults or not.
func (r *run) opChat() {
	if r.client == nil || r.listener == nil {
		return
	}
	_ = r.client.Send("LOGIN guest" + fmt.Sprint(r.rng.Intn(1000)) + " guest\nSAY lobby hello\nBAN lobby victim\n")
	for i := 0; i < 4; i++ {
		r.listener.Pump()
	}
	for r.client.Recv() != "" {
		// Drain replies; their delivery is fault-dependent, so the
		// security check below goes through the API, not the wire.
	}
	// A guest can never ban, under any fault schedule: injected hook
	// errors deny, they never approve.
	if u, err := r.srv.Login(fmt.Sprintf("g%d", r.rng.Intn(1000)), freecs.RoleGuest); err == nil {
		if err := r.srv.Ban(u, "lobby", "victim"); err == nil {
			r.violate("chat: guest Ban succeeded")
		}
		r.srv.Logout(u)
	}
}

// opCapsChurn saves and reloads capability files under faults. Loads must
// never mint capabilities that were never saved.
func (r *run) opCapsChurn() {
	tag := r.secretTag
	caps := difc.NewCapSet(difc.NewLabel(tag), difc.EmptyLabel)
	if r.rng.Intn(2) == 0 {
		caps = difc.NewCapSet(difc.NewLabel(tag), difc.NewLabel(tag))
	}
	if err := r.sys.SaveUserCaps("churn", caps); err == nil {
		r.savedCaps = r.savedCaps.Union(caps)
	} else {
		// Even a failed save may have written a (valid or torn) copy of
		// exactly these capabilities; account for them in the union.
		r.savedCaps = r.savedCaps.Union(caps)
	}
	loaded, err := r.mod.LoadUserCaps(r.k, r.k.InitTask(), "churn")
	if err != nil {
		return
	}
	if !loaded.Plus().SubsetOf(r.savedCaps.Plus()) || !loaded.Minus().SubsetOf(r.savedCaps.Minus()) {
		r.violate("caps: loaded %v exceeds everything ever saved %v", loaded, r.savedCaps)
	}
}

// opReboot simulates a crash+reboot: all in-memory label state is dropped
// and rebuilt from persistent records, then the attacker re-probes a few
// secrets.
func (r *run) opReboot() {
	r.mod.RecoverLabels(r.k)
	for i := 0; i < 3 && len(r.secrets) > 0; i++ {
		s := r.secrets[r.rng.Intn(len(r.secrets))]
		r.probeSecret(s, "post-reboot probe")
	}
}

// finalInvariants sweeps every tracked secret after the final recovery:
// the attacker must be denied everywhere, and the rightful owner must see
// either the exact marker (correct labels) or a denial (quarantine) —
// never wrong bytes under a readable label.
func (r *run) finalInvariants() {
	r.respawnDead()
	for _, s := range r.secrets {
		r.probeSecret(s, "final sweep")
	}
	if r.owner == nil || r.owner.Exited() {
		return
	}
	if err := r.k.SetTaskLabel(r.owner, kernel.Secrecy, difc.NewLabel(r.secretTag)); err != nil {
		return
	}
	defer func() { _ = r.k.SetTaskLabel(r.owner, kernel.Secrecy, difc.EmptyLabel) }()
	for _, s := range r.secrets {
		fd, err := r.k.Open(r.owner, s.path, kernel.ORead)
		if err != nil {
			continue // quarantined or deleted: restricted is acceptable
		}
		buf := make([]byte, 256)
		n, rerr := r.k.Read(r.owner, fd, buf)
		r.k.Close(r.owner, fd)
		if rerr == nil && n > 0 && string(buf[:n]) != s.marker {
			r.violate("final: %s readable with wrong content %q (want %q)", s.path, buf[:n], s.marker)
		}
	}
}
