// Package budget is the quantitative flow-budget ledger: per-(tag, peer)
// declassification allowances charged fail-closed BEFORE any transport or
// persistence side effect can leak labeled bytes.
//
// The Laminar model (DESIGN.md §1-§5) is binary: a task holding t- may
// declassify tag t in unbounded volume. The ledger makes declassification
// volume a first-class resource. A fact is a CRDT-style semilattice
// element keyed by (tag, peer):
//
//	Fact{Spent, Limit, Epoch}
//	merge(a, b) = b                         if b.Epoch > a.Epoch
//	            = a                         if a.Epoch > b.Epoch
//	            = {max(spent), min(limit)}  if epochs equal
//
// so cluster-wide spend is monotone and deterministic: merging the same
// facts in any order, any number of times, converges (max/min are
// commutative, associative and idempotent), and an administrative limit
// change rides a higher epoch that wins wholesale.
//
// Absent facts mean UNTRACKED: the hot path for a tag nobody budgeted is
// one map lookup under a mutex and no persistence. Only explicitly
// budgeted (tag, peer) pairs pay the durability cost.
//
// Charging is fail closed end to end:
//
//   - the in-memory spent is raised before the durable write, and stays
//     raised if the write fails — a persist error denies the operation
//     but never un-spends;
//   - the durable write (shadow-write + flip, the PR 1 protocol) completes
//     before Charge acks, so an acknowledged charge survives a crash;
//   - crash recovery MERGES whatever decodes (commit, shadow, or both)
//     with spent=max — a torn flip can only round spend up, never down;
//   - a record where nothing decodes quarantines the fact to
//     {Spent: MaxUint64, Limit: 0}: zero budget, not infinite.
//
// Exhaustion is reported as the existing *difc.FlowError secrecy shape —
// the same error a missing t- capability produces — so a budget denial is
// indistinguishable from a capability denial in every verdict stream and
// replays through laminar-trace explain-denial unchanged.
package budget

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/telemetry"
)

// Store is the durable keyspace ledger facts live in. It is structurally
// identical to cluster.Store (PR 6) so the same MemStore a test harness
// keeps across simulated kills serves both; budget deliberately does not
// import cluster (the kernel imports budget, cluster imports the kernel).
type Store interface {
	Get(key string) ([]byte, bool)
	Set(key string, val []byte)
	Delete(key string)
	Keys() []string
}

// Key identifies one budget fact: a secrecy tag and the peer (remote node
// id) the spend is against. Peer 0 is the local context — capability
// relabels and region exits, where the "peer" is the unlabeled world.
type Key struct {
	Tag  difc.Tag
	Peer uint64
}

// Fact is the semilattice point for one key. Spent only grows (merge =
// max), Limit only shrinks within an epoch (merge = min), and a higher
// Epoch wins wholesale — that is how an administrator raises a limit
// without fighting the lattice.
type Fact struct {
	Spent uint64
	Limit uint64
	Epoch uint64
}

// Exhausted reports whether no further spend fits under the limit.
func (f Fact) Exhausted() bool { return f.Spent >= f.Limit }

// quarantined reports the recovery sentinel: zero limit, saturated spend.
func (f Fact) quarantined() bool { return f.Limit == 0 && f.Spent == math.MaxUint64 }

// Remaining returns the budget left under this fact.
func (f Fact) Remaining() uint64 {
	if f.Spent >= f.Limit {
		return 0
	}
	return f.Limit - f.Spent
}

// merge folds other into f per the semilattice and reports whether f
// changed. Equal-epoch merge takes max spend and min limit; the higher
// epoch wins wholesale.
func (f Fact) merge(other Fact) (Fact, bool) {
	switch {
	case other.Epoch > f.Epoch:
		return other, other != f
	case other.Epoch < f.Epoch:
		return f, false
	}
	m := Fact{Spent: maxU64(f.Spent, other.Spent), Limit: minU64(f.Limit, other.Limit), Epoch: f.Epoch}
	return m, m != f
}

// satAdd is saturating addition: a wrapped spend counter would silently
// un-exhaust a budget, so sums clamp at MaxUint64 instead.
func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxUint64
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// CostBytes converts a payload size to charge units: 1 unit per started
// KiB, minimum 1 — so a one-byte leak still spends.
func CostBytes(n int) uint64 {
	if n <= 0 {
		return 1
	}
	return uint64((n + 1023) / 1024)
}

// Ledger is the process-local budget authority. All methods are safe
// for concurrent use.
//
// The fact table is a copy-on-write map of atomic slots: mutators
// (SetLimit, MergeFacts, recovery) copy and republish the map under the
// ledger mutex, so the unexhausted charge hot path is LOCK-FREE — one
// atomic map load, one map hit, one compare-and-swap on the spend
// counter. When a durable store is attached, charging instead
// serializes under the mutex so the raise-then-persist ordering holds;
// the lock-free path serves the memory-only ledgers the kernel runs by
// default, which is where the -budgetgate ceiling binds.
//
// Lock order: callers may hold task locks when charging; the ledger
// mutex is leaf-level below them and is never held across calls back
// into the kernel (OnMutate callbacks run after the mutex is released).
type Ledger struct {
	mu    sync.Mutex // serializes mutators and persistence
	facts atomic.Pointer[map[Key]*slot]

	store Store
	inj   faultinject.Injector
	rec   *telemetry.Recorder

	onMutate func() // guarded by mu
}

// slot holds one fact's live counters. Spent is raced by lock-free
// chargers (compare-and-swap); limit and epoch are written only under
// the ledger mutex and read atomically everywhere. noted latches
// "exhaustion already reported to onMutate" and resets when a limit
// change or merge reopens the budget.
type slot struct {
	spent atomic.Uint64
	limit atomic.Uint64
	epoch atomic.Uint64
	noted atomic.Bool
}

func newSlot(f Fact) *slot {
	s := &slot{}
	s.spent.Store(f.Spent)
	s.limit.Store(f.Limit)
	s.epoch.Store(f.Epoch)
	return s
}

// fact reads the slot field by field. A reader racing an administrative
// change can see a mixed view; that is equivalent to ordering its
// operation immediately before or after the change, and the semilattice
// keeps either order safe.
func (s *slot) fact() Fact {
	return Fact{Spent: s.spent.Load(), Limit: s.limit.Load(), Epoch: s.epoch.Load()}
}

// table returns the current fact map. The map itself is immutable;
// mutators publish a fresh copy.
func (l *Ledger) table() map[Key]*slot { return *l.facts.Load() }

// installLocked publishes a new table containing s at k. Callers hold
// l.mu (or, during New, the ledger is not yet shared).
func (l *Ledger) installLocked(k Key, s *slot) {
	old := l.table()
	next := make(map[Key]*slot, len(old)+1)
	for ok, os := range old {
		next[ok] = os
	}
	next[k] = s
	l.facts.Store(&next)
}

// Option configures a Ledger.
type Option func(*Ledger)

// WithStore attaches the durable store; facts persist through the
// shadow-write protocol and are recovered (merged, fail closed) by New.
func WithStore(s Store) Option { return func(l *Ledger) { l.store = s } }

// WithInjector attaches the deterministic fault plan consulted at the
// budget.ckpt.* checkpoint sites.
func WithInjector(inj faultinject.Injector) Option { return func(l *Ledger) { l.inj = inj } }

// WithRecorder attaches a telemetry recorder for the budget.* counters.
func WithRecorder(rec *telemetry.Recorder) Option { return func(l *Ledger) { l.rec = rec } }

// New builds a ledger and, if a store is attached, recovers every
// persisted fact. Recovery merges whatever decodes and quarantines
// undecodable records to zero budget.
func New(opts ...Option) *Ledger {
	l := &Ledger{}
	empty := make(map[Key]*slot)
	l.facts.Store(&empty)
	for _, o := range opts {
		o(l)
	}
	l.recover()
	return l
}

// OnMutate registers the callback fired (outside the ledger mutex) after
// any mutation that could invalidate a previously-allowed verdict: an
// exhaustion transition, a limit drop, a merge that tightened a fact, or
// a quarantine. The kernel registers a global label-epoch bump here so
// the PR 7 verdict cache can never serve a stale allow past exhaustion.
func (l *Ledger) OnMutate(fn func()) {
	l.mu.Lock()
	l.onMutate = fn
	l.mu.Unlock()
}

// SetLimit installs or replaces the budget for (tag, peer). The new fact
// keeps the accumulated spend and rides a bumped epoch so it wins
// wholesale over every older fact in the cluster. Returns the persist
// error, if any; the in-memory fact is installed regardless (fail
// closed: a limit you could not persist still constrains this boot).
func (l *Ledger) SetLimit(tag difc.Tag, peer, limit uint64) error {
	l.mu.Lock()
	k := Key{Tag: tag, Peer: peer}
	s, ok := l.table()[k]
	if !ok {
		s = newSlot(Fact{})
		l.installLocked(k, s)
	}
	old := s.fact()
	if old.quarantined() {
		// The quarantine sentinel is not real accounting; a deliberate
		// new limit starts the pair's ledger over.
		s.spent.Store(0)
	}
	s.limit.Store(limit)
	s.epoch.Store(old.Epoch + 1)
	s.noted.Store(false)
	err := l.persistLocked(k, s.fact())
	l.mu.Unlock()
	l.count("budget.limit.set", 1)
	l.mutated()
	return err
}

// Fact returns the current fact for (tag, peer) and whether one exists.
// An absent fact means the pair is untracked (unlimited).
func (l *Ledger) Fact(tag difc.Tag, peer uint64) (Fact, bool) {
	s, ok := l.table()[Key{Tag: tag, Peer: peer}]
	if !ok {
		return Fact{}, false
	}
	return s.fact(), true
}

// Tracked reports whether any fact exists for tag against any peer —
// the cheap pre-check hot paths use to skip per-byte cost math for
// unbudgeted tags.
func (l *Ledger) Tracked(tag difc.Tag) bool {
	for k := range l.table() {
		if k.Tag == tag {
			return true
		}
	}
	return false
}

// Exhausted reports whether (tag, peer) is tracked and has no remaining
// budget.
func (l *Ledger) Exhausted(tag difc.Tag, peer uint64) bool {
	s, ok := l.table()[Key{Tag: tag, Peer: peer}]
	return ok && s.fact().Exhausted()
}

// Charge spends cost units of tag's budget against peer. It must be
// called BEFORE the side effect it meters (queueing a frame, committing
// a relabel, leaving a region): a nil return is the permission to
// proceed, and by then the raised spend is durable.
//
// The returned error on exhaustion (or persist failure — fail closed) is
// the exact *difc.FlowError a missing minus-capability secrecy denial
// produces, so budget denials are indistinguishable from capability
// denials in every verdict stream and replay through explain-denial.
//
// Untracked (tag, peer) pairs charge nothing and always succeed.
func (l *Ledger) Charge(op string, tag difc.Tag, peer, cost uint64) error {
	if cost == 0 {
		cost = 1
	}
	k := Key{Tag: tag, Peer: peer}
	if l.store != nil {
		return l.chargeDurable(op, k, cost)
	}
	s, ok := l.table()[k]
	if !ok {
		return nil
	}
	denied, crossed := chargeSlot(s, cost)
	if crossed {
		l.count("budget.exhausted", 1)
	}
	if denied {
		l.count("budget.denied", 1)
	} else {
		l.count("budget.charged", 1)
	}
	if crossed {
		l.mutated()
	}
	if denied {
		return ExhaustedError(op, tag)
	}
	return nil
}

// chargeSlot spends cost on s lock-free. denied reports exhaustion;
// crossed reports that this call was the first to observe it (the
// caller owes an onMutate notification).
func chargeSlot(s *slot, cost uint64) (denied, crossed bool) {
	limit := s.limit.Load()
	for {
		cur := s.spent.Load()
		newSpent := satAdd(cur, cost)
		if cur >= limit || newSpent > limit {
			return true, s.noted.CompareAndSwap(false, true)
		}
		if s.spent.CompareAndSwap(cur, newSpent) {
			if newSpent >= limit {
				return false, s.noted.CompareAndSwap(false, true)
			}
			return false, false
		}
	}
}

// chargeDurable is the store-backed charge, serialized under the mutex
// so the raised spend is durable before the charge acks. Fail closed:
// the in-memory spend is raised first and stays raised if the write
// fails — the operation is denied and the ledger may over-count across
// a crash, never under-count.
func (l *Ledger) chargeDurable(op string, k Key, cost uint64) error {
	l.mu.Lock()
	s, ok := l.table()[k]
	if !ok {
		l.mu.Unlock()
		return nil
	}
	f := s.fact()
	newSpent := satAdd(f.Spent, cost)
	if f.Exhausted() || newSpent > f.Limit {
		notify := s.noted.CompareAndSwap(false, true)
		l.mu.Unlock()
		l.count("budget.denied", 1)
		if notify {
			l.count("budget.exhausted", 1)
			l.mutated()
		}
		return ExhaustedError(op, k.Tag)
	}
	s.spent.Store(newSpent)
	err := l.persistLocked(k, s.fact())
	nowExhausted := newSpent >= f.Limit && s.noted.CompareAndSwap(false, true)
	l.mu.Unlock()
	l.count("budget.charged", 1)
	if nowExhausted {
		l.count("budget.exhausted", 1)
	}
	if err != nil {
		l.count("budget.persist.fail", 1)
		l.mutated()
		return ExhaustedError(op, k.Tag)
	}
	if nowExhausted {
		l.mutated()
	}
	return nil
}

// ChargeLabel charges every tag of a secrecy label the same cost against
// peer, stopping at the first denial. Partial spends before the denial
// stand (they metered real budget headroom the caller is about to not
// use — rounding up, never down). This is the per-declassify / per-drain
// hot path the -budgetgate ceiling binds: on a memory-only ledger it is
// lock-free and allocation-free — one table load, then a map hit and a
// compare-and-swap per tracked tag.
func (l *Ledger) ChargeLabel(op string, lab difc.Label, peer, cost uint64) error {
	if lab.IsEmpty() {
		return nil
	}
	if cost == 0 {
		cost = 1
	}
	if l.store != nil {
		return l.chargeLabelDurable(op, lab, peer, cost)
	}
	m := l.table()
	var (
		deniedTag difc.Tag
		denied    bool
		charged   uint64
		exhausted uint64
	)
	lab.Each(func(tag difc.Tag) bool {
		s, ok := m[Key{Tag: tag, Peer: peer}]
		if !ok {
			return true // untracked: free
		}
		d, crossed := chargeSlot(s, cost)
		if crossed {
			exhausted++
		}
		if d {
			deniedTag, denied = tag, true
			return false
		}
		charged++
		return true
	})
	if charged > 0 {
		l.count("budget.charged", charged)
	}
	if exhausted > 0 {
		l.count("budget.exhausted", exhausted)
		l.mutated()
	}
	if denied {
		l.count("budget.denied", 1)
		return ExhaustedError(op, deniedTag)
	}
	return nil
}

// chargeLabelDurable is ChargeLabel for a store-backed ledger: the whole
// label charges under one mutex acquisition, each tag raising its spend
// and persisting before the next (see chargeDurable for the fail-closed
// ordering).
func (l *Ledger) chargeLabelDurable(op string, lab difc.Label, peer, cost uint64) error {
	var (
		deniedTag  difc.Tag
		denied     bool
		charged    uint64
		exhausted  uint64
		persistErr bool
		notify     bool
	)
	l.mu.Lock()
	m := l.table()
	lab.Each(func(tag difc.Tag) bool {
		s, ok := m[Key{Tag: tag, Peer: peer}]
		if !ok {
			return true // untracked: free
		}
		f := s.fact()
		newSpent := satAdd(f.Spent, cost)
		if f.Exhausted() || newSpent > f.Limit {
			if s.noted.CompareAndSwap(false, true) {
				exhausted++
				notify = true
			}
			deniedTag, denied = tag, true
			return false
		}
		s.spent.Store(newSpent)
		charged++
		err := l.persistLocked(Key{Tag: tag, Peer: peer}, s.fact())
		if newSpent >= f.Limit && s.noted.CompareAndSwap(false, true) {
			exhausted++
			notify = true
		}
		if err != nil {
			// Fail closed: the raised spend stands, the operation is
			// denied (see chargeDurable).
			persistErr, notify = true, true
			deniedTag, denied = tag, true
			return false
		}
		return true
	})
	l.mu.Unlock()
	if charged > 0 {
		l.count("budget.charged", charged)
	}
	if denied && !persistErr {
		l.count("budget.denied", 1)
	}
	if exhausted > 0 {
		l.count("budget.exhausted", exhausted)
	}
	if persistErr {
		l.count("budget.persist.fail", 1)
	}
	if notify {
		l.mutated()
	}
	if denied {
		return ExhaustedError(op, deniedTag)
	}
	return nil
}

// ExhaustedError builds the denial for op on tag: the secrecy FlowError
// for {S(tag)} -> {} — exactly the shape difc.CheckFlow produces when a
// task without t- tries to move t-labeled data to an unlabeled sink, so
// telemetry replay re-runs the check and MATCHES.
func ExhaustedError(op string, tag difc.Tag) *difc.FlowError {
	return &difc.FlowError{
		Op:   op,
		Src:  difc.Labels{S: difc.NewLabel(tag)},
		Dst:  difc.Labels{},
		Rule: "secrecy",
	}
}

// mutated fires the OnMutate callback, outside the ledger mutex.
func (l *Ledger) mutated() {
	l.mu.Lock()
	fn := l.onMutate
	l.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (l *Ledger) count(name string, delta uint64) {
	if l.rec == nil {
		return
	}
	l.rec.M.Extra.Get(name).Add(0, delta)
}

// ---- cluster fact exchange ----------------------------------------------

// factWireSize is the encoded size of one fact: tag, peer, spent, limit,
// epoch — five u64s.
const factWireSize = 5 * 8

// MaxFactsBlob bounds an encoded fact set (mirrors the stats blob cap).
const MaxFactsBlob = 64 * 1024

// ExportFacts encodes every fact for the cluster control plane: u16
// count, then count fixed-width records in sorted key order (the
// encoding is deterministic so identical ledgers produce identical
// blobs). Returns nil when the ledger is empty.
func (l *Ledger) ExportFacts() []byte {
	m := l.table()
	if len(m) == 0 {
		return nil
	}
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tag != keys[j].Tag {
			return keys[i].Tag < keys[j].Tag
		}
		return keys[i].Peer < keys[j].Peer
	})
	buf := make([]byte, 0, 2+len(keys)*factWireSize)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(keys)))
	for _, k := range keys {
		f := m[k].fact()
		buf = binary.BigEndian.AppendUint64(buf, uint64(k.Tag))
		buf = binary.BigEndian.AppendUint64(buf, k.Peer)
		buf = binary.BigEndian.AppendUint64(buf, f.Spent)
		buf = binary.BigEndian.AppendUint64(buf, f.Limit)
		buf = binary.BigEndian.AppendUint64(buf, f.Epoch)
	}
	return buf
}

// DecodeFacts parses an ExportFacts blob. Strict framing: a short body,
// trailing bytes, or an oversized blob is an error and the whole blob is
// rejected — a half-parsed fact set must never half-merge.
func DecodeFacts(b []byte) (map[Key]Fact, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) > MaxFactsBlob {
		return nil, fmt.Errorf("budget: facts blob %d bytes exceeds cap %d", len(b), MaxFactsBlob)
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("budget: facts blob truncated (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != n*factWireSize {
		return nil, fmt.Errorf("budget: facts blob: want %d records (%d bytes), have %d bytes", n, n*factWireSize, len(b))
	}
	out := make(map[Key]Fact, n)
	for i := 0; i < n; i++ {
		rec := b[i*factWireSize:]
		k := Key{Tag: difc.Tag(binary.BigEndian.Uint64(rec)), Peer: binary.BigEndian.Uint64(rec[8:])}
		out[k] = Fact{
			Spent: binary.BigEndian.Uint64(rec[16:]),
			Limit: binary.BigEndian.Uint64(rec[24:]),
			Epoch: binary.BigEndian.Uint64(rec[32:]),
		}
	}
	return out, nil
}

// MergeFacts folds a decoded fact set into the ledger with the
// semilattice merge and reports how many facts changed. Facts the ledger
// has never seen are adopted as-is (a peer budgeted a pair we had no
// opinion on). Changed facts persist; a tightening merge fires OnMutate.
func (l *Ledger) MergeFacts(facts map[Key]Fact) int {
	if len(facts) == 0 {
		return 0
	}
	l.mu.Lock()
	changed := 0
	tightened := false
	for k, in := range facts {
		s, ok := l.table()[k]
		if !ok {
			l.installLocked(k, newSlot(in))
			l.persistLocked(k, in)
			changed++
			if in.Exhausted() {
				tightened = true
			}
			continue
		}
		cur := s.fact()
		m, dirty := cur.merge(in)
		if !dirty {
			continue
		}
		s.limit.Store(m.Limit)
		s.epoch.Store(m.Epoch)
		mergeSpent(s, cur, m)
		if m.Epoch > cur.Epoch || m.Limit < cur.Limit || (m.Exhausted() && !cur.Exhausted()) {
			s.noted.Store(false)
			tightened = true
		}
		l.persistLocked(k, s.fact())
		changed++
	}
	l.mu.Unlock()
	if changed > 0 {
		l.count("budget.merge.facts", uint64(changed))
	}
	if tightened {
		l.mutated()
	}
	return changed
}

// mergeSpent folds merged spend m into the live counter. A wholesale
// epoch win replaces the counter (an administrative reset absorbs any
// racing charge into its new baseline, exactly as a charge ordered
// before the reset would be); an equal-epoch max must CAS upward so a
// racing lock-free charge is never rolled back.
func mergeSpent(s *slot, cur, m Fact) {
	if m.Epoch != cur.Epoch {
		s.spent.Store(m.Spent)
		return
	}
	for {
		live := s.spent.Load()
		if m.Spent <= live {
			return
		}
		if s.spent.CompareAndSwap(live, m.Spent) {
			return
		}
	}
}

// Snapshot returns a copy of every fact, for inspection and tests.
func (l *Ledger) Snapshot() map[Key]Fact {
	m := l.table()
	out := make(map[Key]Fact, len(m))
	for k, s := range m {
		out[k] = s.fact()
	}
	return out
}

// ---- persistence: shadow-write + flip, merge-on-recover ------------------

// Per-fact records reuse the PR 1 protocol byte for byte (magic "LMB1",
// crc32 seal, <key>#shadow staging) with one deliberate divergence in
// recovery: where the cluster change engine trusts a valid COMMIT and
// ignores the shadow, the ledger MERGES every record that decodes. A
// crash between the shadow write and the flip leaves the newer spend in
// the shadow; preferring the stale commit would round spend DOWN. The
// semilattice makes the merge safe: max(spent) is exactly "never
// under-count".

var recMagic = [4]byte{'L', 'M', 'B', '1'}

const (
	keyPrefix    = "budget/"
	shadowSuffix = "#shadow"
)

func storeKey(k Key) string {
	return keyPrefix + strconv.FormatUint(uint64(k.Tag), 10) + "/" + strconv.FormatUint(k.Peer, 10)
}

// parseStoreKey recovers the Key from a store key name, so a quarantined
// fact (torn payload) still knows which (tag, peer) to zero out.
func parseStoreKey(s string) (Key, bool) {
	s, ok := strings.CutPrefix(s, keyPrefix)
	if !ok {
		return Key{}, false
	}
	tagStr, peerStr, ok := strings.Cut(s, "/")
	if !ok {
		return Key{}, false
	}
	tag, err1 := strconv.ParseUint(tagStr, 10, 64)
	peer, err2 := strconv.ParseUint(peerStr, 10, 64)
	if err1 != nil || err2 != nil {
		return Key{}, false
	}
	return Key{Tag: difc.Tag(tag), Peer: peer}, true
}

func sealFact(f Fact) []byte {
	buf := make([]byte, 0, 4+3*8+4)
	buf = append(buf, recMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, f.Spent)
	buf = binary.BigEndian.AppendUint64(buf, f.Limit)
	buf = binary.BigEndian.AppendUint64(buf, f.Epoch)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func openFact(rec []byte) (Fact, error) {
	if len(rec) != 4+3*8+4 {
		return Fact{}, fmt.Errorf("budget record truncated (%d bytes)", len(rec))
	}
	if [4]byte(rec[:4]) != recMagic {
		return Fact{}, fmt.Errorf("budget record bad magic %q", rec[:4])
	}
	body, sum := rec[:len(rec)-4], rec[len(rec)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(sum) {
		return Fact{}, fmt.Errorf("budget record checksum mismatch")
	}
	return Fact{
		Spent: binary.BigEndian.Uint64(body[4:]),
		Limit: binary.BigEndian.Uint64(body[12:]),
		Epoch: binary.BigEndian.Uint64(body[20:]),
	}, nil
}

// ckptFault consults the injector at a checkpoint step. Both Error and
// Crash tear the record in progress; the caller denies the charge either
// way (fail closed) and recovery repairs the tear.
func (l *Ledger) ckptFault(site string) error {
	if l.inj == nil {
		return nil
	}
	switch l.inj.At(site) {
	case faultinject.Error, faultinject.Crash:
		return fmt.Errorf("budget: injected fault at %s", site)
	default:
		return nil
	}
}

// persistLocked runs shadow-write + flip for one fact. Called with l.mu
// held; a nil store persists nothing (memory-only ledger). Under an
// injected fault the step in progress tears — half the record lands —
// and the error propagates so the charge is denied.
func (l *Ledger) persistLocked(k Key, f Fact) error {
	if l.store == nil {
		return nil
	}
	key := storeKey(k)
	rec := sealFact(f)
	if err := l.ckptFault("budget.ckpt.shadow"); err != nil {
		l.store.Set(key+shadowSuffix, rec[:len(rec)/2])
		return err
	}
	l.store.Set(key+shadowSuffix, rec)
	if err := l.ckptFault("budget.ckpt.commit"); err != nil {
		l.store.Set(key, rec[:len(rec)/2])
		return err
	}
	l.store.Set(key, rec)
	if err := l.ckptFault("budget.ckpt.clear"); err != nil {
		return err // shadow left behind; both records valid, recovery merges
	}
	l.store.Delete(key + shadowSuffix)
	return nil
}

// recover loads every persisted fact at boot. Per key: merge whatever
// decodes (commit, shadow, or both — spent=max rounds a torn flip UP);
// if records exist but nothing decodes, the fact is QUARANTINED to
// {Spent: MaxUint64, Limit: 0} — zero budget until an administrator
// installs a fresh limit under a higher epoch. Recovery writes bypass
// fault injection: this is the quiesced fsck pass.
func (l *Ledger) recover() {
	if l.store == nil {
		return
	}
	seen := make(map[string]bool)
	for _, key := range l.store.Keys() {
		base := strings.TrimSuffix(key, shadowSuffix)
		if !strings.HasPrefix(base, keyPrefix) || seen[base] {
			continue
		}
		seen[base] = true
		k, ok := parseStoreKey(base)
		if !ok {
			continue
		}
		commit, hasCommit := l.store.Get(base)
		shadow, hasShadow := l.store.Get(base + shadowSuffix)
		var f Fact
		valid := false
		if hasCommit {
			if p, err := openFact(commit); err == nil {
				f, valid = p, true
			}
		}
		if hasShadow {
			if p, err := openFact(shadow); err == nil {
				if valid {
					f, _ = f.merge(p)
				} else {
					f, valid = p, true
				}
			}
		}
		if !valid {
			// Nothing trustworthy: quarantine to zero budget. The fact
			// merges safely cluster-wide (max spend, min limit) and only
			// a deliberate higher-epoch SetLimit clears it.
			f = Fact{Spent: math.MaxUint64, Limit: 0, Epoch: 0}
			l.count("budget.quarantined", 1)
		}
		l.installLocked(k, newSlot(f))
		l.store.Set(base, sealFact(f))
		l.store.Delete(base + shadowSuffix)
	}
}
