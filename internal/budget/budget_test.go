package budget

import (
	"errors"
	"math"
	"sort"
	"sync"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
)

// memStore mirrors cluster.MemStore locally (budget must not depend on
// cluster) — a map the test keeps across simulated reboots.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *memStore) Set(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
}

func (s *memStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
}

func (s *memStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxUint64, 1, math.MaxUint64},
		{math.MaxUint64 - 1, 1, math.MaxUint64},
		{math.MaxUint64 - 1, 2, math.MaxUint64},
		{math.MaxUint64 - 1, math.MaxUint64, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Errorf("satAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestChargeSaturationRegression is the ISSUE 10 overflow regression: a
// spend counter sitting at MaxUint64-1 must clamp, stay exhausted, and
// never wrap back into budget.
func TestChargeSaturationRegression(t *testing.T) {
	l := New()
	const tag = difc.Tag(7)
	if err := l.SetLimit(tag, 0, math.MaxUint64); err != nil {
		t.Fatalf("SetLimit: %v", err)
	}
	// Force the counter to the edge.
	l.table()[Key{Tag: tag}].spent.Store(math.MaxUint64 - 1)

	// A huge charge saturates to MaxUint64 == Limit: still within budget.
	if err := l.Charge("send", tag, 0, 1<<40); err != nil {
		t.Fatalf("saturating charge should fit under MaxUint64 limit: %v", err)
	}
	got, _ := l.Fact(tag, 0)
	if got.Spent != math.MaxUint64 {
		t.Fatalf("spent = %d, want saturated MaxUint64", got.Spent)
	}
	if !got.Exhausted() {
		t.Fatal("fact at MaxUint64/MaxUint64 must be exhausted")
	}
	// Any further charge must deny — a wrapping add would have
	// un-exhausted the budget here.
	if err := l.Charge("send", tag, 0, 1); err == nil {
		t.Fatal("charge after saturation must deny")
	}
	if got, _ := l.Fact(tag, 0); got.Spent != math.MaxUint64 {
		t.Fatalf("denied charge moved spent to %d", got.Spent)
	}
}

func TestChargeUntrackedIsFree(t *testing.T) {
	l := New()
	for i := 0; i < 100; i++ {
		if err := l.Charge("send", difc.Tag(42), 9, 1000); err != nil {
			t.Fatalf("untracked charge %d denied: %v", i, err)
		}
	}
	if _, ok := l.Fact(difc.Tag(42), 9); ok {
		t.Fatal("untracked charge created a fact")
	}
}

func TestChargeExhaustion(t *testing.T) {
	l := New()
	const tag = difc.Tag(3)
	mutations := 0
	l.OnMutate(func() { mutations++ })
	l.SetLimit(tag, 0, 3)
	if mutations != 1 {
		t.Fatalf("SetLimit fired %d mutations, want 1", mutations)
	}
	for i := 0; i < 3; i++ {
		if err := l.Charge("drop", tag, 0, 1); err != nil {
			t.Fatalf("charge %d within budget denied: %v", i, err)
		}
	}
	if mutations != 2 {
		t.Fatalf("exhaustion transition fired %d mutations, want 2", mutations)
	}
	if err := l.Charge("drop", tag, 0, 1); err == nil {
		t.Fatal("charge past limit must deny")
	}
	// Repeated denials must not re-fire OnMutate (no epoch-bump storm).
	l.Charge("drop", tag, 0, 1)
	l.Charge("drop", tag, 0, 1)
	if mutations != 2 {
		t.Fatalf("repeat denials fired %d mutations, want 2", mutations)
	}
	// Peer 1 is a different key: still unlimited.
	if err := l.Charge("drop", tag, 1, 1); err != nil {
		t.Fatalf("other peer charge denied: %v", err)
	}
}

// TestExhaustedErrorReplays pins the indistinguishability contract at the
// error level: the exhaustion error must be exactly what CheckFlow
// produces for {S(tag)} -> {}, so explain-denial's re-run MATCHES.
func TestExhaustedErrorReplays(t *testing.T) {
	e := ExhaustedError("send", difc.Tag(5))
	replay := difc.CheckFlow("send", e.Src, e.Dst)
	var fe *difc.FlowError
	if !errors.As(replay, &fe) {
		t.Fatalf("CheckFlow on exhaustion operands allowed: %v", replay)
	}
	if fe.Rule != e.Rule || fe.Error() != e.Error() || !fe.Delta().Equal(e.Delta()) {
		t.Fatalf("replayed denial diverges: %v vs %v", fe, e)
	}
}

func TestMergeSemilattice(t *testing.T) {
	a := Fact{Spent: 10, Limit: 100, Epoch: 2}
	b := Fact{Spent: 30, Limit: 80, Epoch: 2}
	m, dirty := a.merge(b)
	if !dirty || m != (Fact{Spent: 30, Limit: 80, Epoch: 2}) {
		t.Fatalf("equal-epoch merge = %+v (dirty=%v)", m, dirty)
	}
	// Commutative.
	m2, _ := b.merge(a)
	if m2 != m {
		t.Fatalf("merge not commutative: %+v vs %+v", m2, m)
	}
	// Idempotent.
	if mi, dirty := m.merge(m); dirty || mi != m {
		t.Fatalf("merge not idempotent: %+v dirty=%v", mi, dirty)
	}
	// Higher epoch wins wholesale, even with lower spend.
	reset := Fact{Spent: 0, Limit: 1000, Epoch: 3}
	m3, _ := m.merge(reset)
	if m3 != reset {
		t.Fatalf("higher epoch did not win wholesale: %+v", m3)
	}
	// And is not overwritten by stragglers from the old epoch.
	if m4, dirty := m3.merge(b); dirty || m4 != reset {
		t.Fatalf("stale epoch overwrote: %+v dirty=%v", m4, dirty)
	}
	// Associative over a random-ish triple.
	c := Fact{Spent: 25, Limit: 90, Epoch: 2}
	ab, _ := a.merge(b)
	abc1, _ := ab.merge(c)
	bc, _ := b.merge(c)
	abc2, _ := a.merge(bc)
	if abc1 != abc2 {
		t.Fatalf("merge not associative: %+v vs %+v", abc1, abc2)
	}
}

func TestFactsCodecRoundTrip(t *testing.T) {
	l := New()
	l.SetLimit(difc.Tag(1), 0, 50)
	l.SetLimit(difc.Tag(1), 7, 60)
	l.SetLimit(difc.Tag(9), 3, 70)
	l.Charge("send", difc.Tag(1), 7, 5)

	blob := l.ExportFacts()
	facts, err := DecodeFacts(blob)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	want := l.Snapshot()
	if len(facts) != len(want) {
		t.Fatalf("decoded %d facts, want %d", len(facts), len(want))
	}
	for k, f := range want {
		if facts[k] != f {
			t.Fatalf("fact %+v decoded as %+v, want %+v", k, facts[k], f)
		}
	}
	// Deterministic encoding.
	if blob2 := l.ExportFacts(); string(blob2) != string(blob) {
		t.Fatal("ExportFacts is not deterministic")
	}
	// Strict framing: trailing bytes reject the whole blob.
	if _, err := DecodeFacts(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeFacts(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := DecodeFacts([]byte{0xff}); err == nil {
		t.Fatal("1-byte blob accepted")
	}
	// Empty is fine.
	if facts, err := DecodeFacts(nil); err != nil || facts != nil {
		t.Fatalf("empty blob: %v %v", facts, err)
	}
}

func TestMergeFactsAdoptAndTighten(t *testing.T) {
	l := New()
	mutations := 0
	l.OnMutate(func() { mutations++ })

	// Adoption of an unknown, already-exhausted fact fires OnMutate.
	n := l.MergeFacts(map[Key]Fact{{Tag: 4, Peer: 2}: {Spent: 10, Limit: 10, Epoch: 1}})
	if n != 1 || mutations != 1 {
		t.Fatalf("adopt: changed=%d mutations=%d", n, mutations)
	}
	// Re-merging the same facts is a no-op (idempotent, no mutation).
	if n := l.MergeFacts(map[Key]Fact{{Tag: 4, Peer: 2}: {Spent: 10, Limit: 10, Epoch: 1}}); n != 0 {
		t.Fatalf("idempotent re-merge changed %d facts", n)
	}
	if mutations != 1 {
		t.Fatalf("re-merge fired OnMutate (%d)", mutations)
	}
	// A peer reporting more spend tightens and fires OnMutate.
	l.SetLimit(difc.Tag(5), 0, 100) // mutation 2
	l.Charge("send", difc.Tag(5), 0, 10)
	before := mutations
	l.MergeFacts(map[Key]Fact{{Tag: 5, Peer: 0}: {Spent: 100, Limit: 100, Epoch: 2}})
	f, _ := l.Fact(difc.Tag(5), 0)
	if !f.Exhausted() || f.Spent != 100 {
		t.Fatalf("tightening merge gave %+v", f)
	}
	if mutations != before+1 {
		t.Fatalf("tightening merge fired %d mutations, want %d", mutations, before+1)
	}
	if err := l.Charge("send", difc.Tag(5), 0, 1); err == nil {
		t.Fatal("charge after merged exhaustion allowed")
	}
}

func TestPersistRecoverClean(t *testing.T) {
	st := newMemStore()
	l := New(WithStore(st))
	l.SetLimit(difc.Tag(2), 1, 10)
	l.Charge("send", difc.Tag(2), 1, 4)

	// Reboot from the same store.
	l2 := New(WithStore(st))
	f, ok := l2.Fact(difc.Tag(2), 1)
	if !ok || f != (Fact{Spent: 4, Limit: 10, Epoch: 1}) {
		t.Fatalf("recovered fact %+v ok=%v", f, ok)
	}
}

// TestPersistFaultDeniesAndNeverUndercounts drives injected faults at
// every checkpoint site: a faulted charge is DENIED, and a ledger
// rebooted from the torn store never reports less spend than the charges
// it acknowledged.
func TestPersistFaultDeniesAndNeverUndercounts(t *testing.T) {
	for _, site := range []string{"budget.ckpt.shadow", "budget.ckpt.commit", "budget.ckpt.clear"} {
		t.Run(site, func(t *testing.T) {
			st := newMemStore()
			plan := faultinject.NewPlan(1)
			l := New(WithStore(st), WithInjector(plan))
			l.SetLimit(difc.Tag(8), 0, 100)
			if err := l.Charge("send", difc.Tag(8), 0, 3); err != nil {
				t.Fatalf("clean charge denied: %v", err)
			}
			acked := uint64(3)

			plan.SetRates(site, faultinject.Rates{Error: 1})
			if err := l.Charge("send", difc.Tag(8), 0, 5); err == nil {
				t.Fatal("faulted charge acked")
			}
			// Fail closed in memory too: the raised spend stands.
			if f, _ := l.Fact(difc.Tag(8), 0); f.Spent < acked {
				t.Fatalf("in-memory spend %d dropped below acked %d", f.Spent, acked)
			}
			plan.SetRates(site, faultinject.Rates{})

			// Reboot: recovered spend must cover every acked charge.
			l2 := New(WithStore(st))
			f, ok := l2.Fact(difc.Tag(8), 0)
			if !ok {
				t.Fatal("fact lost across reboot")
			}
			if f.Spent < acked {
				t.Fatalf("recovered spend %d under-counts acked %d", f.Spent, acked)
			}
		})
	}
}

// TestRecoverMergesShadowForward: a crash between the shadow write and
// the flip leaves newer spend in the shadow; recovery must take the max,
// not prefer the stale commit.
func TestRecoverMergesShadowForward(t *testing.T) {
	st := newMemStore()
	k := Key{Tag: 6, Peer: 2}
	st.Set(storeKey(k), sealFact(Fact{Spent: 5, Limit: 50, Epoch: 1}))
	st.Set(storeKey(k)+shadowSuffix, sealFact(Fact{Spent: 9, Limit: 50, Epoch: 1}))

	l := New(WithStore(st))
	f, ok := l.Fact(difc.Tag(6), 2)
	if !ok || f.Spent != 9 {
		t.Fatalf("recovery rounded down: %+v ok=%v", f, ok)
	}
	if _, hasShadow := st.Get(storeKey(k) + shadowSuffix); hasShadow {
		t.Fatal("recovery left the shadow behind")
	}
}

// TestRecoverQuarantine: when nothing decodes the fact quarantines to
// zero budget — fail closed, not fail open.
func TestRecoverQuarantine(t *testing.T) {
	st := newMemStore()
	k := Key{Tag: 11, Peer: 0}
	good := sealFact(Fact{Spent: 1, Limit: 100, Epoch: 1})
	st.Set(storeKey(k), good[:len(good)/2])
	st.Set(storeKey(k)+shadowSuffix, good[:3])

	l := New(WithStore(st))
	f, ok := l.Fact(difc.Tag(11), 0)
	if !ok {
		t.Fatal("quarantined fact absent")
	}
	if f.Limit != 0 || f.Spent != math.MaxUint64 || !f.Exhausted() {
		t.Fatalf("quarantine gave %+v, want zero budget", f)
	}
	if err := l.Charge("send", difc.Tag(11), 0, 1); err == nil {
		t.Fatal("charge against quarantined fact allowed")
	}
	// A deliberate new limit under a bumped epoch clears quarantine.
	l.SetLimit(difc.Tag(11), 0, 10)
	if err := l.Charge("send", difc.Tag(11), 0, 1); err != nil {
		t.Fatalf("charge after fresh SetLimit denied: %v", err)
	}
}

func TestCostBytes(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 1}, {-5, 1}, {1, 1}, {1023, 1}, {1024, 1}, {1025, 2}, {4096, 4}, {4097, 5},
	}
	for _, c := range cases {
		if got := CostBytes(c.n); got != c.want {
			t.Errorf("CostBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestChargeLabel(t *testing.T) {
	l := New()
	l.SetLimit(difc.Tag(1), 0, 2)
	lab := difc.NewLabel(difc.Tag(1), difc.Tag(2))
	if err := l.ChargeLabel("send", lab, 0, 1); err != nil {
		t.Fatalf("first label charge denied: %v", err)
	}
	if err := l.ChargeLabel("send", lab, 0, 1); err != nil {
		t.Fatalf("second label charge denied: %v", err)
	}
	if err := l.ChargeLabel("send", lab, 0, 1); err == nil {
		t.Fatal("label charge past tag 1 budget allowed")
	}
}
