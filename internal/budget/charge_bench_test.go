package budget

import (
	"testing"

	"laminar/internal/difc"
)

// The charge hot path backs the laminar-bench -budgetgate ceiling
// (DESIGN.md §17): on a memory-only ledger an unexhausted ChargeLabel
// must stay lock-free and allocation-free. Run with -benchmem; the
// allocs/op column is the regression to watch.

func BenchmarkChargeLabel(b *testing.B) {
	l := New()
	l.SetLimit(difc.Tag(7), 0, 1<<62)
	lab := difc.NewLabel(difc.Tag(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.ChargeLabel("send", lab, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChargeLabelUntracked(b *testing.B) {
	l := New()
	l.SetLimit(difc.Tag(9), 0, 1<<62)
	lab := difc.NewLabel(difc.Tag(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.ChargeLabel("send", lab, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
