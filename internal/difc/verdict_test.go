package difc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests for the epoch-invalidated verdict cache. The soundness
// claim under test: a Lookup hit NEVER returns a verdict derived from
// label state other than the current one, provided every label mutation
// bumps the corresponding epoch before the next check — which is exactly
// the discipline the kernel's SetTaskLabel/relabel paths follow.

var errDenyTest = errors.New("test: flow denied")

// randSmallLabel draws a label over a deliberately tiny tag universe so
// the same (subject, object) pairs recur with different labels — the
// adversarial case for a memo table.
func randSmallLabel(rng *rand.Rand) Label {
	var tags []Tag
	for t := Tag(1); t <= 6; t++ {
		if rng.Intn(2) == 0 {
			tags = append(tags, t)
		}
	}
	return NewLabel(tags...)
}

// TestVerdictCacheNeverStale drives a long seeded interleaving of label
// mutations (with epoch bumps) and checks through one cache, comparing
// every hit against the verdict recomputed from the current labels. Any
// mismatch is a stale verdict — the bug the epoch scheme exists to make
// impossible.
func TestVerdictCacheNeverStale(t *testing.T) {
	seed := *difcSeed
	defer func() {
		if t.Failed() {
			t.Logf("seed: %d (rerun with -difc.seed=%d)", seed, seed)
		}
	}()
	rng := rand.New(rand.NewSource(seed))

	const (
		nObjs = 32
		steps = 20000
		opRd  = uint32(1)
		opWr  = uint32(2)
	)
	type object struct {
		label Label
		epoch uint64
	}
	objs := make([]object, nObjs)
	for i := range objs {
		objs[i].label = randSmallLabel(rng)
	}
	subj := randSmallLabel(rng)
	var subjEpoch uint64

	// verdictOf is the model: the pure secrecy check the cache memoizes.
	verdictOf := func(o int, op uint32) error {
		switch op {
		case opRd: // reading up: object's secrecy must flow to subject
			if objs[o].label.SubsetOf(subj) {
				return nil
			}
		default: // writing down: subject's secrecy must flow to object
			if subj.SubsetOf(objs[o].label) {
				return nil
			}
		}
		return errDenyTest
	}

	vc := NewVerdictCache()
	var hits, misses, mutations int
	for step := 0; step < steps; step++ {
		switch rng.Intn(8) {
		case 0: // subject relabel: bump-before-next-check, like SetTaskLabel
			subj = randSmallLabel(rng)
			subjEpoch++
			mutations++
		case 1: // object relabel, like AdoptInodeLabels / quarantine
			o := rng.Intn(nObjs)
			objs[o].label = randSmallLabel(rng)
			objs[o].epoch++
			mutations++
		default: // a check through the cache
			o := rng.Intn(nObjs)
			op := opRd
			if rng.Intn(2) == 0 {
				op = opWr
			}
			want := verdictOf(o, op)
			got, ok := vc.Lookup(uint64(o), op, subjEpoch, objs[o].epoch)
			if ok {
				hits++
				if !errors.Is(got, want) && got != want {
					t.Fatalf("step %d: STALE verdict served: obj %d op %d cached %v, current labels say %v (subj=%s obj=%s)",
						step, o, op, got, want, subj, objs[o].label)
				}
			} else {
				misses++
				vc.Store(uint64(o), op, subjEpoch, objs[o].epoch, want)
				// An immediate re-lookup under unchanged epochs must hit
				// and return exactly what was stored.
				again, ok2 := vc.Lookup(uint64(o), op, subjEpoch, objs[o].epoch)
				if !ok2 || again != want {
					t.Fatalf("step %d: store-then-lookup lost the verdict: ok=%v got=%v want=%v", step, ok2, again, want)
				}
			}
		}
	}
	// Non-vacuity: the interleaving must have exercised all three paths.
	if hits == 0 || misses == 0 || mutations == 0 {
		t.Fatalf("degenerate interleaving: hits=%d misses=%d mutations=%d", hits, misses, mutations)
	}
	t.Logf("hits=%d misses=%d mutations=%d", hits, misses, mutations)
}

// TestVerdictCacheEpochMiss pins the invalidation semantics directly:
// a stored verdict is only served while BOTH epochs match, and an epoch
// mismatch both misses and clears the slot.
func TestVerdictCacheEpochMiss(t *testing.T) {
	vc := NewVerdictCache()
	vc.Store(7, 1, 10, 20, errDenyTest)

	if v, ok := vc.Lookup(7, 1, 10, 20); !ok || v != errDenyTest {
		t.Fatalf("exact-epoch lookup missed: ok=%v v=%v", ok, v)
	}
	if _, ok := vc.Lookup(7, 1, 11, 20); ok {
		t.Fatal("hit after subject epoch bump")
	}
	// The mismatch above must have evicted the stale entry: even the
	// original epochs miss now.
	if _, ok := vc.Lookup(7, 1, 10, 20); ok {
		t.Fatal("stale entry survived an epoch-mismatch probe")
	}

	vc.Store(7, 1, 11, 20, nil)
	if _, ok := vc.Lookup(7, 1, 11, 21); ok {
		t.Fatal("hit after object epoch bump")
	}
	vc.Store(7, 1, 11, 21, nil)
	if _, ok := vc.Lookup(7, 2, 11, 21); ok {
		t.Fatal("hit on a different op class")
	}
	vc.Store(7, 1, 11, 21, nil)
	vc.Flush()
	if _, ok := vc.Lookup(7, 1, 11, 21); ok {
		t.Fatal("hit after Flush")
	}
}

// TestVerdictCacheQuickEpochs is the quick-check form of the epoch rule:
// for arbitrary keys and epoch pairs, a lookup hits iff the slot holds
// that exact (obj, op, subj-epoch, obj-epoch) tuple.
func TestVerdictCacheQuickEpochs(t *testing.T) {
	prop := func(obj uint64, op uint32, se, oe, se2, oe2 uint64) bool {
		vc := NewVerdictCache()
		vc.Store(obj, op, se, oe, errDenyTest)
		v, ok := vc.Lookup(obj, op, se2, oe2)
		if se == se2 && oe == oe2 {
			return ok && v == errDenyTest
		}
		return !ok
	}
	if err := quick.Check(prop, quickCfg(t, 2000)); err != nil {
		t.Fatal(err)
	}
}
