// Package difc implements the decentralized information flow control model
// used by Laminar (Roy et al., PLDI 2009): tags, labels, capability sets,
// and the rules that determine which information flows are legal.
//
// The package is pure — it has no dependency on the runtime or kernel
// substrates — and every type in it is immutable after construction, which
// mirrors the paper's immutable-label design (§4.5) and lets labels be
// shared freely between threads, objects and security regions without
// synchronization.
package difc

import (
	"fmt"
	"sort"
	"strings"
)

// Tag is a short arbitrary token drawn from a 64-bit universe (§3.1). A tag
// has no inherent meaning; meaning comes from the labels and capabilities
// that reference it. The zero value is reserved as "no tag" and never
// allocated.
type Tag uint64

// InvalidTag is the reserved zero tag. Allocators never return it and
// labels never contain it.
const InvalidTag Tag = 0

// String formats the tag as t<n> for readable test and log output.
func (t Tag) String() string { return fmt.Sprintf("t%d", uint64(t)) }

// Label is an immutable set of tags. A label is attached to principals and
// data objects, once for secrecy and once for integrity. The subset
// relation over labels forms the lattice of Denning's model; the empty
// label is the lattice bottom and is the implicit label of every unlabeled
// resource (§3.1).
//
// The zero value is the empty label and is ready to use.
type Label struct {
	// tags is sorted ascending with no duplicates and never mutated after
	// construction. Methods that "modify" a label return a new one.
	tags []Tag
	// id is the canonical intern identity assigned by Intern (intern.go):
	// 0 means "not interned"; equal nonzero ids imply equal tag sets and
	// vice versa. Derived labels (Union, Minus, ...) start un-interned.
	id uint64
}

// EmptyLabel is the label of unlabeled resources: {S()} or {I()}.
var EmptyLabel = Label{}

// NewLabel builds a label from the given tags. Duplicates are collapsed and
// InvalidTag entries are dropped.
func NewLabel(tags ...Tag) Label {
	if len(tags) == 0 {
		return Label{}
	}
	ts := make([]Tag, 0, len(tags))
	for _, t := range tags {
		if t != InvalidTag {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	// Dedup in place.
	out := ts[:0]
	var prev Tag
	for i, t := range ts {
		if i == 0 || t != prev {
			out = append(out, t)
		}
		prev = t
	}
	if len(out) == 0 {
		return Label{}
	}
	return Label{tags: out}
}

// Len reports the number of tags in the label.
func (l Label) Len() int { return len(l.tags) }

// IsEmpty reports whether the label is the empty (bottom) label.
func (l Label) IsEmpty() bool { return len(l.tags) == 0 }

// Has reports whether tag t is a member of the label.
func (l Label) Has(t Tag) bool {
	i := sort.Search(len(l.tags), func(i int) bool { return l.tags[i] >= t })
	return i < len(l.tags) && l.tags[i] == t
}

// Tags returns a copy of the label's tags in ascending order. The copy may
// be mutated by the caller without affecting the label.
func (l Label) Tags() []Tag {
	if len(l.tags) == 0 {
		return nil
	}
	out := make([]Tag, len(l.tags))
	copy(out, l.tags)
	return out
}

// SubsetOf reports whether every tag in l is also in other (l ⊆ other).
// When both labels are interned (see Intern) the answer is memoized in
// the process-global flow cache, turning repeated checks over hot label
// pairs into a single map probe.
func (l Label) SubsetOf(other Label) bool {
	if len(l.tags) > len(other.tags) {
		return false
	}
	if l.id != 0 && other.id != 0 {
		if l.id == other.id {
			return true // identical interned sets
		}
		if v, ok := cachedSubset(l, other); ok {
			return v
		}
		v := l.subsetSlow(other)
		storeSubset(l, other, v)
		return v
	}
	return l.subsetSlow(other)
}

// subsetSlow is the uncached sorted-merge subset walk.
func (l Label) subsetSlow(other Label) bool {
	i, j := 0, 0
	for i < len(l.tags) && j < len(other.tags) {
		switch {
		case l.tags[i] == other.tags[j]:
			i++
			j++
		case l.tags[i] > other.tags[j]:
			j++
		default:
			return false
		}
	}
	return i == len(l.tags)
}

// Equal reports whether two labels contain exactly the same tags.
func (l Label) Equal(other Label) bool {
	if l.id != 0 && other.id != 0 {
		// Intern ids are canonical: equal ids ⇔ equal tag sets.
		return l.id == other.id
	}
	if len(l.tags) != len(other.tags) {
		return false
	}
	for i := range l.tags {
		if l.tags[i] != other.tags[i] {
			return false
		}
	}
	return true
}

// Union returns the least upper bound of l and other in the label lattice.
func (l Label) Union(other Label) Label {
	if l.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return l
	}
	out := make([]Tag, 0, len(l.tags)+len(other.tags))
	i, j := 0, 0
	for i < len(l.tags) && j < len(other.tags) {
		switch {
		case l.tags[i] == other.tags[j]:
			out = append(out, l.tags[i])
			i++
			j++
		case l.tags[i] < other.tags[j]:
			out = append(out, l.tags[i])
			i++
		default:
			out = append(out, other.tags[j])
			j++
		}
	}
	out = append(out, l.tags[i:]...)
	out = append(out, other.tags[j:]...)
	return Label{tags: out}
}

// Meet returns the greatest lower bound (intersection) of l and other.
func (l Label) Meet(other Label) Label {
	if l.IsEmpty() || other.IsEmpty() {
		return Label{}
	}
	out := make([]Tag, 0, min(len(l.tags), len(other.tags)))
	i, j := 0, 0
	for i < len(l.tags) && j < len(other.tags) {
		switch {
		case l.tags[i] == other.tags[j]:
			out = append(out, l.tags[i])
			i++
			j++
		case l.tags[i] < other.tags[j]:
			i++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return Label{}
	}
	return Label{tags: out}
}

// Minus returns the set difference l − other.
func (l Label) Minus(other Label) Label {
	if l.IsEmpty() || other.IsEmpty() {
		return l
	}
	out := make([]Tag, 0, len(l.tags))
	for _, t := range l.tags {
		if !other.Has(t) {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return Label{}
	}
	return Label{tags: out}
}

// Add returns a new label that also contains t.
func (l Label) Add(t Tag) Label {
	if t == InvalidTag || l.Has(t) {
		return l
	}
	return l.Union(NewLabel(t))
}

// Remove returns a new label without t.
func (l Label) Remove(t Tag) Label {
	if !l.Has(t) {
		return l
	}
	return l.Minus(NewLabel(t))
}

// String renders the label as {t1,t2,...}; the empty label renders as {}.
func (l Label) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range l.tags {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
