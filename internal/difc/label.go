// Package difc implements the decentralized information flow control model
// used by Laminar (Roy et al., PLDI 2009): tags, labels, capability sets,
// and the rules that determine which information flows are legal.
//
// The package is pure — it has no dependency on the runtime or kernel
// substrates — and every type in it is immutable after construction, which
// mirrors the paper's immutable-label design (§4.5) and lets labels be
// shared freely between threads, objects and security regions without
// synchronization.
package difc

import (
	"fmt"
	"sort"
	"strings"
)

// Tag is a short arbitrary token drawn from a 64-bit universe (§3.1). A tag
// has no inherent meaning; meaning comes from the labels and capabilities
// that reference it. The zero value is reserved as "no tag" and never
// allocated.
type Tag uint64

// InvalidTag is the reserved zero tag. Allocators never return it and
// labels never contain it.
const InvalidTag Tag = 0

// String formats the tag as t<n> for readable test and log output.
func (t Tag) String() string { return fmt.Sprintf("t%d", uint64(t)) }

// inlineCap is the largest tag count stored inline in the Label value
// itself. Real DIFC labels are tiny — a principal's secrecy label is
// typically one or two tags — so the inline representation covers the
// hot path without ever touching the heap.
const inlineCap = 4

// Label is an immutable set of tags. A label is attached to principals and
// data objects, once for secrecy and once for integrity. The subset
// relation over labels forms the lattice of Denning's model; the empty
// label is the lattice bottom and is the implicit label of every unlabeled
// resource (§3.1).
//
// Labels at or below inlineCap tags are stored inline in the value itself
// (heap == nil, tags in inline[:n]); larger labels spill to a heap slice.
// The representation is invisible through the API: Equal, SubsetOf and the
// codecs agree between an inline label and a heap twin with the same tags.
//
// The zero value is the empty label and is ready to use.
type Label struct {
	// heap holds the tags, sorted ascending with no duplicates, when the
	// label is too large for the inline array. nil means the inline
	// representation is in use. Never mutated after construction.
	heap []Tag
	// id is the canonical intern identity assigned by Intern (intern.go):
	// 0 means "not interned"; equal nonzero ids imply equal tag sets and
	// vice versa. Derived labels (Union, Minus, ...) start un-interned.
	id uint64
	// sig is a 64-bit membership signature (one hashed bit per tag).
	// l ⊆ other requires l.sig &^ other.sig == 0, giving SubsetOf and Has
	// an O(1) rejection path that never consults the tag storage.
	sig uint64
	// inline and n hold small tag sets by value; meaningful only when
	// heap == nil.
	inline [inlineCap]Tag
	n      uint8
}

// EmptyLabel is the label of unlabeled resources: {S()} or {I()}.
var EmptyLabel = Label{}

// tagBit hashes a tag onto one bit of the signature word.
func tagBit(t Tag) uint64 {
	h := uint64(t) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return 1 << (h & 63)
}

// view returns the label's tags without copying. The result aliases the
// receiver (the inline array for small labels), so it must not escape or
// outlive the *Label it came from; every use in this package reads it and
// drops it within the calling function.
func (l *Label) view() []Tag {
	if l.heap != nil {
		return l.heap
	}
	return l.inline[:l.n]
}

// labelOf builds a label from a sorted, deduplicated, InvalidTag-free
// slice. Small sets are copied into the inline array and the input slice
// is not retained; larger sets retain the slice, so callers passing
// scratch-backed slices must go through labelCopy instead.
func labelOf(tags []Tag) Label {
	var l Label
	if len(tags) == 0 {
		return l
	}
	for _, t := range tags {
		l.sig |= tagBit(t)
	}
	if len(tags) <= inlineCap {
		l.n = uint8(copy(l.inline[:], tags))
		return l
	}
	l.heap = tags
	return l
}

// labelCopy is labelOf for slices the label must not retain (stack
// scratch): large results are copied to a fresh heap slice first.
func labelCopy(tags []Tag) Label {
	if len(tags) > inlineCap {
		h := make([]Tag, len(tags))
		copy(h, tags)
		return labelOf(h)
	}
	return labelOf(tags)
}

// withID returns a copy of l carrying the given intern id.
func (l Label) withID(id uint64) Label {
	l.id = id
	return l
}

// NewLabel builds a label from the given tags. Duplicates are collapsed and
// InvalidTag entries are dropped. Small inputs are normalized entirely on
// the stack, so constructing the one- and two-tag labels that dominate real
// workloads performs no allocation.
func NewLabel(tags ...Tag) Label {
	if len(tags) == 0 {
		return Label{}
	}
	var scratch [2 * inlineCap]Tag
	var ts []Tag
	if len(tags) <= len(scratch) {
		ts = scratch[:0]
	} else {
		ts = make([]Tag, 0, len(tags))
	}
	for _, t := range tags {
		if t != InvalidTag {
			ts = append(ts, t)
		}
	}
	if len(ts) <= len(scratch) {
		// Insertion sort: no closure, no interface, no escape.
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
	} else {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	// Dedup in place.
	out := ts[:0]
	var prev Tag
	for i, t := range ts {
		if i == 0 || t != prev {
			out = append(out, t)
		}
		prev = t
	}
	return labelCopy(out)
}

// newLabelHeap builds a label that uses the heap representation even when
// the tag set would fit inline. It exists so tests (FuzzInlineLabel) can
// pit the two representations against each other; nothing else should
// create small heap labels.
func newLabelHeap(tags ...Tag) Label {
	l := NewLabel(tags...)
	if l.heap == nil && l.n > 0 {
		h := make([]Tag, l.n)
		copy(h, l.inline[:l.n])
		l.heap = h
		l.n = 0
		l.inline = [inlineCap]Tag{}
	}
	return l
}

// Len reports the number of tags in the label.
func (l Label) Len() int {
	if l.heap != nil {
		return len(l.heap)
	}
	return int(l.n)
}

// IsEmpty reports whether the label is the empty (bottom) label.
func (l Label) IsEmpty() bool { return l.heap == nil && l.n == 0 }

// Has reports whether tag t is a member of the label.
func (l Label) Has(t Tag) bool {
	if l.sig&tagBit(t) == 0 {
		return false
	}
	v := l.view()
	i := sort.Search(len(v), func(i int) bool { return v[i] >= t })
	return i < len(v) && v[i] == t
}

// Tags returns a copy of the label's tags in ascending order. The copy may
// be mutated by the caller without affecting the label.
func (l Label) Tags() []Tag {
	v := l.view()
	if len(v) == 0 {
		return nil
	}
	out := make([]Tag, len(v))
	copy(out, v)
	return out
}

// Each calls fn for every tag in ascending order, stopping early when fn
// returns false. It is the allocation-free alternative to Tags() for hot
// paths that only need to walk the set (ISSUE 10's budget charging).
func (l Label) Each(fn func(Tag) bool) {
	for _, t := range l.view() {
		if !fn(t) {
			return
		}
	}
}

// SubsetOf reports whether every tag in l is also in other (l ⊆ other).
// The signature word rejects most non-subsets in one AND-NOT; surviving
// inline×inline pairs are resolved by a short merge walk that is cheaper
// than any cache probe, and larger interned pairs are memoized in the
// process-global flow cache.
func (l Label) SubsetOf(other Label) bool {
	if l.sig&^other.sig != 0 {
		return false // some tag of l hashes outside other's signature
	}
	if l.Len() > other.Len() {
		return false
	}
	if l.heap == nil && other.heap == nil {
		return l.subsetSlow(other)
	}
	if l.id != 0 && other.id != 0 {
		if l.id == other.id {
			return true // identical interned sets
		}
		if v, ok := cachedSubset(l, other); ok {
			return v
		}
		v := l.subsetSlow(other)
		storeSubset(l, other, v)
		return v
	}
	return l.subsetSlow(other)
}

// subsetSlow is the uncached sorted-merge subset walk.
func (l Label) subsetSlow(other Label) bool {
	a, b := l.view(), other.view()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// Equal reports whether two labels contain exactly the same tags.
func (l Label) Equal(other Label) bool {
	if l.id != 0 && other.id != 0 {
		// Intern ids are canonical: equal ids ⇔ equal tag sets.
		return l.id == other.id
	}
	if l.sig != other.sig {
		return false
	}
	a, b := l.view(), other.view()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Union returns the least upper bound of l and other in the label lattice.
func (l Label) Union(other Label) Label {
	if l.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return l
	}
	a, b := l.view(), other.view()
	var scratch [2 * inlineCap]Tag
	var out []Tag
	if len(a)+len(b) <= len(scratch) {
		out = scratch[:0]
	} else {
		out = make([]Tag, 0, len(a)+len(b))
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return labelCopy(out)
}

// Meet returns the greatest lower bound (intersection) of l and other.
func (l Label) Meet(other Label) Label {
	if l.IsEmpty() || other.IsEmpty() {
		return Label{}
	}
	a, b := l.view(), other.view()
	var scratch [2 * inlineCap]Tag
	var out []Tag
	if m := min(len(a), len(b)); m <= len(scratch) {
		out = scratch[:0]
	} else {
		out = make([]Tag, 0, m)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return labelCopy(out)
}

// Minus returns the set difference l − other.
func (l Label) Minus(other Label) Label {
	if l.IsEmpty() || other.IsEmpty() {
		return l
	}
	a := l.view()
	var scratch [2 * inlineCap]Tag
	var out []Tag
	if len(a) <= len(scratch) {
		out = scratch[:0]
	} else {
		out = make([]Tag, 0, len(a))
	}
	for _, t := range a {
		if !other.Has(t) {
			out = append(out, t)
		}
	}
	return labelCopy(out)
}

// Add returns a new label that also contains t.
func (l Label) Add(t Tag) Label {
	if t == InvalidTag || l.Has(t) {
		return l
	}
	return l.Union(NewLabel(t))
}

// Remove returns a new label without t.
func (l Label) Remove(t Tag) Label {
	if !l.Has(t) {
		return l
	}
	return l.Minus(NewLabel(t))
}

// String renders the label as {t1,t2,...}; the empty label renders as {}.
func (l Label) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range l.view() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
