package difc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// genLabel draws a random small label. Tag values are kept in a narrow
// range so random pairs overlap often enough to exercise both subset
// outcomes.
func genLabel(r *rand.Rand) Label {
	n := r.Intn(6)
	tags := make([]Tag, 0, n)
	for i := 0; i < n; i++ {
		tags = append(tags, Tag(1+r.Intn(12)))
	}
	return NewLabel(tags...)
}

func genLabels(r *rand.Rand) Labels {
	return Labels{S: genLabel(r), I: genLabel(r)}
}

// uncachedSubset recomputes l ⊆ other from the raw tag sets, bypassing
// both interning and the memo table. It is the test oracle.
func uncachedSubset(l, other Label) bool {
	ts := other.Tags()
	has := make(map[Tag]bool, len(ts))
	for _, t := range ts {
		has[t] = true
	}
	for _, t := range l.Tags() {
		if !has[t] {
			return false
		}
	}
	return true
}

// TestCachedSubsetMatchesUncached is the core memo-soundness property:
// for arbitrary label pairs, the interned/cached SubsetOf answer equals
// uncached recomputation — on a cold cache, a warm cache, and again
// after a full eviction.
func TestCachedSubsetMatchesUncached(t *testing.T) {
	r := rand.New(rand.NewSource(*difcSeed))
	prop := func() bool {
		a, b := genLabel(r), genLabel(r)
		ia, ib := Intern(a), Intern(b)
		want := uncachedSubset(a, b)
		if ia.SubsetOf(ib) != want { // cold or warm
			t.Logf("mismatch pre-flush: %v ⊆ %v want %v", a, b, want)
			return false
		}
		if ia.SubsetOf(ib) != want { // definitely warm now
			t.Logf("mismatch warm: %v ⊆ %v want %v", a, b, want)
			return false
		}
		FlushFlowCache()
		if ia.SubsetOf(ib) != want { // post-eviction recompute
			t.Logf("mismatch post-flush: %v ⊆ %v want %v", a, b, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(t, 400)); err != nil {
		t.Fatal(err)
	}
}

// TestCachedCanFlowToMatchesUncached lifts the property to the full
// CanFlowTo relation over interned label pairs.
func TestCachedCanFlowToMatchesUncached(t *testing.T) {
	r := rand.New(rand.NewSource(*difcSeed + 1))
	prop := func() bool {
		src, dst := genLabels(r), genLabels(r)
		want := uncachedSubset(src.S, dst.S) && uncachedSubset(dst.I, src.I)
		isrc, idst := InternLabels(src), InternLabels(dst)
		if isrc.CanFlowTo(idst) != want {
			return false
		}
		FlushFlowCache()
		if isrc.CanFlowTo(idst) != want {
			return false
		}
		// CheckFlow must agree with CanFlowTo on the same cached pairs.
		err := CheckFlow("test", isrc, idst)
		return (err == nil) == want
	}
	if err := quick.Check(prop, quickCfg(t, 400)); err != nil {
		t.Fatal(err)
	}
}

// TestInternPreservesSemantics: interning must be observably invisible —
// equality, ordering (subset), membership, rendering and derived-label
// operations all agree between a label and its interned twin.
func TestInternPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(*difcSeed + 2))
	prop := func() bool {
		a, b := genLabel(r), genLabel(r)
		ia, ib := Intern(a), Intern(b)
		if !ia.Interned() || !ib.Interned() {
			return false
		}
		// Identity: same tags, same rendering.
		if !ia.Equal(a) || ia.String() != a.String() || ia.Len() != a.Len() {
			return false
		}
		// Equality agrees in every interned/uninterned combination.
		want := a.Equal(b)
		if ia.Equal(ib) != want || ia.Equal(b) != want || a.Equal(ib) != want {
			return false
		}
		// Ordering (the lattice partial order) agrees likewise.
		ws, wr := a.SubsetOf(b), b.SubsetOf(a)
		if ia.SubsetOf(ib) != ws || ia.SubsetOf(b) != ws || a.SubsetOf(ib) != ws {
			return false
		}
		if ib.SubsetOf(ia) != wr {
			return false
		}
		// Derived labels are tag-identical regardless of interning.
		if !ia.Union(ib).Equal(a.Union(b)) || !ia.Meet(ib).Equal(a.Meet(b)) || !ia.Minus(ib).Equal(a.Minus(b)) {
			return false
		}
		// Canonical ids: re-interning equal labels yields the same id.
		ia2 := Intern(NewLabel(a.Tags()...))
		return (ia2.id == ia.id) == true && (ia.id == ib.id) == want
	}
	if err := quick.Check(prop, quickCfg(t, 400)); err != nil {
		t.Fatal(err)
	}
}

// TestInternEmptyLabel pins the reserved empty-label id and its lattice
// bottom behaviour.
func TestInternEmptyLabel(t *testing.T) {
	e := Intern(Label{})
	if e.id != emptyInternID || !e.IsEmpty() {
		t.Fatalf("empty label interned as id=%d empty=%v", e.id, e.IsEmpty())
	}
	if e2 := Intern(NewLabel()); e2.id != emptyInternID {
		t.Fatalf("second empty intern got id %d", e2.id)
	}
	l := Intern(NewLabel(3, 4))
	if !e.SubsetOf(l) || l.SubsetOf(e) {
		t.Fatal("empty label is not behaving as lattice bottom")
	}
}

// TestFlowCacheEviction fills a single shard past its capacity via the
// internal store/load API and checks (a) the shard is cleared rather
// than growing unboundedly, and (b) answers recomputed after the wipe
// still match the oracle.
func TestFlowCacheEviction(t *testing.T) {
	FlushFlowCache()
	// Labels above inlineCap tags: inline×inline pairs resolve by direct
	// merge walk and never touch the memo table, so the eviction test
	// needs heap-represented labels.
	a := Intern(NewLabel(1, 2, 3, 4, 5))
	b := Intern(NewLabel(1, 2, 3, 4, 5, 6))
	sh := flowShardFor(a.id, b.id)
	want := uncachedSubset(a, b)

	// Warm the real entry, then stuff the same shard with synthetic keys
	// until the next store must evict.
	if a.SubsetOf(b) != want {
		t.Fatal("warmup answer wrong")
	}
	sh.mu.Lock()
	for i := uint64(0); len(sh.m) < flowCacheShardCap; i++ {
		sh.m[flowKey{^i, ^(i >> 1)}] = false
	}
	sh.mu.Unlock()

	storeSubset(a, b, want) // at cap: must clear first
	sh.mu.Lock()
	n := len(sh.m)
	sh.mu.Unlock()
	if n != 1 {
		t.Fatalf("shard not evicted at capacity: %d entries", n)
	}
	if _, _, ev := FlowCacheStats(); ev == 0 {
		t.Fatal("eviction counter never advanced")
	}
	if a.SubsetOf(b) != want || b.SubsetOf(a) != uncachedSubset(b, a) {
		t.Fatal("post-eviction answers diverge from oracle")
	}
}

// TestInternTableBoundedDegradation: when a shard refuses new entries
// the label comes back un-interned but otherwise intact.
func TestInternTableBoundedDegradation(t *testing.T) {
	l := NewLabel(7, 8, 9)
	sh := internShardFor([]Tag{7, 8, 9})
	sh.mu.Lock()
	saved := sh.m
	full := make(map[string]uint64, maxInternedPerShard)
	for i := 0; len(full) < maxInternedPerShard; i++ {
		full[internKey([]Tag{Tag(i + 1), ^Tag(i)})] = uint64(i + 1000)
	}
	sh.m = full
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		sh.m = saved
		sh.mu.Unlock()
	}()

	got := Intern(l)
	if got.Interned() {
		t.Fatal("full shard still admitted a label")
	}
	if !got.Equal(l) || got.String() != l.String() {
		t.Fatal("degraded intern changed the label")
	}
	if !sort.SliceIsSorted(got.Tags(), func(i, j int) bool { return got.Tags()[i] < got.Tags()[j] }) {
		t.Fatal("degraded intern broke tag ordering")
	}
}

// TestFlowCacheConcurrent hammers intern+subset from many goroutines
// under -race: the global tables must be safe without external locking.
func TestFlowCacheConcurrent(t *testing.T) {
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			r := rand.New(rand.NewSource(*difcSeed + int64(w)))
			for i := 0; i < 2000; i++ {
				a, b := Intern(genLabel(r)), Intern(genLabel(r))
				if a.SubsetOf(b) != uncachedSubset(a, b) {
					t.Errorf("worker %d: cached subset diverged", w)
					return
				}
				if i%512 == 0 {
					FlushFlowCache()
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
