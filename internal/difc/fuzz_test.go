package difc

import (
	"bytes"
	"testing"
)

// Fuzzers for the codec layer (codec.go). Two properties:
//
//  1. Never panic: decoders must reject arbitrary bytes with an error,
//     never a crash — labels are parsed out of untrusted xattr blobs
//     and persistent capability files.
//  2. Round-trip: whatever decodes successfully must re-encode to a
//     value that decodes to an equal label (canonicalization may change
//     the byte form, e.g. unsorted text input, but not the tag set).
//
// CI runs each fuzzer briefly (-fuzztime) on every push; the f.Add seed
// corpus keeps the short pass meaningful.

func FuzzUnmarshalLabel(f *testing.F) {
	for _, l := range []Label{{}, NewLabel(1), NewLabel(1, 2, 3), NewLabel(^Tag(0))} {
		b, _ := l.MarshalBinary()
		f.Add(b)
	}
	// Malformed seeds: short header, lying length, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 5})
	f.Add([]byte{0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalLabel(data)
		if err != nil {
			return
		}
		out, merr := l.MarshalBinary()
		if merr != nil {
			t.Fatalf("re-marshal of decoded label failed: %v", merr)
		}
		l2, err2 := UnmarshalLabel(out)
		if err2 != nil {
			t.Fatalf("round-trip decode failed: %v", err2)
		}
		if !l.Equal(l2) {
			t.Fatalf("round-trip changed label: %v != %v", l, l2)
		}
		// The binary form is canonical (sorted, deduped), so decoding a
		// canonical encoding must re-encode byte-identically.
		out2, _ := l2.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical encoding unstable: %x != %x", out, out2)
		}
	})
}

// FuzzInlineLabel cross-checks the two physical label representations:
// the inline value-type form (≤ inlineCap interned tags, no heap slice)
// and the heap form. Both are built from the same fuzzed tag multiset —
// NewLabel picks the representation by size, newLabelHeap forces heap —
// and every observable must agree across all representation pairings:
// SubsetOf in both directions, Equal, Has, Len, the canonical wire bytes
// from MarshalBinary, the text form, and the set algebra results. The
// fuzzer deliberately draws tags from a tiny universe so the inline
// boundary (4→5 tags) and duplicate-heavy inputs are hit constantly.
func FuzzInlineLabel(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1}, []byte{1})
	f.Add([]byte{1, 2, 3, 4}, []byte{1, 2})                  // inline vs inline, superset
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{1, 2, 3, 4})         // heap vs inline at the boundary
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, []byte{5, 6, 7, 8})   // heap vs inline, overlap
	f.Add([]byte{9, 9, 9, 9, 9, 9}, []byte{9})               // dup-heavy collapses to inline
	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte) {
		toTags := func(raw []byte) []Tag {
			if len(raw) > 16 {
				raw = raw[:16]
			}
			tags := make([]Tag, len(raw))
			for i, b := range raw {
				tags[i] = Tag(b%11) + 1 // tiny universe: collisions and subsets are common
			}
			return tags
		}
		aTags, bTags := toTags(aRaw), toTags(bRaw)

		// Model: plain tag-set semantics over maps.
		toSet := func(tags []Tag) map[Tag]bool {
			s := map[Tag]bool{}
			for _, tg := range tags {
				s[tg] = true
			}
			return s
		}
		aSet, bSet := toSet(aTags), toSet(bTags)
		subsetModel := func(x, y map[Tag]bool) bool {
			for tg := range x {
				if !y[tg] {
					return false
				}
			}
			return true
		}

		aInline, aHeap := NewLabel(aTags...), newLabelHeap(aTags...)
		bInline, bHeap := NewLabel(bTags...), newLabelHeap(bTags...)
		aForms := []Label{aInline, aHeap}
		bForms := []Label{bInline, bHeap}

		wantAB, wantBA := subsetModel(aSet, bSet), subsetModel(bSet, aSet)
		wantEq := wantAB && wantBA
		for _, a := range aForms {
			if a.Len() != len(aSet) {
				t.Fatalf("Len diverges from model: %d != %d", a.Len(), len(aSet))
			}
			for tg := Tag(1); tg <= 12; tg++ {
				if a.Has(tg) != aSet[tg] {
					t.Fatalf("Has(%d) diverges from model on %v", tg, a)
				}
			}
			for _, b := range bForms {
				if got := a.SubsetOf(b); got != wantAB {
					t.Fatalf("SubsetOf(a⊆b) = %v, model says %v (a=%v b=%v)", got, wantAB, a, b)
				}
				if got := b.SubsetOf(a); got != wantBA {
					t.Fatalf("SubsetOf(b⊆a) = %v, model says %v (a=%v b=%v)", got, wantBA, a, b)
				}
				if got := a.Equal(b); got != wantEq {
					t.Fatalf("Equal = %v, model says %v (a=%v b=%v)", got, wantEq, a, b)
				}
			}
		}

		// Canonical wire bytes and text form must not depend on the
		// representation: the differential oracle relies on this when it
		// compares label records across cached and uncached kernels.
		wireInline, err1 := aInline.MarshalBinary()
		wireHeap, err2 := aHeap.MarshalBinary()
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal failed: %v / %v", err1, err2)
		}
		if !bytes.Equal(wireInline, wireHeap) {
			t.Fatalf("wire bytes depend on representation: %x != %x", wireInline, wireHeap)
		}
		if aInline.FormatText() != aHeap.FormatText() {
			t.Fatalf("text form depends on representation: %q != %q", aInline.FormatText(), aHeap.FormatText())
		}
		back, err := UnmarshalLabel(wireInline)
		if err != nil || !back.Equal(aInline) || !back.Equal(aHeap) {
			t.Fatalf("wire round trip broke equality: err=%v back=%v", err, back)
		}

		// Set algebra agrees across representations (compare via Equal,
		// which itself was just cross-checked against the model).
		for _, op := range []struct {
			name string
			f    func(x, y Label) Label
		}{
			{"Union", func(x, y Label) Label { return x.Union(y) }},
			{"Meet", func(x, y Label) Label { return x.Meet(y) }},
			{"Minus", func(x, y Label) Label { return x.Minus(y) }},
		} {
			want := op.f(aInline, bInline)
			for _, a := range aForms {
				for _, b := range bForms {
					if got := op.f(a, b); !got.Equal(want) {
						t.Fatalf("%s depends on representation: %v != %v", op.name, got, want)
					}
				}
			}
		}
	})
}

func FuzzParseLabelText(f *testing.F) {
	f.Add("")
	f.Add("1")
	f.Add("1,2,3")
	f.Add("3,2,1,1")
	f.Add(" 7 , 8 ")
	f.Add("18446744073709551615")
	f.Add("x")
	f.Add("1,,2")
	f.Add("-1")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLabelText(s)
		if err != nil {
			return
		}
		back, err2 := ParseLabelText(l.FormatText())
		if err2 != nil {
			t.Fatalf("re-parse of formatted label failed: %v", err2)
		}
		if !l.Equal(back) {
			t.Fatalf("text round-trip changed label: %v != %v", l, back)
		}
	})
}

func FuzzParseCapSetText(f *testing.F) {
	f.Add("|")
	f.Add("1,2|3")
	f.Add("|5")
	f.Add("9|")
	f.Add("nope")
	f.Add("1|2|3")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCapSetText(s)
		if err != nil {
			return
		}
		back, err2 := ParseCapSetText(c.FormatText())
		if err2 != nil {
			t.Fatalf("re-parse of formatted capset failed: %v", err2)
		}
		if !c.Equal(back) {
			t.Fatalf("capset round-trip changed: %v != %v", c, back)
		}
	})
}
