package difc

import (
	"bytes"
	"testing"
)

// Fuzzers for the codec layer (codec.go). Two properties:
//
//  1. Never panic: decoders must reject arbitrary bytes with an error,
//     never a crash — labels are parsed out of untrusted xattr blobs
//     and persistent capability files.
//  2. Round-trip: whatever decodes successfully must re-encode to a
//     value that decodes to an equal label (canonicalization may change
//     the byte form, e.g. unsorted text input, but not the tag set).
//
// CI runs each fuzzer briefly (-fuzztime) on every push; the f.Add seed
// corpus keeps the short pass meaningful.

func FuzzUnmarshalLabel(f *testing.F) {
	for _, l := range []Label{{}, NewLabel(1), NewLabel(1, 2, 3), NewLabel(^Tag(0))} {
		b, _ := l.MarshalBinary()
		f.Add(b)
	}
	// Malformed seeds: short header, lying length, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 5})
	f.Add([]byte{0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalLabel(data)
		if err != nil {
			return
		}
		out, merr := l.MarshalBinary()
		if merr != nil {
			t.Fatalf("re-marshal of decoded label failed: %v", merr)
		}
		l2, err2 := UnmarshalLabel(out)
		if err2 != nil {
			t.Fatalf("round-trip decode failed: %v", err2)
		}
		if !l.Equal(l2) {
			t.Fatalf("round-trip changed label: %v != %v", l, l2)
		}
		// The binary form is canonical (sorted, deduped), so decoding a
		// canonical encoding must re-encode byte-identically.
		out2, _ := l2.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical encoding unstable: %x != %x", out, out2)
		}
	})
}

func FuzzParseLabelText(f *testing.F) {
	f.Add("")
	f.Add("1")
	f.Add("1,2,3")
	f.Add("3,2,1,1")
	f.Add(" 7 , 8 ")
	f.Add("18446744073709551615")
	f.Add("x")
	f.Add("1,,2")
	f.Add("-1")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLabelText(s)
		if err != nil {
			return
		}
		back, err2 := ParseLabelText(l.FormatText())
		if err2 != nil {
			t.Fatalf("re-parse of formatted label failed: %v", err2)
		}
		if !l.Equal(back) {
			t.Fatalf("text round-trip changed label: %v != %v", l, back)
		}
	})
}

func FuzzParseCapSetText(f *testing.F) {
	f.Add("|")
	f.Add("1,2|3")
	f.Add("|5")
	f.Add("9|")
	f.Add("nope")
	f.Add("1|2|3")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCapSetText(s)
		if err != nil {
			return
		}
		back, err2 := ParseCapSetText(c.FormatText())
		if err2 != nil {
			t.Fatalf("re-parse of formatted capset failed: %v", err2)
		}
		if !c.Equal(back) {
			t.Fatalf("capset round-trip changed: %v != %v", c, back)
		}
	})
}
