package difc

import (
	"sync"
	"sync/atomic"
)

// The flow cache memoizes SubsetOf over pairs of interned labels. Every
// DIFC decision in the system — LSM hook checks, rt read/write
// barriers, label-change and region-entry rules — bottoms out in subset
// tests, so this one memo table accelerates all of them transparently:
// SubsetOf itself consults the cache when both operands are interned.
//
// Design constraints, in order:
//
//  1. Correctness is unconditional. A cache entry keyed (a.id, b.id)
//     stores the pure function subset(tags(a), tags(b)); labels are
//     immutable and ids are never reused, so entries can never go
//     stale. Eviction merely forgets answers.
//  2. Concurrency. The cache is sharded 64 ways; each shard is a small
//     mutex-guarded map. Shards are picked by mixing both ids so
//     distinct hot pairs rarely collide.
//  3. Bounded memory. A shard that reaches flowCacheShardCap entries is
//     cleared wholesale (cheap, O(1) amortized, and keeps the table
//     hot-set-adaptive without LRU bookkeeping).

const (
	flowCacheShardCount = 64
	flowCacheShardCap   = 4096
)

type flowKey struct{ a, b uint64 }

type flowShard struct {
	mu sync.Mutex
	m  map[flowKey]bool
}

var (
	flowCache [flowCacheShardCount]flowShard

	flowHits      atomic.Uint64
	flowMisses    atomic.Uint64
	flowEvictions atomic.Uint64
)

func flowShardFor(a, b uint64) *flowShard {
	// splitmix-style finalizer over the combined ids.
	h := a*0x9e3779b97f4a7c15 ^ (b + 0xbf58476d1ce4e5b9)
	h ^= h >> 31
	return &flowCache[h%flowCacheShardCount]
}

// cachedSubset consults the memo table for "a ⊆ b". The second return
// is false when the pair is absent (or either label is un-interned, in
// which case callers must recompute).
func cachedSubset(a, b Label) (bool, bool) {
	sh := flowShardFor(a.id, b.id)
	sh.mu.Lock()
	v, ok := sh.m[flowKey{a.id, b.id}]
	sh.mu.Unlock()
	if ok {
		flowHits.Add(1)
	} else {
		flowMisses.Add(1)
	}
	return v, ok
}

// storeSubset records "a ⊆ b = v", evicting the whole shard first if it
// is at capacity.
func storeSubset(a, b Label, v bool) {
	sh := flowShardFor(a.id, b.id)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[flowKey]bool)
	} else if len(sh.m) >= flowCacheShardCap {
		clear(sh.m)
		flowEvictions.Add(1)
	}
	sh.m[flowKey{a.id, b.id}] = v
	sh.mu.Unlock()
}

// FlushFlowCache drops every memoized subset answer. Safe at any time;
// the next queries simply recompute. Tests use it to prove cached and
// uncached answers agree across evictions.
func FlushFlowCache() {
	for i := range flowCache {
		sh := &flowCache[i]
		sh.mu.Lock()
		if len(sh.m) > 0 {
			clear(sh.m)
			flowEvictions.Add(1)
		}
		sh.mu.Unlock()
	}
}

// FlowCacheStats reports cumulative hit/miss/eviction counters for the
// subset memo table.
func FlowCacheStats() (hits, misses, evictions uint64) {
	return flowHits.Load(), flowMisses.Load(), flowEvictions.Load()
}
