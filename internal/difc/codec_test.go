package difc

import (
	"testing"
	"testing/quick"
)

func TestLabelBinaryRoundTrip(t *testing.T) {
	f := func(l Label) bool {
		data, err := l.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalLabel(data)
		if err != nil {
			return false
		}
		return got.Equal(l)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalLabelErrors(t *testing.T) {
	if _, err := UnmarshalLabel([]byte{1, 2}); err == nil {
		t.Error("short buffer accepted")
	}
	// Header claims 2 tags but body has only one.
	data, _ := NewLabel(1).MarshalBinary()
	data[3] = 2
	if _, err := UnmarshalLabel(data); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLabelTextRoundTrip(t *testing.T) {
	f := func(l Label) bool {
		got, err := ParseLabelText(l.FormatText())
		return err == nil && got.Equal(l)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestParseLabelText(t *testing.T) {
	l, err := ParseLabelText(" 3 , 1 ,2 ")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Equal(NewLabel(1, 2, 3)) {
		t.Errorf("parsed %v", l)
	}
	if _, err := ParseLabelText("1,x"); err == nil {
		t.Error("bad tag accepted")
	}
	empty, err := ParseLabelText("")
	if err != nil || !empty.IsEmpty() {
		t.Errorf("empty parse = %v, %v", empty, err)
	}
}

func TestCapSetTextRoundTrip(t *testing.T) {
	f := func(c CapSet) bool {
		got, err := ParseCapSetText(c.FormatText())
		return err == nil && got.Equal(c)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestParseCapSetTextErrors(t *testing.T) {
	if _, err := ParseCapSetText("no-separator"); err == nil {
		t.Error("missing separator accepted")
	}
	if _, err := ParseCapSetText("x|"); err == nil {
		t.Error("bad plus side accepted")
	}
	if _, err := ParseCapSetText("|x"); err == nil {
		t.Error("bad minus side accepted")
	}
}
