package difc

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Label interning gives hot labels a canonical numeric identity so the
// flow cache (flowcache.go) can key subset queries on a pair of small
// integers instead of walking tag slices. Interning is purely an
// acceleration: an interned label is observably identical to its
// un-interned twin — same tags, same Equal/SubsetOf/String results — it
// just additionally carries a process-global id that survives copying
// (labels are immutable values, so the id can never go stale).
//
// The table is global and shared by every kernel/module instance in the
// process. That is sound because a label's identity is exactly its tag
// set and subset answers are purely set-theoretic: two modules that
// allocate the same numeric tags mean the same lattice points.
//
// The table is bounded: past maxInternedPerShard entries a shard stops
// admitting new labels and Intern degrades to the identity function.
// Degradation is safe — an id of zero simply means "uncached slow path".

const (
	internShardCount    = 64
	maxInternedPerShard = 1 << 14
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]uint64 // tag-set key -> interned id
}

var (
	internTable [internShardCount]internShard
	// internIDs allocates ids starting at 2; id 1 is reserved for the
	// empty label and id 0 means "not interned".
	internIDs atomic.Uint64

	internHits   atomic.Uint64
	internMisses atomic.Uint64

	// internByID is the reverse index (id -> Label) used by the telemetry
	// layer to resolve the interned ids recorded in provenance events back
	// into tag sets for dumps and replay. Writes happen only on first-time
	// interning (cold); reads are lock-free. Memory is bounded by the same
	// per-shard cap as the forward table.
	internByID sync.Map // uint64 -> Label
)

// emptyInternID is the permanent id of the empty label.
const emptyInternID uint64 = 1

func init() { internIDs.Store(emptyInternID) }

// internKey packs the sorted tag slice into a string usable as a map key.
func internKey(tags []Tag) string {
	b := make([]byte, 8*len(tags))
	for i, t := range tags {
		binary.BigEndian.PutUint64(b[i*8:], uint64(t))
	}
	return string(b)
}

// internShardFor picks a shard by mixing the tag set (fnv-1a over the
// raw tag words) so labels spread evenly regardless of tag density.
func internShardFor(tags []Tag) *internShard {
	h := uint64(14695981039346656037)
	for _, t := range tags {
		h ^= uint64(t)
		h *= 1099511628211
	}
	return &internTable[h%internShardCount]
}

// Intern returns a label with the same tag set as l that carries a
// canonical id. Calling it twice with equal labels yields labels with
// the same id; the result compares Equal to the input in every way.
// When the intern table shard is full the input is returned unchanged
// (id 0), which only costs cache hits, never correctness.
func Intern(l Label) Label {
	if l.id != 0 {
		return l
	}
	if l.IsEmpty() {
		return Label{id: emptyInternID}
	}
	tags := l.view()
	sh := internShardFor(tags)
	key := internKey(tags)

	sh.mu.RLock()
	id, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		internHits.Add(1)
		return l.withID(id)
	}

	sh.mu.Lock()
	if id, ok = sh.m[key]; ok {
		sh.mu.Unlock()
		internHits.Add(1)
		return l.withID(id)
	}
	if sh.m == nil {
		sh.m = make(map[string]uint64)
	}
	if len(sh.m) >= maxInternedPerShard {
		sh.mu.Unlock()
		return l // table full: degrade gracefully
	}
	id = internIDs.Add(1)
	sh.m[key] = id
	sh.mu.Unlock()
	internByID.Store(id, l.withID(id))
	internMisses.Add(1)
	return l.withID(id)
}

// InternedID returns the label's canonical intern id (0 when the label is
// not interned). Telemetry events store these ids instead of copying tag
// sets onto the hot path.
func (l Label) InternedID() uint64 { return l.id }

// LabelByID resolves a canonical intern id back to its label. The empty
// label's reserved id resolves without a table entry; id 0 ("not
// interned") and unknown ids report ok=false.
func LabelByID(id uint64) (Label, bool) {
	if id == emptyInternID {
		return Label{id: emptyInternID}, true
	}
	if id == 0 {
		return Label{}, false
	}
	if v, ok := internByID.Load(id); ok {
		return v.(Label), true
	}
	return Label{}, false
}

// InternLabels interns both components of a label pair.
func InternLabels(l Labels) Labels {
	return Labels{S: Intern(l.S), I: Intern(l.I)}
}

// Interned reports whether l carries a canonical intern id. Mostly
// useful to tests and stats reporting.
func (l Label) Interned() bool { return l.id != 0 }

// InternStats reports cumulative intern-table hits and misses (a miss
// is a first-time insertion).
func InternStats() (hits, misses uint64) {
	return internHits.Load(), internMisses.Load()
}
