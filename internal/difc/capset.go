package difc

import "strings"

// CapKind selects which halves of a tag's capability pair an operation
// refers to: the plus capability (classify / endorse), the minus capability
// (declassify / drop endorsement), or both.
type CapKind uint8

// Capability kinds. CapBoth is the union of CapPlus and CapMinus.
const (
	CapPlus CapKind = 1 << iota
	CapMinus
	CapBoth = CapPlus | CapMinus
)

// String names the capability kind (+, -, or +-).
func (k CapKind) String() string {
	switch k {
	case CapPlus:
		return "+"
	case CapMinus:
		return "-"
	case CapBoth:
		return "+-"
	default:
		return "?"
	}
}

// CapSet is an immutable capability set Cp: for each tag it records whether
// the principal may add the tag (t+ ∈ Cp) and whether it may drop it
// (t− ∈ Cp). The t+ capability classifies data with secrecy tag t or
// endorses data with integrity tag t; t− declassifies or drops the
// endorsement (§3.1).
//
// The zero value is the empty capability set.
type CapSet struct {
	plus  Label // tags with t+ held
	minus Label // tags with t- held
}

// EmptyCapSet holds no capabilities.
var EmptyCapSet = CapSet{}

// NewCapSet builds a capability set from explicit plus and minus tag sets.
func NewCapSet(plus, minus Label) CapSet { return CapSet{plus: plus, minus: minus} }

// Grant returns a capability set that additionally holds kind capabilities
// for tag t.
func (c CapSet) Grant(t Tag, kind CapKind) CapSet {
	out := c
	if kind&CapPlus != 0 {
		out.plus = out.plus.Add(t)
	}
	if kind&CapMinus != 0 {
		out.minus = out.minus.Add(t)
	}
	return out
}

// Drop returns a capability set without the kind capabilities for tag t.
func (c CapSet) Drop(t Tag, kind CapKind) CapSet {
	out := c
	if kind&CapPlus != 0 {
		out.plus = out.plus.Remove(t)
	}
	if kind&CapMinus != 0 {
		out.minus = out.minus.Remove(t)
	}
	return out
}

// CanAdd reports whether the holder may add tag t to one of its labels
// (t+ ∈ Cp).
func (c CapSet) CanAdd(t Tag) bool { return c.plus.Has(t) }

// CanDrop reports whether the holder may remove tag t from one of its
// labels (t− ∈ Cp).
func (c CapSet) CanDrop(t Tag) bool { return c.minus.Has(t) }

// Has reports whether the set holds all the kind capabilities for tag t.
func (c CapSet) Has(t Tag, kind CapKind) bool {
	if kind&CapPlus != 0 && !c.plus.Has(t) {
		return false
	}
	if kind&CapMinus != 0 && !c.minus.Has(t) {
		return false
	}
	return kind != 0
}

// Plus returns the set of tags for which t+ is held (Cp+).
func (c CapSet) Plus() Label { return c.plus }

// Minus returns the set of tags for which t− is held (Cp−).
func (c CapSet) Minus() Label { return c.minus }

// IsEmpty reports whether the set holds no capabilities at all.
func (c CapSet) IsEmpty() bool { return c.plus.IsEmpty() && c.minus.IsEmpty() }

// Union returns the combined capabilities of c and other.
func (c CapSet) Union(other CapSet) CapSet {
	return CapSet{plus: c.plus.Union(other.plus), minus: c.minus.Union(other.minus)}
}

// Intersect returns the capabilities held by both c and other.
func (c CapSet) Intersect(other CapSet) CapSet {
	return CapSet{plus: c.plus.Meet(other.plus), minus: c.minus.Meet(other.minus)}
}

// SubsetOf reports whether every capability in c is also in other
// (CR ⊆ CP, rule (2) of §4.3.2).
func (c CapSet) SubsetOf(other CapSet) bool {
	return c.plus.SubsetOf(other.plus) && c.minus.SubsetOf(other.minus)
}

// Equal reports whether two capability sets are identical.
func (c CapSet) Equal(other CapSet) bool {
	return c.plus.Equal(other.plus) && c.minus.Equal(other.minus)
}

// String renders the set as C(t1+,t2+-,...), in the paper's notation.
func (c CapSet) String() string {
	var b strings.Builder
	b.WriteString("C(")
	first := true
	both := c.plus.Meet(c.minus)
	for _, t := range both.Tags() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(t.String())
		b.WriteString("+-")
	}
	for _, t := range c.plus.Minus(both).Tags() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(t.String())
		b.WriteByte('+')
	}
	for _, t := range c.minus.Minus(both).Tags() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(t.String())
		b.WriteByte('-')
	}
	b.WriteByte(')')
	return b.String()
}
