package difc

import (
	"testing"
	"testing/quick"
)

// Differential testing: every optimized sorted-slice set operation is
// checked against a naive map-based reference model on random inputs.

type refSet map[Tag]bool

func toRef(l Label) refSet {
	m := make(refSet)
	for _, t := range l.Tags() {
		m[t] = true
	}
	return m
}

func refEqual(m refSet, l Label) bool {
	if len(m) != l.Len() {
		return false
	}
	for t := range m {
		if !l.Has(t) {
			return false
		}
	}
	return true
}

func TestDiffUnion(t *testing.T) {
	f := func(a, b Label) bool {
		want := toRef(a)
		for t := range toRef(b) {
			want[t] = true
		}
		return refEqual(want, a.Union(b))
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}

func TestDiffMeet(t *testing.T) {
	f := func(a, b Label) bool {
		bm := toRef(b)
		want := make(refSet)
		for t := range toRef(a) {
			if bm[t] {
				want[t] = true
			}
		}
		return refEqual(want, a.Meet(b))
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}

func TestDiffMinus(t *testing.T) {
	f := func(a, b Label) bool {
		bm := toRef(b)
		want := make(refSet)
		for t := range toRef(a) {
			if !bm[t] {
				want[t] = true
			}
		}
		return refEqual(want, a.Minus(b))
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}

func TestDiffSubsetOf(t *testing.T) {
	f := func(a, b Label) bool {
		bm := toRef(b)
		want := true
		for t := range toRef(a) {
			if !bm[t] {
				want = false
				break
			}
		}
		return want == a.SubsetOf(b)
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}

func TestDiffCanFlow(t *testing.T) {
	// Reference: brute-force the two subset conditions element-wise.
	f := func(x, y Labels) bool {
		want := true
		ym := toRef(y.S)
		for t := range toRef(x.S) {
			if !ym[t] {
				want = false
			}
		}
		xm := toRef(x.I)
		for t := range toRef(y.I) {
			if !xm[t] {
				want = false
			}
		}
		return want == x.CanFlowTo(y)
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}

func TestDiffCanChange(t *testing.T) {
	f := func(from, to Label, caps CapSet) bool {
		plus, minus := toRef(caps.Plus()), toRef(caps.Minus())
		fromM, toM := toRef(from), toRef(to)
		want := true
		for t := range toM {
			if !fromM[t] && !plus[t] {
				want = false
			}
		}
		for t := range fromM {
			if !toM[t] && !minus[t] {
				want = false
			}
		}
		return want == CanChange(from, to, caps)
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}

func TestDiffAddRemove(t *testing.T) {
	f := func(a Label, tag Tag) bool {
		if tag == InvalidTag {
			return true
		}
		want := toRef(a)
		want[tag] = true
		if !refEqual(want, a.Add(tag)) {
			return false
		}
		delete(want, tag)
		return refEqual(want, a.Add(tag).Remove(tag))
	}
	if err := quick.Check(f, quickCfg(t, 1000)); err != nil {
		t.Error(err)
	}
}
