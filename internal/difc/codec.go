package difc

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// This file holds the wire/persistence encodings used by the simulated
// kernel: a compact binary form stored in inode extended attributes
// (mirroring Laminar's use of ext3 xattrs, §5.2) and a human-readable text
// form used in persistent capability files and test fixtures.

// MarshalBinary encodes the label as a length-prefixed list of big-endian
// 64-bit tags, the layout Laminar stores under security.laminar.* xattrs.
func (l Label) MarshalBinary() ([]byte, error) {
	tags := l.view()
	buf := make([]byte, 4+8*len(tags))
	binary.BigEndian.PutUint32(buf, uint32(len(tags)))
	for i, t := range tags {
		binary.BigEndian.PutUint64(buf[4+8*i:], uint64(t))
	}
	return buf, nil
}

// UnmarshalLabel decodes a label previously produced by MarshalBinary.
func UnmarshalLabel(data []byte) (Label, error) {
	if len(data) < 4 {
		return Label{}, fmt.Errorf("difc: label encoding too short: %d bytes", len(data))
	}
	n := int(binary.BigEndian.Uint32(data))
	if len(data) != 4+8*n {
		return Label{}, fmt.Errorf("difc: label encoding length mismatch: header says %d tags, body has %d bytes", n, len(data)-4)
	}
	tags := make([]Tag, n)
	for i := 0; i < n; i++ {
		tags[i] = Tag(binary.BigEndian.Uint64(data[4+8*i:]))
	}
	return NewLabel(tags...), nil
}

// FormatText renders the label as a comma-separated list of decimal tag
// values ("" for the empty label), the format used in persistent capability
// files.
func (l Label) FormatText() string {
	tags := l.view()
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = strconv.FormatUint(uint64(t), 10)
	}
	return strings.Join(parts, ",")
}

// ParseLabelText parses FormatText output.
func ParseLabelText(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Label{}, nil
	}
	parts := strings.Split(s, ",")
	tags := make([]Tag, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return Label{}, fmt.Errorf("difc: bad tag %q: %v", p, err)
		}
		tags = append(tags, Tag(v))
	}
	return NewLabel(tags...), nil
}

// FormatText renders the capability set as "plus|minus" with each side in
// Label.FormatText form.
func (c CapSet) FormatText() string {
	return c.plus.FormatText() + "|" + c.minus.FormatText()
}

// ParseCapSetText parses CapSet.FormatText output.
func ParseCapSetText(s string) (CapSet, error) {
	plusStr, minusStr, ok := strings.Cut(s, "|")
	if !ok {
		return CapSet{}, fmt.Errorf("difc: bad capset encoding %q: missing separator", s)
	}
	plus, err := ParseLabelText(plusStr)
	if err != nil {
		return CapSet{}, err
	}
	minus, err := ParseLabelText(minusStr)
	if err != nil {
		return CapSet{}, err
	}
	return CapSet{plus: plus, minus: minus}, nil
}
