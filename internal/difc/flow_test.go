package difc

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanFlowSecrecy(t *testing.T) {
	a, b := Tag(1), Tag(2)
	cases := []struct {
		name     string
		src, dst Labels
		want     bool
	}{
		{"unlabeled to unlabeled", Unlabeled, Unlabeled, true},
		{"unlabeled to secret", Unlabeled, Labels{S: NewLabel(a)}, true},
		{"secret to unlabeled (leak)", Labels{S: NewLabel(a)}, Unlabeled, false},
		{"secret to same secret", Labels{S: NewLabel(a)}, Labels{S: NewLabel(a)}, true},
		{"secret to more secret", Labels{S: NewLabel(a)}, Labels{S: NewLabel(a, b)}, true},
		{"two secrets to one (leak)", Labels{S: NewLabel(a, b)}, Labels{S: NewLabel(a)}, false},
		{"disjoint secrets", Labels{S: NewLabel(a)}, Labels{S: NewLabel(b)}, false},
	}
	for _, c := range cases {
		if got := c.src.CanFlowTo(c.dst); got != c.want {
			t.Errorf("%s: CanFlowTo = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCanFlowIntegrity(t *testing.T) {
	i := Tag(7)
	high := Labels{I: NewLabel(i)}
	cases := []struct {
		name     string
		src, dst Labels
		want     bool
	}{
		{"high to high", high, high, true},
		{"high to low", high, Unlabeled, true},
		{"low to high (corruption)", Unlabeled, high, false},
	}
	for _, c := range cases {
		if got := c.src.CanFlowTo(c.dst); got != c.want {
			t.Errorf("%s: CanFlowTo = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCheckFlowErrors(t *testing.T) {
	a := Tag(1)
	err := CheckFlow("write", Labels{S: NewLabel(a)}, Unlabeled)
	if err == nil {
		t.Fatal("expected secrecy violation")
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("error type %T, want *FlowError", err)
	}
	if fe.Rule != "secrecy" || fe.Op != "write" {
		t.Errorf("FlowError = %+v", fe)
	}
	if !strings.Contains(fe.Error(), "secrecy") {
		t.Errorf("Error() = %q", fe.Error())
	}

	err = CheckFlow("read", Unlabeled, Labels{I: NewLabel(a)})
	if !errors.As(err, &fe) || fe.Rule != "integrity" {
		t.Errorf("want integrity violation, got %v", err)
	}

	if err := CheckFlow("read", Unlabeled, Unlabeled); err != nil {
		t.Errorf("legal flow rejected: %v", err)
	}
}

func TestCanChange(t *testing.T) {
	a, b := Tag(1), Tag(2)
	caps := EmptyCapSet.Grant(a, CapBoth).Grant(b, CapPlus)
	cases := []struct {
		name     string
		from, to Label
		want     bool
	}{
		{"add with plus", NewLabel(), NewLabel(a), true},
		{"drop with minus", NewLabel(a), NewLabel(), true},
		{"add b with plus only", NewLabel(), NewLabel(b), true},
		{"drop b without minus", NewLabel(b), NewLabel(), false},
		{"swap a for b", NewLabel(a), NewLabel(b), true},
		{"swap b for a (needs b-)", NewLabel(b), NewLabel(a), false},
		{"no change always legal", NewLabel(b), NewLabel(b), true},
	}
	for _, c := range cases {
		if got := CanChange(c.from, c.to, caps); got != c.want {
			t.Errorf("%s: CanChange(%v, %v) = %v, want %v", c.name, c.from, c.to, got, c.want)
		}
	}
}

func TestCanChangeNoCapabilities(t *testing.T) {
	f := func(l Label) bool { return CanChange(l, l, EmptyCapSet) }
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error("identity change must always be legal:", err)
	}
}

func TestCanChangeLabels(t *testing.T) {
	s, i := Tag(1), Tag(2)
	caps := EmptyCapSet.Grant(s, CapPlus).Grant(i, CapPlus)
	from := Unlabeled
	to := Labels{S: NewLabel(s), I: NewLabel(i)}
	if !CanChangeLabels(from, to, caps) {
		t.Error("raise with plus caps should be legal")
	}
	if CanChangeLabels(to, from, caps) {
		t.Error("drop without minus caps should be illegal")
	}
}

func TestCanEnterRegion(t *testing.T) {
	a, b, i := Tag(1), Tag(2), Tag(3)
	// Thread: unlabeled, holds a+, a-, b+ and i+ (the Figure 4 thread).
	pc := EmptyCapSet.Grant(a, CapBoth).Grant(b, CapPlus).Grant(i, CapPlus)
	p := Unlabeled

	// Region {S(a,b), I(i), C(a-)} — legal per Figure 4.
	r := Labels{S: NewLabel(a, b), I: NewLabel(i)}
	rc := EmptyCapSet.Grant(a, CapMinus)
	if !CanEnterRegion(p, pc, r, rc) {
		t.Error("Figure 4 region entry rejected")
	}

	// Region asking for a capability the thread lacks (b-).
	rc2 := EmptyCapSet.Grant(b, CapMinus)
	if CanEnterRegion(p, pc, r, rc2) {
		t.Error("region got capability thread lacks")
	}

	// Region asking for a secrecy tag the thread cannot add.
	r2 := Labels{S: NewLabel(Tag(99))}
	if CanEnterRegion(p, pc, r2, EmptyCapSet) {
		t.Error("region got label thread cannot add")
	}

	// A thread already tainted with the tag can enter without the plus cap.
	tainted := Labels{S: NewLabel(Tag(99))}
	if !CanEnterRegion(tainted, EmptyCapSet, Labels{S: NewLabel(Tag(99))}, EmptyCapSet) {
		t.Error("tainted thread should enter region with its own label")
	}
}

func TestPropEnterRegionSubsetCaps(t *testing.T) {
	// Rule (2): any region whose capability set is not a subset of the
	// thread's must be rejected.
	f := func(pc, rc CapSet) bool {
		if CanEnterRegion(Unlabeled, pc, Unlabeled, rc) {
			return rc.SubsetOf(pc)
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropFlowTransitive(t *testing.T) {
	// If a→b and b→c are legal with no label changes, a→c is legal.
	f := func(a, b, c Labels) bool {
		if a.CanFlowTo(b) && b.CanFlowTo(c) {
			return a.CanFlowTo(c)
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 500)); err != nil {
		t.Error(err)
	}
}

// Generate for Labels composes the Label generator.
func (Labels) Generate(r *rand.Rand, size int) reflect.Value {
	s := Label{}.Generate(r, size).Interface().(Label)
	i := Label{}.Generate(r, size).Interface().(Label)
	return reflect.ValueOf(Labels{S: s, I: i})
}

func TestPropCanChangeSound(t *testing.T) {
	// Whatever CanChange allows must decompose into adds covered by Cp+ and
	// drops covered by Cp-.
	f := func(from, to Label, caps CapSet) bool {
		if !CanChange(from, to, caps) {
			return true
		}
		for _, tg := range to.Minus(from).Tags() {
			if !caps.CanAdd(tg) {
				return false
			}
		}
		for _, tg := range from.Minus(to).Tags() {
			if !caps.CanDrop(tg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestLabelsString(t *testing.T) {
	l := Labels{S: NewLabel(1), I: NewLabel(2)}
	if got := l.String(); got != "{S{t1},I{t2}}" {
		t.Errorf("String() = %q", got)
	}
}
