package difc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets testing/quick produce random small labels drawn from a tag
// universe of 1..16 so that subset/overlap relations actually occur.
func (Label) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(6)
	tags := make([]Tag, n)
	for i := range tags {
		tags[i] = Tag(r.Intn(16) + 1)
	}
	return reflect.ValueOf(NewLabel(tags...))
}

// Generate produces random small capability sets over the same universe.
func (CapSet) Generate(r *rand.Rand, size int) reflect.Value {
	mk := func() Label {
		n := r.Intn(6)
		tags := make([]Tag, n)
		for i := range tags {
			tags[i] = Tag(r.Intn(16) + 1)
		}
		return NewLabel(tags...)
	}
	return reflect.ValueOf(NewCapSet(mk(), mk()))
}

func TestNewLabelDedupsAndSorts(t *testing.T) {
	l := NewLabel(5, 3, 5, 1, 3)
	want := []Tag{1, 3, 5}
	if got := l.Tags(); !reflect.DeepEqual(got, want) {
		t.Errorf("Tags() = %v, want %v", got, want)
	}
	if l.Len() != 3 {
		t.Errorf("Len() = %d, want 3", l.Len())
	}
}

func TestNewLabelDropsInvalidTag(t *testing.T) {
	l := NewLabel(InvalidTag, 2)
	if l.Has(InvalidTag) {
		t.Error("label contains InvalidTag")
	}
	if !l.Has(2) {
		t.Error("label missing tag 2")
	}
	if got := NewLabel(InvalidTag); !got.IsEmpty() {
		t.Errorf("NewLabel(InvalidTag) = %v, want empty", got)
	}
}

func TestLabelHas(t *testing.T) {
	l := NewLabel(2, 4, 8)
	for _, tag := range []Tag{2, 4, 8} {
		if !l.Has(tag) {
			t.Errorf("Has(%v) = false, want true", tag)
		}
	}
	for _, tag := range []Tag{1, 3, 5, 9} {
		if l.Has(tag) {
			t.Errorf("Has(%v) = true, want false", tag)
		}
	}
}

func TestLabelSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Label
		want bool
	}{
		{NewLabel(), NewLabel(), true},
		{NewLabel(), NewLabel(1), true},
		{NewLabel(1), NewLabel(), false},
		{NewLabel(1), NewLabel(1), true},
		{NewLabel(1, 2), NewLabel(1, 2, 3), true},
		{NewLabel(1, 4), NewLabel(1, 2, 3), false},
		{NewLabel(2, 3), NewLabel(1, 2, 3), true},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLabelUnionMeetMinus(t *testing.T) {
	a := NewLabel(1, 2, 3)
	b := NewLabel(3, 4)
	if got := a.Union(b); !got.Equal(NewLabel(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Meet(b); !got.Equal(NewLabel(3)) {
		t.Errorf("Meet = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewLabel(1, 2)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(NewLabel(4)) {
		t.Errorf("Minus = %v", got)
	}
}

func TestLabelAddRemove(t *testing.T) {
	l := NewLabel(1)
	l2 := l.Add(2)
	if !l2.Equal(NewLabel(1, 2)) {
		t.Errorf("Add = %v", l2)
	}
	if !l.Equal(NewLabel(1)) {
		t.Errorf("Add mutated receiver: %v", l)
	}
	l3 := l2.Remove(1)
	if !l3.Equal(NewLabel(2)) {
		t.Errorf("Remove = %v", l3)
	}
	if got := l.Add(InvalidTag); !got.Equal(l) {
		t.Errorf("Add(InvalidTag) = %v, want unchanged", got)
	}
}

func TestLabelString(t *testing.T) {
	if got := NewLabel().String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
	if got := NewLabel(2, 1).String(); got != "{t1,t2}" {
		t.Errorf("String() = %q", got)
	}
}

func TestTagsReturnsCopy(t *testing.T) {
	l := NewLabel(1, 2)
	got := l.Tags()
	got[0] = 99
	if !l.Has(1) || l.Has(99) {
		t.Error("mutating Tags() result affected the label")
	}
	if NewLabel().Tags() != nil {
		t.Error("empty label Tags() should be nil")
	}
}

// --- Lattice laws, property-checked with testing/quick ---

func TestPropUnionCommutative(t *testing.T) {
	f := func(a, b Label) bool { return a.Union(b).Equal(b.Union(a)) }
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropUnionAssociative(t *testing.T) {
	f := func(a, b, c Label) bool {
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropUnionIdempotent(t *testing.T) {
	f := func(a Label) bool { return a.Union(a).Equal(a) }
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropMeetCommutative(t *testing.T) {
	f := func(a, b Label) bool { return a.Meet(b).Equal(b.Meet(a)) }
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropAbsorption(t *testing.T) {
	f := func(a, b Label) bool {
		return a.Union(a.Meet(b)).Equal(a) && a.Meet(a.Union(b)).Equal(a)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropSubsetPartialOrder(t *testing.T) {
	// Reflexive, antisymmetric, transitive.
	refl := func(a Label) bool { return a.SubsetOf(a) }
	if err := quick.Check(refl, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
	anti := func(a, b Label) bool {
		if a.SubsetOf(b) && b.SubsetOf(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(anti, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c Label) bool {
		if a.SubsetOf(b) && b.SubsetOf(c) {
			return a.SubsetOf(c)
		}
		return true
	}
	if err := quick.Check(trans, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropUnionIsLeastUpperBound(t *testing.T) {
	f := func(a, b Label) bool {
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropMinusDisjoint(t *testing.T) {
	f := func(a, b Label) bool {
		d := a.Minus(b)
		return d.Meet(b).IsEmpty() && d.SubsetOf(a)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropPartition(t *testing.T) {
	// a = (a−b) ∪ (a∩b)
	f := func(a, b Label) bool {
		return a.Minus(b).Union(a.Meet(b)).Equal(a)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}
