package difc

import "fmt"

// Labels pairs a secrecy label with an integrity label — the full security
// metadata of a principal or data object, written {S(s...),I(i...)} in the
// paper. The zero value is the unlabeled state {S(),I()}.
type Labels struct {
	S Label // secrecy label
	I Label // integrity label
}

// Unlabeled is the implicit label pair of every unlabeled resource.
var Unlabeled = Labels{}

// NewLabels builds a label pair from explicit secrecy and integrity sets.
func NewLabels(s, i Label) Labels { return Labels{S: s, I: i} }

// IsEmpty reports whether both labels are empty ({S(),I()}).
func (l Labels) IsEmpty() bool { return l.S.IsEmpty() && l.I.IsEmpty() }

// Equal reports whether both components match.
func (l Labels) Equal(other Labels) bool { return l.S.Equal(other.S) && l.I.Equal(other.I) }

// CanFlowTo reports whether information may flow from a source with labels
// l to a destination with labels dst without any label change:
//
//	secrecy (Bell–LaPadula):  Sx ⊆ Sy — no read up, no write down
//	integrity (Biba):         Iy ⊆ Ix — no read down, no write up
//
// (§3.2). Either endpoint may first make a flow feasible by changing its
// own labels under the label-change rule; that is CanChange's job.
func (l Labels) CanFlowTo(dst Labels) bool {
	return l.S.SubsetOf(dst.S) && dst.I.SubsetOf(l.I)
}

// String renders the pair in the paper's {S(...),I(...)} notation.
func (l Labels) String() string {
	return fmt.Sprintf("{S%s,I%s}", l.S.String(), l.I.String())
}

// CanChange reports whether a principal holding caps may change one of its
// labels from the current set to the desired set. The paper's label-change
// rule (§3.2):
//
//	(L2 − L1) ⊆ Cp+  and  (L1 − L2) ⊆ Cp−
//
// Added tags need the plus capability, dropped tags the minus capability.
func CanChange(from, to Label, caps CapSet) bool {
	return to.Minus(from).SubsetOf(caps.Plus()) && from.Minus(to).SubsetOf(caps.Minus())
}

// CanChangeLabels applies CanChange to both components of a label pair.
func CanChangeLabels(from, to Labels, caps CapSet) bool {
	return CanChange(from.S, to.S, caps) && CanChange(from.I, to.I, caps)
}

// CheckChangeLabels is CanChangeLabels with provenance: the returned
// *ChangeError names the first component whose change the capability set
// does not permit.
func CheckChangeLabels(op string, from, to Labels, caps CapSet) error {
	if err := CheckChange(op, from.S, to.S, caps); err != nil {
		return err
	}
	return CheckChange(op, from.I, to.I, caps)
}

// CanEnterRegion checks the security-region initialization rules (§4.3.2)
// for a principal with labels p and capabilities pc entering a region
// declared with labels r and capabilities rc:
//
//	(1) SR ⊆ (Cp+ ∪ SP)  and  IR ⊆ (Cp+ ∪ IP)
//	(2) CR ⊆ CP
//
// plus the drop half of the label-change rule: any tag the principal
// currently carries that the region omits is a declassification (or
// endorsement drop) and needs the minus capability. Figure 4's nested
// region {S(b), C(a−)} entered from {S(a,b)} type-checks precisely because
// a− is in the entering thread's capability set; without the drop check, a
// nested empty region would silently declassify the thread.
func CanEnterRegion(p Labels, pc CapSet, r Labels, rc CapSet) bool {
	return CheckEnterRegion(p, pc, r, rc) == nil
}

// CheckEnterRegion is CanEnterRegion with provenance: it returns nil when
// entry is legal and a *ChangeError naming the first violated condition
// and its offending tag delta otherwise. The Op field distinguishes the
// acquisition half ("region-enter"), the declassification half
// ("region-drop"), and the capability-subset condition ("region-caps").
func CheckEnterRegion(p Labels, pc CapSet, r Labels, rc CapSet) error {
	if err := CheckAcquire("region-enter", p.S, r.S, pc); err != nil {
		return err
	}
	if err := CheckAcquire("region-enter", p.I, r.I, pc); err != nil {
		return err
	}
	if missing := p.S.Minus(r.S).Minus(pc.Minus()); !missing.IsEmpty() {
		return &ChangeError{Op: "region-drop", Check: "drop", From: p.S, To: r.S, Caps: pc, Missing: missing}
	}
	if missing := p.I.Minus(r.I).Minus(pc.Minus()); !missing.IsEmpty() {
		return &ChangeError{Op: "region-drop", Check: "drop", From: p.I, To: r.I, Caps: pc, Missing: missing}
	}
	if !rc.SubsetOf(pc) {
		missing := rc.Plus().Minus(pc.Plus()).Union(rc.Minus().Minus(pc.Minus()))
		return &ChangeError{Op: "region-caps", Check: "subset", From: rc.Plus(), To: rc.Minus(), Caps: pc, Missing: missing}
	}
	return nil
}

// FlowError describes a rejected information flow. It satisfies error and
// carries the labels on both sides so callers (and tests) can see exactly
// which rule failed.
type FlowError struct {
	Op   string // operation attempted, e.g. "read", "write", "send"
	Src  Labels // source labels
	Dst  Labels // destination labels
	Rule string // which rule failed: "secrecy" or "integrity"
}

// Error formats the violation.
func (e *FlowError) Error() string {
	return fmt.Sprintf("difc: %s: %s flow violation: %v -> %v", e.Op, e.Rule, e.Src, e.Dst)
}

// Delta returns the offending tag set of the violated rule: the secrecy
// tags the source carries beyond the destination, or the integrity tags
// the destination demands beyond the source. Telemetry provenance records
// it so a denial names not just the rule but the exact tags that fired it.
func (e *FlowError) Delta() Label {
	if e.Rule == "integrity" {
		return e.Dst.I.Minus(e.Src.I)
	}
	return e.Src.S.Minus(e.Dst.S)
}

// ChangeError describes a rejected label change (or label acquisition):
// the principal lacked the capabilities to move from From to To. Missing
// carries the exact tags for which the needed capability was absent, so a
// provenance record can name the offending delta.
type ChangeError struct {
	Op      string // operation attempted, e.g. "set_task_label", "create"
	Check   string // which check shape fired: "change", "acquire", "drop", "subset"
	From    Label  // current label
	To      Label  // requested label
	Caps    CapSet // the capability set the check ran against
	Missing Label  // tags lacking the required capability
}

// Error formats the violation.
func (e *ChangeError) Error() string {
	if e.Check == "subset" {
		return fmt.Sprintf("difc: %s: capability subset violation: need %v held for %v", e.Op, NewCapSet(e.From, e.To), e.Missing)
	}
	return fmt.Sprintf("difc: %s: label change %v -> %v denied: missing capability for %v", e.Op, e.From, e.To, e.Missing)
}

// CheckChange returns nil when the label-change rule permits from -> to
// under caps, and a *ChangeError naming the capability-less tags
// otherwise.
func CheckChange(op string, from, to Label, caps CapSet) error {
	missing := to.Minus(from).Minus(caps.Plus()).Union(from.Minus(to).Minus(caps.Minus()))
	if missing.IsEmpty() {
		return nil
	}
	return &ChangeError{Op: op, Check: "change", From: from, To: to, Caps: caps, Missing: missing}
}

// CheckAcquire returns nil when the principal could acquire label want
// given current label have and capability set caps (want ⊆ C+ ∪ have) —
// the acquisition half of the label-change rule used by labeled create
// and region entry — and a *ChangeError naming the unobtainable tags
// otherwise.
func CheckAcquire(op string, have, want Label, caps CapSet) error {
	missing := want.Minus(caps.Plus().Union(have))
	if missing.IsEmpty() {
		return nil
	}
	return &ChangeError{Op: op, Check: "acquire", From: have, To: want, Caps: caps, Missing: missing}
}

// CheckFlow returns nil when information may flow src → dst, and a
// *FlowError naming the violated rule otherwise.
func CheckFlow(op string, src, dst Labels) error {
	if !src.S.SubsetOf(dst.S) {
		return &FlowError{Op: op, Src: src, Dst: dst, Rule: "secrecy"}
	}
	if !dst.I.SubsetOf(src.I) {
		return &FlowError{Op: op, Src: src, Dst: dst, Rule: "integrity"}
	}
	return nil
}
