package difc

import "fmt"

// Labels pairs a secrecy label with an integrity label — the full security
// metadata of a principal or data object, written {S(s...),I(i...)} in the
// paper. The zero value is the unlabeled state {S(),I()}.
type Labels struct {
	S Label // secrecy label
	I Label // integrity label
}

// Unlabeled is the implicit label pair of every unlabeled resource.
var Unlabeled = Labels{}

// NewLabels builds a label pair from explicit secrecy and integrity sets.
func NewLabels(s, i Label) Labels { return Labels{S: s, I: i} }

// IsEmpty reports whether both labels are empty ({S(),I()}).
func (l Labels) IsEmpty() bool { return l.S.IsEmpty() && l.I.IsEmpty() }

// Equal reports whether both components match.
func (l Labels) Equal(other Labels) bool { return l.S.Equal(other.S) && l.I.Equal(other.I) }

// CanFlowTo reports whether information may flow from a source with labels
// l to a destination with labels dst without any label change:
//
//	secrecy (Bell–LaPadula):  Sx ⊆ Sy — no read up, no write down
//	integrity (Biba):         Iy ⊆ Ix — no read down, no write up
//
// (§3.2). Either endpoint may first make a flow feasible by changing its
// own labels under the label-change rule; that is CanChange's job.
func (l Labels) CanFlowTo(dst Labels) bool {
	return l.S.SubsetOf(dst.S) && dst.I.SubsetOf(l.I)
}

// String renders the pair in the paper's {S(...),I(...)} notation.
func (l Labels) String() string {
	return fmt.Sprintf("{S%s,I%s}", l.S.String(), l.I.String())
}

// CanChange reports whether a principal holding caps may change one of its
// labels from the current set to the desired set. The paper's label-change
// rule (§3.2):
//
//	(L2 − L1) ⊆ Cp+  and  (L1 − L2) ⊆ Cp−
//
// Added tags need the plus capability, dropped tags the minus capability.
func CanChange(from, to Label, caps CapSet) bool {
	return to.Minus(from).SubsetOf(caps.Plus()) && from.Minus(to).SubsetOf(caps.Minus())
}

// CanChangeLabels applies CanChange to both components of a label pair.
func CanChangeLabels(from, to Labels, caps CapSet) bool {
	return CanChange(from.S, to.S, caps) && CanChange(from.I, to.I, caps)
}

// CanEnterRegion checks the security-region initialization rules (§4.3.2)
// for a principal with labels p and capabilities pc entering a region
// declared with labels r and capabilities rc:
//
//	(1) SR ⊆ (Cp+ ∪ SP)  and  IR ⊆ (Cp+ ∪ IP)
//	(2) CR ⊆ CP
//
// plus the drop half of the label-change rule: any tag the principal
// currently carries that the region omits is a declassification (or
// endorsement drop) and needs the minus capability. Figure 4's nested
// region {S(b), C(a−)} entered from {S(a,b)} type-checks precisely because
// a− is in the entering thread's capability set; without the drop check, a
// nested empty region would silently declassify the thread.
func CanEnterRegion(p Labels, pc CapSet, r Labels, rc CapSet) bool {
	if !r.S.SubsetOf(pc.Plus().Union(p.S)) {
		return false
	}
	if !r.I.SubsetOf(pc.Plus().Union(p.I)) {
		return false
	}
	if !p.S.Minus(r.S).SubsetOf(pc.Minus()) {
		return false
	}
	if !p.I.Minus(r.I).SubsetOf(pc.Minus()) {
		return false
	}
	return rc.SubsetOf(pc)
}

// FlowError describes a rejected information flow. It satisfies error and
// carries the labels on both sides so callers (and tests) can see exactly
// which rule failed.
type FlowError struct {
	Op   string // operation attempted, e.g. "read", "write", "send"
	Src  Labels // source labels
	Dst  Labels // destination labels
	Rule string // which rule failed: "secrecy" or "integrity"
}

// Error formats the violation.
func (e *FlowError) Error() string {
	return fmt.Sprintf("difc: %s: %s flow violation: %v -> %v", e.Op, e.Rule, e.Src, e.Dst)
}

// CheckFlow returns nil when information may flow src → dst, and a
// *FlowError naming the violated rule otherwise.
func CheckFlow(op string, src, dst Labels) error {
	if !src.S.SubsetOf(dst.S) {
		return &FlowError{Op: op, Src: src, Dst: dst, Rule: "secrecy"}
	}
	if !dst.I.SubsetOf(src.I) {
		return &FlowError{Op: op, Src: src, Dst: dst, Rule: "integrity"}
	}
	return nil
}
