package difc

import (
	"testing"
	"testing/quick"
)

func TestCapSetGrantDrop(t *testing.T) {
	c := EmptyCapSet.Grant(1, CapBoth)
	if !c.CanAdd(1) || !c.CanDrop(1) {
		t.Error("Grant(CapBoth) should grant both halves")
	}
	c2 := c.Drop(1, CapMinus)
	if !c2.CanAdd(1) || c2.CanDrop(1) {
		t.Error("Drop(CapMinus) should leave plus intact")
	}
	if !c.CanDrop(1) {
		t.Error("Drop mutated receiver")
	}
	if c2.Has(1, CapPlus) != true || c2.Has(1, CapBoth) != false {
		t.Error("Has kind queries wrong")
	}
	if c2.Has(1, CapKind(0)) {
		t.Error("Has with zero kind should be false")
	}
}

func TestCapSetUnionIntersect(t *testing.T) {
	a := EmptyCapSet.Grant(1, CapPlus).Grant(2, CapMinus)
	b := EmptyCapSet.Grant(1, CapBoth)
	u := a.Union(b)
	if !u.CanAdd(1) || !u.CanDrop(1) || !u.CanDrop(2) {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	if !i.CanAdd(1) || i.CanDrop(1) || i.CanDrop(2) {
		t.Errorf("Intersect = %v", i)
	}
}

func TestCapSetSubsetOf(t *testing.T) {
	a := EmptyCapSet.Grant(1, CapPlus)
	b := EmptyCapSet.Grant(1, CapBoth).Grant(2, CapMinus)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !EmptyCapSet.SubsetOf(a) {
		t.Error("empty set is subset of everything")
	}
}

func TestCapSetString(t *testing.T) {
	c := EmptyCapSet.Grant(1, CapBoth).Grant(2, CapPlus).Grant(3, CapMinus)
	if got := c.String(); got != "C(t1+-,t2+,t3-)" {
		t.Errorf("String() = %q", got)
	}
	if got := EmptyCapSet.String(); got != "C()" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestCapSetIsEmpty(t *testing.T) {
	if !EmptyCapSet.IsEmpty() {
		t.Error("EmptyCapSet not empty")
	}
	if EmptyCapSet.Grant(1, CapPlus).IsEmpty() {
		t.Error("granted set reported empty")
	}
}

func TestCapKindString(t *testing.T) {
	cases := map[CapKind]string{CapPlus: "+", CapMinus: "-", CapBoth: "+-", CapKind(0): "?"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestPropCapSetUnionMonotone(t *testing.T) {
	f := func(a, b CapSet) bool {
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropCapSetIntersectLowerBound(t *testing.T) {
	f := func(a, b CapSet) bool {
		i := a.Intersect(b)
		return i.SubsetOf(a) && i.SubsetOf(b)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}

func TestPropGrantThenHas(t *testing.T) {
	f := func(c CapSet) bool {
		g := c.Grant(42, CapBoth)
		return g.CanAdd(42) && g.CanDrop(42)
	}
	if err := quick.Check(f, quickCfg(t, 100)); err != nil {
		t.Error(err)
	}
}
