package difc

import (
	"flag"
	"math/rand"
	"testing"
	"testing/quick"
)

// difcSeed drives every property test's value generation. testing/quick's
// default Rand is seeded from the wall clock, which makes a failing
// counterexample unreproducible; here the seed is fixed, overridable, and
// logged whenever a property fails.
var difcSeed = flag.Int64("difc.seed", 1, "seed for property-test value generation")

// quickCfg returns a quick.Config with deterministic, seed-logged
// randomness. Every quick.Check in this package goes through it.
func quickCfg(t *testing.T, maxCount int) *quick.Config {
	t.Helper()
	seed := *difcSeed
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("property-test seed: %d (rerun with -difc.seed=%d)", seed, seed)
		}
	})
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(seed))}
}
