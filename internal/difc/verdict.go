package difc

import "sync/atomic"

// VerdictCache memoizes whole access verdicts — the final allow/deny
// result of a security module's checkAccess, error value included —
// keyed by (object identity, operation class) and guarded by the label
// epochs of the subject and the object at the time the verdict was
// derived. It is the "coarse" cache of the coarse↔fine equivalence:
// instead of re-deriving a verdict from per-tag subset walks, a repeated
// same-pair check costs an array probe plus the two epoch loads the
// caller already performed.
//
// Concurrency model: a VerdictCache is owned by exactly one subject
// (one task's security blob) and is only touched while that subject's
// kernel entry lock is held, so the slots need no internal locking. The
// epochs are the synchronization: any label or capability mutation that
// could change a verdict bumps the owning object's monotonic epoch, and
// a slot whose recorded epochs no longer match is dead. Epochs are read
// by the caller BEFORE the verdict is computed, so a mutation racing a
// fill can only leave a slot keyed to already-stale epochs — it can
// match no future lookup, never serve a stale verdict.
//
// Memory: direct-mapped, fixed slots, no eviction bookkeeping. A
// colliding store overwrites; forgetting answers only costs recompute.
const verdictSlots = 128

type verdictSlot struct {
	obj       uint64 // object identity (inode number); meaningful when full
	op        uint32 // operation class (access-mask bits)
	full      bool
	subjEpoch uint64
	objEpoch  uint64
	verdict   error // nil = allow; non-nil = the exact deny error value
}

// VerdictCache is a per-subject direct-mapped verdict memo table. The
// zero value is ready to use.
type VerdictCache struct {
	slots [verdictSlots]verdictSlot
}

// NewVerdictCache allocates an empty cache.
func NewVerdictCache() *VerdictCache { return &VerdictCache{} }

var (
	verdictHits          atomic.Uint64
	verdictMisses        atomic.Uint64
	verdictInvalidations atomic.Uint64
)

func verdictSlotIndex(obj uint64, op uint32) uint64 {
	h := obj*0x9e3779b97f4a7c15 + uint64(op)*0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h % verdictSlots
}

// Lookup returns the memoized verdict for (obj, op) if one was stored
// under exactly the given subject and object epochs. A slot found with
// mismatched epochs is a detected invalidation: it is cleared and the
// lookup misses, forcing the caller to re-derive.
func (c *VerdictCache) Lookup(obj uint64, op uint32, subjEpoch, objEpoch uint64) (error, bool) {
	s := &c.slots[verdictSlotIndex(obj, op)]
	if !s.full || s.obj != obj || s.op != op {
		verdictMisses.Add(1)
		return nil, false
	}
	if s.subjEpoch != subjEpoch || s.objEpoch != objEpoch {
		s.full = false
		verdictInvalidations.Add(1)
		verdictMisses.Add(1)
		return nil, false
	}
	verdictHits.Add(1)
	return s.verdict, true
}

// Store memoizes a verdict derived while the subject and object were at
// the given epochs. The epochs MUST have been read before the verdict
// was derived (see the soundness argument above).
func (c *VerdictCache) Store(obj uint64, op uint32, subjEpoch, objEpoch uint64, verdict error) {
	c.slots[verdictSlotIndex(obj, op)] = verdictSlot{
		obj: obj, op: op, full: true,
		subjEpoch: subjEpoch, objEpoch: objEpoch, verdict: verdict,
	}
}

// Flush empties every slot. The next lookups recompute.
func (c *VerdictCache) Flush() {
	for i := range c.slots {
		c.slots[i] = verdictSlot{}
	}
}

// VerdictCacheStats reports cumulative hits, misses and detected
// stale-epoch invalidations across every VerdictCache in the process.
func VerdictCacheStats() (hits, misses, invalidations uint64) {
	return verdictHits.Load(), verdictMisses.Load(), verdictInvalidations.Load()
}
