package flume

import (
	"errors"
	"testing"

	"laminar/internal/difc"
)

func TestSpawnAndTag(t *testing.T) {
	m := NewMonitor()
	p := m.Spawn()
	tag := m.CreateTag(p)
	if tag == difc.InvalidTag {
		t.Fatal("invalid tag")
	}
	if !p.Caps().CanAdd(tag) || !p.Caps().CanDrop(tag) {
		t.Error("tag creator missing privileges")
	}
}

func TestSetLabelWholeProcess(t *testing.T) {
	m := NewMonitor()
	p := m.Spawn()
	tag := m.CreateTag(p)
	if err := m.SetLabel(p, 0, difc.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	if !p.Labels().S.Equal(difc.NewLabel(tag)) {
		t.Errorf("labels = %v", p.Labels())
	}
	// Without the minus privilege, the label cannot drop.
	q := m.Spawn()
	tagQ := m.CreateTag(q)
	if err := m.SetLabel(q, 0, difc.NewLabel(tagQ)); err != nil {
		t.Fatal(err)
	}
	q.caps = q.caps.Drop(tagQ, difc.CapMinus)
	if err := m.SetLabel(q, 0, difc.EmptyLabel); !errors.Is(err, ErrFlow) {
		t.Errorf("drop without privilege = %v", err)
	}
}

func TestEndpointFlow(t *testing.T) {
	m := NewMonitor()
	a, b := m.Spawn(), m.Spawn()
	ea, eb, err := m.CreateEndpointPair(a, b, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Send(a, ea, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	msg, err := m.Recv(b, eb)
	if err != nil || string(msg) != "hi" {
		t.Fatalf("recv = %q, %v", msg, err)
	}
	// Empty queue.
	if _, err := m.Recv(b, eb); !errors.Is(err, ErrCapacity) {
		t.Errorf("empty recv = %v", err)
	}
	// Tainted sender to unlabeled endpoint is refused.
	tag := m.CreateTag(a)
	if err := m.SetLabel(a, 0, difc.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(a, ea, []byte("secret")); !errors.Is(err, ErrFlow) {
		t.Errorf("tainted send = %v", err)
	}
	// Wrong owner.
	if err := m.Send(b, ea, nil); !errors.Is(err, ErrNoSuch) {
		t.Errorf("wrong owner send = %v", err)
	}
}

func TestReadWriteData(t *testing.T) {
	m := NewMonitor()
	p := m.Spawn()
	tag := m.CreateTag(p)
	secret := difc.Labels{S: difc.NewLabel(tag)}
	// Unlabeled process cannot read secret data.
	if err := m.ReadData(p, secret); !errors.Is(err, ErrFlow) {
		t.Errorf("unlabeled read of secret = %v", err)
	}
	if err := m.SetLabel(p, 0, secret.S); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadData(p, secret); err != nil {
		t.Errorf("labeled read = %v", err)
	}
	// Tainted process cannot write unlabeled data.
	if err := m.WriteData(p, difc.Labels{}); !errors.Is(err, ErrFlow) {
		t.Errorf("tainted write down = %v", err)
	}
}

func TestHeterogeneousLabelsImpossible(t *testing.T) {
	// The Table 1 probe: two objects with different secrecy tags cannot
	// both be read AND written by one Flume process, because the process
	// has a single label. (In Laminar, two security regions in one
	// address space handle this directly.)
	m := NewMonitor()
	p := m.Spawn()
	t1, t2 := m.CreateTag(p), m.CreateTag(p)
	a := difc.Labels{S: difc.NewLabel(t1)}
	b := difc.Labels{S: difc.NewLabel(t2)}
	if m.CanHoldBoth(a, b) {
		t.Error("process-granularity monitor claims heterogeneous labels work")
	}
	// Same labels are of course fine.
	if !m.CanHoldBoth(a, a) {
		t.Error("homogeneous labels rejected")
	}
}

func TestSyscallCounting(t *testing.T) {
	m := NewMonitor()
	p := m.Spawn()
	before := m.Syscalls
	m.CreateTag(p)
	m.ReadData(p, difc.Labels{})
	if m.Syscalls != before+2 {
		t.Errorf("syscalls = %d, want %d", m.Syscalls, before+2)
	}
}
