// Package flume implements a process-granularity DIFC reference monitor in
// the style of Flume (Krohn et al., SOSP 2007), the OS-level system the
// Laminar paper compares against (§2, Table 1, §6.2). It exists as a
// baseline: labels attach to whole processes and to endpoints, so a single
// address space cannot hold heterogeneously labeled data — the
// expressiveness gap Table 1 attributes to OS-only DIFC — and every IPC
// operation pays a user-level monitor round trip, the cost gap behind
// Flume's 4–35× syscall latency.
package flume

import (
	"errors"
	"fmt"
	"sync"

	"laminar/internal/difc"
	"laminar/internal/simwork"
)

// crossingWork models what makes Flume slow: every operation is an IPC
// round trip into the user-level monitor process (two context switches
// plus marshalling), on top of whatever kernel work the operation itself
// does. The simulated kernel charges its syscalls realistic quanta
// (internal/kernel/work.go); the monitor charges this crossing per call,
// sized so the monitor-vs-kernel ratio lands in the paper's 4–35× band.
const crossingWork = 2500

// Errors returned by the monitor.
var (
	ErrFlow     = errors.New("flume: flow violation")
	ErrNoSuch   = errors.New("flume: no such entity")
	ErrCapacity = errors.New("flume: queue full")
)

// ProcID identifies a monitored process.
type ProcID uint64

// EndpointID identifies an endpoint attached to a process.
type EndpointID uint64

// Proc is a Flume process: one label pair for the entire address space,
// plus the dual-privilege sets (Flume's O+ / O-) modeled with difc.CapSet.
type Proc struct {
	ID     ProcID
	labels difc.Labels
	caps   difc.CapSet
	eps    map[EndpointID]*Endpoint
}

// Labels returns the process-wide label pair.
func (p *Proc) Labels() difc.Labels { return p.labels }

// Caps returns the process's capability (ownership) set.
func (p *Proc) Caps() difc.CapSet { return p.caps }

// Endpoint is a Flume communication endpoint: a fixed label through which
// a process sends or receives. Flume checks flows endpoint-to-endpoint;
// the endpoint label must be reachable from the process label using its
// capabilities (that reachability is checked once at creation, which is
// why Flume needs the endpoint abstraction while Laminar's per-operation
// kernel checks do not, §2).
type Endpoint struct {
	ID     EndpointID
	labels difc.Labels
	proc   *Proc
	peer   *Endpoint
	queue  [][]byte
}

// Labels returns the endpoint's fixed labels.
func (e *Endpoint) Labels() difc.Labels { return e.labels }

// Monitor is the user-level reference monitor process.
type Monitor struct {
	mu      sync.Mutex
	procs   map[ProcID]*Proc
	nextID  ProcID
	nextEP  EndpointID
	nextTag uint64

	// Syscalls counts monitor round trips, the quantity that makes Flume
	// slow relative to in-kernel checks.
	Syscalls uint64
}

// NewMonitor boots an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{procs: make(map[ProcID]*Proc)}
}

// Spawn registers a new process with empty labels.
func (m *Monitor) Spawn() *Proc {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	m.nextID++
	p := &Proc{ID: m.nextID, eps: make(map[EndpointID]*Endpoint)}
	m.procs[p.ID] = p
	return p
}

// CreateTag mints a tag and grants the process both privileges for it.
func (m *Monitor) CreateTag(p *Proc) difc.Tag {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	m.nextTag++
	tag := difc.Tag(m.nextTag)
	p.caps = p.caps.Grant(tag, difc.CapBoth)
	return tag
}

// SetLabel changes the process-wide label under the label-change rule.
// Note the granularity: this relabels *everything* the process holds in
// memory — there is no way to label one data structure (Table 1's
// "securing individual application data structures" row).
func (m *Monitor) SetLabel(p *Proc, typ int, l difc.Label) error {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	var cur difc.Label
	if typ == 0 {
		cur = p.labels.S
	} else {
		cur = p.labels.I
	}
	if !difc.CanChange(cur, l, p.caps) {
		return fmt.Errorf("%w: %v -> %v with %v", ErrFlow, cur, l, p.caps)
	}
	if typ == 0 {
		p.labels.S = l
	} else {
		p.labels.I = l
	}
	return nil
}

// CreateEndpointPair connects two processes with a pipe-like endpoint pair
// carrying fixed labels. Each endpoint label must be reachable from its
// owner's label with the owner's capabilities.
func (m *Monitor) CreateEndpointPair(a, b *Proc, labels difc.Labels) (*Endpoint, *Endpoint, error) {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	for _, p := range []*Proc{a, b} {
		if !labels.S.SubsetOf(p.caps.Plus().Union(p.labels.S)) &&
			!p.labels.S.SubsetOf(labels.S) {
			return nil, nil, fmt.Errorf("%w: endpoint label %v unreachable for process %d", ErrFlow, labels, p.ID)
		}
	}
	m.nextEP++
	ea := &Endpoint{ID: m.nextEP, labels: labels, proc: a}
	m.nextEP++
	eb := &Endpoint{ID: m.nextEP, labels: labels, proc: b}
	ea.peer, eb.peer = eb, ea
	a.eps[ea.ID] = ea
	b.eps[eb.ID] = eb
	return ea, eb, nil
}

// Send transmits through an endpoint. The monitor enforces process →
// endpoint flow, modeling the IPC interposition that costs Flume its
// syscall latency (every message crosses the user-level monitor).
func (m *Monitor) Send(p *Proc, e *Endpoint, data []byte) error {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	if e.proc != p {
		return ErrNoSuch
	}
	if err := difc.CheckFlow("send", p.labels, e.labels); err != nil {
		return fmt.Errorf("%w: %v", ErrFlow, err)
	}
	if len(e.peer.queue) >= 1024 {
		return ErrCapacity
	}
	msg := make([]byte, len(data))
	copy(msg, data)
	e.peer.queue = append(e.peer.queue, msg)
	return nil
}

// Recv receives from an endpoint, enforcing endpoint → process flow.
func (m *Monitor) Recv(p *Proc, e *Endpoint) ([]byte, error) {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	if e.proc != p {
		return nil, ErrNoSuch
	}
	if err := difc.CheckFlow("recv", e.labels, p.labels); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFlow, err)
	}
	if len(e.queue) == 0 {
		return nil, ErrCapacity
	}
	msg := e.queue[0]
	e.queue = e.queue[1:]
	return msg, nil
}

// ReadData models the process reading a datum with the given labels (e.g.
// a file through the monitor's file server): the whole process must be at
// or above the datum's secrecy. Contrast with Laminar, where only the
// accessing security region needs the label.
func (m *Monitor) ReadData(p *Proc, data difc.Labels) error {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	if err := difc.CheckFlow("read", data, p.labels); err != nil {
		return fmt.Errorf("%w: %v", ErrFlow, err)
	}
	return nil
}

// WriteData models writing a datum with the given labels.
func (m *Monitor) WriteData(p *Proc, data difc.Labels) error {
	simwork.Do(crossingWork)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Syscalls++
	if err := difc.CheckFlow("write", p.labels, data); err != nil {
		return fmt.Errorf("%w: %v", ErrFlow, err)
	}
	return nil
}

// CanHoldBoth reports whether one process could simultaneously access two
// data items with the given labels without relabeling between accesses —
// the heterogeneous-labels expressiveness probe used by the Table 1
// reproduction. For a Flume process this requires a single label above
// both secrecies and below both integrities.
func (m *Monitor) CanHoldBoth(a, b difc.Labels) bool {
	// The candidate process label is the join of secrecies and the meet
	// of integrities; accessing then requires both reads and writes legal.
	s := a.S.Union(b.S)
	i := a.I.Meet(b.I)
	p := difc.Labels{S: s, I: i}
	// Reads are fine by construction; the probe is whether WRITES to each
	// datum remain legal, i.e. the process label must also flow into each
	// datum: s ⊆ a.S requires a.S == s.
	return p.CanFlowTo(a) && p.CanFlowTo(b) && a.CanFlowTo(p) && b.CanFlowTo(p)
}
