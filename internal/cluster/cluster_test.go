package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// testClusterNode is one full stack: kernel, LSM, user task, recorder,
// and a listening cluster node.
type testClusterNode struct {
	k    *kernel.Kernel
	mod  *lsm.Module
	user *kernel.Task
	rec  *telemetry.Recorder
	cl   *Cluster
}

// bootCluster builds a node; cfg's Kernel/Module/Recorder are filled in.
func bootCluster(t *testing.T, cfg Config) *testClusterNode {
	t.Helper()
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel, cfg.Module, cfg.Recorder = k, mod, rec
	c := New(cfg)
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &testClusterNode{k: k, mod: mod, user: user, rec: rec, cl: c}
}

// tickUntil ticks the nodes until cond holds or a deadline passes.
func tickUntil(t *testing.T, cond func() bool, nodes ...*testClusterNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			n.cl.Tick()
		}
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timed out ticking")
}

// formCluster boots n nodes (ids 1..n) seeded at node 1 and ticks until
// full mutual convergence.
func formCluster(t *testing.T, n int) []*testClusterNode {
	t.Helper()
	nodes := []*testClusterNode{bootCluster(t, Config{ID: 1})}
	if _, err := nodes[0].cl.Join(); err != nil {
		t.Fatal(err)
	}
	seed := nodes[0].cl.Addr()
	ids := []uint64{1}
	for i := 2; i <= n; i++ {
		nd := bootCluster(t, Config{ID: uint64(i), Seeds: []string{seed}})
		if _, err := nd.cl.Join(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		ids = append(ids, uint64(i))
	}
	tickUntil(t, func() bool {
		for _, nd := range nodes {
			if !nd.cl.Joined() || !nd.cl.Converged(ids...) {
				return false
			}
		}
		return true
	}, nodes...)
	return nodes
}

func TestJoinConvergesThreeNodes(t *testing.T) {
	nodes := formCluster(t, 3)
	// Every node's join change settled to Done.
	for _, nd := range nodes {
		chs := nd.cl.Changes()
		if len(chs) != 1 || chs[0].Kind != "join" || chs[0].Status != StatusDone {
			t.Fatalf("node %d changes = %+v, want one done join", nd.cl.cfg.ID, chs)
		}
	}
	// Gossiped-only members were admitted as SUSPECTS first, promoted only
	// on direct contact: the transitions must appear in the counters.
	promoted := false
	for _, nd := range nodes[1:] {
		if nd.rec.M.Extra.Get("cluster.member.alive").Load() > 0 {
			promoted = true
		}
	}
	if !promoted {
		t.Error("no membership lifecycle counters recorded")
	}
}

func TestFailureDetectionSuspectThenDead(t *testing.T) {
	nodes := formCluster(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]
	// Kill node 3 (stop ticking it, tear the transport down).
	c.cl.Close()
	tickUntil(t, func() bool {
		return a.cl.State(3) == StateDead && b.cl.State(3) == StateDead
	}, a, b)
	// The detector passed through suspect before dead.
	if a.rec.M.Extra.Get("cluster.member.suspect").Load() == 0 {
		t.Error("node went dead without a suspect window")
	}
	// Opening toward the dead node still succeeds at the origin — it
	// detours via node 2 in case 2 can reach 3 — but 2 refuses the relay
	// (next hop dead) and the flow dies silently, never an unchecked
	// shortcut. The origin cannot tell; only 2's counters show the refusal.
	if _, err := a.cl.Open(a.user, 3, difc.Labels{}); err != nil {
		t.Fatalf("detour open = %v, want silent-drop success", err)
	}
	tickUntil(t, func() bool {
		return b.rec.M.Extra.Get("cluster.route.nohop").Load() > 0
	}, a, b)
	// With EVERY possible intermediary gone too, the origin has no route.
	b.cl.Close()
	tickUntil(t, func() bool { return a.cl.State(2) == StateDead }, a)
	if _, err := a.cl.Open(a.user, 3, difc.Labels{}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("open with no alive members = %v, want ErrNoRoute", err)
	}
}

func TestStaleEpochRejectedFailClosed(t *testing.T) {
	a := bootCluster(t, Config{ID: 1})
	// Node 9 speaks at epoch 5...
	a.cl.onControl(0, encodeCtrl(ctrlMsg{Type: msgPing, From: 9, Epoch: 5, Addr: "127.0.0.1:1"}))
	if got := a.cl.Members()[1].Epoch; got != 5 {
		t.Fatalf("member epoch = %d, want 5", got)
	}
	var detail string
	unsub := a.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerCluster && e.Op == "stale-epoch" {
			detail = e.Detail
		}
	})
	defer unsub()
	// ...then a ghost of epoch 3 shows up: rejected, with provenance.
	a.cl.onControl(0, encodeCtrl(ctrlMsg{Type: msgPing, From: 9, Epoch: 3, Addr: "127.0.0.1:2"}))
	if n := a.rec.M.Extra.Get("cluster.epoch.stale").Load(); n != 1 {
		t.Fatalf("stale-epoch counter = %d, want 1", n)
	}
	if !strings.Contains(detail, "node 9") || !strings.Contains(detail, "epoch 3") {
		t.Errorf("stale-epoch provenance %q lacks node/epoch", detail)
	}
	// The stale ping must not have touched the member table.
	if got := a.cl.Members()[1]; got.Epoch != 5 || got.Addr != "127.0.0.1:1" {
		t.Errorf("stale frame mutated member: %+v", got)
	}
}

func TestEpochRemapResetOnReincarnation(t *testing.T) {
	a := bootCluster(t, Config{ID: 1})
	secret := difc.InternLabels(difc.Labels{S: difc.NewLabel(difc.Tag(1234))})

	a.cl.mu.Lock()
	a.cl.bindRemote(7, 2, 41, 42, secret)
	a.cl.mu.Unlock()
	if l, ok := a.cl.ResolveRemote(7, 2, 41, 42); !ok || !l.Equal(secret) {
		t.Fatalf("bound remap did not resolve: %v %v", l, ok)
	}
	// The peer reincarnates: epoch 3 arrives, the epoch-2 table must die.
	a.cl.onControl(0, encodeCtrl(ctrlMsg{Type: msgPing, From: 7, Epoch: 3, Addr: "127.0.0.1:1"}))
	if _, ok := a.cl.ResolveRemote(7, 2, 41, 42); ok {
		t.Fatal("stale-epoch remap binding survived reincarnation")
	}
	if _, ok := a.cl.ResolveRemote(7, 3, 41, 42); ok {
		t.Fatal("fresh epoch resolved a binding that was never made")
	}
}

func TestIncarnationEpochBumpsAcrossRestart(t *testing.T) {
	store := NewMemStore()
	a := bootCluster(t, Config{ID: 1, Store: store})
	e1 := a.cl.Epoch()
	a.cl.Close()
	b := bootCluster(t, Config{ID: 1, Store: store})
	if e2 := b.cl.Epoch(); e2 <= e1 {
		t.Fatalf("restart epoch %d, want > %d", e2, e1)
	}
}

func TestJoinKilledMidChangeResumes(t *testing.T) {
	seedNode := bootCluster(t, Config{ID: 1})
	if _, err := seedNode.cl.Join(); err != nil {
		t.Fatal(err)
	}
	seed := seedNode.cl.Addr()

	store := NewMemStore() // survives the kill: the harness owns it
	n2 := bootCluster(t, Config{ID: 2, Seeds: []string{seed}, Store: store})
	ch, err := n2.cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	// Tick ONLY node 2: the seed never answers, so the announce step stays
	// in flight — and then the node dies mid-change.
	for i := 0; i < 4; i++ {
		n2.cl.Tick()
	}
	if got, _ := n2.cl.Change(ch.ID); got.Status != StatusDoing {
		t.Fatalf("pre-kill change status = %v, want doing", got.Status)
	}
	n2.cl.Close()

	// Restart with the SAME durable store: the change record resumes at
	// the step that was in flight and the join completes once the seed
	// finally answers.
	var resumed bool
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	unsub := rec.Subscribe(func(e telemetry.Event) {
		if e.Site == "cluster.change" && strings.Contains(e.Detail, "resumed") {
			resumed = true
		}
	})
	defer unsub()
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	c2 := New(Config{ID: 2, Kernel: k, Module: mod, Recorder: rec, Seeds: []string{seed}, Store: store})
	if err := c2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	if !resumed {
		t.Fatal("persisted change was not resumed on restart")
	}
	got, ok := c2.Change(ch.ID)
	if !ok || got.Kind != "join" {
		t.Fatalf("resumed change lost: %+v ok=%v", got, ok)
	}
	n2b := &testClusterNode{k: k, mod: mod, rec: rec, cl: c2}
	tickUntil(t, func() bool {
		g, _ := c2.Change(ch.ID)
		return g != nil && g.Status == StatusDone && c2.Joined()
	}, seedNode, n2b)
}

func TestQuarantinedChangeAbandonedFailClosed(t *testing.T) {
	store := NewMemStore()
	// Both the commit and its shadow are garbage: progress unknowable.
	store.Set("chg/5", []byte("torn beyond hope"))
	store.Set("chg/5#shadow", []byte("also torn"))
	a := bootCluster(t, Config{ID: 1, Store: store})
	if n := len(a.cl.Changes()); n != 0 {
		t.Fatalf("quarantined change was adopted: %d changes", n)
	}
	if n := a.rec.M.Extra.Get("cluster.recovery.quarantined").Load(); n != 1 {
		t.Errorf("recovery counter = %d, want 1 quarantined", n)
	}
	if _, ok := store.Get("chg/5"); ok {
		t.Error("quarantined record left in store")
	}
	if a.cl.Joined() {
		t.Error("node joined off a quarantined record")
	}
}

func TestRebalanceBroadcastsAuthority(t *testing.T) {
	nodes := formCluster(t, 2)
	a, b := nodes[0], nodes[1]
	if _, err := a.cl.Rebalance(100, 2); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, func() bool {
		return a.cl.AuthorityFor(150) == 2 && b.cl.AuthorityFor(150) == 2
	}, a, b)
	// Below the range start, each node remains its own authority.
	if got := a.cl.AuthorityFor(50); got != 1 {
		t.Errorf("node 1 authority for 50 = %d, want self", got)
	}
	if got := b.cl.AuthorityFor(50); got != 2 {
		t.Errorf("node 2 authority for 50 = %d, want self", got)
	}
	// The assignment is durable: a restart of node 1 reloads it.
	store := a.cl.cfg.Store
	a.cl.Close()
	a2 := bootCluster(t, Config{ID: 1, Store: store})
	if got := a2.cl.AuthorityFor(150); got != 2 {
		t.Errorf("restarted authority for 150 = %d, want persisted 2", got)
	}
}

func TestRoutedFlowRelaysWithPerHopChecks(t *testing.T) {
	nodes := formCluster(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// A public channel A --via B--> C.
	fdA, err := a.cl.OpenVia(a.user, 2, 3, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	var fdC kernel.FD
	tickUntil(t, func() bool {
		var aerr error
		fdC, _, aerr = c.cl.Node().Accept(c.user)
		return aerr == nil
	}, a, b, c)
	if _, err := a.k.Send(a.user, fdA, []byte("two hops")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	var got string
	tickUntil(t, func() bool {
		n, rerr := c.k.Recv(c.user, fdC, buf)
		if rerr == nil && n > 0 {
			got += string(buf[:n])
		}
		return got == "two hops"
	}, a, b, c)
	if b.rec.M.Extra.Get("cluster.route.relayed").Load() == 0 {
		t.Error("intermediate hop recorded no relay")
	}
}

func TestRelayHopDeniedByItsOwnLSM(t *testing.T) {
	nodes := formCluster(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// A secret channel through B. A's user holds the tag capabilities, so
	// the origin create passes; B's relay runs ADOPTED at the channel
	// labels, so forwarding normally passes its LSM too.
	tag, err := a.k.AllocTag(a.user)
	if err != nil {
		t.Fatal(err)
	}
	secret := difc.Labels{S: difc.NewLabel(tag)}
	fdA, err := a.cl.OpenVia(a.user, 2, 3, secret)
	if err != nil {
		t.Fatal(err)
	}
	tickUntil(t, func() bool {
		b.cl.mu.Lock()
		n := len(b.cl.relays)
		b.cl.mu.Unlock()
		return n == 1
	}, a, b, c)

	// Sabotage the hop: strip the relay task's labels. Its Recv from the
	// secret-labeled inbound endpoint is now a secrecy violation that B's
	// OWN kernel must deny — per-hop enforcement is the syscall check, not
	// the routing code.
	b.cl.mu.Lock()
	relayTask := b.cl.relays[0].task
	b.cl.mu.Unlock()
	b.mod.AdoptTaskLabels(relayTask, difc.Labels{})

	if _, err := a.k.Send(a.user, fdA, []byte("classified")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) &&
		b.rec.M.Extra.Get("cluster.relay.recv-denied").Load() == 0 {
		for _, nd := range nodes {
			nd.cl.Tick()
		}
	}
	if b.rec.M.Extra.Get("cluster.relay.recv-denied").Load() == 0 {
		t.Fatal("stripped relay was not denied by the hop's LSM")
	}
	// And nothing ever reaches C.
	if fdC, _, err := c.cl.Node().Accept(c.user); err == nil {
		if n, rerr := c.k.Recv(c.user, fdC, make([]byte, 32)); rerr == nil {
			t.Fatalf("classified bytes crossed a denied hop: %d bytes", n)
		}
	}
}

// fakeRoutedOffer fabricates an inbound routed open from origin at its
// current tracked epoch, destined for this node.
func fakeRoutedOffer(nd *testClusterNode, origin uint64, labels difc.Labels) netlabel.RoutedOffer {
	var epoch uint64
	for _, m := range nd.cl.Members() {
		if m.ID == origin {
			epoch = m.Epoch
		}
	}
	file := nd.k.NetSocketAdopted(func(ino *kernel.Inode) {
		nd.mod.AdoptInodeLabels(ino, labels)
	})
	return netlabel.RoutedOffer{
		PeerID: origin,
		Labels: labels,
		Meta:   encodeRoute(routeMeta{Origin: origin, OriginEpoch: epoch}),
		File:   file,
	}
}

func TestDrainStopsIntakeAndAnnouncesDeparture(t *testing.T) {
	nodes := formCluster(t, 2)
	a, b := nodes[0], nodes[1]
	ch, err := b.cl.Drain()
	if err != nil {
		t.Fatal(err)
	}
	tickUntil(t, func() bool {
		g, _ := b.cl.Change(ch.ID)
		return g != nil && g.Status == StatusDone && a.cl.State(2) == StateDead
	}, a, b)
	// New routed work toward the drained node is refused at its door.
	before := b.rec.M.Extra.Get("cluster.route.draining").Load()
	b.cl.onRouted(fakeRoutedOffer(b, 1, difc.Labels{}))
	if b.rec.M.Extra.Get("cluster.route.draining").Load() != before+1 {
		t.Error("drained node accepted routed work")
	}
}
