// Package cluster is the Laminar label plane lifted to a cluster: node
// membership with heartbeat failure detection, incarnation epochs that
// keep cross-node label interning sound across crashes, long-running
// cluster operations (join, drain, tag-authority rebalance) as
// crash-resumable persistent changes, and multi-hop routing whose every
// hop re-runs the full LSM flow check.
//
// The plane is built ON the trusted transport (internal/netlabel), not
// beside it: membership and join negotiation ride Ctrl frames, routed
// opens ride OpenRouted frames, and all DIFC policy still lives in each
// node's own kernel — the cluster layer can lose messages (which the
// paper's unreliable-channel semantics already permit) but can never
// cause an unchecked flow.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// Defaults for the logical-tick failure detector.
const (
	defaultSuspectAfter   = 5
	defaultDeadAfter      = 12
	defaultHeartbeatEvery = 2
)

// Config wires a Cluster to its kernel and durable store.
type Config struct {
	// ID is this node's stable cluster-wide identity.
	ID uint64
	// Kernel and Module are the local Laminar kernel and its LSM; all
	// enforcement (endpoint creates, relay Recv/Send) runs through them.
	Kernel *kernel.Kernel
	Module *lsm.Module
	// Recorder receives LayerCluster provenance (membership transitions,
	// epoch rejections, change lifecycle) and counters.
	Recorder *telemetry.Recorder
	// Injector is the deterministic fault injector, consulted at the
	// cluster.ckpt.* sites (and passed down to the transport's net.*
	// sites) so the chaos oracle can tear checkpoints and kill links.
	Injector faultinject.Injector
	// Store is the durable keyspace for this node's incarnation epoch and
	// change records; it must survive restarts (the harness keeps it
	// across simulated kills). Nil gets a fresh MemStore — fine for a
	// node that never crashes, useless for one that does.
	Store Store
	// Seeds are peer listen addresses to contact when joining.
	Seeds []string

	// SuspectAfter and DeadAfter are silence thresholds in logical ticks;
	// HeartbeatEvery is the ping period. Zero values take defaults.
	SuspectAfter   int
	DeadAfter      int
	HeartbeatEvery int

	// Batching passes through to the transport.
	Batching bool

	// Tracing passes through to the transport: opened and routed channels
	// carry a TraceCtx so explain-route can reconstruct multi-hop flows.
	Tracing bool

	// StatsEvery is the period, in logical ticks, at which a joined node
	// broadcasts its metrics snapshot to the alive membership. Zero takes
	// the default; negative disables the broadcast.
	StatsEvery int
}

// defaultStatsEvery spaces stats broadcasts out to every 8th tick —
// frequent enough for tick-driven tests, cheap enough to ride along.
const defaultStatsEvery = 8

// Cluster is one node's view of the label plane.
type Cluster struct {
	cfg  Config
	node *netlabel.Node
	rec  *telemetry.Recorder

	mu      sync.Mutex
	now     uint64 // logical tick counter; all timing derives from it
	epoch   uint64 // this incarnation's persisted epoch
	members map[uint64]*member
	remap   map[uint64]*remapTable

	changes    map[uint64]*Change
	nextChange uint64
	stepDefs    map[string][]stepDef
	stats       map[uint64]peerStats  // latest snapshot heard per peer
	budgetFacts map[uint64]peerBudget // latest budget facts heard per peer

	relays    []*relay
	ranges    []authRange
	draining  bool
	joined    bool
	joinAcked bool
	relayIdle int // consecutive ticks with no relay traffic (drain gate)
	closed    bool
}

// New builds a node of the label plane. The incarnation epoch is loaded
// (and bumped) from the store before the node can speak, and persisted
// change records are resumed through the crash-recovery pass — a node
// killed mid-join comes back knowing exactly which step was in flight.
func New(cfg Config) *Cluster {
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = defaultSuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + defaultDeadAfter - defaultSuspectAfter
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = defaultHeartbeatEvery
	}
	if cfg.StatsEvery == 0 {
		cfg.StatsEvery = defaultStatsEvery
	}
	c := &Cluster{
		cfg:     cfg,
		rec:     cfg.Recorder,
		members: make(map[uint64]*member),
		remap:   make(map[uint64]*remapTable),
		changes: make(map[uint64]*Change),
	}
	c.node = netlabel.NewNode(netlabel.Config{
		Kernel:   cfg.Kernel,
		Module:   cfg.Module,
		Recorder: cfg.Recorder,
		Injector: cfg.Injector,
		NodeID:   cfg.ID,
		Batching: cfg.Batching,
		Tracing:  cfg.Tracing,
		Control:  c.onControl,
		Routed:   c.onRouted,
	})
	c.registerSteps()
	c.mu.Lock()
	c.epoch = c.loadEpoch()
	c.loadRanges()
	c.resumeChanges()
	c.mu.Unlock()
	if c.rec != nil {
		// NewNode stamped (id, 0); now that the persisted incarnation
		// epoch is loaded, every event and minted trace carries it.
		c.rec.SetNodeIdentity(cfg.ID, c.epoch)
	}
	return c
}

// Listen binds the node's transport listener.
func (c *Cluster) Listen(addr string) error { return c.node.Listen(addr) }

// Addr reports the bound listen address.
func (c *Cluster) Addr() string { return c.node.Addr() }

// Node exposes the underlying transport (Accept, direct Open) for
// endpoints that live on this node.
func (c *Cluster) Node() *netlabel.Node { return c.node }

// Joined reports whether this node's join change has activated.
func (c *Cluster) Joined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joined
}

// Join submits the persistent join change: announce to seeds, wait for
// an ack, sync membership, activate. Crash-resumable at every step.
func (c *Cluster) Join() (*Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submit("join")
}

// Drain submits the persistent drain change: stop routed intake, flush
// the relays, announce departure.
func (c *Cluster) Drain() (*Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submit("drain")
}

// Rebalance submits the persistent tag-authority rebalance change:
// persist the new range assignment, then announce it.
func (c *Cluster) Rebalance(start, owner uint64) (*Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submit("rebalance", start, owner)
}

// AuthorityFor reports the node that owns tag-authority for value v: the
// owner of the highest range start ≤ v. With no covering range the local
// node is its own authority (the pre-rebalance default).
func (c *Cluster) AuthorityFor(v uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := c.cfg.ID
	var best uint64
	found := false
	for _, r := range c.ranges {
		if r.Start <= v && (!found || r.Start >= best) {
			best, owner, found = r.Start, r.Owner, true
		}
	}
	return owner
}

// Tick advances the plane one logical step: pump the transport (frames
// in), settle the change engine (at most one transition per change),
// heartbeat on period, advance the failure detector, pump the relays
// (per-hop checked forwarding), and pump the transport again (frames
// out). Returns the amount of work done; zero means quiescent.
func (c *Cluster) Tick() int {
	work := c.node.Pump()
	c.mu.Lock()
	c.now++
	work += c.settle()
	if c.joined && c.now%uint64(c.cfg.HeartbeatEvery) == 0 {
		// Only an activated member heartbeats: a node that has not joined
		// (or has departed via drain) goes silent, and silence is exactly
		// what its peers' detectors are built to classify.
		c.heartbeat() // unlocks around the sends
	}
	if c.joined && c.cfg.StatsEvery > 0 && c.now%uint64(c.cfg.StatsEvery) == 0 {
		c.broadcastStats() // unlocks around the sends
	}
	c.detect()
	c.sweepStats()
	c.mu.Unlock()
	moved := c.pumpRelays()
	c.mu.Lock()
	if moved == 0 {
		c.relayIdle++
	} else {
		c.relayIdle = 0
	}
	c.mu.Unlock()
	work += moved
	work += c.node.Pump()
	return work
}

// Close shuts the transport down.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.node.Close()
}

// onControl is the netlabel Ctrl handler: parse strictly, gate on the
// sender's incarnation epoch, then apply. Runs inside Pump, without the
// cluster lock held on entry.
func (c *Cluster) onControl(peerID uint64, payload []byte) {
	if c.rec != nil && c.rec.Active() {
		t0 := time.Now()
		defer func() { c.rec.M.ObserveLayer(telemetry.LayerCluster, time.Since(t0)) }()
	}
	m, err := parseCtrl(payload)
	if err != nil {
		c.denyEvent("cluster.ctrl", "parse", err)
		return
	}
	c.mu.Lock()
	if !c.checkEpoch(m.From, m.Epoch, "cluster.ctrl") {
		c.mu.Unlock()
		return
	}
	var reply []byte
	var replyTo string
	switch m.Type {
	case msgPing:
		c.observe(m.From, m.Epoch, m.Addr)
		c.gossip(m.Members)
	case msgJoinReq:
		c.observe(m.From, m.Epoch, m.Addr)
		reply = encodeCtrl(ctrlMsg{Type: msgJoinAck, From: c.cfg.ID, Epoch: c.epoch,
			Addr: c.node.Addr(), Members: c.memberWireLocked(), Ranges: c.ranges})
		replyTo = m.Addr
	case msgJoinAck:
		c.observe(m.From, m.Epoch, m.Addr)
		c.gossip(m.Members)
		c.installRanges(m.Ranges)
		c.joinAcked = true
	case msgLeave:
		if mem, ok := c.members[m.From]; ok && mem.state != StateDead {
			mem.state = StateDead
			c.memberEvent(m.From, m.Epoch, "dead", "announced orderly departure")
		}
	case msgAuthority:
		c.observe(m.From, m.Epoch, m.Addr)
		c.installRanges(m.Ranges)
	case msgStats:
		c.observe(m.From, m.Epoch, m.Addr)
		c.onStats(m)
	}
	c.mu.Unlock()
	if reply != nil && replyTo != "" {
		c.node.SendControl(replyTo, reply)
	}
}

// installRanges replaces the tag-authority table and persists it; a torn
// write is counted and retried implicitly by the next broadcast. locked.
func (c *Cluster) installRanges(ranges []authRange) {
	if ranges == nil {
		return
	}
	c.ranges = append([]authRange(nil), ranges...)
	if err := c.checkpoint("auth/ranges", encodeRangesPayload(c.ranges)); err != nil {
		c.count("cluster.ckpt.torn", 1)
	}
}

// loadRanges recovers the persisted authority table at boot. locked.
func (c *Cluster) loadRanges() {
	payload, state, ok := c.recoverRecord("auth/ranges")
	if !ok {
		if state == "quarantined" {
			// Unknowable authority assignment: fail closed to the default
			// (every node its own authority) until the next broadcast.
			c.denyEvent("cluster.ckpt", "recover",
				fmt.Errorf("authority table torn beyond recovery; reset to defaults"))
		}
		return
	}
	ranges, err := parseRangesPayload(payload)
	if err != nil {
		c.denyEvent("cluster.ckpt", "decode", err)
		return
	}
	c.ranges = ranges
}

// encodeRangesPayload serializes the authority table for checkpointing.
func encodeRangesPayload(ranges []authRange) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(len(ranges)))
	for _, r := range ranges {
		buf = binary.BigEndian.AppendUint64(buf, r.Start)
		buf = binary.BigEndian.AppendUint64(buf, r.Owner)
	}
	return buf
}

// parseRangesPayload decodes a checkpointed authority table.
func parseRangesPayload(b []byte) ([]authRange, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: truncated range table", ErrCtrlMalformed)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != 16*n {
		return nil, fmt.Errorf("%w: range table count %d with %d bytes", ErrCtrlMalformed, n, len(b))
	}
	var out []authRange
	for i := 0; i < n; i++ {
		var r authRange
		r.Start, b, _ = parseU64(b)
		r.Owner, b, _ = parseU64(b)
		out = append(out, r)
	}
	return out, nil
}

// registerSteps installs the step definitions for every change kind.
// Steps are idempotent by contract: a step re-run after a crash must
// converge to the same state it was building the first time.
func (c *Cluster) registerSteps() {
	c.stepDefs = map[string][]stepDef{
		"join": {
			{name: "announce", do: (*Cluster).stepAnnounce, undo: (*Cluster).undoAnnounce},
			{name: "sync-members", do: (*Cluster).stepSyncMembers},
			{name: "activate", do: (*Cluster).stepActivate, undo: (*Cluster).undoActivate},
		},
		"drain": {
			{name: "stop-intake", do: (*Cluster).stepStopIntake, undo: (*Cluster).undoStopIntake},
			{name: "flush-relays", do: (*Cluster).stepFlushRelays},
			{name: "depart", do: (*Cluster).stepDepart},
		},
		"rebalance": {
			{name: "persist-ranges", do: (*Cluster).stepPersistRanges, undo: (*Cluster).undoPersistRanges},
			{name: "announce-ranges", do: (*Cluster).stepAnnounceRanges},
		},
	}
}

// --- join steps ---

// stepAnnounce sends a JoinReq to every seed and completes once any peer
// acks. Re-running after a crash just re-announces — the request is
// idempotent on the receiving side (observe + reply).
func (c *Cluster) stepAnnounce(ch *Change) (bool, error) {
	if len(c.cfg.Seeds) == 0 {
		return true, nil // solo bootstrap: nothing to announce to
	}
	if c.joinAcked {
		return true, nil
	}
	msg := encodeCtrl(ctrlMsg{Type: msgJoinReq, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr()})
	seeds := append([]string(nil), c.cfg.Seeds...)
	self := c.node.Addr()
	c.mu.Unlock()
	for _, addr := range seeds {
		if addr == self {
			continue
		}
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
	return c.joinAcked, nil
}

// undoAnnounce tells the seeds this node is not coming after all.
func (c *Cluster) undoAnnounce(ch *Change) {
	msg := encodeCtrl(ctrlMsg{Type: msgLeave, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr()})
	seeds := append([]string(nil), c.cfg.Seeds...)
	c.mu.Unlock()
	for _, addr := range seeds {
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
}

// stepSyncMembers completes once the ack's gossip has landed: the member
// table knows at least one peer (or there were never any seeds).
func (c *Cluster) stepSyncMembers(ch *Change) (bool, error) {
	return len(c.cfg.Seeds) == 0 || len(c.members) > 0, nil
}

// stepActivate flips the node to joined: it now serves routed opens and
// is gossiped alive by its peers.
func (c *Cluster) stepActivate(ch *Change) (bool, error) {
	c.joined = true
	return true, nil
}

// undoActivate reverses activation.
func (c *Cluster) undoActivate(ch *Change) { c.joined = false }

// --- drain steps ---

// stepStopIntake stops accepting new routed work (onRouted drops).
func (c *Cluster) stepStopIntake(ch *Change) (bool, error) {
	c.draining = true
	return true, nil
}

// undoStopIntake reopens intake if the drain rolls back.
func (c *Cluster) undoStopIntake(ch *Change) { c.draining = false }

// stepFlushRelays completes after a full tick moved no relay bytes: the
// in-flight forwarding obligations are met (or their flows died, which
// the unreliable channel permits).
func (c *Cluster) stepFlushRelays(ch *Change) (bool, error) {
	return c.relayIdle >= 1, nil
}

// stepDepart announces the orderly departure to every non-dead member.
func (c *Cluster) stepDepart(ch *Change) (bool, error) {
	msg := encodeCtrl(ctrlMsg{Type: msgLeave, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr()})
	targets := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.state != StateDead {
			targets = append(targets, m.addr)
		}
	}
	c.joined = false
	c.mu.Unlock()
	for _, addr := range targets {
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
	return true, nil
}

// --- rebalance steps ---

// stepPersistRanges installs the new assignment locally and checkpoints
// it BEFORE any announcement: a node that crashes here resumes with the
// assignment it was about to broadcast, never the other way round.
func (c *Cluster) stepPersistRanges(ch *Change) (bool, error) {
	if len(ch.Args) != 2 {
		return false, fmt.Errorf("rebalance change %d has %d args, want 2", ch.ID, len(ch.Args))
	}
	start, owner := ch.Args[0], ch.Args[1]
	replaced := false
	for i, r := range c.ranges {
		if r.Start == start {
			c.ranges[i].Owner = owner
			replaced = true
		}
	}
	if !replaced {
		c.ranges = append(c.ranges, authRange{Start: start, Owner: owner})
	}
	if err := c.checkpoint("auth/ranges", encodeRangesPayload(c.ranges)); err != nil {
		return false, ErrRetry // torn table checkpoint: retry next settle
	}
	return true, nil
}

// undoPersistRanges removes the assignment again.
func (c *Cluster) undoPersistRanges(ch *Change) {
	if len(ch.Args) != 2 {
		return
	}
	start := ch.Args[0]
	out := c.ranges[:0]
	for _, r := range c.ranges {
		if r.Start != start {
			out = append(out, r)
		}
	}
	c.ranges = out
	if err := c.checkpoint("auth/ranges", encodeRangesPayload(c.ranges)); err != nil {
		c.count("cluster.ckpt.torn", 1)
	}
}

// stepAnnounceRanges broadcasts the authority table to every alive peer.
func (c *Cluster) stepAnnounceRanges(ch *Change) (bool, error) {
	msg := encodeCtrl(ctrlMsg{Type: msgAuthority, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr(), Ranges: append([]authRange(nil), c.ranges...)})
	targets := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.state == StateAlive {
			targets = append(targets, m.addr)
		}
	}
	c.mu.Unlock()
	for _, addr := range targets {
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
	return true, nil
}

// InjectStaleFrame feeds the control plane a synthetic ping from the
// given node id and incarnation epoch, as if a ghost of that incarnation
// were still on the wire. Chaos harnesses and oracles use it to verify
// stale-epoch rejection deterministically, without racing a real
// reconnect for the ghost's frames.
func (c *Cluster) InjectStaleFrame(from, epoch uint64) {
	c.onControl(0, encodeCtrl(ctrlMsg{Type: msgPing, From: from, Epoch: epoch,
		Addr: "ghost:0"}))
}

// --- telemetry helpers ---

// denyEvent records a cluster-layer rejection with provenance.
func (c *Cluster) denyEvent(site, op string, err error) {
	if c.rec == nil || !c.rec.Active() {
		return
	}
	c.rec.EmitDeny(telemetry.LayerCluster, site, op, 0, 0, err)
}

// count bumps a free-form cluster metric.
func (c *Cluster) count(name string, delta int) {
	if c.rec == nil || !c.rec.Active() {
		return
	}
	c.rec.M.Extra.Get(name).Add(0, uint64(delta))
}
