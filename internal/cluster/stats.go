package cluster

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sort"

	"laminar/internal/budget"
	"laminar/internal/telemetry"
)

// Cluster metrics aggregation (DESIGN.md §16). On a period, every joined
// node broadcasts its MetricsSnapshot to the alive membership as a
// msgStats control message; each receiver caches the latest snapshot per
// peer, stamped with the sender's incarnation epoch and the receiver's
// tick. ClusterSnapshot folds the cache plus the live local snapshot into
// one cluster-wide view, marking slices from suspect/dead peers or
// superseded epochs as stale rather than dropping them — their counts
// happened; they just stopped moving.
//
// Staleness is marked, not kept forever: a peer that goes dead (detector
// or orderly leave) keeps its cached slices — stale-labeled — for one
// more merge cycle (StatsEvery ticks), then the sweep evicts them. A
// long-running cluster that churns members no longer grows its caches
// without bound (ISSUE 10); the postmortem window where "dead" and
// "epoch N < M" reasons are visible is preserved.
//
// Since ISSUE 10 the same frame optionally carries the sender's budget
// fact set; receivers fold it into their own ledger with the semilattice
// merge (spent=max, limit=min, higher epoch wins), which makes the
// cluster-wide spend monotone and order-independent, and cache the raw
// facts per peer under the same eviction rule as the stats cache.

// peerStats is the latest snapshot heard from one peer.
type peerStats struct {
	epoch    uint64 // sender's incarnation epoch at send time
	tick     uint64 // receiver's tick when heard
	deadTick uint64 // tick the sweep first saw the peer dead; 0 = live
	snap     telemetry.MetricsSnapshot
}

// peerBudget is the latest budget fact set heard from one peer, cached
// under the same staleness/eviction rules as peerStats.
type peerBudget struct {
	epoch    uint64
	tick     uint64
	deadTick uint64
	facts    map[budget.Key]budget.Fact
}

// ledger returns the local kernel's budget ledger, nil when the node
// runs unbudgeted (or, in codec-only tests, kernel-less).
func (c *Cluster) ledger() *budget.Ledger {
	if c.cfg.Kernel == nil {
		return nil
	}
	return c.cfg.Kernel.Budget()
}

// onStats caches a peer's snapshot broadcast and merges any attached
// budget facts into the local ledger. locked.
func (c *Cluster) onStats(m ctrlMsg) {
	var snap telemetry.MetricsSnapshot
	if err := json.Unmarshal(m.Blob, &snap); err != nil {
		c.denyEvent("cluster.stats", "decode", err)
		return
	}
	if c.stats == nil {
		c.stats = make(map[uint64]peerStats)
	}
	c.stats[m.From] = peerStats{epoch: m.Epoch, tick: c.now, snap: snap}
	c.count("cluster.stats.heard", 1)
	if len(m.Budget) == 0 {
		return
	}
	facts, err := budget.DecodeFacts(m.Budget)
	if err != nil {
		// The stats slice stood on its own; the fact blob did not. Drop
		// only the facts, with provenance — a half-parsed fact set must
		// never half-merge.
		c.denyEvent("cluster.budget", "decode", err)
		return
	}
	if c.budgetFacts == nil {
		c.budgetFacts = make(map[uint64]peerBudget)
	}
	c.budgetFacts[m.From] = peerBudget{epoch: m.Epoch, tick: c.now, facts: facts}
	if led := c.ledger(); led != nil {
		if n := led.MergeFacts(facts); n > 0 {
			c.count("cluster.budget.merged", n)
		}
	}
}

// broadcastStats sends the local metrics snapshot — and the local budget
// fact set, when a ledger is installed — to every alive member.
// locked on entry; unlocks around the sends (the heartbeat idiom).
func (c *Cluster) broadcastStats() {
	if c.rec == nil {
		return
	}
	blob, err := json.Marshal(c.rec.MetricsSnapshot())
	if err != nil {
		return
	}
	var factsBlob []byte
	if led := c.ledger(); led != nil {
		if b := led.ExportFacts(); len(b) <= budget.MaxFactsBlob {
			factsBlob = b
		}
	}
	msg := encodeCtrl(ctrlMsg{Type: msgStats, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr(), Blob: blob, Budget: factsBlob})
	targets := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.state == StateAlive {
			targets = append(targets, m.addr)
		}
	}
	sort.Strings(targets)
	c.mu.Unlock()
	for _, addr := range targets {
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
}

// sweepStats ages the per-peer caches: a peer the membership calls dead
// (or has forgotten) keeps its slices for one merge cycle — so a
// postmortem ClusterSnapshot still shows the labeled last numbers — and
// is then evicted from both caches. A peer that comes back (restart
// under a bumped epoch) un-marks before the cycle elapses. locked.
func (c *Cluster) sweepStats() {
	retain := uint64(c.cfg.StatsEvery)
	for id, ps := range c.stats {
		m, known := c.members[id]
		dead := !known || m.state == StateDead
		switch {
		case !dead:
			if ps.deadTick != 0 {
				ps.deadTick = 0
				c.stats[id] = ps
			}
		case ps.deadTick == 0:
			ps.deadTick = c.now
			c.stats[id] = ps
		case c.now-ps.deadTick >= retain:
			delete(c.stats, id)
			c.count("cluster.stats.evicted", 1)
		}
	}
	for id, pb := range c.budgetFacts {
		m, known := c.members[id]
		dead := !known || m.state == StateDead
		switch {
		case !dead:
			if pb.deadTick != 0 {
				pb.deadTick = 0
				c.budgetFacts[id] = pb
			}
		case pb.deadTick == 0:
			pb.deadTick = c.now
			c.budgetFacts[id] = pb
		case c.now-pb.deadTick >= retain:
			delete(c.budgetFacts, id)
			c.count("cluster.budget.evicted", 1)
		}
	}
}

// PeerBudgetFacts returns the cached fact set last heard from one peer
// (nil when none is cached) — the merged truth lives in the ledger; this
// is the per-peer provenance view.
func (c *Cluster) PeerBudgetFacts(id uint64) map[budget.Key]budget.Fact {
	c.mu.Lock()
	defer c.mu.Unlock()
	pb, ok := c.budgetFacts[id]
	if !ok {
		return nil
	}
	out := make(map[budget.Key]budget.Fact, len(pb.facts))
	for k, f := range pb.facts {
		out[k] = f
	}
	return out
}

// StatsCacheSize reports the cached peer counts (stats, budget) — the
// quantity the ISSUE 10 eviction keeps bounded.
func (c *Cluster) StatsCacheSize() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stats), len(c.budgetFacts)
}

// ClusterSnapshot merges the live local snapshot with every cached peer
// snapshot into the cluster-wide view. A peer's slice is stale when the
// failure detector no longer calls it alive, or when the cached snapshot
// came from an epoch the membership has since superseded.
func (c *Cluster) ClusterSnapshot() telemetry.ClusterSnapshot {
	var nodes []telemetry.NodeSnapshot
	c.mu.Lock()
	if c.rec != nil {
		// Snapshot under the lock so the local slice and the peer cache
		// come from the same instant of this node's view.
		nodes = append(nodes, telemetry.NodeSnapshot{
			Node: c.cfg.ID, Epoch: c.epoch, Tick: c.now,
			Snapshot: c.rec.MetricsSnapshot(),
		})
	}
	for id, ps := range c.stats {
		ns := telemetry.NodeSnapshot{Node: id, Epoch: ps.epoch, Tick: ps.tick, Snapshot: ps.snap}
		m, known := c.members[id]
		switch {
		case !known:
			ns.Stale, ns.StaleWhy = true, "unknown member"
		case m.state != StateAlive:
			ns.Stale, ns.StaleWhy = true, m.state.String()
		case m.epoch > ps.epoch:
			ns.Stale, ns.StaleWhy = true, fmt.Sprintf("epoch %d < %d", ps.epoch, m.epoch)
		}
		nodes = append(nodes, ns)
	}
	c.mu.Unlock()
	return telemetry.MergeSnapshots(nodes)
}

// PublishExpvar exposes this node's merged cluster view on /debug/vars
// under "laminar.cluster.<id>". Idempotent per name; expvar panics on
// double-publish, so the guard matters when tests boot the same id twice.
func (c *Cluster) PublishExpvar() {
	name := fmt.Sprintf("laminar.cluster.%d", c.cfg.ID)
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return c.ClusterSnapshot() }))
}
