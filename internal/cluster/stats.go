package cluster

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sort"

	"laminar/internal/telemetry"
)

// Cluster metrics aggregation (DESIGN.md §16). On a period, every joined
// node broadcasts its MetricsSnapshot to the alive membership as a
// msgStats control message; each receiver caches the latest snapshot per
// peer, stamped with the sender's incarnation epoch and the receiver's
// tick. ClusterSnapshot folds the cache plus the live local snapshot into
// one cluster-wide view, marking slices from suspect/dead peers or
// superseded epochs as stale rather than dropping them — their counts
// happened; they just stopped moving.

// peerStats is the latest snapshot heard from one peer.
type peerStats struct {
	epoch uint64 // sender's incarnation epoch at send time
	tick  uint64 // receiver's tick when heard
	snap  telemetry.MetricsSnapshot
}

// onStats caches a peer's snapshot broadcast. locked.
func (c *Cluster) onStats(m ctrlMsg) {
	var snap telemetry.MetricsSnapshot
	if err := json.Unmarshal(m.Blob, &snap); err != nil {
		c.denyEvent("cluster.stats", "decode", err)
		return
	}
	if c.stats == nil {
		c.stats = make(map[uint64]peerStats)
	}
	c.stats[m.From] = peerStats{epoch: m.Epoch, tick: c.now, snap: snap}
	c.count("cluster.stats.heard", 1)
}

// broadcastStats sends the local metrics snapshot to every alive member.
// locked on entry; unlocks around the sends (the heartbeat idiom).
func (c *Cluster) broadcastStats() {
	if c.rec == nil {
		return
	}
	blob, err := json.Marshal(c.rec.MetricsSnapshot())
	if err != nil {
		return
	}
	msg := encodeCtrl(ctrlMsg{Type: msgStats, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr(), Blob: blob})
	targets := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.state == StateAlive {
			targets = append(targets, m.addr)
		}
	}
	sort.Strings(targets)
	c.mu.Unlock()
	for _, addr := range targets {
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
}

// ClusterSnapshot merges the live local snapshot with every cached peer
// snapshot into the cluster-wide view. A peer's slice is stale when the
// failure detector no longer calls it alive, or when the cached snapshot
// came from an epoch the membership has since superseded.
func (c *Cluster) ClusterSnapshot() telemetry.ClusterSnapshot {
	var nodes []telemetry.NodeSnapshot
	c.mu.Lock()
	if c.rec != nil {
		// Snapshot under the lock so the local slice and the peer cache
		// come from the same instant of this node's view.
		nodes = append(nodes, telemetry.NodeSnapshot{
			Node: c.cfg.ID, Epoch: c.epoch, Tick: c.now,
			Snapshot: c.rec.MetricsSnapshot(),
		})
	}
	for id, ps := range c.stats {
		ns := telemetry.NodeSnapshot{Node: id, Epoch: ps.epoch, Tick: ps.tick, Snapshot: ps.snap}
		m, known := c.members[id]
		switch {
		case !known:
			ns.Stale, ns.StaleWhy = true, "unknown member"
		case m.state != StateAlive:
			ns.Stale, ns.StaleWhy = true, m.state.String()
		case m.epoch > ps.epoch:
			ns.Stale, ns.StaleWhy = true, fmt.Sprintf("epoch %d < %d", ps.epoch, m.epoch)
		}
		nodes = append(nodes, ns)
	}
	c.mu.Unlock()
	return telemetry.MergeSnapshots(nodes)
}

// PublishExpvar exposes this node's merged cluster view on /debug/vars
// under "laminar.cluster.<id>". Idempotent per name; expvar panics on
// double-publish, so the guard matters when tests boot the same id twice.
func (c *Cluster) PublishExpvar() {
	name := fmt.Sprintf("laminar.cluster.%d", c.cfg.ID)
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return c.ClusterSnapshot() }))
}
