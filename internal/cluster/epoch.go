package cluster

import (
	"encoding/binary"
	"fmt"

	"laminar/internal/difc"
)

// Epoch-versioned cross-node label interning.
//
// Interned label ids are process-local (difc/intern.go): node 7's id 42
// names whatever node 7 interned 42nd. When labels cross the wire they
// travel in full canonical form, but the sender ALSO sends its interned
// ids, and the receiver binds (peer, peer-epoch, remote-id) → local
// interned labels in a remap table. Within one incarnation the binding
// is stable — the same remote id always resolves to the same lattice
// point, so repeated routed opens and future id-only references cost a
// map hit instead of a parse.
//
// The epoch is what keeps this sound across reconnects: a node that
// crashes and returns re-interns from scratch, so its old ids are
// meaningless. Its restart bumps the persisted incarnation epoch; every
// peer that observes the new epoch discards the old remap table, and
// any frame still carrying the stale epoch is rejected fail-closed with
// provenance — never resolved against bindings that no longer mean what
// the sender meant.

// remapTable is one peer's per-incarnation binding table.
type remapTable struct {
	epoch uint64
	byID  map[remapKey]difc.Labels
}

// remapKey is a remote (secrecy-id, integrity-id) pair.
type remapKey struct{ s, i uint64 }

// epochKey is the store key of this node's incarnation epoch.
const epochKey = "node/epoch"

// loadEpoch reads the persisted incarnation epoch, bumps it for this
// boot, and persists the new value through the checkpoint protocol. A
// torn epoch record quarantines to a fresh high epoch rather than risk
// reusing one (fail closed: peers must never mistake this incarnation
// for the last one).
func (c *Cluster) loadEpoch() uint64 {
	var prev uint64
	payload, state, ok := c.recoverRecord(epochKey)
	if ok && len(payload) == 8 {
		prev = binary.BigEndian.Uint64(payload)
	} else if state == "quarantined" {
		prev += 1 << 20 // unknowable history: jump far past any plausible epoch
		c.count("cluster.epoch.quarantined", 1)
	}
	next := prev + 1
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], next)
	// Epoch persistence must complete before the node speaks; recovery
	// writes bypass injection, so write directly.
	c.cfg.Store.Set(epochKey, sealRecord(buf[:]))
	return next
}

// resetRemap installs a fresh (empty) remap table for a peer's new
// incarnation, discarding every binding of the old epoch. locked.
func (c *Cluster) resetRemap(peer, epoch uint64) {
	c.remap[peer] = &remapTable{epoch: epoch, byID: make(map[remapKey]difc.Labels)}
	c.count("cluster.remap.reset", 1)
}

// checkEpoch validates a frame's (peer, epoch) against the incarnation
// on file. A NEWER epoch is a reincarnation and is accepted after the
// member table and remap reset; a STALE epoch is rejected fail-closed
// with provenance — the sender is a ghost of a dead incarnation. locked.
func (c *Cluster) checkEpoch(peer, epoch uint64, site string) bool {
	if peer == c.cfg.ID {
		return epoch == c.epoch
	}
	m, ok := c.members[peer]
	if !ok {
		return true // first contact; observe() will record the epoch
	}
	if epoch < m.epoch {
		c.count("cluster.epoch.stale", 1)
		c.denyEvent(site, "stale-epoch",
			fmt.Errorf("node %d frame carries epoch %d, current incarnation is %d", peer, epoch, m.epoch))
		return false
	}
	return true
}

// bindRemote records a peer's interned-id → labels binding for its
// current epoch and returns the locally interned labels. locked.
func (c *Cluster) bindRemote(peer, epoch, sID, iID uint64, labels difc.Labels) difc.Labels {
	local := difc.InternLabels(labels)
	rt, ok := c.remap[peer]
	if !ok || rt.epoch != epoch {
		rt = &remapTable{epoch: epoch, byID: make(map[remapKey]difc.Labels)}
		c.remap[peer] = rt
	}
	if sID != 0 || iID != 0 {
		rt.byID[remapKey{sID, iID}] = local
	}
	return local
}

// ResolveRemote resolves a peer's interned-id pair against the remap
// table for the given epoch. ok is false when the epoch is not current
// or the id was never bound — the caller must treat that as an unknown
// label and fail closed, never guess.
func (c *Cluster) ResolveRemote(peer, epoch, sID, iID uint64) (difc.Labels, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rt, ok := c.remap[peer]
	if !ok || rt.epoch != epoch {
		return difc.Labels{}, false
	}
	l, ok := rt.byID[remapKey{sID, iID}]
	return l, ok
}

// Epoch reports this node's current incarnation epoch.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}
