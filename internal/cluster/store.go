package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"laminar/internal/faultinject"
	"laminar/internal/kernel"
)

// Crash-consistent change checkpoints.
//
// A cluster operation (join, drain, rebalance) is durable state in
// exactly the sense inode labels are (lsm/persist.go): if a node dies
// mid-join and forgets how far it got, it either rejoins half-configured
// — routing through a node the rest of the cluster never admitted — or
// stays wedged forever. Both are label-plane failures, so change records
// go through the same shadow-write + flip protocol the PR 1 store uses
// for labels:
//
//	1. write the full checksummed record to <key>#shadow
//	2. write the same record to <key> (the flip)
//	3. delete <key>#shadow
//
// A crash at any step leaves a state Resume can classify: a valid commit
// wins; a torn or missing commit rolls forward from a valid shadow; a
// torn shadow with no valid commit means the change's progress is
// unknowable, and the change is QUARANTINED — the node abandons it and
// stays OUT of the cluster until a fresh change is submitted. Recovery
// never guesses toward "joined" (fail closed).

// Store is the durable keyspace a node's change records live in. It is
// handed to the node at boot and survives restarts; the production shape
// is a file, the test shape a map the harness keeps across kills.
type Store interface {
	Get(key string) ([]byte, bool)
	Set(key string, val []byte)
	Delete(key string)
	Keys() []string
}

// MemStore is the in-memory Store used by tests and the smoke harness:
// it survives a simulated node crash because the harness owns it.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore builds an empty store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Get returns the value stored under key.
func (s *MemStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Set stores val under key (the value is copied).
func (s *MemStore) Set(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
}

// Delete removes key.
func (s *MemStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
}

// Keys lists the stored keys, sorted for deterministic recovery order.
func (s *MemStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ckptMagic heads every checkpoint record.
var ckptMagic = [4]byte{'L', 'M', 'C', '1'}

const shadowSuffix = "#shadow"

// sealRecord wraps a payload as magic | payload | crc32.
func sealRecord(payload []byte) []byte {
	buf := make([]byte, 0, len(ckptMagic)+len(payload)+4)
	buf = append(buf, ckptMagic[:]...)
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// openRecord validates a sealed record and returns its payload; any
// truncation, magic or checksum failure means the record is torn.
func openRecord(rec []byte) ([]byte, error) {
	if len(rec) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("checkpoint record truncated (%d bytes)", len(rec))
	}
	if [4]byte(rec[:4]) != ckptMagic {
		return nil, fmt.Errorf("checkpoint record bad magic %q", rec[:4])
	}
	body, sum := rec[:len(rec)-4], rec[len(rec)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(sum) {
		return nil, fmt.Errorf("checkpoint record checksum mismatch")
	}
	return body[4:], nil
}

// ckptFault consults the injector at a checkpoint step. Both Error (the
// medium failed) and Crash (the node died mid-write) leave a torn record
// behind; the difference — whether the process survives to see the error
// — is the harness's to play out.
func (c *Cluster) ckptFault(site string) error {
	if c.cfg.Injector == nil {
		return nil
	}
	switch c.cfg.Injector.At(site) {
	case faultinject.Error:
		return fmt.Errorf("%w: injected fault at %s", kernel.ErrIO, site)
	case faultinject.Crash:
		return kernel.ErrKilled
	default:
		return nil
	}
}

// checkpoint runs the shadow-write + flip protocol for key. Under an
// injected fault the step in progress tears — half the record lands —
// and the error propagates; the engine retries the checkpoint on the
// next settle, and every reachable intermediate state is one Resume
// classifies.
func (c *Cluster) checkpoint(key string, payload []byte) error {
	rec := sealRecord(payload)
	if err := c.ckptFault("cluster.ckpt.shadow"); err != nil {
		c.cfg.Store.Set(key+shadowSuffix, rec[:len(rec)/2])
		return err
	}
	c.cfg.Store.Set(key+shadowSuffix, rec)
	if err := c.ckptFault("cluster.ckpt.commit"); err != nil {
		c.cfg.Store.Set(key, rec[:len(rec)/2])
		return err
	}
	c.cfg.Store.Set(key, rec)
	if err := c.ckptFault("cluster.ckpt.clear"); err != nil {
		return err // shadow left behind; commit is valid, recovery clears it
	}
	c.cfg.Store.Delete(key + shadowSuffix)
	return nil
}

// recoverRecord classifies the persistent state of key and returns the
// payload to trust, repairing the records in place. Recovery writes
// bypass fault injection: this is the quiesced fsck pass.
//
// States: "clean" (valid commit), "rolled-forward" (commit rebuilt from
// a valid shadow), "quarantined" (nothing trustworthy — both records
// removed, ok=false), "absent".
func (c *Cluster) recoverRecord(key string) (payload []byte, state string, ok bool) {
	commit, hasCommit := c.cfg.Store.Get(key)
	shadow, hasShadow := c.cfg.Store.Get(key + shadowSuffix)
	if hasCommit {
		if p, err := openRecord(commit); err == nil {
			c.cfg.Store.Delete(key + shadowSuffix)
			return p, "clean", true
		}
	}
	if hasShadow {
		if p, err := openRecord(shadow); err == nil {
			c.cfg.Store.Set(key, shadow)
			c.cfg.Store.Delete(key + shadowSuffix)
			return p, "rolled-forward", true
		}
	}
	if hasCommit || hasShadow {
		// Some record existed but nothing decodes: the change's progress
		// is unknowable. Fail closed — drop the records and report
		// quarantine; the caller abandons the change rather than guess.
		c.cfg.Store.Delete(key)
		c.cfg.Store.Delete(key + shadowSuffix)
		return nil, "quarantined", false
	}
	return nil, "absent", false
}
