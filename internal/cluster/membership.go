package cluster

import (
	"fmt"
	"sort"

	"laminar/internal/telemetry"
)

// Membership and failure detection.
//
// Each node tracks every peer it has heard of as alive → suspect → dead,
// driven by heartbeat silence measured in logical ticks (the cluster has
// no wall clock: tests and the chaos oracle own time). The detector is
// deliberately fail-closed in the DIFC sense: a suspect or dead peer is
// never routed through and its stale-epoch traffic is rejected, so a
// failing node can lose messages — which the unreliable-channel
// semantics already permit — but can never cause an unchecked flow, and
// the failure signal itself (a missing heartbeat) carries no labeled
// payload, so it opens no new channel the paper's model lacks.
//
// Incarnation epochs: every boot of a node increments its persisted
// epoch. A peer that hears a higher epoch for a known id is seeing a
// reincarnation — it resets the member to alive, discards the old
// epoch's label remap table (epoch.go), and rejects any frame still
// carrying the stale epoch.

// MemberState is a peer's failure-detection state.
type MemberState uint8

// Failure-detection states.
const (
	StateAlive MemberState = iota
	StateSuspect
	StateDead
)

// String names the state.
func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// member is one tracked peer.
type member struct {
	id        uint64
	addr      string
	epoch     uint64
	state     MemberState
	lastHeard uint64 // tick of the last direct message
}

// MemberInfo is the exported view of one membership entry.
type MemberInfo struct {
	ID    uint64
	Addr  string
	Epoch uint64
	State MemberState
}

// Members lists the membership table (self included), sorted by id.
func (c *Cluster) Members() []MemberInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := []MemberInfo{{ID: c.cfg.ID, Addr: c.node.Addr(), Epoch: c.epoch, State: StateAlive}}
	for _, m := range c.members {
		out = append(out, MemberInfo{ID: m.id, Addr: m.addr, Epoch: m.epoch, State: m.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// State reports the tracked state of node id (self is always alive);
// StateDead for ids never heard of — an unknown node gets no traffic.
func (c *Cluster) State(id uint64) MemberState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == c.cfg.ID {
		return StateAlive
	}
	if m, ok := c.members[id]; ok {
		return m.state
	}
	return StateDead
}

// Converged reports whether every listed id is currently alive (self
// counts). The smoke harness and oracle poll this.
func (c *Cluster) Converged(ids ...uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		if id == c.cfg.ID {
			continue
		}
		m, ok := c.members[id]
		if !ok || m.state != StateAlive {
			return false
		}
	}
	return true
}

// observe records a direct message from a peer: the member becomes (or
// stays) alive and its silence clock resets. A higher epoch than the one
// on file is a reincarnation: the old epoch's remap table is discarded
// and the transition is recorded with provenance. locked.
func (c *Cluster) observe(id uint64, epoch uint64, addr string) *member {
	if id == c.cfg.ID {
		return nil
	}
	m, ok := c.members[id]
	if !ok {
		m = &member{id: id, addr: addr, epoch: epoch, state: StateAlive, lastHeard: c.now}
		c.members[id] = m
		c.memberEvent(id, epoch, "alive", "joined membership")
		c.resetRemap(id, epoch)
		return m
	}
	if addr != "" {
		m.addr = addr
	}
	if epoch > m.epoch {
		m.epoch = epoch
		c.resetRemap(id, epoch)
		c.memberEvent(id, epoch, "re-epoch", "reincarnated with a fresh epoch")
	}
	m.lastHeard = c.now
	if m.state != StateAlive {
		prev := m.state
		m.state = StateAlive
		c.memberEvent(id, epoch, "alive", "recovered from "+prev.String())
	}
	return m
}

// gossip merges a peer's view of the membership into ours: unknown nodes
// are added as suspects (we have not heard them DIRECTLY, and a gossiped
// entry must never make a node routable that we cannot reach), known
// nodes take the higher epoch. Direct observation always wins over
// gossip. locked.
func (c *Cluster) gossip(entries []memberWire) {
	for _, e := range entries {
		if e.ID == c.cfg.ID || e.Addr == "" {
			continue
		}
		m, ok := c.members[e.ID]
		if !ok {
			c.members[e.ID] = &member{id: e.ID, addr: e.Addr, epoch: e.Epoch,
				state: StateSuspect, lastHeard: c.now}
			c.memberEvent(e.ID, e.Epoch, "suspect", "known only by gossip")
			c.resetRemap(e.ID, e.Epoch)
			continue
		}
		if e.Epoch > m.epoch {
			m.epoch = e.Epoch
			c.resetRemap(e.ID, e.Epoch)
			c.memberEvent(e.ID, e.Epoch, "re-epoch", "gossiped fresh epoch")
		}
	}
}

// detect advances the failure detector one tick: members silent past
// SuspectAfter become suspect, past DeadAfter dead. locked.
func (c *Cluster) detect() {
	for _, m := range c.members {
		silent := c.now - m.lastHeard
		switch {
		case m.state == StateAlive && silent >= uint64(c.cfg.SuspectAfter):
			m.state = StateSuspect
			c.memberEvent(m.id, m.epoch, "suspect",
				fmt.Sprintf("silent for %d ticks", silent))
		case m.state == StateSuspect && silent >= uint64(c.cfg.DeadAfter):
			m.state = StateDead
			c.memberEvent(m.id, m.epoch, "dead",
				fmt.Sprintf("silent for %d ticks", silent))
		}
	}
}

// heartbeat sends a ping (with full membership gossip) to every member
// not yet declared dead. Send failures are silence — the peer's detector
// handles them. locked on entry; unlocks around the sends.
func (c *Cluster) heartbeat() {
	msg := encodeCtrl(ctrlMsg{Type: msgPing, From: c.cfg.ID, Epoch: c.epoch,
		Addr: c.node.Addr(), Members: c.memberWireLocked()})
	targets := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.state != StateDead {
			targets = append(targets, m.addr)
		}
	}
	sort.Strings(targets)
	c.mu.Unlock()
	for _, addr := range targets {
		c.node.SendControl(addr, msg)
	}
	c.mu.Lock()
}

// memberWireLocked renders the membership (self included) for gossip.
func (c *Cluster) memberWireLocked() []memberWire {
	out := []memberWire{{ID: c.cfg.ID, Epoch: c.epoch, State: StateAlive, Addr: c.node.Addr()}}
	ids := make([]uint64, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := c.members[id]
		out = append(out, memberWire{ID: m.id, Epoch: m.epoch, State: m.state, Addr: m.addr})
	}
	return out
}

// memberEvent records a membership transition with provenance. locked.
func (c *Cluster) memberEvent(id, epoch uint64, to, why string) {
	if c.rec == nil || !c.rec.Active() {
		return
	}
	c.rec.M.Extra.Get("cluster.member." + to).Add(0, 1)
	c.rec.Emit(telemetry.Event{
		Layer:  telemetry.LayerCluster,
		Kind:   telemetry.KindLifecycle,
		Site:   "cluster.member",
		Op:     to,
		Detail: fmt.Sprintf("node %d epoch %d: %s", id, epoch, why),
	})
}
