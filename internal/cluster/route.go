package cluster

import (
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/netlabel"
	"laminar/internal/telemetry"
)

// Multi-hop routing.
//
// A routed channel reaches a labeled endpoint through intermediate
// nodes, and the Laminar guarantee is preserved at EVERY hop, not just
// the ends: each intermediate node adopts the channel labels onto its
// own inbound and outbound endpoint inodes, spawns a relay task running
// AT those labels (lsm.AdoptTaskLabels), and forwards bytes with
// ordinary checked Recv/Send syscalls. The hop's own LSM therefore
// re-runs the full flow check on every byte it relays — a compromised
// or misconfigured hop whose relay does not carry the labels is simply
// denied by its own kernel, and the flow dies there silently (the
// unreliable channel again). Routing decisions consult the failure
// detector: suspects and the dead are never chosen as next hops, so a
// failing node degrades routes to silence, never to unchecked delivery.

// relay is one forwarding binding at an intermediate hop.
type relay struct {
	task   *kernel.Task
	inFD   kernel.FD
	outFD  kernel.FD
	labels difc.Labels
}

// ErrNoRoute reports that no alive path to the destination exists.
var ErrNoRoute = fmt.Errorf("cluster: no alive route")

// memberAddr returns the addr of an ALIVE member. locked.
func (c *Cluster) memberAddr(id uint64) (string, bool) {
	m, ok := c.members[id]
	if !ok || m.state != StateAlive {
		return "", false
	}
	return m.addr, true
}

// Open opens a labeled channel from t to the node dst, directly when dst
// is alive, otherwise through the first alive member that is not dst
// (one-hop detour). The endpoint creation runs the full labeled-create
// checks against t on this node, exactly as a local create.
func (c *Cluster) Open(t *kernel.Task, dst uint64, labels difc.Labels) (kernel.FD, error) {
	c.mu.Lock()
	if addr, ok := c.memberAddr(dst); ok {
		c.mu.Unlock()
		return c.node.Open(t, addr, labels)
	}
	// Direct peer not alive: detour through the lowest-id alive member
	// (deterministic choice), which relays with per-hop checks.
	var via uint64
	for id, m := range c.members {
		if id == dst || id == c.cfg.ID || m.state != StateAlive {
			continue
		}
		if via == 0 || id < via {
			via = id
		}
	}
	c.mu.Unlock()
	if via == 0 {
		return -1, ErrNoRoute
	}
	return c.OpenVia(t, via, dst, labels)
}

// OpenVia opens a labeled channel from t to dst routed through the
// intermediate node via. The first leg carries a routing blob naming the
// remaining path; every hop re-checks the flow with its own LSM.
func (c *Cluster) OpenVia(t *kernel.Task, via, dst uint64, labels difc.Labels) (kernel.FD, error) {
	labels = difc.InternLabels(labels)
	c.mu.Lock()
	addr, ok := c.memberAddr(via)
	epoch := c.epoch
	c.mu.Unlock()
	if !ok {
		return -1, ErrNoRoute
	}
	meta := encodeRoute(routeMeta{
		Origin:      c.cfg.ID,
		OriginEpoch: epoch,
		LabelS:      labels.S.InternedID(),
		LabelI:      labels.I.InternedID(),
		Path:        []uint64{dst},
	})
	return c.node.OpenRouted(t, addr, labels, meta)
}

// onRouted is the netlabel Routed handler: decide whether a routed open
// terminates here, relays onward, or dies. Runs inside Pump.
func (c *Cluster) onRouted(o netlabel.RoutedOffer) netlabel.RoutedAction {
	meta, err := parseRoute(o.Meta)
	if err != nil {
		c.denyEvent("cluster.route", "meta", err)
		return netlabel.RoutedDrop
	}
	c.mu.Lock()
	if !c.checkEpoch(meta.Origin, meta.OriginEpoch, "cluster.route") {
		c.mu.Unlock()
		return netlabel.RoutedDrop
	}
	if c.draining {
		// A draining node accepts no new routed work (drain step 1).
		c.count("cluster.route.draining", 1)
		c.mu.Unlock()
		return netlabel.RoutedDrop
	}
	// Bind the origin's interned ids for its current incarnation so
	// id-only references stay resolvable until the next re-epoch.
	labels := c.bindRemote(meta.Origin, meta.OriginEpoch, meta.LabelS, meta.LabelI, o.Labels)

	if len(meta.Path) == 0 || (len(meta.Path) == 1 && meta.Path[0] == c.cfg.ID) {
		c.mu.Unlock()
		return netlabel.RoutedDeliver // we are the destination
	}
	next := meta.Path[0]
	rest := meta.Path[1:]
	if next == c.cfg.ID && len(rest) > 0 {
		next, rest = rest[0], rest[1:]
	}
	addr, ok := c.memberAddr(next)
	if !ok {
		// Next hop suspect, dead or unknown: the route dies here, fail
		// closed — silence, never an unchecked shortcut.
		c.count("cluster.route.nohop", 1)
		c.mu.Unlock()
		return netlabel.RoutedDrop
	}
	c.mu.Unlock()

	// Build the relay: adopted outbound endpoint, relay task at the
	// channel's labels, both descriptors installed in the relay task.
	// The received trace context (if any) is re-attached to the onward
	// leg so the whole route shares one trace id; the transport bumps
	// the hop counter when it transmits.
	var tr *telemetry.TraceCtx
	if o.Traced {
		t := o.Trace
		tr = &t
	}
	outFile, err := c.node.OpenRoutedAdopted(addr, labels, encodeRoute(routeMeta{
		Origin:      meta.Origin,
		OriginEpoch: meta.OriginEpoch,
		LabelS:      meta.LabelS,
		LabelI:      meta.LabelI,
		Path:        rest,
	}), tr)
	if err != nil {
		c.count("cluster.route.deadlink", 1)
		return netlabel.RoutedDrop
	}
	task, err := c.cfg.Kernel.Spawn(c.cfg.Kernel.InitTask(), nil)
	if err != nil {
		return netlabel.RoutedDrop
	}
	if c.cfg.Module != nil {
		c.cfg.Module.AdoptTaskLabels(task, labels)
	}
	r := &relay{
		task:   task,
		inFD:   c.cfg.Kernel.InstallFile(task, o.File),
		outFD:  c.cfg.Kernel.InstallFile(task, outFile),
		labels: labels,
	}
	c.mu.Lock()
	c.relays = append(c.relays, r)
	c.mu.Unlock()
	c.count("cluster.route.relayed", 1)
	return netlabel.RoutedClaim
}

// pumpRelays forwards queued bytes across every relay binding with fully
// checked syscalls: the relay task's Recv is checked against the inbound
// endpoint's labels and its Send against the outbound endpoint's labels
// by this node's own LSM — the per-hop re-check. A denial either way is
// silent loss, indistinguishable from the wire eating the frame.
func (c *Cluster) pumpRelays() int {
	c.mu.Lock()
	relays := append([]*relay(nil), c.relays...)
	c.mu.Unlock()
	work := 0
	buf := make([]byte, 16*1024)
	for _, r := range relays {
		for {
			n, err := c.cfg.Kernel.Recv(r.task, r.inFD, buf)
			if err != nil || n == 0 {
				if err != nil && err != kernel.ErrAgain {
					c.count("cluster.relay.recv-denied", 1)
				}
				break
			}
			work++
			if _, serr := c.cfg.Kernel.Send(r.task, r.outFD, buf[:n]); serr != nil {
				c.count("cluster.relay.send-denied", 1)
			}
		}
	}
	return work
}
