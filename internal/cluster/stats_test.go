package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"laminar/internal/budget"
	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

func TestStatsCtrlCodecRoundTrip(t *testing.T) {
	blob := []byte(`{"denials":4}`)
	in := ctrlMsg{Type: msgStats, From: 2, Epoch: 5, Addr: "127.0.0.1:9", Blob: blob}
	out, err := parseCtrl(encodeCtrl(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgStats || out.From != 2 || out.Epoch != 5 || out.Addr != in.Addr {
		t.Fatalf("header round trip = %+v", out)
	}
	if !bytes.Equal(out.Blob, blob) {
		t.Fatalf("blob round trip = %q", out.Blob)
	}
	// The parsed blob must be a copy, not a window into the frame buffer.
	enc := encodeCtrl(in)
	out, _ = parseCtrl(enc)
	for i := range enc {
		enc[i] = 0xFF
	}
	if !bytes.Equal(out.Blob, blob) {
		t.Fatal("parsed blob aliases the frame buffer")
	}
}

func TestStatsCtrlCodecStrict(t *testing.T) {
	good := encodeCtrl(ctrlMsg{Type: msgStats, From: 1, Epoch: 1, Blob: []byte("{}")})
	cases := map[string][]byte{
		"trailing bytes":        append(append([]byte(nil), good...), 0xAA),
		"truncated blob header": good[:len(good)-3],
		"blob shorter than len": good[:len(good)-1],
	}
	for name, b := range cases {
		if _, err := parseCtrl(b); !errors.Is(err, ErrCtrlMalformed) {
			t.Errorf("%s: err = %v, want ErrCtrlMalformed", name, err)
		}
	}
	// A declared blob length past the cap is rejected before allocation.
	huge := encodeCtrl(ctrlMsg{Type: msgStats, From: 1, Epoch: 1,
		Blob: bytes.Repeat([]byte{'x'}, maxStatsBlob+1)})
	if _, err := parseCtrl(huge); !errors.Is(err, ErrCtrlMalformed) {
		t.Errorf("oversize blob: err = %v, want ErrCtrlMalformed", err)
	}
	// Non-stats messages still refuse trailing bytes (no blob arm).
	ping := encodeCtrl(ctrlMsg{Type: msgPing, From: 1, Epoch: 1})
	if _, err := parseCtrl(append(ping, 0x00)); !errors.Is(err, ErrCtrlMalformed) {
		t.Errorf("ping trailing bytes: err = %v, want ErrCtrlMalformed", err)
	}
}

// TestStatsBroadcastAggregates: stats broadcasts reach every peer on the
// tick period and merge into a cluster-wide snapshot with no stale
// slices while everyone is alive.
func TestStatsBroadcastAggregates(t *testing.T) {
	nodes := formCluster(t, 3)
	n1 := nodes[0]
	tickUntil(t, func() bool {
		return len(n1.cl.ClusterSnapshot().Nodes) >= 3
	}, nodes...)
	cs := n1.cl.ClusterSnapshot()
	if cs.StaleNodes != 0 {
		t.Fatalf("stale nodes = %d while all alive: %+v", cs.StaleNodes, cs.Nodes)
	}
	// The join protocol itself ran hooks on every node, so the merged
	// view must show more hook invocations than node 1 alone.
	var local uint64
	for _, n := range cs.Nodes {
		if n.Node == 1 {
			for _, v := range n.Snapshot.Hooks {
				local += v
			}
		}
	}
	var merged uint64
	for _, v := range cs.Merged.Hooks {
		merged += v
	}
	if merged <= local {
		t.Fatalf("merged hooks %d not larger than node 1's %d", merged, local)
	}
	if n1.rec.M.Extra.Get("cluster.stats.heard").Load() == 0 {
		t.Fatal("no stats broadcasts heard")
	}
}

// TestStatsStaleness: a dead peer's cached slice goes stale with the
// detector's verdict as the reason, and a slice from a superseded
// incarnation epoch is stale even while the peer is alive.
func TestStatsStaleness(t *testing.T) {
	nodes := formCluster(t, 3)
	n1, n2, n3 := nodes[0], nodes[1], nodes[2]
	tickUntil(t, func() bool {
		return len(n1.cl.ClusterSnapshot().Nodes) >= 3
	}, nodes...)

	// Epoch staleness: rewind the cached epoch below the membership's.
	n1.cl.mu.Lock()
	ps := n1.cl.stats[3]
	ps.epoch = 0
	n1.cl.stats[3] = ps
	n1.cl.mu.Unlock()
	found := false
	for _, n := range n1.cl.ClusterSnapshot().Nodes {
		if n.Node == 3 {
			found = true
			if !n.Stale || !strings.Contains(n.StaleWhy, "epoch") {
				t.Fatalf("superseded-epoch slice = %+v, want stale with epoch reason", n)
			}
		}
	}
	if !found {
		t.Fatal("node 3 slice missing")
	}

	// Liveness staleness: kill node 3 and wait for the detector.
	n3.cl.Close()
	tickUntil(t, func() bool { return n1.cl.State(3) != StateAlive }, n1, n2)
	for _, n := range n1.cl.ClusterSnapshot().Nodes {
		if n.Node == 3 && !n.Stale {
			t.Fatalf("dead peer's slice not stale: %+v", n)
		}
	}

	// The expvar surface publishes without panicking, idempotently.
	n1.cl.PublishExpvar()
	n1.cl.PublishExpvar()
}

// TestStatsDisabled: StatsEvery < 0 turns broadcasting off entirely.
func TestStatsDisabled(t *testing.T) {
	n1 := bootCluster(t, Config{ID: 1, StatsEvery: -1})
	if _, err := n1.cl.Join(); err != nil {
		t.Fatal(err)
	}
	n2 := bootCluster(t, Config{ID: 2, Seeds: []string{n1.cl.Addr()}, StatsEvery: -1})
	if _, err := n2.cl.Join(); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, func() bool {
		return n1.cl.Converged(1, 2) && n2.cl.Converged(1, 2) && n1.cl.Joined() && n2.cl.Joined()
	}, n1, n2)
	for i := 0; i < 64; i++ {
		n1.cl.Tick()
		n2.cl.Tick()
	}
	if got := len(n1.cl.ClusterSnapshot().Nodes); got != 1 {
		t.Fatalf("snapshot has %d slices with stats disabled, want local only", got)
	}
	if n1.rec.M.Extra.Get("cluster.stats.heard").Load() != 0 {
		t.Fatal("stats heard despite StatsEvery < 0")
	}
}

// TestStatsBlobDecodeFailureIsProvenance: a syntactically valid control
// frame whose JSON blob does not decode is dropped with a LayerCluster
// denial event, never a crash or partial apply.
func TestStatsBlobDecodeFailureIsProvenance(t *testing.T) {
	n1 := bootCluster(t, Config{ID: 1})
	if _, err := n1.cl.Join(); err != nil {
		t.Fatal(err)
	}
	var denies int
	unsub := n1.rec.Subscribe(func(e telemetry.Event) {
		if e.Layer == telemetry.LayerCluster && e.Site == "cluster.stats" {
			denies++
		}
	})
	defer unsub()
	n1.cl.mu.Lock()
	n1.cl.onStats(ctrlMsg{Type: msgStats, From: 9, Epoch: 1, Blob: []byte("{not json")})
	n1.cl.mu.Unlock()
	if denies == 0 {
		t.Fatal("undecodable stats blob dropped without provenance")
	}
	if len(n1.cl.ClusterSnapshot().Nodes) != 1 {
		t.Fatal("undecodable stats blob was cached")
	}
}

// TestStatsCtrlCodecBudgetBlob: the optional second blob (ISSUE 10
// budget facts) round-trips, its absence is the valid pre-budget frame,
// and its framing is as strict as the stats blob's.
func TestStatsCtrlCodecBudgetBlob(t *testing.T) {
	led := budget.New()
	led.SetLimit(difc.Tag(7), 2, 100)
	led.Charge("send", difc.Tag(7), 2, 5)
	facts := led.ExportFacts()

	in := ctrlMsg{Type: msgStats, From: 2, Epoch: 5, Blob: []byte("{}"), Budget: facts}
	out, err := parseCtrl(encodeCtrl(in))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Budget, facts) {
		t.Fatalf("budget blob round trip = %x, want %x", out.Budget, facts)
	}
	dec, err := budget.DecodeFacts(out.Budget)
	if err != nil {
		t.Fatal(err)
	}
	if f := dec[budget.Key{Tag: 7, Peer: 2}]; f.Spent != 5 || f.Limit != 100 {
		t.Fatalf("decoded fact %+v", f)
	}

	// Absent second blob = pre-budget frame: parses, Budget nil.
	old, err := parseCtrl(encodeCtrl(ctrlMsg{Type: msgStats, From: 1, Epoch: 1, Blob: []byte("{}")}))
	if err != nil || old.Budget != nil {
		t.Fatalf("pre-budget frame: %v budget=%x", err, old.Budget)
	}

	// Strictness: trailing bytes after the budget blob, torn headers and
	// short bodies all reject the frame.
	good := encodeCtrl(in)
	for name, b := range map[string][]byte{
		"trailing bytes":     append(append([]byte(nil), good...), 0xAA),
		"torn budget header": good[:len(good)-len(facts)-2],
		"short budget body":  good[:len(good)-1],
	} {
		if _, err := parseCtrl(b); !errors.Is(err, ErrCtrlMalformed) {
			t.Errorf("%s: err = %v, want ErrCtrlMalformed", name, err)
		}
	}
}

// bootBudgetCluster is bootCluster with a flow-budget ledger installed
// on the kernel.
func bootBudgetCluster(t *testing.T, cfg Config, led *budget.Ledger) *testClusterNode {
	t.Helper()
	mod := lsm.New()
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec),
		kernel.WithBudget(led))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(rec)
	user, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel, cfg.Module, cfg.Recorder = k, mod, rec
	c := New(cfg)
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &testClusterNode{k: k, mod: mod, user: user, rec: rec, cl: c}
}

// TestBudgetFactsGossip: facts ride the stats frame and semilattice-merge
// into every peer's ledger — the cluster-wide spend is monotone.
func TestBudgetFactsGossip(t *testing.T) {
	led1, led2 := budget.New(), budget.New()
	n1 := bootBudgetCluster(t, Config{ID: 1}, led1)
	if _, err := n1.cl.Join(); err != nil {
		t.Fatal(err)
	}
	n2 := bootBudgetCluster(t, Config{ID: 2, Seeds: []string{n1.cl.Addr()}}, led2)
	if _, err := n2.cl.Join(); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, func() bool {
		return n1.cl.Converged(1, 2) && n2.cl.Converged(1, 2) && n1.cl.Joined() && n2.cl.Joined()
	}, n1, n2)

	led1.SetLimit(difc.Tag(40), 2, 100)
	led1.Charge("send", difc.Tag(40), 2, 30)

	tickUntil(t, func() bool {
		f, ok := led2.Fact(difc.Tag(40), 2)
		return ok && f.Spent >= 30 && f.Limit == 100
	}, n1, n2)

	// The receiver cached the per-peer provenance view too.
	if facts := n2.cl.PeerBudgetFacts(1); facts[budget.Key{Tag: 40, Peer: 2}].Spent < 30 {
		t.Fatalf("peer fact cache = %+v", facts)
	}

	// Spend on node 2 flows back: merged spent takes the max.
	led2.Charge("send", difc.Tag(40), 2, 50)
	tickUntil(t, func() bool {
		f, _ := led1.Fact(difc.Tag(40), 2)
		return f.Spent >= 80
	}, n1, n2)
}

// TestStatsEvictionOnDeath (ISSUE 10 leak fix): a dead peer's cached
// stats and budget facts survive, stale-labeled, for one merge cycle and
// are then evicted — long-running clusters stop growing their caches.
func TestStatsEvictionOnDeath(t *testing.T) {
	nodes := formCluster(t, 3)
	n1, n2, n3 := nodes[0], nodes[1], nodes[2]
	tickUntil(t, func() bool {
		s, _ := n1.cl.StatsCacheSize()
		return s >= 2
	}, nodes...)

	n3.cl.Close()
	tickUntil(t, func() bool { return n1.cl.State(3) == StateDead }, n1, n2)

	// Immediately after the dead verdict the slice is still cached and
	// stale-labeled — the postmortem window.
	foundStale := false
	for _, ns := range n1.cl.ClusterSnapshot().Nodes {
		if ns.Node == 3 && ns.Stale {
			foundStale = true
		}
	}
	if !foundStale {
		t.Fatal("dead peer's slice missing from the postmortem window")
	}

	// One merge cycle later it is gone.
	tickUntil(t, func() bool {
		n1.cl.mu.Lock()
		_, cached := n1.cl.stats[3]
		n1.cl.mu.Unlock()
		return !cached
	}, n1, n2)
	if n1.rec.M.Extra.Get("cluster.stats.evicted").Load() == 0 {
		t.Fatal("eviction not counted")
	}
	// Node 2 survives untouched in the cache.
	n1.cl.mu.Lock()
	_, n2cached := n1.cl.stats[2]
	n1.cl.mu.Unlock()
	if !n2cached {
		t.Fatal("alive peer evicted")
	}
}
