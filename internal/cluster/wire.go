package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Cluster control-plane codec. Every message rides a netlabel Ctrl frame
// and leads with (type, from, incarnation epoch): the epoch is what makes
// a reconnecting node's old traffic rejectable fail-closed, so it is not
// optional per message type. Parsing is strict — anything malformed is an
// error and the frame is dropped, never partially applied.

// ErrCtrlMalformed reports an unparseable control payload.
var ErrCtrlMalformed = errors.New("cluster: malformed control message")

// msgType discriminates control messages.
type msgType byte

// Control message types.
const (
	msgPing      msgType = 1 + iota // heartbeat, carries membership gossip
	msgJoinReq                      // "let me in": sender wants the member table
	msgJoinAck                      // reply to JoinReq with the full table
	msgLeave                        // orderly departure (drain)
	msgAuthority                    // tag-authority range table broadcast
	msgStats                        // per-node metrics snapshot (JSON blob)
	msgTypeMax   = msgStats
)

// String names the message type.
func (t msgType) String() string {
	switch t {
	case msgPing:
		return "ping"
	case msgJoinReq:
		return "join-req"
	case msgJoinAck:
		return "join-ack"
	case msgLeave:
		return "leave"
	case msgAuthority:
		return "authority"
	case msgStats:
		return "stats"
	default:
		return "unknown"
	}
}

// memberWire is one gossiped membership entry.
type memberWire struct {
	ID    uint64
	Epoch uint64
	State MemberState
	Addr  string
}

// authRange is one tag-authority assignment: the node that mints and owns
// tags in [Start, nextStart).
type authRange struct {
	Start uint64
	Owner uint64
}

// ctrlMsg is one decoded control message.
type ctrlMsg struct {
	Type    msgType
	From    uint64
	Epoch   uint64
	Addr    string       // sender's listen address (dial-back key)
	Members []memberWire // ping / join-ack gossip
	Ranges  []authRange  // authority broadcasts
	Blob    []byte       // msgStats only: JSON metrics snapshot
	Budget  []byte       // msgStats only, optional: budget fact set (ISSUE 10)
}

const maxCtrlString = 256
const maxCtrlList = 1024
const maxStatsBlob = 256 * 1024

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func parseString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("%w: truncated string header", ErrCtrlMalformed)
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > maxCtrlString || len(b) < 2+n {
		return "", nil, fmt.Errorf("%w: string length %d", ErrCtrlMalformed, n)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

func parseU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated u64", ErrCtrlMalformed)
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// encodeCtrl serializes m.
func encodeCtrl(m ctrlMsg) []byte {
	buf := []byte{byte(m.Type)}
	buf = binary.BigEndian.AppendUint64(buf, m.From)
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = appendString(buf, m.Addr)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Members)))
	for _, mem := range m.Members {
		buf = binary.BigEndian.AppendUint64(buf, mem.ID)
		buf = binary.BigEndian.AppendUint64(buf, mem.Epoch)
		buf = append(buf, byte(mem.State))
		buf = appendString(buf, mem.Addr)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Ranges)))
	for _, r := range m.Ranges {
		buf = binary.BigEndian.AppendUint64(buf, r.Start)
		buf = binary.BigEndian.AppendUint64(buf, r.Owner)
	}
	if m.Type == msgStats {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Blob)))
		buf = append(buf, m.Blob...)
		// The budget fact set rides as a SECOND length-prefixed blob,
		// appended only when present: a pre-budget peer parsing the frame
		// sees no trailing bytes, and a budget-aware peer parsing a
		// pre-budget frame finds no second blob — both directions
		// interoperate without a version bump.
		if len(m.Budget) > 0 {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Budget)))
			buf = append(buf, m.Budget...)
		}
	}
	return buf
}

// parseCtrl decodes one control payload, strictly.
func parseCtrl(b []byte) (ctrlMsg, error) {
	var m ctrlMsg
	if len(b) < 1 {
		return m, fmt.Errorf("%w: empty payload", ErrCtrlMalformed)
	}
	m.Type = msgType(b[0])
	if m.Type == 0 || m.Type > msgTypeMax {
		return m, fmt.Errorf("%w: unknown type %d", ErrCtrlMalformed, b[0])
	}
	var err error
	b = b[1:]
	if m.From, b, err = parseU64(b); err != nil {
		return m, err
	}
	if m.Epoch, b, err = parseU64(b); err != nil {
		return m, err
	}
	if m.Addr, b, err = parseString(b); err != nil {
		return m, err
	}
	if len(b) < 2 {
		return m, fmt.Errorf("%w: truncated member count", ErrCtrlMalformed)
	}
	nm := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if nm > maxCtrlList {
		return m, fmt.Errorf("%w: member count %d", ErrCtrlMalformed, nm)
	}
	for i := 0; i < nm; i++ {
		var mem memberWire
		if mem.ID, b, err = parseU64(b); err != nil {
			return m, err
		}
		if mem.Epoch, b, err = parseU64(b); err != nil {
			return m, err
		}
		if len(b) < 1 {
			return m, fmt.Errorf("%w: truncated member state", ErrCtrlMalformed)
		}
		mem.State = MemberState(b[0])
		if mem.State > StateDead {
			return m, fmt.Errorf("%w: member state %d", ErrCtrlMalformed, b[0])
		}
		b = b[1:]
		if mem.Addr, b, err = parseString(b); err != nil {
			return m, err
		}
		m.Members = append(m.Members, mem)
	}
	if len(b) < 2 {
		return m, fmt.Errorf("%w: truncated range count", ErrCtrlMalformed)
	}
	nr := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if nr > maxCtrlList {
		return m, fmt.Errorf("%w: range count %d", ErrCtrlMalformed, nr)
	}
	for i := 0; i < nr; i++ {
		var r authRange
		if r.Start, b, err = parseU64(b); err != nil {
			return m, err
		}
		if r.Owner, b, err = parseU64(b); err != nil {
			return m, err
		}
		m.Ranges = append(m.Ranges, r)
	}
	if m.Type == msgStats {
		if len(b) < 4 {
			return m, fmt.Errorf("%w: truncated blob header", ErrCtrlMalformed)
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n > maxStatsBlob || len(b) < n {
			return m, fmt.Errorf("%w: blob length %d with %d bytes", ErrCtrlMalformed, n, len(b))
		}
		m.Blob = append([]byte(nil), b[:n]...)
		b = b[n:]
		// Optional second blob: the budget fact set. Absent bytes mean no
		// facts (old peer); present bytes must frame exactly.
		if len(b) > 0 {
			if len(b) < 4 {
				return m, fmt.Errorf("%w: truncated budget blob header", ErrCtrlMalformed)
			}
			bn := int(binary.BigEndian.Uint32(b))
			b = b[4:]
			if bn > maxStatsBlob || len(b) != bn {
				return m, fmt.Errorf("%w: budget blob length %d with %d bytes", ErrCtrlMalformed, bn, len(b))
			}
			m.Budget = append([]byte(nil), b...)
			b = nil
		}
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrCtrlMalformed, len(b))
	}
	return m, nil
}

// routeMeta is the routing blob an OpenRouted frame carries: the origin's
// identity and incarnation epoch (so every hop can reject a stale
// incarnation's opens fail-closed), the origin's interned label ids (the
// cross-node interning handle the receiving hop binds in its per-epoch
// remap table), and the hops still to visit — empty means the receiving
// node is the destination.
type routeMeta struct {
	Origin      uint64
	OriginEpoch uint64
	LabelS      uint64 // origin's interned id of the secrecy label
	LabelI      uint64 // origin's interned id of the integrity label
	Path        []uint64
}

// encodeRoute serializes r.
func encodeRoute(r routeMeta) []byte {
	buf := binary.BigEndian.AppendUint64(nil, r.Origin)
	buf = binary.BigEndian.AppendUint64(buf, r.OriginEpoch)
	buf = binary.BigEndian.AppendUint64(buf, r.LabelS)
	buf = binary.BigEndian.AppendUint64(buf, r.LabelI)
	buf = append(buf, byte(len(r.Path)))
	for _, hop := range r.Path {
		buf = binary.BigEndian.AppendUint64(buf, hop)
	}
	return buf
}

// maxRouteHops bounds a route; longer paths are malformed (and a loop
// would re-check at every hop anyway, so nothing needs them).
const maxRouteHops = 16

// parseRoute decodes a routing blob, strictly.
func parseRoute(b []byte) (routeMeta, error) {
	var r routeMeta
	var err error
	if r.Origin, b, err = parseU64(b); err != nil {
		return r, err
	}
	if r.OriginEpoch, b, err = parseU64(b); err != nil {
		return r, err
	}
	if r.LabelS, b, err = parseU64(b); err != nil {
		return r, err
	}
	if r.LabelI, b, err = parseU64(b); err != nil {
		return r, err
	}
	if len(b) < 1 {
		return r, fmt.Errorf("%w: truncated hop count", ErrCtrlMalformed)
	}
	n := int(b[0])
	b = b[1:]
	if n > maxRouteHops || len(b) != 8*n {
		return r, fmt.Errorf("%w: hop count %d with %d bytes", ErrCtrlMalformed, n, len(b))
	}
	for i := 0; i < n; i++ {
		var hop uint64
		hop, b, _ = parseU64(b)
		r.Path = append(r.Path, hop)
	}
	return r, nil
}
