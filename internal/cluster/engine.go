package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"laminar/internal/telemetry"
)

// The change engine: long-running cluster operations (join, drain,
// tag-authority rebalance) modeled as persistent multi-step changes, in
// the style of snapd's overlord. A change is a named sequence of steps;
// the engine advances at most one step transition per settle, and every
// transition is checkpointed through the crash-consistent store BEFORE
// the next step may run. A node killed mid-change therefore restarts
// knowing exactly which step was in flight: Doing steps re-run (steps
// are idempotent by contract), Undoing changes continue rolling back,
// and a change whose record is torn beyond recovery is abandoned
// fail-closed — the node stays out of the cluster rather than rejoin
// half-configured.

// ChangeStatus is a change's (or step's) lifecycle state.
type ChangeStatus uint8

// Change lifecycle states.
const (
	StatusDo      ChangeStatus = iota // queued, nothing ran yet
	StatusDoing                       // a step is in flight
	StatusDone                        // every step completed
	StatusUndoing                     // rolling back after a permanent error
	StatusUndone                      // rollback completed
	StatusError                       // rollback itself failed; terminal
)

// String names the status.
func (s ChangeStatus) String() string {
	switch s {
	case StatusDo:
		return "do"
	case StatusDoing:
		return "doing"
	case StatusDone:
		return "done"
	case StatusUndoing:
		return "undoing"
	case StatusUndone:
		return "undone"
	case StatusError:
		return "error"
	default:
		return "unknown"
	}
}

// ErrRetry is returned by a step handler that made no progress this
// settle but should be re-run (a control round-trip still in flight, a
// transient checkpoint EIO). The engine leaves the step Doing.
var ErrRetry = errors.New("cluster: step not ready, retry")

// Step is one checkpointed unit of a change.
type Step struct {
	Name   string
	Status ChangeStatus
}

// Change is one persistent cluster operation.
type Change struct {
	ID      uint64
	Kind    string // "join", "drain", "rebalance"
	Status  ChangeStatus
	StepIdx int
	Steps   []Step
	Args    []uint64 // kind-specific parameters (e.g. rebalance range, owner)

	dirty bool // checkpoint pending after a torn write
}

// stepDef is a registered step implementation. Do reports done=false to
// keep polling (the engine settles it again next tick); Undo must be
// idempotent and tolerate the step never having started.
type stepDef struct {
	name string
	do   func(c *Cluster, ch *Change) (done bool, err error)
	undo func(c *Cluster, ch *Change)
}

// changeKey is the store key for a change record.
func changeKey(id uint64) string { return "chg/" + strconv.FormatUint(id, 10) }

// encodeChange serializes a change record payload (sealed by checkpoint).
func encodeChange(ch *Change) []byte {
	buf := binary.BigEndian.AppendUint64(nil, ch.ID)
	buf = appendString(buf, ch.Kind)
	buf = append(buf, byte(ch.Status))
	buf = binary.BigEndian.AppendUint16(buf, uint16(ch.StepIdx))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ch.Steps)))
	for _, s := range ch.Steps {
		buf = appendString(buf, s.Name)
		buf = append(buf, byte(s.Status))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ch.Args)))
	for _, a := range ch.Args {
		buf = binary.BigEndian.AppendUint64(buf, a)
	}
	return buf
}

// decodeChange parses a change record payload.
func decodeChange(b []byte) (*Change, error) {
	ch := &Change{}
	var err error
	if ch.ID, b, err = parseU64(b); err != nil {
		return nil, err
	}
	if ch.Kind, b, err = parseString(b); err != nil {
		return nil, err
	}
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: truncated change header", ErrCtrlMalformed)
	}
	ch.Status = ChangeStatus(b[0])
	ch.StepIdx = int(binary.BigEndian.Uint16(b[1:]))
	n := int(binary.BigEndian.Uint16(b[3:]))
	b = b[5:]
	if n > 64 {
		return nil, fmt.Errorf("%w: step count %d", ErrCtrlMalformed, n)
	}
	for i := 0; i < n; i++ {
		var s Step
		if s.Name, b, err = parseString(b); err != nil {
			return nil, err
		}
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated step status", ErrCtrlMalformed)
		}
		s.Status = ChangeStatus(b[0])
		b = b[1:]
		ch.Steps = append(ch.Steps, s)
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: truncated arg count", ErrCtrlMalformed)
	}
	na := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if na > 16 || len(b) != 8*na {
		return nil, fmt.Errorf("%w: arg count %d with %d bytes", ErrCtrlMalformed, na, len(b))
	}
	for i := 0; i < na; i++ {
		var a uint64
		a, b, _ = parseU64(b)
		ch.Args = append(ch.Args, a)
	}
	return ch, nil
}

// submit creates a change of the registered kind, checkpoints it, and
// queues it for settling. locked.
func (c *Cluster) submit(kind string, args ...uint64) (*Change, error) {
	defs, ok := c.stepDefs[kind]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown change kind %q", kind)
	}
	c.nextChange++
	ch := &Change{ID: c.nextChange, Kind: kind, Status: StatusDo, Args: args}
	for _, d := range defs {
		ch.Steps = append(ch.Steps, Step{Name: d.name, Status: StatusDo})
	}
	c.changes[ch.ID] = ch
	c.saveChange(ch)
	c.changeEvent(ch, "submitted")
	return ch, nil
}

// saveChange checkpoints ch; on a torn write the change is marked dirty
// and the checkpoint retries next settle. locked.
func (c *Cluster) saveChange(ch *Change) {
	if err := c.checkpoint(changeKey(ch.ID), encodeChange(ch)); err != nil {
		ch.dirty = true
		c.count("cluster.ckpt.torn", 1)
		return
	}
	ch.dirty = false
}

// settle advances every live change by at most one step transition.
// locked (step handlers may unlock around network sends).
func (c *Cluster) settle() int {
	ids := make([]uint64, 0, len(c.changes))
	for id := range c.changes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	work := 0
	for _, id := range ids {
		ch := c.changes[id]
		if ch.dirty {
			// A torn checkpoint blocks further transitions: durable state
			// must never lag the running state by more than one step.
			c.saveChange(ch)
			work++
			if ch.dirty {
				continue
			}
		}
		switch ch.Status {
		case StatusDo:
			ch.Status = StatusDoing
			if len(ch.Steps) > 0 {
				ch.Steps[0].Status = StatusDoing
			}
			c.saveChange(ch)
			work++
		case StatusDoing:
			work += c.settleDoing(ch)
		case StatusUndoing:
			work += c.settleUndoing(ch)
		}
	}
	return work
}

// settleDoing runs the change's current step. locked.
func (c *Cluster) settleDoing(ch *Change) int {
	if ch.StepIdx >= len(ch.Steps) {
		ch.Status = StatusDone
		c.saveChange(ch)
		c.changeEvent(ch, "completed")
		return 1
	}
	step := &ch.Steps[ch.StepIdx]
	step.Status = StatusDoing
	def := c.stepDefs[ch.Kind][ch.StepIdx]
	done, err := def.do(c, ch)
	switch {
	case errors.Is(err, ErrRetry) || (err == nil && !done):
		return 0
	case err != nil:
		// Permanent failure: roll back everything that ran, newest first.
		ch.Status = StatusUndoing
		step.Status = StatusUndoing
		c.saveChange(ch)
		c.changeEvent(ch, "failed at "+step.Name+": "+err.Error())
		return 1
	default:
		step.Status = StatusDone
		ch.StepIdx++
		if ch.StepIdx == len(ch.Steps) {
			ch.Status = StatusDone
			c.changeEvent(ch, "completed")
		}
		c.saveChange(ch)
		return 1
	}
}

// settleUndoing rolls the change back one step per settle. locked.
func (c *Cluster) settleUndoing(ch *Change) int {
	if ch.StepIdx < 0 {
		ch.Status = StatusUndone
		c.saveChange(ch)
		c.changeEvent(ch, "rolled back")
		return 1
	}
	step := &ch.Steps[ch.StepIdx]
	def := c.stepDefs[ch.Kind][ch.StepIdx]
	if def.undo != nil {
		def.undo(c, ch)
	}
	step.Status = StatusUndone
	ch.StepIdx--
	if ch.StepIdx < 0 {
		ch.Status = StatusUndone
		c.changeEvent(ch, "rolled back")
	}
	c.saveChange(ch)
	return 1
}

// resumeChanges reloads persisted change records after a restart,
// classifying each through the crash-recovery pass. Quarantined records
// (torn beyond recovery) are abandoned fail-closed: the change is gone
// and whatever it was configuring stays unconfigured. locked.
func (c *Cluster) resumeChanges() {
	// Collect base keys from commits AND orphan shadows (a crash between
	// the shadow write and the flip leaves only the shadow behind).
	seen := map[string]bool{}
	var keys []string
	for _, key := range c.cfg.Store.Keys() {
		base := strings.TrimSuffix(key, shadowSuffix)
		if strings.HasPrefix(base, "chg/") && !seen[base] {
			seen[base] = true
			keys = append(keys, base)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		payload, state, ok := c.recoverRecord(key)
		c.count("cluster.recovery."+state, 1)
		if !ok {
			c.denyEvent("cluster.ckpt", "recover",
				fmt.Errorf("change record %s torn beyond recovery; abandoned fail-closed", key))
			continue
		}
		ch, err := decodeChange(payload)
		if err != nil {
			c.denyEvent("cluster.ckpt", "decode",
				fmt.Errorf("change record %s: %w; abandoned fail-closed", key, err))
			c.cfg.Store.Delete(key)
			continue
		}
		if _, known := c.stepDefs[ch.Kind]; !known {
			c.denyEvent("cluster.ckpt", "kind",
				fmt.Errorf("change %d has unknown kind %q; abandoned fail-closed", ch.ID, ch.Kind))
			c.cfg.Store.Delete(key)
			continue
		}
		c.changes[ch.ID] = ch
		if ch.ID > c.nextChange {
			c.nextChange = ch.ID
		}
		switch ch.Status {
		case StatusDoing, StatusDo, StatusUndoing:
			c.changeEvent(ch, "resumed ("+state+")")
		}
	}
}

// Change returns the tracked change with the given id.
func (c *Cluster) Change(id uint64) (*Change, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.changes[id]
	return ch, ok
}

// Changes lists every tracked change, sorted by id.
func (c *Cluster) Changes() []*Change {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Change, 0, len(c.changes))
	for _, ch := range c.changes {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// changeEvent records a change transition with provenance. locked.
func (c *Cluster) changeEvent(ch *Change, what string) {
	if c.rec == nil || !c.rec.Active() {
		return
	}
	c.rec.M.Extra.Get("cluster.change." + ch.Status.String()).Add(0, 1)
	c.rec.Emit(telemetry.Event{
		Layer:  telemetry.LayerCluster,
		Kind:   telemetry.KindLifecycle,
		Site:   "cluster.change",
		Op:     ch.Kind,
		Detail: fmt.Sprintf("change %d step %d/%d %s: %s", ch.ID, ch.StepIdx, len(ch.Steps), ch.Status, what),
	})
}
