package simwork

import (
	"testing"
	"time"
)

func TestDoScalesWithUnits(t *testing.T) {
	// More units must cost more time; exact timing is platform noise, so
	// compare a 50x spread.
	small := time.Duration(0)
	large := time.Duration(0)
	for trial := 0; trial < 5; trial++ {
		s := time.Now()
		Do(2000)
		if d := time.Since(s); trial == 0 || d < small {
			small = d
		}
		s = time.Now()
		Do(100000)
		if d := time.Since(s); trial == 0 || d < large {
			large = d
		}
	}
	if large <= small {
		t.Errorf("Do(100000)=%v <= Do(2000)=%v", large, small)
	}
}

func TestDoZeroIsCheap(t *testing.T) {
	Do(0) // must not panic or hang
}
