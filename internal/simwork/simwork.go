// Package simwork provides a calibrated busy-work primitive used by the
// case studies to model the application work the original programs did
// around their security-sensitive sections — request parsing, network
// message encoding, connection handling, rendering. Both the secured and
// unsecured variant of each app perform identical simwork, so overhead
// comparisons isolate the DIFC machinery while the *proportions* of
// security work to application work track the paper's Table 3.
package simwork

import "sync/atomic"

// sink defeats dead-code elimination; apps call Do concurrently, so the
// write is atomic.
var sink atomic.Uint64

// Do spins for approximately units nanoseconds of CPU work.
func Do(units int) {
	acc := uint64(1)
	for i := 0; i < units; i++ {
		acc = acc*1664525 + 1013904223
	}
	sink.Store(acc)
}
