package dacapo

import (
	"testing"

	"laminar/internal/jvm"
)

func TestRegionSweepPoints(t *testing.T) {
	pts := RegionSweep()
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].PctInside != 0 || pts[len(pts)-1].PctInside != 100 {
		t.Errorf("endpoints = %d..%d", pts[0].PctInside, pts[len(pts)-1].PctInside)
	}
}

func TestRegionSweepProgramsVerifyAndRun(t *testing.T) {
	for _, pt := range RegionSweep() {
		p, err := BuildRegionSweep(pt)
		if err != nil {
			t.Fatalf("%s: %v", pt.Name, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", pt.Name, err)
		}
		var want int64
		for i, mode := range []jvm.BarrierMode{jvm.BarrierNone, jvm.BarrierStatic} {
			p.ResetCompilation()
			mc, err := jvm.NewMachine(p, jvm.CompileOptions{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			v, err := mc.Call(mc.NewThread(), "run", jvm.IntV(20))
			if err != nil {
				t.Fatalf("%s mode %v: %v", pt.Name, mode, err)
			}
			if i == 0 {
				want = v.Int()
			} else if v.Int() != want {
				t.Errorf("%s: checksum %d != %d across modes", pt.Name, v.Int(), want)
			}
			if mode == jvm.BarrierStatic {
				// Sweep points with inside work must actually enter
				// regions; 0% must not.
				st := mc.Stats()
				if pt.PctInside > 0 && st.RegionsEntered == 0 {
					t.Errorf("%s: no regions entered", pt.Name)
				}
				if pt.PctInside == 0 && st.RegionsEntered != 0 {
					t.Errorf("%s: unexpected regions", pt.Name)
				}
				if st.Violations != 0 {
					t.Errorf("%s: violations = %d", pt.Name, st.Violations)
				}
			}
		}
		_ = want
	}
}

func TestRegionSweepOutsideWorkMatchesChecksum(t *testing.T) {
	// The 0% point's checksum counts all work on the unlabeled object:
	// 20 iterations × 40 units.
	p, err := BuildRegionSweep(RegionSweepPoint{Name: "x", PctInside: 0, WorkUnits: 40, SecrecyTag: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := jvm.NewMachine(p, jvm.CompileOptions{Mode: jvm.BarrierNone})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call(mc.NewThread(), "run", jvm.IntV(20))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 20*40 {
		t.Errorf("checksum = %d, want %d", v.Int(), 20*40)
	}
}
