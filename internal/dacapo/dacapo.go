// Package dacapo provides the synthetic MiniJVM workloads standing in for
// the DaCapo benchmarks and pseudojbb in the Laminar paper's JVM-overhead
// experiment (§6.1). The real experiment measures Java programs *without
// security regions* under three VM configurations — unmodified, static
// barriers, dynamic barriers — so what matters is the density and mix of
// heap accesses, not the benchmark semantics. Each workload here is a
// bytecode program generated from a per-benchmark operation mix calibrated
// to the heap-intensive character of its namesake (pointer-chasing for
// antlr/pmd, array-heavy for lusearch/luindex, allocation-heavy for
// xalan/hsqldb, transaction-object churn for jbb).
package dacapo

import (
	"fmt"
	"math/rand"

	"laminar/internal/jvm"
)

// Mix describes a workload's per-iteration operation profile. Percentages
// need not sum to 100; the remainder is arithmetic.
type Mix struct {
	Name       string
	FieldRead  int // % of ops reading an object field
	FieldWrite int // % writing an object field
	ArrayOps   int // % array element reads/writes
	Alloc      int // % allocating a fresh object
	PoolSize   int // objects in the working set
	OpsPerIter int // operations generated per loop iteration
}

// Workloads is the benchmark suite: nine DaCapo-shaped mixes plus
// pseudojbb.
var Workloads = []Mix{
	{Name: "antlr", FieldRead: 42, FieldWrite: 14, ArrayOps: 8, Alloc: 6, PoolSize: 64, OpsPerIter: 48},
	{Name: "bloat", FieldRead: 38, FieldWrite: 22, ArrayOps: 10, Alloc: 4, PoolSize: 96, OpsPerIter: 56},
	{Name: "fop", FieldRead: 30, FieldWrite: 12, ArrayOps: 16, Alloc: 8, PoolSize: 48, OpsPerIter: 40},
	{Name: "hsqldb", FieldRead: 26, FieldWrite: 18, ArrayOps: 12, Alloc: 12, PoolSize: 128, OpsPerIter: 64},
	{Name: "jython", FieldRead: 36, FieldWrite: 16, ArrayOps: 6, Alloc: 10, PoolSize: 80, OpsPerIter: 52},
	{Name: "luindex", FieldRead: 18, FieldWrite: 10, ArrayOps: 34, Alloc: 4, PoolSize: 40, OpsPerIter: 44},
	{Name: "lusearch", FieldRead: 16, FieldWrite: 6, ArrayOps: 40, Alloc: 2, PoolSize: 40, OpsPerIter: 44},
	{Name: "pmd", FieldRead: 44, FieldWrite: 12, ArrayOps: 6, Alloc: 6, PoolSize: 72, OpsPerIter: 48},
	{Name: "xalan", FieldRead: 28, FieldWrite: 14, ArrayOps: 10, Alloc: 14, PoolSize: 112, OpsPerIter: 56},
	{Name: "pseudojbb", FieldRead: 24, FieldWrite: 20, ArrayOps: 14, Alloc: 10, PoolSize: 160, OpsPerIter: 72},
}

// fields per pooled object.
const nFields = 4

// Build generates the workload's program: a setup method that fills an
// object pool and a run(n) method whose loop body is OpsPerIter operations
// drawn deterministically from the mix. The program has no security
// regions, matching §6.1's configuration.
func Build(m Mix) (*jvm.Program, error) {
	p := jvm.NewProgram(1)
	rng := rand.New(rand.NewSource(int64(len(m.Name))*1007 + int64(m.OpsPerIter)))

	// run(n): local 0 = n, 1 = pool array, 2 = loop counter, 3 = scratch
	// object, 4 = accumulator, 5 = scratch index.
	a := jvm.NewAsm()
	// pool = new array[PoolSize]; fill with objects.
	a.Const(int64(m.PoolSize)).Emit(jvm.OpNewArray, 0).Store(1)
	a.Const(0).Store(2)
	a.Label("fill")
	a.Load(2).Const(int64(m.PoolSize)).Op(jvm.OpCmpGE).JmpIf("filled")
	a.Load(1).Load(2).New(nFields).Op(jvm.OpAStore)
	a.Load(2).Const(1).Op(jvm.OpAdd).Store(2)
	a.Jmp("fill")
	a.Label("filled")
	// Initialize each object's fields to its index (second pass keeps the
	// generator simple).
	a.Const(0).Store(2)
	a.Label("init")
	a.Load(2).Const(int64(m.PoolSize)).Op(jvm.OpCmpGE).JmpIf("inited")
	a.Load(1).Load(2).Op(jvm.OpALoad).Store(3)
	for f := 0; f < nFields; f++ {
		a.Load(3).Load(2).PutField(f)
	}
	a.Load(2).Const(1).Op(jvm.OpAdd).Store(2)
	a.Jmp("init")
	a.Label("inited")

	// Main loop: while (local0-- > 0) { body }.
	a.Const(0).Store(4)
	a.Label("loop")
	a.Load(0).Const(0).Op(jvm.OpCmpLE).JmpIf("done")
	a.Load(0).Const(1).Op(jvm.OpSub).Store(0)
	emitBody(a, m, rng)
	a.Jmp("loop")
	a.Label("done")
	a.Load(4).Op(jvm.OpReturnVal)

	code, err := a.Build()
	if err != nil {
		return nil, fmt.Errorf("dacapo %s: %v", m.Name, err)
	}
	p.Add(&jvm.Method{Name: "run", NArgs: 1, NLocal: 6, Code: code})
	return p, nil
}

// emitBody generates one iteration's operations. Each op picks a pool slot
// with cheap arithmetic on the loop variable so the access pattern varies
// across iterations without calls into the host.
func emitBody(a *jvm.Asm, m Mix, rng *rand.Rand) {
	for op := 0; op < m.OpsPerIter; op++ {
		slot := rng.Intn(m.PoolSize)
		field := rng.Intn(nFields)
		r := rng.Intn(100)
		switch {
		case r < m.FieldRead:
			// acc += pool[slot].f
			a.Load(1).Const(int64(slot)).Op(jvm.OpALoad)
			a.GetField(field)
			a.Load(4).Op(jvm.OpAdd).Store(4)
		case r < m.FieldRead+m.FieldWrite:
			// pool[slot].f = acc
			a.Load(1).Const(int64(slot)).Op(jvm.OpALoad)
			a.Load(4).PutField(field)
		case r < m.FieldRead+m.FieldWrite+m.ArrayOps:
			// acc += len(pool); pool[slot2] = pool[slot]
			a.Load(1).Op(jvm.OpArrayLen).Load(4).Op(jvm.OpAdd).Store(4)
			a.Load(1).Const(int64(rng.Intn(m.PoolSize))).
				Load(1).Const(int64(slot)).Op(jvm.OpALoad).
				Op(jvm.OpAStore)
		case r < m.FieldRead+m.FieldWrite+m.ArrayOps+m.Alloc:
			// pool[slot] = new obj; obj.f = acc
			a.New(nFields).Store(3)
			a.Load(3).Load(4).PutField(field)
			a.Load(1).Const(int64(slot)).Load(3).Op(jvm.OpAStore)
		default:
			// acc = acc*31 + slot
			a.Load(4).Const(31).Op(jvm.OpMul).Const(int64(slot)).Op(jvm.OpAdd).Store(4)
		}
	}
}

// Run executes the workload for iters loop iterations under the given
// compiler options and returns the checksum and machine statistics.
func Run(m Mix, iters int, opts jvm.CompileOptions) (int64, jvm.RunStats, error) {
	p, err := Build(m)
	if err != nil {
		return 0, jvm.RunStats{}, err
	}
	mc, err := jvm.NewMachine(p, opts)
	if err != nil {
		return 0, jvm.RunStats{}, err
	}
	v, err := mc.Call(mc.NewThread(), "run", jvm.IntV(int64(iters)))
	if err != nil {
		return 0, jvm.RunStats{}, err
	}
	return v.Int(), mc.Stats(), nil
}
