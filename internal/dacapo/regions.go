package dacapo

import (
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/jvm"
)

// Region-density sweep. §4.3 argues that "requiring threads to access
// labeled data within security regions limits the amount of work the VM
// and compiler must do to enforce DIFC, provided that a substantial
// portion of the execution time is spent operating on unlabeled data."
// BuildRegionSweep generates a family of programs that vary the fraction
// of work executed inside security regions, so the overhead-vs-density
// curve behind that claim can be measured directly.

// RegionSweepPoint is one density in the sweep.
type RegionSweepPoint struct {
	Name       string
	PctInside  int // percentage of work units executed inside a region
	WorkUnits  int // total work units per loop iteration
	SecrecyTag difc.Tag
}

// RegionSweep returns sweep points from all-outside to all-inside.
func RegionSweep() []RegionSweepPoint {
	out := make([]RegionSweepPoint, 0, 6)
	for _, pct := range []int{0, 10, 25, 50, 75, 100} {
		out = append(out, RegionSweepPoint{
			Name:       fmt.Sprintf("inside-%d%%", pct),
			PctInside:  pct,
			WorkUnits:  40,
			SecrecyTag: difc.Tag(1),
		})
	}
	return out
}

// BuildRegionSweep generates the program for one sweep point:
//
//	swork(dummy): a secure method that allocates a labeled object and
//	              performs the inside share of the work units on it;
//	run(n):       per iteration, performs the outside share on an
//	              unlabeled object and calls swork once (if the inside
//	              share is non-zero).
//
// Inside and outside work units are identical field increment sequences,
// so the measured difference between sweep points is purely region
// entry/exit plus in-region barrier cost.
func BuildRegionSweep(pt RegionSweepPoint) (*jvm.Program, error) {
	p := jvm.NewProgram(0)
	inside := pt.WorkUnits * pt.PctInside / 100
	outside := pt.WorkUnits - inside

	// unit emits one work unit: obj.f0 = obj.f0 + 1, obj in the given
	// local slot.
	unit := func(a *jvm.Asm, slot int) {
		a.Load(slot).Load(slot).GetField(0).Const(1).Op(jvm.OpAdd).PutField(0)
	}

	var swork *jvm.Method
	if inside > 0 {
		swork = &jvm.Method{Name: "swork", NArgs: 1, NLocal: 2, Secure: &jvm.SecureInfo{
			Labels: difc.Labels{S: difc.NewLabel(pt.SecrecyTag)},
		}}
		p.Add(swork)
		a := jvm.NewAsm()
		a.New(1).Store(1)
		a.Load(1).Const(0).PutField(0)
		for u := 0; u < inside; u++ {
			unit(a, 1)
		}
		a.Op(jvm.OpReturn)
		code, err := a.Build()
		if err != nil {
			return nil, err
		}
		swork.Code = code
	}

	run := &jvm.Method{Name: "run", NArgs: 1, NLocal: 3}
	p.Add(run)
	a := jvm.NewAsm()
	a.New(1).Store(2)
	a.Load(2).Const(0).PutField(0)
	a.Label("loop")
	a.Load(0).Const(0).Op(jvm.OpCmpLE).JmpIf("done")
	a.Load(0).Const(1).Op(jvm.OpSub).Store(0)
	for u := 0; u < outside; u++ {
		unit(a, 2)
	}
	if swork != nil {
		a.Load(2).Invoke(swork)
	}
	a.Jmp("loop")
	a.Label("done")
	a.Load(2).GetField(0).Op(jvm.OpReturnVal)
	code, err := a.Build()
	if err != nil {
		return nil, err
	}
	run.Code = code
	return p, nil
}
