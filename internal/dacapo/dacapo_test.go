package dacapo

import (
	"testing"

	"laminar/internal/jvm"
)

func TestAllWorkloadsBuildAndVerify(t *testing.T) {
	for _, m := range Workloads {
		p, err := Build(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := p.Verify(); err != nil {
			t.Errorf("%s: verify: %v", m.Name, err)
		}
	}
}

func TestChecksumsStableAcrossModes(t *testing.T) {
	// Barrier configuration must not change program results.
	for _, m := range Workloads {
		var want int64
		for i, mode := range []jvm.BarrierMode{jvm.BarrierNone, jvm.BarrierStatic, jvm.BarrierDynamic} {
			sum, _, err := Run(m, 50, jvm.CompileOptions{Mode: mode})
			if err != nil {
				t.Fatalf("%s mode %v: %v", m.Name, mode, err)
			}
			if i == 0 {
				want = sum
			} else if sum != want {
				t.Errorf("%s mode %v: checksum %d, want %d", m.Name, mode, sum, want)
			}
			// Optimization must not change results either.
			osum, _, err := Run(m, 50, jvm.CompileOptions{Mode: mode, Optimize: true})
			if err != nil {
				t.Fatalf("%s mode %v opt: %v", m.Name, mode, err)
			}
			if osum != want {
				t.Errorf("%s mode %v opt: checksum %d, want %d", m.Name, mode, osum, want)
			}
		}
	}
}

func TestBarrierWorkScalesWithMode(t *testing.T) {
	m := Workloads[0]
	_, noneStats, err := Run(m, 100, jvm.CompileOptions{Mode: jvm.BarrierNone})
	if err != nil {
		t.Fatal(err)
	}
	_, statStats, err := Run(m, 100, jvm.CompileOptions{Mode: jvm.BarrierStatic})
	if err != nil {
		t.Fatal(err)
	}
	_, dynStats, err := Run(m, 100, jvm.CompileOptions{Mode: jvm.BarrierDynamic})
	if err != nil {
		t.Fatal(err)
	}
	if noneStats.BarrierChecks != 0 {
		t.Error("none mode ran barrier checks")
	}
	if statStats.BarrierChecks == 0 {
		t.Error("static mode ran no barrier checks")
	}
	if dynStats.ContextChecks == 0 {
		t.Error("dynamic mode ran no context checks")
	}
	if dynStats.Instructions <= statStats.Instructions {
		t.Errorf("dynamic instructions %d <= static %d", dynStats.Instructions, statStats.Instructions)
	}
	if statStats.Instructions <= noneStats.Instructions {
		t.Errorf("static instructions %d <= none %d", statStats.Instructions, noneStats.Instructions)
	}
}

func TestOptimizationReducesBarriers(t *testing.T) {
	anyReduced := false
	for _, m := range Workloads {
		_, plain, err := Run(m, 20, jvm.CompileOptions{Mode: jvm.BarrierStatic})
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Run(m, 20, jvm.CompileOptions{Mode: jvm.BarrierStatic, Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		if opt.BarrierChecks < plain.BarrierChecks {
			anyReduced = true
		}
		if opt.BarrierChecks > plain.BarrierChecks {
			t.Errorf("%s: optimization increased checks %d -> %d", m.Name, plain.BarrierChecks, opt.BarrierChecks)
		}
	}
	if !anyReduced {
		t.Error("redundant-barrier elimination removed nothing across the suite")
	}
}
