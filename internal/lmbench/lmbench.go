// Package lmbench reimplements the lmbench microbenchmarks of Table 2
// against the simulated kernel: each benchmark times one syscall pattern
// with the Laminar security module installed and again on the bare kernel,
// reporting the per-operation latency and the module's relative overhead.
// Absolute times are properties of the simulation, but the *ratio* —
// which operations pay for hooks, and that a trivial syscall (null I/O)
// pays the most relatively — is the Table 2 result being reproduced.
package lmbench

import (
	"fmt"
	"time"

	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
)

// Benchmark is one lmbench microbenchmark.
type Benchmark struct {
	Name string
	// Setup prepares kernel state and returns the per-iteration body.
	Setup func(k *kernel.Kernel, t *kernel.Task) (func() error, error)
}

// Result is one row of Table 2.
type Result struct {
	Name         string
	BaseNanos    float64 // per-op, unmodified kernel
	LaminarNanos float64 // per-op, Laminar module installed
}

// OverheadPct returns the relative overhead in percent.
func (r Result) OverheadPct() float64 {
	if r.BaseNanos == 0 {
		return 0
	}
	return (r.LaminarNanos - r.BaseNanos) / r.BaseNanos * 100
}

// String formats the row like the paper's table (microseconds).
func (r Result) String() string {
	return fmt.Sprintf("%-16s %10.3f %10.3f %8.1f%%",
		r.Name, r.BaseNanos/1000, r.LaminarNanos/1000, r.OverheadPct())
}

// Suite returns the Table 2 benchmarks.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "stat", Setup: setupStat},
		{Name: "fork", Setup: setupFork},
		{Name: "exec", Setup: setupExec},
		{Name: "0k file create", Setup: setupCreate},
		{Name: "0k file delete", Setup: setupDelete},
		{Name: "mmap latency", Setup: setupMmap},
		{Name: "prot fault", Setup: setupProtFault},
		{Name: "null I/O", Setup: setupNullIO},
	}
}

func setupStat(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	fd, err := k.Open(t, "/tmp/statfile", kernel.OCreate|kernel.OWrite)
	if err != nil {
		return nil, err
	}
	k.Close(t, fd)
	return func() error {
		_, err := k.Stat(t, "/tmp/statfile")
		return err
	}, nil
}

func setupFork(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	return func() error {
		child, err := k.Fork(t, nil)
		if err != nil {
			return err
		}
		k.Exit(child)
		return nil
	}, nil
}

func setupExec(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	fd, err := k.Open(t, "/tmp/prog", kernel.OCreate|kernel.OWrite)
	if err != nil {
		return nil, err
	}
	if _, err := k.Write(t, fd, []byte("#!prog")); err != nil {
		return nil, err
	}
	k.Close(t, fd)
	return func() error {
		child, err := k.Fork(t, nil)
		if err != nil {
			return err
		}
		err = k.Exec(child, "/tmp/prog")
		k.Exit(child)
		return err
	}, nil
}

func setupCreate(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	// Pure create: zero-length files with unique names, as lat_fs does.
	n := 0
	return func() error {
		n++
		fd, err := k.Open(t, fmt.Sprintf("/tmp/c%d", n), kernel.OCreate|kernel.OWrite)
		if err != nil {
			return err
		}
		return k.Close(t, fd)
	}, nil
}

func setupDelete(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	// Create-then-unlink; the create cost is identical in both kernel
	// configurations' numerators, so the delta is dominated by unlink's
	// two extra permission hooks.
	n := 0
	return func() error {
		n++
		name := fmt.Sprintf("/tmp/d%d", n)
		fd, err := k.Open(t, name, kernel.OCreate|kernel.OWrite)
		if err != nil {
			return err
		}
		k.Close(t, fd)
		return k.Unlink(t, name)
	}, nil
}

func setupMmap(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	fd, err := k.Open(t, "/tmp/mapfile", kernel.OCreate|kernel.OWrite|kernel.ORead)
	if err != nil {
		return nil, err
	}
	if _, err := k.Write(t, fd, make([]byte, 16*kernel.PageSize)); err != nil {
		return nil, err
	}
	return func() error {
		addr, err := k.Mmap(t, 16*kernel.PageSize, kernel.ProtRead, fd)
		if err != nil {
			return err
		}
		return k.Munmap(t, addr)
	}, nil
}

func setupProtFault(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	fd, err := k.Open(t, "/tmp/pffile", kernel.OCreate|kernel.OWrite|kernel.ORead)
	if err != nil {
		return nil, err
	}
	if _, err := k.Write(t, fd, make([]byte, kernel.PageSize)); err != nil {
		return nil, err
	}
	addr, err := k.Mmap(t, kernel.PageSize, kernel.ProtRead|kernel.ProtWrite, fd)
	if err != nil {
		return nil, err
	}
	return func() error {
		if err := k.Mprotect(t, addr, kernel.ProtRead); err != nil {
			return err
		}
		if err := k.PageFault(t, addr, false); err != nil {
			return err
		}
		return k.Mprotect(t, addr, kernel.ProtRead|kernel.ProtWrite)
	}, nil
}

func setupNullIO(k *kernel.Kernel, t *kernel.Task) (func() error, error) {
	zfd, err := k.Open(t, "/dev/zero", kernel.ORead)
	if err != nil {
		return nil, err
	}
	nfd, err := k.Open(t, "/dev/null", kernel.OWrite)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 1)
	return func() error {
		if _, err := k.Read(t, zfd, buf); err != nil {
			return err
		}
		_, err := k.Write(t, nfd, buf)
		return err
	}, nil
}

// newKernel builds a kernel (with or without the Laminar module) and a
// task working in /tmp.
func newKernel(withLSM bool) (*kernel.Kernel, *kernel.Task, error) {
	var k *kernel.Kernel
	if withLSM {
		mod := lsm.New()
		k = kernel.New(kernel.WithSecurityModule(mod))
		mod.InstallSystemIntegrity(k)
	} else {
		k = kernel.New()
	}
	t, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		return nil, nil, err
	}
	if err := k.Chdir(t, "/tmp"); err != nil {
		return nil, nil, err
	}
	return k, t, nil
}

// measure times iters executions of one benchmark on a fresh kernel.
func measure(b Benchmark, withLSM bool, iters int) (float64, error) {
	k, t, err := newKernel(withLSM)
	if err != nil {
		return 0, err
	}
	body, err := b.Setup(k, t)
	if err != nil {
		return 0, err
	}
	// Warm up.
	for i := 0; i < 16; i++ {
		if err := body(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := body(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// Run executes the whole suite, returning one Result per benchmark. iters
// controls the per-benchmark iteration count; trials repeats each
// measurement and keeps the minimum (lmbench's own strategy against
// scheduling noise).
func Run(iters, trials int) ([]Result, error) {
	var out []Result
	for _, b := range Suite() {
		res := Result{Name: b.Name}
		for trial := 0; trial < trials; trial++ {
			base, err := measure(b, false, iters)
			if err != nil {
				return nil, fmt.Errorf("%s (base): %w", b.Name, err)
			}
			lam, err := measure(b, true, iters)
			if err != nil {
				return nil, fmt.Errorf("%s (laminar): %w", b.Name, err)
			}
			if trial == 0 || base < res.BaseNanos {
				res.BaseNanos = base
			}
			if trial == 0 || lam < res.LaminarNanos {
				res.LaminarNanos = lam
			}
		}
		out = append(out, res)
	}
	return out, nil
}
