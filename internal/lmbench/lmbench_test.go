package lmbench

import (
	"strings"
	"testing"
)

func TestSuiteRuns(t *testing.T) {
	results, err := Run(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d rows, want 8", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Name] = true
		if r.BaseNanos <= 0 || r.LaminarNanos <= 0 {
			t.Errorf("%s: non-positive latency %v/%v", r.Name, r.BaseNanos, r.LaminarNanos)
		}
		if !strings.Contains(r.String(), r.Name) {
			t.Errorf("row format: %q", r.String())
		}
	}
	for _, want := range []string{"stat", "fork", "exec", "0k file create", "0k file delete", "mmap latency", "prot fault", "null I/O"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
}

func TestLaminarAddsHookWork(t *testing.T) {
	// The LSM configuration must actually exercise hooks for every
	// benchmark in the suite (otherwise the Table 2 comparison is vacuous).
	for _, b := range Suite() {
		k, task, err := newKernel(true)
		if err != nil {
			t.Fatal(err)
		}
		body, err := b.Setup(k, task)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		before := k.HookCalls()
		for i := 0; i < 4; i++ {
			if err := body(); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
		}
		if k.HookCalls() == before {
			t.Errorf("%s: no security hooks fired", b.Name)
		}
	}
}

func TestOverheadPct(t *testing.T) {
	r := Result{Name: "x", BaseNanos: 100, LaminarNanos: 131}
	if got := r.OverheadPct(); got < 30.9 || got > 31.1 {
		t.Errorf("OverheadPct = %v", got)
	}
	if (Result{}).OverheadPct() != 0 {
		t.Error("zero base should report 0 overhead")
	}
}
