package rt

import (
	"errors"
	"strings"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
)

// newVM boots a kernel + module + VM with a main thread whose login shell
// starts in /tmp.
func newVM(t *testing.T) (*VM, *Thread) {
	t.Helper()
	mod := lsm.New()
	k := kernel.New(kernel.WithSecurityModule(mod))
	mod.InstallSystemIntegrity(k)
	shell, err := mod.Login(k, "user")
	if err != nil {
		t.Fatal(err)
	}
	vm, main, err := New(k, mod, shell)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(main.Task(), "/tmp"); err != nil {
		t.Fatal(err)
	}
	return vm, main
}

func TestThreadStartsUnlabeled(t *testing.T) {
	_, main := newVM(t)
	if !main.Labels().IsEmpty() {
		t.Errorf("fresh thread labels = %v", main.Labels())
	}
	if main.Region() != nil {
		t.Error("fresh thread in a region")
	}
}

func TestSecureEntryRules(t *testing.T) {
	_, main := newVM(t)
	a, err := main.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	// Entering with a held capability works.
	ran := false
	err = main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		ran = true
		if !r.SecrecyLabel().Equal(difc.NewLabel(a)) {
			t.Errorf("region secrecy = %v", r.SecrecyLabel())
		}
	}, nil)
	if err != nil || !ran {
		t.Fatalf("Secure = %v, ran = %v", err, ran)
	}
	// Labels restored after exit.
	if !main.Labels().IsEmpty() {
		t.Errorf("labels after region = %v", main.Labels())
	}
	// Entering with an unheld tag fails.
	err = main.Secure(difc.Labels{S: difc.NewLabel(difc.Tag(9999))}, difc.EmptyCapSet, func(r *Region) {
		t.Error("body ran despite entry failure")
	}, nil)
	if err == nil {
		t.Error("entry with unheld tag succeeded")
	}
	// Asking for a capability the thread lacks fails (rule 2).
	err = main.Secure(difc.Labels{}, difc.EmptyCapSet.Grant(difc.Tag(9999), difc.CapMinus), func(r *Region) {
		t.Error("body ran")
	}, nil)
	if err == nil {
		t.Error("entry with unheld capability succeeded")
	}
}

func TestNestedRegions(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()
	outer := difc.Labels{S: difc.NewLabel(a, b)}
	inner := difc.Labels{S: difc.NewLabel(b)}
	caps := difc.EmptyCapSet.Grant(a, difc.CapMinus)
	err := main.Secure(outer, caps, func(r *Region) {
		if !main.Labels().Equal(outer) {
			t.Errorf("outer labels = %v", main.Labels())
		}
		// Nested region drops tag a using the region's a- capability.
		err := main.Secure(inner, caps, func(r2 *Region) {
			if !main.Labels().Equal(inner) {
				t.Errorf("inner labels = %v", main.Labels())
			}
		}, nil)
		if err != nil {
			t.Errorf("nested entry = %v", err)
		}
		if !main.Labels().Equal(outer) {
			t.Errorf("labels after nested exit = %v", main.Labels())
		}
		// A nested region cannot ADD a label the thread cannot reach:
		// inner region with an unknown tag.
		err = main.Secure(difc.Labels{S: difc.NewLabel(difc.Tag(4242))}, difc.EmptyCapSet, func(*Region) {}, nil)
		if err == nil {
			t.Error("nested entry with unreachable label succeeded")
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedRegionCannotDropWithoutCapability(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	// Permanently discard a-.
	if err := main.DropCapability(a, difc.CapMinus); err != nil {
		t.Fatal(err)
	}
	outer := difc.Labels{S: difc.NewLabel(a)}
	err := main.Secure(outer, difc.EmptyCapSet, func(r *Region) {
		// Thread is tainted with a and holds no a-: entering an inner
		// region without a must fail (it would declassify).
		err := main.Secure(difc.Labels{}, difc.EmptyCapSet, func(*Region) {
			t.Error("declassifying nested entry ran")
		}, nil)
		if err == nil {
			t.Error("nested region dropped label without capability")
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// But region exit still restores the (empty) thread labels, via tcb.
	if !main.Labels().IsEmpty() {
		t.Errorf("labels after exit = %v", main.Labels())
	}
}

func TestLabeledObjectAccess(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	secret := difc.Labels{S: difc.NewLabel(a)}
	var obj *Object
	err := main.Secure(secret, difc.EmptyCapSet, func(r *Region) {
		obj = r.Alloc(nil) // takes region labels
		r.Set(obj, "marks", 42)
		if got := r.Get(obj, "marks"); got != 42 {
			t.Errorf("Get = %v", got)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.IsLabeled() || !obj.Labels().Equal(secret) {
		t.Errorf("obj labels = %v", obj.Labels())
	}
	// Outside any region, the dynamic barrier rejects the labeled object.
	func() {
		defer func() {
			v, ok := recover().(*Violation)
			if !ok {
				t.Error("no violation for outside-region access")
			} else if v.Op != "read" {
				t.Errorf("violation op = %s", v.Op)
			}
		}()
		main.Get(obj, "marks")
	}()
}

func TestReadBarrierRejectsHigherSecrecy(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()
	var high *Object
	main.Secure(difc.Labels{S: difc.NewLabel(a, b)}, difc.EmptyCapSet, func(r *Region) {
		high = r.Alloc(nil)
		r.Set(high, "x", 1)
	}, nil)
	// A region with only {a} must not read an {a,b} object.
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.Get(high, "x")
		t.Error("read of higher-secrecy object succeeded")
	}, func(r *Region, e any) {
		if v, ok := e.(*Violation); ok && strings.Contains(v.Error(), "secrecy") {
			caught = true
		}
	})
	if !caught {
		t.Error("violation not delivered to catch block")
	}
}

func TestWriteBarrierRejectsDowngrade(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	low := NewObject() // unlabeled
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.Set(low, "leak", "secret")
		t.Error("write to unlabeled object succeeded in tainted region")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("no violation for write down")
	}
	if low.RawGet("leak") != nil {
		t.Error("leak value was written")
	}
}

func TestIntegrityBarriers(t *testing.T) {
	_, main := newVM(t)
	i, _ := main.CreateTag()
	high := difc.Labels{I: difc.NewLabel(i)}
	var endorsed *Object
	main.Secure(high, difc.EmptyCapSet, func(r *Region) {
		endorsed = r.Alloc(nil)
		r.Set(endorsed, "config", "trusted")
	}, nil)

	// A no-integrity region may read the endorsed object but not write it.
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		if got := r.Get(endorsed, "config"); got != "trusted" {
			t.Errorf("read endorsed = %v", got)
		}
	}, nil)
	caught := false
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		r.Set(endorsed, "config", "tampered")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("low-integrity write to endorsed object succeeded")
	}

	// A high-integrity region may not read unlabeled objects.
	low := NewObject()
	low.RawSet("x", 1)
	caught = false
	main.Secure(high, difc.EmptyCapSet, func(r *Region) {
		r.Get(low, "x")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("high-integrity read of low object succeeded (no read down violated)")
	}
}

func TestAllocWithExplicitLabels(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet.Grant(b, difc.CapPlus), func(r *Region) {
		// More secret than the region: fine with b+ capability.
		obj := r.Alloc(&difc.Labels{S: difc.NewLabel(a, b)})
		if !obj.Labels().S.Equal(difc.NewLabel(a, b)) {
			t.Errorf("labels = %v", obj.Labels())
		}
	}, func(r *Region, e any) {
		t.Errorf("unexpected violation: %v", e)
	})
	// Less secret than the region: rejected (would launder the taint).
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.Alloc(&difc.Labels{})
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("alloc below region secrecy succeeded")
	}
}

// TestFigure7 encodes the Figure 7 example: sum the marks of two students
// with different secrecy tags, then declassify the sum in a nested region.
func TestFigure7(t *testing.T) {
	_, main := newVM(t)
	s1, _ := main.CreateTag()
	s2, _ := main.CreateTag()

	var student1, student2 *Object
	main.Secure(difc.Labels{S: difc.NewLabel(s1)}, difc.EmptyCapSet, func(r *Region) {
		student1 = r.Alloc(nil)
		r.Set(student1, "marks", 40)
	}, nil)
	main.Secure(difc.Labels{S: difc.NewLabel(s2)}, difc.EmptyCapSet, func(r *Region) {
		student2 = r.Alloc(nil)
		r.Set(student2, "marks", 35)
	}, nil)

	// credentials = {S(s1,s2), I(), C(s1-, s2-)}
	credsLabels := difc.Labels{S: difc.NewLabel(s1, s2)}
	credsCaps := difc.EmptyCapSet.Grant(s1, difc.CapMinus).Grant(s2, difc.CapMinus)
	ret := NewObject()
	err := main.Secure(credsLabels, credsCaps, func(r *Region) {
		m1 := r.Get(student1, "marks").(int)
		m2 := r.Get(student2, "marks").(int)
		obj := r.Alloc(nil)
		r.Set(obj, "sum", m1+m2)
		// credentialsNew = {S(), I(), C(s1-, s2-)}
		err := main.Secure(difc.Labels{}, credsCaps, func(r2 *Region) {
			pub := r2.CopyAndLabel(obj, difc.Labels{})
			ret.RawSet("val", pub.rawGet("sum"))
		}, nil)
		if err != nil {
			t.Errorf("nested declassification region: %v", err)
		}
	}, func(r *Region, e any) {
		t.Errorf("unexpected violation: %v", e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ret.RawGet("val"); got != 75 {
		t.Errorf("declassified sum = %v, want 75", got)
	}
}

func TestCopyAndLabelRequiresCapability(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()
	var obj *Object
	ab := difc.Labels{S: difc.NewLabel(a, b)}
	main.Secure(ab, difc.EmptyCapSet, func(r *Region) {
		obj = r.Alloc(nil)
		r.Set(obj, "v", "x")
	}, nil)
	// Figure 4's L5 counterexample: dropping both a and b with only a-.
	caught := false
	main.Secure(ab, difc.EmptyCapSet.Grant(a, difc.CapMinus), func(r *Region) {
		r.CopyAndLabel(obj, difc.Labels{})
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("copyAndLabel dropped b without b-")
	}
	// Dropping only a works.
	main.Secure(ab, difc.EmptyCapSet.Grant(a, difc.CapMinus), func(r *Region) {
		cp := r.CopyAndLabel(obj, difc.Labels{S: difc.NewLabel(b)})
		if !cp.Labels().S.Equal(difc.NewLabel(b)) {
			t.Errorf("copy labels = %v", cp.Labels())
		}
		if cp.rawGet("v") != "x" {
			t.Error("copy lost field value")
		}
	}, func(r *Region, e any) {
		t.Errorf("unexpected violation: %v", e)
	})
}

// TestImplicitFlowFigure5 encodes Figure 5: the attempted assignment to
// low-secrecy L inside a high-secrecy region raises a violation, the catch
// block restores the invariant, and no information about H escapes.
func TestImplicitFlowFigure5(t *testing.T) {
	_, main := newVM(t)
	h, _ := main.CreateTag()
	hLabels := difc.Labels{S: difc.NewLabel(h)}

	run := func(hValue bool) bool {
		// H is a labeled object; L is unlabeled.
		var H *Object
		main.Secure(hLabels, difc.EmptyCapSet, func(r *Region) {
			H = r.Alloc(nil)
			r.Set(H, "v", hValue)
		}, nil)
		L := NewObject()
		L.RawSet("v", false)
		x, y := 0, 0
		main.Secure(hLabels, difc.EmptyCapSet, func(r *Region) {
			x++
			if r.Get(H, "v").(bool) {
				r.Set(L, "v", true) // violation: write down
			}
			y = 2 * x
		}, func(r *Region, e any) {
			y = 2 * x // restore invariant
		})
		if y != 2*x {
			t.Errorf("invariant broken: y=%d x=%d", y, x)
		}
		return L.RawGet("v").(bool)
	}

	// Whether H is true or false, L stays false: no implicit flow.
	if run(true) != run(false) {
		t.Error("L differs between H=true and H=false: implicit flow leaked")
	}
	if run(true) != false {
		t.Error("L was assigned")
	}
}

// TestCatchRunsWithRegionLabels verifies the catch block executes with the
// region's labels and the capability set at exception time.
func TestCatchRunsWithRegionLabels(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	l := difc.Labels{S: difc.NewLabel(a)}
	var inCatch difc.Labels
	main.Secure(l, difc.EmptyCapSet, func(r *Region) {
		panic("boom")
	}, func(r *Region, e any) {
		inCatch = main.Labels()
		if e != "boom" {
			t.Errorf("catch payload = %v", e)
		}
	})
	if !inCatch.Equal(l) {
		t.Errorf("catch labels = %v, want %v", inCatch, l)
	}
	if !main.Labels().IsEmpty() {
		t.Errorf("labels after catch = %v", main.Labels())
	}
}

func TestCatchPanicsAreSuppressed(t *testing.T) {
	_, main := newVM(t)
	err := main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		panic("first")
	}, func(r *Region, e any) {
		panic("second")
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reaching here is the test: both panics suppressed, fall-through.
}

func TestPanicWithoutCatchSuppressed(t *testing.T) {
	_, main := newVM(t)
	err := main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		panic("unhandled")
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStaticsRestrictions(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	main.SetStatic("g", 7)
	if got := main.GetStatic("g"); got != 7 {
		t.Errorf("GetStatic = %v", got)
	}
	// Secrecy region cannot write statics.
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.SetStatic("g", 8)
	}, func(r *Region, e any) { caught = true })
	if !caught || main.GetStatic("g") != 7 {
		t.Error("secrecy region wrote a static")
	}
	// Secrecy region may read statics.
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		if got := r.GetStatic("g"); got != 7 {
			t.Errorf("static read in region = %v", got)
		}
	}, nil)
	// Integrity region cannot read statics but may write them.
	caught = false
	main.Secure(difc.Labels{I: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.GetStatic("g")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("integrity region read a static")
	}
	main.Secure(difc.Labels{I: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.SetStatic("g", 9)
	}, func(r *Region, e any) {
		t.Errorf("integrity region static write: %v", e)
	})
	if main.GetStatic("g") != 9 {
		t.Error("integrity region static write lost")
	}
}

func TestRegionCapabilityManagement(t *testing.T) {
	_, main := newVM(t)
	var gained difc.Tag
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		tag, err := r.CreateAndAddCapability()
		if err != nil {
			t.Fatal(err)
		}
		gained = tag
		if !r.Caps().Has(tag, difc.CapBoth) {
			t.Error("region missing fresh capability")
		}
	}, nil)
	// Retained after exit (§4.4 default).
	if !main.Caps().Has(gained, difc.CapBoth) {
		t.Error("capability not retained after region exit")
	}

	// Scoped drop: gone inside, back outside.
	main.Secure(difc.Labels{}, main.Caps(), func(r *Region) {
		if err := r.RemoveCapability(gained, difc.CapMinus, false); err != nil {
			t.Fatal(err)
		}
		if r.Caps().CanDrop(gained) {
			t.Error("capability still present after scoped drop")
		}
	}, nil)
	if !main.Caps().CanDrop(gained) {
		t.Error("scoped drop leaked out of the region")
	}

	// Global drop: gone everywhere.
	main.Secure(difc.Labels{}, main.Caps(), func(r *Region) {
		if err := r.RemoveCapability(gained, difc.CapMinus, true); err != nil {
			t.Fatal(err)
		}
	}, nil)
	if main.Caps().CanDrop(gained) {
		t.Error("global drop did not persist")
	}
}

func TestThreadForkCapabilitySubset(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	child, err := main.Fork([]kernel.Capability{{Tag: a, Kind: difc.CapPlus}})
	if err != nil {
		t.Fatal(err)
	}
	if !child.Caps().CanAdd(a) || child.Caps().CanDrop(a) {
		t.Errorf("child caps = %v", child.Caps())
	}
	// Fork inside a region is rejected.
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		if _, err := main.Fork(nil); err == nil {
			t.Error("fork inside region succeeded")
		}
	}, nil)
}

func TestLabeledFileFromRegion(t *testing.T) {
	vm, main := newVM(t)
	a, _ := main.CreateTag()
	secret := difc.Labels{S: difc.NewLabel(a)}

	// Pre-create the labeled file while unlabeled, then write it from a
	// tainted region and read it back.
	fd, err := vm.Kernel().CreateFileLabeled(main.Task(), "cal", 0o600, secret)
	if err != nil {
		t.Fatal(err)
	}
	vm.Kernel().Close(main.Task(), fd)

	err = main.Secure(secret, difc.EmptyCapSet, func(r *Region) {
		wfd, err := r.OpenFile("cal", kernel.OWrite)
		if err != nil {
			t.Fatalf("open for write in region: %v", err)
		}
		if _, err := r.WriteFile(wfd, []byte("meeting 10am")); err != nil {
			t.Fatalf("write: %v", err)
		}
		r.CloseFile(wfd)
		rfd, err := r.OpenFile("cal", kernel.ORead)
		if err != nil {
			t.Fatalf("open for read: %v", err)
		}
		buf := make([]byte, 32)
		n, err := r.ReadFile(rfd, buf)
		if err != nil || string(buf[:n]) != "meeting 10am" {
			t.Errorf("read = %q, %v", buf[:n], err)
		}
		r.CloseFile(rfd)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Outside the region (unlabeled), the file is unreadable.
	if _, err := vm.Kernel().Open(main.Task(), "cal", kernel.ORead); !errors.Is(err, kernel.ErrNoEnt) {
		t.Errorf("unlabeled open = %v, want ENOENT", err)
	}
}

func TestLazyKernelSync(t *testing.T) {
	vm, main := newVM(t)
	a, _ := main.CreateTag()
	vm.Stats().Reset()
	// A region with no syscalls never pushes labels to the kernel.
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
	}, nil)
	if got := vm.Stats().LabelSyncs.Load(); got != 0 {
		t.Errorf("label syncs without syscall = %d, want 0", got)
	}
	// A region that opens a file pushes labels (entry) and restores (exit).
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.OpenFile("nonexistent", kernel.ORead)
	}, nil)
	if got := vm.Stats().LabelSyncs.Load(); got != 2 {
		t.Errorf("label syncs with syscall = %d, want 2 (set + restore)", got)
	}
	// Eager mode always syncs.
	vm.Stats().Reset()
	vm.EagerSync = true
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {}, nil)
	if got := vm.Stats().LabelSyncs.Load(); got != 2 {
		t.Errorf("eager label syncs = %d, want 2", got)
	}
}

func TestKernelSeesRegionLabels(t *testing.T) {
	vm, main := newVM(t)
	a, _ := main.CreateTag()
	l := difc.Labels{S: difc.NewLabel(a)}
	main.Secure(l, difc.EmptyCapSet, func(r *Region) {
		r.OpenFile("x", kernel.ORead) // forces sync
		if got := vm.Module().TaskLabels(main.Task()); !got.Equal(l) {
			t.Errorf("kernel labels in region = %v, want %v", got, l)
		}
	}, nil)
	if got := vm.Module().TaskLabels(main.Task()); !got.IsEmpty() {
		t.Errorf("kernel labels after region = %v", got)
	}
}

func TestStatsCounting(t *testing.T) {
	vm, main := newVM(t)
	vm.Stats().Reset()
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		o := r.Alloc(nil)
		r.Set(o, "a", 1)
		r.Get(o, "a")
		r.Get(o, "a")
	}, nil)
	s := vm.Stats()
	if s.RegionsEntered.Load() != 1 {
		t.Errorf("regions = %d", s.RegionsEntered.Load())
	}
	if s.AllocBarriers.Load() != 1 {
		t.Errorf("allocs = %d", s.AllocBarriers.Load())
	}
	if s.ReadBarriers.Load() != 2 || s.WriteBarriers.Load() != 1 {
		t.Errorf("read/write = %d/%d", s.ReadBarriers.Load(), s.WriteBarriers.Load())
	}
	if s.RegionNanos.Load() <= 0 {
		t.Error("region time not recorded")
	}
}

func TestArrayBarriers(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	var arr *Object
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		arr = r.AllocArray(3, nil)
		for i := 0; i < 3; i++ {
			r.SetIndex(arr, i, i*i)
		}
		if r.Index(arr, 2) != 4 {
			t.Errorf("arr[2] = %v", r.Index(arr, 2))
		}
		if arr.Len() != 3 {
			t.Errorf("len = %d", arr.Len())
		}
	}, nil)
	// Unlabeled region cannot read the labeled array.
	caught := false
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		r.Index(arr, 0)
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("unlabeled region read labeled array")
	}
}

func TestUnlabeledObjectsFreeOutsideRegions(t *testing.T) {
	_, main := newVM(t)
	o := NewObject()
	main.Set(o, "k", "v")
	if main.Get(o, "k") != "v" {
		t.Error("dynamic barrier broke unlabeled access")
	}
	arr := NewArray(2)
	main.SetIndex(arr, 0, 10)
	if main.Index(arr, 0) != 10 {
		t.Error("dynamic array barrier broke unlabeled access")
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Op: "read", Err: errors.New("x")}
	if !strings.Contains(v.Error(), "read") || v.Unwrap() == nil {
		t.Errorf("Violation = %q", v.Error())
	}
}
