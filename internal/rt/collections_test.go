package rt

import (
	"fmt"
	"math/rand"
	"testing"

	"laminar/internal/difc"
)

func TestListBasics(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	labels := difc.Labels{S: difc.NewLabel(a)}
	err := main.Secure(labels, difc.EmptyCapSet, func(r *Region) {
		l := r.NewList()
		if r.ListLen(l) != 0 {
			t.Errorf("fresh list len = %d", r.ListLen(l))
		}
		for i := 0; i < 10; i++ {
			r.ListAppend(l, i*i)
		}
		if r.ListLen(l) != 10 {
			t.Errorf("len = %d", r.ListLen(l))
		}
		if r.ListGet(l, 0) != 0 || r.ListGet(l, 9) != 81 {
			t.Errorf("get = %v, %v", r.ListGet(l, 0), r.ListGet(l, 9))
		}
		sum := 0
		r.ListIterate(l, func(v any) bool {
			sum += v.(int)
			return true
		})
		if sum != 285 {
			t.Errorf("sum = %d", sum)
		}
		// Early termination.
		count := 0
		r.ListIterate(l, func(v any) bool {
			count++
			return count < 3
		})
		if count != 3 {
			t.Errorf("early-stop count = %d", count)
		}
	}, func(r *Region, e any) {
		t.Errorf("unexpected violation: %v", e)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestListOutOfRange(t *testing.T) {
	_, main := newVM(t)
	caught := false
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		l := r.NewList()
		r.ListAppend(l, 1)
		r.ListGet(l, 5)
		t.Error("out-of-range get returned")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("no violation for out-of-range index")
	}
}

func TestListNodesAreLabelProtected(t *testing.T) {
	// A list built in one region cannot be traversed by a region with
	// different labels: the head access trips the barrier.
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()
	var l *Object
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		l = r.NewList()
		r.ListAppend(l, "secret")
	}, nil)
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(b)}, difc.EmptyCapSet, func(r *Region) {
		r.ListLen(l)
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("cross-label list traversal succeeded")
	}
}

func TestHashMapBasics(t *testing.T) {
	_, main := newVM(t)
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		m := r.NewHashMap(4)
		if r.MapLen(m) != 0 {
			t.Errorf("fresh map len = %d", r.MapLen(m))
		}
		for i := 0; i < 50; i++ {
			r.MapPut(m, fmt.Sprintf("k%d", i), i)
		}
		if r.MapLen(m) != 50 {
			t.Errorf("len = %d", r.MapLen(m))
		}
		for i := 0; i < 50; i++ {
			v, ok := r.MapGet(m, fmt.Sprintf("k%d", i))
			if !ok || v != i {
				t.Errorf("get k%d = %v, %v", i, v, ok)
			}
		}
		if _, ok := r.MapGet(m, "missing"); ok {
			t.Error("missing key found")
		}
		// Replace.
		r.MapPut(m, "k7", 700)
		if v, _ := r.MapGet(m, "k7"); v != 700 {
			t.Errorf("replaced = %v", v)
		}
		if r.MapLen(m) != 50 {
			t.Errorf("len after replace = %d", r.MapLen(m))
		}
		// Delete.
		if !r.MapDelete(m, "k7") {
			t.Error("delete existing failed")
		}
		if r.MapDelete(m, "k7") {
			t.Error("double delete succeeded")
		}
		if _, ok := r.MapGet(m, "k7"); ok {
			t.Error("deleted key found")
		}
		if r.MapLen(m) != 49 {
			t.Errorf("len after delete = %d", r.MapLen(m))
		}
	}, func(r *Region, e any) {
		t.Errorf("unexpected violation: %v", e)
	})
}

func TestHashMapModelCheck(t *testing.T) {
	// Random op sequence against a plain Go map as reference.
	_, main := newVM(t)
	rng := rand.New(rand.NewSource(11))
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		m := r.NewHashMap(8)
		ref := map[string]int{}
		keys := make([]string, 20)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", i)
		}
		for op := 0; op < 2000; op++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0:
				v := rng.Intn(1000)
				r.MapPut(m, k, v)
				ref[k] = v
			case 1:
				got, ok := r.MapGet(m, k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("op %d: get %q = %v,%v want %v,%v", op, k, got, ok, want, wok)
				}
			case 2:
				got := r.MapDelete(m, k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("op %d: delete %q = %v want %v", op, k, got, want)
				}
				delete(ref, k)
			}
			if r.MapLen(m) != len(ref) {
				t.Fatalf("op %d: len %d want %d", op, r.MapLen(m), len(ref))
			}
		}
	}, func(r *Region, e any) {
		t.Errorf("unexpected violation: %v", e)
	})
}

func TestHashMapLabelProtected(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	var m *Object
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		m = r.NewHashMap(4)
		r.MapPut(m, "pin", 1234)
	}, nil)
	caught := false
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		r.MapGet(m, "pin")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("unlabeled region read a labeled map")
	}
}
