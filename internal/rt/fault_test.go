package rt

import (
	"strings"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
)

// newFaultVM boots a VM whose kernel carries a fault injector; rates start
// at zero so tests flip individual sites on at the precise moment.
func newFaultVM(t *testing.T) (*VM, *Thread, *faultinject.Plan, *lsm.Module) {
	t.Helper()
	mod := lsm.New()
	plan := faultinject.NewPlan(1)
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithFaultInjector(plan))
	mod.InstallSystemIntegrity(k)
	shell, err := mod.Login(k, "user")
	if err != nil {
		t.Fatal(err)
	}
	vm, main, err := New(k, mod, shell)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(main.Task(), "/tmp"); err != nil {
		t.Fatal(err)
	}
	return vm, main, plan, mod
}

// TestNestedRegionInnerPanicNonViolation: the inner body of a nested
// region pair panics with an arbitrary (non-*Violation) value after
// having synced its labels to the kernel via a syscall. Both regions must
// unwind cleanly: the inner catch sees the value, the outer body continues,
// and after the outer exit the thread holds no labels at either the VM or
// the kernel layer.
func TestNestedRegionInnerPanicNonViolation(t *testing.T) {
	_, th, _, mod := newFaultVM(t)
	tagA, err := th.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	tagB, err := th.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	outer := difc.Labels{S: difc.NewLabel(tagA)}
	inner := difc.Labels{S: difc.NewLabel(tagA, tagB)}

	var caught any
	var outerResumed bool
	// The outer region carries tagB's capabilities so the nested entry can
	// raise to the inner label.
	outerCaps := difc.EmptyCapSet.Grant(tagB, difc.CapBoth)
	err = th.Secure(outer, outerCaps, func(r *Region) {
		ierr := th.Secure(inner, difc.EmptyCapSet, func(r2 *Region) {
			// Force a kernel label sync inside the inner region, so exit
			// genuinely has kernel state to restore.
			th.ensureSynced()
			panic("boom: not a violation")
		}, func(r2 *Region, e any) {
			caught = e
		})
		if ierr != nil {
			t.Errorf("inner Secure returned %v", ierr)
		}
		// Control must fall through to here with the outer labels intact.
		outerResumed = true
		if got := th.Labels(); !got.S.Equal(outer.S) {
			t.Errorf("outer labels after inner panic = %v, want %v", got, outer)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if caught != "boom: not a violation" {
		t.Errorf("inner catch saw %v", caught)
	}
	if !outerResumed {
		t.Error("outer body did not resume after inner region")
	}
	if th.Task().Exited() {
		t.Fatal("thread died on a clean nested unwind")
	}
	if got := th.Labels(); !got.IsEmpty() {
		t.Errorf("thread VM labels after exit = %v, want empty", got)
	}
	if got := mod.TaskLabels(th.Task()); !got.IsEmpty() {
		t.Errorf("kernel task labels after exit = %v, want empty", got)
	}
}

// TestEagerSyncEntryFault: with EagerSync on, an injected fault on the
// entry label sync must fail the Secure call before body runs, and leave
// the thread with its previous labels everywhere.
func TestEagerSyncEntryFault(t *testing.T) {
	vm, th, plan, mod := newFaultVM(t)
	vm.EagerSync = true
	tag, err := th.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	plan.SetRates("rt.sync", faultinject.Rates{Error: 1})
	ran := false
	err = th.Secure(difc.Labels{S: difc.NewLabel(tag)}, difc.EmptyCapSet,
		func(r *Region) { ran = true }, nil)
	plan.SetRates("rt.sync", faultinject.Rates{})
	if err == nil || !strings.Contains(err.Error(), "entry label sync") {
		t.Fatalf("Secure under entry sync fault = %v, want entry sync error", err)
	}
	if ran {
		t.Fatal("body ran despite failed entry sync")
	}
	if got := th.Labels(); !got.IsEmpty() {
		t.Errorf("thread labels after failed entry = %v, want empty", got)
	}
	if got := mod.TaskLabels(th.Task()); !got.IsEmpty() {
		t.Errorf("kernel labels after failed entry = %v, want empty", got)
	}
}

// TestExitSyncFaultFailsClosed: the region body syncs secret labels into
// the kernel; then every restore attempt faults. The runtime must not let
// the thread continue holding labels it cannot shed — it kills the kernel
// task (fail closed) and emits a violation event.
func TestExitSyncFaultFailsClosed(t *testing.T) {
	vm, th, plan, _ := newFaultVM(t)
	var sawViolation bool
	vm.SetAudit(func(ev Event) {
		if ev.Kind == EvViolation {
			sawViolation = true
		}
	})
	tag, err := th.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	err = th.Secure(difc.Labels{S: difc.NewLabel(tag)}, difc.EmptyCapSet, func(r *Region) {
		// A syscall-path sync gives the kernel task the region's labels,
		// so exit genuinely has state to restore.
		th.ensureSynced()
		// From here on, every label sync fails — including the exit
		// restore about to run.
		plan.SetRates("rt.sync", faultinject.Rates{Error: 1})
	}, nil)
	plan.SetRates("rt.sync", faultinject.Rates{})
	if err != nil {
		t.Fatalf("Secure returned %v", err)
	}
	if !th.Task().Exited() {
		t.Fatal("thread survived an unrestorable exit: holds region labels outside the region")
	}
	if !sawViolation {
		t.Error("no violation event emitted for the fail-closed kill")
	}
}
