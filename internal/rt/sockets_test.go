package rt

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

func TestRegionSockets(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	labels := difc.Labels{S: difc.NewLabel(a)}

	var sa, sb kernel.FD
	err := main.Secure(labels, difc.EmptyCapSet, func(r *Region) {
		var err error
		sa, sb, err = r.Socketpair()
		if err != nil {
			t.Errorf("Socketpair: %v", err)
			return
		}
		if _, err := r.Send(sa, []byte("in-label")); err != nil {
			t.Errorf("Send: %v", err)
		}
		buf := make([]byte, 16)
		n, err := r.Recv(sb, buf)
		if err != nil || string(buf[:n]) != "in-label" {
			t.Errorf("Recv = %q, %v", buf[:n], err)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Outside the region (untainted), the labeled socket is unreadable.
	if _, err := main.vm.k.Recv(main.Task(), sb, make([]byte, 4)); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("untainted recv on labeled socket = %v, want EACCES", err)
	}

	// A tainted region's send on an UNLABELED socket drops silently: the
	// socket was made outside any region this time.
	var ua, ub kernel.FD
	ua, ub, err = main.vm.k.Socketpair(main.Task())
	if err != nil {
		t.Fatal(err)
	}
	main.Secure(labels, difc.EmptyCapSet, func(r *Region) {
		if n, err := r.Send(ua, []byte("leak")); err != nil || n != 4 {
			t.Errorf("tainted send = %d, %v (must appear to succeed)", n, err)
		}
	}, nil)
	if _, err := main.vm.k.Recv(main.Task(), ub, make([]byte, 8)); !errors.Is(err, kernel.ErrAgain) {
		t.Errorf("recv after silently dropped send = %v, want EAGAIN", err)
	}
}
