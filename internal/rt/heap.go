package rt

import (
	"fmt"
	"sync"

	"laminar/internal/difc"
)

// Object is a heap value in the VM's object space. Labeled objects live
// logically in the labeled object space (§5.1: a separate space lets the
// JIT's barrier test "is this object labeled?" be a fast range check; here
// the labeled flag plays that role). Labels are immutable after
// allocation — relabeling means CopyAndLabel (§4.5) — so barriers can read
// them without synchronization.
//
// An Object has named fields and an optional array part, enough to model
// the Java objects and arrays the paper instruments.
type Object struct {
	labels  difc.Labels
	labeled bool

	mu     sync.Mutex
	fields map[string]any
	elems  []any
}

// Violation is the panic payload for a DIFC check failure inside a
// security region — the VM-raised exception of §4.3.3 that the region's
// catch block receives.
type Violation struct {
	Op  string
	Err error
}

// Error renders the violation.
func (v *Violation) Error() string { return fmt.Sprintf("rt: %s: %v", v.Op, v.Err) }

// Unwrap exposes the underlying flow error.
func (v *Violation) Unwrap() error { return v.Err }

// Labels returns the object's immutable label pair. Labels objects are
// opaque in the paper's API — applications may compare and combine them
// but never observe raw tag values through the object; difc.Label enforces
// that by never exposing tag internals except to trusted code.
func (o *Object) Labels() difc.Labels { return o.labels }

// IsLabeled reports whether the object lives in the labeled object space.
func (o *Object) IsLabeled() bool { return o.labeled }

// Len returns the length of the object's array part.
func (o *Object) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.elems)
}

// rawGet reads a field without barriers (unsecured baseline and trusted
// declassifier internals).
func (o *Object) rawGet(field string) any {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fields[field]
}

func (o *Object) rawSet(field string, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.fields == nil {
		o.fields = make(map[string]any)
	}
	o.fields[field] = v
}

func (o *Object) rawIndex(i int) any {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.elems[i]
}

func (o *Object) rawSetIndex(i int, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.elems[i] = v
}

// RawGet is the barrier-free field read used by unsecured application
// variants (the Figure 9 baselines). It performs the same locking as the
// checked path so overhead comparisons isolate the security checks.
func (o *Object) RawGet(field string) any { return o.rawGet(field) }

// RawSet is the barrier-free field write (unsecured baselines).
func (o *Object) RawSet(field string, v any) { o.rawSet(field, v) }

// RawIndex is the barrier-free element read (unsecured baselines).
func (o *Object) RawIndex(i int) any { return o.rawIndex(i) }

// RawSetIndex is the barrier-free element write (unsecured baselines).
func (o *Object) RawSetIndex(i int, v any) { o.rawSetIndex(i, v) }

// --- allocation ---

// NewObject allocates an unlabeled object outside any region (ordinary
// allocation in unmodified code paths).
func NewObject() *Object { return &Object{} }

// NewArray allocates an unlabeled array object of n elements.
func NewArray(n int) *Object { return &Object{elems: make([]any, n)} }

// Alloc allocates an object inside the region. With labels == nil the
// object takes the region's labels at the allocation point (§5.1); an
// explicit label pair must conform to the DIFC rules: the region's secrecy
// flows into the object, and any additional tags require the plus
// capability — the same conditions as labeled file creation.
func (r *Region) Alloc(labels *difc.Labels) *Object {
	r.thread.vm.stats.AllocBarriers.Add(1)
	l := r.labels
	if labels != nil {
		l = difc.InternLabels(*labels) // object labels feed every barrier check
		r.check("alloc", r.allocConforms(l))
	}
	return &Object{labels: l, labeled: !l.IsEmpty(), fields: make(map[string]any)}
}

// AllocArray allocates an n-element array with the same labeling rules as
// Alloc.
func (r *Region) AllocArray(n int, labels *difc.Labels) *Object {
	r.thread.vm.stats.AllocBarriers.Add(1)
	l := r.labels
	if labels != nil {
		l = difc.InternLabels(*labels)
		r.check("alloc", r.allocConforms(l))
	}
	return &Object{labels: l, labeled: !l.IsEmpty(), elems: make([]any, n)}
}

func (r *Region) allocConforms(l difc.Labels) error {
	// Region secrecy must flow into the object (an S-only flow check: the
	// allocating context writes the initial state), and any tags beyond the
	// region's need the plus capability — the acquisition half of the
	// label-change rule, same as labeled file creation. Structured errors
	// give the telemetry layer rule provenance and the offending tag delta.
	if err := difc.CheckFlow("alloc", difc.Labels{S: r.labels.S}, difc.Labels{S: l.S}); err != nil {
		return err
	}
	if err := difc.CheckAcquire("alloc", r.labels.S, l.S, r.caps); err != nil {
		return err
	}
	return difc.CheckAcquire("alloc", r.labels.I, l.I, r.caps)
}

// CopyAndLabel clones o with new labels (Figure 2). The label change must
// satisfy the label-change rule against the region's capabilities:
// (L2−L1) ⊆ C+ and (L1−L2) ⊆ C− for both components. Deep enough for the
// paper's use: fields and elements are copied shallowly (they are values
// or references whose own labels still protect them).
func (r *Region) CopyAndLabel(o *Object, labels difc.Labels) *Object {
	r.check("copyAndLabel", difc.CheckChangeLabels("copyAndLabel", o.labels, labels, r.caps))
	r.thread.vm.emit(Event{Kind: EvCopyAndLabel, Thread: uint64(r.thread.task.TID), Labels: r.labels, From: o.labels, To: labels})
	o.mu.Lock()
	defer o.mu.Unlock()
	cp := &Object{labels: difc.InternLabels(labels), labeled: !labels.IsEmpty()}
	if o.fields != nil {
		cp.fields = make(map[string]any, len(o.fields))
		for k, v := range o.fields {
			cp.fields[k] = v
		}
	}
	if o.elems != nil {
		cp.elems = make([]any, len(o.elems))
		copy(cp.elems, o.elems)
	}
	return cp
}

// --- static barriers: the region is statically known ---
// These are the checks the compiler emits when it knows at JIT time that
// the access site is inside a security region (§5.1, "static barriers").

// Get reads a field through the region's read barrier.
func (r *Region) Get(o *Object, field string) any {
	r.readBarrier(o)
	return o.rawGet(field)
}

// Set writes a field through the region's write barrier.
func (r *Region) Set(o *Object, field string, v any) {
	r.writeBarrier(o)
	o.rawSet(field, v)
}

// Index reads an array element through the read barrier.
func (r *Region) Index(o *Object, i int) any {
	r.readBarrier(o)
	return o.rawIndex(i)
}

// SetIndex writes an array element through the write barrier.
func (r *Region) SetIndex(o *Object, i int, v any) {
	r.writeBarrier(o)
	o.rawSetIndex(i, v)
}

// readBarrier checks object -> thread flow: the region may read o only if
// o's secrecy is within the region's and the region's integrity within
// o's.
func (r *Region) readBarrier(o *Object) {
	r.thread.vm.stats.ReadBarriers.Add(1)
	r.check("read", difc.CheckFlow("read", o.labels, r.labels))
}

// writeBarrier checks thread -> object flow.
func (r *Region) writeBarrier(o *Object) {
	r.thread.vm.stats.WriteBarriers.Add(1)
	r.check("write", difc.CheckFlow("write", r.labels, o.labels))
}

// --- dynamic barriers: context resolved at run time ---
// When a method compiles once but runs both inside and outside regions,
// the compiler emits a dynamic barrier that first asks "is this thread in
// a region?" and then applies the matching check (§5.1, "dynamic
// barriers"). Outside regions the object must be unlabeled.

// Get reads a field through a dynamic barrier on the thread.
func (t *Thread) Get(o *Object, field string) any {
	t.dynamicReadBarrier(o)
	return o.rawGet(field)
}

// Set writes a field through a dynamic barrier.
func (t *Thread) Set(o *Object, field string, v any) {
	t.dynamicWriteBarrier(o)
	o.rawSet(field, v)
}

// Index reads an element through a dynamic barrier.
func (t *Thread) Index(o *Object, i int) any {
	t.dynamicReadBarrier(o)
	return o.rawIndex(i)
}

// SetIndex writes an element through a dynamic barrier.
func (t *Thread) SetIndex(o *Object, i int, v any) {
	t.dynamicWriteBarrier(o)
	o.rawSetIndex(i, v)
}

func (t *Thread) dynamicReadBarrier(o *Object) {
	if t.InRegion() {
		t.region.readBarrier(o)
		return
	}
	t.vm.stats.ReadBarriers.Add(1)
	if o.labeled {
		err := fmt.Errorf("labeled object %v accessed outside a security region", o.labels)
		t.vm.emit(Event{Kind: EvViolation, Thread: uint64(t.task.TID), Op: "read", Err: err})
		panic(&Violation{Op: "read", Err: err})
	}
}

func (t *Thread) dynamicWriteBarrier(o *Object) {
	if t.InRegion() {
		t.region.writeBarrier(o)
		return
	}
	t.vm.stats.WriteBarriers.Add(1)
	if o.labeled {
		err := fmt.Errorf("labeled object %v accessed outside a security region", o.labels)
		t.vm.emit(Event{Kind: EvViolation, Thread: uint64(t.task.TID), Op: "write", Err: err})
		panic(&Violation{Op: "write", Err: err})
	}
}
