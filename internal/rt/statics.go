package rt

import (
	"fmt"
	"sync"
)

// staticsTable is the VM's global (static variable) table. The prototype
// restrictions of §5.1 apply: a security region with secrecy labels may
// not write statics (the write would leak on region exit), and a region
// with integrity labels may not read them (statics carry no endorsement).
// Outside regions, statics behave normally.
type staticsTable struct {
	mu sync.RWMutex
	m  map[string]any
}

func newStaticsTable() *staticsTable {
	return &staticsTable{m: make(map[string]any)}
}

// GetStatic reads a static variable from outside any security region.
func (t *Thread) GetStatic(name string) any {
	if t.InRegion() {
		return t.region.GetStatic(name)
	}
	if t.vm.labeledStatics {
		return t.getStaticLabeledOutside(name)
	}
	return t.vm.statics.get(name)
}

// SetStatic writes a static variable from outside any security region.
func (t *Thread) SetStatic(name string, v any) {
	if t.InRegion() {
		t.region.SetStatic(name, v)
		return
	}
	if t.vm.labeledStatics {
		t.setStaticLabeledOutside(name, v)
		return
	}
	t.vm.statics.set(name, v)
}

// GetStatic reads a static inside a region. In the default prototype mode
// the read is rejected when the region has integrity labels (§5.1); in
// labeled-statics mode the static's own label is flow-checked instead.
func (r *Region) GetStatic(name string) any {
	if r.thread.vm.labeledStatics {
		return r.getStaticLabeled(name)
	}
	r.thread.vm.stats.ReadBarriers.Add(1)
	if !r.labels.I.IsEmpty() {
		r.check("static-read", fmt.Errorf("region with integrity label %v may not read statics", r.labels.I))
	}
	return r.thread.vm.statics.get(name)
}

// SetStatic writes a static inside a region. In the default prototype
// mode the write is rejected when the region has secrecy labels; in
// labeled-statics mode the static's own label is flow-checked.
func (r *Region) SetStatic(name string, v any) {
	if r.thread.vm.labeledStatics {
		r.setStaticLabeled(name, v)
		return
	}
	r.thread.vm.stats.WriteBarriers.Add(1)
	if !r.labels.S.IsEmpty() {
		r.check("static-write", fmt.Errorf("region with secrecy label %v may not write statics", r.labels.S))
	}
	r.thread.vm.statics.set(name, v)
}

func (s *staticsTable) get(name string) any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[name]
}

func (s *staticsTable) set(name string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = v
}
