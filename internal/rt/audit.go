package rt

import (
	"fmt"

	"laminar/internal/difc"
)

// Audit support. Laminar's pitch includes auditability: security-relevant
// behaviour is confined to security regions and explicit declassification
// points, so a reviewer can watch exactly those events. The VM exposes an
// optional audit hook that receives every region entry/exit, violation,
// label change (CopyAndLabel) and capability movement. With a nil hook
// the only cost is a nil check.

// EventKind classifies audit events.
type EventKind uint8

// Audit event kinds.
const (
	EvRegionEnter EventKind = iota
	EvRegionExit
	EvViolation
	EvCopyAndLabel
	EvCapabilityGained
	EvCapabilityDropped
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvRegionEnter:
		return "region-enter"
	case EvRegionExit:
		return "region-exit"
	case EvViolation:
		return "violation"
	case EvCopyAndLabel:
		return "copy-and-label"
	case EvCapabilityGained:
		return "capability-gained"
	case EvCapabilityDropped:
		return "capability-dropped"
	default:
		return "unknown"
	}
}

// Event is one audit record.
type Event struct {
	Kind   EventKind
	Thread uint64      // kernel TID of the acting thread
	Labels difc.Labels // region labels in force
	// From and To carry label pairs for CopyAndLabel; Tag/CapKind carry
	// capability movements; Err carries violations.
	From difc.Labels
	To   difc.Labels
	Tag  difc.Tag
	Cap  difc.CapKind
	Err  error
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EvCopyAndLabel:
		return fmt.Sprintf("[tid %d] %s %v -> %v", e.Thread, e.Kind, e.From, e.To)
	case EvCapabilityGained, EvCapabilityDropped:
		return fmt.Sprintf("[tid %d] %s %v%v", e.Thread, e.Kind, e.Tag, e.Cap)
	case EvViolation:
		return fmt.Sprintf("[tid %d] %s in %v: %v", e.Thread, e.Kind, e.Labels, e.Err)
	default:
		return fmt.Sprintf("[tid %d] %s %v", e.Thread, e.Kind, e.Labels)
	}
}

// SetAudit installs the audit hook (nil disables). The hook runs inline
// on the acting thread; it must not call back into the VM.
func (vm *VM) SetAudit(fn func(Event)) { vm.audit = fn }

// emit sends an event to the hook if one is installed.
func (vm *VM) emit(e Event) {
	if vm.audit != nil {
		vm.audit(e)
	}
}
