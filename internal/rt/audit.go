package rt

import (
	"errors"
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/telemetry"
)

// Audit support. Laminar's pitch includes auditability: security-relevant
// behaviour is confined to security regions and explicit declassification
// points, so a reviewer can watch exactly those events.
//
// Since the unified telemetry subsystem (internal/telemetry) this file is
// a thin adapter: the VM's events are recorded in the kernel's telemetry
// recorder — one ring for the whole stack — and the legacy per-VM hook
// API (SetAudit) is kept as a compatibility view over that stream. New
// code should subscribe to the recorder (kernel.Telemetry().Subscribe)
// or read its flight ring; the hook remains supported because it is part
// of the public laminar API.

// EventKind classifies audit events.
type EventKind uint8

// Audit event kinds. EvKernelDeny extends the original VM-side kinds
// with kernel/LSM-layer denials: with a hook installed, denials recorded
// by the kernel's enforcement points for this VM's process are forwarded
// into the same audit stream, so one hook observes both layers.
const (
	EvRegionEnter EventKind = iota
	EvRegionExit
	EvViolation
	EvCopyAndLabel
	EvCapabilityGained
	EvCapabilityDropped
	EvKernelDeny
	// EvNetDeny reports a denial recorded by the cross-kernel labeled
	// transport (internal/netlabel): handshake rejections, malformed or
	// version-mismatched frames, and faulted links that failed closed.
	// Policy denials on remote flows still arrive as EvKernelDeny — the
	// receiving kernel's LSM checks a remote Recv exactly like a local
	// one — so EvNetDeny is specifically the transport's own provenance.
	EvNetDeny
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvRegionEnter:
		return "region-enter"
	case EvRegionExit:
		return "region-exit"
	case EvViolation:
		return "violation"
	case EvCopyAndLabel:
		return "copy-and-label"
	case EvCapabilityGained:
		return "capability-gained"
	case EvCapabilityDropped:
		return "capability-dropped"
	case EvKernelDeny:
		return "kernel-deny"
	case EvNetDeny:
		return "net-deny"
	default:
		return "unknown"
	}
}

// Event is one audit record.
type Event struct {
	Kind   EventKind
	Thread uint64      // kernel TID of the acting thread
	Labels difc.Labels // region labels in force
	// Op names the checked operation for violations and kernel denials
	// ("read", "write", "signal", ...).
	Op string
	// From and To carry label pairs for CopyAndLabel; Tag/CapKind carry
	// capability movements; Err carries violations and kernel denials.
	From difc.Labels
	To   difc.Labels
	Tag  difc.Tag
	Cap  difc.CapKind
	Err  error
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EvCopyAndLabel:
		return fmt.Sprintf("[tid %d] %s %v -> %v", e.Thread, e.Kind, e.From, e.To)
	case EvCapabilityGained, EvCapabilityDropped:
		return fmt.Sprintf("[tid %d] %s %v%v", e.Thread, e.Kind, e.Tag, e.Cap)
	case EvViolation:
		return fmt.Sprintf("[tid %d] %s in %v: %v", e.Thread, e.Kind, e.Labels, e.Err)
	case EvKernelDeny, EvNetDeny:
		return fmt.Sprintf("[tid %d] %s %s: %v", e.Thread, e.Kind, e.Op, e.Err)
	default:
		return fmt.Sprintf("[tid %d] %s %v", e.Thread, e.Kind, e.Labels)
	}
}

// SetAudit installs the audit hook (nil disables). The hook runs inline
// on the acting thread; it must not call back into the VM.
//
// Deprecated-style note: SetAudit predates internal/telemetry and is now
// an adapter over it. It still receives every VM-side event, and — when
// the kernel has a telemetry recorder — kernel/LSM denials for this VM's
// process as EvKernelDeny events. Prefer the telemetry recorder for new
// consumers: it adds rule provenance, interned label operands, metrics
// and the flight ring.
func (vm *VM) SetAudit(fn func(Event)) {
	if vm.auditCancel != nil {
		vm.auditCancel()
		vm.auditCancel = nil
	}
	vm.audit = fn
	if fn == nil || vm.rec == nil {
		return
	}
	// Forward kernel-layer denials for this process into the hook. The
	// filter on Layer keeps VM-side events (LayerRT) from echoing: those
	// reach the hook directly in emit.
	proc := vm.tcb.Proc
	vm.auditCancel = vm.rec.Subscribe(func(te telemetry.Event) {
		if te.Kind != telemetry.KindDeny || te.Proc != proc {
			return
		}
		var kind EventKind
		switch te.Layer {
		case telemetry.LayerKernel, telemetry.LayerLSM:
			kind = EvKernelDeny
		case telemetry.LayerNet:
			kind = EvNetDeny
		default:
			return
		}
		vm.audit(Event{
			Kind:   kind,
			Thread: te.TID,
			Op:     te.Op,
			Err:    errors.New(te.Detail),
		})
	})
}

// emit delivers an event to the legacy hook and mirrors it into the
// telemetry recorder. With no hook and telemetry off, the cost is two
// nil/atomic checks.
func (vm *VM) emit(e Event) {
	if vm.audit != nil {
		vm.audit(e)
	}
	if vm.rec == nil || !vm.rec.Active() {
		return
	}
	te := telemetry.Event{
		Layer: telemetry.LayerRT,
		TID:   e.Thread,
		Proc:  vm.tcb.Proc,
		Op:    e.Op,
	}
	switch e.Kind {
	case EvViolation:
		// Classify through the shared path so barrier denials carry the
		// violated rule and tag delta exactly like kernel denials.
		te = telemetry.DenyEvent(telemetry.LayerRT, "rt.region.check", e.Op, e.Thread, vm.tcb.Proc, e.Err)
	case EvRegionEnter:
		te.Kind = telemetry.KindRegionEnter
		te.Site = "rt.region.enter"
		te.SrcS = difc.Intern(e.Labels.S).InternedID()
		te.SrcI = difc.Intern(e.Labels.I).InternedID()
	case EvRegionExit:
		te.Kind = telemetry.KindRegionExit
		te.Site = "rt.region.exit"
		te.SrcS = difc.Intern(e.Labels.S).InternedID()
		te.SrcI = difc.Intern(e.Labels.I).InternedID()
	case EvCopyAndLabel:
		te.Kind = telemetry.KindCopyAndLabel
		te.Site = "rt.copyAndLabel"
		from, to := difc.InternLabels(e.From), difc.InternLabels(e.To)
		te.SrcS, te.SrcI = from.S.InternedID(), from.I.InternedID()
		te.DstS, te.DstI = to.S.InternedID(), to.I.InternedID()
	case EvCapabilityGained:
		te.Kind = telemetry.KindCapGained
		te.Site = "rt.capability"
		te.Tag, te.Cap = e.Tag, e.Cap
	case EvCapabilityDropped:
		te.Kind = telemetry.KindCapDropped
		te.Site = "rt.capability"
		te.Tag, te.Cap = e.Tag, e.Cap
	default:
		return
	}
	vm.rec.Emit(te)
}
