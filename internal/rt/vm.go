// Package rt is the Laminar virtual-machine runtime: the trusted component
// that enforces DIFC inside one process's address space (§4, §5.1 of Roy
// et al., PLDI 2009). It provides thread principals, lexically scoped
// security regions with the paper's secure/catch semantics, a labeled
// object space with read/write/allocation barriers, restricted statics,
// and the bridge to the simulated kernel (labels are pushed to the kernel
// task lazily, only when a region performs a system call — the §4.4
// optimization).
//
// The real Laminar modifies Jikes RVM so the JIT inserts barriers at every
// field and array access. Go's runtime cannot be instrumented that way, so
// this package exposes the barriers as an explicit API over rt.Object
// heap values: every access runs exactly the check the paper's compiled
// barrier runs. The MiniJVM substrate (package jvm) layers the
// compiler-inserted-barrier model on top for the barrier-placement and
// optimization experiments.
package rt

import (
	"fmt"
	"sync/atomic"
	"time"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

// VM is the trusted runtime for one process. It owns a tcb-endorsed kernel
// thread used to reset thread labels at region exit, a statics table, and
// the accounting used by the evaluation harness.
type VM struct {
	k   *kernel.Kernel
	mod *lsm.Module
	tcb *kernel.Task

	// EagerSync pushes thread labels to the kernel at every region entry
	// and exit instead of only before syscalls. Disabled by default; the
	// ablation benchmark toggles it.
	EagerSync bool

	statics        *staticsTable
	stats          Stats
	audit          func(Event)
	labeledStatics bool

	// rec is the kernel's telemetry recorder (nil when the kernel was
	// booted WithoutTelemetry): region lifecycle, barrier denials and
	// declassifications are recorded there alongside the kernel's own
	// enforcement events (audit.go).
	rec *telemetry.Recorder
	// auditCancel unsubscribes the kernel-deny forwarder installed by
	// SetAudit.
	auditCancel func()
}

// Stats counts the dynamic security work the VM performs, feeding the
// Figure 9 overhead breakdown and Table 3's %-time-in-SR column.
type Stats struct {
	RegionsEntered atomic.Uint64
	ReadBarriers   atomic.Uint64
	WriteBarriers  atomic.Uint64
	AllocBarriers  atomic.Uint64
	DynamicChecks  atomic.Uint64 // dynamic-barrier "am I in a region?" checks
	LabelSyncs     atomic.Uint64 // set_task_label / set_label_tcb syscalls
	RegionNanos    atomic.Int64  // wall time spent inside security regions
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.RegionsEntered.Store(0)
	s.ReadBarriers.Store(0)
	s.WriteBarriers.Store(0)
	s.AllocBarriers.Store(0)
	s.DynamicChecks.Store(0)
	s.LabelSyncs.Store(0)
	s.RegionNanos.Store(0)
}

// New creates a VM for a fresh process under the given kernel and module.
// owner is the task (typically a login shell) launching the VM; the VM's
// threads are forked from it, and a dedicated tcb thread is registered
// with the module (§4.4: a single, auditable high-integrity thread).
func New(k *kernel.Kernel, mod *lsm.Module, owner *kernel.Task) (*VM, *Thread, error) {
	main, err := k.Spawn(owner, nil)
	if err != nil {
		return nil, nil, err
	}
	tcb, err := k.Fork(main, []kernel.Capability{})
	if err != nil {
		return nil, nil, err
	}
	mod.RegisterTCBThread(tcb)
	vm := &VM{k: k, mod: mod, tcb: tcb, statics: newStaticsTable(), rec: k.Telemetry()}
	mt := &Thread{vm: vm, task: main, caps: mod.TaskCaps(main)}
	return vm, mt, nil
}

// Kernel returns the kernel this VM runs on.
func (vm *VM) Kernel() *kernel.Kernel { return vm.k }

// Module returns the Laminar security module.
func (vm *VM) Module() *lsm.Module { return vm.mod }

// Stats exposes the VM's dynamic-check counters.
func (vm *VM) Stats() *Stats { return &vm.stats }

// PublishTelemetry folds the VM's dynamic-check counters into the
// recorder's free-form metric series. Like the region barriers themselves
// the counters stay plain atomics on the hot path; this fold runs once
// per VM at snapshot time (bench/eval teardown). No-op when telemetry is
// off or the kernel was booted WithoutTelemetry.
func (vm *VM) PublishTelemetry() {
	if vm.rec == nil || !vm.rec.Active() {
		return
	}
	add := func(name string, n uint64) {
		if n > 0 {
			vm.rec.M.Extra.Get(name).Add(0, n)
		}
	}
	add("rt.regions.entered", vm.stats.RegionsEntered.Load())
	add("rt.barrier.read", vm.stats.ReadBarriers.Load())
	add("rt.barrier.write", vm.stats.WriteBarriers.Load())
	add("rt.barrier.alloc", vm.stats.AllocBarriers.Load())
	add("rt.barrier.dynamic", vm.stats.DynamicChecks.Load())
	add("rt.label.syncs", vm.stats.LabelSyncs.Load())
}

// setKernelLabels pushes labels onto the thread's kernel task using the
// trusted tcb path, which works regardless of the thread's capabilities
// (needed when leaving a region whose tags the thread cannot drop). The
// sync itself is a fault-injection point ("rt.sync"): an injected error
// leaves the kernel task's labels untouched, and an injected crash kills
// the task outright — in both cases the caller must treat the thread's
// kernel labels as unsynchronized.
func (vm *VM) setKernelLabels(t *Thread, labels difc.Labels) error {
	vm.stats.LabelSyncs.Add(1)
	if inj := vm.k.Injector(); inj != nil {
		switch inj.At("rt.sync") {
		case faultinject.Error:
			return fmt.Errorf("%w: injected fault in tcb label sync", kernel.ErrIO)
		case faultinject.Crash:
			vm.k.Exit(t.task)
			return kernel.ErrKilled
		}
	}
	// SetLabelTCB mutates the target task's security blob directly, below
	// the kernel's syscall entry points, so take the kernel's task locks
	// explicitly: under the sharded kernel this serializes the label store
	// against hooks on concurrent syscalls that read the same blob.
	var err error
	vm.k.WithTasksLocked(vm.tcb, t.task, func() {
		err = vm.mod.SetLabelTCB(vm.tcb, t.task, labels)
	})
	return err
}

// now is indirected for tests.
var now = time.Now
