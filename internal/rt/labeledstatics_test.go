package rt

import (
	"testing"

	"laminar/internal/difc"
)

func TestLabeledStaticsFlowRules(t *testing.T) {
	vm, main := newVM(t)
	vm.EnableLabeledStatics()
	a, _ := main.CreateTag()
	secret := difc.Labels{S: difc.NewLabel(a)}
	if err := vm.DefineStatic("config", difc.Labels{}, "public"); err != nil {
		t.Fatal(err)
	}
	if err := vm.DefineStatic("key", secret, "hunter2"); err != nil {
		t.Fatal(err)
	}
	if err := vm.DefineStatic("key", secret, "x"); err == nil {
		t.Error("duplicate DefineStatic accepted")
	}

	// Region with the right label reads and writes the secret static.
	main.Secure(secret, difc.EmptyCapSet, func(r *Region) {
		if got := r.GetStatic("key"); got != "hunter2" {
			t.Errorf("key = %v", got)
		}
		r.SetStatic("key", "rotated")
		// Unlabeled static still readable (flow up).
		if got := r.GetStatic("config"); got != "public" {
			t.Errorf("config = %v", got)
		}
		// ...but not writable (write down).
		func() {
			defer func() {
				if recover() == nil {
					t.Error("secrecy region wrote unlabeled static")
				}
			}()
			r.SetStatic("config", "leak")
		}()
	}, nil)

	// Unlabeled region cannot read the secret static.
	caught := false
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		r.GetStatic("key")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("unlabeled region read a labeled static")
	}

	// Outside regions, labeled statics are off limits entirely.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("labeled static read outside region")
			}
		}()
		main.GetStatic("key")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("labeled static written outside region")
			}
		}()
		main.SetStatic("key", "oops")
	}()
	// Unlabeled statics work everywhere.
	main.SetStatic("config", "v2")
	if got := main.GetStatic("config"); got != "v2" {
		t.Errorf("config = %v", got)
	}
}

func TestLabeledStaticsImplicitDefinition(t *testing.T) {
	vm, main := newVM(t)
	vm.EnableLabeledStatics()
	a, _ := main.CreateTag()
	secret := difc.Labels{S: difc.NewLabel(a)}
	// First write from inside a region labels the static with the
	// region's labels (allocation-time labeling for statics).
	main.Secure(secret, difc.EmptyCapSet, func(r *Region) {
		r.SetStatic("cache", 99)
		if got := r.GetStatic("cache"); got != 99 {
			t.Errorf("cache = %v", got)
		}
	}, nil)
	caught := false
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		r.GetStatic("cache")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("implicitly labeled static readable without the label")
	}
	// Undefined statics read as nil.
	main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		if got := r.GetStatic("undefined"); got != nil {
			t.Errorf("undefined static = %v", got)
		}
	}, nil)
}

func TestDefineStaticRequiresMode(t *testing.T) {
	vm, _ := newVM(t)
	if err := vm.DefineStatic("x", difc.Labels{}, 1); err == nil {
		t.Error("DefineStatic without labeled-statics mode accepted")
	}
}

func TestPrototypeStaticsUnchangedByDefault(t *testing.T) {
	// With labeled statics off, the §5.1 prototype rules still apply.
	_, main := newVM(t)
	a, _ := main.CreateTag()
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.SetStatic("g", 1)
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("prototype secrecy-region static write succeeded")
	}
}
