package rt

import (
	"strings"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

func TestRegionAccessors(t *testing.T) {
	vm, main := newVM(t)
	a, _ := main.CreateTag()
	i, _ := main.CreateTag()
	labels := difc.Labels{S: difc.NewLabel(a), I: difc.NewLabel(i)}
	main.Secure(labels, difc.EmptyCapSet, func(r *Region) {
		if r.Thread() != main {
			t.Error("Thread() mismatch")
		}
		if !r.Labels().Equal(labels) {
			t.Errorf("Labels() = %v", r.Labels())
		}
		if !r.SecrecyLabel().Equal(labels.S) || !r.IntegrityLabel().Equal(labels.I) {
			t.Error("label accessors mismatch")
		}
	}, nil)
	if main.VM() != vm {
		t.Error("VM() mismatch")
	}
}

func TestRegionCreateFileLabeled(t *testing.T) {
	// An unlabeled region pre-creates a labeled file via the region API.
	_, main := newVM(t)
	a, _ := main.CreateTag()
	secret := difc.Labels{S: difc.NewLabel(a)}
	err := main.Secure(difc.Labels{}, difc.EmptyCapSet, func(r *Region) {
		fd, err := r.CreateFileLabeled("regioncal", 0o600, secret)
		if err != nil {
			t.Errorf("CreateFileLabeled: %v", err)
			return
		}
		r.CloseFile(fd)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The file exists and is protected.
	if _, err := main.vm.k.Open(main.Task(), "regioncal", kernel.ORead); err == nil {
		t.Error("labeled file readable by unlabeled task")
	}
}

func TestRawIndexAccessors(t *testing.T) {
	arr := NewArray(3)
	arr.RawSetIndex(1, "v")
	if arr.RawIndex(1) != "v" {
		t.Error("raw index accessors broken")
	}
}

func TestDynamicWriteBarrierOutside(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	var labeled *Object
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		labeled = r.Alloc(nil)
	}, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dynamic write barrier let labeled write through outside region")
			}
		}()
		main.Set(labeled, "f", 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dynamic index write let labeled write through")
			}
		}()
		arr := nilSafeLabeledArray(main, a)
		main.SetIndex(arr, 0, 1)
	}()
}

func nilSafeLabeledArray(main *Thread, tag difc.Tag) *Object {
	var arr *Object
	main.Secure(difc.Labels{S: difc.NewLabel(tag)}, difc.EmptyCapSet, func(r *Region) {
		arr = r.AllocArray(2, nil)
	}, nil)
	return arr
}

func TestThreadExit(t *testing.T) {
	_, main := newVM(t)
	child, err := main.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	child.Exit()
	if !child.Task().Exited() {
		t.Error("exited thread's task still live")
	}
}

func TestGrantCapability(t *testing.T) {
	_, main := newVM(t)
	tag := difc.Tag(777)
	main.GrantCapability(tag, difc.CapPlus)
	if !main.Caps().CanAdd(tag) {
		t.Error("granted capability missing")
	}
	if err := main.Secure(difc.Labels{S: difc.NewLabel(tag)}, difc.EmptyCapSet, func(r *Region) {}, nil); err != nil {
		t.Errorf("region entry with granted capability: %v", err)
	}
}

func TestAuditEventStrings(t *testing.T) {
	events := []Event{
		{Kind: EvRegionEnter, Thread: 1},
		{Kind: EvCopyAndLabel, Thread: 1},
		{Kind: EvCapabilityGained, Thread: 1, Tag: 3, Cap: difc.CapPlus},
		{Kind: EvViolation, Thread: 1, Err: errDummy{}},
	}
	for _, e := range events {
		if s := e.String(); !strings.Contains(s, "tid 1") {
			t.Errorf("event String = %q", s)
		}
	}
}

type errDummy struct{}

func (errDummy) Error() string { return "dummy" }

func TestAllocArrayExplicitLabels(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()
	// Legal: array labeled above the region with a plus capability.
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet.Grant(b, difc.CapPlus), func(r *Region) {
		arr := r.AllocArray(2, &difc.Labels{S: difc.NewLabel(a, b)})
		if !arr.Labels().S.Equal(difc.NewLabel(a, b)) {
			t.Errorf("array labels = %v", arr.Labels())
		}
	}, func(r *Region, e any) { t.Errorf("unexpected violation: %v", e) })
	// Illegal: array below the region's secrecy.
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		r.AllocArray(2, &difc.Labels{})
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("array alloc below region secrecy succeeded")
	}
}
