package rt

import (
	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// Region is an active security region: the paper's lexically scoped code
// block with a secrecy label, an integrity label and a capability set
// (§4.3). A Region value is only valid inside the Secure call that created
// it; the Figure 2 library API lives here.
type Region struct {
	thread *Thread
	labels difc.Labels
	caps   difc.CapSet
	parent *Region
}

// Thread returns the thread executing the region.
func (r *Region) Thread() *Thread { return r.thread }

// Labels returns the region's label pair (getCurrentLabel for both types).
func (r *Region) Labels() difc.Labels { return r.labels }

// SecrecyLabel implements getCurrentLabel(SECRECY).
func (r *Region) SecrecyLabel() difc.Label { return r.labels.S }

// IntegrityLabel implements getCurrentLabel(INTEGRITY).
func (r *Region) IntegrityLabel() difc.Label { return r.labels.I }

// Caps returns the region's capability set.
func (r *Region) Caps() difc.CapSet { return r.caps }

// CreateAndAddCapability allocates a fresh tag and grants the thread both
// capabilities (Figure 2). By default a capability gained inside a region
// is retained on exit (§4.4), so the grant lands in the thread's base set
// as well as the region's.
func (r *Region) CreateAndAddCapability() (difc.Tag, error) {
	tag, err := r.thread.vm.k.AllocTag(r.thread.task)
	if err != nil {
		return difc.InvalidTag, err
	}
	for reg := r; reg != nil; reg = reg.parent {
		reg.caps = reg.caps.Grant(tag, difc.CapBoth)
	}
	r.thread.caps = r.thread.caps.Grant(tag, difc.CapBoth)
	r.thread.vm.emit(Event{Kind: EvCapabilityGained, Thread: uint64(r.thread.task.TID), Labels: r.labels, Tag: tag, Cap: difc.CapBoth})
	return tag, nil
}

// RemoveCapability drops a capability (Figure 2). With global=false the
// drop lasts for the scope of this region: the enclosing context keeps the
// capability. With global=true the capability is gone permanently, from
// every enclosing region and the thread's base set.
func (r *Region) RemoveCapability(tag difc.Tag, kind difc.CapKind, global bool) error {
	c := []kernel.Capability{{Tag: tag, Kind: kind}}
	if err := r.thread.vm.k.DropCapabilities(r.thread.task, c, !global); err != nil {
		return err
	}
	r.caps = r.caps.Drop(tag, kind)
	if global {
		for reg := r.parent; reg != nil; reg = reg.parent {
			reg.caps = reg.caps.Drop(tag, kind)
		}
		r.thread.caps = r.thread.caps.Drop(tag, kind)
	}
	r.thread.vm.emit(Event{Kind: EvCapabilityDropped, Thread: uint64(r.thread.task.TID), Labels: r.labels, Tag: tag, Cap: kind})
	return nil
}

// check verifies an information flow and panics with *Violation on
// failure, modeling the VM-thrown exception that transfers control to the
// region's catch block.
func (r *Region) check(op string, err error) {
	if err != nil {
		r.thread.vm.emit(Event{Kind: EvViolation, Thread: uint64(r.thread.task.TID), Labels: r.labels, Op: op, Err: err})
		panic(&Violation{Op: op, Err: err})
	}
}

// --- labeled file and OS access from inside a region ---
// The VM sets the kernel task's labels before the first syscall in the
// region (lazy sync, §4.4), then the Laminar LSM mediates the operation.

// OpenFile opens a file with the region's labels in force.
func (r *Region) OpenFile(path string, flags kernel.OpenFlag) (kernel.FD, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.Open(r.thread.task, path, flags)
}

// CreateFileLabeled pre-creates a labeled file (create_file_labeled).
func (r *Region) CreateFileLabeled(path string, mode kernel.Mode, labels difc.Labels) (kernel.FD, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.CreateFileLabeled(r.thread.task, path, mode, labels)
}

// ReadFile reads from an open descriptor under the region's labels.
func (r *Region) ReadFile(fd kernel.FD, buf []byte) (int, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.Read(r.thread.task, fd, buf)
}

// WriteFile writes to an open descriptor under the region's labels.
func (r *Region) WriteFile(fd kernel.FD, data []byte) (int, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.Write(r.thread.task, fd, data)
}

// WriteFileVec writes a vector of chunks to an open descriptor as one
// batched syscall: one label sync, one kernel entry, one security
// verdict for the whole batch (see kernel.WriteVec for why one verdict
// is equivalent to per-element checks). Regions with bursty output use
// it to amortize the per-operation barrier cost.
func (r *Region) WriteFileVec(fd kernel.FD, chunks [][]byte) (int, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.WriteVec(r.thread.task, fd, chunks)
}

// Prefetch warms the kernel's verdict cache for the given descriptors
// under the region's labels: each (descriptor, mask) verdict is derived
// once, through the full hook surface, so the region's subsequent I/O
// on those descriptors begins on memoized decisions. Denials are NOT
// errors here — the real operations will re-derive and report them —
// so Prefetch never fails region entry; it returns the first verdict
// error purely as a hint for callers that want it.
func (r *Region) Prefetch(mask kernel.AccessMask, fds ...kernel.FD) error {
	r.thread.ensureSynced()
	return r.thread.vm.k.Precheck(r.thread.task, mask, fds...)
}

// CloseFile closes the descriptor.
func (r *Region) CloseFile(fd kernel.FD) error {
	return r.thread.vm.k.Close(r.thread.task, fd)
}

// Send transmits on a socket endpoint under the region's labels; illegal
// flows drop silently, like pipes (§5.2).
func (r *Region) Send(fd kernel.FD, data []byte) (int, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.Send(r.thread.task, fd, data)
}

// Recv receives from a socket endpoint under the region's labels.
func (r *Region) Recv(fd kernel.FD, buf []byte) (int, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.Recv(r.thread.task, fd, buf)
}

// Socketpair creates a connected socket pair; the connection carries the
// region's labels (it is created by the tainted thread).
func (r *Region) Socketpair() (kernel.FD, kernel.FD, error) {
	r.thread.ensureSynced()
	return r.thread.vm.k.Socketpair(r.thread.task)
}
