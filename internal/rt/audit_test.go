package rt

import (
	"strings"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
	"laminar/internal/telemetry"
)

func TestAuditTrail(t *testing.T) {
	vm, main := newVM(t)
	var events []Event
	vm.SetAudit(func(e Event) { events = append(events, e) })

	a, _ := main.CreateTag()
	labels := difc.Labels{S: difc.NewLabel(a)}
	minus := difc.NewCapSet(difc.EmptyLabel, difc.NewLabel(a))

	// A full scenario: enter, violate (caught), declassify, exit.
	low := NewObject()
	main.Secure(labels, minus, func(r *Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
		// Violation (caught): write down.
		func() {
			defer func() { recover() }()
			r.Set(low, "x", 1)
		}()
		// Declassify.
		r.CopyAndLabel(o, difc.Labels{})
		// Capability churn.
		tag, err := r.CreateAndAddCapability()
		if err != nil {
			t.Fatal(err)
		}
		r.RemoveCapability(tag, difc.CapMinus, false)
	}, nil)

	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Thread == 0 {
			t.Errorf("event without thread id: %v", e)
		}
	}
	for _, want := range []EventKind{
		EvRegionEnter, EvRegionExit, EvViolation,
		EvCopyAndLabel, EvCapabilityGained, EvCapabilityDropped,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event recorded", want)
		}
	}
	// Enter/exit balance.
	if kinds[EvRegionEnter] != kinds[EvRegionExit] {
		t.Errorf("enter %d != exit %d", kinds[EvRegionEnter], kinds[EvRegionExit])
	}
	// The declassification record carries both label pairs.
	for _, e := range events {
		if e.Kind == EvCopyAndLabel {
			if !e.From.Equal(labels) || !e.To.IsEmpty() {
				t.Errorf("copy event labels = %v -> %v", e.From, e.To)
			}
			if !strings.Contains(e.String(), "copy-and-label") {
				t.Errorf("event String = %q", e.String())
			}
		}
	}
}

func TestAuditDisabledByDefault(t *testing.T) {
	_, main := newVM(t)
	// No hook installed: everything works, nothing panics.
	a, _ := main.CreateTag()
	err := main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestKernelDenyForwarded checks the adapter half of the audit hook: with
// a telemetry recorder active, kernel/LSM-layer denials for the VM's
// process surface in the same audit stream as EvKernelDeny events.
func TestKernelDenyForwarded(t *testing.T) {
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelDeny)
	mod := lsm.New()
	k := kernel.New(kernel.WithSecurityModule(mod), kernel.WithTelemetry(rec))
	mod.InstallSystemIntegrity(k)
	mod.SetTelemetry(k.Telemetry())
	shell, err := mod.Login(k, "user")
	if err != nil {
		t.Fatal(err)
	}
	vm, main, err := New(k, mod, shell)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(main.Task(), "/tmp"); err != nil {
		t.Fatal(err)
	}

	var denies []Event
	vm.SetAudit(func(e Event) {
		if e.Kind == EvKernelDeny {
			denies = append(denies, e)
		}
	})

	// Create a secret file, then try to open it unlabeled: the LSM refuses
	// the read (surfaced as ENOENT) and the kernel-layer denial must reach
	// the audit hook.
	tag, err := main.CreateTag()
	if err != nil {
		t.Fatal(err)
	}
	secret := difc.Labels{S: difc.NewLabel(tag)}
	fd, err := k.CreateFileLabeled(main.Task(), "secret.txt", 0o600, secret)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Close(main.Task(), fd); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(main.Task(), "secret.txt", kernel.ORead); err == nil {
		t.Fatal("open of secret file from unlabeled task succeeded")
	}

	if len(denies) == 0 {
		t.Fatal("kernel denial not forwarded to audit hook")
	}
	e := denies[0]
	if e.Err == nil || e.Op == "" {
		t.Errorf("forwarded denial lacks detail: %+v", e)
	}
	if !strings.Contains(e.String(), "kernel-deny") {
		t.Errorf("event String = %q", e.String())
	}

	// Uninstalling the hook cancels the forwarder: further denials stay out.
	vm.SetAudit(nil)
	n := len(denies)
	if _, err := k.Open(main.Task(), "secret.txt", kernel.ORead); err == nil {
		t.Fatal("open of secret file from unlabeled task succeeded")
	}
	if len(denies) != n {
		t.Error("forwarder survived SetAudit(nil)")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvRegionEnter; k <= EvKernelDeny; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Error("unknown kind misnamed")
	}
}
