package rt

import (
	"strings"
	"testing"

	"laminar/internal/difc"
)

func TestAuditTrail(t *testing.T) {
	vm, main := newVM(t)
	var events []Event
	vm.SetAudit(func(e Event) { events = append(events, e) })

	a, _ := main.CreateTag()
	labels := difc.Labels{S: difc.NewLabel(a)}
	minus := difc.NewCapSet(difc.EmptyLabel, difc.NewLabel(a))

	// A full scenario: enter, violate (caught), declassify, exit.
	low := NewObject()
	main.Secure(labels, minus, func(r *Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
		// Violation (caught): write down.
		func() {
			defer func() { recover() }()
			r.Set(low, "x", 1)
		}()
		// Declassify.
		r.CopyAndLabel(o, difc.Labels{})
		// Capability churn.
		tag, err := r.CreateAndAddCapability()
		if err != nil {
			t.Fatal(err)
		}
		r.RemoveCapability(tag, difc.CapMinus, false)
	}, nil)

	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Thread == 0 {
			t.Errorf("event without thread id: %v", e)
		}
	}
	for _, want := range []EventKind{
		EvRegionEnter, EvRegionExit, EvViolation,
		EvCopyAndLabel, EvCapabilityGained, EvCapabilityDropped,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event recorded", want)
		}
	}
	// Enter/exit balance.
	if kinds[EvRegionEnter] != kinds[EvRegionExit] {
		t.Errorf("enter %d != exit %d", kinds[EvRegionEnter], kinds[EvRegionExit])
	}
	// The declassification record carries both label pairs.
	for _, e := range events {
		if e.Kind == EvCopyAndLabel {
			if !e.From.Equal(labels) || !e.To.IsEmpty() {
				t.Errorf("copy event labels = %v -> %v", e.From, e.To)
			}
			if !strings.Contains(e.String(), "copy-and-label") {
				t.Errorf("event String = %q", e.String())
			}
		}
	}
}

func TestAuditDisabledByDefault(t *testing.T) {
	_, main := newVM(t)
	// No hook installed: everything works, nothing panics.
	a, _ := main.CreateTag()
	err := main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		o := r.Alloc(nil)
		r.Set(o, "x", 1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvRegionEnter; k <= EvCapabilityDropped; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Error("unknown kind misnamed")
	}
}
