package rt

import (
	"fmt"
	"hash/fnv"
)

// Labeled collections. The paper's data objects include "individual
// objects, arrays, lists, hash tables" (§3.1). These helpers build lists
// and hash maps out of labeled heap objects, so every node access flows
// through the same read/write barriers as a hand-rolled structure — a
// region with the wrong labels cannot traverse even one link.
//
// All constructors allocate with the region's labels (pass-through to
// Alloc); mixing structures across labels is caught by the barriers at
// the first touched node.

// List field layout.
const (
	listHead = "head"
	listTail = "tail"
	listLen  = "len"
	nodeVal  = "val"
	nodeNext = "next"
)

// NewList allocates an empty labeled linked list.
func (r *Region) NewList() *Object {
	l := r.Alloc(nil)
	r.Set(l, listLen, 0)
	return l
}

// ListAppend appends v to the list.
func (r *Region) ListAppend(list *Object, v any) {
	node := r.Alloc(nil)
	r.Set(node, nodeVal, v)
	n := r.Get(list, listLen).(int)
	if n == 0 {
		r.Set(list, listHead, node)
	} else {
		tail := r.Get(list, listTail).(*Object)
		r.Set(tail, nodeNext, node)
	}
	r.Set(list, listTail, node)
	r.Set(list, listLen, n+1)
}

// ListLen reports the list length.
func (r *Region) ListLen(list *Object) int {
	return r.Get(list, listLen).(int)
}

// ListGet returns element i; it panics with a Violation-style error on
// out-of-range indices (the region's catch block receives it).
func (r *Region) ListGet(list *Object, i int) any {
	n := r.Get(list, listLen).(int)
	if i < 0 || i >= n {
		panic(&Violation{Op: "list-get", Err: fmt.Errorf("index %d out of range [0,%d)", i, n)})
	}
	node := r.Get(list, listHead).(*Object)
	for ; i > 0; i-- {
		node = r.Get(node, nodeNext).(*Object)
	}
	return r.Get(node, nodeVal)
}

// ListIterate walks the list until fn returns false.
func (r *Region) ListIterate(list *Object, fn func(v any) bool) {
	n := r.Get(list, listLen).(int)
	if n == 0 {
		return
	}
	node := r.Get(list, listHead).(*Object)
	for i := 0; i < n; i++ {
		if !fn(r.Get(node, nodeVal)) {
			return
		}
		if i+1 < n {
			node = r.Get(node, nodeNext).(*Object)
		}
	}
}

// Hash map layout: a labeled object with a bucket array; each bucket is a
// chain of labeled entry nodes.
const (
	mapBuckets = "buckets"
	mapCount   = "count"
	entryKey   = "key"
	entryVal   = "val"
	entryNext  = "next"
)

// NewHashMap allocates a labeled chained hash map with the given bucket
// count.
func (r *Region) NewHashMap(buckets int) *Object {
	if buckets < 1 {
		buckets = 8
	}
	m := r.Alloc(nil)
	arr := r.AllocArray(buckets, nil)
	r.Set(m, mapBuckets, arr)
	r.Set(m, mapCount, 0)
	return m
}

func bucketOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % n
}

// MapPut inserts or replaces key's value.
func (r *Region) MapPut(m *Object, key string, v any) {
	arr := r.Get(m, mapBuckets).(*Object)
	b := bucketOf(key, arr.Len())
	cur := r.Index(arr, b)
	for node, _ := cur.(*Object); node != nil; {
		if r.Get(node, entryKey).(string) == key {
			r.Set(node, entryVal, v)
			return
		}
		next := r.Get(node, entryNext)
		node, _ = next.(*Object)
	}
	entry := r.Alloc(nil)
	r.Set(entry, entryKey, key)
	r.Set(entry, entryVal, v)
	if head, ok := cur.(*Object); ok {
		r.Set(entry, entryNext, head)
	}
	r.SetIndex(arr, b, entry)
	r.Set(m, mapCount, r.Get(m, mapCount).(int)+1)
}

// MapGet looks up key; the bool reports presence.
func (r *Region) MapGet(m *Object, key string) (any, bool) {
	arr := r.Get(m, mapBuckets).(*Object)
	b := bucketOf(key, arr.Len())
	cur := r.Index(arr, b)
	for node, _ := cur.(*Object); node != nil; {
		if r.Get(node, entryKey).(string) == key {
			return r.Get(node, entryVal), true
		}
		next := r.Get(node, entryNext)
		node, _ = next.(*Object)
	}
	return nil, false
}

// MapDelete removes key, reporting whether it was present.
func (r *Region) MapDelete(m *Object, key string) bool {
	arr := r.Get(m, mapBuckets).(*Object)
	b := bucketOf(key, arr.Len())
	cur := r.Index(arr, b)
	var prev *Object
	for node, _ := cur.(*Object); node != nil; {
		if r.Get(node, entryKey).(string) == key {
			next := r.Get(node, entryNext)
			if prev == nil {
				if nextObj, ok := next.(*Object); ok {
					r.SetIndex(arr, b, nextObj)
				} else {
					r.SetIndex(arr, b, nil)
				}
			} else {
				r.Set(prev, entryNext, next)
			}
			r.Set(m, mapCount, r.Get(m, mapCount).(int)-1)
			return true
		}
		prev = node
		next := r.Get(node, entryNext)
		node, _ = next.(*Object)
	}
	return false
}

// MapLen reports the number of entries.
func (r *Region) MapLen(m *Object) int {
	return r.Get(m, mapCount).(int)
}
