package rt

import (
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// TestTerminationChannelDocumented encodes Figure 6: a security region
// that loops forever when the secret H is true leaks one bit through
// whether control ever continues past the region. Laminar (like the
// paper's system) does NOT close this channel — the test documents the
// channel's existence and that the catch/fall-through machinery is not a
// defense against it, matching §4.3.3's discussion.
func TestTerminationChannelDocumented(t *testing.T) {
	_, main := newVM(t)
	h, _ := main.CreateTag()
	hLabels := difc.Labels{S: difc.NewLabel(h)}

	// H = false: the region terminates and control continues — the
	// observer learns H is false. (With H = true the region would spin
	// forever; we run it under a watchdog to document the behaviour
	// without hanging the suite.)
	var H *Object
	main.Secure(hLabels, difc.EmptyCapSet, func(r *Region) {
		H = r.Alloc(nil)
		r.Set(H, "v", false)
	}, nil)

	done := make(chan struct{})
	go func() {
		main.Secure(hLabels, difc.EmptyCapSet, func(r *Region) {
			for r.Get(H, "v").(bool) {
				// while (true) {} — the Figure 6 loop
			}
		}, func(r *Region, e any) {})
		close(done)
	}()
	select {
	case <-done:
		// Control continued: the unprivileged observer now knows H was
		// false. That is the termination channel, present by design.
	case <-time.After(5 * time.Second):
		t.Fatal("region with H=false failed to terminate")
	}
}

// TestMemoizationIncompatibility encodes §4.6: a library that memoizes
// results without regard for labels breaks under any DIFC system. A
// function memoizes into a labeled object from a region with one label; a
// later call from a differently-labeled region is (correctly) stopped
// from returning the memoized value.
func TestMemoizationIncompatibility(t *testing.T) {
	_, main := newVM(t)
	a, _ := main.CreateTag()
	b, _ := main.CreateTag()

	// The "library" cache: memoized inside an {S(a)} region, so the cache
	// object carries {S(a)}.
	var cache *Object
	expensive := func(r *Region, x int) int { return x * x }
	main.Secure(difc.Labels{S: difc.NewLabel(a)}, difc.EmptyCapSet, func(r *Region) {
		cache = r.Alloc(nil)
		r.Set(cache, "42", expensive(r, 42))
	}, nil)

	// A later call from an {S(b)} region tries to reuse the memo: the
	// read barrier rejects it (S(a) ⊄ S(b)), exactly the §4.6 failure.
	caught := false
	main.Secure(difc.Labels{S: difc.NewLabel(b)}, difc.EmptyCapSet, func(r *Region) {
		_ = r.Get(cache, "42")
		t.Error("memoized secret crossed labels")
	}, func(r *Region, e any) { caught = true })
	if !caught {
		t.Error("no violation for cross-label memo reuse")
	}
}

// TestConcurrentRegionsStress runs many goroutine-bound threads entering
// regions over shared labeled objects concurrently, exercising the
// paper's headline multithreading claim under the race detector.
func TestConcurrentRegionsStress(t *testing.T) {
	vm, main := newVM(t)
	const nThreads = 8
	const nOps = 200

	tags := make([]difc.Tag, nThreads)
	objs := make([]*Object, nThreads)
	threads := make([]*Thread, nThreads)
	for i := 0; i < nThreads; i++ {
		tag, err := main.CreateTag()
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tag
		main.Secure(difc.Labels{S: difc.NewLabel(tag)}, difc.EmptyCapSet, func(r *Region) {
			objs[i] = r.Alloc(nil)
			r.Set(objs[i], "n", 0)
		}, nil)
	}
	// Each thread gets plus capabilities for two adjacent tags.
	for i := 0; i < nThreads; i++ {
		keep := []capKeep{{tags[i]}, {tags[(i+1)%nThreads]}}
		th, err := main.Fork(keepCaps(keep))
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
	}

	errs := make(chan error, nThreads)
	for i := 0; i < nThreads; i++ {
		i := i
		go func() {
			th := threads[i]
			for op := 0; op < nOps; op++ {
				target := i
				if op%2 == 1 {
					target = (i + 1) % nThreads
				}
				err := th.Secure(difc.Labels{S: difc.NewLabel(tags[target])}, difc.EmptyCapSet, func(r *Region) {
					n := r.Get(objs[target], "n").(int)
					r.Set(objs[target], "n", n+1)
				}, nil)
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < nThreads; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Each object was incremented by its owner and its left neighbor:
	// 2 × nOps/2 increments each. (Increments are not atomic across
	// regions — the mutex serializes the field map, not the read-modify-
	// write — so just check the objects remain readable and labeled.)
	total := 0
	for i := 0; i < nThreads; i++ {
		main.Secure(difc.Labels{S: difc.NewLabel(tags[i])}, difc.EmptyCapSet, func(r *Region) {
			total += r.Get(objs[i], "n").(int)
		}, nil)
	}
	if total == 0 {
		t.Error("no increments landed")
	}
	if vm.Stats().RegionsEntered.Load() < nThreads*nOps {
		t.Errorf("regions entered = %d", vm.Stats().RegionsEntered.Load())
	}
}

// capKeep/keepCaps are small helpers for building fork keep-sets.
type capKeep struct{ tag difc.Tag }

func keepCaps(ks []capKeep) []kernel.Capability {
	out := make([]kernel.Capability, len(ks))
	for i, k := range ks {
		out[i] = kernel.Capability{Tag: k.tag, Kind: difc.CapPlus}
	}
	return out
}
