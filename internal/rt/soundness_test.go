package rt

import (
	"fmt"
	"math/rand"
	"testing"

	"laminar/internal/difc"
)

// Soundness fuzz: a randomized end-to-end check of the system's core
// security property. The harness mirrors every value with ground-truth
// *provenance* — the set of secrecy tags whose data influenced it — and
// lets random region code copy values between labeled objects, declassify
// through CopyAndLabel, and write to an unlabeled sink. The invariant:
//
//	any provenance tag on a value observed in the unlabeled sink must
//	have been authorized by a CopyAndLabel under a held minus capability.
//
// The runtime never sees the provenance; if its label checks are sound,
// the invariant holds no matter what the random program does.

// tracked pairs a payload with its ground-truth provenance.
type tracked struct {
	payload    int
	provenance difc.Label
}

func TestSoundnessFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		runSoundnessTrial(t, rng, trial)
	}
}

func runSoundnessTrial(t *testing.T, rng *rand.Rand, trial int) {
	_, main := newVM(t)
	const nTags = 3
	const nObjs = 6

	tags := make([]difc.Tag, nTags)
	for i := range tags {
		tag, err := main.CreateTag()
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tag
	}
	// Drop some minus capabilities permanently: those tags can never be
	// declassified in this trial.
	declassifiable := map[difc.Tag]bool{}
	for i, tag := range tags {
		if rng.Intn(2) == 0 {
			if err := main.DropCapability(tag, difc.CapMinus); err != nil {
				t.Fatal(err)
			}
		} else {
			declassifiable[tag] = true
		}
		_ = i
	}

	// Labeled objects with random single- or double-tag labels, each
	// seeded with a secret whose provenance is the object's label.
	objs := make([]*Object, nObjs)
	objLabels := make([]difc.Label, nObjs)
	for i := range objs {
		l := difc.NewLabel(tags[rng.Intn(nTags)])
		if rng.Intn(3) == 0 {
			l = l.Add(tags[rng.Intn(nTags)])
		}
		objLabels[i] = l
		err := main.Secure(difc.Labels{S: l}, difc.EmptyCapSet, func(r *Region) {
			o := r.Alloc(nil)
			r.Set(o, "v", tracked{payload: i * 100, provenance: l})
			objs[i] = o
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}

	sink := NewObject() // the unlabeled world
	sinkWrites := []tracked{}

	// Random operation stream.
	for op := 0; op < 120; op++ {
		switch rng.Intn(3) {
		case 0:
			// Copy src into dst inside a region carrying dst's label.
			// Legal exactly when src's label ⊆ dst's: the region can
			// then read src and write dst. Otherwise the read barrier
			// must refuse (src is above the region).
			src, dst := rng.Intn(nObjs), rng.Intn(nObjs)
			legal := objLabels[src].SubsetOf(objLabels[dst])
			violated := false
			main.Secure(difc.Labels{S: objLabels[dst]}, difc.EmptyCapSet, func(r *Region) {
				v := r.Get(objs[src], "v").(tracked)
				w := r.Get(objs[dst], "v").(tracked)
				merged := tracked{
					payload:    v.payload + w.payload,
					provenance: v.provenance.Union(w.provenance),
				}
				r.Set(objs[dst], "v", merged)
			}, func(r *Region, e any) { violated = true })
			if legal && violated {
				t.Fatalf("trial %d op %d: legal copy refused", trial, op)
			}
			if !legal && !violated {
				t.Fatalf("trial %d op %d: illegal copy permitted", trial, op)
			}
		case 1:
			// Attempt to declassify a random object's value to the sink
			// via CopyAndLabel in a nested empty region, holding
			// whatever minus capabilities the thread still has. The
			// runtime decides; on success the harness records the write.
			src := rng.Intn(nObjs)
			l := objLabels[src]
			main.Secure(difc.Labels{S: l}, main.Caps(), func(r *Region) {
				v := r.Get(objs[src], "v").(tracked)
				err := main.Secure(difc.Labels{}, main.Caps(), func(r2 *Region) {
					cp := r2.CopyAndLabel(objs[src], difc.Labels{})
					got := r2.Get(cp, "v").(tracked)
					r2.Set(sink, fmt.Sprintf("w%d", len(sinkWrites)), got)
					sinkWrites = append(sinkWrites, got)
				}, nil)
				_ = err // entry failure = declassification refused: fine
				_ = v
			}, func(r *Region, e any) {
				t.Fatalf("trial %d op %d: unexpected violation: %v", trial, op, e)
			})
		case 2:
			// Direct leak attempt: write a labeled value straight to the
			// sink from inside the labeled region. Must always violate
			// (and the harness must not record it).
			src := rng.Intn(nObjs)
			violated := false
			main.Secure(difc.Labels{S: objLabels[src]}, difc.EmptyCapSet, func(r *Region) {
				v := r.Get(objs[src], "v").(tracked)
				r.Set(sink, "leak", v)
			}, func(r *Region, e any) { violated = true })
			if !violated {
				t.Fatalf("trial %d op %d: direct leak not stopped", trial, op)
			}
			if sink.RawGet("leak") != nil {
				t.Fatalf("trial %d op %d: leak value reached the sink", trial, op)
			}
		}
	}

	// The invariant: every tag in every sink write's provenance was
	// declassifiable (its minus capability was held).
	for i, w := range sinkWrites {
		for _, tag := range w.provenance.Tags() {
			if !declassifiable[tag] {
				t.Fatalf("trial %d: sink write %d carries provenance %v but %v was never declassifiable",
					trial, i, w.provenance, tag)
			}
		}
	}
}
