package rt

import (
	"fmt"

	"laminar/internal/difc"
)

// Labeled statics — the production extension sketched in §5.1: "A
// production implementation could support labeling statics with modest
// overhead because static accesses are relatively infrequent compared to
// field and array element accesses." With VM.LabeledStatics enabled, a
// static variable carries an immutable label pair fixed at first
// definition, and region accesses are checked by the ordinary flow rules
// instead of the prototype's blanket restrictions (no reads under
// integrity labels, no writes under secrecy labels).
//
// The prototype rules remain the default; the ablation and tests exercise
// both modes.

// labeledStatic pairs a value with its immutable label.
type labeledStatic struct {
	value  any
	labels difc.Labels
}

// EnableLabeledStatics switches the VM's statics table to labeled mode
// (the production design). Must be called before any statics are used.
func (vm *VM) EnableLabeledStatics() { vm.labeledStatics = true }

// DefineStatic creates a labeled static variable with the given labels
// and initial value. Requires labeled-statics mode. Like object labels,
// static labels are immutable once defined (§4.5).
func (vm *VM) DefineStatic(name string, labels difc.Labels, value any) error {
	if !vm.labeledStatics {
		return fmt.Errorf("rt: DefineStatic requires labeled-statics mode")
	}
	vm.statics.mu.Lock()
	defer vm.statics.mu.Unlock()
	if _, dup := vm.statics.m[name]; dup {
		return fmt.Errorf("rt: static %q already defined", name)
	}
	vm.statics.m[name] = &labeledStatic{value: value, labels: labels}
	return nil
}

// getStaticLabeled reads a labeled static under the flow rules.
func (r *Region) getStaticLabeled(name string) any {
	r.thread.vm.stats.ReadBarriers.Add(1)
	s := r.thread.vm.statics
	s.mu.RLock()
	entry, ok := s.m[name].(*labeledStatic)
	s.mu.RUnlock()
	if !ok {
		// Undefined statics read as unlabeled nil, like the prototype.
		return nil
	}
	r.check("static-read", difc.CheckFlow("read", entry.labels, r.labels))
	return entry.value
}

// setStaticLabeled writes a labeled static under the flow rules.
func (r *Region) setStaticLabeled(name string, v any) {
	r.thread.vm.stats.WriteBarriers.Add(1)
	s := r.thread.vm.statics
	s.mu.Lock()
	entry, ok := s.m[name].(*labeledStatic)
	if !ok {
		// Implicit definition with the region's labels at first write —
		// the static analogue of allocation-time labeling.
		s.m[name] = &labeledStatic{value: v, labels: r.labels}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	r.check("static-write", difc.CheckFlow("write", r.labels, entry.labels))
	s.mu.Lock()
	entry.value = v
	s.mu.Unlock()
}

// outside-region labeled-static access: the static must be unlabeled.
func (t *Thread) getStaticLabeledOutside(name string) any {
	s := t.vm.statics
	s.mu.RLock()
	entry, ok := s.m[name].(*labeledStatic)
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	if !entry.labels.IsEmpty() {
		panic(&Violation{Op: "static-read", Err: fmt.Errorf("labeled static %q accessed outside a security region", name)})
	}
	return entry.value
}

func (t *Thread) setStaticLabeledOutside(name string, v any) {
	s := t.vm.statics
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.m[name].(*labeledStatic)
	if !ok {
		s.m[name] = &labeledStatic{value: v}
		return
	}
	if !entry.labels.IsEmpty() {
		panic(&Violation{Op: "static-write", Err: fmt.Errorf("labeled static %q accessed outside a security region", name)})
	}
	entry.value = v
}
