package rt

import (
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

// Thread is a VM-level principal: a kernel task plus the VM's cached view
// of its labels and capabilities. Threads are the only principals in
// Laminar (§4.2); outside security regions a thread always has empty
// labels, and all access to labeled data must happen inside a region.
//
// A Thread must be driven by one goroutine at a time, exactly as a Java
// thread has one execution context. The VM caches the thread's
// capabilities so barrier checks inside regions avoid kernel round trips
// (§5.1: "the JVM then caches a copy of the current capabilities").
type Thread struct {
	vm   *VM
	task *kernel.Task

	// region is the innermost active security region (nil outside).
	region *Region

	// caps caches the thread's base capability set (kernel authoritative).
	caps difc.CapSet

	// kernelSynced records whether the kernel task currently carries this
	// thread's effective labels; labels are pushed lazily, before the
	// first syscall in a region (§4.4 optimization).
	kernelSynced bool
}

// VM returns the runtime that owns the thread.
func (t *Thread) VM() *VM { return t.vm }

// Task exposes the underlying kernel task (tests and trusted setup only).
func (t *Thread) Task() *kernel.Task { return t.task }

// Labels reports the thread's current effective labels: the innermost
// region's labels, or empty outside regions.
func (t *Thread) Labels() difc.Labels {
	if t.region != nil {
		return t.region.labels
	}
	return difc.Labels{}
}

// Caps reports the thread's current effective capability set: inside a
// region, the region's capability subset; outside, the thread's base set.
func (t *Thread) Caps() difc.CapSet {
	if t.region != nil {
		return t.region.caps
	}
	return t.caps
}

// InRegion reports whether the thread is executing inside a security
// region. This is the check a dynamic barrier performs on every access.
func (t *Thread) InRegion() bool {
	t.vm.stats.DynamicChecks.Add(1)
	return t.region != nil
}

// Region returns the innermost active region, or nil.
func (t *Thread) Region() *Region { return t.region }

// Fork spawns a new VM thread from t. keep restricts the capabilities the
// child inherits (nil = all of the thread's base capabilities); the child
// principal's capabilities are always a subset of its parent's (§4.4).
// Forking inside a security region is rejected: the paper's hierarchy
// creates threads from stable principal states.
func (t *Thread) Fork(keep []kernel.Capability) (*Thread, error) {
	if t.region != nil {
		return nil, fmt.Errorf("rt: fork inside a security region")
	}
	task, err := t.vm.k.Fork(t.task, keep)
	if err != nil {
		return nil, err
	}
	return &Thread{vm: t.vm, task: task, caps: t.vm.mod.TaskCaps(task)}, nil
}

// Exit terminates the thread's kernel task.
func (t *Thread) Exit() {
	t.vm.k.Exit(t.task)
}

// CreateTag allocates a fresh tag via alloc_tag; the thread gains both
// capabilities (Figure 2's createAndAddCapability outside a region).
func (t *Thread) CreateTag() (difc.Tag, error) {
	tag, err := t.vm.k.AllocTag(t.task)
	if err != nil {
		return difc.InvalidTag, err
	}
	t.caps = t.caps.Grant(tag, difc.CapBoth)
	return tag, nil
}

// DropCapability permanently removes a capability from the thread's base
// set (removeCapability with global=true, outside regions).
func (t *Thread) DropCapability(tag difc.Tag, kind difc.CapKind) error {
	if err := t.vm.k.DropCapabilities(t.task, []kernel.Capability{{Tag: tag, Kind: kind}}, false); err != nil {
		return err
	}
	t.caps = t.caps.Drop(tag, kind)
	return nil
}

// GrantCapability installs a capability received out of band (login,
// trusted setup). Test and setup paths only — untrusted code gains
// capabilities exclusively through alloc_tag, fork and write_capability.
func (t *Thread) GrantCapability(tag difc.Tag, kind difc.CapKind) {
	t.vm.mod.GrantCapability(t.task, tag, kind)
	t.caps = t.caps.Grant(tag, kind)
}

// SendCapability transfers a capability to another principal over a pipe
// (write_capability).
func (t *Thread) SendCapability(c kernel.Capability, fd kernel.FD) error {
	t.ensureSynced()
	return t.vm.k.WriteCapability(t.task, c, fd)
}

// ReceiveCapability claims a capability queued on the pipe.
func (t *Thread) ReceiveCapability(fd kernel.FD) (kernel.Capability, error) {
	t.ensureSynced()
	c, err := t.vm.k.ReadCapability(t.task, fd)
	if err != nil {
		return c, err
	}
	t.caps = t.caps.Grant(c.Tag, c.Kind)
	return c, nil
}

// trySync pushes the thread's effective labels to its kernel task if they
// are stale, reporting failure to the caller (the tcb path can fail under
// injected faults, not just VM misconfiguration).
func (t *Thread) trySync() error {
	if t.kernelSynced {
		return nil
	}
	if err := t.vm.setKernelLabels(t, t.Labels()); err != nil {
		return err
	}
	t.kernelSynced = true
	return nil
}

// ensureSynced is trySync for call sites with no error path: a failed sync
// surfaces as a *Violation panic, which region machinery catches.
func (t *Thread) ensureSynced() {
	if err := t.trySync(); err != nil {
		panic(&Violation{Op: "set_task_label", Err: err})
	}
}

// Secure executes body inside a security region with the given labels and
// capabilities, implementing §4.3:
//
//   - Entry enforces SR ⊆ (Cp+ ∪ SP), IR ⊆ (Cp+ ∪ IP) and CR ⊆ CP; a
//     violation returns an error before body runs.
//   - body runs with the thread's labels and capabilities replaced by the
//     region's. Panics in body (including *Violation raised by barriers)
//     transfer to catch, which runs with the region's labels still in
//     force — the paper's mandatory secure/catch pairing that lets the
//     program restore invariants.
//   - All exceptions are suppressed, including panics inside catch;
//     control always continues after Secure (fall-through-only exit), so
//     code outside the region cannot observe which control path ran.
//   - On exit the thread's previous labels and capabilities return, via
//     the tcb thread when the thread lacks the minus capabilities.
//
// catch may be nil when the body cannot raise (the paper still requires
// the block syntactically; nil here means an empty catch block).
func (t *Thread) Secure(labels difc.Labels, caps difc.CapSet, body func(*Region), catch func(*Region, any)) error {
	cur := t.Labels()
	curCaps := t.Caps()
	if err := difc.CheckEnterRegion(cur, curCaps, labels, caps); err != nil {
		// A refused region entry is a denial like any other: record the
		// structured ChangeError (which names the violated condition and
		// the offending tags) before reporting it to the caller.
		t.vm.emit(Event{Kind: EvViolation, Thread: uint64(t.task.TID), Labels: labels, Op: "region-enter", Err: err})
		return fmt.Errorf("rt: cannot enter security region %v %v from %v %v: %w", labels, caps, cur, curCaps, err)
	}
	r := &Region{
		thread: t,
		// Region labels are one operand of every read/write barrier in the
		// region; interning them makes those SubsetOf checks hit the difc
		// flow cache.
		labels: difc.InternLabels(labels),
		caps:   caps,
		parent: t.region,
	}
	t.vm.stats.RegionsEntered.Add(1)
	t.vm.emit(Event{Kind: EvRegionEnter, Thread: uint64(t.task.TID), Labels: labels})
	start := now()
	prevSynced := t.kernelSynced
	t.region = r
	t.kernelSynced = false

	// The exit defer is installed BEFORE anything that can fail or panic
	// (including the eager entry sync below): whatever happens inside the
	// region — a panic with an arbitrary value, a *Violation, an injected
	// fault — this path runs and the thread leaves with the parent's VM
	// and kernel labels, or does not leave at all.
	defer func() {
		// Region exit: restore parent labels/caps. Globally dropped
		// capabilities stay dropped (handled by RemoveCapability). If the
		// kernel task was given the region's labels (a syscall happened,
		// or eager mode), it must be reset to the parent labels now — the
		// tcb path handles tags the thread cannot drop itself.
		syncedInRegion := t.kernelSynced
		t.region = r.parent
		// Budget charge (ISSUE 10): leaving the region is THE commit
		// point where every secrecy tag the region held and the parent
		// context lacks stops protecting the thread's effects — the
		// declassification the paper's nested-declassify pattern
		// (Figure 7) builds on. Charge each such tag one unit (local
		// context, peer 0) BEFORE the label restore runs; the restore
		// itself (SetLabelTCB via trySync) is deliberately uncharged so
		// the exit bills once. Exhaustion fails closed exactly like a
		// failed restore: the thread cannot legally exist outside the
		// region, so it dies here.
		if led := t.vm.k.Budget(); led != nil {
			if dropped := r.labels.S.Minus(t.Labels().S); !dropped.IsEmpty() {
				if err := led.ChargeLabel("region_exit", dropped, 0, 1); err != nil {
					if rec := t.vm.k.Telemetry(); rec != nil && rec.Active() {
						rec.EmitDeny(telemetry.LayerBudget, "rt.Secure.exit", "region_exit",
							uint64(t.task.TID), t.task.Proc, err)
					}
					t.vm.emit(Event{Kind: EvViolation, Thread: uint64(t.task.TID), Labels: labels, Err: err})
					t.vm.k.Exit(t.task)
				}
			}
		}
		if syncedInRegion || t.vm.EagerSync {
			t.kernelSynced = false
			if err := t.trySync(); err != nil {
				// The kernel task may still carry the region's labels and
				// the restore path is gone. Fail closed: kill the
				// principal rather than let it keep running with labels
				// it could not legally hold outside the region.
				t.vm.emit(Event{Kind: EvViolation, Thread: uint64(t.task.TID), Labels: labels, Err: err})
				t.vm.k.Exit(t.task)
			}
		} else {
			t.kernelSynced = prevSynced
		}
		if r.parent == nil {
			t.vm.stats.RegionNanos.Add(int64(now().Sub(start)))
		}
		t.vm.emit(Event{Kind: EvRegionExit, Thread: uint64(t.task.TID), Labels: labels})
	}()

	if t.vm.EagerSync {
		if err := t.trySync(); err != nil {
			// Entry sync failed before body ran: report the failure; the
			// deferred exit path above restores the parent state.
			return fmt.Errorf("rt: security region entry label sync: %w", err)
		}
	}

	func() {
		defer func() {
			if e := recover(); e != nil {
				// Exception inside the region: run the catch block with
				// the region's labels, then suppress everything —
				// including panics from catch itself (§4.3.3).
				if catch != nil {
					func() {
						defer func() { recover() }()
						catch(r, e)
					}()
				}
			}
		}()
		body(r)
	}()
	return nil
}
