package kernel

// Concurrency test battery for the sharded kernel (run under -race).
//
// The storms here are the proof obligations of the fine-grained locking
// refactor: N tasks issue overlapping syscalls of every family — open,
// read, write, seek, unlink, mkdir, readdir, stat, pipe, socketpair,
// send/recv, listen/connect/accept, dup, fork, kill, exit, label change —
// and the battery checks that
//
//   - nothing deadlocks (a watchdog converts a hang into a stack dump),
//   - no update is lost: every task's private files hold exactly the
//     bytes it wrote, and no byte materializes in a shared pipe that no
//     writer sent,
//   - the task table stays consistent through fork/exit churn, and
//   - security denials are fail-closed and identical to a serial run:
//     the same deterministic per-task scripts produce byte-identical
//     per-task outcome traces on the sharded and the big-lock kernel.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"laminar/internal/difc"
)

// stormTimeout bounds every storm; a sharded-lock deadlock shows up as a
// watchdog failure with full goroutine stacks rather than a test-binary
// timeout with no attribution.
const stormTimeout = 2 * time.Minute

// waitOrDeadlock waits for the storm to drain or fails with all stacks.
func waitOrDeadlock(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(stormTimeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("storm deadlocked (no progress in %v); goroutine dump:\n%s", stormTimeout, buf[:n])
	}
}

// TestSyscallStormRace is the flagship storm: every syscall family, from
// many tasks at once, against one sharded kernel. Each task works mostly
// in a private directory (whose final contents are verified byte-exact)
// and also pokes the shared namespaces — the listener table, neighbor fd
// tables via DupTo, neighbor children via Kill — to drive cross-task lock
// paths.
func TestSyscallStormRace(t *testing.T) {
	const (
		nTasks = 12
		nOps   = 250
	)
	k := New()
	init := k.InitTask()
	if err := k.Mkdir(init, "/tmp/storm", 0o755); err != nil {
		t.Fatal(err)
	}
	tasks := make([]*Task, nTasks)
	for i := range tasks {
		task, err := k.Spawn(init, nil)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}

	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := tasks[i]
			rng := rand.New(rand.NewSource(int64(i)))
			dir := fmt.Sprintf("/tmp/storm/t%d", i)
			if err := k.Mkdir(task, dir, 0o755); err != nil {
				t.Errorf("task %d: mkdir: %v", i, err)
				return
			}
			if err := k.Listen(task, fmt.Sprintf("storm%d", i)); err != nil {
				t.Errorf("task %d: listen: %v", i, err)
				return
			}
			for op := 0; op < nOps; op++ {
				switch rng.Intn(10) {
				case 0, 1: // private create/write/read round trip
					path := fmt.Sprintf("%s/f%d", dir, op)
					fd, err := k.Open(task, path, ORead|OWrite|OCreate)
					if err != nil {
						t.Errorf("task %d: open %s: %v", i, path, err)
						continue
					}
					payload := []byte(fmt.Sprintf("t%d-op%d", i, op))
					if _, err := k.Write(task, fd, payload); err != nil {
						t.Errorf("task %d: write: %v", i, err)
					}
					if err := k.Seek(task, fd, 0); err != nil {
						t.Errorf("task %d: seek: %v", i, err)
					}
					buf := make([]byte, len(payload))
					if n, err := k.Read(task, fd, buf); err != nil || string(buf[:n]) != string(payload) {
						t.Errorf("task %d: read back %q, %v (want %q)", i, buf[:n], err, payload)
					}
					k.Close(task, fd)
				case 2: // stat + readdir, own dir and shared parents
					k.Stat(task, dir)
					k.Stat(task, "/tmp/storm")
					k.ReadDir(task, dir)
				case 3: // unlink something previously created (may be gone)
					k.Unlink(task, fmt.Sprintf("%s/f%d", dir, rng.Intn(op+1)))
				case 4: // private pipe round trip
					rfd, wfd, err := k.Pipe(task)
					if err != nil {
						t.Errorf("task %d: pipe: %v", i, err)
						continue
					}
					if _, err := k.Write(task, wfd, []byte("ping")); err != nil {
						t.Errorf("task %d: pipe write: %v", i, err)
					}
					buf := make([]byte, 8)
					if n, err := k.Read(task, rfd, buf); err != nil || string(buf[:n]) != "ping" {
						t.Errorf("task %d: pipe read %q, %v", i, buf[:n], err)
					}
					k.Close(task, rfd)
					k.Close(task, wfd)
				case 5: // socketpair send/recv
					a, b, err := k.Socketpair(task)
					if err != nil {
						t.Errorf("task %d: socketpair: %v", i, err)
						continue
					}
					k.Send(task, a, []byte("sp"))
					buf := make([]byte, 4)
					if n, err := k.Recv(task, b, buf); err != nil || string(buf[:n]) != "sp" {
						t.Errorf("task %d: recv %q, %v", i, buf[:n], err)
					}
					k.Close(task, a)
					k.Close(task, b)
				case 6: // connect to a random peer's listener; accept own queue
					k.Connect(task, fmt.Sprintf("storm%d", rng.Intn(nTasks)))
					if fd, err := k.Accept(task, fmt.Sprintf("storm%d", i)); err == nil {
						k.Close(task, fd)
					}
				case 7: // dup a pipe end into the neighbor's fd table
					rfd, wfd, err := k.Pipe(task)
					if err != nil {
						continue
					}
					k.DupTo(task, rfd, tasks[(i+1)%nTasks])
					k.Close(task, rfd)
					k.Close(task, wfd)
				case 8: // fork/exit churn, plus signaling the child
					child, err := k.Fork(task, nil)
					if err != nil {
						t.Errorf("task %d: fork: %v", i, err)
						continue
					}
					if rng.Intn(2) == 0 {
						k.Kill(task, child.TID, 9)
					}
					k.Exit(child)
				default: // label-change syscalls (no-op module side, full lock path)
					k.SetTaskLabel(task, Secrecy, difc.EmptyLabel)
				}
			}
		}(i)
	}
	waitOrDeadlock(t, &wg)

	// Post-storm sweep: every surviving private file must hold exactly the
	// bytes its owner wrote — a torn or lost update under contention would
	// surface as a mismatch here.
	for i := range tasks {
		dir := fmt.Sprintf("/tmp/storm/t%d", i)
		names, err := k.ReadDir(init, dir)
		if err != nil {
			t.Fatalf("readdir %s: %v", dir, err)
		}
		for _, name := range names {
			path := dir + "/" + name
			fd, err := k.Open(init, path, ORead)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				continue
			}
			buf := make([]byte, 64)
			n, err := k.Read(init, fd, buf)
			k.Close(init, fd)
			var idx int
			want := ""
			if _, serr := fmt.Sscanf(name, "f%d", &idx); serr == nil {
				want = fmt.Sprintf("t%d-op%d", i, idx)
			}
			if err != nil || string(buf[:n]) != want {
				t.Errorf("%s holds %q, %v (want %q)", path, buf[:n], err, want)
			}
		}
	}
}

// TestStormPipeIntegrity drives one shared pipe from many writers while a
// reader drains it. Pipe writes are all-or-nothing (a full buffer drops
// the whole message, §5.2), so conservation must hold per message: every
// chunk the reader sees is byte-identical to a chunk some writer sent, and
// no writer's chunks arrive more often than it wrote them.
func TestStormPipeIntegrity(t *testing.T) {
	const (
		nWriters  = 8
		perWriter = 400
		chunk     = 16
	)
	k := New()
	init := k.InitTask()
	rfd, wfd, err := k.Pipe(init)
	if err != nil {
		t.Fatal(err)
	}
	writers := make([]*Task, nWriters)
	wfds := make([]FD, nWriters)
	for i := range writers {
		task, err := k.Spawn(init, nil)
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = task
		dup, err := k.DupTo(init, wfd, task)
		if err != nil {
			t.Fatal(err)
		}
		wfds[i] = dup
	}

	var wg sync.WaitGroup
	var wrote [nWriters]atomic.Int64
	for i := range writers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := make([]byte, chunk)
			for j := range payload {
				payload[j] = byte('A' + i)
			}
			for n := 0; n < perWriter; n++ {
				if _, err := k.Write(writers[i], wfds[i], payload); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
				wrote[i].Add(1)
			}
		}(i)
	}

	var got [nWriters]int64
	var torn int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, chunk)
		idle := 0
		for idle < 1000 {
			n, err := k.Read(init, rfd, buf)
			if errors.Is(err, ErrAgain) || n == 0 {
				idle++
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			idle = 0
			if n != chunk {
				torn++
				continue
			}
			w := int(buf[0] - 'A')
			if w < 0 || w >= nWriters {
				torn++
				continue
			}
			for _, b := range buf[:n] {
				if b != buf[0] {
					torn++
					w = -1
					break
				}
			}
			if w >= 0 {
				got[w]++
			}
		}
	}()
	waitOrDeadlock(t, &wg)

	if torn != 0 {
		t.Errorf("reader observed %d torn/foreign chunks", torn)
	}
	for i := range got {
		if got[i] > wrote[i].Load() {
			t.Errorf("writer %d: read %d chunks but only %d were written", i, got[i], wrote[i].Load())
		}
	}
}

// TestForkExitChurnTaskTable hammers the sharded task table: concurrent
// forks, exits and cross-goroutine kills, then checks the table holds
// exactly the tasks that were left alive.
func TestForkExitChurnTaskTable(t *testing.T) {
	const (
		nWorkers = 8
		rounds   = 300
	)
	k := New()
	init := k.InitTask()
	var survivors sync.Map // TID -> struct{}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				child, err := k.Spawn(init, nil)
				if err != nil {
					t.Errorf("worker %d: spawn: %v", w, err)
					return
				}
				if rng.Intn(4) != 0 {
					k.Exit(child)
				} else {
					survivors.Store(child.TID, struct{}{})
				}
			}
		}(w)
	}
	waitOrDeadlock(t, &wg)

	survivors.Range(func(key, _ any) bool {
		tid := key.(TID)
		task, err := k.Task(tid)
		if err != nil {
			t.Errorf("survivor %d vanished from the task table: %v", tid, err)
			return true
		}
		if task.Exited() {
			t.Errorf("survivor %d is marked exited", tid)
		}
		return true
	})
	// Every task left in the table must be either init or a survivor.
	count := 0
	k.taskRange(func(task *Task) {
		count++
		if task.TID == 1 {
			return
		}
		if _, ok := survivors.Load(task.TID); !ok {
			t.Errorf("task %d in table but neither init nor survivor", task.TID)
		}
	})
	want := 1
	survivors.Range(func(_, _ any) bool { want++; return true })
	if count != want {
		t.Errorf("task table holds %d tasks, want %d", count, want)
	}
}

// Deterministic deny tags for tagModule: a file created with denyReadTag
// in its secrecy label refuses reads, denyWriteTag refuses writes.
const (
	denyReadTag  difc.Tag = 1
	denyWriteTag difc.Tag = 2
)

// tagModule is a deliberately tiny SecurityModule whose denials depend
// only on durable state (the labels frozen into the inode's security
// blob at creation), never on timing: denyReadTag forbids reads (with
// the fail-closed ErrAccessRead marker, so path syscalls report ENOENT)
// and denyWriteTag forbids writes. State-only rules make per-task
// outcome traces deterministic under any interleaving, which is what
// lets the denial-equivalence storm compare sharded runs against serial
// ones byte for byte.
type tagModule struct{}

func (tagModule) Name() string                               { return "tag-test" }
func (tagModule) TaskAlloc(_, _ *Task, _ []Capability) error { return nil }
func (tagModule) TaskFree(*Task)                             {}

func (tagModule) InodeInitSecurity(_ *Task, _, ino *Inode, labels *difc.Labels) error {
	if labels != nil {
		// Attached pre-publish and immutable afterwards, so permission
		// hooks read it without locks — the same discipline as the lsm.
		ino.Security = *labels
	}
	return nil
}

func (tagModule) InodePostCreate(*Task, *Inode, *Inode) error { return nil }

func (tagModule) InodePermission(_ *Task, ino *Inode, mask AccessMask) error {
	return tagPermission(ino, mask)
}

func (tagModule) FilePermission(_ *Task, f *File, mask AccessMask) error {
	return tagPermission(f.Inode, mask)
}

func tagPermission(ino *Inode, mask AccessMask) error {
	labels, ok := ino.Security.(difc.Labels)
	if !ok {
		return nil
	}
	if mask&(MayRead|MayUnlink) != 0 && labels.S.Has(denyReadTag) {
		return fmt.Errorf("%w: deny-read tag set", ErrAccessRead)
	}
	if mask&MayWrite != 0 && labels.S.Has(denyWriteTag) {
		return fmt.Errorf("%w: deny-write tag set", ErrAccess)
	}
	return nil
}

func (tagModule) MmapFile(*Task, *Inode, int) error                { return nil }
func (tagModule) TaskKill(*Task, *Task, Signal) error              { return nil }
func (tagModule) AllocTag(*Task) (difc.Tag, error)                 { return difc.InvalidTag, ErrNoSys }
func (tagModule) SetTaskLabel(*Task, LabelType, difc.Label) error  { return nil }
func (tagModule) DropLabelTCB(*Task, *Task) error                  { return nil }
func (tagModule) DropCapabilities(*Task, []Capability, bool) error { return nil }
func (tagModule) RestoreCapabilities(*Task) error                  { return nil }
func (tagModule) WriteCapability(*Task, Capability, *File) error   { return nil }
func (tagModule) ReadCapability(*Task, *File) (Capability, error) {
	return Capability{}, ErrNoSys
}

// denialScript runs one task's deterministic mixed-permission script and
// returns its outcome trace. Each task works only in its own directory,
// so the trace depends on nothing another task does.
func denialScript(k *Kernel, task *Task, i int) []string {
	var trace []string
	record := func(op string, err error) {
		trace = append(trace, fmt.Sprintf("%s=%s", op, errname(err)))
	}
	dir := fmt.Sprintf("/tmp/denial/t%d", i)
	record("mkdir", k.Mkdir(task, dir, 0o755))
	classes := []difc.Labels{
		{},                               // free
		{S: difc.NewLabel(denyReadTag)},  // unreadable
		{S: difc.NewLabel(denyWriteTag)}, // unwritable
		{S: difc.NewLabel(denyReadTag).Union(difc.NewLabel(denyWriteTag))}, // sealed
	}
	for j := 0; j < 40; j++ {
		labels := classes[j%len(classes)]
		path := fmt.Sprintf("%s/f%d", dir, j)
		fd, err := k.CreateFileLabeled(task, path, 0o644, labels)
		record(fmt.Sprintf("create%d", j), err)
		if err == nil {
			// The create descriptor is write-only; the per-op hook decides.
			_, werr := k.Write(task, fd, []byte("x"))
			record(fmt.Sprintf("write%d", j), werr)
			k.Close(task, fd)
		}
		// Reopening triggers the open-time InodePermission check; a read
		// denial must be indistinguishable from a missing file.
		rfd, rerr := k.Open(task, path, ORead)
		record(fmt.Sprintf("open-r%d", j), rerr)
		if rerr == nil {
			buf := make([]byte, 4)
			_, rderr := k.Read(task, rfd, buf)
			record(fmt.Sprintf("read%d", j), rderr)
			k.Close(task, rfd)
		}
		wfd, werr := k.Open(task, path, OWrite)
		record(fmt.Sprintf("open-w%d", j), werr)
		if werr == nil {
			k.Close(task, wfd)
		}
		_, serr := k.Stat(task, path)
		record(fmt.Sprintf("stat%d", j), serr)
		if j%4 == 1 { // the unreadable one: unlink denial must be ENOENT
			record(fmt.Sprintf("unlink%d", j), k.Unlink(task, path))
		}
	}
	return trace
}

// errname collapses an error to its errno identity for trace comparison.
func errname(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNoEnt):
		return "ENOENT"
	case errors.Is(err, ErrAccessRead):
		return "EACCES-read"
	case errors.Is(err, ErrAccess):
		return "EACCES"
	case errors.Is(err, ErrPerm):
		return "EPERM"
	case errors.Is(err, ErrAgain):
		return "EAGAIN"
	case errors.Is(err, ErrExist):
		return "EEXIST"
	default:
		return err.Error()
	}
}

// runDenialStorm boots a kernel in the given lock mode, runs every task's
// script concurrently, and returns the per-task traces plus the kernel's
// hook-call count.
func runDenialStorm(t *testing.T, nTasks int, opts ...Option) ([][]string, uint64) {
	t.Helper()
	k := New(append([]Option{WithSecurityModule(tagModule{})}, opts...)...)
	init := k.InitTask()
	if err := k.Mkdir(init, "/tmp/denial", 0o755); err != nil {
		t.Fatal(err)
	}
	tasks := make([]*Task, nTasks)
	for i := range tasks {
		task, err := k.Spawn(init, nil)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	traces := make([][]string, nTasks)
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = denialScript(k, tasks[i], i)
		}(i)
	}
	waitOrDeadlock(t, &wg)
	return traces, k.HookCalls()
}

// TestStormDenialEquivalence runs identical deterministic per-task
// permission scripts concurrently on the sharded kernel and on the serial
// big-lock kernel and demands byte-identical outcome traces: every denial
// fail-closed, every read denial hidden as ENOENT, no denial appearing or
// vanishing because of the locking discipline. Hook-call counts must also
// match — the sharded kernel may not skip or duplicate a single check.
func TestStormDenialEquivalence(t *testing.T) {
	const nTasks = 8
	sharded, shardedHooks := runDenialStorm(t, nTasks)
	serial, serialHooks := runDenialStorm(t, nTasks, WithBigLock())
	for i := range sharded {
		if len(sharded[i]) != len(serial[i]) {
			t.Fatalf("task %d: trace length %d (sharded) vs %d (big lock)", i, len(sharded[i]), len(serial[i]))
		}
		for j := range sharded[i] {
			if sharded[i][j] != serial[i][j] {
				t.Errorf("task %d step %d: sharded %q != big lock %q", i, j, sharded[i][j], serial[i][j])
			}
		}
	}
	if shardedHooks != serialHooks {
		t.Errorf("hook calls: sharded %d != big lock %d", shardedHooks, serialHooks)
	}
	// Spot-check fail-closed shape: the 0o000 files must deny reads as
	// ENOENT on path ops (stat) and never grant; scan one task's trace.
	var sawHiddenStat bool
	for _, step := range sharded[0] {
		if step == "stat1=ENOENT" {
			sawHiddenStat = true
		}
	}
	if !sawHiddenStat {
		t.Errorf("expected stat of unreadable file to be hidden as ENOENT; trace: %v", sharded[0])
	}
}
