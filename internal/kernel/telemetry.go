package kernel

import (
	"errors"
	"time"

	"laminar/internal/difc"
	"laminar/internal/telemetry"
)

// telemetrySec decorates the security-module hook table with decision
// provenance: every hook invocation is counted, timed, and — when it
// denies — classified into a telemetry event naming the rule that fired
// and the offending tag delta (telemetry.DenyEvent). It is installed
// OUTERMOST, above the fault-injection wrapper (faultsec.go), so that
// fail-closed denials manufactured by injected faults are observed too.
//
// Cost discipline: hooks run with the acting task's syscall-entry lock
// held, so everything here must be cheap and lock-free. When the
// recorder is at LevelOff the wrapper adds exactly one atomic load per
// hook; timing, event construction and label interning happen only past
// that gate, and only the denial path ever allocates.
type telemetrySec struct {
	SecurityModule
	rec *telemetry.Recorder
}

// WithTelemetry installs a specific telemetry recorder. The default is
// the process-wide telemetry.Default; tests and the chaos harness pass
// private recorders so parallel kernels do not share flight rings.
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(k *Kernel) { k.tel = rec }
}

// WithoutTelemetry boots the kernel with no telemetry wrapper at all —
// not even the LevelOff gate. This is the uninstrumented baseline that
// laminar-bench -telemetry measures disabled-path overhead against.
func WithoutTelemetry() Option {
	return func(k *Kernel) { k.telOff = true }
}

// Telemetry returns the kernel's recorder (nil under WithoutTelemetry).
// The VM runtime emits its region/barrier provenance through it so one
// ring carries the whole stack's events.
func (k *Kernel) Telemetry() *telemetry.Recorder { return k.tel }

// wrapTelemetry decorates sec; must run after wrapFaulting so this
// wrapper is outermost.
func wrapTelemetry(k *Kernel) {
	if k.telOff {
		k.tel = nil
		return
	}
	if k.tel == nil {
		k.tel = telemetry.Default
	}
	if k.sec != nil {
		k.sec = &telemetrySec{SecurityModule: k.sec, rec: k.tel}
	}
}

// maskOp renders an access mask as the operation name provenance records.
func maskOp(mask AccessMask) string {
	switch mask {
	case MayRead:
		return "read"
	case MayWrite:
		return "write"
	case MayExec:
		return "exec"
	case MayUnlink:
		return "unlink"
	case MayRead | MayExec:
		return "read|exec"
	case MayRead | MayWrite:
		return "read|write"
	default:
		return "access"
	}
}

// observe wraps one hook invocation: site counter, latency histograms
// (the all-hooks one and the LSM layer slice), denial provenance, and
// (at LevelAll) allow events. Callers pass the acting task for TID
// attribution — nil means "no task" (boot paths) — and the inode number
// the check concerns (0 when none), which keys cross-hop trace stamping.
func (ts *telemetrySec) observe(site, op string, t *Task, ino uint64, fn func() error) error {
	if !ts.rec.Active() {
		return fn()
	}
	var tid, proc uint64
	if t != nil {
		tid, proc = uint64(t.TID), t.Proc
	}
	ts.rec.M.Hooks.Inc(site, tid)
	start := time.Now()
	err := fn()
	d := time.Since(start)
	ts.rec.M.HookLatency.Observe(d)
	ts.rec.M.ObserveLayer(telemetry.LayerLSM, d)
	if err != nil {
		ts.rec.Emit(denyEvent(site, op, tid, proc, ino, err))
	} else if ts.rec.Verbose() {
		ts.rec.Emit(telemetry.Event{Layer: telemetry.LayerLSM, Kind: telemetry.KindAllow,
			Op: op, Site: site, TID: tid, Proc: proc, Ino: ino})
	}
	return err
}

// denyEvent classifies a hook denial. Structured difc errors name their
// rule; denials that are I/O failures or injected kills — fail-closed,
// not policy — are marked RuleFault so replay knows there is no DIFC
// check behind them.
func denyEvent(site, op string, tid, proc, ino uint64, err error) telemetry.Event {
	e := telemetry.DenyEvent(telemetry.LayerLSM, site, op, tid, proc, err)
	e.Ino = ino
	if e.Rule == telemetry.RuleNone && (errors.Is(err, ErrIO) || errors.Is(err, ErrKilled)) {
		e.Rule = telemetry.RuleFault
	}
	return e
}

func (ts *telemetrySec) TaskAlloc(parent, child *Task, keep []Capability) error {
	return ts.observe("hook.TaskAlloc", "fork", parent, 0, func() error {
		return ts.SecurityModule.TaskAlloc(parent, child, keep)
	})
}

func (ts *telemetrySec) InodeInitSecurity(t *Task, dir, inode *Inode, labels *difc.Labels) error {
	return ts.observe("hook.InodeInitSecurity", "create", t, uint64(inode.Ino), func() error {
		return ts.SecurityModule.InodeInitSecurity(t, dir, inode, labels)
	})
}

func (ts *telemetrySec) InodePostCreate(t *Task, dir, inode *Inode) error {
	return ts.observe("hook.InodePostCreate", "create-persist", t, uint64(inode.Ino), func() error {
		return ts.SecurityModule.InodePostCreate(t, dir, inode)
	})
}

func (ts *telemetrySec) InodePermission(t *Task, inode *Inode, mask AccessMask) error {
	return ts.observe("hook.InodePermission", maskOp(mask), t, uint64(inode.Ino), func() error {
		return ts.SecurityModule.InodePermission(t, inode, mask)
	})
}

func (ts *telemetrySec) FilePermission(t *Task, f *File, mask AccessMask) error {
	return ts.observe("hook.FilePermission", maskOp(mask), t, uint64(f.Inode.Ino), func() error {
		return ts.SecurityModule.FilePermission(t, f, mask)
	})
}

func (ts *telemetrySec) MmapFile(t *Task, inode *Inode, prot int) error {
	return ts.observe("hook.MmapFile", "mmap", t, uint64(inode.Ino), func() error {
		return ts.SecurityModule.MmapFile(t, inode, prot)
	})
}

func (ts *telemetrySec) TaskKill(t *Task, target *Task, sig Signal) error {
	return ts.observe("hook.TaskKill", "signal", t, 0, func() error {
		return ts.SecurityModule.TaskKill(t, target, sig)
	})
}

func (ts *telemetrySec) AllocTag(t *Task) (difc.Tag, error) {
	var tag difc.Tag
	err := ts.observe("hook.AllocTag", "alloc_tag", t, 0, func() (e error) {
		tag, e = ts.SecurityModule.AllocTag(t)
		return
	})
	return tag, err
}

func (ts *telemetrySec) SetTaskLabel(t *Task, typ LabelType, l difc.Label) error {
	return ts.observe("hook.SetTaskLabel", "set_task_label", t, 0, func() error {
		return ts.SecurityModule.SetTaskLabel(t, typ, l)
	})
}

func (ts *telemetrySec) DropLabelTCB(t *Task, target *Task) error {
	return ts.observe("hook.DropLabelTCB", "drop_label_tcb", t, 0, func() error {
		return ts.SecurityModule.DropLabelTCB(t, target)
	})
}

func (ts *telemetrySec) DropCapabilities(t *Task, caps []Capability, tmp bool) error {
	return ts.observe("hook.DropCapabilities", "drop_capabilities", t, 0, func() error {
		return ts.SecurityModule.DropCapabilities(t, caps, tmp)
	})
}

func (ts *telemetrySec) RestoreCapabilities(t *Task) error {
	return ts.observe("hook.RestoreCapabilities", "restore_capabilities", t, 0, func() error {
		return ts.SecurityModule.RestoreCapabilities(t)
	})
}

func (ts *telemetrySec) WriteCapability(t *Task, cap Capability, f *File) error {
	return ts.observe("hook.WriteCapability", "write_capability", t, uint64(f.Inode.Ino), func() error {
		return ts.SecurityModule.WriteCapability(t, cap, f)
	})
}

func (ts *telemetrySec) ReadCapability(t *Task, f *File) (Capability, error) {
	var c Capability
	err := ts.observe("hook.ReadCapability", "read_capability", t, uint64(f.Inode.Ino), func() (e error) {
		c, e = ts.SecurityModule.ReadCapability(t, f)
		return
	})
	return c, err
}
