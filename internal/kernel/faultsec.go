package kernel

import (
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
)

// faultingModule wraps the registered SecurityModule so that every
// enforcement hook in the LSM table becomes a fault-injection point that
// fails closed: an injected Error denies the hooked operation, and an
// injected Crash kills the acting task mid-hook. A fault can therefore
// never grant access that policy would deny — the failure modes are
// "extra denial" and "task death", both safe.
//
// Privilege-shedding hooks (DropCapabilities, RestoreCapabilities,
// TaskFree) are deliberately NOT faultable: a failed drop would leave the
// caller holding capabilities it believes it shed, which fails open. The
// real system must make those paths infallible or terminate the task
// (DESIGN.md §8).
type faultingModule struct {
	SecurityModule
	k *Kernel
}

// wrapFaulting decorates sec when an injector is installed.
func wrapFaulting(k *Kernel) {
	if k.inj != nil && k.sec != nil {
		k.sec = &faultingModule{SecurityModule: k.sec, k: k}
	}
}

func (f *faultingModule) hookFault(site string, t *Task) error {
	switch f.k.inj.At("hook." + site) {
	case faultinject.Error:
		f.k.faultTrip("hook."+site, t, "error")
		return fmt.Errorf("%w: injected fault in hook %s", ErrIO, site)
	case faultinject.Crash:
		f.k.faultTrip("hook."+site, t, "crash")
		if t != nil && t.TID == 1 {
			return fmt.Errorf("%w: injected fault in hook %s", ErrIO, site)
		}
		if t != nil {
			f.k.killTaskHolding(t)
		}
		return ErrKilled
	default:
		return nil
	}
}

func (f *faultingModule) TaskAlloc(parent, child *Task, keep []Capability) error {
	if err := f.hookFault("TaskAlloc", parent); err != nil {
		return err
	}
	return f.SecurityModule.TaskAlloc(parent, child, keep)
}

func (f *faultingModule) InodeInitSecurity(t *Task, dir, inode *Inode, labels *difc.Labels) error {
	if err := f.hookFault("InodeInitSecurity", t); err != nil {
		return err
	}
	return f.SecurityModule.InodeInitSecurity(t, dir, inode, labels)
}

func (f *faultingModule) InodePostCreate(t *Task, dir, inode *Inode) error {
	if err := f.hookFault("InodePostCreate", t); err != nil {
		return err
	}
	return f.SecurityModule.InodePostCreate(t, dir, inode)
}

func (f *faultingModule) InodePermission(t *Task, inode *Inode, mask AccessMask) error {
	if err := f.hookFault("InodePermission", t); err != nil {
		return err
	}
	return f.SecurityModule.InodePermission(t, inode, mask)
}

func (f *faultingModule) FilePermission(t *Task, file *File, mask AccessMask) error {
	if err := f.hookFault("FilePermission", t); err != nil {
		return err
	}
	return f.SecurityModule.FilePermission(t, file, mask)
}

func (f *faultingModule) MmapFile(t *Task, inode *Inode, prot int) error {
	if err := f.hookFault("MmapFile", t); err != nil {
		return err
	}
	return f.SecurityModule.MmapFile(t, inode, prot)
}

func (f *faultingModule) TaskKill(t *Task, target *Task, sig Signal) error {
	if err := f.hookFault("TaskKill", t); err != nil {
		return err
	}
	return f.SecurityModule.TaskKill(t, target, sig)
}

func (f *faultingModule) SetTaskLabel(t *Task, typ LabelType, l difc.Label) error {
	// Denying a label change is safe in both directions: a refused raise
	// blocks the caller from reading up; a refused clear keeps taint.
	if err := f.hookFault("SetTaskLabel", t); err != nil {
		return err
	}
	return f.SecurityModule.SetTaskLabel(t, typ, l)
}

func (f *faultingModule) WriteCapability(t *Task, c Capability, file *File) error {
	if err := f.hookFault("WriteCapability", t); err != nil {
		return err
	}
	return f.SecurityModule.WriteCapability(t, c, file)
}

func (f *faultingModule) ReadCapability(t *Task, file *File) (Capability, error) {
	if err := f.hookFault("ReadCapability", t); err != nil {
		return Capability{}, err
	}
	return f.SecurityModule.ReadCapability(t, file)
}
