package kernel

import "laminar/internal/difc"

// Network socket endpoints. The cross-kernel labeled transport
// (internal/netlabel) moves bytes between Kernel instances over real TCP;
// on each kernel the application-visible object is an ordinary socket
// endpoint whose *peer* is the trusted transport rather than a local
// task. The transport plays the role of a NIC driver: it is inside the
// TCB, so its data movement (NetFeed/NetDrain) runs no security hooks —
// all policy fires at the application's Send/Recv, where the LSM checks
// the flow against the channel inode's labels exactly as for a local
// socketpair (§4.1: sockets are governed like pipes and files).
//
// Two creation paths exist, mirroring the two ends of a channel:
//
//   - NetSocket: the opening side. A local principal creates a labeled
//     endpoint, so the full labeled-create rule of §5.2 applies via
//     InodeInitSecurity with explicit labels (secrecy flow + capability
//     acquisition checks against the creator).
//   - NetSocketAdopted: the accepting side. No local principal creates
//     this inode — its labels arrive from the wire handshake — so the
//     trusted transport attaches the security blob itself (the module's
//     AdoptInodeLabels) before the endpoint is published. Whether any
//     local task may then read or write it is decided per operation by
//     the ordinary hooks.

// NetSocket creates one labeled socket endpoint for t and installs it.
// The explicit labels are checked by the module's labeled-create rule;
// the returned *File is the trusted transport's handle for NetFeed and
// NetDrain (the application only ever sees the FD).
func (k *Kernel) NetSocket(t *Task, labels difc.Labels) (FD, *File, error) {
	defer k.begin(t)()
	charge(workSocketSetup)
	if err := k.inject("socket.net", t); err != nil {
		return -1, nil, err
	}
	ino := newInode(TypePipe, 0o600)
	if k.sec != nil {
		k.hook()
		l := labels
		if err := k.sec.InodeInitSecurity(t, nil, ino, &l); err != nil {
			return -1, nil, err
		}
	}
	f := newNetEndpoint(ino)
	return t.installFD(f), f, nil
}

// SocketpairLabeled is Socketpair with explicit connection labels: both
// descriptors land in t, and the inode takes the given labels under the
// same labeled-create checks as NetSocket. The differential oracle uses
// it to replay a remote two-kernel flow through one in-process kernel.
func (k *Kernel) SocketpairLabeled(t *Task, labels difc.Labels) (FD, FD, error) {
	defer k.begin(t)()
	charge(workSocketSetup)
	ino := newInode(TypePipe, 0o600)
	if k.sec != nil {
		k.hook()
		l := labels
		if err := k.sec.InodeInitSecurity(t, nil, ino, &l); err != nil {
			return -1, -1, err
		}
	}
	ab := newPipeBuf()
	ba := newPipeBuf()
	a := &File{Inode: ino, Flags: ORead | OWrite, sock: &socketFile{readBuf: ba, writeBuf: ab}}
	b := &File{Inode: ino, Flags: ORead | OWrite, sock: &socketFile{readBuf: ab, writeBuf: ba}}
	return t.installFD(a), t.installFD(b), nil
}

// NetSocketAdopted creates an endpoint whose inode security blob is
// attached by trusted transport code: attach runs on the fresh inode
// before the endpoint can be seen by anything else, preserving the
// blobs-before-publication invariant of the sharded locking discipline
// (locking.go). No FD is installed — the channel may receive data before
// any local task accepts it; InstallFile publishes the descriptor later.
func (k *Kernel) NetSocketAdopted(attach func(*Inode)) *File {
	ino := newInode(TypePipe, 0o600)
	if attach != nil {
		attach(ino)
	}
	return newNetEndpoint(ino)
}

// InstallFile publishes f in t's descriptor table. Trusted-transport
// path: the netlabel Accept hands an adopted endpoint to the accepting
// task. Subsequent operations on the FD are fully checked.
func (k *Kernel) InstallFile(t *Task, f *File) FD {
	defer k.begin(t)()
	return t.installFD(f)
}

// newNetEndpoint builds a bidirectional endpoint whose peer is the
// transport: the transport feeds readBuf and drains writeBuf.
func newNetEndpoint(ino *Inode) *File {
	return &File{
		Inode: ino,
		Flags: ORead | OWrite,
		sock:  &socketFile{readBuf: newPipeBuf(), writeBuf: newPipeBuf()},
	}
}

// NetFeed appends received bytes to the endpoint's inbound buffer,
// reporting delivery (false = buffer full, the unreliable-channel drop).
// TCB data movement: no hooks, no task lock — only the inode lock that
// guards the pipe buffers, so it is safe against concurrent Send/Recv in
// both locking modes.
func (k *Kernel) NetFeed(f *File, data []byte) bool {
	if f == nil || f.sock == nil {
		return false
	}
	unlock := k.lockInode(f.Inode)
	ok := f.sock.readBuf.write(data)
	unlock()
	return ok
}

// NetDrain moves up to max bytes (0 = everything) out of the endpoint's
// outbound buffer for the transport to ship. Bytes present here already
// passed the sender's FilePermission(write) check in Send; a drained
// message the link then loses is exactly the paper's unreliable channel.
func (k *Kernel) NetDrain(f *File, max int) []byte {
	if f == nil || f.sock == nil {
		return nil
	}
	unlock := k.lockInode(f.Inode)
	defer unlock()
	n := f.sock.writeBuf.len()
	if n == 0 {
		return nil
	}
	if max > 0 && n > max {
		n = max
	}
	buf := make([]byte, n)
	return buf[:f.sock.writeBuf.read(buf)]
}
