package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"laminar/internal/budget"
	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/telemetry"
)

// Kernel is the simulated operating system: a sharded task table, an
// in-memory VFS, and an optional security module consulted through
// LSM-style hooks. All syscalls take the acting *Task.
//
// By default syscalls from different tasks run concurrently under the
// fine-grained locking discipline documented in locking.go; WithBigLock
// restores the original one-big-mutex execution model for differential
// testing and baseline benchmarks.
type Kernel struct {
	// mu is the big kernel lock, used only in lockBig mode.
	mu   sync.Mutex
	mode lockMode

	sec SecurityModule
	// rawSec is the module as installed, before any fault-injection
	// wrapper; New uses it for InodePrimer detection (the wrapper embeds
	// the interface, so type assertions on k.sec would miss extensions).
	rawSec SecurityModule

	root   *Inode
	shards [taskShardCount]taskShard

	nextTID  atomic.Uint64
	nextProc atomic.Uint64

	lmu       sync.Mutex // guards listeners
	listeners map[string]*listener
	// socketNS is the unlabeled pseudo-inode representing the socket name
	// namespace; advertising a listener writes it.
	socketNS *Inode

	// hookCalls counts security hook invocations, for tests that assert
	// the hook surface is actually exercised.
	hookCalls atomic.Uint64

	// ioLatency is the simulated device time per regular-file data
	// transfer (see WithIOLatency); zero disables the model.
	ioLatency time.Duration

	// inj is the optional fault injector consulted at every syscall-layer
	// injection point. nil (production) injects nothing.
	inj faultinject.Injector

	// tel is the telemetry recorder observing this kernel's enforcement
	// points (telemetry.go). Defaults to telemetry.Default; nil under
	// WithoutTelemetry, in which case no wrapper is installed at all.
	tel *telemetry.Recorder
	// telOff suppresses the telemetry wrapper entirely (the benchmark
	// baseline).
	telOff bool

	// verdictCache records that WithVerdictCache was requested; New
	// forwards it to the security module when the module supports
	// epoch-keyed verdict memoization (VerdictCacheConfigurator).
	verdictCache bool

	// budget is the optional quantitative flow-budget ledger (ISSUE 10).
	// nil means unbudgeted: every declassification egress is unmetered,
	// the pre-budget behavior. Non-nil, the three egress layers (lsm
	// relabels, netlabel sends, rt region exits) charge it before their
	// side effects.
	budget *budget.Ledger
}

// Option configures kernel construction.
type Option func(*Kernel)

// WithSecurityModule installs the security module. Without this option the
// kernel behaves as unmodified Linux.
func WithSecurityModule(m SecurityModule) Option {
	return func(k *Kernel) {
		k.sec = m
		k.rawSec = m
	}
}

// WithFaultInjector installs a fault injector consulted at the syscall
// layer's injection points (the chaos harness uses this; production runs
// without one).
func WithFaultInjector(inj faultinject.Injector) Option {
	return func(k *Kernel) { k.inj = inj }
}

// Injector exposes the installed fault injector (nil when none); the VM
// runtime consults it on the tcb label-sync path.
func (k *Kernel) Injector() faultinject.Injector { return k.inj }

// VerdictCacheConfigurator is implemented by security modules that can
// memoize whole access verdicts keyed by the kernel's label epochs
// (Task.LabelEpoch / Inode.LabelEpoch). New calls EnableVerdictCache at
// boot, before any syscall, when WithVerdictCache was requested.
type VerdictCacheConfigurator interface {
	EnableVerdictCache()
}

// WithVerdictCache turns on epoch-keyed verdict memoization in the
// installed security module (a no-op for modules that do not implement
// VerdictCacheConfigurator). Off by default so the unoptimized monitor
// remains the reference for differential oracles.
func WithVerdictCache() Option {
	return func(k *Kernel) { k.verdictCache = true }
}

// VerdictCacheEnabled reports whether WithVerdictCache was requested.
func (k *Kernel) VerdictCacheEnabled() bool { return k.verdictCache }

// WithBudget installs the flow-budget ledger. New registers the ledger's
// mutation callback to bump every task's label epoch, so the PR 7
// verdict cache can never serve an allow computed before an exhaustion,
// limit drop, or quarantine.
func WithBudget(l *budget.Ledger) Option {
	return func(k *Kernel) { k.budget = l }
}

// Budget returns the installed ledger, or nil when the kernel runs
// unbudgeted.
func (k *Kernel) Budget() *budget.Ledger { return k.budget }

// hook counts one security-hook invocation.
func (k *Kernel) hook() { k.hookCalls.Add(1) }

// inject consults the injector at site for the acting task. Called with
// the acting task's syscall-entry lock held, at the top of (or inside)
// faultable syscalls. It doubles as the killed-task gate: a task that was
// crash-killed mid-operation gets ESRCH from every subsequent syscall.
//
//   - Error: the syscall aborts with EIO.
//   - Crash: the acting task is killed in place — descriptors dropped,
//     security state freed, no error-path cleanup of partial operation
//     state — and the syscall reports EKILLED.
//   - Delay: a scheduling hiccup; no semantic effect.
func (k *Kernel) inject(site string, t *Task) error {
	if t != nil && t.exited.Load() {
		return ErrSrch
	}
	if k.inj == nil {
		return nil
	}
	switch k.inj.At(site) {
	case faultinject.Error:
		k.faultTrip(site, t, "error")
		return ErrIO
	case faultinject.Crash:
		k.faultTrip(site, t, "crash")
		if t != nil && t.TID == 1 {
			// Killing init would be a whole-machine crash, which the
			// harness models as a reboot (RecoverLabels), not task death.
			return ErrIO
		}
		if t != nil {
			k.killTaskHolding(t)
		}
		return ErrKilled
	default:
		return nil
	}
}

// faultTrip records an injector firing at a syscall-layer site — the
// provenance for denials that come from fail-closed fault handling
// rather than a DIFC rule.
func (k *Kernel) faultTrip(site string, t *Task, kind string) {
	if k.tel == nil || !k.tel.Active() {
		return
	}
	var tid uint64
	if t != nil {
		tid = uint64(t.TID)
	}
	k.tel.EmitFaultTrip(telemetry.LayerKernel, site, tid, kind)
}

// killTaskHolding terminates t mid-operation (fault-injected crash): the
// task table entry is removed and security state freed, exactly as Exit,
// but without any syscall-level cleanup of the operation in flight. Init
// (TID 1) is immortal, as in a real kernel. The caller holds t's
// syscall-entry lock (t.mu in sharded mode, k.mu in big-lock mode).
func (k *Kernel) killTaskHolding(t *Task) {
	if t.TID == 1 || !t.exited.CompareAndSwap(false, true) {
		return
	}
	t.fds = make(map[FD]*File)
	if k.sec != nil {
		k.sec.TaskFree(t)
	}
	k.taskDelete(t.TID)
}

// New boots a kernel: builds the root filesystem skeleton (/, /etc, /home,
// /tmp, /dev/null, /dev/zero) and the init task (TID 1).
func New(opts ...Option) *Kernel {
	k := &Kernel{}
	for _, o := range opts {
		o(k)
	}
	if k.verdictCache {
		if c, ok := k.rawSec.(VerdictCacheConfigurator); ok {
			c.EnableVerdictCache()
		}
	}
	if k.budget != nil {
		// A budget mutation can turn a cached allow stale (an exhausted
		// tag must stop flowing NOW, not at the next natural epoch bump),
		// so every mutation invalidates all task verdict-cache epochs.
		// The callback runs outside the ledger mutex; taskRange takes
		// only shard read-locks and per-task atomics, so the order is
		// cycle-free against charge sites that hold task locks.
		k.budget.OnMutate(func() {
			k.taskRange(func(t *Task) { t.BumpLabelEpoch() })
		})
	}
	wrapFaulting(k)
	wrapTelemetry(k) // outermost: provenance sees fault-injected denials too
	k.root = newInode(TypeDir, 0o755)
	init := k.newTask(nil, "root")
	k.taskInsert(init)
	k.nextProc.Store(1)
	init.Proc = 1
	init.Cwd = k.root
	// Standard tree. mkdirInternal bypasses hooks: this is boot, before
	// any principal exists; the module labels these directories itself in
	// its InstallSystemIntegrity step.
	etc := k.mkdirInternal(k.root, "etc")
	k.mkdirInternal(etc, "laminar")
	k.mkdirInternal(k.root, "home")
	k.mkdirInternal(k.root, "tmp")
	dev := k.mkdirInternal(k.root, "dev")
	null := newInode(TypeDevNull, 0o666)
	null.parent = dev
	dev.children["null"] = null
	zero := newInode(TypeDevZero, 0o666)
	zero.parent = dev
	dev.children["zero"] = zero
	k.socketNS = newInode(TypeDir, 0o777)
	// Prime every boot-time object's security blob before the first
	// syscall: under the sharded discipline, hooks read blobs without
	// inode locks, which is only race-free if no blob is ever created
	// lazily on a hot path (locking.go).
	if p, ok := k.rawSec.(InodePrimer); ok {
		var prime func(*Inode)
		prime = func(ino *Inode) {
			p.PrimeInode(ino)
			for _, name := range ino.childNames() {
				prime(ino.children[name])
			}
		}
		prime(k.root)
		p.PrimeInode(k.socketNS)
		p.PrimeTask(init)
	}
	return k
}

// SecurityModuleName returns the registered module's name, or "" when the
// kernel runs without one.
func (k *Kernel) SecurityModuleName() string {
	if k.sec == nil {
		return ""
	}
	return k.sec.Name()
}

// Root returns the root directory inode (used by the security module to
// install system integrity labels at boot).
func (k *Kernel) Root() *Inode { return k.root }

// WalkInodes visits every inode reachable from the root, depth-first in
// sorted-name order. The security module's crash-recovery pass uses it to
// rebuild label state from persistent records; that pass mutates blobs,
// so it runs only at boot/reboot time when the kernel is quiescent.
func (k *Kernel) WalkInodes(fn func(*Inode)) {
	if k.mode == lockBig {
		k.mu.Lock()
		defer k.mu.Unlock()
	}
	var walk func(*Inode)
	walk = func(ino *Inode) {
		fn(ino)
		unlock := k.rlockInode(ino)
		kids := make([]*Inode, 0, len(ino.children))
		for _, name := range ino.childNames() {
			kids = append(kids, ino.children[name])
		}
		unlock()
		for _, c := range kids {
			walk(c)
		}
	}
	walk(k.root)
}

// HookCalls reports how many security hooks have fired since boot.
func (k *Kernel) HookCalls() uint64 { return k.hookCalls.Load() }

// newTask allocates a task without publishing it in the table; callers
// insert it once fully initialized, so concurrent table readers never see
// a half-built task.
func (k *Kernel) newTask(parent *Task, user string) *Task {
	t := &Task{
		TID:  TID(k.nextTID.Add(1)),
		User: user,
		k:    k,
		fds:  make(map[FD]*File),
	}
	if parent != nil {
		t.Parent = parent.TID
		t.Proc = parent.Proc
		t.Cwd = parent.Cwd
		t.User = parent.User
	}
	return t
}

// InitTask returns the boot task (TID 1).
func (k *Kernel) InitTask() *Task {
	t, _ := k.taskLookup(1)
	return t
}

// TasksInProc counts live tasks in the given process — the security
// module uses it to restrict label changes in multithreaded processes
// without a trusted VM (§4.1). It reads only the task-table shards plus
// per-task atomics, so hooks may call it while holding task locks.
func (k *Kernel) TasksInProc(proc uint64) int {
	n := 0
	k.taskRange(func(t *Task) {
		if t.Proc == proc && !t.exited.Load() {
			n++
		}
	})
	return n
}

// Task looks up a live task by TID.
func (k *Kernel) Task(tid TID) (*Task, error) {
	t, ok := k.taskLookup(tid)
	if !ok || t.exited.Load() {
		return nil, ErrSrch
	}
	return t, nil
}

// Fork creates a child task. keep restricts the capabilities the child
// inherits: nil means all of the parent's capabilities, an empty non-nil
// slice means none. The paper's model: a new principal's capabilities are
// a subset of its immediate parent's (§4.4).
func (k *Kernel) Fork(parent *Task, keep []Capability) (*Task, error) {
	return k.fork(parent, keep, false)
}

// Spawn is Fork into a fresh process (new address space): the child gets a
// new Proc id, so it is outside the parent's trusted-VM boundary.
func (k *Kernel) Spawn(parent *Task, keep []Capability) (*Task, error) {
	return k.fork(parent, keep, true)
}

func (k *Kernel) fork(parent *Task, keep []Capability, newProc bool) (*Task, error) {
	defer k.begin(parent)()
	charge(workFork)
	if parent.exited.Load() {
		return nil, ErrSrch
	}
	if err := k.inject("task.fork", parent); err != nil {
		return nil, err
	}
	child := k.newTask(parent, parent.User)
	if newProc {
		child.Proc = k.nextProc.Add(1)
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.TaskAlloc(parent, child, keep); err != nil {
			return nil, err
		}
	}
	// Publish only after the security blob is attached: table readers
	// (TasksInProc, Kill) must never see a half-built task.
	k.taskInsert(child)
	return child, nil
}

// Exec simulates execve: the task's address space is replaced (all vmas
// dropped) after the security module approves executing the file at path.
// Labels and capabilities persist across exec, as in Laminar.
func (k *Kernel) Exec(t *Task, path string) error {
	defer k.begin(t)()
	charge(workExec)
	if err := k.inject("task.exec", t); err != nil {
		return err
	}
	ino, err := k.resolve(t, path)
	if err != nil {
		return hideDenied(err)
	}
	if ino.IsDir() {
		return ErrIsDir
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodePermission(t, ino, MayRead|MayExec); err != nil {
			return hideDenied(err)
		}
	}
	t.vmas = nil
	return nil
}

// Exit terminates the task, closing its files and freeing its security
// state. Exit status is deliberately not observable across label
// boundaries (termination-channel hygiene, §4.3.3): there is no wait
// syscall that reports status to arbitrary tasks.
func (k *Kernel) Exit(t *Task) {
	defer k.begin(t)()
	if !t.exited.CompareAndSwap(false, true) {
		return
	}
	t.fds = make(map[FD]*File)
	if k.sec != nil {
		k.sec.TaskFree(t)
	}
	k.taskDelete(t.TID)
}

// Kill delivers a signal to target if the security module allows the flow.
func (k *Kernel) Kill(t *Task, target TID, sig Signal) error {
	// The table lookup takes only shard locks, so it happens before the
	// task locks; liveness is re-checked once they are held.
	dst, _ := k.taskLookup(target)
	defer k.begin2(t, dst)()
	charge(workSignal)
	if err := k.inject("task.kill", t); err != nil {
		return err
	}
	if dst == nil || dst.exited.Load() {
		return ErrSrch
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.TaskKill(t, dst, sig); err != nil {
			return err
		}
	}
	dst.sigs = append(dst.sigs, sig)
	return nil
}

// SigPending drains and returns the task's pending signals.
func (k *Kernel) SigPending(t *Task) []Signal {
	defer k.begin(t)()
	out := t.sigs
	t.sigs = nil
	return out
}

// --- Laminar label-management syscalls (Figure 3) ---

// AllocTag implements alloc_tag: returns a fresh tag and grants the caller
// t+ and t-.
func (k *Kernel) AllocTag(t *Task) (difc.Tag, error) {
	if k.sec == nil {
		return difc.InvalidTag, ErrNoSys
	}
	defer k.begin(t)()
	k.hook()
	return k.sec.AllocTag(t)
}

// SetTaskLabel implements set_task_label for the given label type.
func (k *Kernel) SetTaskLabel(t *Task, typ LabelType, l difc.Label) error {
	if k.sec == nil {
		return ErrNoSys
	}
	defer k.begin(t)()
	k.hook()
	return k.sec.SetTaskLabel(t, typ, l)
}

// DropLabelTCB implements drop_label_tcb: clears target's labels without
// capability checks; restricted by the module to tcb-tagged callers.
func (k *Kernel) DropLabelTCB(t *Task, target TID) error {
	if k.sec == nil {
		return ErrNoSys
	}
	dst, ok := k.taskLookup(target)
	if !ok || dst.exited.Load() {
		return ErrSrch
	}
	defer k.begin2(t, dst)()
	if dst.exited.Load() {
		return ErrSrch
	}
	k.hook()
	return k.sec.DropLabelTCB(t, dst)
}

// DropCapabilities implements drop_capabilities; tmp suspends rather than
// destroys (restored by RestoreCapabilities).
func (k *Kernel) DropCapabilities(t *Task, caps []Capability, tmp bool) error {
	if k.sec == nil {
		return ErrNoSys
	}
	defer k.begin(t)()
	k.hook()
	return k.sec.DropCapabilities(t, caps, tmp)
}

// RestoreCapabilities undoes temporary capability drops.
func (k *Kernel) RestoreCapabilities(t *Task) error {
	if k.sec == nil {
		return ErrNoSys
	}
	defer k.begin(t)()
	k.hook()
	return k.sec.RestoreCapabilities(t)
}

// WriteCapability implements write_capability: sends a capability to
// another principal over a pipe.
func (k *Kernel) WriteCapability(t *Task, cap Capability, fd FD) error {
	if k.sec == nil {
		return ErrNoSys
	}
	defer k.begin(t)()
	f, err := t.file(fd)
	if err != nil {
		return err
	}
	if f.Inode.Type != TypePipe {
		return ErrInval
	}
	// The module's implementation queues the capability on the pipe
	// inode, so the pipe-state lock is held across the hook.
	defer k.lockInode(f.Inode)()
	k.hook()
	return k.sec.WriteCapability(t, cap, f)
}

// ReadCapability claims a capability previously queued on the pipe.
func (k *Kernel) ReadCapability(t *Task, fd FD) (Capability, error) {
	if k.sec == nil {
		return Capability{}, ErrNoSys
	}
	defer k.begin(t)()
	f, err := t.file(fd)
	if err != nil {
		return Capability{}, err
	}
	if f.Inode.Type != TypePipe {
		return Capability{}, ErrInval
	}
	defer k.lockInode(f.Inode)()
	k.hook()
	return k.sec.ReadCapability(t, f)
}

// String describes the kernel configuration.
func (k *Kernel) String() string {
	name := k.SecurityModuleName()
	if name == "" {
		name = "none"
	}
	mode := "sharded"
	if k.mode == lockBig {
		mode = "biglock"
	}
	return fmt.Sprintf("kernel{lsm=%s,lock=%s}", name, mode)
}
