package kernel

import (
	"fmt"
	"sync"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
)

// Kernel is the simulated operating system: a task table, an in-memory
// VFS, and an optional security module consulted through LSM-style hooks.
// All syscalls take the acting *Task; the big kernel lock serializes them,
// which is accurate enough for a functional and relative-overhead model.
type Kernel struct {
	mu        sync.Mutex
	sec       SecurityModule
	root      *Inode
	tasks     map[TID]*Task
	nextTID   TID
	nextProc  uint64
	listeners map[string]*listener
	// socketNS is the unlabeled pseudo-inode representing the socket name
	// namespace; advertising a listener writes it.
	socketNS *Inode

	// hookCalls counts security hook invocations, for tests that assert
	// the hook surface is actually exercised.
	hookCalls uint64

	// inj is the optional fault injector consulted at every syscall-layer
	// injection point. nil (production) injects nothing.
	inj faultinject.Injector
}

// Option configures kernel construction.
type Option func(*Kernel)

// WithSecurityModule installs the security module. Without this option the
// kernel behaves as unmodified Linux.
func WithSecurityModule(m SecurityModule) Option {
	return func(k *Kernel) { k.sec = m }
}

// WithFaultInjector installs a fault injector consulted at the syscall
// layer's injection points (the chaos harness uses this; production runs
// without one).
func WithFaultInjector(inj faultinject.Injector) Option {
	return func(k *Kernel) { k.inj = inj }
}

// Injector exposes the installed fault injector (nil when none); the VM
// runtime consults it on the tcb label-sync path.
func (k *Kernel) Injector() faultinject.Injector { return k.inj }

// inject consults the injector at site for the acting task. Called with
// the kernel lock held, at the top of (or inside) faultable syscalls. It
// doubles as the killed-task gate: a task that was crash-killed mid-
// operation gets ESRCH from every subsequent syscall.
//
//   - Error: the syscall aborts with EIO.
//   - Crash: the acting task is killed in place — descriptors dropped,
//     security state freed, no error-path cleanup of partial operation
//     state — and the syscall reports EKILLED.
//   - Delay: a scheduling hiccup; no semantic effect.
func (k *Kernel) inject(site string, t *Task) error {
	if t != nil && t.exited {
		return ErrSrch
	}
	if k.inj == nil {
		return nil
	}
	switch k.inj.At(site) {
	case faultinject.Error:
		return ErrIO
	case faultinject.Crash:
		if t != nil && t.TID == 1 {
			// Killing init would be a whole-machine crash, which the
			// harness models as a reboot (RecoverLabels), not task death.
			return ErrIO
		}
		if t != nil {
			k.killTaskLocked(t)
		}
		return ErrKilled
	default:
		return nil
	}
}

// killTaskLocked terminates t mid-operation (fault-injected crash): the
// task table entry is removed and security state freed, exactly as Exit,
// but without any syscall-level cleanup of the operation in flight. Init
// (TID 1) is immortal, as in a real kernel.
func (k *Kernel) killTaskLocked(t *Task) {
	if t.exited || t.TID == 1 {
		return
	}
	t.exited = true
	t.fds = make(map[FD]*File)
	if k.sec != nil {
		k.sec.TaskFree(t)
	}
	delete(k.tasks, t.TID)
}

// New boots a kernel: builds the root filesystem skeleton (/, /etc, /home,
// /tmp, /dev/null, /dev/zero) and the init task (TID 1).
func New(opts ...Option) *Kernel {
	k := &Kernel{
		tasks:   make(map[TID]*Task),
		nextTID: 1,
	}
	for _, o := range opts {
		o(k)
	}
	wrapFaulting(k)
	k.root = newInode(TypeDir, 0o755)
	init := k.newTask(nil, "root")
	k.nextProc = 1
	init.Proc = 1
	init.Cwd = k.root
	// Standard tree. mkdirInternal bypasses hooks: this is boot, before
	// any principal exists; the module labels these directories itself in
	// its InstallSystemIntegrity step.
	etc := k.mkdirInternal(k.root, "etc")
	k.mkdirInternal(etc, "laminar")
	k.mkdirInternal(k.root, "home")
	k.mkdirInternal(k.root, "tmp")
	dev := k.mkdirInternal(k.root, "dev")
	null := newInode(TypeDevNull, 0o666)
	null.parent = dev
	dev.children["null"] = null
	zero := newInode(TypeDevZero, 0o666)
	zero.parent = dev
	dev.children["zero"] = zero
	k.socketNS = newInode(TypeDir, 0o777)
	return k
}

// SecurityModuleName returns the registered module's name, or "" when the
// kernel runs without one.
func (k *Kernel) SecurityModuleName() string {
	if k.sec == nil {
		return ""
	}
	return k.sec.Name()
}

// Root returns the root directory inode (used by the security module to
// install system integrity labels at boot).
func (k *Kernel) Root() *Inode { return k.root }

// WalkInodes visits every inode reachable from the root, depth-first in
// sorted-name order, under the kernel lock. The security module's crash-
// recovery pass uses it to rebuild label state from persistent records.
func (k *Kernel) WalkInodes(fn func(*Inode)) {
	k.mu.Lock()
	defer k.mu.Unlock()
	var walk func(*Inode)
	walk = func(ino *Inode) {
		fn(ino)
		for _, name := range ino.childNames() {
			walk(ino.children[name])
		}
	}
	walk(k.root)
}

// HookCalls reports how many security hooks have fired since boot.
func (k *Kernel) HookCalls() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.hookCalls
}

func (k *Kernel) newTask(parent *Task, user string) *Task {
	t := &Task{
		TID:  k.nextTID,
		User: user,
		k:    k,
		fds:  make(map[FD]*File),
	}
	if parent != nil {
		t.Parent = parent.TID
		t.Proc = parent.Proc
		t.Cwd = parent.Cwd
		t.User = parent.User
	}
	k.nextTID++
	k.tasks[t.TID] = t
	return t
}

// InitTask returns the boot task (TID 1).
func (k *Kernel) InitTask() *Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.tasks[1]
}

// TasksInProc counts live tasks in the given process — the security
// module uses it to restrict label changes in multithreaded processes
// without a trusted VM (§4.1). Callers outside the kernel must treat the
// result as advisory (it is computed under the kernel lock when called
// from a hook).
func (k *Kernel) TasksInProc(proc uint64) int {
	n := 0
	for _, t := range k.tasks {
		if t.Proc == proc && !t.exited {
			n++
		}
	}
	return n
}

// Task looks up a live task by TID.
func (k *Kernel) Task(tid TID) (*Task, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t, ok := k.tasks[tid]
	if !ok || t.exited {
		return nil, ErrSrch
	}
	return t, nil
}

// Fork creates a child task. keep restricts the capabilities the child
// inherits: nil means all of the parent's capabilities, an empty non-nil
// slice means none. The paper's model: a new principal's capabilities are
// a subset of its immediate parent's (§4.4).
func (k *Kernel) Fork(parent *Task, keep []Capability) (*Task, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	charge(workFork)
	if parent.exited {
		return nil, ErrSrch
	}
	if err := k.inject("task.fork", parent); err != nil {
		return nil, err
	}
	child := k.newTask(parent, parent.User)
	if k.sec != nil {
		k.hookCalls++
		if err := k.sec.TaskAlloc(parent, child, keep); err != nil {
			delete(k.tasks, child.TID)
			return nil, err
		}
	}
	return child, nil
}

// Spawn is Fork into a fresh process (new address space): the child gets a
// new Proc id, so it is outside the parent's trusted-VM boundary.
func (k *Kernel) Spawn(parent *Task, keep []Capability) (*Task, error) {
	child, err := k.Fork(parent, keep)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	k.nextProc++
	child.Proc = k.nextProc
	k.mu.Unlock()
	return child, nil
}

// Exec simulates execve: the task's address space is replaced (all vmas
// dropped) after the security module approves executing the file at path.
// Labels and capabilities persist across exec, as in Laminar.
func (k *Kernel) Exec(t *Task, path string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	charge(workExec)
	if err := k.inject("task.exec", t); err != nil {
		return err
	}
	ino, err := k.resolve(t, path)
	if err != nil {
		return hideDenied(err)
	}
	if ino.IsDir() {
		return ErrIsDir
	}
	if k.sec != nil {
		k.hookCalls++
		if err := k.sec.InodePermission(t, ino, MayRead|MayExec); err != nil {
			return hideDenied(err)
		}
	}
	t.vmas = nil
	return nil
}

// Exit terminates the task, closing its files and freeing its security
// state. Exit status is deliberately not observable across label
// boundaries (termination-channel hygiene, §4.3.3): there is no wait
// syscall that reports status to arbitrary tasks.
func (k *Kernel) Exit(t *Task) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if t.exited {
		return
	}
	t.exited = true
	t.fds = make(map[FD]*File)
	if k.sec != nil {
		k.sec.TaskFree(t)
	}
	delete(k.tasks, t.TID)
}

// Kill delivers a signal to target if the security module allows the flow.
func (k *Kernel) Kill(t *Task, target TID, sig Signal) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	charge(workSignal)
	if err := k.inject("task.kill", t); err != nil {
		return err
	}
	dst, ok := k.tasks[target]
	if !ok || dst.exited {
		return ErrSrch
	}
	if k.sec != nil {
		k.hookCalls++
		if err := k.sec.TaskKill(t, dst, sig); err != nil {
			return err
		}
	}
	dst.sigs = append(dst.sigs, sig)
	return nil
}

// SigPending drains and returns the task's pending signals.
func (k *Kernel) SigPending(t *Task) []Signal {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := t.sigs
	t.sigs = nil
	return out
}

// --- Laminar label-management syscalls (Figure 3) ---

// AllocTag implements alloc_tag: returns a fresh tag and grants the caller
// t+ and t-.
func (k *Kernel) AllocTag(t *Task) (difc.Tag, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return difc.InvalidTag, ErrNoSys
	}
	k.hookCalls++
	return k.sec.AllocTag(t)
}

// SetTaskLabel implements set_task_label for the given label type.
func (k *Kernel) SetTaskLabel(t *Task, typ LabelType, l difc.Label) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return ErrNoSys
	}
	k.hookCalls++
	return k.sec.SetTaskLabel(t, typ, l)
}

// DropLabelTCB implements drop_label_tcb: clears target's labels without
// capability checks; restricted by the module to tcb-tagged callers.
func (k *Kernel) DropLabelTCB(t *Task, target TID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return ErrNoSys
	}
	dst, ok := k.tasks[target]
	if !ok || dst.exited {
		return ErrSrch
	}
	k.hookCalls++
	return k.sec.DropLabelTCB(t, dst)
}

// DropCapabilities implements drop_capabilities; tmp suspends rather than
// destroys (restored by RestoreCapabilities).
func (k *Kernel) DropCapabilities(t *Task, caps []Capability, tmp bool) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return ErrNoSys
	}
	k.hookCalls++
	return k.sec.DropCapabilities(t, caps, tmp)
}

// RestoreCapabilities undoes temporary capability drops.
func (k *Kernel) RestoreCapabilities(t *Task) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return ErrNoSys
	}
	k.hookCalls++
	return k.sec.RestoreCapabilities(t)
}

// WriteCapability implements write_capability: sends a capability to
// another principal over a pipe.
func (k *Kernel) WriteCapability(t *Task, cap Capability, fd FD) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return ErrNoSys
	}
	f, err := t.file(fd)
	if err != nil {
		return err
	}
	if f.Inode.Type != TypePipe {
		return ErrInval
	}
	k.hookCalls++
	return k.sec.WriteCapability(t, cap, f)
}

// ReadCapability claims a capability previously queued on the pipe.
func (k *Kernel) ReadCapability(t *Task, fd FD) (Capability, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sec == nil {
		return Capability{}, ErrNoSys
	}
	f, err := t.file(fd)
	if err != nil {
		return Capability{}, err
	}
	if f.Inode.Type != TypePipe {
		return Capability{}, ErrInval
	}
	k.hookCalls++
	return k.sec.ReadCapability(t, f)
}

// String describes the kernel configuration.
func (k *Kernel) String() string {
	name := k.SecurityModuleName()
	if name == "" {
		name = "none"
	}
	return fmt.Sprintf("kernel{lsm=%s}", name)
}
