package kernel

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestTelemetryWrapsEveryHook is the structural half of the deny-provenance
// guarantee: telemetrySec must override every error-returning method of the
// SecurityModule interface. A method it misses is promoted from the
// embedded module, so its denials would return to the kernel with no
// provenance event — exactly the silent-deny bug class this PR closes.
// Parsing the source keeps the check honest against interface growth:
// adding a hook without a telemetry override fails here, not in the field.
func TestTelemetryWrapsEveryHook(t *testing.T) {
	fset := token.NewFileSet()

	secFile, err := parser.ParseFile(fset, "security.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hooks []string
	ast.Inspect(secFile, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "SecurityModule" {
			return true
		}
		iface, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			return true
		}
		for _, m := range iface.Methods.List {
			ft, ok := m.Type.(*ast.FuncType)
			if !ok || len(m.Names) == 0 {
				continue
			}
			returnsError := false
			if ft.Results != nil {
				for _, res := range ft.Results.List {
					if id, ok := res.Type.(*ast.Ident); ok && id.Name == "error" {
						returnsError = true
					}
				}
			}
			if returnsError {
				hooks = append(hooks, m.Names[0].Name)
			}
		}
		return false
	})
	if len(hooks) < 10 {
		t.Fatalf("found only %d error-returning hooks in SecurityModule; parser broken?", len(hooks))
	}

	telFile, err := parser.ParseFile(fset, "telemetry.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := map[string]bool{}
	for _, d := range telFile.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		if star, ok := fd.Recv.List[0].Type.(*ast.StarExpr); ok {
			if id, ok := star.X.(*ast.Ident); ok && id.Name == "telemetrySec" {
				wrapped[fd.Name.Name] = true
			}
		}
	}

	for _, h := range hooks {
		if !wrapped[h] {
			t.Errorf("SecurityModule.%s returns error but telemetrySec does not wrap it: denials there carry no provenance", h)
		}
	}
}
