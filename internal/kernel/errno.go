// Package kernel implements the simulated operating system substrate that
// stands in for Laminar's modified Linux 2.6.22 (Roy et al., PLDI 2009,
// §5.2). It provides tasks, an in-memory virtual filesystem with extended
// attributes, pipes, signals, and the Laminar system calls, all mediated by
// a pluggable security module through an LSM-style hook table.
//
// The kernel itself knows nothing about labels: every inode, file and task
// carries an opaque security field that the registered SecurityModule
// manages, exactly as Linux Security Modules attach state to kernel
// objects. Running the kernel without a module gives the unmodified-Linux
// baseline used by the Table 2 (lmbench) experiments.
package kernel

import (
	"errors"
	"fmt"
)

// Errno-style sentinel errors. Syscalls return these directly or wrapped;
// compare with errors.Is.
var (
	ErrPerm      = errors.New("EPERM: operation not permitted")
	ErrNoEnt     = errors.New("ENOENT: no such file or directory")
	ErrSrch      = errors.New("ESRCH: no such process")
	ErrBadF      = errors.New("EBADF: bad file descriptor")
	ErrAgain     = errors.New("EAGAIN: resource temporarily unavailable")
	ErrAccess    = errors.New("EACCES: permission denied")
	ErrExist     = errors.New("EEXIST: file exists")
	ErrNotDir    = errors.New("ENOTDIR: not a directory")
	ErrIsDir     = errors.New("EISDIR: is a directory")
	ErrInval     = errors.New("EINVAL: invalid argument")
	ErrNoSys     = errors.New("ENOSYS: function not implemented")
	ErrNotEmpty  = errors.New("ENOTEMPTY: directory not empty")
	ErrFault     = errors.New("EFAULT: bad address")
	ErrPipe      = errors.New("EPIPE: broken pipe")
	ErrNoSpc     = errors.New("ENOSPC: no space left on device")
	ErrNameLong  = errors.New("ENAMETOOLONG: file name too long")
	ErrNoAttr    = errors.New("ENOATTR: no such attribute")
	ErrRange     = errors.New("ERANGE: result too large")
	ErrDeadlock  = errors.New("EDEADLK: resource deadlock avoided")
	ErrChildless = errors.New("ECHILD: no child processes")
	ErrIO        = errors.New("EIO: input/output error")
	ErrKilled    = errors.New("EKILLED: task killed mid-operation by fault injection")
)

// ErrAccessRead marks a permission denial raised by a read (or lookup, or
// exec) check. It matches ErrAccess via errors.Is, but path-based syscalls
// map it to plain ErrNoEnt before returning, so a secrecy-denied path is
// indistinguishable from a nonexistent one — an EACCES/ENOENT split would
// be a one-bit covert channel revealing that a name exists (§5.2).
// Write-only denials keep EACCES: the caller could already observe the
// object's existence by reading it.
var ErrAccessRead = fmt.Errorf("%w (read denial)", ErrAccess)

// hideDenied maps read denials to the nonexistent-path error. Path-based
// syscalls (stat, open, unlink, readdir, getxattr, exec, chdir) route
// their error returns through it.
func hideDenied(err error) error {
	if errors.Is(err, ErrAccessRead) {
		return ErrNoEnt
	}
	return err
}

// errIsKilled reports whether err carries an injected mid-operation crash.
func errIsKilled(err error) bool { return errors.Is(err, ErrKilled) }
