// Package kernel implements the simulated operating system substrate that
// stands in for Laminar's modified Linux 2.6.22 (Roy et al., PLDI 2009,
// §5.2). It provides tasks, an in-memory virtual filesystem with extended
// attributes, pipes, signals, and the Laminar system calls, all mediated by
// a pluggable security module through an LSM-style hook table.
//
// The kernel itself knows nothing about labels: every inode, file and task
// carries an opaque security field that the registered SecurityModule
// manages, exactly as Linux Security Modules attach state to kernel
// objects. Running the kernel without a module gives the unmodified-Linux
// baseline used by the Table 2 (lmbench) experiments.
package kernel

import "errors"

// Errno-style sentinel errors. Syscalls return these directly or wrapped;
// compare with errors.Is.
var (
	ErrPerm      = errors.New("EPERM: operation not permitted")
	ErrNoEnt     = errors.New("ENOENT: no such file or directory")
	ErrSrch      = errors.New("ESRCH: no such process")
	ErrBadF      = errors.New("EBADF: bad file descriptor")
	ErrAgain     = errors.New("EAGAIN: resource temporarily unavailable")
	ErrAccess    = errors.New("EACCES: permission denied")
	ErrExist     = errors.New("EEXIST: file exists")
	ErrNotDir    = errors.New("ENOTDIR: not a directory")
	ErrIsDir     = errors.New("EISDIR: is a directory")
	ErrInval     = errors.New("EINVAL: invalid argument")
	ErrNoSys     = errors.New("ENOSYS: function not implemented")
	ErrNotEmpty  = errors.New("ENOTEMPTY: directory not empty")
	ErrFault     = errors.New("EFAULT: bad address")
	ErrPipe      = errors.New("EPIPE: broken pipe")
	ErrNoSpc     = errors.New("ENOSPC: no space left on device")
	ErrNameLong  = errors.New("ENAMETOOLONG: file name too long")
	ErrNoAttr    = errors.New("ENOATTR: no such attribute")
	ErrRange     = errors.New("ERANGE: result too large")
	ErrDeadlock  = errors.New("EDEADLK: resource deadlock avoided")
	ErrChildless = errors.New("ECHILD: no child processes")
)
