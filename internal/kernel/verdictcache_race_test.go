package kernel_test

// Verdict-cache concurrency battery (run under -race). The per-task
// verdict cache memoizes security decisions keyed by label-change epochs;
// these storms drive the exact interleavings that would expose a missing
// epoch bump or an unsynchronized cache structure:
//
//   - tasks toggling their own labels (SetTaskLabel, epoch bumps) while
//     issuing cached checks against a shared inode — a stale verdict
//     shows up as a concrete wrong allow/deny, asserted per operation;
//   - hot cached private-file I/O, scalar and batched (WriteVec), from
//     many tasks at once against one sharded kernel with the real LSM;
//   - fault-injected torn WriteVec batches, with a byte-level sweep
//     proving tears only ever happen at element boundaries: no chunk is
//     ever half-written, and everything below the final offset is the
//     exact concatenation of the successful batches.
//
// This file is an external test (package kernel_test) so it can load the
// real Laminar LSM, which is where the verdict cache lives.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/kernel/lsm"
)

const vcStormTimeout = 2 * time.Minute

func vcWaitOrDeadlock(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(vcStormTimeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("storm deadlocked (no progress in %v); goroutine dump:\n%s", vcStormTimeout, buf[:n])
	}
}

// vcSystem boots a sharded kernel with the Laminar LSM and the verdict
// cache enabled (plus any extra options), mirroring laminar.NewSystem.
func vcSystem(opts ...kernel.Option) (*kernel.Kernel, *lsm.Module) {
	mod := lsm.New()
	base := []kernel.Option{kernel.WithSecurityModule(mod), kernel.WithVerdictCache()}
	k := kernel.New(append(base, opts...)...)
	mod.InstallSystemIntegrity(k)
	return k, mod
}

// TestVerdictCacheLabelStormRace races label churn against cached checks:
// every task repeatedly taints itself with its own tag, probes a shared
// unlabeled file (which MUST deny the write while tainted), clears the
// taint, and probes again (which MUST allow). The expected verdict at
// every step is a pure function of the task's own label — which only the
// task itself mutates — so any stale cache entry surfaces as a hard
// wrong answer, not a flake. Between toggles the task hammers private
// files with scalar writes and WriteVec batches, keeping its cache hot so
// the epoch bumps have real entries to invalidate.
func TestVerdictCacheLabelStormRace(t *testing.T) {
	const (
		nTasks = 10
		nOps   = 300
	)
	k, _ := vcSystem()
	init := k.InitTask()
	if err := k.Mkdir(init, "/tmp/vstorm", 0o755); err != nil {
		t.Fatal(err)
	}
	// Shared unlabeled target: writable by an untainted task, unwritable
	// by a tainted one (secrecy must not flow down to an unlabeled file).
	sfd, err := k.Open(init, "/tmp/vstorm/shared", kernel.OWrite|kernel.OCreate)
	if err != nil {
		t.Fatal(err)
	}
	k.Close(init, sfd)

	tasks := make([]*kernel.Task, nTasks)
	tags := make([]difc.Tag, nTasks)
	for i := range tasks {
		task, err := k.Spawn(init, nil)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
		tag, err := k.AllocTag(task)
		if err != nil {
			t.Fatalf("task %d: alloc tag: %v", i, err)
		}
		tags[i] = tag
	}

	h0, _, _ := difc.VerdictCacheStats()
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task, tag := tasks[i], tags[i]
			rng := rand.New(rand.NewSource(int64(i) + 100))
			dir := fmt.Sprintf("/tmp/vstorm/t%d", i)
			if err := k.Mkdir(task, dir, 0o755); err != nil {
				t.Errorf("task %d: mkdir: %v", i, err)
				return
			}
			// probeShared opens the shared file for writing and writes a
			// byte; it returns the first denial, or nil if both succeed.
			probeShared := func() error {
				fd, err := k.Open(task, "/tmp/vstorm/shared", kernel.OWrite)
				if err != nil {
					return err
				}
				defer k.Close(task, fd)
				if _, err := k.Write(task, fd, []byte{byte(i)}); err != nil {
					return err
				}
				return nil
			}
			for op := 0; op < nOps; op++ {
				switch rng.Intn(4) {
				case 0: // taint → must deny → untaint → must allow
					if err := k.SetTaskLabel(task, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
						t.Errorf("task %d op %d: taint: %v", i, op, err)
						continue
					}
					if err := probeShared(); err == nil {
						t.Errorf("task %d op %d: STALE ALLOW: tainted write to unlabeled file succeeded", i, op)
					}
					if err := k.SetTaskLabel(task, kernel.Secrecy, difc.EmptyLabel); err != nil {
						t.Errorf("task %d op %d: untaint: %v", i, op, err)
						continue
					}
					if err := probeShared(); err != nil {
						t.Errorf("task %d op %d: STALE DENY: untainted write to unlabeled file failed: %v", i, op, err)
					}
				case 1: // scalar round trip on a private file (cached allow path)
					path := fmt.Sprintf("%s/f%d", dir, op)
					fd, err := k.Open(task, path, kernel.ORead|kernel.OWrite|kernel.OCreate)
					if err != nil {
						t.Errorf("task %d: open %s: %v", i, path, err)
						continue
					}
					payload := []byte(fmt.Sprintf("t%d-op%d", i, op))
					if _, err := k.Write(task, fd, payload); err != nil {
						t.Errorf("task %d: write: %v", i, err)
					}
					if err := k.Seek(task, fd, 0); err != nil {
						t.Errorf("task %d: seek: %v", i, err)
					}
					buf := make([]byte, len(payload))
					if n, err := k.Read(task, fd, buf); err != nil || string(buf[:n]) != string(payload) {
						t.Errorf("task %d: read back %q, %v (want %q)", i, buf[:n], err, payload)
					}
					k.Close(task, fd)
				case 2: // batched writes on a private file, read back byte-exact
					path := fmt.Sprintf("%s/v%d", dir, op)
					fd, err := k.Open(task, path, kernel.ORead|kernel.OWrite|kernel.OCreate)
					if err != nil {
						t.Errorf("task %d: open %s: %v", i, path, err)
						continue
					}
					chunks := [][]byte{
						[]byte(fmt.Sprintf("t%d-", i)),
						[]byte(fmt.Sprintf("v%d-", op)),
						[]byte("tail"),
					}
					want := fmt.Sprintf("t%d-v%d-tail", i, op)
					if n, err := k.WriteVec(task, fd, chunks); err != nil || n != len(want) {
						t.Errorf("task %d: writevec: n=%d err=%v", i, n, err)
					}
					if err := k.Seek(task, fd, 0); err != nil {
						t.Errorf("task %d: seek: %v", i, err)
					}
					buf := make([]byte, len(want)+8)
					if n, err := k.Read(task, fd, buf); err != nil || string(buf[:n]) != want {
						t.Errorf("task %d: vec read back %q, %v (want %q)", i, buf[:n], err, want)
					}
					k.Close(task, fd)
				default: // cross-task pressure: dup a pipe end to the neighbor
					rfd, wfd, err := k.Pipe(task)
					if err != nil {
						continue
					}
					k.DupTo(task, rfd, tasks[(i+1)%nTasks])
					k.Close(task, rfd)
					k.Close(task, wfd)
				}
			}
		}(i)
	}
	vcWaitOrDeadlock(t, &wg)

	// The storm must actually have exercised the memoized path.
	h1, _, _ := difc.VerdictCacheStats()
	if h1 == h0 {
		t.Error("storm produced zero verdict-cache hits; the cached path was never raced")
	}
}

// TestWriteVecTornBatchRace fault-injects errors into the batched write
// path while many tasks append batches to private files concurrently,
// then sweeps every file for the two torn-batch invariants:
//
//  1. Element-boundary tearing only: every chunk-aligned block is
//     uniform — a block mixing two batches' bytes would mean a chunk was
//     half-written, which WriteVec's contract forbids.
//  2. Offset discipline: a torn batch does not advance the offset, so
//     the bytes below the sum of successful batch sizes are exactly the
//     successful batches in order.
func TestWriteVecTornBatchRace(t *testing.T) {
	const (
		nTasks   = 8
		nBatches = 200
		nChunks  = 4
		chunk    = 8
	)
	plan := faultinject.NewPlan(1234)
	plan.SetRates("fs.writev", faultinject.Rates{Error: 0.25})
	k, _ := vcSystem(kernel.WithFaultInjector(plan))
	init := k.InitTask()
	if err := k.Mkdir(init, "/tmp/torn", 0o755); err != nil {
		t.Fatal(err)
	}
	tasks := make([]*kernel.Task, nTasks)
	for i := range tasks {
		task, err := k.Spawn(init, nil)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}

	// ok[i] records which batch numbers task i's WriteVec reported success
	// for; the sweep reconstructs the expected prefix from it.
	ok := make([][]bool, nTasks)
	var torn [nTasks]int
	var wg sync.WaitGroup
	for i := range tasks {
		ok[i] = make([]bool, nBatches)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := tasks[i]
			path := fmt.Sprintf("/tmp/torn/f%d", i)
			fd, err := k.Open(task, path, kernel.OWrite|kernel.OCreate)
			if err != nil {
				t.Errorf("task %d: open: %v", i, err)
				return
			}
			defer k.Close(task, fd)
			for b := 0; b < nBatches; b++ {
				chunks := make([][]byte, nChunks)
				for c := range chunks {
					block := make([]byte, chunk)
					for j := range block {
						block[j] = byte(b) // one batch, one byte value
					}
					chunks[c] = block
				}
				if _, err := k.WriteVec(task, fd, chunks); err != nil {
					if errors.Is(err, kernel.ErrBadF) || errors.Is(err, kernel.ErrInval) {
						t.Errorf("task %d batch %d: unexpected %v", i, b, err)
					}
					torn[i]++ // injected fault: batch torn, offset held
					continue
				}
				ok[i][b] = true
			}
		}(i)
	}
	vcWaitOrDeadlock(t, &wg)

	tornTotal := 0
	for i := range torn {
		tornTotal += torn[i]
	}
	if tornTotal == 0 {
		t.Fatal("fault plan tore zero batches; the torn-batch invariants were never tested")
	}

	for i := 0; i < nTasks; i++ {
		path := fmt.Sprintf("/tmp/torn/f%d", i)
		fd, err := k.Open(init, path, kernel.ORead)
		if err != nil {
			t.Errorf("sweep open %s: %v", path, err)
			continue
		}
		data := make([]byte, 0, nBatches*nChunks*chunk+nChunks*chunk)
		buf := make([]byte, 4096)
		for {
			n, err := k.Read(init, fd, buf)
			if n > 0 {
				data = append(data, buf[:n]...)
			}
			if err != nil || n == 0 {
				break
			}
		}
		k.Close(init, fd)

		// (1) Every chunk-aligned block is uniform: tears happen between
		// elements, never inside one.
		if len(data)%chunk != 0 {
			t.Errorf("%s: length %d not chunk-aligned; a chunk was split", path, len(data))
		}
		for off := 0; off+chunk <= len(data); off += chunk {
			for j := 1; j < chunk; j++ {
				if data[off+j] != data[off] {
					t.Errorf("%s: block at %d mixes bytes %d and %d; chunk half-written",
						path, off, data[off], data[off+j])
					break
				}
			}
		}

		// (2) The committed prefix is the successful batches, in order.
		var want []byte
		for b := 0; b < nBatches; b++ {
			if !ok[i][b] {
				continue
			}
			for c := 0; c < nChunks; c++ {
				for j := 0; j < chunk; j++ {
					want = append(want, byte(b))
				}
			}
		}
		if len(data) < len(want) {
			t.Errorf("%s: holds %d bytes, successful batches wrote %d", path, len(data), len(want))
			continue
		}
		for off := range want {
			if data[off] != want[off] {
				t.Errorf("%s: committed prefix diverges at %d: got %d want %d", path, off, data[off], want[off])
				break
			}
		}
		// Anything past the committed prefix is remnant of a trailing torn
		// batch: at most half a batch of whole chunks.
		if extra := len(data) - len(want); extra > (nChunks/2)*chunk {
			t.Errorf("%s: %d remnant bytes past the committed prefix; torn batches may not land more than half their chunks", path, extra)
		}
	}
}
