package kernel

import "testing"

func TestInodeTypeStrings(t *testing.T) {
	want := map[InodeType]string{
		TypeRegular: "regular", TypeDir: "dir", TypePipe: "pipe",
		TypeDevNull: "devnull", TypeDevZero: "devzero", InodeType(99): "unknown",
	}
	for ty, name := range want {
		if got := ty.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", ty, got, name)
		}
	}
}

func TestInodeXattrs(t *testing.T) {
	ino := newInode(TypeRegular, 0o644)
	if _, ok := ino.GetXattr("a"); ok {
		t.Error("xattr on fresh inode")
	}
	ino.SetXattr("security.b", []byte{2})
	ino.SetXattr("security.a", []byte{1})
	if got := ino.ListXattrs(); len(got) != 2 || got[0] != "security.a" {
		t.Errorf("ListXattrs = %v", got)
	}
	v, ok := ino.GetXattr("security.a")
	if !ok || v[0] != 1 {
		t.Errorf("GetXattr = %v, %v", v, ok)
	}
	// Returned slices are copies.
	v[0] = 9
	v2, _ := ino.GetXattr("security.a")
	if v2[0] != 1 {
		t.Error("GetXattr exposed internal storage")
	}
}

func TestInodeCapQueue(t *testing.T) {
	pipe := newInode(TypePipe, 0o600)
	if pipe.PopCap() != nil {
		t.Error("PopCap on empty queue")
	}
	pipe.PushCap("x")
	pipe.PushCap("y")
	if pipe.PopCap() != "x" || pipe.PopCap() != "y" || pipe.PopCap() != nil {
		t.Error("cap queue order broken")
	}
	// Non-pipe inodes ignore pushes.
	file := newInode(TypeRegular, 0o644)
	file.PushCap("z")
	if file.PopCap() != nil {
		t.Error("cap queue on regular inode")
	}
}

func TestTaskAccessors(t *testing.T) {
	k, init := bare(t)
	if init.Exited() {
		t.Error("init exited")
	}
	if init.Kernel() != k {
		t.Error("Kernel() mismatch")
	}
	child, _ := k.Fork(init, nil)
	k.Exit(child)
	if !child.Exited() {
		t.Error("exited child not reported")
	}
}

func TestRootAndChild(t *testing.T) {
	k, _ := bare(t)
	root := k.Root()
	etc, ok := root.Child("etc")
	if !ok || !etc.IsDir() {
		t.Fatalf("Child(etc) = %v, %v", etc, ok)
	}
	if _, ok := root.Child("nope"); ok {
		t.Error("missing child found")
	}
}

func TestStatFields(t *testing.T) {
	k, init := bare(t)
	fd, _ := k.Open(init, "/tmp/s", OCreate|OWrite)
	k.Write(init, fd, []byte("abc"))
	st, err := k.Stat(init, "/tmp/s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 3 || st.Nlink != 1 || st.Type != TypeRegular || st.Ino == 0 {
		t.Errorf("Stat = %+v", st)
	}
}
