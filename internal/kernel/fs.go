package kernel

import (
	"strings"

	"laminar/internal/difc"
)

// This file implements the filesystem syscall surface: path resolution,
// stat, open/close/read/write, create/unlink, mkdir, pipes and the
// labeled-create syscalls. Every operation that touches an inode consults
// the security module hooks, mirroring where the Laminar LSM interposes.
//
// Locking (see locking.go): each syscall runs under the acting task's
// entry lock. Path walks take one directory read-lock at a time, in
// parent→child order; mutations of a directory (create, mkdir, unlink)
// hold that directory's write lock across the lookup-and-modify sequence
// so entries cannot be created or lost between check and update.

// resolve walks path from the task's cwd (or the root for absolute paths)
// down to the final inode. Each directory traversed is subject to an
// InodePermission(MayRead) check, because an entry's name is protected by
// its parent directory's label (§5.2). This is what makes absolute paths
// unreadable to tasks that do not trust the system administrator's
// integrity label.
func (k *Kernel) resolve(t *Task, path string) (*Inode, error) {
	dir, name, err := k.resolveParent(t, path)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return dir, nil
	}
	return k.lookup(t, dir, name)
}

// resolveParent resolves everything but the last component, returning the
// parent directory and the final name. A path ending in "/" or resolving
// to the walk root returns name == "".
func (k *Kernel) resolveParent(t *Task, path string) (*Inode, string, error) {
	if path == "" {
		return nil, "", ErrNoEnt
	}
	if len(path) > 4096 {
		return nil, "", ErrNameLong
	}
	cur := t.Cwd
	if strings.HasPrefix(path, "/") {
		cur = k.root
	}
	if cur == nil {
		return nil, "", ErrNoEnt
	}
	parts := make([]string, 0, 8)
	for _, p := range strings.Split(path, "/") {
		if p == "" || p == "." {
			continue
		}
		parts = append(parts, p)
	}
	if len(parts) == 0 {
		return cur, "", nil
	}
	for _, p := range parts[:len(parts)-1] {
		next, err := k.lookup(t, cur, p)
		if err != nil {
			return nil, "", err
		}
		if !next.IsDir() {
			return nil, "", ErrNotDir
		}
		cur = next
	}
	if !cur.IsDir() {
		return nil, "", ErrNotDir
	}
	return cur, parts[len(parts)-1], nil
}

// lookup finds name in dir, charging the directory-read permission check.
// It takes dir's read lock only around the children-map probe, so walks
// hold at most one inode lock at a time.
func (k *Kernel) lookup(t *Task, dir *Inode, name string) (*Inode, error) {
	if err := k.lookupCheck(t, dir); err != nil {
		return nil, err
	}
	if name == ".." {
		if dir.parent == nil {
			return dir, nil
		}
		return dir.parent, nil
	}
	unlock := k.rlockInode(dir)
	child, ok := dir.children[name]
	unlock()
	if !ok {
		return nil, ErrNoEnt
	}
	return child, nil
}

// lookupCheck runs the directory-read permission gate shared by lookup
// and lookupIn.
func (k *Kernel) lookupCheck(t *Task, dir *Inode) error {
	if !dir.IsDir() {
		return ErrNotDir
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodePermission(t, dir, MayRead); err != nil {
			return err
		}
	}
	return nil
}

// lookupIn is lookup for callers that already hold dir's write lock
// (atomic lookup-and-modify in create/unlink paths).
func (k *Kernel) lookupIn(t *Task, dir *Inode, name string) (*Inode, error) {
	if err := k.lookupCheck(t, dir); err != nil {
		return nil, err
	}
	if name == ".." {
		if dir.parent == nil {
			return dir, nil
		}
		return dir.parent, nil
	}
	child, ok := dir.children[name]
	if !ok {
		return nil, ErrNoEnt
	}
	return child, nil
}

// mkdirInternal creates a directory bypassing all hooks; used only during
// boot before any principal exists.
func (k *Kernel) mkdirInternal(dir *Inode, name string) *Inode {
	child := newInode(TypeDir, 0o755)
	child.parent = dir
	dir.children[name] = child
	return child
}

// Stat returns metadata for path.
func (k *Kernel) Stat(t *Task, path string) (Stat, error) {
	defer k.begin(t)()
	charge(workStat)
	if err := k.inject("fs.stat", t); err != nil {
		return Stat{}, err
	}
	ino, err := k.resolve(t, path)
	if err != nil {
		return Stat{}, hideDenied(err)
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodePermission(t, ino, MayRead); err != nil {
			return Stat{}, hideDenied(err)
		}
	}
	unlock := k.rlockInode(ino)
	st := Stat{Ino: ino.Ino, Type: ino.Type, Mode: ino.Mode, Size: ino.Size(), Nlink: ino.nlink}
	unlock()
	return st, nil
}

// Chdir changes the task's working directory.
func (k *Kernel) Chdir(t *Task, path string) error {
	defer k.begin(t)()
	ino, err := k.resolve(t, path)
	if err != nil {
		return hideDenied(err)
	}
	if !ino.IsDir() {
		return ErrNotDir
	}
	t.Cwd = ino
	return nil
}

// Open opens (and with OCreate, creates) the file at path.
func (k *Kernel) Open(t *Task, path string, flags OpenFlag) (FD, error) {
	return k.openLabeled(t, path, flags, nil)
}

// CreateFileLabeled implements create_file_labeled: create a file whose
// labels are set atomically with its creation, before the creator taints
// itself (Figure 3). The security module enforces the three labeled-create
// conditions of §5.2. The returned descriptor is write-only: the unlabeled
// creator may fill the secret file but reading it back requires tainting
// and a fresh open.
func (k *Kernel) CreateFileLabeled(t *Task, path string, mode Mode, labels difc.Labels) (FD, error) {
	return k.openLabeled(t, path, OWrite|OCreate, &labels)
}

func (k *Kernel) openLabeled(t *Task, path string, flags OpenFlag, labels *difc.Labels) (FD, error) {
	defer k.begin(t)()
	charge(workStat) // open path-walk cost; creation charges more below
	if err := k.inject("fs.open", t); err != nil {
		return -1, err
	}
	dir, name, err := k.resolveParent(t, path)
	if err != nil {
		return -1, hideDenied(err)
	}
	if name == "" {
		return -1, ErrIsDir
	}
	// The final component is looked up under dir's write lock whenever a
	// create could follow, so the lookup and the link are one atomic step
	// — two racing creators cannot both see ENOENT and both link.
	created := false
	var ino *Inode
	if flags&OCreate != 0 {
		unlock := k.lockInode(dir)
		existing, lerr := k.lookupIn(t, dir, name)
		switch {
		case lerr == nil:
			unlock()
			if labels != nil {
				return -1, ErrExist // labeled create requires a fresh file
			}
			ino = existing
		case lerr == ErrNoEnt:
			ino = newInode(TypeRegular, 0o644)
			ino.parent = dir
			if k.sec != nil {
				k.hook()
				if err := k.sec.InodeInitSecurity(t, dir, ino, labels); err != nil {
					unlock()
					return -1, err
				}
				// Creating an entry writes the parent directory.
				k.hook()
				if err := k.sec.InodePermission(t, dir, MayWrite); err != nil {
					unlock()
					return -1, err
				}
			}
			dir.children[name] = ino
			created = true
			charge(workCreate - workStat)
			if k.sec != nil {
				// Persist the new inode's labels now that the entry is linked.
				// A crash here (EKILLED) models the machine dying mid-persist:
				// the entry stays linked with torn xattrs for the recovery pass
				// to repair or quarantine. Any other error unwinds the create.
				k.hook()
				if perr := k.sec.InodePostCreate(t, dir, ino); perr != nil {
					if errIsKilled(perr) {
						// The module's persist path crashed: the creating task
						// dies here, and the linked-but-torn inode awaits the
						// recovery pass. No unwind — a real crash can't unwind.
						k.killTaskHolding(t)
					} else {
						delete(dir.children, name)
					}
					unlock()
					return -1, perr
				}
			}
			unlock()
		default:
			unlock()
			// hideDenied must run only on this arm: mapping a read-denial to
			// ENOENT before the switch would route it into the create arm and
			// clobber an entry the caller cannot even see.
			return -1, hideDenied(lerr)
		}
	} else {
		ino, err = k.lookup(t, dir, name)
		if err != nil {
			return -1, hideDenied(err)
		}
	}
	if ino.IsDir() {
		return -1, ErrIsDir
	}
	// A freshly created inode skips the open-time permission check (creat
	// semantics): the module already approved the creation, and the
	// per-operation FilePermission hook still guards every read/write, so
	// an unlabeled creator of an endorsed file can fill it through the
	// descriptor only after raising its own integrity.
	if !created {
		var mask AccessMask
		if flags&ORead != 0 {
			mask |= MayRead
		}
		if flags&(OWrite|OTrunc|OAppend) != 0 {
			mask |= MayWrite
		}
		if k.sec != nil {
			k.hook()
			if err := k.sec.InodePermission(t, ino, mask); err != nil {
				return -1, hideDenied(err)
			}
		}
	}
	f := &File{Inode: ino, Flags: flags}
	if flags&OTrunc != 0 && ino.Type == TypeRegular {
		unlock := k.lockInode(ino)
		ino.data = nil
		unlock()
	}
	if flags&OAppend != 0 {
		unlock := k.rlockInode(ino)
		f.offset = ino.Size()
		unlock()
	}
	return t.installFD(f), nil
}

// Close releases the descriptor.
func (k *Kernel) Close(t *Task, fd FD) error {
	defer k.begin(t)()
	if _, err := t.file(fd); err != nil {
		return err
	}
	delete(t.fds, fd)
	return nil
}

// Read reads up to len(buf) bytes from the descriptor. Pipe reads are
// non-blocking: an empty pipe returns ErrAgain, never EOF, because an EOF
// from an exiting writer would leak information (§5.2).
func (k *Kernel) Read(t *Task, fd FD, buf []byte) (int, error) {
	defer k.begin(t)()
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if f.Inode.Type == TypePipe && !f.pipeReadEnd {
		return 0, ErrBadF
	}
	if f.Inode.Type != TypePipe && f.Flags&ORead == 0 {
		return 0, ErrBadF
	}
	switch f.Inode.Type {
	case TypeRegular:
		charge(workRegularIO)
	case TypePipe:
		charge(workPipeIO)
	default:
		charge(workDeviceIO)
	}
	// The file lock covers the offset and the lazily attached file blob;
	// a File may be shared across tasks via DupTo.
	defer k.lockFile(f)()
	if k.sec != nil {
		k.hook()
		if err := k.sec.FilePermission(t, f, MayRead); err != nil {
			return 0, err
		}
	}
	// Faults fire only after the policy hook approved the read, so a fault
	// can never disclose the outcome of a denied check. A faulted pipe read
	// reports EAGAIN — indistinguishable from an empty pipe, preserving the
	// §5.2 non-blocking-read property under failure.
	if err := k.inject("fs.read", t); err != nil {
		if f.Inode.Type == TypePipe && !errIsKilled(err) {
			return 0, ErrAgain
		}
		return 0, err
	}
	switch f.Inode.Type {
	case TypeRegular:
		ino := f.Inode
		unlock := k.rlockInode(ino)
		var n int
		eof := f.offset >= len(ino.data)
		if !eof {
			n = copy(buf, ino.data[f.offset:])
			f.offset += n
		}
		unlock()
		if eof {
			return 0, nil // EOF
		}
		k.ioWait()
		return n, nil
	case TypePipe:
		unlock := k.lockInode(f.Inode)
		n := f.Inode.pipe.read(buf)
		unlock()
		if n == 0 {
			return 0, ErrAgain
		}
		return n, nil
	case TypeDevZero:
		for i := range buf {
			buf[i] = 0
		}
		return len(buf), nil
	case TypeDevNull:
		return 0, nil
	default:
		return 0, ErrInval
	}
}

// Write writes data to the descriptor. Pipe writes that fail the label
// check or overflow the buffer are silently dropped: the caller sees
// success either way (§5.2).
func (k *Kernel) Write(t *Task, fd FD, data []byte) (int, error) {
	defer k.begin(t)()
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if f.Inode.Type == TypePipe && f.pipeReadEnd {
		return 0, ErrBadF
	}
	if f.Inode.Type != TypePipe && f.Flags&OWrite == 0 {
		return 0, ErrBadF
	}
	switch f.Inode.Type {
	case TypeRegular:
		charge(workRegularIO)
	case TypePipe:
		charge(workPipeIO)
	default:
		charge(workDeviceIO)
	}
	defer k.lockFile(f)()
	if f.Inode.Type == TypePipe {
		// The label check result must not be observable: consult the hook
		// but report success regardless, dropping the message on a
		// failure, exactly like a full buffer. An injected write-side
		// fault takes the same silent-drop path — the caller cannot tell
		// a policy drop, a fault drop and a delivery apart.
		delivered := true
		if k.sec != nil {
			k.hook()
			if err := k.sec.FilePermission(t, f, MayWrite); err != nil {
				delivered = false
			}
		}
		if err := k.inject("fs.write", t); err != nil {
			if errIsKilled(err) {
				return 0, err
			}
			delivered = false
		}
		if delivered {
			unlock := k.lockInode(f.Inode)
			f.Inode.pipe.write(data)
			unlock()
		}
		return len(data), nil
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.FilePermission(t, f, MayWrite); err != nil {
			return 0, err
		}
	}
	switch f.Inode.Type {
	case TypeRegular:
		ino := f.Inode
		// A fault on an approved file write tears it: the first half of the
		// data lands, the rest is lost, and the syscall reports the fault.
		// The offset does not advance — exactly a half-flushed page cache.
		if err := k.inject("fs.write", t); err != nil {
			torn := data[:len(data)/2]
			unlock := k.lockInode(ino)
			end := f.offset + len(torn)
			if end > len(ino.data) {
				grown := make([]byte, end)
				copy(grown, ino.data)
				ino.data = grown
			}
			copy(ino.data[f.offset:], torn)
			unlock()
			return 0, err
		}
		unlock := k.lockInode(ino)
		end := f.offset + len(data)
		if end > len(ino.data) {
			grown := make([]byte, end)
			copy(grown, ino.data)
			ino.data = grown
		}
		copy(ino.data[f.offset:], data)
		f.offset = end
		unlock()
		k.ioWait()
		return len(data), nil
	case TypeDevNull, TypeDevZero:
		return len(data), nil
	default:
		return 0, ErrInval
	}
}

// WriteVec writes the chunks to the descriptor as one batched syscall:
// one entry-lock acquisition, one descriptor lookup, one security check
// and one dispatch charge cover the whole vector, amortizing the fixed
// per-syscall overhead that dominates small writes.
//
// Checking the batch with a single verdict is equivalent to per-element
// checks: the caller's labels and capabilities cannot change while its
// syscall-entry lock is held (every label mutation path serializes on
// the same lock, cross-task ones via begin2), and inode security blobs
// are immutable in place — so all elements of the vector would receive
// the same answer the first element does.
//
// Pipe semantics match Write: an illegal flow or an injected fault
// silently drops the entire vector and the caller sees success. On
// regular files an injected fault tears the batch at an element
// boundary — the first half of the chunks land, the rest are lost, the
// offset does not advance, and the syscall reports the fault.
func (k *Kernel) WriteVec(t *Task, fd FD, chunks [][]byte) (int, error) {
	defer k.begin(t)()
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if f.Inode.Type == TypePipe && f.pipeReadEnd {
		return 0, ErrBadF
	}
	if f.Inode.Type != TypePipe && f.Flags&OWrite == 0 {
		return 0, ErrBadF
	}
	charge(workWriteDispatch)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	defer k.lockFile(f)()
	if f.Inode.Type == TypePipe {
		charge(len(chunks) * workPipeData)
		delivered := true
		if k.sec != nil {
			k.hook()
			if err := k.sec.FilePermission(t, f, MayWrite); err != nil {
				delivered = false
			}
		}
		if err := k.inject("fs.writev", t); err != nil {
			if errIsKilled(err) {
				return 0, err
			}
			delivered = false
		}
		if delivered {
			unlock := k.lockInode(f.Inode)
			for _, c := range chunks {
				f.Inode.pipe.write(c)
			}
			unlock()
		}
		return total, nil
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.FilePermission(t, f, MayWrite); err != nil {
			return 0, err
		}
	}
	switch f.Inode.Type {
	case TypeRegular:
		charge(len(chunks) * workWriteData)
		ino := f.Inode
		if err := k.inject("fs.writev", t); err != nil {
			torn := chunks[:len(chunks)/2]
			unlock := k.lockInode(ino)
			off := f.offset
			for _, c := range torn {
				end := off + len(c)
				if end > len(ino.data) {
					grown := make([]byte, end)
					copy(grown, ino.data)
					ino.data = grown
				}
				copy(ino.data[off:], c)
				off = end
			}
			unlock()
			return 0, err
		}
		unlock := k.lockInode(ino)
		end := f.offset + total
		if end > len(ino.data) {
			grown := make([]byte, end)
			copy(grown, ino.data)
			ino.data = grown
		}
		off := f.offset
		for _, c := range chunks {
			copy(ino.data[off:], c)
			off += len(c)
		}
		f.offset = end
		unlock()
		k.ioWait()
		return total, nil
	case TypeDevNull, TypeDevZero:
		return total, nil
	default:
		return 0, ErrInval
	}
}

// Precheck runs the security check for mask against each descriptor
// without moving any data. With the verdict cache enabled this warms the
// acting task's cache, so a following burst of I/O on the descriptors
// starts on memoized verdicts (the rt layer issues it on security-region
// entry). A prefetch IS a check: each descriptor's verdict goes through
// the full hook surface, telemetry included. The first error (denial or
// bad descriptor) is returned; callers typically ignore it, since the
// real operation will re-derive any denial itself.
func (k *Kernel) Precheck(t *Task, mask AccessMask, fds ...FD) error {
	defer k.begin(t)()
	var first error
	for _, fd := range fds {
		f, err := t.file(fd)
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if k.sec != nil {
			unlock := k.lockFile(f)
			k.hook()
			err := k.sec.FilePermission(t, f, mask)
			unlock()
			if err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Seek resets a regular file's offset.
func (k *Kernel) Seek(t *Task, fd FD, offset int) error {
	defer k.begin(t)()
	f, err := t.file(fd)
	if err != nil {
		return err
	}
	if f.Inode.Type != TypeRegular || offset < 0 {
		return ErrInval
	}
	defer k.lockFile(f)()
	f.offset = offset
	return nil
}

// Unlink removes the entry at path. Removing a name writes the parent
// directory, and removing the inode requires write access to it.
func (k *Kernel) Unlink(t *Task, path string) error {
	defer k.begin(t)()
	charge(workUnlink)
	if err := k.inject("fs.unlink", t); err != nil {
		return err
	}
	dir, name, err := k.resolveParent(t, path)
	if err != nil {
		return hideDenied(err)
	}
	if name == "" {
		return ErrIsDir
	}
	// Hold dir's write lock across lookup → checks → delete so the entry
	// cannot be swapped or re-created between the check and the removal.
	unlock := k.lockInode(dir)
	defer unlock()
	ino, err := k.lookupIn(t, dir, name)
	if err != nil {
		return hideDenied(err)
	}
	if ino.IsDir() {
		return ErrIsDir
	}
	if k.sec != nil {
		// Unlink's success/failure observably reveals the entry, so the
		// module checks visibility (MayUnlink): a caller that cannot read
		// the inode — and could not after any legal label change — must see
		// the same ENOENT as for a nonexistent path. Checked first so
		// read-denial wins over any EACCES from the write checks.
		k.hook()
		if err := k.sec.InodePermission(t, ino, MayUnlink); err != nil {
			return hideDenied(err)
		}
		k.hook()
		if err := k.sec.InodePermission(t, dir, MayWrite); err != nil {
			return err
		}
		k.hook()
		if err := k.sec.InodePermission(t, ino, MayWrite); err != nil {
			return err
		}
	}
	delete(dir.children, name)
	unlockC := k.lockInode(ino) // parent→child order, dir still held
	ino.nlink--
	unlockC()
	return nil
}

// Mkdir creates an unlabeled directory.
func (k *Kernel) Mkdir(t *Task, path string, mode Mode) error {
	return k.mkdirLabeled(t, path, mode, nil)
}

// MkdirLabeled implements mkdir_labeled (Figure 3).
func (k *Kernel) MkdirLabeled(t *Task, path string, mode Mode, labels difc.Labels) error {
	return k.mkdirLabeled(t, path, mode, &labels)
}

func (k *Kernel) mkdirLabeled(t *Task, path string, mode Mode, labels *difc.Labels) error {
	defer k.begin(t)()
	charge(workMkdir)
	if err := k.inject("fs.mkdir", t); err != nil {
		return err
	}
	dir, name, err := k.resolveParent(t, path)
	if err != nil {
		return hideDenied(err)
	}
	if name == "" {
		return ErrExist
	}
	unlock := k.lockInode(dir)
	defer unlock()
	if _, err := k.lookupIn(t, dir, name); err == nil {
		return ErrExist
	} else if err != ErrNoEnt {
		return hideDenied(err)
	}
	child := newInode(TypeDir, mode)
	child.parent = dir
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodeInitSecurity(t, dir, child, labels); err != nil {
			return err
		}
		k.hook()
		if err := k.sec.InodePermission(t, dir, MayWrite); err != nil {
			return err
		}
	}
	dir.children[name] = child
	if k.sec != nil {
		k.hook()
		if perr := k.sec.InodePostCreate(t, dir, child); perr != nil {
			if errIsKilled(perr) {
				k.killTaskHolding(t)
			} else {
				delete(dir.children, name)
			}
			return perr
		}
	}
	return nil
}

// ReadDir lists the entries of the directory at path.
func (k *Kernel) ReadDir(t *Task, path string) ([]string, error) {
	defer k.begin(t)()
	charge(workReadDir)
	if err := k.inject("fs.readdir", t); err != nil {
		return nil, err
	}
	ino, err := k.resolve(t, path)
	if err != nil {
		return nil, hideDenied(err)
	}
	if !ino.IsDir() {
		return nil, ErrNotDir
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodePermission(t, ino, MayRead); err != nil {
			return nil, hideDenied(err)
		}
	}
	unlock := k.rlockInode(ino)
	names := ino.childNames()
	unlock()
	return names, nil
}

// Pipe creates a pipe and returns (read end, write end). The pipe's inode
// label is initialized from the creating task by the security module.
func (k *Kernel) Pipe(t *Task) (FD, FD, error) {
	defer k.begin(t)()
	if err := k.inject("fs.pipe", t); err != nil {
		return -1, -1, err
	}
	ino := newInode(TypePipe, 0o600)
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodeInitSecurity(t, nil, ino, nil); err != nil {
			return -1, -1, err
		}
	}
	r := &File{Inode: ino, Flags: ORead, pipeReadEnd: true}
	w := &File{Inode: ino, Flags: OWrite}
	return t.installFD(r), t.installFD(w), nil
}

// DupTo duplicates an open descriptor of src into dst's descriptor table,
// modeling fd passing between the threads of one process. Both tasks must
// belong to the same simulated process for this to be meaningful; the
// security hooks still check every subsequent operation.
func (k *Kernel) DupTo(src *Task, fd FD, dst *Task) (FD, error) {
	defer k.begin2(src, dst)()
	f, err := src.file(fd)
	if err != nil {
		return -1, err
	}
	return dst.installFD(f), nil
}

// --- xattr syscalls (labels are persisted here by the module) ---

// GetXattr reads an extended attribute from the inode at path.
func (k *Kernel) GetXattr(t *Task, path, name string) ([]byte, error) {
	defer k.begin(t)()
	charge(workXattr)
	if err := k.inject("fs.xattr", t); err != nil {
		return nil, err
	}
	ino, err := k.resolve(t, path)
	if err != nil {
		return nil, hideDenied(err)
	}
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodePermission(t, ino, MayRead); err != nil {
			return nil, hideDenied(err)
		}
	}
	unlock := k.rlockInode(ino)
	v, ok := ino.GetXattr(name)
	unlock()
	if !ok {
		return nil, ErrNoAttr
	}
	return v, nil
}

// --- mmap / prot fault (Table 2 microbenchmarks) ---

// Mmap maps length bytes. file == -1 requests an anonymous mapping;
// otherwise the mapping is backed by the open file, and the security
// module checks the flow implied by prot.
func (k *Kernel) Mmap(t *Task, length int, prot int, file FD) (uint64, error) {
	defer k.begin(t)()
	charge(workMmap)
	if length <= 0 {
		return 0, ErrInval
	}
	var backing *Inode
	if file >= 0 {
		f, err := t.file(file)
		if err != nil {
			return 0, err
		}
		backing = f.Inode
		if k.sec != nil {
			k.hook()
			if err := k.sec.MmapFile(t, backing, prot); err != nil {
				return 0, err
			}
		}
	}
	npages := (length + PageSize - 1) / PageSize
	addr := 0x7f00_0000_0000 + t.nextMap
	t.nextMap += uint64(npages) * PageSize
	t.vmas = append(t.vmas, vma{
		addr:    addr,
		length:  npages * PageSize,
		prot:    prot,
		present: make([]bool, npages),
		file:    backing,
	})
	return addr, nil
}

// Munmap removes the mapping starting at addr.
func (k *Kernel) Munmap(t *Task, addr uint64) error {
	defer k.begin(t)()
	charge(workMmap / 6)
	for i := range t.vmas {
		if t.vmas[i].addr == addr {
			t.vmas = append(t.vmas[:i], t.vmas[i+1:]...)
			return nil
		}
	}
	return ErrInval
}

// Mprotect changes the protection of the mapping at addr and marks all its
// pages not-present, so the next access takes a protection fault — the
// lat_protfault pattern from lmbench.
func (k *Kernel) Mprotect(t *Task, addr uint64, prot int) error {
	defer k.begin(t)()
	for i := range t.vmas {
		if t.vmas[i].addr == addr {
			t.vmas[i].prot = prot
			for j := range t.vmas[i].present {
				t.vmas[i].present[j] = false
			}
			return nil
		}
	}
	return ErrInval
}

// PageFault simulates the fault path for an access at addr with the given
// intent. It validates the vma, applies the module's mmap check for
// file-backed pages, and maps the page in.
func (k *Kernel) PageFault(t *Task, addr uint64, write bool) error {
	defer k.begin(t)()
	charge(workProtFault)
	for i := range t.vmas {
		v := &t.vmas[i]
		if addr >= v.addr && addr < v.addr+uint64(v.length) {
			want := ProtRead
			if write {
				want = ProtWrite
			}
			if v.prot&want == 0 {
				return ErrFault
			}
			if v.file != nil && k.sec != nil {
				k.hook()
				if err := k.sec.MmapFile(t, v.file, want); err != nil {
					return err
				}
			}
			v.present[(addr-v.addr)/PageSize] = true
			return nil
		}
	}
	return ErrFault
}
