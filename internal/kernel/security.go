package kernel

import "laminar/internal/difc"

// AccessMask describes the kind of access being checked by a permission
// hook, mirroring the MAY_READ/MAY_WRITE/MAY_EXEC masks LSM hooks receive.
type AccessMask uint8

// Access mask bits.
const (
	MayRead AccessMask = 1 << iota
	MayWrite
	MayExec
	// MayUnlink asks whether the task may observe and remove the inode's
	// directory entry. Unlink's outcome reveals the entry's existence, so
	// modules grant it only to callers that can read the inode — or could,
	// after a legal label change (the tag's capability holders). Denials
	// must look like ENOENT.
	MayUnlink
)

// LabelType selects which of a principal's two labels a label-management
// syscall operates on.
type LabelType uint8

// Label types for set_task_label.
const (
	Secrecy LabelType = iota
	Integrity
)

// Capability names a single (tag, kind) capability for transfer and drop
// operations.
type Capability struct {
	Tag  difc.Tag
	Kind difc.CapKind
}

// SecurityModule is the hook table a security module registers with the
// kernel — the simulated equivalent of struct security_operations. Every
// hook receives the acting task; returning a non-nil error denies the
// operation.
//
// The Laminar module (package lsm) implements all of these. Running the
// kernel with a nil module reproduces unmodified Linux for the Table 2
// baselines.
type SecurityModule interface {
	// Name identifies the module ("laminar").
	Name() string

	// TaskAlloc runs at fork: the module populates child.Security from
	// parent (labels inherited, capabilities restricted to keep, which is
	// nil to mean "all"). It must reject keep sets that exceed the
	// parent's capabilities.
	TaskAlloc(parent, child *Task, keep []Capability) error

	// TaskFree runs at exit.
	TaskFree(t *Task)

	// InodeInitSecurity runs when an inode is created inside dir. labels
	// is non-nil only for the create_file_labeled/mkdir_labeled syscalls;
	// the module enforces the three labeled-create conditions of §5.2 and
	// attaches the in-memory label state.
	InodeInitSecurity(t *Task, dir, inode *Inode, labels *difc.Labels) error

	// InodePostCreate runs after the new inode has been linked into its
	// parent directory; the module persists the inode's labels to xattrs
	// here (shadow-write + flip, so a crash mid-persist is recoverable).
	// On a non-crash error the kernel unlinks the entry and fails the
	// create; on EKILLED (injected crash) the partial state is left in
	// place for the recovery pass, exactly as a machine crash would.
	InodePostCreate(t *Task, dir, inode *Inode) error

	// InodePermission checks an access to an inode by path operations
	// (stat, unlink, directory lookup). The mask says what the caller
	// wants to do.
	InodePermission(t *Task, inode *Inode, mask AccessMask) error

	// FilePermission checks each read/write on an open file description,
	// including pipe ends. Laminar checks every operation, so there is no
	// Flume-style endpoint state.
	FilePermission(t *Task, f *File, mask AccessMask) error

	// MmapFile checks a file-backed mmap request.
	MmapFile(t *Task, inode *Inode, prot int) error

	// TaskKill checks signal delivery from t to target.
	TaskKill(t *Task, target *Task, sig Signal) error

	// --- Laminar label-management syscalls (Figure 3) ---

	// AllocTag creates a fresh tag and grants the caller both
	// capabilities for it.
	AllocTag(t *Task) (difc.Tag, error)

	// SetTaskLabel replaces the caller's label of the given type,
	// enforcing the label-change rule against the caller's capabilities.
	SetTaskLabel(t *Task, typ LabelType, l difc.Label) error

	// DropLabelTCB clears the current labels of target without capability
	// checks; only callable by a task carrying the special tcb integrity
	// tag, and only for tasks in the caller's own process group (the VM's
	// own threads).
	DropLabelTCB(t *Task, target *Task) error

	// DropCapabilities removes capabilities from the caller. When tmp is
	// true the drop is a suspension that RestoreCapabilities can undo
	// (used for the scope of a security region or across fork).
	DropCapabilities(t *Task, caps []Capability, tmp bool) error

	// RestoreCapabilities undoes temporary drops.
	RestoreCapabilities(t *Task) error

	// WriteCapability queues a capability on a pipe for the reader to
	// claim; the module checks that sender labels permit the flow.
	WriteCapability(t *Task, cap Capability, f *File) error

	// ReadCapability claims a queued capability from a pipe.
	ReadCapability(t *Task, f *File) (Capability, error)
}
