package kernel

import "sync/atomic"

// Work model. The simulated kernel elides the hardware work of a real
// syscall — mode switches, page-table updates, address-space copies, disk
// metadata writes — which would make security-hook costs look enormous
// relative to near-free in-memory operations. Each syscall therefore
// charges a work quantum proportional to its measured cost on the paper's
// platform (the Linux column of Table 2, compressed at the extremes so
// benchmarks stay fast). Hook overhead then lands on a realistic
// denominator, which is what makes the Table 2 *ratios* reproducible.
//
// The quanta are in spin units of roughly a nanosecond each; ratios
// between operations follow lmbench on Linux 2.6.22 (stat 0.92µs, fork
// 96µs, exec 300µs, 0k create 6.3µs, delete 2.5µs, mmap 6.9ms, prot fault
// 0.24µs, null I/O 0.13µs), with fork/exec/mmap compressed 10–500× to
// keep iteration counts practical.
const (
	workStat      = 900
	workFork      = 9600  // 96µs /10
	workExec      = 20000 // 300µs /15, charged on top of fork in lat_proc
	workCreate    = 6000
	workUnlink    = 2400
	workMkdir     = 6000
	workMmap      = 13000 // 6.9ms /500
	workProtFault = 220
	workRegularIO = 400 // per read/write on regular files
	workDeviceIO  = 100 // null I/O: the minimal syscall
	workPipeIO    = 300
	workSignal    = 300
	workReadDir   = 600
	workXattr     = 500

	// Vectored-write decomposition. A scalar regular-file write's
	// workRegularIO covers both the fixed syscall overhead (mode switch,
	// dispatch, fd lookup) and the per-payload data movement; lmbench's
	// null-I/O number (workDeviceIO) is a good estimate of the fixed
	// part, leaving the rest as data cost. WriteVec charges the dispatch
	// quantum once per batch and the data quantum once per element, so a
	// vector of n chunks costs workWriteDispatch + n*workWriteData
	// against n*(workWriteDispatch+workWriteData) for n scalar writes —
	// the same bytes, minus n-1 syscall entries.
	workWriteDispatch = workDeviceIO                    // 100: fixed per-syscall overhead
	workWriteData     = workRegularIO - workDeviceIO    // 300: per-chunk regular-file data
	workPipeData      = workPipeIO - workDeviceIO       // 200: per-chunk pipe data
)

// workSink defeats dead-code elimination of the spin loop. Accessed
// atomically: charge() runs outside any kernel lock in sharded mode (the
// spin models per-CPU hardware work, so it must not serialize syscalls).
var workSink atomic.Uint64

// charge spins for approximately units nanoseconds of CPU work.
func charge(units int) {
	acc := workSink.Load()
	for i := 0; i < units; i++ {
		acc = acc*1664525 + 1013904223
	}
	workSink.Store(acc)
}
