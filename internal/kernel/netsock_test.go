package kernel

import (
	"bytes"
	"errors"
	"testing"

	"laminar/internal/difc"
)

// netBoot boots a kernel with the deterministic tagModule so the labeled
// net-endpoint creation and per-operation checks are exercised without
// importing the real lsm (which would cycle).
func netBoot(t *testing.T) (*Kernel, *Task) {
	t.Helper()
	k := New(WithSecurityModule(tagModule{}))
	return k, k.InitTask()
}

func TestNetSocketFeedDrain(t *testing.T) {
	k, init := netBoot(t)
	fd, f, err := k.NetSocket(init, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	// App sends; the transport drains the approved bytes.
	if n, err := k.Send(init, fd, []byte("hello")); err != nil || n != 5 {
		t.Fatalf("send = %d, %v", n, err)
	}
	if got := k.NetDrain(f, 0); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("drain = %q", got)
	}
	if got := k.NetDrain(f, 0); got != nil {
		t.Fatalf("second drain = %q, want empty", got)
	}
	// Transport feeds; the app receives.
	if !k.NetFeed(f, []byte("reply")) {
		t.Fatal("feed rejected")
	}
	buf := make([]byte, 16)
	if n, err := k.Recv(init, fd, buf); err != nil || string(buf[:n]) != "reply" {
		t.Fatalf("recv = %q, %v", buf[:n], err)
	}
}

func TestNetSocketDrainRespectsMax(t *testing.T) {
	k, init := netBoot(t)
	fd, f, err := k.NetSocket(init, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Send(init, fd, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if got := k.NetDrain(f, 4); string(got) != "abcd" {
		t.Fatalf("bounded drain = %q", got)
	}
	if got := k.NetDrain(f, 4); string(got) != "ef" {
		t.Fatalf("remainder drain = %q", got)
	}
}

func TestNetSocketDeniedSendNeverReachesWire(t *testing.T) {
	// A channel the sender may not write to: Send reports success (silent
	// drop, §5.2) and the transport has nothing to drain — the denied
	// message must never reach the wire.
	k, init := netBoot(t)
	fd, f, err := k.NetSocket(init, difc.Labels{S: difc.NewLabel(denyWriteTag)})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := k.Send(init, fd, []byte("secret")); err != nil || n != 6 {
		t.Fatalf("denied send = %d, %v (must look delivered)", n, err)
	}
	if got := k.NetDrain(f, 0); got != nil {
		t.Fatalf("denied bytes reached the transport: %q", got)
	}
}

func TestNetSocketDeniedRecv(t *testing.T) {
	// Data the receiver may not read stays in the endpoint: the fd-level
	// Recv check fires before the buffer is inspected.
	k, init := netBoot(t)
	fd, f, err := k.NetSocket(init, difc.Labels{S: difc.NewLabel(denyReadTag)})
	if err != nil {
		t.Fatal(err)
	}
	if !k.NetFeed(f, []byte("x")) {
		t.Fatal("feed rejected")
	}
	if _, err := k.Recv(init, fd, make([]byte, 4)); !errors.Is(err, ErrAccessRead) {
		t.Fatalf("denied recv = %v, want read-denial", err)
	}
}

func TestNetSocketAdoptedEndpoint(t *testing.T) {
	// The accepting side: labels are attached by the trusted transport
	// before publication, no create check runs, and the per-operation
	// hooks then govern the endpoint like any local socket.
	k, init := netBoot(t)
	f := k.NetSocketAdopted(func(ino *Inode) {
		ino.Security = difc.Labels{S: difc.NewLabel(denyWriteTag)}
	})
	// Data may arrive before any task accepts the channel.
	if !k.NetFeed(f, []byte("early")) {
		t.Fatal("feed before install rejected")
	}
	fd := k.InstallFile(init, f)
	buf := make([]byte, 16)
	if n, err := k.Recv(init, fd, buf); err != nil || string(buf[:n]) != "early" {
		t.Fatalf("recv = %q, %v", buf[:n], err)
	}
	// The adopted labels still bind local writers: a denied Send drops.
	if n, err := k.Send(init, fd, []byte("up")); err != nil || n != 2 {
		t.Fatalf("send = %d, %v", n, err)
	}
	if got := k.NetDrain(f, 0); got != nil {
		t.Fatalf("denied send leaked to wire: %q", got)
	}
}

func TestNetFeedBackpressure(t *testing.T) {
	k, init := netBoot(t)
	_, f, err := k.NetSocket(init, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if !k.NetFeed(f, make([]byte, pipeCapacity)) {
		t.Fatal("fill feed rejected")
	}
	if k.NetFeed(f, []byte("x")) {
		t.Fatal("overfull feed accepted; backpressure bit lost")
	}
}

func TestSocketpairLabeled(t *testing.T) {
	k, init := netBoot(t)
	a, b, err := k.SocketpairLabeled(init, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Send(init, a, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := k.Recv(init, b, buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("recv = %q, %v", buf[:n], err)
	}
	// Denied labels behave exactly like the remote path's endpoints.
	da, db, err := k.SocketpairLabeled(init, difc.Labels{S: difc.NewLabel(denyWriteTag)})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := k.Send(init, da, []byte("drop")); err != nil || n != 4 {
		t.Fatalf("denied send = %d, %v", n, err)
	}
	if _, err := k.Recv(init, db, buf); !errors.Is(err, ErrAgain) {
		t.Fatalf("recv after denied send = %v, want EAGAIN", err)
	}
}
