package kernel

import (
	"sync"
	"time"
)

// This file implements the kernel's two locking disciplines.
//
// Historically every syscall serialized on one big kernel lock (k.mu).
// That is still available — WithBigLock() — because a serial kernel is
// the ideal differential-testing oracle. The default is now fine-grained:
//
//	lock                 guards
//	----                 ------
//	Task.mu              fds, nextFD, sigs, vmas, nextMap, Cwd, Security blob
//	File.mu              offset, lazily attached file Security blob
//	Inode.mu (RWMutex)   data, children, xattrs, pipe buffer, nlink
//	taskShard.mu ×16     one shard of the task table
//	Kernel.lmu           the listener namespace map
//	listener.mu          one listener's pending-connection queue
//
// Lock ORDER (outer → inner); a path may skip levels but never go back up:
//
//	task locks (two at once only via begin2, ascending TID)
//	→ file lock
//	→ inode locks (parent before child; a path walk holds at most one
//	  at a time and releases it before stepping to the next component)
//	→ task-table shard locks, listener locks (leaf; nothing is acquired
//	  under them)
//
// Security-module hooks run with the acting task's lock held and take no
// inode locks themselves. That is sound because label blobs are made
// immutable-in-place for inodes: every inode gets its blob before it is
// published (InodeInitSecurity pre-links it; boot inodes are primed in
// New via InodePrimer), so hook-side reads race with nothing. Task blobs
// are only mutated under that task's lock (own-task syscalls, begin2 for
// cross-task ones, WithTasksLocked for the VM runtime's trusted path).
//
// The counters nextTID/nextProc/hookCalls and the flags Task.exited are
// atomics, readable without any lock in both modes.

// lockMode selects the concurrency discipline for one kernel instance.
type lockMode uint8

const (
	// lockSharded is the default fine-grained discipline.
	lockSharded lockMode = iota
	// lockBig serializes every syscall on k.mu, as the original kernel
	// did. The fine-grained locks are still taken (they are uncontended
	// and keep the code path identical); k.mu on the outside restores
	// the serial execution model.
	lockBig
)

// WithBigLock makes the kernel serialize every syscall on the big kernel
// lock, recreating the original execution model. Used as the oracle in
// differential tests and as the baseline in concurrency benchmarks.
func WithBigLock() Option {
	return func(k *Kernel) { k.mode = lockBig }
}

// WithIOLatency models device time for regular-file data transfers: each
// regular read/write sleeps d while holding its file/inode locks (and,
// in big-lock mode, the big kernel lock — which is precisely why a big
// kernel lock caps I/O-bound throughput). Zero (the default) disables
// the model; Table 2 style CPU-cost accounting via charge() is
// unaffected.
func WithIOLatency(d time.Duration) Option {
	return func(k *Kernel) { k.ioLatency = d }
}

// ioWait charges the configured device latency for one regular-file data
// transfer. Called with the transfer's locks held, deliberately.
func (k *Kernel) ioWait() {
	if k.ioLatency > 0 {
		time.Sleep(k.ioLatency)
	}
}

// InodePrimer is implemented by security modules that can attach a
// security blob to an inode or task outside any syscall. New() uses it
// to give every boot-time object (the filesystem skeleton, the socket
// namespace, the init task) its blob before the first syscall runs, so
// hook-side blob reads never race with a lazy first-touch allocation
// under the sharded discipline.
type InodePrimer interface {
	PrimeInode(ino *Inode)
	PrimeTask(t *Task)
}

// --- syscall entry guards -------------------------------------------------

// nopUnlock is returned by guards that had nothing to lock.
func nopUnlock() {}

// begin enters a syscall on behalf of t and returns the matching unlock.
// Big-lock mode: the big kernel lock. Sharded mode: t's task lock, held
// for the whole syscall (a task is a thread; its syscalls are serial by
// construction, so this is uncontended unless tests share a Task across
// goroutines — which the task lock makes safe too).
func (k *Kernel) begin(t *Task) func() {
	if k.mode == lockBig {
		k.mu.Lock()
		return k.mu.Unlock
	}
	if t == nil {
		return nopUnlock
	}
	// With telemetry active, a failed TryLock counts as one contended
	// syscall entry before falling back to the blocking acquire. The
	// disabled path takes the plain Lock with no extra atomics.
	if rec := k.tel; rec != nil && rec.Active() {
		if !t.mu.TryLock() {
			rec.M.LockContention.Inc(uint64(t.TID))
			t.mu.Lock()
		}
		return t.mu.Unlock
	}
	t.mu.Lock()
	return t.mu.Unlock
}

// begin2 enters a syscall that touches two tasks (kill, dup-to,
// drop_label_tcb). Locks are taken in ascending TID order so concurrent
// cross-task syscalls cannot deadlock.
func (k *Kernel) begin2(a, b *Task) func() {
	if k.mode == lockBig {
		k.mu.Lock()
		return k.mu.Unlock
	}
	switch {
	case b == nil || a == b:
		return k.begin(a)
	case a == nil:
		return k.begin(b)
	}
	lo, hi := a, b
	if lo.TID > hi.TID {
		lo, hi = hi, lo
	}
	lo.mu.Lock()
	hi.mu.Lock()
	return func() {
		hi.mu.Unlock()
		lo.mu.Unlock()
	}
}

// WithTasksLocked runs fn with the syscall-entry locks of a and b held —
// the trusted side door for the VM runtime, whose label-sync path calls
// module methods (SetLabelTCB) directly rather than through a syscall.
// Either task may be nil.
func (k *Kernel) WithTasksLocked(a, b *Task, fn func()) {
	defer k.begin2(a, b)()
	fn()
}

// --- data locks -----------------------------------------------------------

// The fine-grained locks are taken unconditionally in both modes: in
// big-lock mode they are uncontended by construction, and sharing one
// code path is what makes the serial kernel a meaningful oracle.

func (k *Kernel) lockInode(i *Inode) func() {
	i.mu.Lock()
	return i.mu.Unlock
}

func (k *Kernel) rlockInode(i *Inode) func() {
	i.mu.RLock()
	return i.mu.RUnlock
}

func (k *Kernel) lockFile(f *File) func() {
	f.mu.Lock()
	return f.mu.Unlock
}

// --- sharded task table ---------------------------------------------------

const taskShardCount = 16

type taskShard struct {
	mu sync.RWMutex
	m  map[TID]*Task
}

func (k *Kernel) shardFor(tid TID) *taskShard {
	return &k.shards[uint64(tid)%taskShardCount]
}

// taskLookup finds a task by TID; it may be exited. Takes only the shard
// lock, so it is safe at any point in the lock order above shard level.
func (k *Kernel) taskLookup(tid TID) (*Task, bool) {
	sh := k.shardFor(tid)
	sh.mu.RLock()
	t, ok := sh.m[tid]
	sh.mu.RUnlock()
	return t, ok
}

// taskInsert publishes a fully initialized task.
func (k *Kernel) taskInsert(t *Task) {
	sh := k.shardFor(t.TID)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[TID]*Task)
	}
	sh.m[t.TID] = t
	sh.mu.Unlock()
}

// taskDelete removes a task from the table.
func (k *Kernel) taskDelete(tid TID) {
	sh := k.shardFor(tid)
	sh.mu.Lock()
	delete(sh.m, tid)
	sh.mu.Unlock()
}

// taskRange visits every live table entry. The callback runs under the
// shard's read lock and must not acquire task locks (lock order).
func (k *Kernel) taskRange(fn func(*Task)) {
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		for _, t := range sh.m {
			fn(t)
		}
		sh.mu.RUnlock()
	}
}
