package kernel

import (
	"errors"
	"testing"
)

func TestSocketpairBasics(t *testing.T) {
	k, init := bare(t)
	a, b, err := k.Socketpair(init)
	if err != nil {
		t.Fatal(err)
	}
	// Bidirectional: each end sends to the other.
	if _, err := k.Send(init, a, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := k.Recv(init, b, buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("recv = %q, %v", buf[:n], err)
	}
	if _, err := k.Send(init, b, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = k.Recv(init, a, buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("recv = %q, %v", buf[:n], err)
	}
	// Empty: EAGAIN, never EOF.
	if _, err := k.Recv(init, a, buf); !errors.Is(err, ErrAgain) {
		t.Errorf("empty recv = %v, want EAGAIN", err)
	}
	// Send/Recv on a non-socket fd.
	fd, _ := k.Open(init, "/tmp/f", OCreate|OWrite)
	if _, err := k.Send(init, fd, nil); !errors.Is(err, ErrInval) {
		t.Errorf("send on file = %v", err)
	}
	if _, err := k.Recv(init, fd, buf); !errors.Is(err, ErrInval) {
		t.Errorf("recv on file = %v", err)
	}
}

func TestListenConnectAccept(t *testing.T) {
	k, init := bare(t)
	server, _ := k.Fork(init, nil)
	client, _ := k.Fork(init, nil)

	if err := k.Listen(server, "chat"); err != nil {
		t.Fatal(err)
	}
	if err := k.Listen(server, "chat"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate listen = %v", err)
	}
	// Accept before any connection: EAGAIN.
	if _, err := k.Accept(server, "chat"); !errors.Is(err, ErrAgain) {
		t.Errorf("early accept = %v", err)
	}
	cfd, err := k.Connect(client, "chat")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := k.Accept(server, "chat")
	if err != nil {
		t.Fatal(err)
	}
	// Round trip across processes.
	if _, err := k.Send(client, cfd, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := k.Recv(server, sfd, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("server recv = %q, %v", buf[:n], err)
	}
	// Only the owner accepts.
	if _, err := k.Accept(client, "chat"); !errors.Is(err, ErrPerm) {
		t.Errorf("foreign accept = %v", err)
	}
	// Connect to a missing name.
	if _, err := k.Connect(client, "nope"); !errors.Is(err, ErrNoEnt) {
		t.Errorf("connect missing = %v", err)
	}
	if _, err := k.Accept(server, "nope"); !errors.Is(err, ErrNoEnt) {
		t.Errorf("accept missing = %v", err)
	}
}
