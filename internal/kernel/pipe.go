package kernel

// pipeBuf is the message buffer backing a pipe inode. Laminar pipes are
// deliberately unreliable (§5.2): a write whose labels do not permit the
// flow, or that lands in a full buffer, is silently dropped, because an
// error code would itself leak information. Reads are non-blocking and
// there is no EOF from writer exit, since an EOF notification from a
// tainted writer would violate the flow rules.
type pipeBuf struct {
	buf []byte
	max int
	// capQueue holds capabilities in flight between principals
	// (write_capability syscall). The payloads are opaque blobs owned by
	// the security module; the kernel only queues and dequeues them.
	capQueue []any
}

// pipeCapacity mirrors the 64 KiB default Linux pipe buffer.
const pipeCapacity = 64 * 1024

func newPipeBuf() *pipeBuf {
	return &pipeBuf{max: pipeCapacity}
}

// write appends data, silently dropping the message if it does not fit.
// It reports whether the message was delivered, but note that the syscall
// layer never exposes that bit to the writer.
func (p *pipeBuf) write(data []byte) bool {
	if len(p.buf)+len(data) > p.max {
		return false
	}
	p.buf = append(p.buf, data...)
	return true
}

// read moves up to len(dst) bytes out of the buffer, returning the count.
// An empty buffer returns 0; the syscall layer maps that to EAGAIN.
func (p *pipeBuf) read(dst []byte) int {
	n := copy(dst, p.buf)
	if n > 0 {
		rest := len(p.buf) - n
		copy(p.buf, p.buf[n:])
		p.buf = p.buf[:rest]
	}
	return n
}

func (p *pipeBuf) len() int { return len(p.buf) }
