package kernel

import (
	"sort"
	"sync"
	"sync/atomic"
)

// InodeType distinguishes the kinds of filesystem objects the simulated
// VFS supports.
type InodeType uint8

// Inode types.
const (
	TypeRegular InodeType = iota
	TypeDir
	TypePipe
	TypeDevNull // writes vanish, reads return EOF-like zero count
	TypeDevZero // reads produce zero bytes forever
)

// String names the inode type.
func (t InodeType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "dir"
	case TypePipe:
		return "pipe"
	case TypeDevNull:
		return "devnull"
	case TypeDevZero:
		return "devzero"
	default:
		return "unknown"
	}
}

// Mode is a simplified permission mode (unused bits are preserved for
// realism but the simulated kernel enforces DIFC, not rwx bits).
type Mode uint32

// Ino is an inode number, unique for the lifetime of the kernel.
type Ino uint64

var inoCounter atomic.Uint64

// Inode is the simulated VFS inode. The label of an inode protects its
// contents and metadata except for its name, which the parent directory's
// label protects (§5.2). Labels live behind the opaque Security field,
// managed by the registered SecurityModule, mirroring the security blob
// LSM attaches to struct inode.
type Inode struct {
	Ino    Ino
	Type   InodeType
	Mode   Mode
	parent *Inode // nil for root and for pipes

	// mu guards the mutable contents below (data, children, xattrs, pipe
	// buffer, nlink) under the sharded discipline; parent locks are taken
	// before child locks, and path walks hold at most one at a time
	// (locking.go). The Security blob is NOT guarded here: it is attached
	// before the inode is published and treated as immutable-in-place so
	// permission hooks can read it without inode locks.
	mu sync.RWMutex

	// Security is the LSM-managed security blob. The kernel never looks
	// inside it.
	Security any

	// labelEpoch counts relabels of this inode (adoption of wire labels,
	// boot-time system labeling, crash-recovery rebuilds). Verdict caches
	// key memoized decisions to it; see Task.labelEpoch.
	labelEpoch atomic.Uint64

	// Regular file state.
	data []byte

	// Directory state.
	children map[string]*Inode

	// Pipe state.
	pipe *pipeBuf

	// xattrs persist labels across "reboots" of the security module, as
	// ext3 extended attributes do for Laminar.
	xattrs map[string][]byte

	nlink int
}

func newInode(t InodeType, mode Mode) *Inode {
	ino := &Inode{
		Ino:   Ino(inoCounter.Add(1)),
		Type:  t,
		Mode:  mode,
		nlink: 1,
	}
	if t == TypeDir {
		ino.children = make(map[string]*Inode)
	}
	if t == TypePipe {
		ino.pipe = newPipeBuf()
	}
	return ino
}

// LabelEpoch returns the inode's relabel counter.
func (i *Inode) LabelEpoch() uint64 { return i.labelEpoch.Load() }

// BumpLabelEpoch advances the relabel counter; called by the security
// module whenever an inode's labels change after first publication.
func (i *Inode) BumpLabelEpoch() { i.labelEpoch.Add(1) }

// Size reports the length in bytes of a regular file's contents.
func (i *Inode) Size() int { return len(i.data) }

// IsDir reports whether the inode is a directory.
func (i *Inode) IsDir() bool { return i.Type == TypeDir }

// SetXattr stores an extended attribute on the inode. The security module
// uses this to persist labels; it is called only on inodes not yet
// reachable by other tasks (creation, with the parent directory locked)
// or while the kernel is quiescent (boot labeling, crash recovery).
func (i *Inode) SetXattr(name string, value []byte) {
	if i.xattrs == nil {
		i.xattrs = make(map[string][]byte)
	}
	v := make([]byte, len(value))
	copy(v, value)
	i.xattrs[name] = v
}

// RemoveXattr deletes an extended attribute. Same calling contexts as
// SetXattr; the security module uses this to clear shadow label records.
func (i *Inode) RemoveXattr(name string) {
	delete(i.xattrs, name)
}

// GetXattr fetches an extended attribute; the bool reports presence.
func (i *Inode) GetXattr(name string) ([]byte, bool) {
	v, ok := i.xattrs[name]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// ListXattrs returns the attribute names in sorted order.
func (i *Inode) ListXattrs() []string {
	names := make([]string, 0, len(i.xattrs))
	for n := range i.xattrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Child returns the named directory entry without permission checks; it
// exists for the security module's boot-time labeling and for tests.
func (i *Inode) Child(name string) (*Inode, bool) {
	c, ok := i.children[name]
	return c, ok
}

// PushCap queues an opaque capability payload on a pipe inode (used by the
// security module's write_capability implementation).
func (i *Inode) PushCap(payload any) {
	if i.pipe != nil {
		i.pipe.capQueue = append(i.pipe.capQueue, payload)
	}
}

// PopCap dequeues the oldest capability payload, or nil when none is
// queued or the inode is not a pipe.
func (i *Inode) PopCap() any {
	if i.pipe == nil || len(i.pipe.capQueue) == 0 {
		return nil
	}
	p := i.pipe.capQueue[0]
	i.pipe.capQueue = i.pipe.capQueue[1:]
	return p
}

// childNames returns a sorted list of directory entries.
func (i *Inode) childNames() []string {
	names := make([]string, 0, len(i.children))
	for n := range i.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stat is the metadata returned by the stat syscall.
type Stat struct {
	Ino   Ino
	Type  InodeType
	Mode  Mode
	Size  int
	Nlink int
}
