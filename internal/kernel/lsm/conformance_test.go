package lsm

import (
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// Small-scope exhaustive conformance: over a two-tag universe, every
// combination of (current label, requested label, capability set) is
// checked against the difc label-change rule — the module's
// set_task_label decision must match the specification exactly, in both
// directions. 4 × 4 × 16 = 256 cases per label type.
func TestSetTaskLabelConformance(t *testing.T) {
	tagA, tagB := difc.Tag(101), difc.Tag(102)
	subsets := []difc.Label{
		difc.NewLabel(),
		difc.NewLabel(tagA),
		difc.NewLabel(tagB),
		difc.NewLabel(tagA, tagB),
	}
	for _, typ := range []kernel.LabelType{kernel.Secrecy, kernel.Integrity} {
		for _, from := range subsets {
			for _, to := range subsets {
				for _, plus := range subsets {
					for _, minus := range subsets {
						caps := difc.NewCapSet(plus, minus)
						m := New()
						k := kernel.New(kernel.WithSecurityModule(m))
						task, err := k.Spawn(k.InitTask(), []kernel.Capability{})
						if err != nil {
							t.Fatal(err)
						}
						// Install the starting state directly (trusted
						// path), then issue the syscall under test.
						for _, tg := range plus.Tags() {
							m.GrantCapability(task, tg, difc.CapPlus)
						}
						for _, tg := range minus.Tags() {
							m.GrantCapability(task, tg, difc.CapMinus)
						}
						// Reach `from` using a temporary full grant that
						// is removed again afterwards.
						for _, tg := range from.Tags() {
							m.GrantCapability(task, tg, difc.CapPlus)
						}
						if err := k.SetTaskLabel(task, typ, from); err != nil {
							t.Fatalf("setup label %v: %v", from, err)
						}
						for _, tg := range from.Tags() {
							if !plus.Has(tg) {
								if err := k.DropCapabilities(task, []kernel.Capability{{Tag: tg, Kind: difc.CapPlus}}, false); err != nil {
									t.Fatal(err)
								}
							}
						}

						want := difc.CanChange(from, to, caps)
						err = k.SetTaskLabel(task, typ, to)
						got := err == nil
						if got != want {
							t.Fatalf("typ=%v from=%v to=%v caps=%v: module=%v spec=%v (%v)",
								typ, from, to, caps, got, want, err)
						}
						// On success the label actually changed.
						if got {
							labels := m.TaskLabels(task)
							var cur difc.Label
							if typ == kernel.Secrecy {
								cur = labels.S
							} else {
								cur = labels.I
							}
							if !cur.Equal(to) {
								t.Fatalf("label after change = %v, want %v", cur, to)
							}
						}
					}
				}
			}
		}
	}
}

// TestRegionEntryConformance exhausts the §4.3.2 entry rules over a
// two-tag secrecy universe against difc.CanEnterRegion.
func TestRegionEntryConformance(t *testing.T) {
	tagA, tagB := difc.Tag(201), difc.Tag(202)
	subsets := []difc.Label{
		difc.NewLabel(),
		difc.NewLabel(tagA),
		difc.NewLabel(tagB),
		difc.NewLabel(tagA, tagB),
	}
	for _, sp := range subsets {
		for _, sr := range subsets {
			for _, plus := range subsets {
				for _, minus := range subsets {
					pc := difc.NewCapSet(plus, minus)
					p := difc.Labels{S: sp}
					r := difc.Labels{S: sr}
					want := sr.Minus(plus.Union(sp)).IsEmpty() && // rule (1)
						sp.Minus(sr).SubsetOf(minus) // drop half of label change
					got := difc.CanEnterRegion(p, pc, r, difc.EmptyCapSet)
					if got != want {
						t.Fatalf("sp=%v sr=%v caps=%v: got %v want %v", sp, sr, pc, got, want)
					}
				}
			}
		}
	}
}
