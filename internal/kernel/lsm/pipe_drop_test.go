package lsm

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
)

// TestPipeDropIndistinguishable is the §5.2 silent-drop property under
// fault injection: a pipe write that is dropped by policy (label check
// fails), dropped by an injected I/O fault, or actually delivered must
// look byte-for-byte identical to the writer — full length, nil error.
// Anything else turns the write syscall into a covert channel (policy) or
// makes faults observable where policy outcomes must not be (injection).
// The reader side stays non-blocking: a drop reads as "nothing yet"
// (EAGAIN), exactly like an empty pipe.
func TestPipeDropIndistinguishable(t *testing.T) {
	m := New()
	plan := faultinject.NewPlan(99)
	k := kernel.New(kernel.WithSecurityModule(m), kernel.WithFaultInjector(plan))
	m.InstallSystemIntegrity(k)
	task, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := k.AllocTag(task)
	msg := []byte("twelve bytes")

	// Outcome A: clean delivery.
	rfdA, wfdA, err := k.Pipe(task)
	if err != nil {
		t.Fatal(err)
	}
	nA, errA := k.Write(task, wfdA, msg)

	// Outcome B: policy drop. The writer raises its secrecy above the
	// (empty-labeled) pipe, so the label check fails and the message is
	// discarded — but the writer must not be able to tell.
	rfdB, wfdB, err := k.Pipe(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetTaskLabel(task, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	nB, errB := k.Write(task, wfdB, msg)
	if err := k.SetTaskLabel(task, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}

	// Outcome C: fault drop. Policy passes; the injector eats the write.
	rfdC, wfdC, err := k.Pipe(task)
	if err != nil {
		t.Fatal(err)
	}
	plan.SetRates("fs.write", faultinject.Rates{Error: 1})
	nC, errC := k.Write(task, wfdC, msg)
	plan.SetRates("fs.write", faultinject.Rates{})

	// The writer-visible results must be identical across all three.
	for _, c := range []struct {
		name string
		n    int
		err  error
	}{{"delivered", nA, errA}, {"policy-drop", nB, errB}, {"fault-drop", nC, errC}} {
		if c.n != len(msg) || c.err != nil {
			t.Errorf("%s write = (%d, %v), want (%d, nil)", c.name, c.n, c.err, len(msg))
		}
	}

	// Only the delivered pipe has data; the dropped ones read as empty and
	// never block.
	buf := make([]byte, 64)
	if n, err := k.Read(task, rfdA, buf); err != nil || string(buf[:n]) != string(msg) {
		t.Errorf("delivered read = (%q, %v), want the message", buf[:n], err)
	}
	for name, fd := range map[string]kernel.FD{"policy-drop": rfdB, "fault-drop": rfdC} {
		if _, err := k.Read(task, fd, buf); !errors.Is(err, kernel.ErrAgain) {
			t.Errorf("%s read = %v, want EAGAIN (empty, non-blocking)", name, err)
		}
	}
}

// TestPipeDropProperty hammers the same invariant across a spread of fault
// rates and seeds: whatever the injector does short of killing the task,
// every pipe write reports full success and every read either yields a
// previously written message or EAGAIN.
func TestPipeDropProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		m := New()
		plan := faultinject.NewPlan(seed)
		plan.SetRates("fs.write", faultinject.Rates{Error: 0.5})
		plan.SetRates("fs.read", faultinject.Rates{Error: 0.3})
		k := kernel.New(kernel.WithSecurityModule(m), kernel.WithFaultInjector(plan))
		m.InstallSystemIntegrity(k)
		task, err := k.Spawn(k.InitTask(), []kernel.Capability{})
		if err != nil {
			t.Fatal(err)
		}
		rfd, wfd, err := k.Pipe(task)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("property")
		for i := 0; i < 200; i++ {
			if n, err := k.Write(task, wfd, msg); n != len(msg) || err != nil {
				t.Fatalf("seed %d op %d: pipe write = (%d, %v), want (%d, nil)", seed, i, n, err, len(msg))
			}
			buf := make([]byte, 1024)
			n, err := k.Read(task, rfd, buf)
			if err != nil && !errors.Is(err, kernel.ErrAgain) {
				t.Fatalf("seed %d op %d: pipe read = %v, want data or EAGAIN", seed, i, err)
			}
			// Pipes are byte streams, so a read may coalesce several
			// delivered messages — but only whole, uncorrupted ones.
			got := buf[:n]
			for err == nil && len(got) > 0 {
				if len(got) < len(msg) || string(got[:len(msg)]) != string(msg) {
					t.Fatalf("seed %d op %d: pipe read tail %q is not whole messages", seed, i, got)
				}
				got = got[len(msg):]
			}
		}
	}
}
