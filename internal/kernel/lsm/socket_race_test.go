package lsm

import (
	"errors"
	"sync"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// TestConnectAcceptVsSetTaskLabelStorm storms Connect/Accept against
// concurrent SetTaskLabel from the connecting tasks, under both locking
// disciplines. The invariant being raced: the label check and the FD
// installation of a connection are atomic with respect to the creator's
// label — a connection inode carries a consistent snapshot of the
// creating task's labels, so the accepting side's Recv sees exactly one
// of {clean connection: data or EAGAIN, tainted connection: EACCES},
// never a torn state or a stray errno. Run under -race this also proves
// the sharded lock order has no data race between the connect path
// (task → file → inode locks) and the label-change path.
func TestConnectAcceptVsSetTaskLabelStorm(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []kernel.Option
	}{
		{"sharded", nil},
		{"biglock", []kernel.Option{kernel.WithBigLock()}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			m := New()
			k := kernel.New(append([]kernel.Option{kernel.WithSecurityModule(m)}, mode.opts...)...)
			m.InstallSystemIntegrity(k)
			owner, err := k.Spawn(k.InitTask(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Listen(owner, "storm"); err != nil {
				t.Fatal(err)
			}

			const workers = 6
			iters := 150
			if testing.Short() {
				iters = 40
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				task, serr := k.Spawn(owner, nil)
				if serr != nil {
					t.Fatal(serr)
				}
				tag, terr := k.AllocTag(task)
				if terr != nil {
					t.Fatal(terr)
				}
				wg.Add(1)
				go func(task *kernel.Task, tag difc.Tag, w int) {
					defer wg.Done()
					for j := 0; j < iters; j++ {
						// Flip the task label every iteration so Connect
						// keeps racing the creator's own label change.
						l := difc.EmptyLabel
						if j%2 == 0 {
							l = difc.NewLabel(tag)
						}
						if err := k.SetTaskLabel(task, kernel.Secrecy, l); err != nil {
							t.Errorf("worker %d: set label: %v", w, err)
							return
						}
						fd, cerr := k.Connect(task, "storm")
						if cerr != nil {
							t.Errorf("worker %d: connect: %v", w, cerr)
							return
						}
						// Send always reports success: on a connection
						// whose labels match the task it delivers, and a
						// racing declassification can never surface as an
						// error the sender observes.
						if n, serr := k.Send(task, fd, []byte{byte(j)}); serr != nil || n != 1 {
							t.Errorf("worker %d: send = %d, %v", w, n, serr)
							return
						}
						k.Close(task, fd)
					}
				}(task, tag, w)
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			buf := make([]byte, 4)
			drain := func() {
				for {
					fd, aerr := k.Accept(owner, "storm")
					if aerr != nil {
						if !errors.Is(aerr, kernel.ErrAgain) {
							t.Errorf("accept: %v", aerr)
						}
						return
					}
					_, rerr := k.Recv(owner, fd, buf)
					switch {
					case rerr == nil:
						// Data from a clean-labeled connection.
					case errors.Is(rerr, kernel.ErrAgain):
						// Clean connection whose send raced the flip and
						// dropped, or still in flight: silence is legal.
					case errors.Is(rerr, kernel.ErrAccess):
						// Tainted connection: the unlabeled owner may not
						// read it.
					default:
						t.Errorf("recv saw torn state: %v", rerr)
					}
					k.Close(owner, fd)
				}
			}
			for {
				select {
				case <-done:
					drain() // connections queued after the last poll
					return
				default:
					drain()
				}
			}
		})
	}
}
