package lsm

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// TestErrnoUniformity pins the fail-closed errno contract: to a task that
// cannot read a secret file, every path-based syscall must behave exactly
// as if the path did not exist. The error must be the identical ENOENT
// sentinel a genuinely absent path yields — a distinguishable EACCES would
// leak one bit (the name exists) per probe.
func TestErrnoUniformity(t *testing.T) {
	k, m, owner := boot(t)
	tag, _ := k.AllocTag(owner)
	fd, err := k.CreateFileLabeled(owner, "secret", 0o600, difc.Labels{S: difc.NewLabel(tag)})
	if err != nil {
		t.Fatal(err)
	}
	k.Close(owner, fd)

	attacker, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(attacker, "/tmp"); err != nil {
		t.Fatal(err)
	}

	// The reference error: what an honestly nonexistent path returns.
	_, ghostErr := k.Stat(attacker, "nosuchfile")
	if ghostErr != kernel.ErrNoEnt {
		t.Fatalf("Stat(nosuchfile) = %v, want the ENOENT sentinel", ghostErr)
	}

	probes := []struct {
		name string
		call func(path string) error
	}{
		{"Stat", func(p string) error { _, err := k.Stat(attacker, p); return err }},
		{"Open", func(p string) error { _, err := k.Open(attacker, p, kernel.ORead); return err }},
		{"Unlink", func(p string) error { return k.Unlink(attacker, p) }},
		{"GetXattr", func(p string) error { _, err := k.GetXattr(attacker, p, XattrSecrecy); return err }},
	}
	for _, pr := range probes {
		denied := pr.call("secret")
		absent := pr.call("nosuchfile")
		if denied != absent {
			t.Errorf("%s: denied=%v absent=%v — the two must be the identical error value", pr.name, denied, absent)
		}
		if denied != kernel.ErrNoEnt {
			t.Errorf("%s(secret) = %v, want exactly ENOENT", pr.name, denied)
		}
		if errors.Is(denied, kernel.ErrAccess) {
			t.Errorf("%s(secret) matches EACCES — leaks existence", pr.name)
		}
	}

	// The file must still be there for its rightful readers: the denials
	// above were policy, not deletion.
	taint(t, k, m, owner, difc.NewLabel(tag))
	if _, err := k.Stat(owner, "secret"); err != nil {
		t.Fatalf("owner Stat after probes = %v", err)
	}
}

// TestErrnoWriteDenialStaysEACCES pins the other half of the contract:
// write-only denials (integrity) stay EACCES. Existence is not secret
// there — the attacker can already list the directory — and a fake ENOENT
// would mislead legitimate tooling for no secrecy gain.
func TestErrnoWriteDenialStaysEACCES(t *testing.T) {
	k, _, user := boot(t)
	// /etc carries the admin integrity tag; an ordinary task may read it
	// but not create entries in it.
	if _, err := k.ReadDir(user, "/etc"); err != nil {
		t.Fatalf("read of integrity-protected directory = %v, want success", err)
	}
	err := k.Mkdir(user, "/etc/evil", 0o755)
	if !errors.Is(err, kernel.ErrAccess) {
		t.Fatalf("write-denied mkdir = %v, want EACCES", err)
	}
	if errors.Is(err, kernel.ErrNoEnt) {
		t.Fatal("write denial hidden as ENOENT: uniformity applies to read denials only")
	}
}
