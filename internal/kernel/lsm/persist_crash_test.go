package lsm

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
)

// These tests force a fault at each individual step of the shadow-write +
// flip label-persistence protocol and verify the recovery pass never
// leaves a once-labeled inode readable: every reachable crash state
// recovers to either the intended labels or quarantine.

// bootPersistFault boots a system whose module injects the given fault
// kind, always, at exactly the named persistence site.
func bootPersistFault(t *testing.T, site string, kind faultinject.Kind) (*kernel.Kernel, *Module, *kernel.Task, difc.Tag) {
	t.Helper()
	k, m, owner := boot(t)
	tag, err := k.AllocTag(owner)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(1)
	rates := faultinject.Rates{}
	switch kind {
	case faultinject.Error:
		rates.Error = 1
	case faultinject.Crash:
		rates.Crash = 1
	}
	plan.SetRates(site, rates)
	m.SetFaultInjector(plan)
	return k, m, owner, tag
}

// newRegularInodes returns the regular-file inodes present now but not in
// the before set (the file the test just created, even when the creating
// task died before receiving its descriptor).
func newRegularInodes(k *kernel.Kernel, before map[kernel.Ino]bool) []*kernel.Inode {
	var out []*kernel.Inode
	k.WalkInodes(func(ino *kernel.Inode) {
		if ino.Type == kernel.TypeRegular && !before[ino.Ino] {
			out = append(out, ino)
		}
	})
	return out
}

func snapshotInos(k *kernel.Kernel) map[kernel.Ino]bool {
	seen := make(map[kernel.Ino]bool)
	k.WalkInodes(func(ino *kernel.Inode) { seen[ino.Ino] = true })
	return seen
}

// verifier spawns a fresh task that holds the tag's capabilities and has
// raised its secrecy to read files labeled with it.
func verifier(t *testing.T, k *kernel.Kernel, m *Module, tag difc.Tag) *kernel.Task {
	t.Helper()
	v, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(v, "/tmp"); err != nil {
		t.Fatal(err)
	}
	m.GrantCapability(v, tag, difc.CapBoth)
	if err := k.SetTaskLabel(v, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
		t.Fatal(err)
	}
	return v
}

// attackerDenied asserts a capability-less task sees exactly ENOENT for
// the path — never success, never EACCES.
func attackerDenied(t *testing.T, k *kernel.Kernel, path string) {
	t.Helper()
	at, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stat(at, path); err != kernel.ErrNoEnt {
		t.Errorf("attacker Stat(%s) = %v, want exactly ENOENT", path, err)
	}
	if _, err := k.Open(at, path, kernel.ORead); err != kernel.ErrNoEnt {
		t.Errorf("attacker Open(%s) = %v, want exactly ENOENT", path, err)
	}
}

func TestCrashAtShadowWriteQuarantines(t *testing.T) {
	// Crash during step 1 (shadow write): the shadow tears, no commit
	// record ever exists. The labels are unknowable, so recovery must
	// quarantine — even the tag owner cannot read the file afterwards.
	k, m, owner, tag := bootPersistFault(t, "persist.shadow", faultinject.Crash)
	before := snapshotInos(k)
	_, err := k.CreateFileLabeled(owner, "secret", 0o600, difc.Labels{S: difc.NewLabel(tag)})
	if !errors.Is(err, kernel.ErrKilled) {
		t.Fatalf("create under shadow crash = %v, want EKILLED", err)
	}
	if !owner.Exited() {
		t.Fatal("crash fault did not kill the creating task")
	}
	m.SetFaultInjector(nil) // the machine rebooted; recovery runs clean
	st := m.RecoverLabels(k)
	if st.Quarantined != 1 {
		t.Fatalf("recovery stats = %+v, want exactly one quarantined inode", st)
	}
	// The torn-label file must be maximally restricted: the tag holder is
	// denied too, because the quarantine tag has no capability holders.
	for _, ino := range newRegularInodes(k, before) {
		labels := m.inodeState(ino).labels
		if !labels.S.Has(m.QuarantineTag()) {
			t.Errorf("recovered labels %v missing quarantine tag", labels)
		}
	}
	v := verifier(t, k, m, tag)
	if _, err := k.Open(v, "secret", kernel.ORead); err != kernel.ErrNoEnt {
		t.Errorf("tag holder Open(quarantined) = %v, want ENOENT", err)
	}
	attackerDenied(t, k, "/tmp/secret")
}

func TestCrashAtCommitFlipRollsForward(t *testing.T) {
	// Crash during step 2 (the flip): the commit record tears but the
	// shadow holds the full intended record. Recovery rolls forward to the
	// exact intended labels: the tag holder reads, the attacker does not.
	k, m, owner, tag := bootPersistFault(t, "persist.commit", faultinject.Crash)
	_, err := k.CreateFileLabeled(owner, "secret", 0o600, difc.Labels{S: difc.NewLabel(tag)})
	if !errors.Is(err, kernel.ErrKilled) {
		t.Fatalf("create under commit crash = %v, want EKILLED", err)
	}
	m.SetFaultInjector(nil)
	st := m.RecoverLabels(k)
	if st.RolledForward != 1 || st.Quarantined != 0 {
		t.Fatalf("recovery stats = %+v, want exactly one rolled-forward inode", st)
	}
	v := verifier(t, k, m, tag)
	fd, err := k.Open(v, "secret", kernel.ORead)
	if err != nil {
		t.Fatalf("tag holder open after roll-forward = %v", err)
	}
	k.Close(v, fd)
	attackerDenied(t, k, "/tmp/secret")
}

func TestCrashAtShadowClearIsClean(t *testing.T) {
	// Crash during step 4 (clearing the shadow): the commit record is
	// already valid, so recovery just discards the leftover shadow.
	k, m, owner, tag := bootPersistFault(t, "persist.clear", faultinject.Crash)
	_, err := k.CreateFileLabeled(owner, "secret", 0o600, difc.Labels{S: difc.NewLabel(tag)})
	if !errors.Is(err, kernel.ErrKilled) {
		t.Fatalf("create under clear crash = %v, want EKILLED", err)
	}
	m.SetFaultInjector(nil)
	st := m.RecoverLabels(k)
	if st.Quarantined != 0 || st.RolledForward != 0 {
		t.Fatalf("recovery stats = %+v, want the labeled inode classified clean", st)
	}
	v := verifier(t, k, m, tag)
	fd, err := k.Open(v, "secret", kernel.ORead)
	if err != nil {
		t.Fatalf("tag holder open after clean recovery = %v", err)
	}
	k.Close(v, fd)
	attackerDenied(t, k, "/tmp/secret")
}

func TestErrorAtShadowWriteRollsBackCreate(t *testing.T) {
	// A transient error (no crash) during persistence fails the create
	// cleanly: the entry is unlinked and the caller sees EIO, not a
	// half-created secret.
	k, m, owner, _ := bootPersistFault(t, "persist.shadow", faultinject.Error)
	tag2, _ := k.AllocTag(owner)
	_, err := k.CreateFileLabeled(owner, "secret", 0o600, difc.Labels{S: difc.NewLabel(tag2)})
	if !errors.Is(err, kernel.ErrIO) {
		t.Fatalf("create under shadow error = %v, want EIO", err)
	}
	if owner.Exited() {
		t.Fatal("transient error must not kill the task")
	}
	m.SetFaultInjector(nil)
	if _, err := k.Stat(owner, "secret"); err != kernel.ErrNoEnt {
		t.Errorf("failed create left an entry: Stat = %v, want ENOENT", err)
	}
}

// TestCrashUpdatePreservesCommittedLabels drives the protocol directly on
// an inode that already has a valid committed record and tears the update
// at the shadow step: the old record must win — last committed labels, not
// quarantine, not the half-written new ones.
func TestCrashUpdatePreservesCommittedLabels(t *testing.T) {
	k, m, owner := boot(t)
	tag, _ := k.AllocTag(owner)
	before := snapshotInos(k)
	fd, err := k.CreateFileLabeled(owner, "secret", 0o600, difc.Labels{S: difc.NewLabel(tag)})
	if err != nil {
		t.Fatal(err)
	}
	k.Close(owner, fd)
	inos := newRegularInodes(k, before)
	if len(inos) != 1 {
		t.Fatalf("expected one new inode, got %d", len(inos))
	}
	ino := inos[0]

	plan := faultinject.NewPlan(1)
	plan.SetRates("persist.shadow", faultinject.Rates{Crash: 1})
	m.SetFaultInjector(plan)
	tag2, _ := k.AllocTag(owner)
	if err := m.persistCommit(ino, difc.Labels{S: difc.NewLabel(tag2)}); !errors.Is(err, kernel.ErrKilled) {
		t.Fatalf("update under shadow crash = %v, want EKILLED", err)
	}
	m.SetFaultInjector(nil)
	st := m.RecoverLabels(k)
	if st.Quarantined != 0 {
		t.Fatalf("recovery stats = %+v: torn update quarantined an inode with a valid commit", st)
	}
	got := m.inodeState(ino).labels
	if !got.S.Equal(difc.NewLabel(tag)) {
		t.Fatalf("recovered labels %v, want the last committed %v", got.S, difc.NewLabel(tag))
	}
}
