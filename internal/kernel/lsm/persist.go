package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

// Crash-consistent label persistence.
//
// Labels are durable state: if an inode's labels are lost while its data
// survives, a previously secret file becomes world-readable — the one
// failure DIFC can never afford. Laminar inherits ext3's xattr journaling
// for this; the simulated module instead implements its own shadow-write +
// flip protocol over the kernel's (deliberately non-atomic under fault
// injection) xattr store:
//
//	1. write the full checksummed record to XattrLabelShadow
//	2. write the same record to XattrLabel (the flip)
//	3. refresh the legacy per-label views (XattrSecrecy/XattrIntegrity)
//	4. remove XattrLabelShadow
//
// A crash at any step leaves a state the recovery pass can classify:
// a valid commit record wins; a torn or missing commit rolls forward from
// a valid shadow; a torn shadow with no valid commit means the labels are
// unknowable, and the inode is QUARANTINED — relabeled with a secrecy tag
// for which no principal holds capabilities, i.e. maximally restricted.
// Recovery never guesses toward readable (fail closed, DESIGN.md §8).

// Xattr names for the commit/shadow label records.
const (
	XattrLabel       = "security.laminar.label"
	XattrLabelShadow = "security.laminar.label.shadow"
)

// recMagic heads every label record.
var recMagic = [4]byte{'L', 'M', 'L', '1'}

// encodeLabelRecord serializes labels as
// magic | uvarint len(S) | S | uvarint len(I) | I | crc32(payload).
func encodeLabelRecord(labels difc.Labels) ([]byte, error) {
	sb, err := labels.S.MarshalBinary()
	if err != nil {
		return nil, err
	}
	ib, err := labels.I.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+2*binary.MaxVarintLen64+len(sb)+len(ib)+4)
	buf = append(buf, recMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(sb)))
	buf = append(buf, sb...)
	buf = binary.AppendUvarint(buf, uint64(len(ib)))
	buf = append(buf, ib...)
	sum := crc32.ChecksumIEEE(buf)
	buf = binary.BigEndian.AppendUint32(buf, sum)
	return buf, nil
}

// decodeLabelRecord validates and parses a record; any truncation, magic
// mismatch or checksum failure is an error (the record is "torn").
func decodeLabelRecord(data []byte) (difc.Labels, error) {
	var out difc.Labels
	if len(data) < len(recMagic)+4 {
		return out, fmt.Errorf("label record truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != recMagic {
		return out, fmt.Errorf("label record bad magic %q", data[:4])
	}
	payload, sumBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(sumBytes) {
		return out, fmt.Errorf("label record checksum mismatch")
	}
	rest := payload[4:]
	sLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < sLen {
		return out, fmt.Errorf("label record bad secrecy length")
	}
	rest = rest[n:]
	s, err := difc.UnmarshalLabel(rest[:sLen])
	if err != nil {
		return out, err
	}
	rest = rest[sLen:]
	iLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) != iLen {
		return out, fmt.Errorf("label record bad integrity length")
	}
	i, err := difc.UnmarshalLabel(rest[n:])
	if err != nil {
		return out, err
	}
	out.S, out.I = s, i
	return out, nil
}

// SetFaultInjector installs a fault injector on the module's persistence
// path (sites "persist.shadow", "persist.commit", "persist.clear"). The
// chaos harness installs it after boot labeling; production leaves it nil.
func (m *Module) SetFaultInjector(inj faultinject.Injector) { m.inj = inj }

// SetTelemetry installs the telemetry recorder for LSM-internal events
// the kernel's hook wrapper cannot observe: silently dropped capability
// transfers and crash-recovery outcomes. laminar.NewSystem wires this to
// the kernel's recorder; nil disables.
func (m *Module) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// persistFault consults the injector at a persistence step. An Error is a
// transient media failure (EIO); a Crash is the machine dying mid-step
// (EKILLED) — the kernel kills the acting task and the on-disk state stays
// exactly as the steps so far left it.
func (m *Module) persistFault(site string) error {
	if m.inj == nil {
		return nil
	}
	switch m.inj.At(site) {
	case faultinject.Error:
		return fmt.Errorf("%w: injected fault at %s", kernel.ErrIO, site)
	case faultinject.Crash:
		return kernel.ErrKilled
	default:
		return nil
	}
}

// persistCommit runs the shadow-write + flip protocol for ino's labels.
// Under an injected fault the step in progress tears — half the record is
// written — and the error propagates; every reachable intermediate state
// is one the recovery pass handles.
func (m *Module) persistCommit(ino *kernel.Inode, labels difc.Labels) error {
	if ino.Type != kernel.TypeRegular && ino.Type != kernel.TypeDir {
		return nil // pipes and devices have no persistent labels
	}
	if labels.IsEmpty() {
		// Unlabeled inodes carry no xattrs at all (the implicit empty
		// label, §3.1) — this keeps the common create path cheap, which is
		// where Table 2's 0k-create number comes from. Only an inode that
		// once had a record needs an explicit empty one.
		if _, ok := ino.GetXattr(XattrLabel); !ok {
			if _, ok := ino.GetXattr(XattrSecrecy); !ok {
				return nil
			}
		}
	}
	rec, err := encodeLabelRecord(labels)
	if err != nil {
		return err
	}
	if ferr := m.persistFault("persist.shadow"); ferr != nil {
		ino.SetXattr(XattrLabelShadow, rec[:len(rec)/2]) // torn shadow
		return ferr
	}
	ino.SetXattr(XattrLabelShadow, rec)
	if ferr := m.persistFault("persist.commit"); ferr != nil {
		ino.SetXattr(XattrLabel, rec[:len(rec)/2]) // torn commit, shadow intact
		return ferr
	}
	ino.SetXattr(XattrLabel, rec)
	// Legacy single-label views, refreshed only after the flip so they
	// never run ahead of the committed record.
	if sb, err := labels.S.MarshalBinary(); err == nil {
		ino.SetXattr(XattrSecrecy, sb)
	}
	if ib, err := labels.I.MarshalBinary(); err == nil {
		ino.SetXattr(XattrIntegrity, ib)
	}
	if ferr := m.persistFault("persist.clear"); ferr != nil {
		return ferr // shadow left behind; commit is valid, recovery clears it
	}
	ino.RemoveXattr(XattrLabelShadow)
	return nil
}

// recoverInodeLabels classifies an inode's persistent label state and
// returns the labels to use, repairing the records in place. Recovery
// writes bypass fault injection: this is the fsck-style pass that runs
// with the system quiesced and must complete.
//
// Return states: "clean" (valid commit, nothing to do), "rolled-forward"
// (commit rebuilt from a valid shadow), "quarantined" (no trustworthy
// record — maximally restricted labels installed), "legacy" (pre-record
// xattrs migrated), "unlabeled".
func (m *Module) recoverInodeLabels(ino *kernel.Inode) (difc.Labels, string) {
	commit, hasCommit := ino.GetXattr(XattrLabel)
	shadow, hasShadow := ino.GetXattr(XattrLabelShadow)
	if hasCommit {
		if labels, err := decodeLabelRecord(commit); err == nil {
			// Commit is authoritative; a leftover shadow just means the
			// crash hit after the flip.
			ino.RemoveXattr(XattrLabelShadow)
			return labels, "clean"
		}
	}
	if hasShadow {
		if labels, err := decodeLabelRecord(shadow); err == nil {
			// The flip never landed (or tore); the shadow holds the full
			// intended record. Roll forward.
			ino.SetXattr(XattrLabel, shadow)
			m.writeLegacyViews(ino, labels)
			ino.RemoveXattr(XattrLabelShadow)
			return labels, "rolled-forward"
		}
	}
	if hasCommit || hasShadow {
		// Some record existed but nothing decodes: the true labels are
		// unknowable. Fail closed — quarantine with a secrecy tag no
		// principal holds capabilities for, never fall back to readable.
		q := difc.Labels{S: difc.NewLabel(m.quarantineTag)}
		if rec, err := encodeLabelRecord(q); err == nil {
			ino.SetXattr(XattrLabel, rec)
		}
		m.writeLegacyViews(ino, q)
		ino.RemoveXattr(XattrLabelShadow)
		return q, "quarantined"
	}
	// Pre-protocol state: per-label xattrs written by older modules.
	var labels difc.Labels
	found := false
	if data, ok := ino.GetXattr(XattrSecrecy); ok {
		if l, err := difc.UnmarshalLabel(data); err == nil {
			labels.S = l
			found = true
		}
	}
	if data, ok := ino.GetXattr(XattrIntegrity); ok {
		if l, err := difc.UnmarshalLabel(data); err == nil {
			labels.I = l
			found = true
		}
	}
	if found {
		return labels, "legacy"
	}
	return difc.Labels{}, "unlabeled"
}

func (m *Module) writeLegacyViews(ino *kernel.Inode, labels difc.Labels) {
	if sb, err := labels.S.MarshalBinary(); err == nil {
		ino.SetXattr(XattrSecrecy, sb)
	}
	if ib, err := labels.I.MarshalBinary(); err == nil {
		ino.SetXattr(XattrIntegrity, ib)
	}
}

// RecoveryStats summarizes a RecoverLabels pass.
type RecoveryStats struct {
	Scanned       int
	Clean         int
	RolledForward int
	Quarantined   int
	Legacy        int
	Unlabeled     int
}

// RecoverLabels simulates the post-crash boot pass: every in-memory label
// blob is discarded (the "memory" lost in the crash) and rebuilt from the
// persistent records, rolling torn states forward or quarantining them.
// After it returns, no inode is readable under weaker labels than the last
// successfully committed record, and no torn record yields a readable
// inode.
func (m *Module) RecoverLabels(k *kernel.Kernel) RecoveryStats {
	var st RecoveryStats
	k.WalkInodes(func(ino *kernel.Inode) {
		st.Scanned++
		ino.Security = nil
		labels, state := m.recoverInodeLabels(ino)
		ino.Security = &inodeSec{labels: difc.InternLabels(labels)}
		// Recovery may rewrite labels (roll-forward, quarantine), so every
		// verdict cached against the pre-crash blob must die with it.
		ino.BumpLabelEpoch()
		if m.tel != nil && m.tel.Active() {
			m.tel.M.Extra.Inc("lsm.recovery."+state, 0)
		}
		switch state {
		case "clean":
			st.Clean++
		case "rolled-forward":
			st.RolledForward++
		case "quarantined":
			st.Quarantined++
		case "legacy":
			st.Legacy++
		default:
			st.Unlabeled++
		}
	})
	return st
}
