// Package lsm is the Laminar security module: the simulated counterpart of
// the ~1,000-line Linux Security Module plus ~500 lines of kernel changes
// described in §5.2 of the paper. It attaches secrecy/integrity labels and
// capability sets to tasks, inodes and files through the kernel's opaque
// security fields, enforces the DIFC flow rules on every hooked operation,
// and implements the label-management syscalls of Figure 3.
package lsm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
	"laminar/internal/telemetry"
)

// Legacy per-label xattr names, mirroring Laminar's use of ext3 extended
// attributes. These are read-compatibility views; the authoritative record
// is the checksummed XattrLabel written by the shadow/flip protocol in
// persist.go.
const (
	XattrSecrecy   = "security.laminar.secrecy"
	XattrIntegrity = "security.laminar.integrity"
)

// taskSec is the security blob attached to a task: its current labels, its
// capability set, and any temporarily suspended capabilities.
type taskSec struct {
	labels    difc.Labels
	caps      difc.CapSet
	suspended difc.CapSet

	// vc memoizes this task's access verdicts when the module runs with
	// the verdict cache enabled (EnableVerdictCache). Allocated lazily on
	// the first cacheable check; only ever touched under the owning
	// task's syscall-entry lock, like everything else in the blob. It
	// needs no explicit invalidation: entries are keyed by the label
	// epochs of the task and the inode, and every mutation path below
	// bumps the corresponding epoch.
	vc *difc.VerdictCache
}

// inodeSec is the security blob attached to an inode.
type inodeSec struct {
	labels difc.Labels
}

// fileSec is attached to open file descriptions. Laminar checks labels on
// every operation, so the blob carries no per-endpoint state; it exists to
// mirror the LSM file blob and to let tests confirm attachment.
type fileSec struct{}

// Module implements kernel.SecurityModule with Laminar semantics.
type Module struct {
	nextTag atomic.Uint64

	// tcbTag is the special integrity tag that marks the trusted VM
	// thread allowed to call drop_label_tcb (§4.4).
	tcbTag difc.Tag

	// adminTag is the system-administrator integrity tag applied to
	// system directories at install time (§5.2).
	adminTag difc.Tag

	// quarantineTag is a secrecy tag for which NO principal ever receives
	// capabilities. Crash recovery relabels inodes whose persistent label
	// records are torn beyond repair with {quarantineTag}: unknowable
	// labels become maximally restricted, never readable (fail closed).
	quarantineTag difc.Tag

	// inj is the optional fault injector for the label-persistence path
	// (nil in production); see persist.go.
	inj faultinject.Injector

	// tel is the telemetry recorder for LSM-internal decisions the kernel
	// wrapper cannot see: capability transfers silently dropped by pipe
	// semantics and quarantine relabels during crash recovery. nil means
	// unobserved (see SetTelemetry).
	tel *telemetry.Recorder

	// tcbProcs records processes that registered a trusted VM thread.
	// Multithreaded processes WITHOUT one must keep all threads at the
	// same labels (§4.1); the module enforces that by refusing label
	// changes once such a process has more than one thread.
	tcbProcs sync.Map // proc id (uint64) -> struct{}

	// verdictCache enables epoch-keyed memoization of checkAccess
	// verdicts (set once at boot via EnableVerdictCache, before any
	// syscall). Off by default: the uncached monitor is the reference
	// implementation the differential oracles compare against.
	verdictCache bool
}

var _ kernel.SecurityModule = (*Module)(nil)

// New constructs the module and reserves its three well-known tags.
func New() *Module {
	m := &Module{}
	m.tcbTag = m.allocate()
	m.adminTag = m.allocate()
	m.quarantineTag = m.allocate()
	return m
}

func (m *Module) allocate() difc.Tag {
	return difc.Tag(m.nextTag.Add(1))
}

// Name implements kernel.SecurityModule.
func (m *Module) Name() string { return "laminar" }

// EnableVerdictCache implements kernel.VerdictCacheConfigurator: it turns
// on per-task verdict memoization. Must be called before the module sees
// traffic (kernel.New does, when built WithVerdictCache).
func (m *Module) EnableVerdictCache() { m.verdictCache = true }

// VerdictCacheEnabled reports whether verdict memoization is on.
func (m *Module) VerdictCacheEnabled() bool { return m.verdictCache }

// TCBTag returns the trusted-VM integrity tag.
func (m *Module) TCBTag() difc.Tag { return m.tcbTag }

// AdminTag returns the system-administrator integrity tag.
func (m *Module) AdminTag() difc.Tag { return m.adminTag }

// QuarantineTag returns the secrecy tag used to seal inodes whose label
// records were unrecoverable after a crash. No GrantCapability call for it
// exists anywhere: quarantined data stays unreadable until an operator
// with raw access to the store intervenes.
func (m *Module) QuarantineTag() difc.Tag { return m.quarantineTag }

// taskState fetches (or lazily creates) a task's security blob. A task
// that predates module attachment starts unlabeled with no capabilities.
func (m *Module) taskState(t *kernel.Task) *taskSec {
	if s, ok := t.Security.(*taskSec); ok {
		return s
	}
	s := &taskSec{}
	//govet:fresh — first attach of an empty blob; no labels changed, so no
	// cached verdict can be stale.
	t.Security = s
	return s
}

// inodeState fetches an inode's blob, falling back to the persisted label
// records so that labels survive module "reboots", as ext3 xattrs do. The
// lazy rebuild runs the same classification as the crash-recovery pass:
// a torn record never silently degrades to unlabeled (persist.go).
//
// Under the kernel's sharded locking the lazy path never runs hot:
// PrimeInode/PrimeTask attach blobs to every boot object before the
// first syscall and InodeInitSecurity covers everything created later,
// so concurrent hooks only ever read an already-attached blob.
func (m *Module) inodeState(ino *kernel.Inode) *inodeSec {
	if s, ok := ino.Security.(*inodeSec); ok {
		return s
	}
	labels, _ := m.recoverInodeLabels(ino)
	s := &inodeSec{labels: difc.InternLabels(labels)}
	//govet:fresh — lazy rebuild before any hook has read the blob; the
	// epoch was bumped by whoever persisted the labels being recovered.
	ino.Security = s
	return s
}

// PrimeInode implements kernel.InodePrimer: it forces blob attachment at
// boot, before any concurrent syscalls, so hook-side reads never race
// with a lazy first-touch allocation.
func (m *Module) PrimeInode(ino *kernel.Inode) { m.inodeState(ino) }

// PrimeTask implements kernel.InodePrimer for the init task.
func (m *Module) PrimeTask(t *kernel.Task) { m.taskState(t) }

// TaskLabels reports a task's current labels (used by the VM runtime and
// by tests; Linux would expose this through /proc).
func (m *Module) TaskLabels(t *kernel.Task) difc.Labels { return m.taskState(t).labels }

// TaskCaps reports a task's current capability set.
func (m *Module) TaskCaps(t *kernel.Task) difc.CapSet { return m.taskState(t).caps }

// InodeLabels reports an inode's labels.
func (m *Module) InodeLabels(ino *kernel.Inode) difc.Labels { return m.inodeState(ino).labels }

// GrantCapability hands t the kind capabilities for tag. This is the
// trusted-path equivalent of receiving capabilities at login or from the
// tag allocator; only trusted callers (the VM runtime, login) use it.
func (m *Module) GrantCapability(t *kernel.Task, tag difc.Tag, kind difc.CapKind) {
	s := m.taskState(t)
	s.caps = s.caps.Grant(tag, kind)
	// Capabilities feed the unlink could-read fallback, so capability
	// changes invalidate cached verdicts just like label changes.
	t.BumpLabelEpoch()
}

// AdoptInodeLabels attaches wire-received labels to an inode created by
// the trusted network transport (kernel.NetSocketAdopted). No local
// principal creates the accepting end of a cross-kernel channel, so the
// labeled-create checks do not apply — the labels simply ARE what the
// peer kernel's handshake declared, and every local Send/Recv on the
// endpoint is then checked against them by the ordinary hooks. Callers
// must invoke this before the endpoint is published (the transport does,
// inside the NetSocketAdopted attach callback), preserving the
// blobs-before-publication invariant. Socket inodes are never persisted,
// matching local socketpairs.
func (m *Module) AdoptInodeLabels(ino *kernel.Inode, labels difc.Labels) {
	ino.Security = &inodeSec{labels: difc.InternLabels(labels)}
	ino.BumpLabelEpoch()
}

// AdoptTaskLabels sets a relay task's labels to wire-received channel
// labels, the task-side twin of AdoptInodeLabels. A routed cross-kernel
// channel is forwarded at each intermediate hop by a relay task the
// trusted transport spawns for exactly that channel; the relay must run
// AT the channel's labels so that its Recv from the inbound endpoint and
// Send to the outbound endpoint — both fully checked by this node's
// ordinary hooks — re-establish the flow rules at every hop. The relay
// holds no capabilities for the (remote-minted) tags, so the ordinary
// SetTaskLabel path cannot express this; like inode adoption, the labels
// simply ARE what the wire declared, and everything the task then does
// is checked against them.
func (m *Module) AdoptTaskLabels(t *kernel.Task, labels difc.Labels) {
	s := m.taskState(t)
	s.labels = difc.InternLabels(labels)
	t.BumpLabelEpoch()
}

// RegisterTCBThread marks t as the trusted VM thread of its process by
// endorsing it with the tcb integrity tag. Only the VM's startup path
// (trusted code) calls this. The process is thereafter allowed to hold
// threads at heterogeneous labels: the VM regulates in-address-space
// flows (§4.1).
func (m *Module) RegisterTCBThread(t *kernel.Task) {
	s := m.taskState(t)
	s.labels.I = difc.Intern(s.labels.I.Add(m.tcbTag))
	t.BumpLabelEpoch()
	m.tcbProcs.Store(t.Proc, struct{}{})
}

// InstallSystemIntegrity labels the system directories (/, /etc,
// /etc/laminar, /home, /dev) with the administrator integrity tag, as done
// at install time (§5.2). /tmp stays unlabeled as scratch space, so tasks
// that eschew trust in the administrator can still create files there and
// in their own labeled trees via relative paths.
func (m *Module) InstallSystemIntegrity(k *kernel.Kernel) {
	// The init task receives the administrator capabilities so that it can
	// raise its integrity to {admin} when it must write system
	// directories (installing caps files, creating home directories).
	m.GrantCapability(k.InitTask(), m.adminTag, difc.CapBoth)
	adminLabels := difc.InternLabels(difc.Labels{I: difc.NewLabel(m.adminTag)})
	label := func(ino *kernel.Inode) {
		s := m.inodeState(ino)
		s.labels = adminLabels
		ino.BumpLabelEpoch()
		// Boot labeling runs before any injector is installed; a persist
		// error here would mean the image itself is broken.
		_ = m.persistCommit(ino, adminLabels)
	}
	root := k.Root()
	label(root)
	for _, path := range [][]string{{"etc"}, {"etc", "laminar"}, {"home"}, {"dev"}} {
		ino := root
		ok := true
		for _, name := range path {
			if ino, ok = ino.Child(name); !ok {
				break
			}
		}
		if ok {
			label(ino)
		}
	}
}

// --- hook implementations ---

// TaskAlloc implements fork inheritance: labels copy to the child; the
// child's capabilities are the parent's restricted to keep (nil = all).
// The blob is built on a local and attached before the child is
// runnable, so no verdict for it can predate this (govet:fresh).
func (m *Module) TaskAlloc(parent, child *kernel.Task, keep []kernel.Capability) error {
	ps := m.taskState(parent)
	cs := &taskSec{labels: ps.labels}
	if keep == nil {
		cs.caps = ps.caps
	} else {
		for _, c := range keep {
			if !ps.caps.Has(c.Tag, c.Kind) {
				return fmt.Errorf("%w: fork keep set exceeds parent capabilities (%v%v)", kernel.ErrPerm, c.Tag, c.Kind)
			}
			cs.caps = cs.caps.Grant(c.Tag, c.Kind)
		}
	}
	child.Security = cs
	return nil
}

// TaskFree clears the blob at exit; the task is already unrunnable and
// its TID retired, so its cache line dies with it (govet:fresh).
func (m *Module) TaskFree(t *kernel.Task) { t.Security = nil }

// InodeInitSecurity labels a new inode. With explicit labels it enforces
// the three labeled-create conditions of §5.2; otherwise the inode takes
// the creating task's current labels (so a tainted thread's new files are
// as secret as the thread). The hook runs before the entry is linked, so
// the blob is attached pre-publication (govet:fresh).
func (m *Module) InodeInitSecurity(t *kernel.Task, dir, ino *kernel.Inode, labels *difc.Labels) error {
	ts := m.taskState(t)
	s := &inodeSec{}
	if labels == nil {
		s.labels = difc.InternLabels(ts.labels)
	} else {
		f := *labels
		// (1) The creator's current secrecy must flow into the new file:
		// Sp ⊆ Sf, so a tainted creator cannot launder its taint into a
		// less-secret file. Checked as a pure secrecy flow so the denial
		// carries the exact FlowError operands.
		if err := difc.CheckFlow("create", difc.Labels{S: ts.labels.S}, difc.Labels{S: f.S}); err != nil {
			return fmt.Errorf("%w: %w", kernel.ErrPerm, err)
		}
		// (2) The creator must hold capabilities to acquire the file's
		// labels: every secrecy tag it does not already carry needs the
		// plus capability, and every integrity tag it endorses the file
		// with needs the endorsement capability. (Holding t+ means the
		// creator could raise itself to the label anyway, so granting the
		// create directly is sound and avoids the traversal deadlock of
		// requiring high-integrity tasks to read low-integrity parents.)
		if err := difc.CheckAcquire("create", ts.labels.S, f.S, ts.caps); err != nil {
			return fmt.Errorf("%w: %w", kernel.ErrPerm, err)
		}
		if err := difc.CheckAcquire("create", ts.labels.I, f.I, ts.caps); err != nil {
			return fmt.Errorf("%w: %w", kernel.ErrPerm, err)
		}
		// (3) Write access to the parent directory with the creator's
		// *current* label is checked by the kernel's separate
		// InodePermission(dir, MayWrite) hook call.
		s.labels = difc.InternLabels(f)
	}
	// In-memory only: this hook runs before the entry is linked, so a
	// crash here leaves nothing behind. Persistence happens in
	// InodePostCreate, after the link, where a crash is recoverable.
	ino.Security = s
	return nil
}

// InodePostCreate persists the freshly linked inode's labels through the
// crash-consistent shadow/flip protocol. An error (including an injected
// crash) propagates to the kernel, which unwinds the create or leaves the
// torn state for recovery (see kernel.SecurityModule).
func (m *Module) InodePostCreate(t *kernel.Task, dir, ino *kernel.Inode) error {
	return m.persistCommit(ino, m.inodeState(ino).labels)
}

// InodePermission enforces the flow rules between the task and the inode.
func (m *Module) InodePermission(t *kernel.Task, ino *kernel.Inode, mask kernel.AccessMask) error {
	return m.checkAccess(t, ino, mask)
}

// FilePermission enforces the flow rules on each file-descriptor
// operation. Laminar has no endpoint abstraction: the label check happens
// here, on every read and write (§2).
func (m *Module) FilePermission(t *kernel.Task, f *kernel.File, mask kernel.AccessMask) error {
	if _, ok := f.Security.(*fileSec); !ok {
		//govet:fresh — attaches an empty marker blob; fileSec carries no
		// labels, so no verdict depends on it.
		f.Security = &fileSec{}
	}
	return m.checkAccess(t, f.Inode, mask)
}

// MmapFile treats a readable mapping as a read flow and a writable mapping
// as a write flow.
func (m *Module) MmapFile(t *kernel.Task, ino *kernel.Inode, prot int) error {
	var mask kernel.AccessMask
	if prot&kernel.ProtRead != 0 || prot&kernel.ProtExec != 0 {
		mask |= kernel.MayRead
	}
	if prot&kernel.ProtWrite != 0 {
		mask |= kernel.MayWrite
	}
	return m.checkAccess(t, ino, mask)
}

// checkAccess resolves the task-vs-inode flow decision for mask. With the
// verdict cache enabled, a repeat of a (task, inode, mask) triple whose
// label epochs have not moved returns the memoized verdict — the exact
// same error value, so denial provenance (errors.As on *difc.FlowError)
// and rendered messages are byte-identical to the uncached monitor. The
// cache sits BELOW every hook wrapper (telemetry, fault injection, hook
// counting), so the observable event stream is invariant under caching.
//
// Soundness: both epochs are read BEFORE the verdict is derived. Task
// security state only changes under the task's own entry lock (which we
// hold) or under begin2 with the target locked (so not mid-check); inode
// labels change only pre-publication or in quiescent recovery, each bump
// strictly after the relabel. A verdict stored under stale epochs can
// match no future lookup.
func (m *Module) checkAccess(t *kernel.Task, ino *kernel.Inode, mask kernel.AccessMask) error {
	ts := m.taskState(t)
	var verdict error
	if !m.verdictCache {
		verdict = m.checkAccessSlow(ts, m.inodeState(ino).labels, mask)
	} else {
		se, oe := t.LabelEpoch(), ino.LabelEpoch()
		if ts.vc == nil {
			ts.vc = difc.NewVerdictCache()
		}
		if v, ok := ts.vc.Lookup(uint64(ino.Ino), uint32(mask), se, oe); ok {
			verdict = v
		} else {
			verdict = m.checkAccessSlow(ts, m.inodeState(ino).labels, mask)
			ts.vc.Store(uint64(ino.Ino), uint32(mask), se, oe, verdict)
		}
	}
	if verdict == nil && m.tel != nil && m.tel.Verbose() && m.tel.TraceBound(uint64(ino.Ino)) {
		m.emitTracedAllows(t, ts, ino, mask)
	}
	return verdict
}

// emitTracedAllows records rich, replayable allow events for an allowed
// access on a trace-bound endpoint: full label operands at the site the
// flow check ran, so explain-route can re-run each hop's check from the
// dump (the allow-side counterpart of a denial's provenance). Emitted
// AFTER the verdict — cached or not — from the mask alone, so the event
// stream stays invariant under the verdict cache. The unlink arm is
// deliberately skipped: its verdict folds in the couldRead escape, which
// a bare CheckFlow replay cannot reproduce.
func (m *Module) emitTracedAllows(t *kernel.Task, ts *taskSec, ino *kernel.Inode, mask kernel.AccessMask) {
	subj := difc.InternLabels(ts.labels)
	obj := difc.InternLabels(m.inodeState(ino).labels)
	tid, proc, inum := uint64(t.TID), t.Proc, uint64(ino.Ino)
	if mask&(kernel.MayRead|kernel.MayExec) != 0 {
		m.tel.Emit(telemetry.Event{Layer: telemetry.LayerLSM, Kind: telemetry.KindAllow,
			Site: "lsm.checkAccess", Op: "read", TID: tid, Proc: proc, Ino: inum,
			SrcS: obj.S.InternedID(), SrcI: obj.I.InternedID(),
			DstS: subj.S.InternedID(), DstI: subj.I.InternedID()})
	}
	if mask&kernel.MayWrite != 0 {
		m.tel.Emit(telemetry.Event{Layer: telemetry.LayerLSM, Kind: telemetry.KindAllow,
			Site: "lsm.checkAccess", Op: "write", TID: tid, Proc: proc, Ino: inum,
			SrcS: subj.S.InternedID(), SrcI: subj.I.InternedID(),
			DstS: obj.S.InternedID(), DstI: obj.I.InternedID()})
	}
}

func (m *Module) checkAccessSlow(ts *taskSec, obj difc.Labels, mask kernel.AccessMask) error {
	// Denial wraps use %w for the difc error too (not %v): the rendered
	// string is identical, but the structured *difc.FlowError stays
	// reachable through errors.As, which is how the telemetry layer
	// recovers the violated rule, the exact operands and the tag delta.
	if mask&(kernel.MayRead|kernel.MayExec) != 0 {
		if err := difc.CheckFlow("read", obj, ts.labels); err != nil {
			// Read denials carry the ErrAccessRead marker: path-based
			// syscalls convert them to ENOENT so a denied name is
			// indistinguishable from an absent one (kernel/errno.go).
			return fmt.Errorf("%w: %w", kernel.ErrAccessRead, err)
		}
	}
	if mask&kernel.MayWrite != 0 {
		if err := difc.CheckFlow("write", ts.labels, obj); err != nil {
			return fmt.Errorf("%w: %w", kernel.ErrAccess, err)
		}
	}
	if mask&kernel.MayUnlink != 0 {
		if err := difc.CheckFlow("unlink", obj, ts.labels); err != nil && !m.couldRead(ts, obj) {
			return fmt.Errorf("%w: %w", kernel.ErrAccessRead, err)
		}
	}
	return nil
}

// couldRead reports whether the task could legally change its labels so
// that reading obj becomes allowed — raise secrecy to cover obj.S (plus
// capabilities) and drop integrity tags obj lacks (minus capabilities).
// This is the §4.4 revocation case: the owner of a tag may unlink a file
// labeled with it without first tainting itself, because the file's
// existence is not secret to a capability holder.
func (m *Module) couldRead(ts *taskSec, obj difc.Labels) bool {
	target := difc.Labels{S: ts.labels.S.Union(obj.S), I: ts.labels.I.Meet(obj.I)}
	return difc.CanChangeLabels(ts.labels, target, ts.caps)
}

// TaskKill allows a signal only when information may flow from sender to
// target.
func (m *Module) TaskKill(t, target *kernel.Task, sig kernel.Signal) error {
	src := m.taskState(t).labels
	dst := m.taskState(target).labels
	if err := difc.CheckFlow("signal", src, dst); err != nil {
		return fmt.Errorf("%w: %w", kernel.ErrPerm, err)
	}
	return nil
}

// AllocTag mints a fresh tag and grants the caller both capabilities; the
// caller becomes the tag's owner (§4.4). Tags are 64-bit, so exhaustion is
// not a concern (§4.4).
func (m *Module) AllocTag(t *kernel.Task) (difc.Tag, error) {
	tag := m.allocate()
	s := m.taskState(t)
	s.caps = s.caps.Grant(tag, difc.CapBoth)
	t.BumpLabelEpoch()
	return tag, nil
}

// chargeDeclass meters capability-based declassification (ISSUE 10):
// each secrecy tag the relabel sheds spends one unit of its
// local-context budget (peer 0) BEFORE the label mutation commits.
// Exhaustion (or a ledger persist failure — fail closed) surfaces as the
// same ErrPerm-wrapped secrecy FlowError a missing minus capability
// produces, with the budget's own LayerBudget provenance emitted beside
// the kernel's LayerLSM event so explain-denial can name the real cause.
// A kernel without a ledger charges nothing.
func (m *Module) chargeDeclass(t *kernel.Task, site, op string, dropped difc.Label) error {
	led := t.Kernel().Budget()
	if led == nil || dropped.IsEmpty() {
		return nil
	}
	if err := led.ChargeLabel(op, dropped, 0, 1); err != nil {
		if m.tel != nil && m.tel.Active() {
			m.tel.EmitDeny(telemetry.LayerBudget, site, op, uint64(t.TID), t.Proc, err)
		}
		return fmt.Errorf("%w: %w", kernel.ErrPerm, err)
	}
	return nil
}

// SetTaskLabel changes one of the caller's labels under the label-change
// rule. Laminar requires explicit label changes (§3.2): there is no
// implicit taint propagation.
func (m *Module) SetTaskLabel(t *kernel.Task, typ kernel.LabelType, l difc.Label) error {
	// §4.1: without a trusted VM mediating heap flows, all threads of a
	// multithreaded process must share one label. Refuse per-thread label
	// changes in such processes (single-threaded processes and processes
	// with a registered VM are unrestricted).
	if _, trusted := m.tcbProcs.Load(t.Proc); !trusted {
		if t.Kernel().TasksInProc(t.Proc) > 1 {
			return fmt.Errorf("%w: label change in a multithreaded process without a trusted VM", kernel.ErrPerm)
		}
	}
	s := m.taskState(t)
	var cur difc.Label
	if typ == kernel.Secrecy {
		cur = s.labels.S
	} else {
		cur = s.labels.I
	}
	if err := difc.CheckChange("set_task_label", cur, l, s.caps); err != nil {
		return fmt.Errorf("%w: %w", kernel.ErrPerm, err)
	}
	// Dropping a secrecy tag is declassification: meter it AFTER the
	// capability check passes (an uncapable caller must see the exact
	// pre-budget denial) and BEFORE the label mutates, so an exhausted
	// budget denies with no partial state change. The ledger nil-check
	// comes first so unbudgeted kernels skip the Minus entirely.
	if typ == kernel.Secrecy && t.Kernel().Budget() != nil {
		if err := m.chargeDeclass(t, "lsm.SetTaskLabel", "set_task_label", cur.Minus(l)); err != nil {
			return err
		}
	}
	// Task labels are the hottest SubsetOf operand (every permission hook
	// compares them against object labels), so intern on the way in.
	if typ == kernel.Secrecy {
		s.labels.S = difc.Intern(l)
	} else {
		s.labels.I = difc.Intern(l)
	}
	t.BumpLabelEpoch()
	return nil
}

// DropLabelTCB clears the target's labels without capability checks. Only
// a task endorsed with the tcb integrity tag may call it, and only within
// its own process, so a VM can never strip labels from other applications
// (§4.4).
func (m *Module) DropLabelTCB(t, target *kernel.Task) error {
	ts := m.taskState(t)
	if !ts.labels.I.Has(m.tcbTag) {
		return fmt.Errorf("%w: drop_label_tcb requires the tcb integrity tag", kernel.ErrPerm)
	}
	if t.Proc != target.Proc {
		return fmt.Errorf("%w: drop_label_tcb outside caller's process", kernel.ErrPerm)
	}
	tgt := m.taskState(target)
	// The TCB drop declassifies every secrecy tag the target carries;
	// charge them all before the clear commits.
	if err := m.chargeDeclass(t, "lsm.DropLabelTCB", "drop_label_tcb", tgt.labels.S); err != nil {
		return err
	}
	tgt.labels = difc.Labels{}
	target.BumpLabelEpoch()
	return nil
}

// SetLabelTCB sets the target's labels without capability checks, under
// the same restrictions as DropLabelTCB (tcb tag, same process). The
// paper's drop_label_tcb is the labels == {} special case; the trusted VM
// needs the general form to restore a thread to the labels of the parent
// security region on nested-region exit, where the thread may hold neither
// the plus nor minus capabilities for the tags involved (§4.4).
//
// SetLabelTCB is deliberately NOT budget-charged: its only caller is the
// trusted VM's region-exit restore (rt.trySync), and the region exit
// itself is the commit point the runtime charges (rt/thread.go). Charging
// here too would double-bill every nested-region exit.
func (m *Module) SetLabelTCB(t, target *kernel.Task, labels difc.Labels) error {
	ts := m.taskState(t)
	if !ts.labels.I.Has(m.tcbTag) {
		return fmt.Errorf("%w: set_label_tcb requires the tcb integrity tag", kernel.ErrPerm)
	}
	if t.Proc != target.Proc {
		return fmt.Errorf("%w: set_label_tcb outside caller's process", kernel.ErrPerm)
	}
	m.taskState(target).labels = difc.InternLabels(labels)
	target.BumpLabelEpoch()
	return nil
}

// DropCapabilities removes the listed capabilities. tmp suspends them
// (restorable); otherwise the drop is permanent, including any suspended
// copy, which implements removeCapability(global=true).
//
// Not budget-charged: shedding a capability loses no protection — it
// strictly narrows what the task can later declassify. The budget meters
// tags leaving secrecy labels, not capability churn.
func (m *Module) DropCapabilities(t *kernel.Task, caps []kernel.Capability, tmp bool) error {
	s := m.taskState(t)
	for _, c := range caps {
		if tmp {
			if s.caps.Has(c.Tag, c.Kind) {
				s.suspended = s.suspended.Grant(c.Tag, c.Kind)
			}
			s.caps = s.caps.Drop(c.Tag, c.Kind)
		} else {
			s.caps = s.caps.Drop(c.Tag, c.Kind)
			s.suspended = s.suspended.Drop(c.Tag, c.Kind)
		}
	}
	t.BumpLabelEpoch()
	return nil
}

// RestoreCapabilities merges suspended capabilities back into the active
// set.
func (m *Module) RestoreCapabilities(t *kernel.Task) error {
	s := m.taskState(t)
	s.caps = s.caps.Union(s.suspended)
	s.suspended = difc.EmptyCapSet
	t.BumpLabelEpoch()
	return nil
}

// capPayload is the opaque blob queued on pipes for capability transfer.
type capPayload struct {
	cap    kernel.Capability
	sender difc.Labels
}

// WriteCapability queues a capability on the pipe. The sender must hold
// the capability; the flow check against the pipe's label follows pipe
// semantics — an illegal flow silently drops the capability so the result
// cannot leak information.
func (m *Module) WriteCapability(t *kernel.Task, c kernel.Capability, f *kernel.File) error {
	s := m.taskState(t)
	if !s.caps.Has(c.Tag, c.Kind) {
		return fmt.Errorf("%w: sender does not hold %v%v", kernel.ErrPerm, c.Tag, c.Kind)
	}
	pipeLabels := m.inodeState(f.Inode).labels
	if err := difc.CheckFlow("write", s.labels, pipeLabels); err != nil {
		// Silently dropped: the caller sees success so the result cannot
		// leak information — but the drop IS a flow denial, and it is
		// exactly the kind of invisible decision provenance exists for.
		// The kernel's hook wrapper never sees an error here, so the
		// module emits the event itself.
		if m.tel != nil && m.tel.Active() {
			m.tel.EmitDeny(telemetry.LayerLSM, "lsm.WriteCapability.silent-drop",
				"write_capability", uint64(t.TID), t.Proc, err)
		}
		//govet:failopen — the silent success IS the decision: pipe
		// semantics require the sender to observe success so the verdict
		// cannot leak information (see the doc comment above).
		return nil
	}
	f.Inode.PushCap(&capPayload{cap: c, sender: s.labels})
	return nil
}

// ReadCapability claims a queued capability if the flow from the pipe to
// the reader is legal.
func (m *Module) ReadCapability(t *kernel.Task, f *kernel.File) (kernel.Capability, error) {
	s := m.taskState(t)
	pipeLabels := m.inodeState(f.Inode).labels
	if err := difc.CheckFlow("read", pipeLabels, s.labels); err != nil {
		return kernel.Capability{}, fmt.Errorf("%w: %w", kernel.ErrAccess, err)
	}
	v := f.Inode.PopCap()
	if v == nil {
		return kernel.Capability{}, kernel.ErrAgain
	}
	p := v.(*capPayload)
	s.caps = s.caps.Grant(p.cap.Tag, p.cap.Kind)
	t.BumpLabelEpoch()
	return p.cap, nil
}
