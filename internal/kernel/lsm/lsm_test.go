package lsm

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// boot builds a kernel with the Laminar module installed and system
// integrity labels applied, plus an unlabeled user task with no caps.
func boot(t *testing.T) (*kernel.Kernel, *Module, *kernel.Task) {
	t.Helper()
	m := New()
	k := kernel.New(kernel.WithSecurityModule(m))
	m.InstallSystemIntegrity(k)
	user, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	// Work in unlabeled /tmp: the system directories carry the admin
	// integrity tag, so an ordinary task cannot create entries there.
	if err := k.Chdir(user, "/tmp"); err != nil {
		t.Fatal(err)
	}
	return k, m, user
}

// taint raises the task's secrecy label to l using freshly granted plus
// capabilities (test helper playing the role of a security region entry).
func taint(t *testing.T, k *kernel.Kernel, m *Module, task *kernel.Task, l difc.Label) {
	t.Helper()
	for _, tag := range l.Tags() {
		m.GrantCapability(task, tag, difc.CapPlus)
	}
	if err := k.SetTaskLabel(task, kernel.Secrecy, l); err != nil {
		t.Fatal(err)
	}
}

func TestAllocTagGrantsBothCaps(t *testing.T) {
	k, m, user := boot(t)
	tag, err := k.AllocTag(user)
	if err != nil {
		t.Fatal(err)
	}
	if tag == difc.InvalidTag {
		t.Fatal("alloc returned invalid tag")
	}
	caps := m.TaskCaps(user)
	if !caps.CanAdd(tag) || !caps.CanDrop(tag) {
		t.Errorf("caps after alloc = %v", caps)
	}
	tag2, _ := k.AllocTag(user)
	if tag2 == tag {
		t.Error("tags must be unique")
	}
}

func TestSetTaskLabelRequiresCapability(t *testing.T) {
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	secret := difc.NewLabel(tag)
	if err := k.SetTaskLabel(user, kernel.Secrecy, secret); err != nil {
		t.Fatalf("raise with t+: %v", err)
	}
	if !m.TaskLabels(user).S.Equal(secret) {
		t.Errorf("labels = %v", m.TaskLabels(user))
	}
	// Drop t- and try to untaint: must fail.
	if err := k.DropCapabilities(user, []kernel.Capability{{Tag: tag, Kind: difc.CapMinus}}, false); err != nil {
		t.Fatal(err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("untaint without t- = %v, want EPERM", err)
	}
}

func TestTaintedThreadCannotWriteUnlabeled(t *testing.T) {
	k, m, user := boot(t)
	_ = m
	// Pre-create the file while unlabeled.
	fd, err := k.Open(user, "out", kernel.OCreate|kernel.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	if _, err := k.Write(user, fd, []byte("secret")); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("tainted write to unlabeled file = %v, want EACCES", err)
	}
	// After declassifying (t- still held), the write works.
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(user, fd, []byte("public")); err != nil {
		t.Errorf("write after declassify = %v", err)
	}
}

func TestLabeledFileReadRequiresTaint(t *testing.T) {
	k, _, user := boot(t)
	tag, _ := k.AllocTag(user)
	secret := difc.Labels{S: difc.NewLabel(tag)}
	fd, err := k.CreateFileLabeled(user, "cal", 0o600, secret)
	if err != nil {
		t.Fatal(err)
	}
	k.Write(user, fd, nil) // fails silently? no: file labeled, user unlabeled
	k.Close(user, fd)

	// Unlabeled reader is rejected — with ENOENT, not EACCES: a denied
	// name must be indistinguishable from an absent one.
	if _, err := k.Open(user, "cal", kernel.ORead); !errors.Is(err, kernel.ErrNoEnt) {
		t.Errorf("unlabeled open of labeled file = %v, want ENOENT", err)
	}
	// Tainted reader succeeds.
	if err := k.SetTaskLabel(user, kernel.Secrecy, secret.S); err != nil {
		t.Fatal(err)
	}
	rfd, err := k.Open(user, "cal", kernel.ORead)
	if err != nil {
		t.Fatalf("tainted open = %v", err)
	}
	if _, err := k.Read(user, rfd, make([]byte, 4)); err != nil {
		t.Errorf("tainted read = %v", err)
	}
	// And the tainted reader cannot write /dev/null (unlabeled sink).
	nfd, err := k.Open(user, "/dev/null", kernel.OWrite)
	if err == nil {
		if _, werr := k.Write(user, nfd, []byte("leak")); !errors.Is(werr, kernel.ErrAccess) {
			t.Errorf("tainted write to /dev/null = %v, want EACCES", werr)
		}
	}
}

func TestCreateLabeledInUnlabeledDirWhileTaintedFails(t *testing.T) {
	// §5.2: a principal with secrecy {a} may not create a file named in an
	// unlabeled directory, because the name leaks; it must pre-create.
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	secret := difc.Labels{S: difc.NewLabel(tag)}
	taint(t, k, m, user, secret.S)
	if _, err := k.CreateFileLabeled(user, "leakname", 0o600, secret); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("labeled create by tainted task in unlabeled dir = %v, want EACCES", err)
	}
}

func TestLabeledCreateConditions(t *testing.T) {
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	other := difc.Tag(0xdead) // a tag the user holds no capability for

	// Missing capability for the file's secrecy label.
	if _, err := k.CreateFileLabeled(user, "f1", 0o600, difc.Labels{S: difc.NewLabel(other)}); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("create with uncapable label = %v, want EPERM", err)
	}
	// Legal: user holds tag+.
	fd, err := k.CreateFileLabeled(user, "f2", 0o600, difc.Labels{S: difc.NewLabel(tag)})
	if err != nil {
		t.Fatalf("legal labeled create = %v", err)
	}
	k.Close(user, fd)

	// Condition (1): a tainted creator cannot make a *less* secret file.
	taint(t, k, m, user, difc.NewLabel(tag))
	if _, err := k.CreateFileLabeled(user, "f3", 0o600, difc.Labels{}); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("tainted create of unlabeled file = %v, want EPERM", err)
	}
}

func TestLabeledDirectoryTree(t *testing.T) {
	// Secrecy increases root -> leaves: a labeled dir can hold labeled
	// files, and a tainted task can create entries inside it.
	k, _, user := boot(t)
	tag, _ := k.AllocTag(user)
	secret := difc.Labels{S: difc.NewLabel(tag)}
	if err := k.MkdirLabeled(user, "box", 0o700, secret); err != nil {
		t.Fatal(err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, secret.S); err != nil {
		t.Fatal(err)
	}
	// Now tainted: creating inside the labeled dir is fine (writes a
	// directory at the same secrecy).
	fd, err := k.Open(user, "box/data", kernel.OCreate|kernel.OWrite)
	if err != nil {
		t.Fatalf("tainted create inside labeled dir = %v", err)
	}
	if _, err := k.Write(user, fd, []byte("s")); err != nil {
		t.Errorf("write = %v", err)
	}
	k.Close(user, fd)
	// Declassify and verify the dir listing is now unreadable... the
	// unlabeled task cannot read the labeled directory.
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadDir(user, "box"); !errors.Is(err, kernel.ErrNoEnt) {
		t.Errorf("unlabeled ReadDir of labeled dir = %v, want ENOENT", err)
	}
}

func TestIntegritySystemDirectories(t *testing.T) {
	k, m, user := boot(t)
	// A task carrying its own integrity tag cannot resolve absolute
	// paths, because / carries only the admin integrity tag (§5.2).
	itag, _ := k.AllocTag(user)
	if err := k.SetTaskLabel(user, kernel.Integrity, difc.NewLabel(itag)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stat(user, "/etc"); !errors.Is(err, kernel.ErrNoEnt) {
		t.Errorf("integrity-labeled task stat(/etc) = %v, want ENOENT", err)
	}
	// Relative paths from an unlabeled cwd still work.
	if err := k.SetTaskLabel(user, kernel.Integrity, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stat(user, "/etc"); err != nil {
		t.Errorf("unlabeled task stat(/etc) = %v (trusting admin should work)", err)
	}
	_ = m
}

func TestIntegrityNoReadDown(t *testing.T) {
	k, m, user := boot(t)
	itag, _ := k.AllocTag(user)
	high := difc.Labels{I: difc.NewLabel(itag)}
	// Create a plain low-integrity file, while unlabeled.
	lowFD, _ := k.Open(user, "lowfile", kernel.OCreate|kernel.OWrite|kernel.ORead)
	if _, err := k.Write(user, lowFD, []byte("low")); err != nil {
		t.Fatal(err)
	}
	k.Seek(user, lowFD, 0)

	// Pre-create the endorsed plugin while unlabeled (holding itag+
	// satisfies the endorsement condition), keeping the descriptor.
	plugFD, err := k.CreateFileLabeled(user, "plugin", 0o600, high)
	if err != nil {
		t.Fatal(err)
	}
	// Writing endorsed content requires actually carrying the integrity:
	// the per-operation check rejects the unlabeled writer.
	if _, err := k.Write(user, plugFD, []byte("code")); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("unendorsed write to endorsed file = %v, want EACCES", err)
	}
	// Raise to high integrity; the held descriptors now show both rules.
	if err := k.SetTaskLabel(user, kernel.Integrity, high.I); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(user, plugFD, []byte("code")); err != nil {
		t.Errorf("endorsed write = %v", err)
	}
	// No read down: the high-integrity task may not read the low file,
	// even through an already-open descriptor.
	if _, err := k.Read(user, lowFD, make([]byte, 4)); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("high-integrity read of low file = %v, want EACCES (no read down)", err)
	}
	// Drop endorsement; the unlabeled task may read the endorsed file but
	// not write it (no write up). Both via fresh path opens: traversal
	// works again at empty integrity.
	if err := k.SetTaskLabel(user, kernel.Integrity, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(user, "plugin", kernel.ORead); err != nil {
		t.Errorf("low read of endorsed file = %v (reading up is legal)", err)
	}
	if _, err := k.Open(user, "plugin", kernel.OWrite); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("low write to endorsed file = %v, want EACCES (no write up)", err)
	}
	_ = m
}

func TestExecIntegrity(t *testing.T) {
	// The scheduling server cannot execute a plugin whose integrity label
	// is lower than the server's (§3.3).
	k, _, user := boot(t)
	itag, _ := k.AllocTag(user)
	fd, _ := k.Open(user, "evil", kernel.OCreate|kernel.OWrite)
	k.Close(user, fd)
	if err := k.SetTaskLabel(user, kernel.Integrity, difc.NewLabel(itag)); err != nil {
		t.Fatal(err)
	}
	if err := k.Exec(user, "evil"); !errors.Is(err, kernel.ErrNoEnt) {
		t.Errorf("exec of low-integrity file = %v, want ENOENT", err)
	}
}

func TestPipeSilentDropOnLabelMismatch(t *testing.T) {
	k, m, user := boot(t)
	r, w, err := k.Pipe(user) // unlabeled pipe
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	// Tainted write to unlabeled pipe: silently dropped, reports success.
	if n, err := k.Write(user, w, []byte("secret")); err != nil || n != 6 {
		t.Fatalf("pipe write = %d, %v (must appear to succeed)", n, err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(user, r, make([]byte, 8)); !errors.Is(err, kernel.ErrAgain) {
		t.Errorf("read after dropped write = %v, want EAGAIN", err)
	}
}

func TestPipeLabeledFlow(t *testing.T) {
	// A pipe created by a tainted task carries the taint; equally tainted
	// peers can use it, unlabeled ones cannot read it.
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	l := difc.NewLabel(tag)
	taint(t, k, m, user, l)
	r, w, err := k.Pipe(user)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := k.Write(user, w, []byte("x")); err != nil || n != 1 {
		t.Fatalf("tainted write to tainted pipe = %d, %v", n, err)
	}
	buf := make([]byte, 4)
	if n, err := k.Read(user, r, buf); err != nil || n != 1 {
		t.Errorf("tainted read = %d, %v", n, err)
	}
	// Untaint; reading the tainted pipe must now fail.
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	k.Write(user, w, []byte("y")) // silently dropped (unlabeled -> labeled is fine actually)
	if _, err := k.Read(user, r, buf); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("unlabeled read of labeled pipe = %v, want EACCES", err)
	}
}

func TestSignalFlow(t *testing.T) {
	k, m, alice := boot(t)
	bob, err := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := k.AllocTag(alice)
	taint(t, k, m, alice, difc.NewLabel(tag))
	// Tainted alice cannot signal unlabeled bob.
	if err := k.Kill(alice, bob.TID, kernel.SIGUSR1); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("tainted signal to unlabeled = %v, want EPERM", err)
	}
	// Unlabeled bob can signal tainted alice (flow up is fine).
	if err := k.Kill(bob, alice.TID, kernel.SIGUSR1); err != nil {
		t.Errorf("unlabeled signal to tainted = %v", err)
	}
}

func TestForkInheritance(t *testing.T) {
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	child, err := k.Fork(user, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.TaskLabels(child).Equal(m.TaskLabels(user)) {
		t.Error("child labels differ from parent")
	}
	if !m.TaskCaps(child).Equal(m.TaskCaps(user)) {
		t.Error("child caps differ from parent with nil keep")
	}
	// Restricted fork.
	only := []kernel.Capability{{Tag: tag, Kind: difc.CapPlus}}
	child2, err := k.Fork(user, only)
	if err != nil {
		t.Fatal(err)
	}
	if m.TaskCaps(child2).CanDrop(tag) {
		t.Error("restricted child kept minus capability")
	}
	// Keep set exceeding parent's caps is rejected.
	bad := []kernel.Capability{{Tag: difc.Tag(0xbeef), Kind: difc.CapPlus}}
	if _, err := k.Fork(user, bad); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("fork with excess keep = %v, want EPERM", err)
	}
}

func TestDropCapabilitiesTemporaryAndRestore(t *testing.T) {
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	drop := []kernel.Capability{{Tag: tag, Kind: difc.CapMinus}}
	if err := k.DropCapabilities(user, drop, true); err != nil {
		t.Fatal(err)
	}
	if m.TaskCaps(user).CanDrop(tag) {
		t.Error("temporary drop did not take effect")
	}
	if err := k.RestoreCapabilities(user); err != nil {
		t.Fatal(err)
	}
	if !m.TaskCaps(user).CanDrop(tag) {
		t.Error("restore did not recover capability")
	}
	// Global drop is permanent even after a pending temporary drop.
	if err := k.DropCapabilities(user, drop, true); err != nil {
		t.Fatal(err)
	}
	if err := k.DropCapabilities(user, drop, false); err != nil {
		t.Fatal(err)
	}
	if err := k.RestoreCapabilities(user); err != nil {
		t.Fatal(err)
	}
	if m.TaskCaps(user).CanDrop(tag) {
		t.Error("global drop resurrected by restore")
	}
}

func TestDropLabelTCB(t *testing.T) {
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	// Taint user with a label it cannot drop.
	if err := k.DropCapabilities(user, []kernel.Capability{{Tag: tag, Kind: difc.CapMinus}}, false); err != nil {
		t.Fatal(err)
	}
	taint(t, k, m, user, difc.NewLabel(tag))
	// user itself cannot call drop_label_tcb.
	if err := k.DropLabelTCB(user, user.TID); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("non-tcb drop_label_tcb = %v, want EPERM", err)
	}
	// A tcb thread in the same process can.
	vm, err := k.Fork(user, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterTCBThread(vm)
	if err := k.DropLabelTCB(vm, user.TID); err != nil {
		t.Fatalf("tcb drop = %v", err)
	}
	if !m.TaskLabels(user).IsEmpty() {
		t.Errorf("labels after tcb drop = %v", m.TaskLabels(user))
	}
	// A tcb thread in a different process cannot.
	taint(t, k, m, user, difc.NewLabel(tag))
	outsider, _ := k.Spawn(k.InitTask(), []kernel.Capability{})
	m.RegisterTCBThread(outsider)
	if err := k.DropLabelTCB(outsider, user.TID); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("cross-process tcb drop = %v, want EPERM", err)
	}
}

func TestWriteCapabilityOverPipe(t *testing.T) {
	k, m, alice := boot(t)
	bob, _ := k.Spawn(k.InitTask(), []kernel.Capability{})
	tag, _ := k.AllocTag(alice)

	r, w, err := k.Pipe(alice)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := k.DupTo(alice, r, bob)
	if err != nil {
		t.Fatal(err)
	}
	// Alice sends a+ to Bob.
	if err := k.WriteCapability(alice, kernel.Capability{Tag: tag, Kind: difc.CapPlus}, w); err != nil {
		t.Fatal(err)
	}
	got, err := k.ReadCapability(bob, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != tag || got.Kind != difc.CapPlus {
		t.Errorf("received %v", got)
	}
	if !m.TaskCaps(bob).CanAdd(tag) {
		t.Error("bob did not gain the capability")
	}
	// Sending a capability you do not hold fails.
	wb, err := k.DupTo(alice, w, bob)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteCapability(bob, kernel.Capability{Tag: tag, Kind: difc.CapMinus}, wb); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("send unheld capability = %v, want EPERM", err)
	}
	// Empty queue.
	if _, err := k.ReadCapability(bob, rb); !errors.Is(err, kernel.ErrAgain) {
		t.Errorf("empty cap read = %v, want EAGAIN", err)
	}
	// Wrong fd type.
	fd, _ := k.Open(alice, "/tmp/f", kernel.OCreate|kernel.OWrite)
	if err := k.WriteCapability(alice, kernel.Capability{Tag: tag, Kind: difc.CapPlus}, fd); !errors.Is(err, kernel.ErrInval) {
		t.Errorf("cap write on regular fd = %v, want EINVAL", err)
	}
}

func TestWriteCapabilitySilentDropOnFlow(t *testing.T) {
	k, m, alice := boot(t)
	tag, _ := k.AllocTag(alice)
	r, w, _ := k.Pipe(alice) // unlabeled pipe
	taint(t, k, m, alice, difc.NewLabel(tag))
	// Tainted sender to unlabeled pipe: call succeeds, nothing queued.
	if err := k.WriteCapability(alice, kernel.Capability{Tag: tag, Kind: difc.CapPlus}, w); err != nil {
		t.Fatalf("cap write = %v (must appear to succeed)", err)
	}
	if err := k.SetTaskLabel(alice, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadCapability(alice, r); !errors.Is(err, kernel.ErrAgain) {
		t.Errorf("cap read after silent drop = %v, want EAGAIN", err)
	}
}

func TestXattrPersistence(t *testing.T) {
	k, _, user := boot(t)
	tag, _ := k.AllocTag(user)
	secret := difc.Labels{S: difc.NewLabel(tag)}
	fd, err := k.CreateFileLabeled(user, "persist", 0o600, secret)
	if err != nil {
		t.Fatal(err)
	}
	k.Close(user, fd)
	// The label round-trips through the xattr. Taint to read it.
	if err := k.SetTaskLabel(user, kernel.Secrecy, secret.S); err != nil {
		t.Fatal(err)
	}
	data, err := k.GetXattr(user, "persist", XattrSecrecy)
	if err != nil {
		t.Fatal(err)
	}
	l, err := difc.UnmarshalLabel(data)
	if err != nil || !l.Equal(secret.S) {
		t.Errorf("persisted label = %v, %v", l, err)
	}
}

func TestLoginPersistentCaps(t *testing.T) {
	k, m, _ := boot(t)
	tag := difc.Tag(77)
	caps := difc.EmptyCapSet.Grant(tag, difc.CapBoth)
	if err := m.SaveUserCaps(k, k.InitTask(), "alice", caps); err != nil {
		t.Fatal(err)
	}
	shell, err := m.Login(k, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !m.TaskCaps(shell).Equal(caps) {
		t.Errorf("shell caps = %v, want %v", m.TaskCaps(shell), caps)
	}
	if shell.User != "alice" {
		t.Errorf("shell user = %q", shell.User)
	}
	// Home directory exists and is the cwd.
	if _, err := k.Stat(k.InitTask(), "/home/alice"); err != nil {
		t.Errorf("home missing: %v", err)
	}
	// A user with no caps file logs in with empty caps.
	shell2, err := m.Login(k, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !m.TaskCaps(shell2).IsEmpty() {
		t.Errorf("bob caps = %v", m.TaskCaps(shell2))
	}
}

func TestRevocationByRelabel(t *testing.T) {
	// §4.4: revoking access means allocating a new tag and relabeling.
	k, m, owner := boot(t)
	oldTag, _ := k.AllocTag(owner)
	fd, err := k.CreateFileLabeled(owner, "doc", 0o600, difc.Labels{S: difc.NewLabel(oldTag)})
	if err != nil {
		t.Fatal(err)
	}
	k.Close(owner, fd)
	// Friend got oldTag+.
	friend, _ := k.Spawn(k.InitTask(), []kernel.Capability{})
	if err := k.Chdir(friend, "/tmp"); err != nil {
		t.Fatal(err)
	}
	m.GrantCapability(friend, oldTag, difc.CapPlus)
	if err := k.SetTaskLabel(friend, kernel.Secrecy, difc.NewLabel(oldTag)); err != nil {
		t.Fatal(err)
	}
	// friend must chdir to owner's cwd to resolve the relative name; use
	// absolute home of init (both spawned from init cwd "/").
	if _, err := k.Open(friend, "doc", kernel.ORead); err != nil {
		t.Fatalf("friend open before revocation = %v", err)
	}
	// Owner revokes: new tag, new file, delete old.
	newTag, _ := k.AllocTag(owner)
	fd, err = k.CreateFileLabeled(owner, "doc2", 0o600, difc.Labels{S: difc.NewLabel(newTag)})
	if err != nil {
		t.Fatal(err)
	}
	k.Close(owner, fd)
	if err := k.Unlink(owner, "doc"); err != nil {
		t.Fatal(err)
	}
	// Friend cannot enter the new label, and the old file is gone.
	if err := k.SetTaskLabel(friend, kernel.Secrecy, difc.NewLabel(newTag)); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("friend raising to new tag = %v, want EPERM", err)
	}
	if _, err := k.Open(friend, "doc", kernel.ORead); !errors.Is(err, kernel.ErrNoEnt) {
		t.Errorf("old file open = %v, want ENOENT", err)
	}
}

func TestHookCallsCounted(t *testing.T) {
	k, _, user := boot(t)
	before := k.HookCalls()
	k.Stat(user, "/etc")
	if k.HookCalls() == before {
		t.Error("stat did not exercise hooks")
	}
}

func TestModuleName(t *testing.T) {
	k, m, _ := boot(t)
	if m.Name() != "laminar" || k.SecurityModuleName() != "laminar" {
		t.Errorf("module name = %q", m.Name())
	}
	if m.TCBTag() == m.AdminTag() {
		t.Error("tcb and admin tags must differ")
	}
}

func TestLabelsSurviveSecurityBlobLoss(t *testing.T) {
	// Labels persist in xattrs (as on ext3); if the in-memory security
	// blob is lost — module restart, cache eviction — enforcement must
	// rebuild it from the inode's attributes.
	k, _, user := boot(t)
	tag, _ := k.AllocTag(user)
	secret := difc.Labels{S: difc.NewLabel(tag)}
	fd, err := k.CreateFileLabeled(user, "durable", 0o600, secret)
	if err != nil {
		t.Fatal(err)
	}
	k.Close(user, fd)

	// Simulate the blob loss: walk to the inode and clear its Security
	// field (the kernel's opaque blob pointer).
	tmp, ok := k.Root().Child("tmp")
	if !ok {
		t.Fatal("/tmp missing")
	}
	ino, ok := tmp.Child("durable")
	if !ok {
		t.Fatal("file missing")
	}
	ino.Security = nil

	// An unlabeled open must still be rejected: the label comes back
	// from the xattr.
	if _, err := k.Open(user, "durable", kernel.ORead); !errors.Is(err, kernel.ErrNoEnt) {
		t.Fatalf("open after blob loss = %v, want ENOENT", err)
	}
	// And the rightful owner still gets in.
	if err := k.SetTaskLabel(user, kernel.Secrecy, secret.S); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(user, "durable", kernel.ORead); err != nil {
		t.Errorf("tainted open after blob loss = %v", err)
	}
}

func TestMultithreadedProcessWithoutVMSharesLabels(t *testing.T) {
	// §4.1: "All threads in multithreaded processes without a trusted VM
	// must have the same labels and capabilities." A single-threaded
	// process changes labels freely; once it forks a sibling thread (no
	// tcb registered), per-thread label changes are refused.
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	l := difc.NewLabel(tag)

	// Single-threaded: fine.
	if err := k.SetTaskLabel(user, kernel.Secrecy, l); err != nil {
		t.Fatalf("single-threaded label change: %v", err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}

	// Fork a sibling into the SAME process.
	sibling, err := k.Fork(user, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, l); !errors.Is(err, kernel.ErrPerm) {
		t.Errorf("multithreaded untrusted label change = %v, want EPERM", err)
	}

	// Registering a trusted VM thread lifts the restriction.
	m.RegisterTCBThread(sibling)
	if err := k.SetTaskLabel(user, kernel.Secrecy, l); err != nil {
		t.Errorf("label change with trusted VM = %v", err)
	}

	// The sibling exiting returns an untrusted process to freedom too
	// (back to single-threaded) — exercised via a fresh process.
	solo, _ := k.Spawn(k.InitTask(), []kernel.Capability{})
	peer, _ := k.Fork(solo, nil)
	k.Exit(peer)
	tag2, _ := k.AllocTag(solo)
	if err := k.SetTaskLabel(solo, kernel.Secrecy, difc.NewLabel(tag2)); err != nil {
		t.Errorf("label change after sibling exit = %v", err)
	}
}
