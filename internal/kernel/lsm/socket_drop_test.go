package lsm

import (
	"errors"
	"fmt"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/kernel"
)

// sendOutcome boots a fresh stack, performs one Send in the given
// condition, and returns the sender-visible signature of the call plus
// whether the bytes actually arrived at the peer.
func sendOutcome(t *testing.T, tainted bool, inj faultinject.Injector) (sig string, arrived bool) {
	t.Helper()
	m := New()
	opts := []kernel.Option{kernel.WithSecurityModule(m)}
	if inj != nil {
		opts = append(opts, kernel.WithFaultInjector(inj))
	}
	k := kernel.New(opts...)
	m.InstallSystemIntegrity(k)
	user, err := k.Spawn(k.InitTask(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := k.Socketpair(user)
	if err != nil {
		t.Fatal(err)
	}
	if tainted {
		tag, terr := k.AllocTag(user)
		if terr != nil {
			t.Fatal(terr)
		}
		if err := k.SetTaskLabel(user, kernel.Secrecy, difc.NewLabel(tag)); err != nil {
			t.Fatal(err)
		}
	}
	n, serr := k.Send(user, a, []byte("payload"))
	sig = fmt.Sprintf("n=%d err=%v", n, serr)
	if tainted {
		// Declassify (the allocation granted t⁻) so the probe read is
		// never itself denied.
		if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
			t.Fatal(err)
		}
	}
	_, rerr := k.Recv(user, b, make([]byte, 16))
	return sig, rerr == nil
}

// TestSendDropIndistinguishableFromDelivery is the silent-drop
// regression at the syscall boundary: a secrecy-violating Send and a
// fault-eaten Send must both return EXACTLY what a delivered Send
// returns — same byte count, same nil error, no errno that a tainted
// sender could modulate into a covert channel — while the receiver sees
// nothing.
func TestSendDropIndistinguishableFromDelivery(t *testing.T) {
	delivered, arrivedOK := sendOutcome(t, false, nil)
	if !arrivedOK {
		t.Fatal("baseline send did not arrive")
	}

	denied, arrivedDenied := sendOutcome(t, true, nil)
	if denied != delivered {
		t.Errorf("policy drop distinguishable: %q vs delivered %q", denied, delivered)
	}
	if arrivedDenied {
		t.Error("secrecy-violating send reached the receiver")
	}

	plan := faultinject.NewPlan(3)
	plan.SetRates("socket.send", faultinject.Rates{Error: 1})
	faulted, arrivedFaulted := sendOutcome(t, false, plan)
	if faulted != delivered {
		t.Errorf("fault drop distinguishable: %q vs delivered %q", faulted, delivered)
	}
	if arrivedFaulted {
		t.Error("fault-eaten send reached the receiver")
	}
}

// TestRecvDenialIsPlainAccessError pins the receive side: a denied Recv
// is an ordinary EACCES read denial raised BEFORE the buffer is
// inspected — whether data has arrived must not change the error, or
// arrival timing becomes observable to a reader who may not read.
func TestRecvDenialIsPlainAccessError(t *testing.T) {
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	a, b, err := k.Socketpair(user) // connection carries {S:{tag}}
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	// Empty buffer: denial, not EAGAIN.
	buf := make([]byte, 8)
	if _, rerr := k.Recv(user, b, buf); !errors.Is(rerr, kernel.ErrAccess) {
		t.Fatalf("denied recv (empty) = %v, want EACCES", rerr)
	}
	// Data waiting: the identical denial.
	taint(t, k, m, user, difc.NewLabel(tag))
	if _, serr := k.Send(user, a, []byte("x")); serr != nil {
		t.Fatal(serr)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, rerr := k.Recv(user, b, buf); !errors.Is(rerr, kernel.ErrAccess) {
		t.Fatalf("denied recv (data waiting) = %v, want EACCES", rerr)
	}
}
