package lsm

import (
	"fmt"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// This file implements capability persistence and login (§4.4): "The OS
// stores the persistent capabilities for each user in a file. On login,
// the OS gives the login shell all of the user's persistent capabilities,
// just as it gives the shell access to the controlling terminal."

// capsDir is where per-user persistent capability files live.
const capsDir = "/etc/laminar/caps"

// SaveUserCaps persists caps as user's capability file, written with the
// acting (trusted, typically init/root) task's credentials. The admin task
// must hold the administrator capabilities (granted to init at install
// time): the caps directory lives under admin-integrity /etc, so the
// writer raises its integrity for the duration.
func (m *Module) SaveUserCaps(k *kernel.Kernel, admin *kernel.Task, user string, caps difc.CapSet) error {
	restore, err := m.raiseAdminIntegrity(k, admin)
	if err != nil {
		return err
	}
	defer restore()
	if err := ensureCapsDir(k, admin); err != nil {
		return err
	}
	fd, err := k.Open(admin, capsDir+"/"+user, kernel.ORead|kernel.OWrite|kernel.OCreate|kernel.OTrunc)
	if err != nil {
		return err
	}
	defer k.Close(admin, fd)
	if _, err := k.Write(admin, fd, []byte(caps.FormatText())); err != nil {
		return err
	}
	return nil
}

// raiseAdminIntegrity adds the administrator tag to the task's integrity
// label, returning a restore func that puts the previous label back.
func (m *Module) raiseAdminIntegrity(k *kernel.Kernel, t *kernel.Task) (func(), error) {
	prev := m.taskState(t).labels.I
	raised := prev.Add(m.adminTag)
	if err := k.SetTaskLabel(t, kernel.Integrity, raised); err != nil {
		return nil, err
	}
	return func() { _ = k.SetTaskLabel(t, kernel.Integrity, prev) }, nil
}

// LoadUserCaps reads a user's persistent capability file.
func (m *Module) LoadUserCaps(k *kernel.Kernel, admin *kernel.Task, user string) (difc.CapSet, error) {
	fd, err := k.Open(admin, capsDir+"/"+user, kernel.ORead)
	if err != nil {
		return difc.EmptyCapSet, err
	}
	defer k.Close(admin, fd)
	buf := make([]byte, 64*1024)
	n, err := k.Read(admin, fd, buf)
	if err != nil {
		return difc.EmptyCapSet, err
	}
	return difc.ParseCapSetText(string(buf[:n]))
}

// Login spawns a fresh-process login shell task for user, grants it the
// user's persistent capabilities, creates /home/<user> if missing, and
// chdirs there. The shell starts unlabeled, like any fresh principal.
func (m *Module) Login(k *kernel.Kernel, user string) (*kernel.Task, error) {
	init := k.InitTask()
	shell, err := k.Spawn(init, []kernel.Capability{}) // inherit no capabilities
	if err != nil {
		return nil, err
	}
	shell.User = user
	caps, err := m.LoadUserCaps(k, init, user)
	if err != nil && err != kernel.ErrNoEnt {
		k.Exit(shell)
		return nil, fmt.Errorf("login %s: %w", user, err)
	}
	s := m.taskState(shell)
	s.labels = difc.Labels{}
	s.caps = caps
	home := "/home/" + user
	if _, err := k.Stat(init, home); err == kernel.ErrNoEnt {
		// Creating the home directory writes admin-integrity /home, so
		// init raises its integrity; the home itself is created unlabeled
		// so the user can populate it without trusting the administrator
		// tag for writes.
		restore, rerr := m.raiseAdminIntegrity(k, init)
		if rerr != nil {
			k.Exit(shell)
			return nil, rerr
		}
		err := k.MkdirLabeled(init, home, 0o755, difc.Labels{})
		restore()
		if err != nil {
			k.Exit(shell)
			return nil, err
		}
	}
	if err := k.Chdir(shell, home); err != nil {
		k.Exit(shell)
		return nil, err
	}
	return shell, nil
}

func ensureCapsDir(k *kernel.Kernel, admin *kernel.Task) error {
	if _, err := k.Stat(admin, capsDir); err == kernel.ErrNoEnt {
		return k.Mkdir(admin, capsDir, 0o700)
	} else if err != nil {
		return err
	}
	return nil
}
