package lsm

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

// This file implements capability persistence and login (§4.4): "The OS
// stores the persistent capabilities for each user in a file. On login,
// the OS gives the login shell all of the user's persistent capabilities,
// just as it gives the shell access to the controlling terminal."

// capsDir is where per-user persistent capability files live.
const capsDir = "/etc/laminar/caps"

// capsMagic heads a checksummed capability file. Files without it are
// treated as legacy plain text for compatibility.
const capsMagic = "LMCAPS1"

// encodeCapsFile wraps the textual capability set in a checksummed
// envelope: "LMCAPS1 <crc32 hex>\n<payload>". A torn write is detected by
// the checksum instead of being half-parsed into a smaller — or worse,
// different — capability set.
func encodeCapsFile(caps difc.CapSet) []byte {
	payload := caps.FormatText()
	sum := crc32.ChecksumIEEE([]byte(payload))
	return []byte(fmt.Sprintf("%s %08x\n%s", capsMagic, sum, payload))
}

// decodeCapsFile validates and parses a capability file. Legacy files
// (no envelope) parse as plain text.
func decodeCapsFile(data []byte) (difc.CapSet, error) {
	s := string(data)
	if !strings.HasPrefix(s, capsMagic+" ") {
		return difc.ParseCapSetText(s)
	}
	head, payload, ok := strings.Cut(s, "\n")
	if !ok {
		return difc.EmptyCapSet, fmt.Errorf("caps file truncated before payload")
	}
	sumHex := strings.TrimPrefix(head, capsMagic+" ")
	want, err := strconv.ParseUint(sumHex, 16, 32)
	if err != nil {
		return difc.EmptyCapSet, fmt.Errorf("caps file bad checksum field: %v", err)
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return difc.EmptyCapSet, fmt.Errorf("caps file checksum mismatch")
	}
	return difc.ParseCapSetText(payload)
}

// SaveUserCaps persists caps as user's capability file, written with the
// acting (trusted, typically init/root) task's credentials. The admin task
// must hold the administrator capabilities (granted to init at install
// time): the caps directory lives under admin-integrity /etc, so the
// writer raises its integrity for the duration.
func (m *Module) SaveUserCaps(k *kernel.Kernel, admin *kernel.Task, user string, caps difc.CapSet) error {
	restore, err := m.raiseAdminIntegrity(k, admin)
	if err != nil {
		return err
	}
	defer restore()
	if err := ensureCapsDir(k, admin); err != nil {
		return err
	}
	// Shadow-write + flip, like label records (persist.go): the new
	// envelope lands fully in <user>.shadow before <user> is rewritten, so
	// a crash during either write leaves at least one valid copy. Both
	// writes go through the ordinary (faultable) write syscall and can
	// tear; the checksum makes a torn copy detectable rather than
	// half-parseable.
	path := capsDir + "/" + user
	data := encodeCapsFile(caps)
	if err := writeFileAll(k, admin, path+".shadow", data); err != nil {
		return err
	}
	if err := writeFileAll(k, admin, path, data); err != nil {
		return err
	}
	// Cleanup is best-effort: a leftover shadow only means the next load
	// has a second valid copy to ignore.
	_ = k.Unlink(admin, path+".shadow")
	return nil
}

func writeFileAll(k *kernel.Kernel, t *kernel.Task, path string, data []byte) error {
	fd, err := k.Open(t, path, kernel.ORead|kernel.OWrite|kernel.OCreate|kernel.OTrunc)
	if err != nil {
		return err
	}
	defer k.Close(t, fd)
	if _, err := k.Write(t, fd, data); err != nil {
		return err
	}
	return nil
}

// raiseAdminIntegrity adds the administrator tag to the task's integrity
// label, returning a restore func that puts the previous label back.
func (m *Module) raiseAdminIntegrity(k *kernel.Kernel, t *kernel.Task) (func(), error) {
	prev := m.taskState(t).labels.I
	raised := prev.Add(m.adminTag)
	if err := k.SetTaskLabel(t, kernel.Integrity, raised); err != nil {
		return nil, err
	}
	return func() { _ = k.SetTaskLabel(t, kernel.Integrity, prev) }, nil
}

// LoadUserCaps reads a user's persistent capability file, rolling forward
// from the shadow copy when the primary is torn or missing. When neither
// copy validates but one exists, it FAILS CLOSED: the user logs in with no
// capabilities — inconvenient, but corruption can only ever shrink
// privilege, never mint it. Only a missing file (user never saved) returns
// ErrNoEnt.
func (m *Module) LoadUserCaps(k *kernel.Kernel, admin *kernel.Task, user string) (difc.CapSet, error) {
	path := capsDir + "/" + user
	primary, perr := readFileAll(k, admin, path)
	if perr == nil {
		if caps, err := decodeCapsFile(primary); err == nil {
			return caps, nil
		}
	} else if perr != kernel.ErrNoEnt {
		return difc.EmptyCapSet, perr
	}
	shadow, serr := readFileAll(k, admin, path+".shadow")
	if serr == nil {
		if caps, err := decodeCapsFile(shadow); err == nil {
			// Roll the valid shadow forward into the primary; repair is
			// best-effort — the shadow alone already serves future loads.
			if restore, err := m.raiseAdminIntegrity(k, admin); err == nil {
				_ = writeFileAll(k, admin, path, shadow)
				_ = k.Unlink(admin, path+".shadow")
				restore()
			}
			return caps, nil
		}
	}
	if perr == kernel.ErrNoEnt && serr == kernel.ErrNoEnt {
		return difc.EmptyCapSet, kernel.ErrNoEnt
	}
	return difc.EmptyCapSet, nil // some copy existed, none validated: no caps
}

func readFileAll(k *kernel.Kernel, t *kernel.Task, path string) ([]byte, error) {
	fd, err := k.Open(t, path, kernel.ORead)
	if err != nil {
		return nil, err
	}
	defer k.Close(t, fd)
	buf := make([]byte, 64*1024)
	n, err := k.Read(t, fd, buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Login spawns a fresh-process login shell task for user, grants it the
// user's persistent capabilities, creates /home/<user> if missing, and
// chdirs there. The shell starts unlabeled, like any fresh principal.
func (m *Module) Login(k *kernel.Kernel, user string) (*kernel.Task, error) {
	init := k.InitTask()
	shell, err := k.Spawn(init, []kernel.Capability{}) // inherit no capabilities
	if err != nil {
		return nil, err
	}
	shell.User = user
	caps, err := m.LoadUserCaps(k, init, user)
	if err != nil && err != kernel.ErrNoEnt {
		k.Exit(shell)
		return nil, fmt.Errorf("login %s: %w", user, err)
	}
	s := m.taskState(shell)
	s.labels = difc.Labels{}
	s.caps = caps
	shell.BumpLabelEpoch()
	home := "/home/" + user
	if _, err := k.Stat(init, home); err == kernel.ErrNoEnt {
		// Creating the home directory writes admin-integrity /home, so
		// init raises its integrity; the home itself is created unlabeled
		// so the user can populate it without trusting the administrator
		// tag for writes.
		restore, rerr := m.raiseAdminIntegrity(k, init)
		if rerr != nil {
			k.Exit(shell)
			return nil, rerr
		}
		err := k.MkdirLabeled(init, home, 0o755, difc.Labels{})
		restore()
		if err != nil {
			k.Exit(shell)
			return nil, err
		}
	}
	if err := k.Chdir(shell, home); err != nil {
		k.Exit(shell)
		return nil, err
	}
	return shell, nil
}

func ensureCapsDir(k *kernel.Kernel, admin *kernel.Task) error {
	if _, err := k.Stat(admin, capsDir); err == kernel.ErrNoEnt {
		return k.Mkdir(admin, capsDir, 0o700)
	} else if err != nil {
		return err
	}
	return nil
}
