package lsm

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/kernel"
)

func TestSocketSilentDropOnTaint(t *testing.T) {
	k, m, user := boot(t)
	a, b, err2 := func() (kernel.FD, kernel.FD, error) { return k.Socketpair(user) }()
	if err2 != nil {
		t.Fatal(err2)
	}
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	// Tainted send on an unlabeled socket: silently dropped.
	if n, err := k.Send(user, a, []byte("secret")); err != nil || n != 6 {
		t.Fatalf("send = %d, %v (must appear to succeed)", n, err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Recv(user, b, make([]byte, 8)); !errors.Is(err, kernel.ErrAgain) {
		t.Errorf("recv after dropped send = %v, want EAGAIN", err)
	}
}

func TestSocketLabeledConnection(t *testing.T) {
	// A socket created by a tainted task carries the taint: equally
	// tainted peers communicate; an untainted reader is rejected.
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	a, b, err := k.Socketpair(user)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Send(user, a, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := k.Recv(user, b, buf); err != nil || n != 1 {
		t.Fatalf("tainted recv = %d, %v", n, err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Recv(user, b, buf); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("untainted recv on tainted socket = %v, want EACCES", err)
	}
}

func TestTaintedTaskCannotAdvertiseListener(t *testing.T) {
	// A listener name is written into a shared namespace; a tainted task
	// advertising one would leak through the name (the unsecured-network
	// scenario from the paper's examples).
	k, m, user := boot(t)
	tag, _ := k.AllocTag(user)
	taint(t, k, m, user, difc.NewLabel(tag))
	if err := k.Listen(user, "covert"); !errors.Is(err, kernel.ErrAccess) {
		t.Errorf("tainted listen = %v, want EACCES", err)
	}
	if err := k.SetTaskLabel(user, kernel.Secrecy, difc.EmptyLabel); err != nil {
		t.Fatal(err)
	}
	if err := k.Listen(user, "public"); err != nil {
		t.Errorf("untainted listen = %v", err)
	}
}
