package kernel

import "sync"

// Sockets. The Laminar OS "governs information flows through all standard
// OS interfaces, including through devices, files, pipes and sockets"
// (§4.1). The simulated kernel models two socket shapes:
//
//   - Socketpair: a connected bidirectional pair (AF_UNIX style), used by
//     the case studies for peer communication. Like pipes, sends that the
//     security module rejects are silently dropped and reads are
//     non-blocking, so delivery status cannot leak information.
//
//   - Listener/Connect: a named rendezvous in an in-kernel namespace so
//     unrelated processes can connect (the "unsecured network channel" of
//     the paper's examples is a socket to an unlabeled peer).
//
// A socket is a pair of pipe-like inodes, one per direction; each File
// wraps the appropriate (read, write) ends, and the existing pipe label
// semantics apply per direction.

// socketFile tracks the two directions of one socket endpoint.
type socketFile struct {
	readBuf  *pipeBuf
	writeBuf *pipeBuf
}

// workSocket mirrors pipe costs; connection setup costs more.
const (
	workSocketIO    = workPipeIO
	workSocketSetup = 2000
)

// Socketpair creates a connected pair of sockets for task t, returning
// two descriptors. The socket inode takes the creating task's labels via
// InodeInitSecurity, like a pipe.
func (k *Kernel) Socketpair(t *Task) (FD, FD, error) {
	defer k.begin(t)()
	charge(workSocketSetup)
	a, b, err := k.newSocketPair(t)
	if err != nil {
		return -1, -1, err
	}
	return t.installFD(a), t.installFD(b), nil
}

func (k *Kernel) newSocketPair(t *Task) (*File, *File, error) {
	ino := newInode(TypePipe, 0o600) // label carrier for the connection
	if k.sec != nil {
		k.hook()
		if err := k.sec.InodeInitSecurity(t, nil, ino, nil); err != nil {
			return nil, nil, err
		}
	}
	ab := newPipeBuf()
	ba := newPipeBuf()
	a := &File{Inode: ino, Flags: ORead | OWrite, sock: &socketFile{readBuf: ba, writeBuf: ab}}
	b := &File{Inode: ino, Flags: ORead | OWrite, sock: &socketFile{readBuf: ab, writeBuf: ba}}
	return a, b, nil
}

// Send writes data to a socket endpoint. Illegal flows and full buffers
// drop silently, exactly like pipe writes (§5.2).
func (k *Kernel) Send(t *Task, fd FD, data []byte) (int, error) {
	defer k.begin(t)()
	charge(workSocketIO)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if f.sock == nil {
		return 0, ErrInval
	}
	defer k.lockFile(f)()
	delivered := true
	if k.sec != nil {
		k.hook()
		if err := k.sec.FilePermission(t, f, MayWrite); err != nil {
			delivered = false
		}
	}
	// Injected send faults ride the same silent-drop path as policy drops
	// and full buffers: success is reported either way (§5.2).
	if err := k.inject("socket.send", t); err != nil {
		if errIsKilled(err) {
			return 0, err
		}
		delivered = false
	}
	if delivered {
		// The connection inode's lock covers both direction buffers.
		unlock := k.lockInode(f.Inode)
		f.sock.writeBuf.write(data)
		unlock()
	}
	return len(data), nil
}

// Recv reads from a socket endpoint; empty buffers return EAGAIN.
func (k *Kernel) Recv(t *Task, fd FD, buf []byte) (int, error) {
	defer k.begin(t)()
	charge(workSocketIO)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if f.sock == nil {
		return 0, ErrInval
	}
	defer k.lockFile(f)()
	if k.sec != nil {
		k.hook()
		if err := k.sec.FilePermission(t, f, MayRead); err != nil {
			return 0, err
		}
	}
	// A faulted receive looks like an empty buffer, never a distinct error.
	if err := k.inject("socket.recv", t); err != nil {
		if errIsKilled(err) {
			return 0, err
		}
		return 0, ErrAgain
	}
	unlock := k.lockInode(f.Inode)
	n := f.sock.readBuf.read(buf)
	unlock()
	if n == 0 {
		return 0, ErrAgain
	}
	return n, nil
}

// Listen registers a named listener owned by t. The name lives in a flat
// in-kernel namespace; creating a listener is writing that namespace, so
// a tainted task cannot advertise a name (the name would leak), mirroring
// the labeled-file-creation rule.
func (k *Kernel) Listen(t *Task, name string) error {
	defer k.begin(t)()
	charge(workSocketSetup)
	if err := k.inject("socket.listen", t); err != nil {
		return err
	}
	// lmu is held across dup-check → hook → insert so the whole
	// advertise step is atomic and ErrExist keeps priority over a policy
	// denial, exactly as under the big lock. The hook only reads label
	// blobs, so no lock-order edge is created.
	k.lmu.Lock()
	defer k.lmu.Unlock()
	if k.listeners == nil {
		k.listeners = make(map[string]*listener)
	}
	if _, dup := k.listeners[name]; dup {
		return ErrExist
	}
	if k.sec != nil {
		k.hook()
		// The namespace is an unlabeled shared resource: advertising a
		// name is a write to it, so a tainted task cannot leak through
		// listener names.
		if err := k.sec.InodePermission(t, k.socketNS, MayWrite); err != nil {
			return err
		}
	}
	k.listeners[name] = &listener{owner: t}
	return nil
}

// listener is a pending-connection queue. Listeners are never removed
// from the namespace, so a pointer obtained under lmu stays valid; mu
// guards the pending queue.
type listener struct {
	owner   *Task
	mu      sync.Mutex
	pending []*File // accept-side endpoints awaiting Accept
}

// Connect creates a connection to the named listener and returns the
// client endpoint. The connection inode takes the connecting task's
// labels; whether the listener can use it is decided by the per-operation
// checks on its side.
func (k *Kernel) Connect(t *Task, name string) (FD, error) {
	defer k.begin(t)()
	charge(workSocketSetup)
	if err := k.inject("socket.connect", t); err != nil {
		return -1, err
	}
	k.lmu.Lock()
	l, ok := k.listeners[name]
	k.lmu.Unlock()
	if !ok {
		return -1, ErrNoEnt
	}
	client, server, err := k.newSocketPair(t)
	if err != nil {
		return -1, err
	}
	l.mu.Lock()
	l.pending = append(l.pending, server)
	l.mu.Unlock()
	return t.installFD(client), nil
}

// Accept dequeues a pending connection on the named listener; EAGAIN when
// none is waiting. Only the listener's owner may accept.
func (k *Kernel) Accept(t *Task, name string) (FD, error) {
	defer k.begin(t)()
	charge(workSocketSetup)
	if err := k.inject("socket.accept", t); err != nil {
		return -1, err
	}
	k.lmu.Lock()
	l, ok := k.listeners[name]
	k.lmu.Unlock()
	if !ok {
		return -1, ErrNoEnt
	}
	if l.owner != t {
		return -1, ErrPerm
	}
	l.mu.Lock()
	var server *File
	if len(l.pending) > 0 {
		server = l.pending[0]
		l.pending = l.pending[1:]
	}
	l.mu.Unlock()
	if server == nil {
		return -1, ErrAgain
	}
	return t.installFD(server), nil
}
