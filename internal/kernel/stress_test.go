package kernel

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// stressSeed makes the stress schedule reproducible: each worker derives
// its operation jitter from this seed, and a failing run logs it.
var stressSeed = flag.Int64("stress.seed", 1, "seed for stress-test operation jitter")

// TestConcurrentSyscallStress drives the kernel from many goroutines at
// once — file churn, pipe traffic, forks, signals — to shake out data
// races under `go test -race`.
func TestConcurrentSyscallStress(t *testing.T) {
	k, init := bare(t)
	const workers = 8
	const iters = 100
	seed := *stressSeed
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("stress seed: %d (rerun with -stress.seed=%d)", seed, seed)
		}
	})

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker deterministic jitter: yield points vary with the
			// seed, shaking out different interleavings reproducibly.
			rng := rand.New(rand.NewSource(seed + int64(w)))
			task, err := k.Fork(init, nil)
			if err != nil {
				errCh <- err
				return
			}
			if err := k.Chdir(task, "/tmp"); err != nil {
				errCh <- err
				return
			}
			r, wr, err := k.Pipe(task)
			if err != nil {
				errCh <- err
				return
			}
			buf := make([]byte, 16)
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				fd, err := k.Open(task, name, OCreate|OWrite|ORead)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := k.Write(task, fd, []byte(name)); err != nil {
					errCh <- err
					return
				}
				k.Seek(task, fd, 0)
				if _, err := k.Read(task, fd, buf); err != nil {
					errCh <- err
					return
				}
				k.Close(task, fd)
				if err := k.Unlink(task, name); err != nil {
					errCh <- err
					return
				}
				if _, err := k.Write(task, wr, []byte("m")); err != nil {
					errCh <- err
					return
				}
				if _, err := k.Read(task, r, buf[:1]); err != nil && !errors.Is(err, ErrAgain) {
					errCh <- err
					return
				}
				if rng.Intn(4) == 0 {
					runtime.Gosched()
				}
				child, err := k.Fork(task, nil)
				if err != nil {
					errCh <- err
					return
				}
				if err := k.Kill(task, child.TID, SIGUSR1); err != nil {
					errCh <- err
					return
				}
				k.SigPending(child)
				k.Exit(child)
				if _, err := k.Stat(task, "/etc"); err != nil {
					errCh <- err
					return
				}
			}
			k.Exit(task)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// /tmp drained back to empty.
	names, err := k.ReadDir(init, "/tmp")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("/tmp residue: %v", names)
	}
}
