package kernel

import (
	"errors"
	"testing"

	"laminar/internal/difc"
)

// bare returns a kernel without a security module — the unmodified-Linux
// baseline.
func bare(t *testing.T) (*Kernel, *Task) {
	t.Helper()
	k := New()
	return k, k.InitTask()
}

func TestBootTree(t *testing.T) {
	k, init := bare(t)
	for _, p := range []string{"/", "/etc", "/etc/laminar", "/home", "/tmp", "/dev"} {
		st, err := k.Stat(init, p)
		if err != nil {
			t.Fatalf("Stat(%s): %v", p, err)
		}
		if st.Type != TypeDir {
			t.Errorf("%s type = %v, want dir", p, st.Type)
		}
	}
	st, err := k.Stat(init, "/dev/null")
	if err != nil || st.Type != TypeDevNull {
		t.Errorf("/dev/null = %+v, %v", st, err)
	}
	st, err = k.Stat(init, "/dev/zero")
	if err != nil || st.Type != TypeDevZero {
		t.Errorf("/dev/zero = %+v, %v", st, err)
	}
}

func TestFileCreateWriteRead(t *testing.T) {
	k, init := bare(t)
	fd, err := k.Open(init, "/tmp/a", ORead|OWrite|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(init, fd, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := k.Seek(init, fd, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := k.Read(init, fd, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	// EOF.
	n, err = k.Read(init, fd, buf)
	if n != 0 || err != nil {
		t.Errorf("EOF read = %d, %v", n, err)
	}
	if err := k.Close(init, fd); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(init, fd, buf); !errors.Is(err, ErrBadF) {
		t.Errorf("read after close = %v, want EBADF", err)
	}
}

func TestOpenFlagsEnforced(t *testing.T) {
	k, init := bare(t)
	fd, err := k.Open(init, "/tmp/ro", ORead|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(init, fd, []byte("x")); !errors.Is(err, ErrBadF) {
		t.Errorf("write on read-only fd = %v", err)
	}
	wfd, err := k.Open(init, "/tmp/ro", OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(init, wfd, make([]byte, 1)); !errors.Is(err, ErrBadF) {
		t.Errorf("read on write-only fd = %v", err)
	}
}

func TestOpenTruncAndAppend(t *testing.T) {
	k, init := bare(t)
	fd, _ := k.Open(init, "/tmp/f", OWrite|OCreate)
	k.Write(init, fd, []byte("aaaa"))
	k.Close(init, fd)

	fd, _ = k.Open(init, "/tmp/f", OWrite|OAppend)
	k.Write(init, fd, []byte("bb"))
	k.Close(init, fd)
	st, _ := k.Stat(init, "/tmp/f")
	if st.Size != 6 {
		t.Errorf("append size = %d, want 6", st.Size)
	}

	fd, _ = k.Open(init, "/tmp/f", OWrite|OTrunc)
	k.Close(init, fd)
	st, _ = k.Stat(init, "/tmp/f")
	if st.Size != 0 {
		t.Errorf("trunc size = %d, want 0", st.Size)
	}
}

func TestPathResolution(t *testing.T) {
	k, init := bare(t)
	if err := k.Mkdir(init, "/tmp/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := k.Chdir(init, "/tmp/d"); err != nil {
		t.Fatal(err)
	}
	fd, err := k.Open(init, "rel", OCreate|OWrite)
	if err != nil {
		t.Fatal(err)
	}
	k.Close(init, fd)
	if _, err := k.Stat(init, "/tmp/d/rel"); err != nil {
		t.Errorf("relative create invisible at absolute path: %v", err)
	}
	if _, err := k.Stat(init, "../d/rel"); err != nil {
		t.Errorf("dotdot resolution: %v", err)
	}
	if _, err := k.Stat(init, "./rel"); err != nil {
		t.Errorf("dot resolution: %v", err)
	}
	if _, err := k.Stat(init, "rel/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("file as dir = %v, want ENOTDIR", err)
	}
	if _, err := k.Stat(init, "/nope/a"); !errors.Is(err, ErrNoEnt) {
		t.Errorf("missing dir = %v, want ENOENT", err)
	}
	if _, err := k.Stat(init, ""); !errors.Is(err, ErrNoEnt) {
		t.Errorf("empty path = %v, want ENOENT", err)
	}
}

func TestUnlink(t *testing.T) {
	k, init := bare(t)
	fd, _ := k.Open(init, "/tmp/x", OCreate|OWrite)
	k.Close(init, fd)
	if err := k.Unlink(init, "/tmp/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stat(init, "/tmp/x"); !errors.Is(err, ErrNoEnt) {
		t.Errorf("stat after unlink = %v", err)
	}
	if err := k.Unlink(init, "/tmp"); !errors.Is(err, ErrIsDir) {
		t.Errorf("unlink dir = %v, want EISDIR", err)
	}
}

func TestMkdirErrors(t *testing.T) {
	k, init := bare(t)
	if err := k.Mkdir(init, "/tmp", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir existing = %v", err)
	}
	if err := k.Mkdir(init, "/nope/d", 0o755); !errors.Is(err, ErrNoEnt) {
		t.Errorf("mkdir missing parent = %v", err)
	}
}

func TestReadDir(t *testing.T) {
	k, init := bare(t)
	k.Mkdir(init, "/tmp/dir", 0o755)
	for _, n := range []string{"b", "a", "c"} {
		fd, _ := k.Open(init, "/tmp/dir/"+n, OCreate|OWrite)
		k.Close(init, fd)
	}
	names, err := k.ReadDir(init, "/tmp/dir")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
	if _, err := k.ReadDir(init, "/dev/null"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file = %v", err)
	}
}

func TestDevices(t *testing.T) {
	k, init := bare(t)
	zfd, _ := k.Open(init, "/dev/zero", ORead)
	buf := []byte{1, 2, 3}
	n, err := k.Read(init, zfd, buf)
	if err != nil || n != 3 || buf[0] != 0 || buf[2] != 0 {
		t.Errorf("read /dev/zero = %v %v %v", n, buf, err)
	}
	nfd, _ := k.Open(init, "/dev/null", OWrite)
	n, err = k.Write(init, nfd, []byte("gone"))
	if err != nil || n != 4 {
		t.Errorf("write /dev/null = %v, %v", n, err)
	}
}

func TestPipeBasics(t *testing.T) {
	k, init := bare(t)
	r, w, err := k.Pipe(init)
	if err != nil {
		t.Fatal(err)
	}
	// Empty pipe: EAGAIN, never EOF.
	if _, err := k.Read(init, r, make([]byte, 4)); !errors.Is(err, ErrAgain) {
		t.Errorf("empty pipe read = %v, want EAGAIN", err)
	}
	if _, err := k.Write(init, w, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := k.Read(init, r, buf)
	if err != nil || string(buf[:n]) != "msg" {
		t.Errorf("pipe read = %q, %v", buf[:n], err)
	}
	// Wrong ends.
	if _, err := k.Write(init, r, []byte("x")); !errors.Is(err, ErrBadF) {
		t.Errorf("write to read end = %v", err)
	}
	if _, err := k.Read(init, w, buf); !errors.Is(err, ErrBadF) {
		t.Errorf("read from write end = %v", err)
	}
}

func TestPipeOverflowSilentDrop(t *testing.T) {
	k, init := bare(t)
	r, w, _ := k.Pipe(init)
	big := make([]byte, pipeCapacity)
	if n, err := k.Write(init, w, big); err != nil || n != len(big) {
		t.Fatalf("fill write = %d, %v", n, err)
	}
	// Overflowing write still reports success but delivers nothing.
	if n, err := k.Write(init, w, []byte("extra")); err != nil || n != 5 {
		t.Fatalf("overflow write = %d, %v (must report success)", n, err)
	}
	total := 0
	buf := make([]byte, 8192)
	for {
		n, err := k.Read(init, r, buf)
		if errors.Is(err, ErrAgain) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != pipeCapacity {
		t.Errorf("drained %d bytes, want %d (overflow must be dropped)", total, pipeCapacity)
	}
}

func TestForkAndExit(t *testing.T) {
	k, init := bare(t)
	child, err := k.Fork(init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent != init.TID || child.Proc != init.Proc {
		t.Errorf("child parent/proc = %v/%v", child.Parent, child.Proc)
	}
	if _, err := k.Task(child.TID); err != nil {
		t.Errorf("child not found: %v", err)
	}
	k.Exit(child)
	if _, err := k.Task(child.TID); !errors.Is(err, ErrSrch) {
		t.Errorf("exited child still visible: %v", err)
	}
	k.Exit(child) // double exit is a no-op
}

func TestSpawnNewProcess(t *testing.T) {
	k, init := bare(t)
	child, err := k.Spawn(init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if child.Proc == init.Proc {
		t.Error("Spawn should allocate a fresh process id")
	}
}

func TestExec(t *testing.T) {
	k, init := bare(t)
	fd, _ := k.Open(init, "/tmp/prog", OCreate|OWrite)
	k.Write(init, fd, []byte("#!bin"))
	k.Close(init, fd)
	if _, err := k.Mmap(init, 100, ProtRead, -1); err != nil {
		t.Fatal(err)
	}
	if err := k.Exec(init, "/tmp/prog"); err != nil {
		t.Fatal(err)
	}
	if len(init.vmas) != 0 {
		t.Error("exec should drop mappings")
	}
	if err := k.Exec(init, "/tmp"); !errors.Is(err, ErrIsDir) {
		t.Errorf("exec dir = %v", err)
	}
	if err := k.Exec(init, "/tmp/none"); !errors.Is(err, ErrNoEnt) {
		t.Errorf("exec missing = %v", err)
	}
}

func TestSignals(t *testing.T) {
	k, init := bare(t)
	child, _ := k.Fork(init, nil)
	if err := k.Kill(init, child.TID, SIGUSR1); err != nil {
		t.Fatal(err)
	}
	sigs := k.SigPending(child)
	if len(sigs) != 1 || sigs[0] != SIGUSR1 {
		t.Errorf("pending = %v", sigs)
	}
	if len(k.SigPending(child)) != 0 {
		t.Error("SigPending should drain")
	}
	if err := k.Kill(init, TID(9999), SIGKILL); !errors.Is(err, ErrSrch) {
		t.Errorf("kill missing task = %v", err)
	}
}

func TestMmapProtFault(t *testing.T) {
	k, init := bare(t)
	addr, err := k.Mmap(init, 3*PageSize, ProtRead|ProtWrite, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.PageFault(init, addr+PageSize, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Mprotect(init, addr, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := k.PageFault(init, addr, true); !errors.Is(err, ErrFault) {
		t.Errorf("write fault on RO mapping = %v, want EFAULT", err)
	}
	if err := k.PageFault(init, addr, false); err != nil {
		t.Errorf("read fault on RO mapping = %v", err)
	}
	if err := k.Munmap(init, addr); err != nil {
		t.Fatal(err)
	}
	if err := k.PageFault(init, addr, false); !errors.Is(err, ErrFault) {
		t.Errorf("fault on unmapped = %v", err)
	}
	if err := k.Munmap(init, addr); !errors.Is(err, ErrInval) {
		t.Errorf("double munmap = %v", err)
	}
	if _, err := k.Mmap(init, 0, ProtRead, -1); !errors.Is(err, ErrInval) {
		t.Errorf("zero-length mmap = %v", err)
	}
}

func TestLabelSyscallsWithoutModule(t *testing.T) {
	k, init := bare(t)
	if _, err := k.AllocTag(init); !errors.Is(err, ErrNoSys) {
		t.Errorf("AllocTag = %v, want ENOSYS", err)
	}
	if err := k.SetTaskLabel(init, Secrecy, difc.EmptyLabel); !errors.Is(err, ErrNoSys) {
		t.Errorf("SetTaskLabel = %v", err)
	}
	if err := k.DropCapabilities(init, nil, false); !errors.Is(err, ErrNoSys) {
		t.Errorf("DropCapabilities = %v", err)
	}
}

func TestDupTo(t *testing.T) {
	k, init := bare(t)
	child, _ := k.Fork(init, nil)
	r, w, _ := k.Pipe(init)
	rc, err := k.DupTo(init, r, child)
	if err != nil {
		t.Fatal(err)
	}
	k.Write(init, w, []byte("hi"))
	buf := make([]byte, 4)
	n, err := k.Read(child, rc, buf)
	if err != nil || string(buf[:n]) != "hi" {
		t.Errorf("dup'd read = %q, %v", buf[:n], err)
	}
}

func TestHookCallsZeroWithoutModule(t *testing.T) {
	k, init := bare(t)
	k.Stat(init, "/etc")
	fd, _ := k.Open(init, "/tmp/h", OCreate|OWrite)
	k.Write(init, fd, []byte("x"))
	if k.HookCalls() != 0 {
		t.Errorf("hook calls without module = %d", k.HookCalls())
	}
	if k.String() != "kernel{lsm=none,lock=sharded}" {
		t.Errorf("String = %q", k.String())
	}
}
