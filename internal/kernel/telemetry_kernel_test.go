package kernel

import (
	"errors"
	"testing"

	"laminar/internal/difc"
	"laminar/internal/faultinject"
	"laminar/internal/telemetry"
)

// siteInjector injects a scripted fault kind at exactly one site.
type siteInjector struct {
	site string
	kind faultinject.Kind
}

func (s *siteInjector) At(site string) faultinject.Kind {
	if site == s.site {
		return s.kind
	}
	return faultinject.None
}

// TestWithoutTelemetryBoot: the uninstrumented baseline really installs
// no wrapper — Telemetry() is nil and syscalls run unobserved.
func TestWithoutTelemetryBoot(t *testing.T) {
	k := New(WithSecurityModule(tagModule{}), WithoutTelemetry())
	if k.Telemetry() != nil {
		t.Fatal("WithoutTelemetry kernel still exposes a recorder")
	}
	init := k.InitTask()
	fd, err := k.CreateFileLabeled(init, "/tmp/plain", 0o644, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	k.Close(init, fd)
}

// TestTelemetryDefaultRecorder: booting with a module but no explicit
// recorder wires the hooks to telemetry.Default (off by default).
func TestTelemetryDefaultRecorder(t *testing.T) {
	k := New(WithSecurityModule(tagModule{}))
	if k.Telemetry() != telemetry.Default {
		t.Fatal("no-option boot did not fall back to telemetry.Default")
	}
}

// TestTelemetryMmapPath drives mmap + page faults through the wrapper at
// LevelAll: the MmapFile hook must be observed on both the mmap syscall
// and the file-backed fault path.
func TestTelemetryMmapPath(t *testing.T) {
	rec := telemetry.NewRecorder()
	rec.SetLevel(telemetry.LevelAll)
	k := New(WithSecurityModule(tagModule{}), WithTelemetry(rec))
	init := k.InitTask()

	fd, err := k.CreateFileLabeled(init, "/tmp/map", 0o644, difc.Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(init, fd, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	addr, err := k.Mmap(init, PageSize, ProtRead, fd)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.PageFault(init, addr, false); err != nil {
		t.Fatal(err)
	}
	k.Close(init, fd)

	var mmaps int
	for _, e := range rec.Snapshot() {
		if e.Site == "hook.MmapFile" && e.Kind == telemetry.KindAllow {
			mmaps++
		}
	}
	if mmaps < 2 {
		t.Fatalf("want MmapFile observed at mmap and fault time, got %d events", mmaps)
	}
}

// TestMaskOp pins the mask→operation naming the provenance records use.
func TestMaskOp(t *testing.T) {
	cases := []struct {
		mask AccessMask
		want string
	}{
		{MayRead, "read"},
		{MayWrite, "write"},
		{MayExec, "exec"},
		{MayUnlink, "unlink"},
		{MayRead | MayExec, "read|exec"},
		{MayRead | MayWrite, "read|write"},
		{MayWrite | MayExec, "access"},
	}
	for _, c := range cases {
		if got := maskOp(c.mask); got != c.want {
			t.Errorf("maskOp(%v) = %q, want %q", c.mask, got, c.want)
		}
	}
}

// TestFaultableHooks covers the fault-injection wrappers for the hooks the
// chaos schedules rarely reach: mmap, signal delivery, and capability
// transfer. Each is driven twice — once with an injected Error (must fail
// closed with ErrIO and be classified RuleFault by telemetry) and once
// clean (must pass through to the module).
func TestFaultableHooks(t *testing.T) {
	for _, hook := range []string{"MmapFile", "TaskKill", "WriteCapability", "ReadCapability"} {
		t.Run(hook, func(t *testing.T) {
			for _, faulty := range []bool{true, false} {
				inj := &siteInjector{}
				if faulty {
					inj = &siteInjector{site: "hook." + hook, kind: faultinject.Error}
				}
				rec := telemetry.NewRecorder()
				rec.SetLevel(telemetry.LevelDeny)
				k := New(WithSecurityModule(tagModule{}), WithFaultInjector(inj), WithTelemetry(rec))
				init := k.InitTask()
				child, err := k.Fork(init, nil)
				if err != nil {
					t.Fatal(err)
				}
				fd, err := k.CreateFileLabeled(init, "/tmp/f", 0o644, difc.Labels{})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := k.Write(init, fd, []byte("x")); err != nil {
					t.Fatal(err)
				}
				rp, wp, err := k.Pipe(init)
				if err != nil {
					t.Fatal(err)
				}

				var got error
				switch hook {
				case "MmapFile":
					_, got = k.Mmap(init, PageSize, ProtRead, fd)
				case "TaskKill":
					got = k.Kill(init, child.TID, SIGUSR1)
				case "WriteCapability":
					got = k.WriteCapability(init, Capability{}, wp)
				case "ReadCapability":
					_, got = k.ReadCapability(init, rp)
				}

				if faulty {
					if !errors.Is(got, ErrIO) {
						t.Fatalf("injected fault in %s returned %v, want ErrIO", hook, got)
					}
					denials := rec.Denials()
					if len(denials) == 0 || denials[len(denials)-1].Rule != telemetry.RuleFault {
						t.Fatalf("fault in %s not recorded as RuleFault: %v", hook, denials)
					}
				} else {
					// tagModule allows everything except ReadCapability,
					// which reports ENOSYS from the module itself.
					if hook == "ReadCapability" {
						if !errors.Is(got, ErrNoSys) {
							t.Fatalf("clean %s returned %v, want ErrNoSys", hook, got)
						}
					} else if got != nil {
						t.Fatalf("clean %s returned %v", hook, got)
					}
				}
			}
		})
	}
}
