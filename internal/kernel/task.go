package kernel

import (
	"sync"
	"sync/atomic"
)

// TID identifies a kernel task (thread). Threads are the principals of the
// Laminar DIFC model (§3).
type TID uint64

// Signal is a minimal signal number type for the kill syscall.
type Signal int

// Common signals used by the tests and case studies.
const (
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
)

// FD is a per-task file descriptor index.
type FD int

// Task is the simulated task_struct. A Task is the unit of principal
// identity: its labels and capabilities live in the LSM-managed Security
// blob. Tasks map 1:1 to the runtime threads of the Laminar VM, and a
// multithreaded process without a trusted VM must keep all of its tasks at
// identical labels (enforced by the VM layer, not here — the kernel treats
// every task independently, as Linux does).
type Task struct {
	TID    TID
	Parent TID
	// Proc groups tasks into a simulated process (address space). Forked
	// children inherit it; the drop_label_tcb syscall only works within
	// one process, so a trusted VM cannot drop labels on other
	// applications (§4.4).
	Proc uint64
	User string
	Cwd  *Inode

	// Security is the LSM security blob (labels + capabilities in the
	// Laminar module). Opaque to the kernel.
	Security any

	// labelEpoch counts every mutation of the task's security state
	// (labels or capabilities). The security module bumps it on each
	// change; verdict caches key memoized decisions to the epoch pair
	// they were derived under, so a bump invalidates every cached
	// verdict involving this task without touching the caches.
	labelEpoch atomic.Uint64

	// mu is the task's syscall-entry lock under the sharded discipline:
	// held for the duration of every syscall the task issues, it guards
	// all mutable per-task state below plus Cwd and the Security blob
	// (see locking.go for the full ordering).
	mu sync.Mutex

	k       *Kernel
	fds     map[FD]*File
	nextFD  FD
	exited  atomic.Bool
	sigs    []Signal
	vmas    []vma
	nextMap uint64
}

// vma is a fake virtual memory area for the mmap/prot-fault
// microbenchmarks. Pages are 4 KiB; prot faults flip a per-page present
// bit, which is enough to charge the simulated fault path.
type vma struct {
	addr    uint64
	length  int
	prot    int
	present []bool
	file    *Inode // non-nil for file-backed mappings
}

// Page protection bits for Mmap/Mprotect.
const (
	ProtRead = 1 << iota
	ProtWrite
	ProtExec
)

// PageSize is the simulated page size.
const PageSize = 4096

// File is the simulated struct file: an open file description with a
// position and its own LSM security blob (Laminar checks flows on every
// file-descriptor operation, §2, so the blob mostly caches the inode
// reference).
type File struct {
	Inode *Inode
	Flags OpenFlag

	// mu guards offset and the lazily attached Security blob. A File can
	// be shared across tasks (DupTo models fd passing), so per-task locks
	// do not cover it.
	mu     sync.Mutex
	offset int

	// Security is the LSM blob attached at open time.
	Security any

	// pipe end bookkeeping: a pipe FD is either the read or write end.
	pipeReadEnd bool

	// sock is non-nil for socket endpoints (bidirectional pipe pair).
	sock *socketFile
}

// OpenFlag is the open(2) flag set understood by the simulated kernel.
type OpenFlag uint32

// Open flags.
const (
	ORead OpenFlag = 1 << iota
	OWrite
	OCreate
	OTrunc
	OAppend
)

// Exited reports whether the task has exited.
func (t *Task) Exited() bool { return t.exited.Load() }

// LabelEpoch returns the task's security-state mutation counter.
func (t *Task) LabelEpoch() uint64 { return t.labelEpoch.Load() }

// BumpLabelEpoch advances the mutation counter. The security module
// calls it on every label or capability change; monotonicity is what
// makes epoch-keyed verdict caching sound (a verdict derived under an
// older epoch can never be confused with the current state).
func (t *Task) BumpLabelEpoch() { t.labelEpoch.Add(1) }

// Kernel returns the kernel this task belongs to.
func (t *Task) Kernel() *Kernel { return t.k }

func (t *Task) file(fd FD) (*File, error) {
	f, ok := t.fds[fd]
	if !ok {
		return nil, ErrBadF
	}
	return f, nil
}

func (t *Task) installFD(f *File) FD {
	fd := t.nextFD
	t.nextFD++
	t.fds[fd] = f
	return fd
}
