package faultinject

import "testing"

// TestDeterministicSchedule verifies the core reproducibility contract:
// the same seed and site sequence produce an identical schedule.
func TestDeterministicSchedule(t *testing.T) {
	sites := []string{"fs.open", "fs.write", "pipe.write", "persist.commit", "fs.read"}
	run := func() string {
		p := NewPlan(42)
		p.Record()
		p.SetDefaultRates(Rates{Error: 0.2, Crash: 0.1, Delay: 0.1})
		for i := 0; i < 200; i++ {
			p.At(sites[i%len(sites)])
		}
		return p.Schedule()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("schedules differ:\n%s\n---\n%s", a, b)
	}
	if a == "seed=42\n" {
		t.Fatal("no faults drawn at 40% total rate over 200 steps")
	}
}

// TestSeedsDiffer: distinct seeds give distinct schedules (overwhelmingly).
func TestSeedsDiffer(t *testing.T) {
	run := func(seed int64) string {
		p := NewPlan(seed)
		p.Record()
		p.SetDefaultRates(Rates{Error: 0.3})
		for i := 0; i < 100; i++ {
			p.At("s")
		}
		return p.Schedule()
	}
	if run(1) == run(2) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestPrefixRates: the longest matching prefix wins; unmatched sites use
// the defaults.
func TestPrefixRates(t *testing.T) {
	p := NewPlan(7)
	p.SetDefaultRates(Rates{})              // nothing by default
	p.SetRates("persist.", Rates{Error: 1}) // always fault persistence
	p.SetRates("persist.clear", Rates{})    // except the clear step
	for i := 0; i < 20; i++ {
		if got := p.At("fs.open"); got != None {
			t.Fatalf("fs.open fault = %v, want none", got)
		}
		if got := p.At("persist.commit"); got != Error {
			t.Fatalf("persist.commit fault = %v, want error", got)
		}
		if got := p.At("persist.clear"); got != None {
			t.Fatalf("persist.clear fault = %v, want none", got)
		}
	}
}

// TestZeroRatesDrawNothing: a plan with zero rates never faults, and the
// rate classes are respected in aggregate.
func TestRateClasses(t *testing.T) {
	p := NewPlan(99)
	p.SetDefaultRates(Rates{Error: 0.5, Crash: 0.5})
	var errs, crashes, nones int
	for i := 0; i < 1000; i++ {
		switch p.At("x") {
		case Error:
			errs++
		case Crash:
			crashes++
		case None:
			nones++
		}
	}
	if nones != 0 {
		t.Errorf("rates sum to 1 but %d draws were none", nones)
	}
	if errs == 0 || crashes == 0 {
		t.Errorf("class starvation: errs=%d crashes=%d", errs, crashes)
	}
}

// TestSubStreamIndependence: drawing from a child stream does not perturb
// the parent's step sequence.
func TestSubStreamIndependence(t *testing.T) {
	run := func(useSub bool) string {
		p := NewPlan(5)
		p.Record()
		p.SetDefaultRates(Rates{Error: 0.4})
		for i := 0; i < 50; i++ {
			p.At("a")
			if useSub {
				sub := p.Sub("worker")
				for j := 0; j < 10; j++ {
					sub.At("b")
				}
			}
		}
		return p.Schedule()
	}
	if run(false) != run(true) {
		t.Fatal("child stream perturbed the parent schedule")
	}
}
