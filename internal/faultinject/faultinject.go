// Package faultinject is a deterministic, seed-driven fault-injection
// plan for the simulated kernel and runtime. Every injection point in the
// syscall layer, the LSM hook table, the label-persistence path and the
// transport consults a Plan; the Plan answers with a fault kind computed
// as a pure function of (seed, step), so re-running a seed reproduces the
// same fault schedule byte-for-byte regardless of goroutine interleaving.
//
// The fault model (DESIGN.md §8):
//
//   - Error: the operation fails. Enforcement paths treat an injected
//     error exactly like a policy denial (fail closed); data paths abort
//     with EIO, possibly after a torn (partial) write.
//   - Crash: the acting task is killed mid-operation, with no error
//     cleanup — whatever partial state the operation had written stays,
//     modeling a machine crash for the recovery pass to repair.
//   - Delay: the operation is delayed (a scheduling hiccup); semantics
//     are unchanged. Under the simulated kernel this is a yield, which is
//     enough to shake out ordering assumptions under -race.
package faultinject

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Kind is the class of fault injected at a point.
type Kind uint8

// Fault kinds.
const (
	None Kind = iota
	Error
	Crash
	Delay
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	default:
		return "unknown"
	}
}

// Injector is the interface injection points consult. A nil Injector (the
// production configuration) injects nothing.
type Injector interface {
	// At reports the fault to inject at the named site. Site names are
	// dotted paths ("fs.write", "persist.commit", "hook.InodePermission");
	// rates may be configured per site prefix.
	At(site string) Kind
}

// Rates configures per-class fault probabilities in [0,1]. The classes
// are disjoint: a draw lands in at most one.
type Rates struct {
	Error float64
	Crash float64
	Delay float64
}

// Decision records one injection-point consultation.
type Decision struct {
	Step uint64
	Site string
	Kind Kind
}

// Plan is a deterministic fault schedule. The decision at step n depends
// only on the seed, n, and the rates configured for the site's longest
// matching prefix — never on wall-clock time or interleaving — so a
// failing seed replays the identical schedule.
type Plan struct {
	seed int64

	mu       sync.Mutex
	step     uint64
	defaults Rates
	rates    map[string]Rates // site prefix -> rates
	record   bool
	log      []Decision
}

// NewPlan builds a plan for seed with zero default rates (no faults until
// rates are configured).
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, rates: make(map[string]Rates)}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// SetDefaultRates sets the rates used by sites with no matching prefix.
func (p *Plan) SetDefaultRates(r Rates) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defaults = r
}

// SetRates configures rates for every site whose name starts with prefix.
// The longest configured prefix wins; an exact site name is the longest
// possible prefix.
func (p *Plan) SetRates(prefix string, r Rates) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rates[prefix] = r
}

// Record enables decision logging (Decisions / Schedule).
func (p *Plan) Record() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.record = true
}

// At implements Injector: draws the next step and decides.
func (p *Plan) At(site string) Kind {
	p.mu.Lock()
	step := p.step
	p.step++
	r := p.defaults
	best := -1
	for prefix, pr := range p.rates {
		if strings.HasPrefix(site, prefix) && len(prefix) > best {
			best = len(prefix)
			r = pr
		}
	}
	k := decide(p.seed, step, r)
	if p.record && k != None {
		p.log = append(p.log, Decision{Step: step, Site: site, Kind: k})
	}
	p.mu.Unlock()
	if k == Delay {
		// A delay is a scheduling hiccup: yield so another goroutine can
		// interleave. Semantics are otherwise unchanged.
		runtime.Gosched()
	}
	return k
}

// Steps reports how many injection points have been consulted.
func (p *Plan) Steps() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.step
}

// Decisions returns the recorded non-None decisions in consultation order.
func (p *Plan) Decisions() []Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Decision, len(p.log))
	copy(out, p.log)
	return out
}

// Schedule formats the recorded fault schedule, one decision per line.
// For a given seed and a deterministic (single-goroutine) workload the
// output is byte-for-byte stable across runs.
func (p *Plan) Schedule() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", p.seed)
	for _, d := range p.Decisions() {
		fmt.Fprintf(&b, "step=%d site=%s fault=%s\n", d.Step, d.Site, d.Kind)
	}
	return b.String()
}

// decide is the pure decision function: splitmix64 of (seed, step) mapped
// to [0,1) and compared against the cumulative class rates.
func decide(seed int64, step uint64, r Rates) Kind {
	if r.Error == 0 && r.Crash == 0 && r.Delay == 0 {
		return None
	}
	u := float64(splitmix64(uint64(seed)^splitmix64(step))>>11) / float64(1<<53)
	switch {
	case u < r.Error:
		return Error
	case u < r.Error+r.Crash:
		return Crash
	case u < r.Error+r.Crash+r.Delay:
		return Delay
	default:
		return None
	}
}

// splitmix64 is the standard 64-bit finalizer (Vigna); a full-avalanche
// hash, so consecutive steps decorrelate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sub derives a child plan from the parent's seed and a stream label, so
// a concurrent phase can draw from its own stream without perturbing the
// parent's step sequence (which would break byte-for-byte replay of the
// sequential portion).
func (p *Plan) Sub(label string) *Plan {
	h := splitmix64(uint64(p.seed))
	for _, c := range []byte(label) {
		h = splitmix64(h ^ uint64(c))
	}
	child := NewPlan(int64(h))
	p.mu.Lock()
	child.defaults = p.defaults
	for k, v := range p.rates {
		child.rates[k] = v
	}
	p.mu.Unlock()
	return child
}
