// Package battleship is the second Laminar case study (§7.2), modeled on
// JavaBattle: each player allocates a secrecy tag, labels her board and
// ship placement with it, and never shares the declassification
// capability. A shot is sent to the opponent as plain coordinates; the
// opponent updates his own board inside a security region and declassifies
// only the hit/miss bit — the single bit of information the game reveals
// per round. The two boards live in one address space with different
// labels, the heterogeneous-labeling pattern impossible for
// process-granularity DIFC systems (§7.5).
package battleship

import (
	"fmt"
	"math/rand"

	"laminar"
	"laminar/internal/rt"
	"laminar/internal/simwork"
)

// shotExchangeWork models the per-shot message encode/send/decode and
// display update the real game performs, identical in both variants.
const shotExchangeWork = 1500

// Cell states in a board array.
const (
	cellEmpty = 0
	cellShip  = 1
	cellHit   = 2
	cellMiss  = 3
)

// GridSize matches the paper's experiment: a 15×15 grid.
const GridSize = 15

// Ships placed per player (length × count roughly like the classic game).
var shipLengths = []int{5, 4, 3, 3, 2}

// Player owns a labeled board.
type Player struct {
	name   string
	thread *laminar.Thread
	tag    laminar.Tag
	board  *laminar.Object // labeled {S(tag)}, GridSize² cells
	cells  int             // remaining un-hit ship cells

	// labels and caps are built once — labels are immutable, so the
	// per-shot region entry reuses them (as a real program would).
	labels laminar.Labels
	caps   laminar.CapSet
	empty  laminar.Labels
}

// Name returns the player's name.
func (p *Player) Name() string { return p.name }

// ShipCellsLeft reports remaining ship cells (host-side counter maintained
// from declassified hits only — no labeled state escapes).
func (p *Player) ShipCellsLeft() int { return p.cells }

// VMStats exposes the runtime's dynamic-check counters for the evaluation
// harness.
func (p *Player) VMStats() *rt.Stats { return p.thread.VM().Stats() }

// Thread returns the player's principal thread (used by security probes).
func (p *Player) Thread() *laminar.Thread { return p.thread }

// NewPlayer creates a player with a private tag and a labeled board with
// ships placed by the seeded rng.
func NewPlayer(vm *laminar.VM, parent *laminar.Thread, name string, rng *rand.Rand) (*Player, error) {
	th, err := parent.Fork([]laminar.Capability{}) // no inherited caps
	if err != nil {
		return nil, err
	}
	tag, err := th.CreateTag()
	if err != nil {
		return nil, err
	}
	p := &Player{name: name, thread: th, tag: tag}
	p.labels = laminar.Labels{S: laminar.NewLabel(tag)}
	p.caps = laminar.NewCapSet(laminar.EmptyLabel, laminar.NewLabel(tag))
	labels := p.labels
	placed := 0
	err = th.Secure(labels, laminar.EmptyCapSet, func(r *laminar.Region) {
		p.board = r.AllocArray(GridSize*GridSize, nil)
		for i := 0; i < GridSize*GridSize; i++ {
			r.SetIndex(p.board, i, cellEmpty)
		}
		for _, length := range shipLengths {
			placed += placeShip(r, p.board, rng, length)
		}
	}, nil)
	if err != nil {
		return nil, err
	}
	p.cells = placed
	return p, nil
}

// placeShip drops one ship of the given length at a random position and
// orientation, retrying on collision; returns cells occupied.
func placeShip(r *laminar.Region, board *laminar.Object, rng *rand.Rand, length int) int {
	for {
		horizontal := rng.Intn(2) == 0
		x, y := rng.Intn(GridSize), rng.Intn(GridSize)
		dx, dy := 1, 0
		if !horizontal {
			dx, dy = 0, 1
		}
		if x+dx*(length-1) >= GridSize || y+dy*(length-1) >= GridSize {
			continue
		}
		ok := true
		for k := 0; k < length; k++ {
			if r.Index(board, (y+dy*k)*GridSize+(x+dx*k)).(int) != cellEmpty {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k := 0; k < length; k++ {
			r.SetIndex(board, (y+dy*k)*GridSize+(x+dx*k), cellShip)
		}
		return length
	}
}

// ProcessShot handles an incoming shot at (x, y): the board update runs in
// the owner's security region, and only the hit/miss result is
// declassified (via copyAndLabel in a nested empty region, using the
// owner's minus capability).
func (p *Player) ProcessShot(x, y int) (bool, error) {
	if x < 0 || y < 0 || x >= GridSize || y >= GridSize {
		return false, fmt.Errorf("battleship: shot (%d,%d) out of range", x, y)
	}
	simwork.Do(shotExchangeWork)
	result := laminar.NewObject()
	violated := false
	err := p.thread.Secure(p.labels, p.caps, func(r *laminar.Region) {
		idx := y*GridSize + x
		cur := r.Index(p.board, idx).(int)
		hit := 0
		switch cur {
		case cellShip:
			r.SetIndex(p.board, idx, cellHit)
			hit = 1
		case cellEmpty:
			r.SetIndex(p.board, idx, cellMiss)
		}
		// Declassify just the bit: the opponent learns hit-or-miss and
		// nothing else about the board.
		agg := r.Alloc(nil)
		r.Set(agg, "hit", hit)
		err := p.thread.Secure(p.empty, p.caps, func(r2 *laminar.Region) {
			pub := r2.CopyAndLabel(agg, laminar.Labels{})
			result.RawSet("hit", r2.Get(pub, "hit"))
		}, nil)
		if err != nil {
			panic(err)
		}
	}, func(r *laminar.Region, e any) { violated = true })
	if err != nil || violated {
		return false, fmt.Errorf("battleship: shot processing denied")
	}
	hit := result.RawGet("hit").(int) == 1
	if hit {
		p.cells--
	}
	return hit, nil
}

// TryPeek probes the security property: the opponent attempts to read the
// player's board directly. It reports whether any access succeeded (it
// must not).
func (p *Player) TryPeek(intruder *laminar.Thread) bool {
	leaked := false
	// Entering a region with the victim's tag fails (no capability) …
	err := intruder.Secure(laminar.Labels{S: laminar.NewLabel(p.tag)}, laminar.EmptyCapSet, func(r *laminar.Region) {
		leaked = true
	}, nil)
	if err == nil && leaked {
		return true
	}
	// … and so does touching the board from outside a region.
	func() {
		defer func() { recover() }()
		intruder.Index(p.board, 0)
		leaked = true
	}()
	return leaked
}

// Game drives two players to completion with a deterministic shooter.
type Game struct {
	A, B *Player
	rng  *rand.Rand
}

// NewGame builds a secured two-player game on one VM.
func NewGame(sys *laminar.System, seed int64) (*Game, error) {
	shell, err := sys.Login("arena")
	if err != nil {
		return nil, err
	}
	vm, main, err := sys.LaunchVM(shell)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	a, err := NewPlayer(vm, main, "alice", rng)
	if err != nil {
		return nil, err
	}
	b, err := NewPlayer(vm, main, "bob", rng)
	if err != nil {
		return nil, err
	}
	return &Game{A: a, B: b, rng: rng}, nil
}

// Play runs rounds until one player is sunk (or the board is exhausted)
// and returns the winner. Each player shoots cells in a random untried
// order.
func (g *Game) Play() (*Player, error) {
	orderA := g.rng.Perm(GridSize * GridSize)
	orderB := g.rng.Perm(GridSize * GridSize)
	for turn := 0; turn < GridSize*GridSize; turn++ {
		// A shoots at B.
		idx := orderA[turn]
		if _, err := g.B.ProcessShot(idx%GridSize, idx/GridSize); err != nil {
			return nil, err
		}
		if g.B.cells == 0 {
			return g.A, nil
		}
		// B shoots at A.
		idx = orderB[turn]
		if _, err := g.A.ProcessShot(idx%GridSize, idx/GridSize); err != nil {
			return nil, err
		}
		if g.A.cells == 0 {
			return g.B, nil
		}
	}
	return nil, fmt.Errorf("battleship: no winner after full sweep")
}

// --- unsecured variant (the original JavaBattle structure) ---

// UnsecuredPlayer keeps its board as a plain object; opponents inspect the
// coordinates directly to determine hits, as the original program did.
type UnsecuredPlayer struct {
	name  string
	board *laminar.Object
	cells int
}

// NewUnsecuredPlayer places ships on an unlabeled board.
func NewUnsecuredPlayer(name string, rng *rand.Rand) *UnsecuredPlayer {
	p := &UnsecuredPlayer{name: name, board: laminar.NewArray(GridSize * GridSize)}
	for i := 0; i < GridSize*GridSize; i++ {
		p.board.RawSetIndex(i, cellEmpty)
	}
	for _, length := range shipLengths {
		p.cells += placeShipRaw(p.board, rng, length)
	}
	return p
}

func placeShipRaw(board *laminar.Object, rng *rand.Rand, length int) int {
	for {
		horizontal := rng.Intn(2) == 0
		x, y := rng.Intn(GridSize), rng.Intn(GridSize)
		dx, dy := 1, 0
		if !horizontal {
			dx, dy = 0, 1
		}
		if x+dx*(length-1) >= GridSize || y+dy*(length-1) >= GridSize {
			continue
		}
		ok := true
		for k := 0; k < length; k++ {
			if board.RawIndex((y+dy*k)*GridSize+(x+dx*k)).(int) != cellEmpty {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k := 0; k < length; k++ {
			board.RawSetIndex((y+dy*k)*GridSize+(x+dx*k), cellShip)
		}
		return length
	}
}

// ProcessShot mutates the board directly, no regions.
func (p *UnsecuredPlayer) ProcessShot(x, y int) bool {
	simwork.Do(shotExchangeWork)
	idx := y*GridSize + x
	if p.board.RawIndex(idx).(int) == cellShip {
		p.board.RawSetIndex(idx, cellHit)
		p.cells--
		return true
	}
	p.board.RawSetIndex(idx, cellMiss)
	return false
}

// UnsecuredGame mirrors Game without DIFC.
type UnsecuredGame struct {
	A, B *UnsecuredPlayer
	rng  *rand.Rand
}

// NewUnsecuredGame builds the baseline game.
func NewUnsecuredGame(seed int64) *UnsecuredGame {
	rng := rand.New(rand.NewSource(seed))
	return &UnsecuredGame{
		A:   NewUnsecuredPlayer("alice", rng),
		B:   NewUnsecuredPlayer("bob", rng),
		rng: rng,
	}
}

// Play runs the baseline game to completion.
func (g *UnsecuredGame) Play() *UnsecuredPlayer {
	orderA := g.rng.Perm(GridSize * GridSize)
	orderB := g.rng.Perm(GridSize * GridSize)
	for turn := 0; turn < GridSize*GridSize; turn++ {
		idx := orderA[turn]
		g.B.ProcessShot(idx%GridSize, idx/GridSize)
		if g.B.cells == 0 {
			return g.A
		}
		idx = orderB[turn]
		g.A.ProcessShot(idx%GridSize, idx/GridSize)
		if g.A.cells == 0 {
			return g.B
		}
	}
	return nil
}
