package battleship

import (
	"testing"

	"laminar"
)

func TestGamePlaysToCompletion(t *testing.T) {
	g, err := NewGame(laminar.NewSystem(), 1)
	if err != nil {
		t.Fatal(err)
	}
	winner, err := g.Play()
	if err != nil {
		t.Fatal(err)
	}
	if winner == nil {
		t.Fatal("no winner")
	}
	loser := g.A
	if winner == g.A {
		loser = g.B
	}
	if loser.ShipCellsLeft() != 0 {
		t.Errorf("loser has %d cells left", loser.ShipCellsLeft())
	}
	if winner.ShipCellsLeft() <= 0 {
		t.Errorf("winner has %d cells left", winner.ShipCellsLeft())
	}
}

func TestSecuredMatchesUnsecured(t *testing.T) {
	// With the same seed, the secured and unsecured games must play out
	// identically: the DIFC layer changes no game semantics.
	for seed := int64(1); seed <= 5; seed++ {
		g, err := NewGame(laminar.NewSystem(), seed)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := g.Play()
		if err != nil {
			t.Fatal(err)
		}
		u := NewUnsecuredGame(seed)
		uw := u.Play()
		if uw == nil {
			t.Fatal("unsecured game had no winner")
		}
		if sw.Name() != uw.name {
			t.Errorf("seed %d: secured winner %s, unsecured %s", seed, sw.Name(), uw.name)
		}
	}
}

func TestOpponentCannotPeek(t *testing.T) {
	g, err := NewGame(laminar.NewSystem(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.A.TryPeek(g.B.thread) {
		t.Error("B peeked at A's board")
	}
	if g.B.TryPeek(g.A.thread) {
		t.Error("A peeked at B's board")
	}
}

func TestShotResultsDeclassifiedOnly(t *testing.T) {
	g, err := NewGame(laminar.NewSystem(), 9)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for y := 0; y < GridSize; y++ {
		for x := 0; x < GridSize; x++ {
			hit, err := g.B.ProcessShot(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				hits++
			}
		}
	}
	want := 0
	for _, l := range shipLengths {
		want += l
	}
	if hits != want {
		t.Errorf("total hits = %d, want %d", hits, want)
	}
	if g.B.ShipCellsLeft() != 0 {
		t.Errorf("cells left = %d", g.B.ShipCellsLeft())
	}
}

func TestShotOutOfRange(t *testing.T) {
	g, err := NewGame(laminar.NewSystem(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.A.ProcessShot(-1, 0); err == nil {
		t.Error("out-of-range shot accepted")
	}
	if _, err := g.A.ProcessShot(0, GridSize); err == nil {
		t.Error("out-of-range shot accepted")
	}
}

func TestRegionTimeDominates(t *testing.T) {
	// Table 3: Battleship spends ~54% of its time in security regions —
	// nearly all work is board updates. Assert regions are actually hot.
	sys := laminar.NewSystem()
	g, err := NewGame(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Play(); err != nil {
		t.Fatal(err)
	}
	// Every processed shot is two nested regions.
	// (Counting both players' setup regions too.)
	if g.A.thread.VM().Stats().RegionsEntered.Load() < 100 {
		t.Errorf("regions entered = %d", g.A.thread.VM().Stats().RegionsEntered.Load())
	}
}
